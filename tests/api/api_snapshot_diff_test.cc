// Acceptance differential for the client API (ISSUE 3):
//
//   1. A session's snapshot reads stay bit-identical to a from-scratch
//      EvaluateQueries over the pinned base while >= 100 later
//      transactions commit.
//   2. The subscription delta stream, replayed on top of the initial
//      view result, reconstructs MaterializedView::result() exactly.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "api/api.h"
#include "core/pretty.h"
#include "query/query.h"
#include "util/fault_env.h"

namespace verso {
namespace {

constexpr const char* kChainRules =
    "q1: derive X.chain -> Y <- X.boss -> Y."
    "q2: derive X.chain -> Z <- X.chain -> Y, Y.boss -> Z.";

constexpr const char* kGradeRules =
    "q1: derive X.rich -> yes <- X.sal -> S, S > 4000."
    "q2: derive X.modest -> yes <- X.sal -> S, not X.rich -> yes.";

std::string Render(const ObjectBase& base, const Connection& conn) {
  return ObjectBaseToString(base, conn.symbols(), conn.versions());
}

std::string RenderRows(ResultSet& rs) {
  std::string out;
  rs.Rewind();
  while (rs.Next()) {
    out += rs.RowToString();
    out += '\n';
  }
  return out;
}

/// From-scratch evaluation of `rules` over `base`, rendered canonically.
std::string EvalFromScratch(const char* rules, const ObjectBase& base,
                            Connection& conn) {
  Result<QueryProgram> program =
      ParseQueryProgram(rules, conn.engine().symbols());
  EXPECT_TRUE(program.ok()) << program.status().ToString();
  Result<ObjectBase> full =
      EvaluateQueries(*program, base, conn.engine().symbols(),
                      conn.engine().versions());
  EXPECT_TRUE(full.ok()) << full.status().ToString();
  return Render(*full, conn);
}

TEST(ApiSnapshotDiffTest, PinnedReadsSurviveOneHundredCommits) {
  Result<std::unique_ptr<Connection>> opened = Connection::OpenInMemory();
  ASSERT_TRUE(opened.ok());
  Connection& conn = **opened;

  // An eight-employee boss chain with salaries straddling the rich bar.
  std::string base_text;
  for (int i = 0; i < 8; ++i) {
    std::string e = "e" + std::to_string(i);
    base_text += e + ".isa -> empl. ";
    base_text += e + ".sal -> " + std::to_string(1000 * (i + 1)) + ". ";
    if (i < 7) base_text += e + ".boss -> e" + std::to_string(i + 1) + ". ";
  }
  ASSERT_TRUE(conn.ImportText(base_text).ok());

  std::unique_ptr<Session> admin = conn.OpenSession();
  ASSERT_TRUE(admin->Execute(std::string("CREATE VIEW chain AS ") +
                             kChainRules).ok());
  ASSERT_TRUE(admin->Execute(std::string("CREATE VIEW grade AS ") +
                             kGradeRules).ok());

  // The long-running reader pins here...
  std::unique_ptr<Session> reader = conn.OpenSession();
  const uint64_t pinned = reader->epoch();
  Result<const ObjectBase*> chain0 = reader->ViewSnapshot("chain");
  Result<const ObjectBase*> grade0 = reader->ViewSnapshot("grade");
  ASSERT_TRUE(chain0.ok() && grade0.ok());
  // ... retains the initial view results (replay seeds) ...
  ObjectBase chain_replay = **chain0;
  ObjectBase grade_replay = **grade0;
  // ... and records what its reads look like now.
  Result<ResultSet> chain_rs = reader->Execute("QUERY chain");
  Result<ResultSet> grade_rs = reader->Execute("QUERY grade");
  ASSERT_TRUE(chain_rs.ok() && grade_rs.ok());
  const std::string chain_rows0 = RenderRows(*chain_rs);
  const std::string grade_rows0 = RenderRows(*grade_rs);
  EXPECT_NE(chain_rows0.find("e0.chain -> e7."), std::string::npos);

  // The pinned view snapshots are bit-identical to a from-scratch
  // evaluation over the pinned base.
  EXPECT_EQ(Render(**chain0, conn),
            EvalFromScratch(kChainRules, reader->base(), conn));
  EXPECT_EQ(Render(**grade0, conn),
            EvalFromScratch(kGradeRules, reader->base(), conn));

  // Subscribe to both views' delta streams.
  std::vector<ViewDelta> chain_deltas, grade_deltas;
  ASSERT_TRUE(reader
                  ->Subscribe("chain", [&](const ViewDelta& d) {
                    chain_deltas.push_back(d);
                  })
                  .ok());
  ASSERT_TRUE(reader
                  ->Subscribe("grade", [&](const ViewDelta& d) {
                    grade_deltas.push_back(d);
                  })
                  .ok());

  // 120 writer transactions: salary bumps walking the employees, plus an
  // alternating rewire of e3's boss edge every third transaction (churn
  // for the recursive chain view).
  std::unique_ptr<Session> writer = conn.OpenSession();
  int rewires = 0;
  for (int i = 0; i < 120; ++i) {
    std::string text;
    if (i % 3 == 0) {
      text = (rewires++ % 2 == 0)
                 ? "t: mod[e3].boss -> (e4, e5) <- e3.boss -> e4."
                 : "t: mod[e3].boss -> (e5, e4) <- e3.boss -> e5.";
    } else {
      std::string e = "e" + std::to_string(i % 8);
      text = "t: mod[" + e + "].sal -> (S, S2) <- " + e +
             ".sal -> S, S2 = S + 700.";
    }
    Result<ResultSet> rs = writer->Execute(text);
    ASSERT_TRUE(rs.ok()) << "txn " << i << ": " << rs.status().ToString();
    ASSERT_FALSE(rs->empty()) << "txn " << i << " was a no-op";

    // Every tenth commit, re-check the pinned reader end to end.
    if (i % 10 == 9) {
      EXPECT_EQ(reader->epoch(), pinned);
      Result<ResultSet> again = reader->Execute("QUERY chain");
      ASSERT_TRUE(again.ok());
      EXPECT_EQ(RenderRows(*again), chain_rows0) << "after txn " << i;
      again = reader->Execute("QUERY grade");
      ASSERT_TRUE(again.ok());
      EXPECT_EQ(RenderRows(*again), grade_rows0) << "after txn " << i;
    }
  }
  ASSERT_GE(conn.epoch() - pinned, 100u);

  // The pinned snapshot still matches a fresh evaluation over the pinned
  // base, bit for bit, and the retained pointers never moved.
  EXPECT_EQ(Render(**chain0, conn),
            EvalFromScratch(kChainRules, reader->base(), conn));
  EXPECT_EQ(Render(**grade0, conn),
            EvalFromScratch(kGradeRules, reader->base(), conn));

  // Replay the subscription streams on top of the initial view results:
  // each must reconstruct the live MaterializedView::result() exactly.
  ASSERT_EQ(chain_deltas.size(), 120u);  // one delta per commit
  ASSERT_EQ(grade_deltas.size(), 120u);
  uint64_t last_epoch = pinned;
  for (const ViewDelta& event : chain_deltas) {
    EXPECT_EQ(event.view, "chain");
    EXPECT_EQ(event.epoch, last_epoch + 1);  // gapless, in commit order
    last_epoch = event.epoch;
    for (const DeltaFact& fact : event.facts) {
      bool changed =
          fact.added
              ? chain_replay.Insert(fact.vid, fact.method, fact.app)
              : chain_replay.Erase(fact.vid, fact.method, fact.app);
      ASSERT_TRUE(changed) << "replay desync at epoch " << event.epoch;
    }
  }
  for (const ViewDelta& event : grade_deltas) {
    for (const DeltaFact& fact : event.facts) {
      bool changed =
          fact.added
              ? grade_replay.Insert(fact.vid, fact.method, fact.app)
              : grade_replay.Erase(fact.vid, fact.method, fact.app);
      ASSERT_TRUE(changed) << "replay desync at epoch " << event.epoch;
    }
  }

  std::unique_ptr<Session> head = conn.OpenSession();
  Result<const ObjectBase*> chain_live = head->ViewSnapshot("chain");
  Result<const ObjectBase*> grade_live = head->ViewSnapshot("grade");
  ASSERT_TRUE(chain_live.ok() && grade_live.ok());
  EXPECT_TRUE(chain_replay == **chain_live);
  EXPECT_TRUE(grade_replay == **grade_live);
  EXPECT_EQ(Render(chain_replay, conn), Render(**chain_live, conn));
  EXPECT_EQ(Render(grade_replay, conn), Render(**grade_live, conn));

  // And the live result is itself still exact w.r.t. recomputation.
  EXPECT_EQ(Render(**chain_live, conn),
            EvalFromScratch(kChainRules, head->base(), conn));
  EXPECT_EQ(Render(**grade_live, conn),
            EvalFromScratch(kGradeRules, head->base(), conn));
}

TEST(ApiSnapshotDiffTest, StoreBackendsStayBitIdentical) {
  // Four lanes run the same transaction script: an ephemeral in-memory
  // connection, one persistent connection per store backend, and an
  // ephemeral connection evaluating everything (updates, queries, view
  // maintenance) with num_threads = 4. After every commit the committed
  // base and the live view result must render bit-identically across all
  // lanes; at the end each persistent lane checkpoints, reopens cold,
  // and must still match.
  struct Lane {
    const char* name;
    bool persistent;
    StoreBackend backend;
    int num_threads;
    std::unique_ptr<FaultInjectingEnv> env;
    std::unique_ptr<Connection> conn;
    std::unique_ptr<Session> session;
  };
  Lane lanes[] = {
      {"ephemeral", false, StoreBackend::kMem, 0, nullptr, nullptr, nullptr},
      {"mem", true, StoreBackend::kMem, 0, nullptr, nullptr, nullptr},
      {"pagelog", true, StoreBackend::kPageLog, 0, nullptr, nullptr,
       nullptr},
      {"parallel", false, StoreBackend::kMem, 4, nullptr, nullptr, nullptr},
  };

  std::string base_text;
  for (int i = 0; i < 6; ++i) {
    std::string e = "e" + std::to_string(i);
    base_text += e + ".isa -> empl. ";
    base_text += e + ".sal -> " + std::to_string(1500 * (i + 1)) + ". ";
    if (i < 5) base_text += e + ".boss -> e" + std::to_string(i + 1) + ". ";
  }

  for (Lane& lane : lanes) {
    SCOPED_TRACE(lane.name);
    if (lane.persistent) {
      lane.env = std::make_unique<FaultInjectingEnv>();
      ConnectionOptions options;
      options.env = lane.env.get();
      options.retry_backoff_us = 0;
      options.store_backend = lane.backend;
      Result<std::unique_ptr<Connection>> opened =
          Connection::Open("/db", options);
      ASSERT_TRUE(opened.ok()) << opened.status().ToString();
      lane.conn = std::move(opened).value();
    } else {
      ConnectionOptions options;
      options.eval.num_threads = lane.num_threads;
      options.query.num_threads = lane.num_threads;
      Result<std::unique_ptr<Connection>> opened =
          Connection::OpenInMemory(options);
      ASSERT_TRUE(opened.ok()) << opened.status().ToString();
      lane.conn = std::move(opened).value();
    }
    ASSERT_TRUE(lane.conn->ImportText(base_text).ok());
    lane.session = lane.conn->OpenSession();
    ASSERT_TRUE(lane.session
                    ->Execute(std::string("CREATE VIEW chain AS ") +
                              kChainRules)
                    .ok());
    ASSERT_TRUE(lane.session
                    ->Execute(std::string("CREATE VIEW grade AS ") +
                              kGradeRules)
                    .ok());
  }

  auto lane_render = [](Lane& lane) {
    std::string out = Render(lane.conn->database().current(), *lane.conn);
    Result<const ObjectBase*> chain = lane.session->ViewSnapshot("chain");
    Result<const ObjectBase*> grade = lane.session->ViewSnapshot("grade");
    EXPECT_TRUE(chain.ok() && grade.ok());
    if (chain.ok()) out += "--chain--\n" + Render(**chain, *lane.conn);
    if (grade.ok()) out += "--grade--\n" + Render(**grade, *lane.conn);
    return out;
  };

  for (int i = 0; i < 30; ++i) {
    std::string text;
    if (i % 3 == 0) {
      text = (i % 2 == 0)
                 ? "t: mod[e2].boss -> (e3, e4) <- e2.boss -> e3."
                 : "t: mod[e2].boss -> (e4, e3) <- e2.boss -> e4.";
    } else {
      std::string e = "e" + std::to_string(i % 6);
      text = "t: mod[" + e + "].sal -> (S, S2) <- " + e +
             ".sal -> S, S2 = S + 900.";
    }
    std::string reference;
    for (Lane& lane : lanes) {
      SCOPED_TRACE(std::string(lane.name) + " txn " + std::to_string(i));
      // Keep the session fresh: Session pins its open epoch, so reopen
      // one at head per commit to read the live state.
      lane.session = lane.conn->OpenSession();
      Result<ResultSet> rs = lane.session->Execute(text);
      ASSERT_TRUE(rs.ok()) << rs.status().ToString();
      lane.session = lane.conn->OpenSession();
      std::string render = lane_render(lane);
      if (&lane == &lanes[0]) {
        reference = render;
      } else {
        EXPECT_EQ(render, reference) << "lane diverged at txn " << i;
      }
    }
  }

  // Checkpoint + cold reopen: the recovered persistent lanes must still
  // render exactly like the ephemeral reference.
  lanes[0].session = lanes[0].conn->OpenSession();
  const std::string reference = lane_render(lanes[0]);
  for (Lane& lane : lanes) {
    if (!lane.persistent) continue;
    SCOPED_TRACE(std::string(lane.name) + " recovery");
    ASSERT_TRUE(lane.conn->Checkpoint().ok());
    lane.session.reset();
    lane.conn.reset();
    ConnectionOptions options;
    options.env = lane.env.get();
    options.retry_backoff_us = 0;
    options.store_backend = lane.backend;
    Result<std::unique_ptr<Connection>> reopened =
        Connection::Open("/db", options);
    ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
    lane.conn = std::move(reopened).value();
    lane.session = lane.conn->OpenSession();
    ASSERT_TRUE(lane.session
                    ->Execute(std::string("CREATE VIEW chain AS ") +
                              kChainRules)
                    .ok());
    ASSERT_TRUE(lane.session
                    ->Execute(std::string("CREATE VIEW grade AS ") +
                              kGradeRules)
                    .ok());
    EXPECT_EQ(lane_render(lane), reference);
  }
}

}  // namespace
}  // namespace verso
