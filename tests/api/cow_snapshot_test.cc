// Copy-on-write structural sharing across the facade: pinned snapshots
// and view results must be bit-stable while the live base keeps
// committing (detach-before-write), Pin must stay keyed on view DDL as
// well as the commit epoch, and subscription deltas must carry the
// triggering batch member's own epoch.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "api/api.h"
#include "core/pretty.h"

namespace verso {
namespace {

std::unique_ptr<Connection> MemConnection() {
  Result<std::unique_ptr<Connection>> conn = Connection::OpenInMemory();
  EXPECT_TRUE(conn.ok()) << conn.status().ToString();
  return std::move(conn).value();
}

std::string Dump(const Connection& conn, const ObjectBase& base) {
  return ObjectBaseToString(base, conn.symbols(), conn.versions());
}

constexpr const char* kBase =
    "x.isa -> empl. x.sal -> 2000. x.dept -> eng. x.tag -> a. x.tag -> b. "
    "y.isa -> empl. y.sal -> 500. "
    "z.isa -> dept. z.head -> y.";

constexpr const char* kRichView =
    "CREATE VIEW rich AS derive X.rich -> yes <- X.sal -> S, S > 1000.";

TEST(CowSnapshotTest, PinSharesStateWithTheCommittedBase) {
  std::unique_ptr<Connection> conn = MemConnection();
  ASSERT_TRUE(conn->ImportText(kBase).ok());
  std::unique_ptr<Session> session = conn->OpenSession();

  // The pinned base is a structural copy: every version's state handle
  // is shared with db.current() — pinning copied no fact.
  const ObjectBase& live = conn->database().current();
  const ObjectBase& pinned = session->base();
  EXPECT_EQ(pinned.fact_count(), live.fact_count());
  for (const auto& [vid, state] : live.versions()) {
    EXPECT_EQ(pinned.SharedStateOf(vid), state);
  }
}

TEST(CowSnapshotTest, PinnedReadersAreImmuneToLaterCommits) {
  std::unique_ptr<Connection> conn = MemConnection();
  ASSERT_TRUE(conn->ImportText(kBase).ok());
  std::unique_ptr<Session> writer = conn->OpenSession();
  ASSERT_TRUE(writer->Execute(kRichView).ok());

  std::unique_ptr<Session> reader = conn->OpenSession();
  const std::string base_before = Dump(*conn, reader->base());
  Result<const ObjectBase*> view = reader->ViewSnapshot("rich");
  ASSERT_TRUE(view.ok()) << view.status().ToString();
  const std::string view_before = Dump(*conn, **view);

  // Mutate the live base through the shared state: a modify on y and a
  // del[x].* fan-out, which derives one delete per fact of x's state —
  // the heaviest write-through-shared-storage case (every touched
  // method vector must detach, none may write through to the pin).
  ASSERT_TRUE(
      writer->Execute("t: mod[y].sal -> (S, S2) <- y.sal -> S, S2 = S + 1.")
          .ok());
  ASSERT_TRUE(writer->Execute("t: del[x].* <- x.isa -> empl.").ok());

  // The reader's pinned images are bit-identical to their pin time.
  EXPECT_EQ(Dump(*conn, reader->base()), base_before);
  Result<const ObjectBase*> view_again = reader->ViewSnapshot("rich");
  ASSERT_TRUE(view_again.ok());
  EXPECT_EQ(Dump(*conn, **view_again), view_before);
  EXPECT_NE(base_before.find("x.sal -> 2000"), std::string::npos);

  // The live state moved on: x vanished (all information deleted), y got
  // its raise, and a fresh session sees exactly that.
  std::unique_ptr<Session> fresh = conn->OpenSession();
  const std::string now = Dump(*conn, fresh->base());
  EXPECT_EQ(now.find("x."), std::string::npos);
  EXPECT_NE(now.find("y.sal -> 501"), std::string::npos);
}

TEST(CowSnapshotTest, SubscribedViewDeltasSurviveLaterCommits) {
  std::unique_ptr<Connection> conn = MemConnection();
  ASSERT_TRUE(conn->ImportText(kBase).ok());
  std::unique_ptr<Session> session = conn->OpenSession();
  ASSERT_TRUE(session->Execute(kRichView).ok());

  // Replaying the subscription stream over a pinned copy of the view
  // result must land on the live result even though the pinned copy
  // shares storage with a base that keeps being rewritten underneath.
  session->Refresh();
  std::vector<DeltaLog> stream;
  Result<uint64_t> sub = session->Subscribe(
      "rich", [&](const ViewDelta& d) { stream.push_back(d.facts); });
  ASSERT_TRUE(sub.ok());
  Result<const ObjectBase*> seed = session->ViewSnapshot("rich");
  ASSERT_TRUE(seed.ok());
  ObjectBase replay = **seed;  // shared at first, detached by the replay

  ASSERT_TRUE(
      session->Execute("t: mod[y].sal -> (S, S2) <- y.sal -> S, S2 = S * 4.")
          .ok());
  ASSERT_TRUE(session->Execute("t: del[x].* <- x.isa -> empl.").ok());

  for (const DeltaLog& facts : stream) {
    for (const DeltaFact& fact : facts) {
      if (fact.added) {
        replay.Insert(fact.vid, fact.method, fact.app);
      } else {
        replay.Erase(fact.vid, fact.method, fact.app);
      }
    }
  }
  EXPECT_EQ(Dump(*conn, replay),
            Dump(*conn, conn->catalog().Find("rich")->result()));
}

TEST(CowSnapshotTest, BatchMembersStampTheirOwnEpochOnViewDeltas) {
  std::unique_ptr<Connection> conn = MemConnection();
  ASSERT_TRUE(conn->ImportText(kBase).ok());
  std::unique_ptr<Session> session = conn->OpenSession();
  ASSERT_TRUE(session->Execute(kRichView).ok());

  std::vector<uint64_t> delta_epochs;
  Result<uint64_t> sub = session->Subscribe(
      "rich", [&](const ViewDelta& d) { delta_epochs.push_back(d.epoch); });
  ASSERT_TRUE(sub.ok());

  Result<Statement> s1 =
      session->Prepare("t: ins[z].note -> one <- z.isa -> dept.");
  Result<Statement> s2 =
      session->Prepare("t: mod[y].sal -> (S, S2) <- y.sal -> S, S2 = S + 7.");
  Result<Statement> s3 =
      session->Prepare("t: ins[z].note -> two <- z.isa -> dept.");
  ASSERT_TRUE(s1.ok() && s2.ok() && s3.ok());
  Result<std::vector<ResultSet>> rs =
      session->ExecuteBatch({&*s1, &*s2, &*s3});
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  ASSERT_EQ(rs->size(), 3u);

  // One view delta per member, stamped with that member's OWN commit
  // epoch — not the batch's final epoch at delivery time.
  ASSERT_EQ(delta_epochs.size(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(delta_epochs[i], (*rs)[i].epoch()) << "member " << i;
  }
  EXPECT_LT(delta_epochs[0], delta_epochs[1]);
  EXPECT_LT(delta_epochs[1], delta_epochs[2]);
}

TEST(CowSnapshotTest, ViewDdlBetweenCommitsInvalidatesTheCachedSnapshot) {
  std::unique_ptr<Connection> conn = MemConnection();
  ASSERT_TRUE(conn->ImportText(kBase).ok());

  // Build and cache a snapshot at the current epoch.
  std::unique_ptr<Session> first = conn->OpenSession();
  EXPECT_FALSE(first->ViewSnapshot("rich").ok());

  // Register a view through the catalog escape hatch — the path that
  // bypasses Connection::CreateView and its InvalidateSnapshot call.
  // CREATE VIEW does not advance the commit epoch, so only the DDL
  // generation can tell the cached snapshot is stale.
  ASSERT_TRUE(conn->catalog()
                  .RegisterText("rich",
                                "derive X.rich -> yes <- X.sal -> S, "
                                "S > 1000.",
                                conn->database().current())
                  .ok());
  std::unique_ptr<Session> second = conn->OpenSession();
  EXPECT_TRUE(second->ViewSnapshot("rich").ok())
      << "cached snapshot served a stale view set (missing CREATE VIEW)";

  // And the dual: a drop through the escape hatch must not leave the
  // dropped view servable from the cache.
  ASSERT_TRUE(conn->catalog().Drop("rich").ok());
  std::unique_ptr<Session> third = conn->OpenSession();
  EXPECT_FALSE(third->ViewSnapshot("rich").ok())
      << "cached snapshot served a dropped view";

  // The first session's pin predates the DDL and legitimately keeps its
  // view-less world view.
  EXPECT_FALSE(first->ViewSnapshot("rich").ok());
}

}  // namespace
}  // namespace verso
