// The verso::Connection / Session / Statement / ResultSet facade: the
// unified statement grammar, snapshot-isolated reads, prepared-statement
// reuse, view DDL, subscriptions, and the persistent round-trip.

#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "api/api.h"
#include "core/pretty.h"

namespace verso {
namespace {

std::unique_ptr<Connection> MemConnection() {
  Result<std::unique_ptr<Connection>> conn = Connection::OpenInMemory();
  EXPECT_TRUE(conn.ok()) << conn.status().ToString();
  return std::move(conn).value();
}

/// True iff `object.method -> result` (a symbol) is in `base`.
bool Holds(const Connection& conn, const ObjectBase& base, const char* object,
           const char* method, const char* result) {
  const SymbolTable& symbols = conn.symbols();
  Oid oid = symbols.FindSymbol(object);
  MethodId m = symbols.FindMethod(method);
  Oid r = symbols.FindSymbol(result);
  if (!oid.valid() || !m.valid() || !r.valid()) return false;
  // Depth-0 VIDs coincide with OIDs, so rendering the VID of `object`
  // needs no table mutation: scan the method index instead.
  const auto* vids = base.VidsWithMethod(m);
  if (vids == nullptr) return false;
  for (const auto& [vid, count] : *vids) {
    const VersionState* state = base.StateOf(vid);
    const std::vector<GroundApp>* apps = state->Find(m);
    if (apps == nullptr) continue;
    for (const GroundApp& app : *apps) {
      if (app.result == r && app.args.empty() &&
          base.version_table()->ToString(vid, symbols) == object) {
        return true;
      }
    }
  }
  return false;
}

TEST(ApiStatementTest, PrepareClassifiesTheUnifiedGrammar) {
  std::unique_ptr<Connection> conn = MemConnection();
  std::unique_ptr<Session> session = conn->OpenSession();

  struct Case {
    const char* text;
    Statement::Kind kind;
  };
  const std::vector<Case> cases = {
      {"t: ins[ann].sal -> 100.", Statement::Kind::kUpdate},
      {"mod[E].sal -> (S, S2) <- E.sal -> S, S2 = S + 1.",
       Statement::Kind::kUpdate},
      {"derive X.rich -> yes <- X.sal -> S, S > 10.",
       Statement::Kind::kQuery},
      {"q: derive X.rich -> yes <- X.sal -> S, S > 10.",
       Statement::Kind::kQuery},
      {"CREATE VIEW rich AS derive X.rich -> yes <- X.sal -> S, S > 10.",
       Statement::Kind::kCreateView},
      {"create view rich as derive X.rich -> yes <- X.sal -> S, S > 10.",
       Statement::Kind::kCreateView},
      {"DROP VIEW rich", Statement::Kind::kDropView},
      {"drop view rich.", Statement::Kind::kDropView},
      {"QUERY rich", Statement::Kind::kQueryView},
      {"% comment first\n  query rich.", Statement::Kind::kQueryView},
      // Leading keywords used as rule labels stay program text.
      {"query: ins[ann].sal -> 100.", Statement::Kind::kUpdate},
      {"create: ins[ann].sal -> 100.", Statement::Kind::kUpdate},
      {"derive: ins[ann].sal -> 100.", Statement::Kind::kUpdate},
  };
  for (const Case& c : cases) {
    Result<Statement> stmt = session->Prepare(c.text);
    ASSERT_TRUE(stmt.ok()) << c.text << ": " << stmt.status().ToString();
    EXPECT_EQ(stmt->kind(), c.kind) << c.text;
  }

  EXPECT_FALSE(session->Prepare("create view rich").ok());
  EXPECT_FALSE(session->Prepare("create table rich as x").ok());
  EXPECT_FALSE(session->Prepare("query").ok());
  EXPECT_FALSE(session->Prepare("drop view").ok());
  EXPECT_FALSE(session->Prepare("query rich trailing").ok());
  EXPECT_FALSE(session->Prepare("complete garbage !!").ok());
}

TEST(ApiWriteTest, CommitExposesDeltaStatsAndEpoch) {
  std::unique_ptr<Connection> conn = MemConnection();
  ASSERT_TRUE(conn->ImportText("ann.isa -> empl. ann.sal -> 100.").ok());
  EXPECT_EQ(conn->epoch(), 1u);

  std::unique_ptr<Session> session = conn->OpenSession();
  Result<ResultSet> rs = session->Execute(
      "t: mod[ann].sal -> (S, S2) <- ann.sal -> S, S2 = S * 2.");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  EXPECT_EQ(rs->kind(), ResultSet::Kind::kWrite);
  EXPECT_EQ(rs->epoch(), 2u);
  EXPECT_EQ(conn->epoch(), 2u);
  EXPECT_EQ(session->epoch(), 2u);  // a session reads its own commit

  // The committed delta: sal 100 removed, sal 200 added.
  bool saw_remove = false, saw_add = false;
  while (rs->Next()) {
    if (rs->method() != "sal") continue;
    ASSERT_TRUE(rs->result_is_number());
    if (!rs->added() && rs->result_number() == Numeric::FromInt(100)) {
      saw_remove = true;
      EXPECT_EQ(rs->object(), "ann");
      EXPECT_EQ(rs->arg_count(), 0u);
    }
    if (rs->added() && rs->result_number() == Numeric::FromInt(200)) {
      saw_add = true;
    }
  }
  EXPECT_TRUE(saw_remove);
  EXPECT_TRUE(saw_add);

  // Write introspection is present; query introspection is not.
  EXPECT_NE(rs->eval_stats(), nullptr);
  EXPECT_NE(rs->stratification(), nullptr);
  EXPECT_NE(rs->update_result(), nullptr);
  EXPECT_EQ(rs->query_stats(), nullptr);

  // Cursor protocol: Rewind re-reads from the start.
  rs->Rewind();
  size_t rows = 0;
  while (rs->Next()) ++rows;
  EXPECT_EQ(rows, rs->size());
}

TEST(ApiWriteTest, IndexCountersMoveOnAnIndexedWorkload) {
  std::unique_ptr<Connection> conn = MemConnection();
  // Every object carries several `likes` facts, so a bound-result body
  // literal has real scanning to avoid.
  std::string facts;
  for (int i = 0; i < 16; ++i) {
    std::string name = "p" + std::to_string(i);
    facts += name + ".isa -> fan. ";
    facts += name + ".likes -> jazz. ";
    facts += name + ".likes -> g" + std::to_string(i % 5) + ". ";
    facts += name + ".likes -> h" + std::to_string(i % 7) + ". ";
  }
  ASSERT_TRUE(conn->ImportText(facts).ok());

  std::unique_ptr<Session> session = conn->OpenSession();
  Result<ResultSet> rs = session->Execute(
      "t: ins[E].tag -> hot <- E.isa -> fan, E.likes -> jazz.");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();

  // The bound-result literal (likes -> jazz) probed the result index
  // once per candidate, hit every time, and skipped the other likes
  // facts a full scan would have visited.
  const EvalStats* stats = rs->eval_stats();
  ASSERT_NE(stats, nullptr);
  EXPECT_GE(stats->total_index_probes(), 16u);
  EXPECT_GE(stats->total_index_hits(), 16u);
  EXPECT_GE(stats->total_indexed_scan_avoided_facts(), 32u);
  EXPECT_GE(stats->total_index_probes(), stats->total_index_hits());
}

TEST(ApiWriteTest, PreparedStatementIsReusable) {
  std::unique_ptr<Connection> conn = MemConnection();
  ASSERT_TRUE(conn->ImportText("ann.sal -> 100.").ok());
  std::unique_ptr<Session> session = conn->OpenSession();

  Result<Statement> raise = session->Prepare(
      "t: mod[ann].sal -> (S, S2) <- ann.sal -> S, S2 = S + 1.");
  ASSERT_TRUE(raise.ok());
  for (int i = 0; i < 5; ++i) {
    Result<ResultSet> rs = raise->Execute();
    ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  }
  EXPECT_EQ(conn->epoch(), 6u);  // import + five raises
  // The value is numeric; verify through a query over the snapshot.
  Result<ResultSet> rs =
      session->Execute("derive X.high -> yes <- X.sal -> S, S > 104.");
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->size(), 1u);
}

TEST(ApiQueryTest, AdHocDeriveReadsTheSnapshot) {
  std::unique_ptr<Connection> conn = MemConnection();
  ASSERT_TRUE(conn->ImportText(R"(
      ann.boss -> bob.   bob.boss -> eve.
  )").ok());
  std::unique_ptr<Session> session = conn->OpenSession();

  Result<Statement> chain = session->Prepare(
      "q1: derive X.chain -> Y <- X.boss -> Y."
      "q2: derive X.chain -> Z <- X.chain -> Y, Y.boss -> Z.");
  ASSERT_TRUE(chain.ok()) << chain.status().ToString();
  Result<ResultSet> rs = chain->Execute();
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  EXPECT_EQ(rs->kind(), ResultSet::Kind::kQuery);
  EXPECT_EQ(rs->size(), 3u);  // ann->bob, ann->eve, bob->eve
  EXPECT_NE(rs->query_stats(), nullptr);
  EXPECT_EQ(rs->eval_stats(), nullptr);

  // The query derived nothing into the committed base.
  std::unique_ptr<Session> fresh = conn->OpenSession();
  EXPECT_FALSE(conn->symbols().FindMethod("chain").valid() &&
               fresh->base().VidsWithMethod(
                   conn->symbols().FindMethod("chain")) != nullptr);
}

TEST(ApiViewTest, CreateQueryDropLifecycle) {
  std::unique_ptr<Connection> conn = MemConnection();
  ASSERT_TRUE(conn->ImportText("ann.sal -> 2000. bob.sal -> 9000.").ok());
  std::unique_ptr<Session> session = conn->OpenSession();

  ASSERT_TRUE(session->Execute(
      "CREATE VIEW rich AS "
      "derive X.rich -> yes <- X.sal -> S, S > 5000.").ok());
  EXPECT_EQ(conn->view_names(), std::vector<std::string>{"rich"});
  EXPECT_TRUE(conn->ViewHealth("rich").ok());

  Result<ResultSet> rs = session->Execute("QUERY rich");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  EXPECT_EQ(rs->kind(), ResultSet::Kind::kView);
  ASSERT_EQ(rs->size(), 1u);
  ASSERT_TRUE(rs->Next());
  EXPECT_EQ(rs->object(), "bob");
  EXPECT_EQ(rs->method(), "rich");
  EXPECT_EQ(rs->result_text(), "yes");
  EXPECT_EQ(rs->RowToString(), "bob.rich -> yes.");

  // A commit crossing the bar maintains the view; QUERY sees it after the
  // session's own write re-pins.
  ASSERT_TRUE(session->Execute(
      "t: mod[ann].sal -> (S, S2) <- ann.sal -> S, S2 = S * 4.").ok());
  rs = session->Execute("QUERY rich");
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->size(), 2u);

  Result<ViewStats> stats = conn->GetViewStats("rich");
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->maintenance_runs, 1u);
  EXPECT_EQ(stats->facts_added, 1u);

  // Duplicate registration fails; DROP removes; QUERY then misses.
  EXPECT_FALSE(session->Execute(
      "CREATE VIEW rich AS derive X.rich -> yes <- X.sal -> S, S > 1.").ok());
  ASSERT_TRUE(session->Execute("DROP VIEW rich").ok());
  EXPECT_TRUE(conn->view_names().empty());
  Result<ResultSet> gone = session->Execute("QUERY rich");
  EXPECT_FALSE(gone.ok());
  EXPECT_EQ(gone.status().code(), StatusCode::kNotFound);
  EXPECT_FALSE(session->Execute("DROP VIEW rich").ok());
}

TEST(ApiSnapshotTest, ReadersAreIsolatedFromLaterCommits) {
  std::unique_ptr<Connection> conn = MemConnection();
  ASSERT_TRUE(conn->ImportText("ann.pos -> clerk.").ok());
  ASSERT_TRUE(conn->OpenSession()->Execute(
      "CREATE VIEW mgrs AS "
      "derive X.mgr -> yes <- X.pos -> mgr.").ok());

  std::unique_ptr<Session> reader = conn->OpenSession();
  uint64_t pinned = reader->epoch();
  Result<const ObjectBase*> view0 = reader->ViewSnapshot("mgrs");
  ASSERT_TRUE(view0.ok());
  std::string before = ObjectBaseToString(**view0, conn->symbols(),
                                          conn->versions());

  std::unique_ptr<Session> writer = conn->OpenSession();
  ASSERT_TRUE(writer->Execute(
      "t: mod[ann].pos -> (clerk, mgr).").ok());

  // The writer sees its commit; the reader still reads the pinned epoch.
  EXPECT_TRUE(Holds(*conn, writer->base(), "ann", "pos", "mgr"));
  EXPECT_TRUE(Holds(*conn, reader->base(), "ann", "pos", "clerk"));
  EXPECT_EQ(reader->epoch(), pinned);
  Result<ResultSet> rs = reader->Execute("QUERY mgrs");
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->size(), 0u);
  Result<const ObjectBase*> view1 = reader->ViewSnapshot("mgrs");
  ASSERT_TRUE(view1.ok());
  EXPECT_EQ(ObjectBaseToString(**view1, conn->symbols(), conn->versions()),
            before);

  // Refresh re-pins: the reader now sees the commit and the view delta.
  reader->Refresh();
  EXPECT_GT(reader->epoch(), pinned);
  EXPECT_TRUE(Holds(*conn, reader->base(), "ann", "pos", "mgr"));
  rs = reader->Execute("QUERY mgrs");
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->size(), 1u);
}

TEST(ApiSubscriptionTest, DeliversEpochTaggedViewDeltas) {
  std::unique_ptr<Connection> conn = MemConnection();
  ASSERT_TRUE(conn->ImportText("ann.sal -> 100. bob.sal -> 9000.").ok());
  std::unique_ptr<Session> session = conn->OpenSession();
  ASSERT_TRUE(session->Execute(
      "CREATE VIEW rich AS "
      "derive X.rich -> yes <- X.sal -> S, S > 5000.").ok());

  std::vector<ViewDelta> events;
  Result<uint64_t> sub = session->Subscribe(
      "rich", [&](const ViewDelta& delta) { events.push_back(delta); });
  ASSERT_TRUE(sub.ok()) << sub.status().ToString();
  EXPECT_FALSE(session->Subscribe("nosuch", [](const ViewDelta&) {}).ok());

  ASSERT_TRUE(session->Execute(
      "t: mod[ann].sal -> (S, S2) <- ann.sal -> S, S2 = S * 100.").ok());
  ASSERT_TRUE(session->Execute(
      "t: mod[bob].sal -> (S, S2) <- bob.sal -> S, S2 = S - 8000.").ok());

  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].view, "rich");
  EXPECT_EQ(events[1].epoch, events[0].epoch + 1);
  EXPECT_EQ(events[1].epoch, conn->epoch());
  // Commit 1: ann's sal base change + ann.rich gained.
  bool gained = false;
  for (const DeltaFact& fact : events[0].facts) {
    if (fact.method == conn->symbols().FindMethod("rich")) {
      EXPECT_TRUE(fact.added);
      gained = true;
    }
  }
  EXPECT_TRUE(gained);
  // Commit 2: bob.rich lost.
  bool lost = false;
  for (const DeltaFact& fact : events[1].facts) {
    if (fact.method == conn->symbols().FindMethod("rich") && !fact.added) {
      lost = true;
    }
  }
  EXPECT_TRUE(lost);

  // Unsubscribe stops delivery; a second Unsubscribe reports NotFound.
  ASSERT_TRUE(session->Unsubscribe(*sub).ok());
  EXPECT_FALSE(session->Unsubscribe(*sub).ok());
  ASSERT_TRUE(session->Execute(
      "t: mod[ann].sal -> (S, S2) <- ann.sal -> S, S2 = S + 1.").ok());
  EXPECT_EQ(events.size(), 2u);

  // A closed session's subscriptions die with it.
  {
    std::unique_ptr<Session> other = conn->OpenSession();
    ASSERT_TRUE(other
                    ->Subscribe("rich",
                                [&](const ViewDelta& delta) {
                                  events.push_back(delta);
                                })
                    .ok());
  }
  ASSERT_TRUE(session->Execute(
      "t: mod[ann].sal -> (S, S2) <- ann.sal -> S, S2 = S + 1.").ok());
  EXPECT_EQ(events.size(), 2u);

  // DROP VIEW cancels its subscriptions: a same-named CREATE VIEW later
  // is a NEW view and must not revive the old stream.
  ASSERT_TRUE(session
                  ->Subscribe("rich",
                              [&](const ViewDelta& delta) {
                                events.push_back(delta);
                              })
                  .ok());
  ASSERT_TRUE(session->Execute("DROP VIEW rich").ok());
  ASSERT_TRUE(session->Execute(
      "CREATE VIEW rich AS "
      "derive X.rich -> yes <- X.sal -> S, S > 1.").ok());
  ASSERT_TRUE(session->Execute(
      "t: mod[ann].sal -> (S, S2) <- ann.sal -> S, S2 = S + 1.").ok());
  EXPECT_EQ(events.size(), 2u);
}

TEST(ApiSubscriptionTest, UnsubscribeInsideCallbackIsSafe) {
  std::unique_ptr<Connection> conn = MemConnection();
  ASSERT_TRUE(conn->ImportText("ann.sal -> 100.").ok());
  std::unique_ptr<Session> session = conn->OpenSession();
  ASSERT_TRUE(session->Execute(
      "CREATE VIEW rich AS "
      "derive X.rich -> yes <- X.sal -> S, S > 5000.").ok());

  // A one-shot subscriber cancels itself from inside its own callback.
  int fired = 0;
  uint64_t id = 0;
  Result<uint64_t> sub = session->Subscribe(
      "rich", [&](const ViewDelta&) {
        ++fired;
        EXPECT_TRUE(session->Unsubscribe(id).ok());
      });
  ASSERT_TRUE(sub.ok());
  id = *sub;
  ASSERT_TRUE(session->Execute(
      "t: mod[ann].sal -> (S, S2) <- ann.sal -> S, S2 = S + 1.").ok());
  ASSERT_TRUE(session->Execute(
      "t: mod[ann].sal -> (S, S2) <- ann.sal -> S, S2 = S + 1.").ok());
  EXPECT_EQ(fired, 1);
}

TEST(ApiBatchTest, ExecuteBatchGroupCommits) {
  std::string dir = ::testing::TempDir() + "/verso_api_batch";
  std::filesystem::remove_all(dir);
  Result<std::unique_ptr<Connection>> conn = Connection::Open(dir);
  ASSERT_TRUE(conn.ok()) << conn.status().ToString();
  ASSERT_TRUE((*conn)->ImportText("a.sal -> 100.").ok());
  size_t records = (*conn)->wal_records_since_checkpoint();

  std::unique_ptr<Session> session = (*conn)->OpenSession();
  Result<Statement> s1 = session->Prepare(
      "t: mod[a].sal -> (S, S2) <- a.sal -> S, S2 = S + 1.");
  Result<Statement> s2 = session->Prepare("t: ins[b].sal -> 7.");
  ASSERT_TRUE(s1.ok() && s2.ok());
  Result<std::vector<ResultSet>> out =
      session->ExecuteBatch({&*s1, &*s2});
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(out->size(), 2u);
  // One WAL record for the whole group; two epochs, and each result is
  // tagged with its OWN transaction's commit epoch.
  EXPECT_EQ((*conn)->wal_records_since_checkpoint(), records + 1);
  EXPECT_EQ((*conn)->epoch(), 3u);
  EXPECT_FALSE((*out)[0].empty());
  EXPECT_FALSE((*out)[1].empty());
  EXPECT_EQ((*out)[0].epoch(), 2u);
  EXPECT_EQ((*out)[1].epoch(), 3u);

  // Non-update statements are rejected up front.
  Result<Statement> q = session->Prepare("QUERY nosuch");
  ASSERT_TRUE(q.ok());
  EXPECT_FALSE(session->ExecuteBatch({&*q}).ok());
}

TEST(ApiPersistenceTest, ReopenRecoversCommittedState) {
  std::string dir = ::testing::TempDir() + "/verso_api_reopen";
  std::filesystem::remove_all(dir);
  {
    Result<std::unique_ptr<Connection>> conn = Connection::Open(dir);
    ASSERT_TRUE(conn.ok());
    ASSERT_TRUE((*conn)->ImportText("ann.sal -> 100.").ok());
    std::unique_ptr<Session> session = (*conn)->OpenSession();
    ASSERT_TRUE(session->Execute(
        "t: mod[ann].sal -> (S, S2) <- ann.sal -> S, S2 = S * 3.").ok());
    ASSERT_TRUE((*conn)->Checkpoint().ok());
  }
  {
    Result<std::unique_ptr<Connection>> conn = Connection::Open(dir);
    ASSERT_TRUE(conn.ok());
    EXPECT_EQ((*conn)->epoch(), 0u);  // epochs count commits since open
    std::unique_ptr<Session> session = (*conn)->OpenSession();
    Result<ResultSet> rs = session->Execute(
        "derive X.high -> yes <- X.sal -> S, S > 299.");
    ASSERT_TRUE(rs.ok());
    EXPECT_EQ(rs->size(), 1u);
  }
}

TEST(ApiObserverFailureTest, PoisonedViewSurfacesButCommitStands) {
  std::unique_ptr<Connection> conn = MemConnection();
  ASSERT_TRUE(conn->ImportText("ann.sal -> 100.").ok());
  std::unique_ptr<Session> session = conn->OpenSession();
  ASSERT_TRUE(session->Execute(
      "CREATE VIEW rich AS "
      "derive X.rich -> yes <- X.sal -> S, S > 5000.").ok());

  // A base transaction writing the view's derived method poisons the
  // view; the commit itself is installed (kObserverFailed contract).
  Result<ResultSet> rs = session->Execute("t: ins[ann].rich -> oops.");
  ASSERT_FALSE(rs.ok());
  EXPECT_EQ(rs.status().code(), StatusCode::kObserverFailed);
  EXPECT_FALSE(conn->ViewHealth("rich").ok());
  // The session re-pinned past its own (durable) commit.
  MethodId rich = conn->symbols().FindMethod("rich");
  EXPECT_NE(session->base().VidsWithMethod(rich), nullptr);
  // The poisoned view is no longer served in snapshots.
  EXPECT_FALSE(session->ViewSnapshot("rich").ok());
  // Drop and re-create to recover.
  ASSERT_FALSE(session->Execute("QUERY rich").ok());
  ASSERT_TRUE(session->Execute("DROP VIEW rich").ok());
}

TEST(ApiSnapshotTest, SessionsBetweenCommitsShareOneSnapshot) {
  std::unique_ptr<Connection> conn = MemConnection();
  ASSERT_TRUE(conn->ImportText("a.m -> 1.").ok());
  std::unique_ptr<Session> s1 = conn->OpenSession();
  std::unique_ptr<Session> s2 = conn->OpenSession();
  // Same epoch, same retained image (refcounted, not re-copied).
  EXPECT_EQ(&s1->base(), &s2->base());
  ASSERT_TRUE(s2->Execute("t: ins[b].m -> 2.").ok());
  EXPECT_NE(&s1->base(), &s2->base());  // writer re-pinned, reader kept
}

}  // namespace
}  // namespace verso
