// API-level observability tests: `QUERY METRICS` and
// Connection::DumpMetrics read the identical snapshot of the one global
// registry after a scripted workload, metric counters survive and count
// degraded-mode rejections, and the metrics surface keeps serving while
// the connection is read-only.
//
// These tests read MetricsRegistry::Global(); each gtest TEST runs as its
// own process (gtest_discover_tests), so the global state is per-test.

#include <gtest/gtest.h>

#include <sstream>

#include "api/api.h"
#include "obs/metrics.h"
#include "util/fault_env.h"

namespace verso {
namespace {

using FaultKind = FaultInjectingEnv::FaultKind;
using OpFilter = FaultInjectingEnv::OpFilter;

int64_t MetricValue(const std::vector<MetricsRegistry::Entry>& entries,
                    const std::string& name) {
  for (const auto& entry : entries) {
    if (entry.name == name) return entry.value;
  }
  ADD_FAILURE() << "missing metric " << name;
  return -1;
}

/// Commits, DDL, a subscription, reads — every layer the registry hears.
void RunScriptedWorkload(Connection& conn, Session& session,
                         size_t* deliveries) {
  ASSERT_TRUE(conn.ImportText(R"(
      ann.isa -> empl.  ann.sal -> 1000.
      bob.isa -> empl.  bob.sal -> 400.
  )").ok());
  ASSERT_TRUE(session
                  .Execute("CREATE VIEW rich AS derive X.rich -> yes <- "
                           "X.sal -> S, S > 500.")
                  .ok());
  ASSERT_TRUE(session
                  .Subscribe("rich",
                             [deliveries](const ViewDelta&) {
                               ++*deliveries;
                             })
                  .ok());
  ASSERT_TRUE(session
                  .Execute("raise: mod[E].sal -> (S, S2) <- E.isa -> empl, "
                           "E.sal -> S, S2 = S * 2.")
                  .ok());
  Result<Statement> b1 = session.Prepare("t: ins[cal].sal -> 600.");
  Result<Statement> b2 = session.Prepare("t: ins[dee].sal -> 700.");
  ASSERT_TRUE(b1.ok() && b2.ok());
  ASSERT_TRUE(session.ExecuteBatch({&*b1, &*b2}).ok());
  ASSERT_TRUE(
      session.Execute("derive X.poor -> yes <- X.sal -> S, S < 500.").ok());
  ASSERT_TRUE(session.Execute("QUERY rich").ok());
}

TEST(MetricsApiTest, QueryMetricsEqualsDumpMetricsAfterScriptedWorkload) {
  Result<std::unique_ptr<Connection>> conn = Connection::OpenInMemory();
  ASSERT_TRUE(conn.ok());
  auto session = (*conn)->OpenSession();
  size_t deliveries = 0;
  RunScriptedWorkload(**conn, *session, &deliveries);
  EXPECT_GT(deliveries, 0u);

  // QUERY METRICS bumps nothing during execution, so its snapshot and a
  // DumpMetrics right after serialize byte-identically.
  Result<ResultSet> rs = session->Execute("QUERY METRICS");
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->kind(), ResultSet::Kind::kMetrics);
  EXPECT_FALSE(rs->empty());
  std::ostringstream from_query;
  MetricsRegistry::WriteJson(rs->metrics(), from_query);
  std::ostringstream from_dump;
  (*conn)->DumpMetrics(from_dump);
  EXPECT_EQ(from_query.str(), from_dump.str());

  // The cursor renders the same entries as name/value rows, in order.
  size_t row = 0;
  while (rs->Next()) {
    EXPECT_EQ(rs->metric_name(), rs->metrics()[row].name);
    EXPECT_EQ(rs->metric_value(), rs->metrics()[row].value);
    ++row;
  }
  EXPECT_EQ(row, rs->size());

  // Every layer reported: commit pipeline, evaluation bridge, views,
  // sessions, statements, subscriptions.
  const auto& entries = rs->metrics();
  EXPECT_GE(MetricValue(entries, "commit.count"), 4);  // import+raise+batch
  EXPECT_GE(MetricValue(entries, "commit.batches"), 1);
  EXPECT_GT(MetricValue(entries, "commit.delta_facts"), 0);
  EXPECT_GT(MetricValue(entries, "commit.total_us.count"), 0);
  EXPECT_GT(MetricValue(entries, "eval.strata"), 0);
  EXPECT_GT(MetricValue(entries, "eval.rounds"), 0);
  EXPECT_GT(MetricValue(entries, "eval.updates_derived"), 0);
  EXPECT_GT(MetricValue(entries, "view.maintenance_runs"), 0);
  EXPECT_GT(MetricValue(entries, "session.opened"), 0);
  EXPECT_GT(MetricValue(entries, "session.pins"), 0);
  EXPECT_GT(MetricValue(entries, "statement.prepared"), 0);
  EXPECT_GT(MetricValue(entries, "query.count"), 0);
  EXPECT_GE(MetricValue(entries, "query.view_reads"), 1);
  EXPECT_GT(MetricValue(entries, "subscription.deliveries"), 0);
  EXPECT_EQ(MetricValue(entries, "storage.faults"), 0);
}

TEST(MetricsApiTest, QueryMetricsKeywordIsCaseInsensitive) {
  Result<std::unique_ptr<Connection>> conn = Connection::OpenInMemory();
  ASSERT_TRUE(conn.ok());
  auto session = (*conn)->OpenSession();
  for (const char* text :
       {"QUERY METRICS", "query metrics", "Query Metrics."}) {
    Result<Statement> stmt = session->Prepare(text);
    ASSERT_TRUE(stmt.ok()) << text;
    EXPECT_EQ(stmt->kind(), Statement::Kind::kMetrics) << text;
    EXPECT_TRUE(stmt->Execute().ok()) << text;
  }
  // METRICS is reserved: a view of that name can exist, but QUERY
  // resolves the word to the registry, never the view.
  ASSERT_TRUE(session
                  ->Execute("CREATE VIEW metrics AS derive X.m -> yes <- "
                            "X.sal -> S.")
                  .ok());
  Result<ResultSet> rs = session->Execute("QUERY metrics");
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->kind(), ResultSet::Kind::kMetrics);
}

TEST(MetricsApiTest, DegradedModeRejectionsAreCountedAndMetricsStillServe) {
  FaultInjectingEnv env;
  ConnectionOptions options;
  options.env = &env;
  options.retry_backoff_us = 0;
  Result<std::unique_ptr<Connection>> conn = Connection::Open("/db", options);
  ASSERT_TRUE(conn.ok());
  auto session = (*conn)->OpenSession();
  ASSERT_TRUE(session->Execute("t: ins[ann].sal -> 1000.").ok());

  FaultInjectingEnv::FaultPlan plan;
  plan.fail_at = 0;
  plan.kind = FaultKind::kEnospc;
  plan.filter = OpFilter::kAppend;
  env.SetPlan(plan);
  ASSERT_FALSE(session->Execute("t: ins[bob].sal -> 2000.").ok());
  ASSERT_FALSE((*conn)->health().ok());
  env.Disarm();

  // Two refused writes while degraded, each counted.
  EXPECT_EQ(session->Execute("t: ins[cal].sal -> 3000.").status().code(),
            StatusCode::kReadOnly);
  EXPECT_EQ(session->Execute("t: ins[dee].sal -> 4000.").status().code(),
            StatusCode::kReadOnly);

  // The metrics surface is a read: it serves while degraded, and the
  // failure path is on it — fault, degradation, and rejections counted.
  Result<ResultSet> rs = session->Execute("QUERY METRICS");
  ASSERT_TRUE(rs.ok());
  const auto& entries = rs->metrics();
  EXPECT_GE(MetricValue(entries, "storage.faults"), 1);
  EXPECT_EQ(MetricValue(entries, "storage.degraded_entered"), 1);
  EXPECT_EQ(MetricValue(entries, "commit.rejected_readonly"), 2);
  // The failed commit's WAL span recorded even though the append failed.
  EXPECT_GT(MetricValue(entries, "commit.wal_append_us.count"), 0);
  std::ostringstream dump;
  (*conn)->DumpMetrics(dump);
  std::ostringstream from_query;
  MetricsRegistry::WriteJson(rs->metrics(), from_query);
  EXPECT_EQ(from_query.str(), dump.str());
}

TEST(MetricsApiTest, RecoveryAndCheckpointCountersAreReported) {
  // The storage.* recovery surface: after a checkpoint plus a two-commit
  // WAL suffix, a cold reopen reports exactly the suffix as replayed
  // frames, the base as recovered store keys, and the checkpoint itself
  // on the store/checkpoint counters.
  FaultInjectingEnv env;
  ConnectionOptions options;
  options.env = &env;
  options.retry_backoff_us = 0;
  options.store_backend = StoreBackend::kPageLog;
  {
    Result<std::unique_ptr<Connection>> conn =
        Connection::Open("/db", options);
    ASSERT_TRUE(conn.ok());
    auto session = (*conn)->OpenSession();
    ASSERT_TRUE(session->Execute("t: ins[ann].sal -> 1000.").ok());
    ASSERT_TRUE(session->Execute("t: ins[bob].sal -> 2000.").ok());
    ASSERT_TRUE(session->Execute("t: ins[cal].sal -> 3000.").ok());
    ASSERT_TRUE((*conn)->Checkpoint().ok());
    ASSERT_TRUE(session->Execute("t: ins[dee].sal -> 4000.").ok());
    ASSERT_TRUE(session->Execute("t: ins[eve].sal -> 5000.").ok());
  }
  // The first open of an empty directory replayed nothing; snapshot the
  // counters before the reopen so the assertions see only its deltas.
  MetricsRegistry& registry = MetricsRegistry::Global();
  int64_t frames_before =
      static_cast<int64_t>(registry.GetCounter("storage.recovery_replayed_frames").value());
  int64_t keys_before =
      static_cast<int64_t>(registry.GetCounter("storage.recovery_store_keys").value());
  EXPECT_EQ(frames_before, 0);

  Result<std::unique_ptr<Connection>> conn = Connection::Open("/db", options);
  ASSERT_TRUE(conn.ok()) << conn.status().ToString();
  auto session = (*conn)->OpenSession();
  Result<ResultSet> rs = session->Execute("QUERY METRICS");
  ASSERT_TRUE(rs.ok());
  const auto& entries = rs->metrics();
  EXPECT_EQ(MetricValue(entries, "storage.recovery_replayed_frames") -
                frames_before,
            2);  // only the post-checkpoint WAL suffix
  EXPECT_GT(MetricValue(entries, "storage.recovery_store_keys") - keys_before,
            0);  // ann/bob/cal came from the store, not the WAL
  EXPECT_GE(MetricValue(entries, "storage.recovery_us"), 0);
  EXPECT_EQ(MetricValue(entries, "storage.checkpoints"), 1);
  EXPECT_EQ(MetricValue(entries, "storage.auto_checkpoints"), 0);
  EXPECT_GE(MetricValue(entries, "store.commits"), 1);
  EXPECT_GT(MetricValue(entries, "store.puts"), 0);
  EXPECT_GT(MetricValue(entries, "storage.checkpoint_us.count"), 0);
}

}  // namespace
}  // namespace verso
