// Unit tests for the always-on metrics subsystem (src/obs): counter
// monotonicity, histogram quantile bounds, snapshot-vs-live consistency,
// the enabled (ablation) gate, deterministic timing through FakeClock,
// and the stable JSON document.

#include <gtest/gtest.h>

#include <sstream>

#include "obs/metrics.h"
#include "util/clock.h"

namespace verso {
namespace {

TEST(CounterTest, AddsMonotonically) {
  MetricsRegistry registry;
  Counter& counter = registry.GetCounter("c");
  EXPECT_EQ(counter.value(), 0u);
  counter.Add();
  counter.Add(41);
  EXPECT_EQ(counter.value(), 42u);
  // Same name, same handle: registration is idempotent.
  EXPECT_EQ(&registry.GetCounter("c"), &counter);
  registry.GetCounter("c").Add();
  EXPECT_EQ(counter.value(), 43u);
}

TEST(GaugeTest, SetAndAddMayGoDown) {
  MetricsRegistry registry;
  Gauge& gauge = registry.GetGauge("g");
  gauge.Set(10);
  gauge.Add(-25);
  EXPECT_EQ(gauge.value(), -15);
}

TEST(HistogramTest, BucketBoundaries) {
  EXPECT_EQ(Histogram::BucketOf(0), 0u);
  EXPECT_EQ(Histogram::BucketOf(1), 1u);
  EXPECT_EQ(Histogram::BucketOf(2), 2u);
  EXPECT_EQ(Histogram::BucketOf(3), 2u);
  EXPECT_EQ(Histogram::BucketOf(4), 3u);
  EXPECT_EQ(Histogram::BucketOf(1023), 10u);
  EXPECT_EQ(Histogram::BucketOf(1024), 11u);
  // Saturation: enormous samples land in the last bucket.
  EXPECT_EQ(Histogram::BucketOf(~0ull), Histogram::kBuckets - 1);
  EXPECT_EQ(Histogram::BucketUpperBound(0), 1u);
  EXPECT_EQ(Histogram::BucketUpperBound(10), 1024u);
}

TEST(HistogramTest, QuantileIsUpperBoundWithinTwoX) {
  MetricsRegistry registry;
  Histogram& hist = registry.GetHistogram("h");
  // 100 samples 1..100 µs: the quantile estimate must bound the true
  // quantile from above and stay within the 2x bucket-resolution bound.
  for (uint64_t v = 1; v <= 100; ++v) hist.Record(v);
  EXPECT_EQ(hist.count(), 100u);
  EXPECT_EQ(hist.sum_micros(), 5050u);
  struct Case {
    double q;
    uint64_t truth;
  };
  for (const Case& c : {Case{0.50, 50}, Case{0.95, 95}, Case{0.99, 99},
                        Case{1.0, 100}}) {
    uint64_t estimate = hist.ValueAtQuantile(c.q);
    EXPECT_GE(estimate, c.truth) << "q=" << c.q;
    EXPECT_LE(estimate, 2 * c.truth) << "q=" << c.q;
  }
}

TEST(HistogramTest, EmptyQuantileIsZero) {
  MetricsRegistry registry;
  Histogram& hist = registry.GetHistogram("h");
  EXPECT_EQ(hist.ValueAtQuantile(0.5), 0u);
}

TEST(MetricsRegistryTest, DisabledGateFreezesEveryKind) {
  MetricsRegistry registry;
  Counter& counter = registry.GetCounter("c");
  Gauge& gauge = registry.GetGauge("g");
  Histogram& hist = registry.GetHistogram("h");
  counter.Add(5);
  registry.set_enabled(false);
  counter.Add(100);
  gauge.Set(7);
  hist.Record(3);
  EXPECT_EQ(counter.value(), 5u);  // retained, not reset
  EXPECT_EQ(gauge.value(), 0);
  EXPECT_EQ(hist.count(), 0u);
  registry.set_enabled(true);
  counter.Add();
  EXPECT_EQ(counter.value(), 6u);
}

TEST(MetricsRegistryTest, SnapshotMatchesLiveValuesSortedByName) {
  MetricsRegistry registry;
  registry.GetCounter("z.last").Add(3);
  registry.GetCounter("a.first").Add(1);
  registry.GetGauge("m.middle").Set(-2);
  registry.GetHistogram("h.hist").Record(10);

  std::vector<MetricsRegistry::Entry> entries = registry.Snapshot();
  ASSERT_EQ(entries.size(), 2u + 1u + 5u);  // histogram expands to 5 rows
  for (size_t i = 1; i < entries.size(); ++i) {
    EXPECT_LT(entries[i - 1].name, entries[i].name);
  }
  auto value_of = [&entries](const std::string& name) -> int64_t {
    for (const auto& entry : entries) {
      if (entry.name == name) return entry.value;
    }
    ADD_FAILURE() << "missing entry " << name;
    return -1;
  };
  EXPECT_EQ(value_of("a.first"), 1);
  EXPECT_EQ(value_of("z.last"), 3);
  EXPECT_EQ(value_of("m.middle"), -2);
  EXPECT_EQ(value_of("h.hist.count"), 1);
  EXPECT_EQ(value_of("h.hist.sum_us"), 10);
  EXPECT_EQ(value_of("h.hist.p50_us"), 16);  // bucket upper bound of 10µs

  // Snapshot is a copy: later events do not retro-change it, and a fresh
  // snapshot sees them.
  registry.GetCounter("a.first").Add();
  EXPECT_EQ(value_of("a.first"), 1);
  EXPECT_EQ(registry.Snapshot()[0].value, 2);
}

TEST(MetricsRegistryTest, ResetZeroesValuesButKeepsRegistrations) {
  MetricsRegistry registry;
  Counter& counter = registry.GetCounter("c");
  Histogram& hist = registry.GetHistogram("h");
  counter.Add(9);
  hist.Record(100);
  registry.Reset();
  EXPECT_EQ(counter.value(), 0u);
  EXPECT_EQ(hist.count(), 0u);
  EXPECT_EQ(hist.ValueAtQuantile(0.5), 0u);
  EXPECT_EQ(&registry.GetCounter("c"), &counter);  // handle survives
}

TEST(MetricsRegistryTest, JsonIsStableAndByteIdenticalForEqualSnapshots) {
  MetricsRegistry registry;
  registry.GetCounter("b.count").Add(2);
  registry.GetCounter("a.count").Add(1);
  std::ostringstream first;
  std::ostringstream second;
  registry.DumpJson(first);
  registry.DumpJson(second);
  EXPECT_EQ(first.str(), second.str());
  EXPECT_EQ(first.str(),
            "{\n"
            "  \"verso_metrics_version\": 1,\n"
            "  \"metrics\": {\n"
            "    \"a.count\": 1,\n"
            "    \"b.count\": 2\n"
            "  }\n"
            "}\n");
}

TEST(ScopedTimerTest, RecordsElapsedMicrosThroughFakeClock) {
  MetricsRegistry registry;
  FakeClock clock;
  registry.set_clock(&clock);
  Histogram& hist = registry.GetHistogram("span_us");
  {
    ScopedTimer timer(registry, hist);
    clock.AdvanceMicros(300);
  }  // records on destruction
  EXPECT_EQ(hist.count(), 1u);
  EXPECT_EQ(hist.sum_micros(), 300u);

  ScopedTimer timer(registry, hist);
  clock.AdvanceMicros(40);
  EXPECT_EQ(timer.Stop(), 40u);
  EXPECT_EQ(timer.Stop(), 0u);  // Stop is once-only
  EXPECT_EQ(hist.count(), 2u);
  EXPECT_EQ(hist.sum_micros(), 340u);
}

TEST(ScopedTimerTest, DisabledRegistrySkipsClockEntirely) {
  MetricsRegistry registry;
  FakeClock clock;
  registry.set_clock(&clock);
  registry.set_enabled(false);
  Histogram& hist = registry.GetHistogram("span_us");
  {
    ScopedTimer timer(registry, hist);
    clock.AdvanceMicros(300);
  }
  EXPECT_EQ(hist.count(), 0u);
}

}  // namespace
}  // namespace verso
