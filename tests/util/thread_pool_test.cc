#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <set>
#include <vector>

namespace verso {
namespace {

TEST(ThreadPool, SingleLaneRunsInline) {
  ThreadPool pool(4);
  std::vector<int> seen;
  pool.Run(1, [&](int lane) { seen.push_back(lane); });
  EXPECT_EQ(seen, std::vector<int>{0});
  EXPECT_EQ(pool.worker_count(), 0u);  // lazily started: none needed yet
}

TEST(ThreadPool, EveryLaneRunsExactlyOnce) {
  ThreadPool pool(3);
  constexpr int kLanes = 8;  // more lanes than workers: overflow on caller
  std::mutex mu;
  std::multiset<int> seen;
  pool.Run(kLanes, [&](int lane) {
    std::lock_guard<std::mutex> lock(mu);
    seen.insert(lane);
  });
  EXPECT_EQ(seen.size(), static_cast<size_t>(kLanes));
  for (int i = 0; i < kLanes; ++i) {
    EXPECT_EQ(seen.count(i), 1u) << "lane " << i;
  }
}

TEST(ThreadPool, WorkersStartLazilyAndAreReused) {
  ThreadPool pool(2);
  std::atomic<int> hits{0};
  pool.Run(3, [&](int) { hits.fetch_add(1); });
  EXPECT_EQ(hits.load(), 3);
  EXPECT_LE(pool.worker_count(), 2u);
  const size_t after_first = pool.worker_count();
  pool.Run(3, [&](int) { hits.fetch_add(1); });
  EXPECT_EQ(hits.load(), 6);
  EXPECT_EQ(pool.worker_count(), after_first);
}

TEST(ThreadPool, QueueWaitSamplesPerDispatchedJob) {
  ThreadPool pool(2);
  std::vector<uint64_t> waits;
  pool.Run(4, [&](int) {}, &waits);
  // 4 lanes = caller + up to 2 dispatched + overflow on caller; only the
  // dispatched jobs produce queue-wait samples.
  EXPECT_LE(waits.size(), 2u);
  pool.Run(1, [&](int) {}, &waits);  // inline run adds no samples
  EXPECT_LE(waits.size(), 2u);
}

TEST(ThreadPool, SharedPoolIsUsable) {
  std::atomic<int> hits{0};
  ThreadPool::Shared().Run(2, [&](int) { hits.fetch_add(1); });
  EXPECT_EQ(hits.load(), 2);
  EXPECT_GE(ThreadPool::Shared().max_lanes(), 1);
}

TEST(ThreadPool, ManyRoundsStayConsistent) {
  ThreadPool pool(4);
  for (int round = 0; round < 200; ++round) {
    std::atomic<int> sum{0};
    pool.Run(4, [&](int lane) { sum.fetch_add(lane + 1); });
    ASSERT_EQ(sum.load(), 1 + 2 + 3 + 4);
  }
}

}  // namespace
}  // namespace verso
