// FaultInjectingEnv semantics: the deterministic in-memory filesystem the
// crash-recovery torture harness is built on. These tests pin down the
// oracle itself — op counting, fault kinds, short writes, crash behavior —
// so the torture tests can trust it.

#include <gtest/gtest.h>

#include "util/fault_env.h"

namespace verso {
namespace {

using FaultKind = FaultInjectingEnv::FaultKind;
using OpFilter = FaultInjectingEnv::OpFilter;

TEST(FaultEnvTest, InMemoryFileOpsRoundTrip) {
  FaultInjectingEnv env;
  ASSERT_TRUE(env.EnsureDirectory("/d").ok());
  EXPECT_TRUE(env.FileExists("/d"));
  EXPECT_FALSE(env.FileExists("/d/f"));
  ASSERT_TRUE(env.WriteFile("/d/f", "hello").ok());
  EXPECT_TRUE(env.FileExists("/d/f"));
  EXPECT_EQ(*env.ReadFile("/d/f"), "hello");
  ASSERT_TRUE(env.AppendFile("/d/f", " world").ok());
  EXPECT_EQ(*env.ReadFile("/d/f"), "hello world");
  EXPECT_EQ(*env.FileSize("/d/f"), 11u);
  ASSERT_TRUE(env.TruncateFile("/d/f", 5).ok());
  EXPECT_EQ(*env.ReadFile("/d/f"), "hello");
  ASSERT_TRUE(env.RenameFile("/d/f", "/d/g").ok());
  EXPECT_FALSE(env.FileExists("/d/f"));
  EXPECT_EQ(*env.ReadFile("/d/g"), "hello");
  ASSERT_TRUE(env.RemoveFile("/d/g").ok());
  EXPECT_FALSE(env.FileExists("/d/g"));
  // Posix parity: removing a missing file is not an error, reading one is.
  EXPECT_TRUE(env.RemoveFile("/d/g").ok());
  EXPECT_FALSE(env.ReadFile("/d/g").ok());
}

TEST(FaultEnvTest, WriteFileAtomicGoesThroughWriteAndRename) {
  FaultInjectingEnv env;
  ASSERT_TRUE(env.WriteFileAtomic("/f", "v1").ok());
  EXPECT_EQ(*env.ReadFile("/f"), "v1");
  // The two-step sequence is visible to the fault plan: crashing the
  // rename leaves the OLD contents in place (the atomicity being tested
  // by the checkpoint crash-window suite).
  FaultInjectingEnv::FaultPlan plan;
  plan.fail_at = 0;
  plan.kind = FaultKind::kCrash;
  plan.filter = OpFilter::kRename;
  plan.partial_bytes = 0;  // the rename did not happen
  env.SetPlan(plan);
  EXPECT_FALSE(env.WriteFileAtomic("/f", "v2").ok());
  auto survivor = env.CloneSurvivingFiles();
  EXPECT_EQ(*survivor->ReadFile("/f"), "v1");
}

TEST(FaultEnvTest, FailsNthMutatingOpThenRecovers) {
  FaultInjectingEnv env;
  FaultInjectingEnv::FaultPlan plan;
  plan.fail_at = 1;  // the second mutating op
  plan.kind = FaultKind::kEio;
  env.SetPlan(plan);
  ASSERT_TRUE(env.WriteFile("/a", "x").ok());  // op 0
  Status s = env.WriteFile("/b", "y");         // op 1: injected
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kIoError);
  EXPECT_EQ(env.faults_hit(), 1u);
  EXPECT_FALSE(env.crashed());
  // One-shot plan (repeat = 1): the env works again afterwards.
  ASSERT_TRUE(env.WriteFile("/c", "z").ok());  // op 2
  EXPECT_EQ(env.mutating_ops(), 3u);
}

TEST(FaultEnvTest, TransientKindIsRetryableStatus) {
  FaultInjectingEnv env;
  FaultInjectingEnv::FaultPlan plan;
  plan.fail_at = 0;
  plan.kind = FaultKind::kTransient;
  env.SetPlan(plan);
  Status s = env.AppendFile("/a", "x");
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kIoTransient);
  ASSERT_TRUE(env.AppendFile("/a", "x").ok());
}

TEST(FaultEnvTest, RepeatFailsConsecutiveMatchingOps) {
  FaultInjectingEnv env;
  FaultInjectingEnv::FaultPlan plan;
  plan.fail_at = 0;
  plan.repeat = 3;
  plan.kind = FaultKind::kTransient;
  plan.filter = OpFilter::kAppend;
  env.SetPlan(plan);
  for (int i = 0; i < 3; ++i) {
    EXPECT_FALSE(env.AppendFile("/a", "x").ok()) << i;
    // Non-append ops do not consume the append budget (the storage
    // layer's rollback TruncateFile between retries relies on this).
    ASSERT_TRUE(env.WriteFile("/b", "y").ok()) << i;
  }
  EXPECT_TRUE(env.AppendFile("/a", "x").ok());
  EXPECT_EQ(env.faults_hit(), 3u);
}

TEST(FaultEnvTest, ShortWriteLandsPrefixThenFails) {
  FaultInjectingEnv env;
  ASSERT_TRUE(env.AppendFile("/wal", "AAAA").ok());
  FaultInjectingEnv::FaultPlan plan;
  plan.fail_at = 0;
  plan.kind = FaultKind::kEio;
  plan.partial_bytes = 2;
  plan.filter = OpFilter::kAppend;
  env.SetPlan(plan);
  EXPECT_FALSE(env.AppendFile("/wal", "BBBB").ok());
  // The short write is visible: the old contents plus a prefix of the
  // failed payload — the torn-tail shape recovery must cope with.
  EXPECT_EQ(*env.ReadFile("/wal"), "AAAABB");
}

TEST(FaultEnvTest, CrashKillsEverythingAfterward) {
  FaultInjectingEnv env;
  ASSERT_TRUE(env.WriteFile("/a", "kept").ok());
  FaultInjectingEnv::FaultPlan plan;
  plan.fail_at = 1;
  plan.kind = FaultKind::kCrash;
  plan.partial_bytes = 1;
  env.SetPlan(plan);
  EXPECT_FALSE(env.WriteFile("/b", "lost").ok());
  EXPECT_TRUE(env.crashed());
  // The process is dead: reads, writes, everything fails now.
  EXPECT_FALSE(env.ReadFile("/a").ok());
  EXPECT_FALSE(env.WriteFile("/c", "x").ok());
  EXPECT_FALSE(env.FileSize("/a").ok());
  // The surviving disk image holds the pre-crash state plus the partial
  // payload of the crashing op, and is itself fully functional.
  auto survivor = env.CloneSurvivingFiles();
  EXPECT_FALSE(survivor->crashed());
  EXPECT_EQ(*survivor->ReadFile("/a"), "kept");
  EXPECT_EQ(*survivor->ReadFile("/b"), "l");
  ASSERT_TRUE(survivor->WriteFile("/c", "alive").ok());
}

TEST(FaultEnvTest, FilteredPlanSkipsNonMatchingOps) {
  FaultInjectingEnv env;
  ASSERT_TRUE(env.WriteFile("/a", "x").ok());
  FaultInjectingEnv::FaultPlan plan;
  plan.fail_at = 0;
  plan.kind = FaultKind::kEio;
  plan.filter = OpFilter::kRemove;
  env.SetPlan(plan);
  // Writes, appends, renames sail through; the first REMOVE fails.
  ASSERT_TRUE(env.WriteFile("/b", "y").ok());
  ASSERT_TRUE(env.AppendFile("/b", "y").ok());
  ASSERT_TRUE(env.RenameFile("/b", "/c").ok());
  EXPECT_FALSE(env.RemoveFile("/a").ok());
  EXPECT_TRUE(env.FileExists("/a"));  // partial_bytes == 0: did not happen
  ASSERT_TRUE(env.RemoveFile("/a").ok());
}

TEST(FaultEnvTest, NonDataOpPartialBytesMeansItHappened) {
  FaultInjectingEnv env;
  ASSERT_TRUE(env.WriteFile("/a", "x").ok());
  FaultInjectingEnv::FaultPlan plan;
  plan.fail_at = 0;
  plan.kind = FaultKind::kCrash;
  plan.filter = OpFilter::kRemove;
  plan.partial_bytes = 1;  // the remove completed, then the crash hit
  env.SetPlan(plan);
  EXPECT_FALSE(env.RemoveFile("/a").ok());
  auto survivor = env.CloneSurvivingFiles();
  EXPECT_FALSE(survivor->FileExists("/a"));
}

}  // namespace
}  // namespace verso
