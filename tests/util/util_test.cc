// Tests for Status/Result, CRC32, the string interner, and file IO.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "util/crc32.h"
#include "util/interner.h"
#include "util/io.h"
#include "util/result.h"
#include "util/status.h"

namespace verso {
namespace {

// ---- Status / Result -----------------------------------------------------

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, CarriesCodeAndMessage) {
  Status s = Status::NotStratifiable("rule7 vs rule9");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotStratifiable);
  EXPECT_EQ(s.ToString(), "NotStratifiable: rule7 vs rule9");
}

TEST(StatusTest, EveryCodeHasAName) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kParseError,
        StatusCode::kUnsafeRule, StatusCode::kNotStratifiable,
        StatusCode::kNotVersionLinear, StatusCode::kDivergence,
        StatusCode::kIoError, StatusCode::kCorruption, StatusCode::kNotFound,
        StatusCode::kInternal}) {
    EXPECT_FALSE(StatusCodeName(code).empty());
    EXPECT_NE(StatusCodeName(code), "Unknown");
  }
}

Result<int> ParsePositive(int v) {
  if (v <= 0) return Status::InvalidArgument("not positive");
  return v;
}

Result<int> Doubled(int v) {
  VERSO_ASSIGN_OR_RETURN(int value, ParsePositive(v));
  return value * 2;
}

TEST(ResultTest, ValueAndStatusPaths) {
  Result<int> good = Doubled(21);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(*good, 42);
  Result<int> bad = Doubled(-1);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(bad.value_or(7), 7);
}

TEST(ResultTest, MoveOnlyValues) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(9));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 9);
}

// ---- CRC32 ----------------------------------------------------------------

TEST(Crc32Test, KnownVectors) {
  // Standard IEEE CRC-32 check value for "123456789".
  EXPECT_EQ(Crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(Crc32("", 0), 0u);
  EXPECT_EQ(Crc32("a", 1), 0xE8B7BE43u);
}

TEST(Crc32Test, IncrementalMatchesOneShot) {
  const char* data = "the quick brown fox jumps over the lazy dog";
  size_t len = 43;
  uint32_t whole = Crc32(data, len);
  uint32_t split = Crc32Extend(Crc32(data, 10), data + 10, len - 10);
  EXPECT_EQ(whole, split);
}

TEST(Crc32Test, DetectsBitFlip) {
  std::string payload = "versioned object base";
  uint32_t before = Crc32(payload.data(), payload.size());
  payload[5] ^= 0x01;
  EXPECT_NE(before, Crc32(payload.data(), payload.size()));
}

// ---- StringInterner --------------------------------------------------------

TEST(InternerTest, DenseStableIds) {
  StringInterner interner;
  uint32_t a = interner.Intern("alpha");
  uint32_t b = interner.Intern("beta");
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 1u);
  EXPECT_EQ(interner.Intern("alpha"), a);
  EXPECT_EQ(interner.Get(a), "alpha");
  EXPECT_EQ(interner.size(), 2u);
}

TEST(InternerTest, FindWithoutInterning) {
  StringInterner interner;
  interner.Intern("x");
  EXPECT_EQ(interner.Find("x"), 0u);
  EXPECT_EQ(interner.Find("y"), StringInterner::kNotFound);
  EXPECT_EQ(interner.size(), 1u);
}

// ---- IO --------------------------------------------------------------------

class IoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Per-case directory: ctest runs each case as its own process, so a
    // shared path races one case's remove_all against another's writes.
    dir_ = ::testing::TempDir() + "/verso_io_test_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
    ASSERT_TRUE(EnsureDirectory(dir_).ok());
  }
  std::string dir_;
};

TEST_F(IoTest, WriteReadRoundTrip) {
  std::string path = dir_ + "/file.bin";
  std::string payload = "binary\0data", expect(payload);
  ASSERT_TRUE(WriteFile(path, payload).ok());
  Result<std::string> back = ReadFile(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, expect);
}

TEST_F(IoTest, ReadMissingFileIsIoError) {
  Result<std::string> r = ReadFile(dir_ + "/nope");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
}

TEST_F(IoTest, AtomicWriteLeavesNoTemp) {
  std::string path = dir_ + "/atomic.txt";
  ASSERT_TRUE(WriteFileAtomic(path, "v1").ok());
  ASSERT_TRUE(WriteFileAtomic(path, "v2").ok());
  EXPECT_EQ(*ReadFile(path), "v2");
  EXPECT_FALSE(FileExists(path + ".tmp"));
}

TEST_F(IoTest, AppendAccumulates) {
  std::string path = dir_ + "/log";
  ASSERT_TRUE(AppendFile(path, "a").ok());
  ASSERT_TRUE(AppendFile(path, "bc").ok());
  EXPECT_EQ(*ReadFile(path), "abc");
}

TEST_F(IoTest, RemoveIsIdempotent) {
  std::string path = dir_ + "/gone";
  ASSERT_TRUE(WriteFile(path, "x").ok());
  EXPECT_TRUE(RemoveFile(path).ok());
  EXPECT_TRUE(RemoveFile(path).ok());  // missing file is fine
  EXPECT_FALSE(FileExists(path));
}

}  // namespace
}  // namespace verso
