#include "util/numeric.h"

#include <gtest/gtest.h>

namespace verso {
namespace {

Numeric N(int64_t num, int64_t den = 1) {
  Result<Numeric> r = Numeric::FromRatio(num, den);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return *r;
}

TEST(NumericTest, DefaultIsZero) {
  Numeric zero;
  EXPECT_TRUE(zero.is_zero());
  EXPECT_TRUE(zero.is_integer());
  EXPECT_EQ(zero.ToString(), "0");
}

TEST(NumericTest, FromRatioNormalizes) {
  EXPECT_EQ(N(4, 8), N(1, 2));
  EXPECT_EQ(N(-4, 8), N(-1, 2));
  EXPECT_EQ(N(4, -8), N(-1, 2));   // sign moves to numerator
  EXPECT_EQ(N(-4, -8), N(1, 2));
  EXPECT_EQ(N(0, 7), N(0));
}

TEST(NumericTest, FromRatioRejectsZeroDenominator) {
  EXPECT_FALSE(Numeric::FromRatio(1, 0).ok());
}

TEST(NumericTest, ParseIntegers) {
  EXPECT_EQ(*Numeric::Parse("250"), N(250));
  EXPECT_EQ(*Numeric::Parse("-12"), N(-12));
  EXPECT_EQ(*Numeric::Parse("+7"), N(7));
  EXPECT_EQ(*Numeric::Parse("0"), N(0));
}

TEST(NumericTest, ParseDecimalsExactly) {
  EXPECT_EQ(*Numeric::Parse("1.1"), N(11, 10));
  EXPECT_EQ(*Numeric::Parse("3.50"), N(7, 2));
  EXPECT_EQ(*Numeric::Parse(".5"), N(1, 2));
  EXPECT_EQ(*Numeric::Parse("-0.25"), N(-1, 4));
}

TEST(NumericTest, ParseRejectsGarbage) {
  EXPECT_FALSE(Numeric::Parse("").ok());
  EXPECT_FALSE(Numeric::Parse("abc").ok());
  EXPECT_FALSE(Numeric::Parse("1.2.3").ok());
  EXPECT_FALSE(Numeric::Parse("1e5").ok());
  EXPECT_FALSE(Numeric::Parse("-").ok());
  EXPECT_FALSE(Numeric::Parse(".").ok());
}

// The property the whole library leans on: the paper's salary arithmetic
// is exact. 250 * 1.1 == 275 and 4000 * 1.1 + 200 == 4600, with equality
// being plain == on the normalized representation.
TEST(NumericTest, PaperSalaryArithmeticIsExact) {
  Numeric rate = *Numeric::Parse("1.1");
  EXPECT_EQ(*Numeric::Mul(N(250), rate), N(275));
  EXPECT_EQ(*Numeric::Add(*Numeric::Mul(N(4000), rate), N(200)), N(4600));
  EXPECT_EQ(*Numeric::Mul(N(4200), rate), N(4620));
}

TEST(NumericTest, AddSubMulDiv) {
  EXPECT_EQ(*Numeric::Add(N(1, 3), N(1, 6)), N(1, 2));
  EXPECT_EQ(*Numeric::Sub(N(1, 2), N(1, 3)), N(1, 6));
  EXPECT_EQ(*Numeric::Mul(N(2, 3), N(3, 4)), N(1, 2));
  EXPECT_EQ(*Numeric::Div(N(1, 2), N(1, 4)), N(2));
  EXPECT_FALSE(Numeric::Div(N(1), N(0)).ok());
  EXPECT_EQ(*Numeric::Neg(N(3, 7)), N(-3, 7));
}

TEST(NumericTest, CompareTotalOrder) {
  EXPECT_LT(Numeric::Compare(N(1, 3), N(1, 2)), 0);
  EXPECT_GT(Numeric::Compare(N(-1, 3), N(-1, 2)), 0);
  EXPECT_EQ(Numeric::Compare(N(2, 4), N(1, 2)), 0);
  EXPECT_TRUE(N(1, 3) < N(34, 100));
}

TEST(NumericTest, CompareDoesNotOverflow) {
  // Cross-multiplication of near-max values must not wrap.
  Numeric big1 = N(INT64_MAX - 1, 3);
  Numeric big2 = N(INT64_MAX - 2, 3);
  EXPECT_GT(Numeric::Compare(big1, big2), 0);
}

TEST(NumericTest, OverflowIsAnErrorNotWrap) {
  Numeric big = N(INT64_MAX);
  EXPECT_FALSE(Numeric::Add(big, N(1)).ok());
  EXPECT_FALSE(Numeric::Mul(big, N(2)).ok());
  // But g-c-d rescue works: (MAX/2) * 2 fits.
  EXPECT_TRUE(Numeric::Mul(N(INT64_MAX / 2), N(2)).ok());
}

TEST(NumericTest, ToStringIntegers) {
  EXPECT_EQ(N(42).ToString(), "42");
  EXPECT_EQ(N(-42).ToString(), "-42");
}

TEST(NumericTest, ToStringFiniteDecimals) {
  EXPECT_EQ(N(11, 10).ToString(), "1.1");
  EXPECT_EQ(N(7, 2).ToString(), "3.5");
  EXPECT_EQ(N(-1, 4).ToString(), "-0.25");
  EXPECT_EQ(N(1, 8).ToString(), "0.125");
  EXPECT_EQ(N(605, 2).ToString(), "302.5");
}

TEST(NumericTest, ToStringFallsBackToFraction) {
  EXPECT_EQ(N(1, 3).ToString(), "1/3");
  EXPECT_EQ(N(-2, 7).ToString(), "-2/7");
}

TEST(NumericTest, HashEqualForEqualValues) {
  EXPECT_EQ(N(2, 4).Hash(), N(1, 2).Hash());
  EXPECT_EQ(std::hash<Numeric>()(N(5)), N(5).Hash());
}

// Property sweep: parse(ToString(x)) == x whenever ToString produces a
// decimal or integer (i.e., denominator divides a power of ten).
class NumericRoundTrip : public ::testing::TestWithParam<std::pair<int64_t, int64_t>> {};

TEST_P(NumericRoundTrip, ParsePrintRoundTrips) {
  auto [num, den] = GetParam();
  Numeric value = N(num, den);
  Result<Numeric> back = Numeric::Parse(value.ToString());
  ASSERT_TRUE(back.ok()) << value.ToString();
  EXPECT_EQ(*back, value);
}

INSTANTIATE_TEST_SUITE_P(
    Values, NumericRoundTrip,
    ::testing::Values(std::pair<int64_t, int64_t>{0, 1},
                      std::pair<int64_t, int64_t>{1, 1},
                      std::pair<int64_t, int64_t>{-1, 1},
                      std::pair<int64_t, int64_t>{11, 10},
                      std::pair<int64_t, int64_t>{-11, 10},
                      std::pair<int64_t, int64_t>{1, 2},
                      std::pair<int64_t, int64_t>{3, 8},
                      std::pair<int64_t, int64_t>{7, 5},
                      std::pair<int64_t, int64_t>{123456789, 100},
                      std::pair<int64_t, int64_t>{1, 1000000},
                      std::pair<int64_t, int64_t>{INT64_MAX, 1},
                      std::pair<int64_t, int64_t>{INT64_MIN + 1, 1}));

}  // namespace
}  // namespace verso
