#include "parser/lexer.h"

#include <gtest/gtest.h>

namespace verso {
namespace {

std::vector<TokenKind> KindsOf(const char* text) {
  Result<std::vector<Token>> tokens = Lex(text);
  EXPECT_TRUE(tokens.ok()) << tokens.status().ToString();
  std::vector<TokenKind> kinds;
  for (const Token& t : *tokens) kinds.push_back(t.kind);
  return kinds;
}

TEST(LexerTest, IdentifiersAndVariables) {
  Result<std::vector<Token>> tokens = Lex("henry Empl _x bob2 X2y");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kIdent);
  EXPECT_EQ((*tokens)[0].text, "henry");
  EXPECT_EQ((*tokens)[1].kind, TokenKind::kVar);
  EXPECT_EQ((*tokens)[2].kind, TokenKind::kVar);  // underscore-initial
  EXPECT_EQ((*tokens)[3].kind, TokenKind::kIdent);
  EXPECT_EQ((*tokens)[4].kind, TokenKind::kVar);
}

// The load-bearing lexing rule: '.' between digits is part of a number;
// "250." is the number 250 followed by a clause-terminating dot.
TEST(LexerTest, NumbersVersusDots) {
  Result<std::vector<Token>> tokens = Lex("1.1 250. 3.50");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].text, "1.1");
  EXPECT_EQ((*tokens)[1].text, "250");
  EXPECT_EQ((*tokens)[2].kind, TokenKind::kDot);
  EXPECT_EQ((*tokens)[3].text, "3.50");
}

TEST(LexerTest, MethodSelectorDots) {
  EXPECT_EQ(KindsOf("henry.salary -> 250."),
            (std::vector<TokenKind>{TokenKind::kIdent, TokenKind::kDot,
                                    TokenKind::kIdent, TokenKind::kArrow,
                                    TokenKind::kNumber, TokenKind::kDot,
                                    TokenKind::kEof}));
}

TEST(LexerTest, OperatorsAndPunctuation) {
  EXPECT_EQ(KindsOf("<- -> <= >= < > = != + - * / @ [ ] ( ) , : ."),
            (std::vector<TokenKind>{
                TokenKind::kImplies, TokenKind::kArrow, TokenKind::kLe,
                TokenKind::kGe, TokenKind::kLt, TokenKind::kGt, TokenKind::kEq,
                TokenKind::kNeq, TokenKind::kPlus, TokenKind::kMinus,
                TokenKind::kStar, TokenKind::kSlash, TokenKind::kAt,
                TokenKind::kLBracket, TokenKind::kRBracket,
                TokenKind::kLParen, TokenKind::kRParen, TokenKind::kComma,
                TokenKind::kColon, TokenKind::kDot, TokenKind::kEof}));
}

TEST(LexerTest, CommentsRunToEndOfLine) {
  EXPECT_EQ(KindsOf("a % comment -> ignored\nb"),
            (std::vector<TokenKind>{TokenKind::kIdent, TokenKind::kIdent,
                                    TokenKind::kEof}));
}

TEST(LexerTest, StringsWithEscapes) {
  Result<std::vector<Token>> tokens = Lex(R"("hi there" "a\"b" "x\ny")");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].text, "hi there");
  EXPECT_EQ((*tokens)[1].text, "a\"b");
  EXPECT_EQ((*tokens)[2].text, "x\ny");
}

TEST(LexerTest, UnterminatedStringIsAnError) {
  Result<std::vector<Token>> tokens = Lex("\"oops");
  ASSERT_FALSE(tokens.ok());
  EXPECT_EQ(tokens.status().code(), StatusCode::kParseError);
}

TEST(LexerTest, StrayCharactersAreErrorsWithPosition) {
  Result<std::vector<Token>> tokens = Lex("a\n  #");
  ASSERT_FALSE(tokens.ok());
  EXPECT_NE(tokens.status().message().find("line 2"), std::string::npos);
}

TEST(LexerTest, LoneBangIsAnError) {
  EXPECT_FALSE(Lex("a ! b").ok());
  EXPECT_TRUE(Lex("a != b").ok());
}

TEST(LexerTest, TracksLinesAndColumns) {
  Result<std::vector<Token>> tokens = Lex("a\n  bcd");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].line, 1);
  EXPECT_EQ((*tokens)[0].column, 1);
  EXPECT_EQ((*tokens)[1].line, 2);
  EXPECT_EQ((*tokens)[1].column, 3);
}

TEST(LexerTest, EmptyInputYieldsEof) {
  EXPECT_EQ(KindsOf(""), (std::vector<TokenKind>{TokenKind::kEof}));
  EXPECT_EQ(KindsOf("  % only a comment"),
            (std::vector<TokenKind>{TokenKind::kEof}));
}

}  // namespace
}  // namespace verso
