// Parser: programs, object bases, derived rules, and the printer
// round-trip (printed syntax re-parses to the same structures).

#include "parser/parser.h"

#include <gtest/gtest.h>

#include "core/pretty.h"

namespace verso {
namespace {

class ParserTest : public ::testing::Test {
 protected:
  Program MustParse(const char* text) {
    Result<Program> p = ParseProgram(text, symbols_);
    EXPECT_TRUE(p.ok()) << p.status().ToString();
    return std::move(p).value();
  }
  Status ParseError(const char* text) {
    Result<Program> p = ParseProgram(text, symbols_);
    EXPECT_FALSE(p.ok()) << "unexpectedly parsed: " << text;
    return p.ok() ? Status::Ok() : p.status();
  }

  SymbolTable symbols_;
  VersionTable versions_;
};

TEST_F(ParserTest, MinimalUpdateFact) {
  Program p = MustParse("ins[henry].isa -> empl.");
  ASSERT_EQ(p.rules.size(), 1u);
  EXPECT_EQ(p.rules[0].head.kind, UpdateKind::kInsert);
  EXPECT_TRUE(p.rules[0].body.empty());
  EXPECT_TRUE(p.rules[0].head.version.ops.empty());
  EXPECT_FALSE(p.rules[0].head.version.base.is_var);
}

TEST_F(ParserTest, LabelsAreOptional) {
  Program p = MustParse("raise: ins[x].m -> 1.  ins[y].m -> 2.");
  EXPECT_EQ(p.rules[0].label, "raise");
  EXPECT_TRUE(p.rules[1].label.empty());
}

TEST_F(ParserTest, PathShorthandExpandsToConjunction) {
  Program p = MustParse(
      "r: ins[E].m -> 1 <- E.isa -> empl / pos -> mgr / sal -> S.");
  ASSERT_EQ(p.rules[0].body.size(), 3u);
  for (const Literal& lit : p.rules[0].body) {
    EXPECT_EQ(lit.kind, Literal::Kind::kVersion);
    // All three literals share the same version term (variable E).
    EXPECT_TRUE(lit.version.version.base.is_var);
    EXPECT_EQ(lit.version.version.base.var, VarId(0));
  }
}

TEST_F(ParserTest, NestedVersionTermsParse) {
  Program p = MustParse(
      "r: ins[ins(mod(mod(peter)))].richest -> yes <- peter.sal -> S.");
  const VidTerm& v = p.rules[0].head.version;
  EXPECT_EQ(v.ops, (std::vector<UpdateKind>{UpdateKind::kInsert,
                                            UpdateKind::kModify,
                                            UpdateKind::kModify}));
  EXPECT_FALSE(v.base.is_var);
}

TEST_F(ParserTest, ModifyHeadTakesResultPair) {
  Program p = MustParse("r: mod[E].sal -> (S, S2) <- E.sal -> S, "
                        "S2 = S * 1.1.");
  EXPECT_EQ(p.rules[0].head.kind, UpdateKind::kModify);
  EXPECT_TRUE(p.rules[0].head.new_result.is_var);
  EXPECT_FALSE(ParseError("r: mod[E].sal -> S <- E.sal -> S.").ok());
}

TEST_F(ParserTest, MethodArguments) {
  Program p = MustParse("r: ins[M].at@I,J -> V <- M.at@I,J -> V.");
  EXPECT_EQ(p.rules[0].head.app.args.size(), 2u);
  EXPECT_EQ(p.rules[0].body[0].version.app.args.size(), 2u);
}

TEST_F(ParserTest, NegationAndComparisons) {
  Program p = MustParse(R"(
      r: ins[mod(E)].isa -> hpe <-
          mod(E).sal -> S, S > 4500, not del[mod(E)].isa -> empl,
          S != 9999.
  )");
  ASSERT_EQ(p.rules[0].body.size(), 4u);
  EXPECT_FALSE(p.rules[0].body[0].negated);
  EXPECT_EQ(p.rules[0].body[1].kind, Literal::Kind::kBuiltin);
  EXPECT_TRUE(p.rules[0].body[2].negated);
  EXPECT_EQ(p.rules[0].body[2].kind, Literal::Kind::kUpdate);
  EXPECT_EQ(p.rules[0].body[3].builtin.op, CmpOp::kNe);
}

TEST_F(ParserTest, ExpressionPrecedence) {
  // S2 = S * 1.1 + 200 must parse as (S*1.1)+200: the add is the root.
  Program p = MustParse("r: mod[E].s -> (S, S2) <- E.s -> S, "
                        "S2 = S * 1.1 + 200.");
  const BuiltinAtom& eq = p.rules[0].body[1].builtin;
  const Expr& rhs = p.rules[0].exprs.at(eq.rhs);
  EXPECT_EQ(rhs.kind, Expr::Kind::kAdd);
  EXPECT_EQ(p.rules[0].exprs.at(rhs.lhs).kind, Expr::Kind::kMul);
}

TEST_F(ParserTest, DeleteAllOnlyInHeads) {
  EXPECT_TRUE(ParseProgram("r: del[mod(E)].* <- mod(E).isa -> empl.",
                           symbols_).ok());
  EXPECT_FALSE(ParseError("r: ins[x].m -> 1 <- del[E].*.").ok());
  EXPECT_FALSE(ParseError("r: ins[x].* <- x.m -> 1.").ok());  // ins .*
}

TEST_F(ParserTest, ProgramsRejectPlainFacts) {
  Status s = ParseError("henry.salary -> 250.");
  EXPECT_EQ(s.code(), StatusCode::kParseError);
  EXPECT_NE(s.message().find("object-base"), std::string::npos);
}

TEST_F(ParserTest, NegatedPathIsAmbiguousAndRejected) {
  EXPECT_FALSE(
      ParseError("r: ins[x].m -> 1 <- not E.a -> 1 / b -> 2.").ok());
  // A single-application "path" under not is fine.
  EXPECT_TRUE(
      ParseProgram("r: ins[x].m -> 1 <- x.q -> 1, not x.a -> 1.", symbols_)
          .ok());
}

TEST_F(ParserTest, ErrorsCarryLineAndColumn) {
  Status s = ParseError("r: ins[x].m -> 1 <-\n   x.q -> .");
  EXPECT_NE(s.message().find("line 2"), std::string::npos);
}

TEST_F(ParserTest, NumbersStringsAndNegativesAsTerms) {
  Program p = MustParse(
      "r: ins[x].m@-3,\"txt\" -> 1.5 <- x.q -> -2.");
  const AppPattern& app = p.rules[0].head.app;
  ASSERT_EQ(app.args.size(), 2u);
  EXPECT_EQ(symbols_.NumberValue(app.args[0].oid), Numeric::FromInt(-3));
  EXPECT_EQ(symbols_.StringValue(app.args[1].oid), "txt");
  EXPECT_EQ(symbols_.NumberValue(app.result.oid), *Numeric::Parse("1.5"));
}

// ---- object bases -----------------------------------------------------

TEST_F(ParserTest, ObjectBaseFactsWithPathsAndVersions) {
  ObjectBase base(symbols_.exists_method(), &versions_);
  Status s = ParseObjectBaseInto(R"(
      phil.isa -> empl / pos -> mgr.
      mod(phil).sal -> 4600.
      m.at@1,2 -> 20.
  )", symbols_, versions_, base);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(base.fact_count(), 4u);
  Vid mod_phil = versions_.Child(
      versions_.OfOid(symbols_.Symbol("phil")), UpdateKind::kModify);
  GroundApp sal;
  sal.result = symbols_.Int(4600);
  EXPECT_TRUE(base.Contains(mod_phil, symbols_.Method("sal"), sal));
}

TEST_F(ParserTest, ObjectBasesRejectVariablesAndRules) {
  ObjectBase base(symbols_.exists_method(), &versions_);
  EXPECT_FALSE(
      ParseObjectBaseInto("X.isa -> empl.", symbols_, versions_, base).ok());
  EXPECT_FALSE(ParseObjectBaseInto("a.m -> 1 <- b.q -> 2.", symbols_,
                                   versions_, base)
                   .ok());
}

// ---- derived rules ------------------------------------------------------

TEST_F(ParserTest, DerivedRulesParse) {
  Result<Program> p = ParseDerivedRules(R"(
      q1: derive X.reaches -> Y <- X.edge -> Y.
      q2: derive X.reaches -> Z <- X.reaches -> Y, Y.edge -> Z.
  )", symbols_);
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  EXPECT_EQ(p->rules.size(), 2u);
  EXPECT_EQ(p->rules[0].head.kind, UpdateKind::kInsert);
}

TEST_F(ParserTest, DerivedRulesRejectUpdateTerms) {
  Result<Program> p = ParseDerivedRules(
      "q: derive X.m -> 1 <- ins[X].q -> 2.", symbols_);
  EXPECT_FALSE(p.ok());
}

// ---- printer round-trip ---------------------------------------------------

class RoundTripTest : public ::testing::TestWithParam<const char*> {};

TEST_P(RoundTripTest, PrintedProgramReparsesToSamePrint) {
  SymbolTable symbols;
  Result<Program> first = ParseProgram(GetParam(), symbols);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  std::string printed = ProgramToString(*first, symbols);
  Result<Program> second = ParseProgram(printed, symbols);
  ASSERT_TRUE(second.ok()) << printed << "\n"
                           << second.status().ToString();
  EXPECT_EQ(ProgramToString(*second, symbols), printed);
}

INSTANTIATE_TEST_SUITE_P(
    Programs, RoundTripTest,
    ::testing::Values(
        "ins[henry].isa -> empl.",
        "r: mod[E].sal -> (S, S2) <- E.isa -> empl, E.sal -> S, "
        "S2 = S * 1.1 + 200.",
        "r: del[mod(E)].* <- mod(E).isa -> empl / boss -> B / sal -> SE, "
        "mod(B).sal -> SB, SE > SB.",
        "r: ins[mod(E)].isa -> hpe <- mod(E).sal -> S, S > 4500, "
        "not del[mod(E)].isa -> empl.",
        "r: ins[X].anc -> P <- ins(X).isa -> person / anc -> A, "
        "A.parents -> P.",
        "r: ins[m].at@I,J -> V <- m.at@J,I -> V, I != J.",
        "r: mod[mod(E)].sal -> (S2, S) <- mod(E).sal -> S2, E.sal -> S.",
        "r: ins[x].v -> R <- x.w -> A, R = (A + 1) * (A - 1) / 2.",
        "r: ins[x].v -> R <- x.w -> A, R = -A.",
        "r: ins[x].m -> \"str\" <- x.q -> -1.5."));

TEST(ObjectBaseRoundTrip, PrintedBaseReparsesEqual) {
  SymbolTable symbols;
  VersionTable versions;
  ObjectBase base(symbols.exists_method(), &versions);
  ASSERT_TRUE(ParseObjectBaseInto(R"(
      phil.isa -> empl.  phil.sal -> 4000.
      mod(phil).sal -> 4600.
      del(mod(bob)).exists -> bob.
      m.at@1,2 -> "x".
  )", symbols, versions, base).ok());
  std::string printed = ObjectBaseToString(base, symbols, versions);
  ObjectBase again(symbols.exists_method(), &versions);
  ASSERT_TRUE(ParseObjectBaseInto(printed, symbols, versions, again).ok())
      << printed;
  EXPECT_TRUE(base == again);
}

}  // namespace
}  // namespace verso
