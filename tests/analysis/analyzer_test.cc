// The static rule-program analyzer: safety, stratifiability with cycle
// paths, update-conflict detection over write sets, dead rules, and the
// dependency/independence report — positive (workload programs are
// clean) and negative (each check fires with rule-level position).

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "analysis/analyzer.h"
#include "analysis/rw_sets.h"
#include "core/engine.h"
#include "parser/parser.h"
#include "query/query.h"
#include "workloads/workloads.h"

namespace verso {
namespace {

AnalysisReport AnalyzeUpdateText(Engine& engine, std::string_view text,
                                 const AnalysisContext& context = {}) {
  Result<Program> program = ParseProgram(text, engine.symbols());
  EXPECT_TRUE(program.ok()) << program.status().ToString();
  return AnalyzeUpdateProgram(*program, engine.symbols(), context);
}

AnalysisReport AnalyzeDeriveText(Engine& engine, std::string_view text,
                                 const AnalysisContext& context = {}) {
  Result<QueryProgram> program =
      ParseQueryProgram(text, engine.symbols());
  EXPECT_TRUE(program.ok()) << program.status().ToString();
  return AnalyzeDerivedProgram(*program, engine.symbols(), context);
}

size_t CountCheck(const AnalysisReport& report, std::string_view check) {
  size_t n = 0;
  for (const Diagnostic& diag : report.diagnostics) {
    if (diag.check == check) ++n;
  }
  return n;
}

// ---- the shared workload programs are clean --------------------------------

TEST(AnalyzerTest, EnterpriseProgramHasNoErrorsOrWarnings) {
  Engine engine;
  AnalysisReport report = AnalyzeUpdateText(engine, kEnterpriseProgramText);
  EXPECT_EQ(report.errors(), 0u) << report.ToText();
  EXPECT_EQ(report.warnings(), 0u) << report.ToText();
  EXPECT_TRUE(report.stratifiable);
  EXPECT_EQ(report.rule_count, 4u);
  // rule1/rule2 both mod the same (version, method); the complementary
  // `pos -> mgr` guard downgrades the conflict to a note.
  EXPECT_EQ(report.notes(), 1u) << report.ToText();
  EXPECT_EQ(CountCheck(report, kCheckUpdateConflict), 1u);
  // Their shared stratum is therefore not independent; the strata of
  // rule3 and rule4 are singletons and are.
  ASSERT_FALSE(report.strata.empty());
  ASSERT_EQ(report.stratum_of_rule.size(), 4u);
  const AnalysisReport::StratumReport& first =
      report.strata[report.stratum_of_rule[0]];
  EXPECT_EQ(report.stratum_of_rule[0], report.stratum_of_rule[1]);
  EXPECT_FALSE(first.independent);
  ASSERT_EQ(first.conflict_pairs.size(), 1u);
  EXPECT_EQ(first.conflict_pairs[0], (std::pair<uint32_t, uint32_t>(0, 1)));
  EXPECT_TRUE(report.strata[report.stratum_of_rule[2]].independent);
  EXPECT_TRUE(report.strata[report.stratum_of_rule[3]].independent);
}

TEST(AnalyzerTest, HypotheticalProgramHasNoErrors) {
  Engine engine;
  AnalysisReport report =
      AnalyzeUpdateText(engine, HypotheticalProgramText("peter"));
  EXPECT_EQ(report.errors(), 0u) << report.ToText();
  EXPECT_TRUE(report.stratifiable);
}

TEST(AnalyzerTest, AncestorsProgramOverlapsButDoesNotConflict) {
  Engine engine;
  AnalysisReport report = AnalyzeUpdateText(engine, kAncestorsProgramText);
  EXPECT_EQ(report.errors(), 0u) << report.ToText();
  EXPECT_EQ(report.warnings(), 0u) << report.ToText();
  EXPECT_TRUE(report.stratifiable);
  // r1 and r2 both ins[X].anc: confluent overlap — no diagnostic, but
  // the stratum is not provably parallelizable.
  ASSERT_EQ(report.stratum_of_rule.size(), 2u);
  EXPECT_EQ(report.stratum_of_rule[0], report.stratum_of_rule[1]);
  const AnalysisReport::StratumReport& stratum =
      report.strata[report.stratum_of_rule[0]];
  EXPECT_FALSE(stratum.independent);
  EXPECT_EQ(stratum.overlap_pairs.size(), 1u);
  EXPECT_TRUE(stratum.conflict_pairs.empty());
}

// ---- safety ---------------------------------------------------------------

TEST(AnalyzerTest, UnsafeHeadVariableIsAnError) {
  Engine engine;
  AnalysisReport report = AnalyzeUpdateText(
      engine, "bad: ins[X].flag -> Y <- X.isa -> thing.");
  EXPECT_EQ(report.errors(), 1u) << report.ToText();
  ASSERT_EQ(CountCheck(report, kCheckUnsafeRule), 1u);
  const Diagnostic& diag = report.diagnostics[0];
  EXPECT_EQ(diag.severity, Severity::kError);
  EXPECT_EQ(diag.rule, 0);
  EXPECT_EQ(diag.rule_label, "bad");
  EXPECT_GT(diag.line, 0);
  EXPECT_EQ(diag.ToStatus().code(), StatusCode::kUnsafeRule);
}

TEST(AnalyzerTest, EveryUnsafeRuleIsReportedNotJustTheFirst) {
  Engine engine;
  AnalysisReport report = AnalyzeUpdateText(
      engine,
      "a: ins[X].p -> Y <- X.isa -> t.\n"
      "ok: ins[X].q -> yes <- X.isa -> t.\n"
      "b: ins[X].r -> Z <- X.isa -> t.");
  EXPECT_EQ(CountCheck(report, kCheckUnsafeRule), 2u) << report.ToText();
}

// ---- stratifiability ------------------------------------------------------

TEST(AnalyzerTest, NegationCycleNamesThePath) {
  Engine engine;
  // Ground versions keep the dependency graph exact: the only strict
  // edges are a -> b and b -> a, so the report names that two-rule cycle.
  AnalysisReport report = AnalyzeUpdateText(
      engine,
      "a: ins[alice].p -> yes <- not ins[bob].q -> yes.\n"
      "b: ins[bob].q -> yes <- not ins[alice].p -> yes.");
  EXPECT_FALSE(report.stratifiable);
  EXPECT_TRUE(report.strata.empty());
  ASSERT_EQ(CountCheck(report, kCheckNegationCycle), 1u) << report.ToText();
  const Diagnostic& diag = report.diagnostics[0];
  EXPECT_EQ(diag.severity, Severity::kError);
  EXPECT_TRUE(diag.message.find("a -> b -> a") != std::string::npos ||
              diag.message.find("b -> a -> b") != std::string::npos)
      << diag.message;
  EXPECT_EQ(diag.ToStatus().code(), StatusCode::kNotStratifiable);
}

TEST(AnalyzerTest, SelfNegationIsAOneRuleCycle) {
  Engine engine;
  // A rule whose own write is visible to its negated read: the cycle
  // path degenerates to the rule itself.
  AnalysisReport report = AnalyzeUpdateText(
      engine, "a: ins[X].p -> yes <- X.isa -> t, not ins[X].p -> yes.");
  EXPECT_FALSE(report.stratifiable);
  ASSERT_EQ(CountCheck(report, kCheckNegationCycle), 1u) << report.ToText();
  EXPECT_NE(report.diagnostics[0].message.find("a -> a"), std::string::npos)
      << report.diagnostics[0].message;
}

TEST(AnalyzerTest, DerivedNegationCycleNamesTheMethodPath) {
  Engine engine;
  AnalysisReport report = AnalyzeDeriveText(
      engine,
      "derive X.win -> yes <- X.move -> Y, not Y.win -> yes.");
  EXPECT_FALSE(report.stratifiable);
  ASSERT_EQ(CountCheck(report, kCheckNegationCycle), 1u) << report.ToText();
  EXPECT_NE(report.diagnostics[0].message.find("win -> win"),
            std::string::npos)
      << report.diagnostics[0].message;
}

// ---- update conflicts -----------------------------------------------------

TEST(AnalyzerTest, InsAgainstDelOnSameMethodIsAConflictWarning) {
  Engine engine;
  AnalysisReport report = AnalyzeUpdateText(
      engine,
      "add: ins[X].flag -> on <- X.isa -> t.\n"
      "rem: del[X].flag -> on <- X.isa -> t.");
  EXPECT_EQ(report.errors(), 0u);
  ASSERT_EQ(CountCheck(report, kCheckUpdateConflict), 1u) << report.ToText();
  const Diagnostic& diag = report.diagnostics[0];
  EXPECT_EQ(diag.severity, Severity::kWarning);
  EXPECT_NE(diag.message.find("ins vs del"), std::string::npos)
      << diag.message;
  const AnalysisReport::StratumReport& stratum =
      report.strata[report.stratum_of_rule[0]];
  EXPECT_FALSE(stratum.independent);
  EXPECT_EQ(stratum.conflict_pairs.size(), 1u);
}

TEST(AnalyzerTest, ComplementaryGuardsDowngradeTheConflictToANote) {
  Engine engine;
  AnalysisReport report = AnalyzeUpdateText(
      engine,
      "yes: mod[X].s -> (A, B) <- X.s -> A, X.m -> y, B = A + 1.\n"
      "no:  mod[X].s -> (A, B) <- X.s -> A, not X.m -> y, B = A + 2.");
  EXPECT_EQ(report.warnings(), 0u) << report.ToText();
  ASSERT_EQ(CountCheck(report, kCheckUpdateConflict), 1u);
  EXPECT_EQ(report.diagnostics[0].severity, Severity::kNote);
}

TEST(AnalyzerTest, DisjointMethodsAreIndependent) {
  Engine engine;
  AnalysisReport report = AnalyzeUpdateText(
      engine,
      "a: ins[X].p -> yes <- X.isa -> t.\n"
      "b: ins[X].q -> yes <- X.isa -> t.");
  EXPECT_TRUE(report.diagnostics.empty()) << report.ToText();
  for (const AnalysisReport::StratumReport& stratum : report.strata) {
    EXPECT_TRUE(stratum.independent);
    EXPECT_TRUE(stratum.overlap_pairs.empty());
  }
}

TEST(AnalyzerTest, NonUnifiableVersionsAreDisjoint) {
  Engine engine;
  // Same kind and method, but the updated versions mod(X) and ins(X) are
  // sibling successor states — no fact can be written by both.
  AnalysisReport report = AnalyzeUpdateText(
      engine,
      "a: ins[mod(X)].p -> yes <- mod(X).isa -> t.\n"
      "b: ins[ins(X)].p -> yes <- ins(X).isa -> t.");
  EXPECT_TRUE(report.diagnostics.empty()) << report.ToText();
  for (const AnalysisReport::StratumReport& stratum : report.strata) {
    EXPECT_TRUE(stratum.independent);
  }
}

TEST(AnalyzerTest, DeleteAllOverlapsEveryMethod) {
  Rule ins_rule;
  ins_rule.head.kind = UpdateKind::kInsert;
  ins_rule.head.version.base = ObjTerm::Var(VarId(0));
  ins_rule.head.app.method = MethodId(3);
  Rule wipe;
  wipe.head.kind = UpdateKind::kDelete;
  wipe.head.version.base = ObjTerm::Var(VarId(0));
  wipe.head.delete_all = true;
  EXPECT_EQ(ClassifyWritePair(ins_rule, wipe), WriteOverlap::kConflict);
}

// ---- dead rules -----------------------------------------------------------

TEST(AnalyzerTest, ContradictoryBodyIsDead) {
  Engine engine;
  AnalysisReport report = AnalyzeUpdateText(
      engine, "r: ins[X].p -> yes <- X.isa -> t, not X.isa -> t.");
  ASSERT_EQ(CountCheck(report, kCheckDeadRule), 1u) << report.ToText();
  EXPECT_EQ(report.diagnostics[0].severity, Severity::kWarning);
  EXPECT_EQ(report.diagnostics[0].literal, 1);
}

TEST(AnalyzerTest, FalseGroundBuiltinIsDead) {
  Engine engine;
  AnalysisReport report = AnalyzeUpdateText(
      engine, "r: ins[X].p -> yes <- X.isa -> t, 1 > 2.");
  ASSERT_EQ(CountCheck(report, kCheckDeadRule), 1u) << report.ToText();
  EXPECT_NE(report.diagnostics[0].message.find("always false"),
            std::string::npos);
}

TEST(AnalyzerTest, UnproducibleBodyUpdateLiteralIsDead) {
  Engine engine;
  // No rule performs del[_].q, so the positive body test can never hold.
  AnalysisReport report = AnalyzeUpdateText(
      engine, "r: ins[X].p -> yes <- X.isa -> t, del[X].q -> gone.");
  ASSERT_EQ(CountCheck(report, kCheckDeadRule), 1u) << report.ToText();
  EXPECT_NE(report.diagnostics[0].message.find("no rule head"),
            std::string::npos);
}

TEST(AnalyzerTest, ProducedBodyUpdateLiteralIsNotDead) {
  Engine engine;
  AnalysisReport report = AnalyzeUpdateText(
      engine,
      "mk: del[X].q -> gone <- X.isa -> t.\n"
      "r: ins[del(X)].p -> yes <- del[X].q -> gone.");
  EXPECT_EQ(CountCheck(report, kCheckDeadRule), 0u) << report.ToText();
}

TEST(AnalyzerTest, BaseContextFlagsUnreadableMethods) {
  Engine engine;
  const char* text = "r: ins[X].p -> yes <- X.zzz -> w.";
  // Without schema context: silent (zzz may exist in some base).
  EXPECT_EQ(CountCheck(AnalyzeUpdateText(engine, text), kCheckDeadRule), 0u);
  // With a base that has no zzz facts: the read is unsatisfiable.
  AnalysisContext context;
  context.has_base = true;
  context.base_methods.push_back(engine.symbols().Method("isa"));
  std::sort(context.base_methods.begin(), context.base_methods.end());
  AnalysisReport report = AnalyzeUpdateText(engine, text, context);
  ASSERT_EQ(CountCheck(report, kCheckDeadRule), 1u) << report.ToText();
  EXPECT_NE(report.diagnostics[0].message.find("zzz"), std::string::npos);
}

// ---- derived programs -----------------------------------------------------

TEST(AnalyzerTest, TwoRulesDefiningOneMethodOverlap) {
  Engine engine;
  AnalysisReport report = AnalyzeDeriveText(
      engine,
      "derive X.r -> yes <- X.a -> Y.\n"
      "derive X.r -> yes <- X.b -> Y.");
  EXPECT_EQ(report.errors(), 0u) << report.ToText();
  EXPECT_TRUE(report.stratifiable);
  ASSERT_EQ(report.stratum_of_rule.size(), 2u);
  EXPECT_EQ(report.stratum_of_rule[0], report.stratum_of_rule[1]);
  const AnalysisReport::StratumReport& stratum =
      report.strata[report.stratum_of_rule[0]];
  EXPECT_FALSE(stratum.independent);
  EXPECT_EQ(stratum.overlap_pairs.size(), 1u);
}

TEST(AnalyzerTest, DerivedBaseContextFlagsUnreadableMethods) {
  Engine engine;
  AnalysisContext context;
  context.has_base = true;
  context.base_methods.push_back(engine.symbols().Method("edge"));
  std::sort(context.base_methods.begin(), context.base_methods.end());
  AnalysisReport report = AnalyzeDeriveText(
      engine,
      "derive X.reach -> Y <- X.edge -> Y.\n"
      "derive X.far -> Y <- X.wormhole -> Y.",
      context);
  ASSERT_EQ(CountCheck(report, kCheckDeadRule), 1u) << report.ToText();
  EXPECT_EQ(report.diagnostics[0].rule, 1);
  EXPECT_NE(report.diagnostics[0].message.find("wormhole"),
            std::string::npos);
}

// ---- report renderings ----------------------------------------------------

TEST(AnalyzerTest, JsonIsStableAndCarriesTheSchema) {
  Engine engine;
  AnalysisReport report = AnalyzeUpdateText(engine, kEnterpriseProgramText);
  std::string json = report.ToJson();
  EXPECT_EQ(json, report.ToJson());  // byte-identical re-render
  for (const char* key :
       {"\"verso_analysis_version\":1", "\"program\"", "\"summary\"",
        "\"diagnostics\"", "\"rules\"", "\"dependency_graph\"",
        "\"strata\"", "\"independent\"", "\"stratifiable\":true"}) {
    EXPECT_NE(json.find(key), std::string::npos) << key << "\n" << json;
  }
  // Two engines, same program text: the report must not depend on
  // interning order or any run-to-run state.
  Engine other;
  EXPECT_EQ(AnalyzeUpdateText(other, kEnterpriseProgramText).ToJson(), json);
}

TEST(AnalyzerTest, TextRenderingNamesRulesAndVerdicts) {
  Engine engine;
  AnalysisReport report = AnalyzeUpdateText(engine, kEnterpriseProgramText);
  std::string text = report.ToText();
  EXPECT_NE(text.find("rule1"), std::string::npos) << text;
  EXPECT_NE(text.find("independent"), std::string::npos) << text;
  EXPECT_NE(text.find("stratum"), std::string::npos) << text;
}

TEST(AnalyzerTest, EmptyProgramIsCleanAndStratifiable) {
  // The parser rejects empty sources; programmatic callers can still
  // hand the analyzer an empty program and must get a clean report.
  Engine engine;
  Program empty;
  AnalysisReport report =
      AnalyzeUpdateProgram(empty, engine.symbols());
  EXPECT_TRUE(report.ok());
  EXPECT_TRUE(report.stratifiable);
  EXPECT_EQ(report.rule_count, 0u);
  EXPECT_TRUE(report.strata.empty());
}

TEST(AnalyzerTest, FirstBlockingHonorsTheSeverityPolicy) {
  Engine engine;
  AnalysisReport report = AnalyzeUpdateText(
      engine,
      "add: ins[X].flag -> on <- X.isa -> t.\n"
      "rem: del[X].flag -> on <- X.isa -> t.");
  AnalysisOptions lax;
  EXPECT_TRUE(report.FirstBlocking(lax).ok());
  AnalysisOptions strict;
  strict.warnings_block = true;
  Status blocked = report.FirstBlocking(strict);
  EXPECT_FALSE(blocked.ok());
  EXPECT_EQ(blocked.code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace verso
