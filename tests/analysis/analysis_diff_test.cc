// Differential guard: the default-on analyzer is diagnostic-only.
// Identical scenarios run on two connections — analysis enabled and
// disabled — and every observable (committed base, query rows, view
// results, epochs) must stay bit-identical.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "api/api.h"
#include "core/pretty.h"

namespace verso {
namespace {

std::unique_ptr<Connection> OpenConn(bool analysis_enabled) {
  ConnectionOptions options;
  options.analysis.enabled = analysis_enabled;
  Result<std::unique_ptr<Connection>> opened =
      Connection::OpenInMemory(options);
  EXPECT_TRUE(opened.ok()) << opened.status().ToString();
  return std::move(*opened);
}

std::string RenderBase(Connection& conn) {
  std::unique_ptr<Session> session = conn.OpenSession();
  return ObjectBaseToString(session->base(), conn.symbols(),
                            conn.versions());
}

std::string RenderRows(ResultSet& rs) {
  std::string out;
  rs.Rewind();
  while (rs.Next()) {
    out += rs.RowToString();
    out += '\n';
  }
  return out;
}

constexpr const char* kBaseFacts =
    "ann.isa -> empl. ann.sal -> 4000. ann.pos -> mgr. "
    "bob.isa -> empl. bob.sal -> 3000. bob.boss -> ann. "
    "cid.isa -> empl. cid.sal -> 5000. cid.boss -> ann. ";

// The enterprise raise rules: a guarded mod/mod pair (a conflict note)
// plus an hpe promotion — plenty for the analyzer to look at.
constexpr const char* kUpdateProgram =
    "rule1: mod[E].sal -> (S, S2) <- "
    "E.isa -> empl / pos -> mgr / sal -> S, S2 = S + 500.\n"
    "rule2: mod[E].sal -> (S, S2) <- "
    "E.isa -> empl / sal -> S, not E.pos -> mgr, S2 = S + 100.\n"
    "rule3: ins[mod(E)].isa -> hpe <- "
    "mod(E).isa -> empl / sal -> S, S > 4400.";

constexpr const char* kQueryProgram =
    "q1: derive X.chain -> Y <- X.boss -> Y.\n"
    "q2: derive X.chain -> Z <- X.chain -> Y, Y.boss -> Z.";

constexpr const char* kViewText =
    "CREATE VIEW rich AS "
    "derive X.rich -> yes <- X.sal -> S, S > 3500.";

TEST(AnalysisDiffTest, UpdateCommitsAreBitIdentical) {
  std::unique_ptr<Connection> on = OpenConn(true);
  std::unique_ptr<Connection> off = OpenConn(false);
  for (Connection* conn : {on.get(), off.get()}) {
    ASSERT_TRUE(conn->ImportText(kBaseFacts).ok());
  }
  std::unique_ptr<Session> s_on = on->OpenSession();
  std::unique_ptr<Session> s_off = off->OpenSession();
  Result<ResultSet> r_on = s_on->Execute(kUpdateProgram);
  Result<ResultSet> r_off = s_off->Execute(kUpdateProgram);
  ASSERT_TRUE(r_on.ok()) << r_on.status().ToString();
  ASSERT_TRUE(r_off.ok()) << r_off.status().ToString();
  EXPECT_EQ(r_on->epoch(), r_off->epoch());
  EXPECT_EQ(RenderRows(*r_on), RenderRows(*r_off));
  EXPECT_EQ(RenderBase(*on), RenderBase(*off));
}

TEST(AnalysisDiffTest, AdHocQueriesAreBitIdentical) {
  std::unique_ptr<Connection> on = OpenConn(true);
  std::unique_ptr<Connection> off = OpenConn(false);
  for (Connection* conn : {on.get(), off.get()}) {
    ASSERT_TRUE(conn->ImportText(kBaseFacts).ok());
  }
  std::unique_ptr<Session> s_on = on->OpenSession();
  std::unique_ptr<Session> s_off = off->OpenSession();
  Result<ResultSet> r_on = s_on->Execute(kQueryProgram);
  Result<ResultSet> r_off = s_off->Execute(kQueryProgram);
  ASSERT_TRUE(r_on.ok()) << r_on.status().ToString();
  ASSERT_TRUE(r_off.ok()) << r_off.status().ToString();
  EXPECT_EQ(RenderRows(*r_on), RenderRows(*r_off));
}

TEST(AnalysisDiffTest, ViewMaintenanceIsBitIdentical) {
  std::unique_ptr<Connection> on = OpenConn(true);
  std::unique_ptr<Connection> off = OpenConn(false);
  for (Connection* conn : {on.get(), off.get()}) {
    ASSERT_TRUE(conn->ImportText(kBaseFacts).ok());
    std::unique_ptr<Session> session = conn->OpenSession();
    Result<ResultSet> ddl = session->Execute(kViewText);
    ASSERT_TRUE(ddl.ok()) << ddl.status().ToString();
    // Commit raises so the view is maintained incrementally, then read.
    Result<ResultSet> write = session->Execute(kUpdateProgram);
    ASSERT_TRUE(write.ok()) << write.status().ToString();
  }
  std::unique_ptr<Session> s_on = on->OpenSession();
  std::unique_ptr<Session> s_off = off->OpenSession();
  Result<ResultSet> r_on = s_on->Execute("QUERY rich");
  Result<ResultSet> r_off = s_off->Execute("QUERY rich");
  ASSERT_TRUE(r_on.ok()) << r_on.status().ToString();
  ASSERT_TRUE(r_off.ok()) << r_off.status().ToString();
  EXPECT_EQ(RenderRows(*r_on), RenderRows(*r_off));
  EXPECT_EQ(RenderBase(*on), RenderBase(*off));
}

}  // namespace
}  // namespace verso
