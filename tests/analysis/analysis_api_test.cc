// The analyzer through the client API: QUERY ANALYZE and
// Connection::AnalyzeProgram produce kAnalysis result sets against the
// committed base's schema, prepare-time analysis blocks bad programs
// with positioned diagnostics, and CREATE VIEW honors the severity
// policy.

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "api/api.h"

namespace verso {
namespace {

std::unique_ptr<Connection> OpenConn(
    ConnectionOptions options = ConnectionOptions()) {
  Result<std::unique_ptr<Connection>> opened =
      Connection::OpenInMemory(std::move(options));
  EXPECT_TRUE(opened.ok()) << opened.status().ToString();
  return std::move(*opened);
}

constexpr const char* kBaseFacts =
    "ann.isa -> empl. ann.sal -> 4000. ann.pos -> mgr. "
    "bob.isa -> empl. bob.sal -> 3000. bob.boss -> ann. ";

constexpr const char* kRaiseProgram =
    "up: mod[E].sal -> (S, S2) <- E.isa -> empl / sal -> S, "
    "S2 = S + 100.";

TEST(AnalysisApiTest, QueryAnalyzeReturnsTheReport) {
  std::unique_ptr<Connection> conn = OpenConn();
  ASSERT_TRUE(conn->ImportText(kBaseFacts).ok());
  std::unique_ptr<Session> session = conn->OpenSession();

  Result<ResultSet> rs =
      session->Execute(std::string("QUERY ANALYZE ") + kRaiseProgram);
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  EXPECT_EQ(rs->kind(), ResultSet::Kind::kAnalysis);
  ASSERT_NE(rs->analysis(), nullptr);
  const AnalysisReport& report = *rs->analysis();
  EXPECT_EQ(report.rule_count, 1u);
  EXPECT_TRUE(report.ok()) << report.ToText();
  EXPECT_TRUE(report.stratifiable);
  // A clean program has no diagnostics, hence no rows.
  EXPECT_TRUE(rs->empty());
  EXPECT_FALSE(rs->Next());
}

TEST(AnalysisApiTest, AnalyzeUsesTheCommittedSchema) {
  std::unique_ptr<Connection> conn = OpenConn();
  ASSERT_TRUE(conn->ImportText(kBaseFacts).ok());
  std::unique_ptr<Session> session = conn->OpenSession();

  // `wage` occurs in no committed fact and no ins head: against the live
  // schema the rule is dead — a warning row with the rule position.
  Result<ResultSet> rs = session->Execute(
      "QUERY ANALYZE "
      "up: mod[E].sal -> (S, S2) <- E.wage -> S, S2 = S + 100.");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  ASSERT_EQ(rs->size(), 1u);
  ASSERT_TRUE(rs->Next());
  const Diagnostic& diag = rs->diagnostic();
  EXPECT_EQ(diag.severity, Severity::kWarning);
  EXPECT_EQ(diag.check, kCheckDeadRule);
  EXPECT_EQ(diag.rule, 0);
  EXPECT_EQ(diag.rule_label, "up");
  EXPECT_NE(diag.message.find("wage"), std::string::npos) << diag.message;
  // RowToString renders the diagnostic, like any row kind.
  EXPECT_EQ(rs->RowToString(), diag.ToString());
  EXPECT_FALSE(rs->Next());
}

TEST(AnalysisApiTest, QueryAnalyzeHandlesDerivedPrograms) {
  std::unique_ptr<Connection> conn = OpenConn();
  ASSERT_TRUE(conn->ImportText(kBaseFacts).ok());
  std::unique_ptr<Session> session = conn->OpenSession();

  Result<ResultSet> rs = session->Execute(
      "QUERY ANALYZE derive X.chain -> Y <- X.boss -> Y.");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  ASSERT_NE(rs->analysis(), nullptr);
  EXPECT_EQ(rs->analysis()->program_kind,
            AnalysisReport::ProgramKind::kDerive);
  EXPECT_TRUE(rs->analysis()->ok());
}

TEST(AnalysisApiTest, QueryAnalyzeWithoutAProgramIsAParseError) {
  std::unique_ptr<Connection> conn = OpenConn();
  std::unique_ptr<Session> session = conn->OpenSession();
  Result<ResultSet> rs = session->Execute("QUERY ANALYZE");
  ASSERT_FALSE(rs.ok());
  EXPECT_EQ(rs.status().code(), StatusCode::kParseError);
}

TEST(AnalysisApiTest, ConnectionAnalyzeProgramIsTheDirectTwin) {
  std::unique_ptr<Connection> conn = OpenConn();
  ASSERT_TRUE(conn->ImportText(kBaseFacts).ok());

  Result<ResultSet> direct = conn->AnalyzeProgram(kRaiseProgram);
  ASSERT_TRUE(direct.ok()) << direct.status().ToString();
  std::unique_ptr<Session> session = conn->OpenSession();
  Result<ResultSet> stmt =
      session->Execute(std::string("QUERY ANALYZE ") + kRaiseProgram);
  ASSERT_TRUE(stmt.ok());
  ASSERT_NE(direct->analysis(), nullptr);
  ASSERT_NE(stmt->analysis(), nullptr);
  EXPECT_EQ(direct->analysis()->ToJson(), stmt->analysis()->ToJson());
}

TEST(AnalysisApiTest, AnalysisFindingsAreRowsNotFailures) {
  std::unique_ptr<Connection> conn = OpenConn();
  // Unsafe program: AnalyzeProgram reports, it does not fail.
  Result<ResultSet> rs =
      conn->AnalyzeProgram("bad: ins[X].p -> Y <- X.isa -> t.");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  ASSERT_TRUE(rs->Next());
  EXPECT_EQ(rs->diagnostic().severity, Severity::kError);
  EXPECT_EQ(rs->diagnostic().check, kCheckUnsafeRule);
  // Gibberish still fails: there is no program to report on.
  EXPECT_FALSE(conn->AnalyzeProgram("not a program").ok());
}

TEST(AnalysisApiTest, PrepareBlocksUnsafeProgramsWithPosition) {
  std::unique_ptr<Connection> conn = OpenConn();
  std::unique_ptr<Session> session = conn->OpenSession();
  Result<Statement> stmt = session->Prepare(
      "ok: ins[X].p -> yes <- X.isa -> t.\n"
      "bad: ins[X].q -> Y <- X.isa -> t.");
  ASSERT_FALSE(stmt.ok());
  EXPECT_EQ(stmt.status().code(), StatusCode::kUnsafeRule);
  // The analyzer's uniform diagnostic rendering: rule label and line.
  EXPECT_NE(stmt.status().message().find("'bad'"), std::string::npos)
      << stmt.status().message();
  EXPECT_NE(stmt.status().message().find("line 2"), std::string::npos)
      << stmt.status().message();
}

TEST(AnalysisApiTest, PrepareBlocksNegationCyclesWithThePath) {
  std::unique_ptr<Connection> conn = OpenConn();
  std::unique_ptr<Session> session = conn->OpenSession();
  Result<Statement> stmt = session->Prepare(
      "a: ins[alice].p -> yes <- not ins[bob].q -> yes.\n"
      "b: ins[bob].q -> yes <- not ins[alice].p -> yes.");
  ASSERT_FALSE(stmt.ok());
  EXPECT_EQ(stmt.status().code(), StatusCode::kNotStratifiable);
  EXPECT_NE(stmt.status().message().find(" -> "), std::string::npos)
      << stmt.status().message();
}

TEST(AnalysisApiTest, PreparedStatementExposesItsReport) {
  std::unique_ptr<Connection> conn = OpenConn();
  ASSERT_TRUE(conn->ImportText(kBaseFacts).ok());
  std::unique_ptr<Session> session = conn->OpenSession();
  Result<Statement> stmt = session->Prepare(kRaiseProgram);
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  ASSERT_NE(stmt->analysis(), nullptr);
  EXPECT_TRUE(stmt->analysis()->ok());
  EXPECT_EQ(stmt->analysis()->rule_count, 1u);
  // The statement still runs normally after analysis.
  Result<ResultSet> rs = stmt->Execute();
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  EXPECT_EQ(rs->kind(), ResultSet::Kind::kWrite);
}

TEST(AnalysisApiTest, DisablingAnalysisRestoresExecuteTimeFailure) {
  ConnectionOptions options;
  options.analysis.enabled = false;
  std::unique_ptr<Connection> conn = OpenConn(options);
  std::unique_ptr<Session> session = conn->OpenSession();
  const char* unsafe_text = "bad: ins[X].p -> Y <- X.isa -> t.";
  // Prepare no longer runs the analyzer...
  Result<Statement> stmt = session->Prepare(unsafe_text);
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  EXPECT_EQ(stmt->analysis(), nullptr);
  // ...so the same defect surfaces at Execute, with the same code the
  // blocking Prepare would have used.
  Result<ResultSet> rs = stmt->Execute();
  ASSERT_FALSE(rs.ok());
  EXPECT_EQ(rs.status().code(), StatusCode::kUnsafeRule);
}

TEST(AnalysisApiTest, WarningsBlockPolicyGatesPrepare) {
  // A same-stratum ins/del conflict is a warning: default policy runs
  // it, warnings_block turns it into a prepare failure.
  const char* conflicted =
      "add: ins[X].flag -> on <- X.isa -> t.\n"
      "rem: del[X].flag -> on <- X.isa -> t.";
  {
    std::unique_ptr<Connection> conn = OpenConn();
    std::unique_ptr<Session> session = conn->OpenSession();
    EXPECT_TRUE(session->Prepare(conflicted).ok());
  }
  {
    ConnectionOptions options;
    options.analysis.warnings_block = true;
    std::unique_ptr<Connection> conn = OpenConn(options);
    std::unique_ptr<Session> session = conn->OpenSession();
    Result<Statement> stmt = session->Prepare(conflicted);
    ASSERT_FALSE(stmt.ok());
    EXPECT_EQ(stmt.status().code(), StatusCode::kInvalidArgument);
    EXPECT_NE(stmt.status().message().find("update-conflict"),
              std::string::npos)
        << stmt.status().message();
  }
}

TEST(AnalysisApiTest, CreateViewRunsTheAnalyzer) {
  ConnectionOptions options;
  options.analysis.warnings_block = true;
  std::unique_ptr<Connection> conn = OpenConn(options);
  ASSERT_TRUE(conn->ImportText(kBaseFacts).ok());
  std::unique_ptr<Session> session = conn->OpenSession();
  // `wormhole` is readable nowhere: a dead-rule warning, which the
  // strict policy turns into a CREATE VIEW failure.
  Result<ResultSet> rs = session->Execute(
      "CREATE VIEW far AS derive X.far -> Y <- X.wormhole -> Y.");
  ASSERT_FALSE(rs.ok());
  EXPECT_NE(rs.status().message().find("wormhole"), std::string::npos)
      << rs.status().message();
  // The same view registers fine under the default policy.
  std::unique_ptr<Connection> lax = OpenConn();
  ASSERT_TRUE(lax->ImportText(kBaseFacts).ok());
  std::unique_ptr<Session> lax_session = lax->OpenSession();
  Result<ResultSet> ok = lax_session->Execute(
      "CREATE VIEW far AS derive X.far -> Y <- X.wormhole -> Y.");
  EXPECT_TRUE(ok.ok()) << ok.status().ToString();
}

TEST(AnalysisApiTest, AnalyzeCountsIntoTheMetricsRegistry) {
  std::unique_ptr<Connection> conn = OpenConn();
  std::unique_ptr<Session> session = conn->OpenSession();
  auto programs_analyzed = [&]() {
    Result<ResultSet> rs = session->Execute("QUERY METRICS");
    EXPECT_TRUE(rs.ok());
    for (const MetricsRegistry::Entry& entry : rs->metrics()) {
      if (entry.name == "analysis.programs") return entry.value;
    }
    return int64_t{0};
  };
  int64_t before = programs_analyzed();
  ASSERT_TRUE(conn->AnalyzeProgram(kRaiseProgram).ok());
  EXPECT_GT(programs_analyzed(), before);
}

}  // namespace
}  // namespace verso
