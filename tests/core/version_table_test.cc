// VersionTable: VID interning, parent chains, shapes, subterm order —
// the machinery behind Figure 1's chain of update stages
// θk(θ{k-1}(...θ1(o))).

#include "core/version_table.h"

#include <gtest/gtest.h>

namespace verso {
namespace {

class VersionTableTest : public ::testing::Test {
 protected:
  SymbolTable symbols_;
  VersionTable versions_;
};

TEST_F(VersionTableTest, DepthZeroVidsCoincideWithOids) {
  Oid henry = symbols_.Symbol("henry");
  Vid v = versions_.OfOid(henry);
  EXPECT_EQ(versions_.OfOid(henry), v);  // interned once
  EXPECT_EQ(versions_.depth(v), 0u);
  EXPECT_EQ(versions_.root(v), henry);
  EXPECT_EQ(versions_.shape(v), VidShape(0));
}

TEST_F(VersionTableTest, ChildrenAreInternedPerParentAndKind) {
  Vid o = versions_.OfOid(symbols_.Symbol("o"));
  Vid mod_o = versions_.Child(o, UpdateKind::kModify);
  EXPECT_EQ(versions_.Child(o, UpdateKind::kModify), mod_o);
  EXPECT_NE(versions_.Child(o, UpdateKind::kDelete), mod_o);
  EXPECT_EQ(versions_.parent(mod_o), o);
  EXPECT_EQ(versions_.kind(mod_o), UpdateKind::kModify);
  EXPECT_EQ(versions_.depth(mod_o), 1u);
  EXPECT_EQ(versions_.root(mod_o), symbols_.Symbol("o"));
}

// Figure 1: k consecutive groups of updates yield the chain
// o, θ1(o), θ2(θ1(o)), ...; each stage is the parent of the next and a
// subterm of every later stage.
TEST_F(VersionTableTest, Figure1ChainStructure) {
  Vid stage = versions_.OfOid(symbols_.Symbol("o"));
  std::vector<Vid> chain{stage};
  UpdateKind kinds[] = {UpdateKind::kModify, UpdateKind::kDelete,
                        UpdateKind::kInsert};
  for (int k = 0; k < 12; ++k) {
    stage = versions_.Child(stage, kinds[k % 3]);
    chain.push_back(stage);
  }
  for (size_t i = 0; i < chain.size(); ++i) {
    EXPECT_EQ(versions_.depth(chain[i]), i);
    for (size_t j = 0; j < chain.size(); ++j) {
      EXPECT_EQ(versions_.IsSubterm(chain[i], chain[j]), i <= j)
          << i << " vs " << j;
    }
  }
}

TEST_F(VersionTableTest, SubtermRequiresSameObject) {
  Vid a = versions_.OfOid(symbols_.Symbol("a"));
  Vid b = versions_.OfOid(symbols_.Symbol("b"));
  Vid mod_b = versions_.Child(b, UpdateKind::kModify);
  EXPECT_FALSE(versions_.IsSubterm(a, mod_b));
  EXPECT_TRUE(versions_.IsSubterm(b, mod_b));
}

TEST_F(VersionTableTest, SiblingsAreNotSubterms) {
  Vid o = versions_.OfOid(symbols_.Symbol("o"));
  Vid mod_o = versions_.Child(o, UpdateKind::kModify);
  Vid del_o = versions_.Child(o, UpdateKind::kDelete);
  EXPECT_FALSE(versions_.IsSubterm(mod_o, del_o));
  EXPECT_FALSE(versions_.IsSubterm(del_o, mod_o));
}

TEST_F(VersionTableTest, ShapesGroupVidsByFunctorChain) {
  Vid a = versions_.OfOid(symbols_.Symbol("a"));
  Vid b = versions_.OfOid(symbols_.Symbol("b"));
  Vid mod_a = versions_.Child(a, UpdateKind::kModify);
  Vid mod_b = versions_.Child(b, UpdateKind::kModify);
  Vid del_mod_a = versions_.Child(mod_a, UpdateKind::kDelete);

  EXPECT_EQ(versions_.shape(mod_a), versions_.shape(mod_b));
  EXPECT_NE(versions_.shape(mod_a), versions_.shape(del_mod_a));

  VidShape mod_shape = versions_.InternShape({UpdateKind::kModify});
  EXPECT_EQ(versions_.shape(mod_a), mod_shape);
  const std::vector<Vid>& mods = versions_.VidsWithShape(mod_shape);
  EXPECT_EQ(mods.size(), 2u);

  VidShape dm = versions_.InternShape(
      {UpdateKind::kDelete, UpdateKind::kModify});
  EXPECT_EQ(versions_.shape(del_mod_a), dm);
  // Outermost-first: shape ops spell del, then mod.
  EXPECT_EQ(versions_.ShapeOps(dm)[0], UpdateKind::kDelete);
  EXPECT_EQ(versions_.ShapeOps(dm)[1], UpdateKind::kModify);
}

TEST_F(VersionTableTest, UnknownShapeHasNoVids) {
  VidShape s = versions_.InternShape(
      {UpdateKind::kInsert, UpdateKind::kInsert, UpdateKind::kInsert});
  EXPECT_TRUE(versions_.VidsWithShape(s).empty());
}

TEST_F(VersionTableTest, ToStringSpellsTheTerm) {
  Vid henry = versions_.OfOid(symbols_.Symbol("henry"));
  Vid v = versions_.Child(
      versions_.Child(versions_.Child(henry, UpdateKind::kModify),
                      UpdateKind::kDelete),
      UpdateKind::kInsert);
  EXPECT_EQ(versions_.ToString(v, symbols_), "ins(del(mod(henry)))");
  EXPECT_EQ(versions_.ToString(henry, symbols_), "henry");
}

}  // namespace
}  // namespace verso
