// Body matching: enumeration and the paper's truth definitions for
// version- and update-terms in rule bodies (Section 3).

#include <gtest/gtest.h>

#include <set>

#include "core/match.h"
#include "parser/parser.h"

namespace verso {
namespace {

class MatchTest : public ::testing::Test {
 protected:
  MatchTest() : base_(symbols_.exists_method(), &versions_) {}

  void Facts(const char* text) {
    Status s = ParseObjectBaseInto(text, symbols_, versions_, base_);
    ASSERT_TRUE(s.ok()) << s.ToString();
    base_.SealExistence();
  }

  /// Parses "<head> <- <body>." as a rule, analyzes it, and returns every
  /// binding of variable `var` (sorted, as surface strings).
  std::multiset<std::string> MatchesOf(const char* rule_text,
                                       const char* var) {
    Result<Program> program = ParseProgram(rule_text, symbols_);
    EXPECT_TRUE(program.ok()) << program.status().ToString();
    rule_ = std::move(program->rules[0]);
    Status s = AnalyzeRule(rule_, symbols_);
    EXPECT_TRUE(s.ok()) << s.ToString();
    int var_index = -1;
    for (size_t i = 0; i < rule_.var_names.size(); ++i) {
      if (rule_.var_names[i] == var) var_index = static_cast<int>(i);
    }
    EXPECT_GE(var_index, 0) << "no variable " << var;
    std::multiset<std::string> out;
    MatchContext ctx{symbols_, versions_, base_, &istats_};
    Status status = ForEachBodyMatch(
        rule_, ctx, [&](const Bindings& bindings) -> Status {
          Oid v = bindings[static_cast<size_t>(var_index)];
          out.insert(v.valid() ? symbols_.OidToString(v) : "<unbound>");
          return Status::Ok();
        });
    EXPECT_TRUE(status.ok()) << status.ToString();
    return out;
  }

  SymbolTable symbols_;
  VersionTable versions_;
  ObjectBase base_;
  Rule rule_;
  IndexStats istats_;
};

/// Forces ForEachAppWithResult onto the pre-index full scan for the
/// duration of a scope (the ablation toggle; diffed against the indexed
/// default below).
class ScanModeGuard {
 public:
  ScanModeGuard() { SharedApps::EnableResultIndex(false); }
  ~ScanModeGuard() { SharedApps::EnableResultIndex(true); }
};

TEST_F(MatchTest, PlainVersionTermEnumerates) {
  Facts("a.isa -> empl.  b.isa -> empl.  c.isa -> mgr.");
  EXPECT_EQ(MatchesOf("r: ins[E].m -> 1 <- E.isa -> empl.", "E"),
            (std::multiset<std::string>{"a", "b"}));
}

TEST_F(MatchTest, BoundVersionLookupAndArgPatterns) {
  Facts("m.at@1,1 -> 10.  m.at@1,2 -> 20.  m.at@2,2 -> 40.");
  EXPECT_EQ(MatchesOf("r: ins[x].m -> V <- m.at@1,J -> V.", "V"),
            (std::multiset<std::string>{"10", "20"}));
  // Repeated variable forces equal args.
  EXPECT_EQ(MatchesOf("r: ins[x].m -> V <- m.at@I,I -> V.", "V"),
            (std::multiset<std::string>{"10", "40"}));
}

TEST_F(MatchTest, ShapeFilteringSeparatesVersions) {
  Facts("a.sal -> 1.  mod(a).sal -> 2.  mod(b).sal -> 3. "
        "del(mod(a)).sal -> 4.");
  EXPECT_EQ(MatchesOf("r: ins[x].m -> S <- E.sal -> S.", "S"),
            (std::multiset<std::string>{"1"}));
  EXPECT_EQ(MatchesOf("r: ins[x].m -> S <- mod(E).sal -> S.", "S"),
            (std::multiset<std::string>{"2", "3"}));
  EXPECT_EQ(MatchesOf("r: ins[x].m -> S <- del(mod(E)).sal -> S.", "S"),
            (std::multiset<std::string>{"4"}));
}

TEST_F(MatchTest, NegatedVersionTermFiltersBindings) {
  Facts("a.isa -> empl.  b.isa -> empl.  a.pos -> mgr.");
  EXPECT_EQ(MatchesOf(
                "r: ins[E].m -> 1 <- E.isa -> empl, not E.pos -> mgr.", "E"),
            (std::multiset<std::string>{"b"}));
}

TEST_F(MatchTest, BuiltinsFilterAndBind) {
  Facts("a.sal -> 100.  b.sal -> 300.");
  EXPECT_EQ(MatchesOf("r: ins[E].m -> 1 <- E.sal -> S, S > 200.", "E"),
            (std::multiset<std::string>{"b"}));
  EXPECT_EQ(MatchesOf("r: ins[E].m -> S2 <- E.sal -> S, S2 = S * 2.", "S2"),
            (std::multiset<std::string>{"200", "600"}));
  EXPECT_EQ(
      MatchesOf("r: ins[E].m -> 1 <- E.sal -> S, not S = 100.", "E"),
      (std::multiset<std::string>{"b"}));
}

// Body ins[v].m->r is true iff ins(v).m->r holds (Section 3).
TEST_F(MatchTest, InsertBodyTruth) {
  Facts("a.isa -> empl.  ins(a).tag -> new.");
  EXPECT_EQ(MatchesOf("r: ins[x].m -> T <- ins[E].tag -> T.", "T"),
            (std::multiset<std::string>{"new"}));
  // Negated: b has no ins-version.
  Facts("b.isa -> empl.");
  EXPECT_EQ(MatchesOf("r: ins[x].m -> 1 <- E.isa -> empl, "
                      "not ins[E].tag -> new.", "E"),
            (std::multiset<std::string>{"b"}));
}

// Body del[v].m->r: v*.m->r held, del(v) exists, del(v).m->r gone.
TEST_F(MatchTest, DeleteBodyTruth) {
  Facts(R"(
      a.isa -> empl.  a.sal -> 10.
      del(a).exists -> a.  del(a).sal -> 10.
      b.isa -> empl.  b.sal -> 20.
      del(b).exists -> b.
  )");
  // For a: isa was deleted (missing from del(a)), sal was not.
  // For b: everything was deleted.
  EXPECT_EQ(MatchesOf("r: ins[x].m -> E <- del[E].isa -> empl.", "E"),
            (std::multiset<std::string>{"a", "b"}));
  EXPECT_EQ(MatchesOf("r: ins[x].m -> E <- del[E].sal -> S.", "E"),
            (std::multiset<std::string>{"b"}));
  // Ground negated form (footnote 2's distinction lives here): only a's
  // salary survived its delete; b's was deleted, so b is excluded.
  EXPECT_EQ(MatchesOf("r: ins[x].m -> E <- E.isa -> empl, E.sal -> S, "
                      "not del[E].sal -> S.", "E"),
            (std::multiset<std::string>{"a"}));
}

// Body mod[v].m->(r,r'): r != r' means changed away; r == r' means still
// present in both stages.
TEST_F(MatchTest, ModifyBodyTruth) {
  Facts(R"(
      a.sal -> 100.  a.grade -> 3.
      mod(a).exists -> a.  mod(a).sal -> 110.  mod(a).grade -> 3.
  )");
  EXPECT_EQ(MatchesOf("r: ins[x].m -> S2 <- mod[E].sal -> (S, S2).", "S2"),
            (std::multiset<std::string>{"110"}));
  // Unchanged methods match as (r, r).
  EXPECT_EQ(MatchesOf("r: ins[x].m -> G <- mod[E].grade -> (G, G).", "G"),
            (std::multiset<std::string>{"3"}));
  // sal did change, so (S, S) must not match it.
  EXPECT_EQ(MatchesOf("r: ins[x].m -> S <- mod[E].sal -> (S, S).", "S"),
            (std::multiset<std::string>{}));
}

TEST_F(MatchTest, ModifyBodyGroundNegation) {
  Facts(R"(
      a.sal -> 100.
      mod(a).exists -> a.  mod(a).sal -> 110.
      b.sal -> 100.
  )");
  EXPECT_EQ(MatchesOf("r: ins[x].m -> E <- E.sal -> 100, "
                      "not mod[E].sal -> (100, 110).", "E"),
            (std::multiset<std::string>{"b"}));
}

// ---- Bound-result literals: indexed path vs scan path ----------------

TEST_F(MatchTest, GroundResultLiteralMatchesScanPath) {
  Facts("a.likes -> jazz.  a.likes -> rock.  b.likes -> jazz. "
        "c.likes -> folk.  c.likes -> rock.  c.likes -> ska.");
  const char* rule = "r: ins[x].m -> E <- E.likes -> jazz.";
  std::multiset<std::string> indexed = MatchesOf(rule, "E");
  EXPECT_EQ(indexed, (std::multiset<std::string>{"a", "b"}));
  EXPECT_GT(istats_.index_probes, 0u);
  EXPECT_GT(istats_.indexed_scan_avoided_facts, 0u);
  ScanModeGuard scan;
  EXPECT_EQ(MatchesOf(rule, "E"), indexed);
}

TEST_F(MatchTest, ResultBoundEarlierInBodyMatchesScanPath) {
  Facts("boss.likes -> jazz.  a.likes -> jazz.  a.likes -> rock. "
        "b.likes -> rock.  c.likes -> jazz.");
  // T is ground by the time F.likes -> T is enumerated (the first
  // literal's version is a constant, so it is planned first); the second
  // literal takes the indexed path per candidate F.
  const char* rule = "r: ins[x].m -> F <- boss.likes -> T, F.likes -> T.";
  std::multiset<std::string> indexed = MatchesOf(rule, "F");
  EXPECT_EQ(indexed, (std::multiset<std::string>{"a", "boss", "c"}));
  EXPECT_GT(istats_.index_probes, 0u);
  ScanModeGuard scan;
  EXPECT_EQ(MatchesOf(rule, "F"), indexed);
}

TEST_F(MatchTest, NegatedBoundResultLiteralMatchesScanPath) {
  Facts("a.likes -> jazz.  a.isa -> fan.  b.isa -> fan. "
        "b.likes -> rock.  c.isa -> fan.");
  const char* rule =
      "r: ins[x].m -> E <- E.isa -> fan, not E.likes -> jazz.";
  std::multiset<std::string> indexed = MatchesOf(rule, "E");
  EXPECT_EQ(indexed, (std::multiset<std::string>{"b", "c"}));
  ScanModeGuard scan;
  EXPECT_EQ(MatchesOf(rule, "E"), indexed);
}

TEST_F(MatchTest, BoundResultUpdateLiteralsMatchScanPath) {
  Facts(R"(
      a.isa -> empl.  a.sal -> 10.
      del(a).exists -> a.
      b.isa -> empl.  b.sal -> 10.
      del(b).exists -> b.  del(b).sal -> 10.
      c.sal -> 100.
      mod(c).exists -> c.  mod(c).sal -> 110.
  )");
  // del[E].sal -> 10: ground result, enumerated from v*'s state.
  const char* del_rule = "r: ins[x].m -> E <- del[E].sal -> 10.";
  std::multiset<std::string> del_indexed = MatchesOf(del_rule, "E");
  EXPECT_EQ(del_indexed, (std::multiset<std::string>{"a"}));
  // mod[E].sal -> (100, S2): ground old result indexes into v*.
  const char* mod_rule = "r: ins[x].m -> S2 <- mod[E].sal -> (100, S2).";
  std::multiset<std::string> mod_indexed = MatchesOf(mod_rule, "S2");
  EXPECT_EQ(mod_indexed, (std::multiset<std::string>{"110"}));
  EXPECT_GT(istats_.index_probes, 0u);
  ScanModeGuard scan;
  EXPECT_EQ(MatchesOf(del_rule, "E"), del_indexed);
  EXPECT_EQ(MatchesOf(mod_rule, "S2"), mod_indexed);
}

TEST_F(MatchTest, SemiNaiveSeededMatch) {
  Facts("a.edge -> b.  b.edge -> c.");
  Result<Program> program = ParseProgram(
      "r: ins[X].m -> Z <- X.edge -> Y, Y.edge -> Z.", symbols_);
  ASSERT_TRUE(program.ok());
  Rule rule = std::move(program->rules[0]);
  ASSERT_TRUE(AnalyzeRule(rule, symbols_).ok());

  // Seed Y=b via "delta" on the second literal and skip it.
  Bindings seed(rule.var_count(), Oid());
  int y = -1, z = -1;
  for (size_t i = 0; i < rule.var_names.size(); ++i) {
    if (rule.var_names[i] == "Y") y = static_cast<int>(i);
    if (rule.var_names[i] == "Z") z = static_cast<int>(i);
  }
  ASSERT_GE(y, 0);
  ASSERT_GE(z, 0);
  // Literal 1 is Y.edge -> Z; seed both of its variables.
  seed[static_cast<size_t>(y)] = symbols_.Symbol("b");
  seed[static_cast<size_t>(z)] = symbols_.Symbol("c");
  MatchContext ctx{symbols_, versions_, base_};
  int matches = 0;
  Status s = ForEachBodyMatchFrom(
      rule, ctx, seed, /*skip_literal=*/1,
      [&](const Bindings& bindings) -> Status {
        ++matches;
        EXPECT_EQ(bindings[0], symbols_.Symbol("a"));  // X
        return Status::Ok();
      });
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(matches, 1);
}

TEST_F(MatchTest, ErrorsPropagateFromSink) {
  Facts("a.isa -> empl.");
  Result<Program> program =
      ParseProgram("r: ins[E].m -> 1 <- E.isa -> empl.", symbols_);
  ASSERT_TRUE(program.ok());
  Rule rule = std::move(program->rules[0]);
  ASSERT_TRUE(AnalyzeRule(rule, symbols_).ok());
  MatchContext ctx{symbols_, versions_, base_};
  Status s = ForEachBodyMatch(rule, ctx, [&](const Bindings&) {
    return Status::Internal("stop");
  });
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInternal);
}

}  // namespace
}  // namespace verso
