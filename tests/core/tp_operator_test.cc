// The three-step immediate consequence operator T_P (Section 3):
// head-truth filtering in step 1, active-vs-prior copies in step 2, and
// the simultaneous two-phase application in step 3.

#include "core/tp_operator.h"

#include <gtest/gtest.h>

#include "parser/parser.h"

namespace verso {
namespace {

class TpOperatorTest : public ::testing::Test {
 protected:
  TpOperatorTest() : base_(symbols_.exists_method(), &versions_) {}

  void Facts(const char* text) {
    Status s = ParseObjectBaseInto(text, symbols_, versions_, base_);
    ASSERT_TRUE(s.ok()) << s.ToString();
    base_.SealExistence();
  }

  TpResult Apply(const char* program_text) {
    Result<Program> program = ParseProgram(program_text, symbols_);
    EXPECT_TRUE(program.ok()) << program.status().ToString();
    program_ = std::move(program).value();
    EXPECT_TRUE(program_.Analyze(symbols_).ok());
    std::vector<uint32_t> all;
    for (uint32_t i = 0; i < program_.rules.size(); ++i) all.push_back(i);
    TpOperator tp(symbols_, versions_);
    Result<TpResult> result = tp.Apply(program_, all, base_, nullptr);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return std::move(result).value();
  }

  Vid V(const char* chain) {
    // "mod(a)" etc. — reuse the object-base parser by parsing a fact.
    ObjectBase scratch(symbols_.exists_method(), &versions_);
    std::string text = std::string(chain) + ".probe -> probe.";
    Status s = ParseObjectBaseInto(text, symbols_, versions_, scratch);
    EXPECT_TRUE(s.ok()) << s.ToString();
    return scratch.versions().begin()->first;
  }

  GroundApp App(Oid result) {
    GroundApp app;
    app.result = result;
    return app;
  }

  SymbolTable symbols_;
  VersionTable versions_;
  ObjectBase base_;
  Program program_;
};

TEST_F(TpOperatorTest, InsertHeadIsAlwaysTrue) {
  Facts("a.isa -> empl.");
  TpResult r = Apply("f: ins[a].tag -> fresh.");
  EXPECT_EQ(r.t1_updates, 1u);
  ASSERT_EQ(r.new_states.size(), 1u);
  const VersionState& state = r.new_states.begin()->second;
  EXPECT_TRUE(state.Contains(symbols_.Method("tag"),
                             App(symbols_.Symbol("fresh"))));
  // Copied from the v* stage a (isa + exists), plus the insert.
  EXPECT_EQ(state.fact_count(), 3u);
  EXPECT_EQ(r.t2_copies_from_prior, 1u);
}

TEST_F(TpOperatorTest, DeleteHeadRequiresOldFact) {
  Facts("a.isa -> empl.");
  // Deleting a fact that is not there derives nothing (head untrue).
  TpResult r = Apply("f: del[a].isa -> mgr.");
  EXPECT_EQ(r.t1_updates, 0u);
  EXPECT_TRUE(r.new_states.empty());
}

TEST_F(TpOperatorTest, ModifyHeadRequiresOldValue) {
  Facts("a.sal -> 100.");
  TpResult none = Apply("f: mod[a].sal -> (999, 1).");
  EXPECT_EQ(none.t1_updates, 0u);
  TpResult some = Apply("f: mod[a].sal -> (100, 110).");
  EXPECT_EQ(some.t1_updates, 1u);
  const VersionState& state = some.new_states.begin()->second;
  EXPECT_TRUE(state.Contains(symbols_.Method("sal"), App(symbols_.Int(110))));
  EXPECT_FALSE(state.Contains(symbols_.Method("sal"), App(symbols_.Int(100))));
}

// Step 3 is simultaneous: mod(a->b) and mod(b->c) in one application
// yield {b, c}, not {c} (removals all happen before additions).
TEST_F(TpOperatorTest, SimultaneousModifiesDoNotShadow) {
  Facts("x.m -> a.  x.m -> b.");
  TpResult r = Apply(R"(
      f: mod[x].m -> (a, b).
      g: mod[x].m -> (b, c).
  )");
  EXPECT_EQ(r.t1_updates, 2u);
  const VersionState& state = r.new_states.at(V("mod(x)"));
  MethodId m = symbols_.Method("m");
  EXPECT_FALSE(state.Contains(m, App(symbols_.Symbol("a"))));
  EXPECT_TRUE(state.Contains(m, App(symbols_.Symbol("b"))));
  EXPECT_TRUE(state.Contains(m, App(symbols_.Symbol("c"))));
}

TEST_F(TpOperatorTest, DeleteAllExpandsFromVStarSparingExists) {
  Facts("a.isa -> empl.  a.sal -> 10.  a.boss -> b.  b.isa -> empl.");
  TpResult r = Apply("f: del[a].* <- a.isa -> empl.");
  EXPECT_EQ(r.t1_updates, 3u);  // isa, sal, boss — not exists
  const VersionState& state = r.new_states.at(V("del(a)"));
  EXPECT_TRUE(state.OnlyExists(symbols_.exists_method()));
}

TEST_F(TpOperatorTest, ActiveTargetCopiesItself) {
  Facts(R"(
      a.sal -> 100.
      ins(a).exists -> a.  ins(a).sal -> 100.  ins(a).tag -> old.
  )");
  TpResult r = Apply("f: ins[a].tag -> newer.");
  EXPECT_EQ(r.t2_copies_from_self, 1u);
  EXPECT_EQ(r.t2_copies_from_prior, 0u);
  const VersionState& state = r.new_states.at(V("ins(a)"));
  // Keeps its own facts (tag -> old) and gains the new insert.
  EXPECT_TRUE(state.Contains(symbols_.Method("tag"),
                             App(symbols_.Symbol("old"))));
  EXPECT_TRUE(state.Contains(symbols_.Method("tag"),
                             App(symbols_.Symbol("newer"))));
}

TEST_F(TpOperatorTest, RelevantNotActiveCopiesFromVStar) {
  // v = mod(a) is not materialized; v* is a. The copy seeds del(mod(a))
  // from a's state.
  Facts("a.sal -> 10.  a.isa -> empl.");
  TpResult r = Apply("f: del[mod(a)].sal -> 10.");
  EXPECT_EQ(r.t1_updates, 1u);
  const VersionState& state = r.new_states.at(V("del(mod(a))"));
  EXPECT_FALSE(state.Contains(symbols_.Method("sal"), App(symbols_.Int(10))));
  EXPECT_TRUE(state.Contains(symbols_.Method("isa"),
                             App(symbols_.Symbol("empl"))));
  EXPECT_TRUE(state.Contains(symbols_.exists_method(),
                             App(symbols_.Symbol("a"))));
}

// Inserting on an OID absent from ob creates a fresh object whose version
// carries an injected exists-fact (documented extension).
TEST_F(TpOperatorTest, FreshObjectCreation) {
  Facts("a.isa -> empl.");
  TpResult r = Apply("f: ins[newguy].isa -> empl <- a.isa -> empl.");
  EXPECT_EQ(r.fresh_objects, 1u);
  const VersionState& state = r.new_states.at(V("ins(newguy)"));
  EXPECT_TRUE(state.Contains(symbols_.exists_method(),
                             App(symbols_.Symbol("newguy"))));
  EXPECT_TRUE(state.Contains(symbols_.Method("isa"),
                             App(symbols_.Symbol("empl"))));
}

TEST_F(TpOperatorTest, DuplicateDerivationsCollapseInT1) {
  Facts("a.isa -> empl.  a.isa -> mgr.");
  // Two body matches derive the same ground insert.
  TpResult r = Apply("f: ins[a].tag -> t <- a.isa -> X.");
  EXPECT_EQ(r.t1_updates, 1u);
}

TEST_F(TpOperatorTest, StatsCountCopiedFacts) {
  Facts("a.p -> 1.  a.q -> 2.  a.r -> 3.");
  TpResult r = Apply("f: ins[a].s -> 4.");
  // 3 facts + exists copied from a.
  EXPECT_EQ(r.t2_copied_facts, 4u);
}

}  // namespace
}  // namespace verso
