// Differential tests for the parallel derivation path: evaluation with
// num_threads > 1 must be bit-identical to serial evaluation — same
// result(P), same committed base, identical EvalStats in every counter,
// and an identical TraceSink event stream (derivation order included).
// Most cases admit everything; the randomized admission property at the
// bottom runs the real analyzer-derived policy and checks conflicting
// strata never fan out.

#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "analysis/analyzer.h"
#include "core/engine.h"
#include "core/pretty.h"
#include "parser/parser.h"
#include "workloads/workloads.h"

namespace verso {
namespace {

struct Outcome {
  std::string result_text;
  std::string new_base_text;
  EvalStats stats;
  std::vector<std::string> trace_lines;
  size_t parallel_strata = 0;
  size_t fallback_rounds = 0;
  size_t worker_tasks = 0;
};

/// RecordingTrace plus the parallel telemetry hook (which RecordingTrace
/// itself deliberately ignores so its lines stay thread-count-invariant).
class ProbeTrace : public RecordingTrace {
 public:
  using RecordingTrace::RecordingTrace;

  void OnParallelEval(uint32_t stratum, size_t parallel_rounds,
                      size_t worker_tasks, size_t fallback_rounds,
                      const std::vector<uint64_t>& queue_wait_us) override {
    (void)stratum;
    (void)queue_wait_us;
    if (parallel_rounds > 0) ++parallel_strata;
    tasks += worker_tasks;
    fallbacks += fallback_rounds;
  }

  size_t parallel_strata = 0;
  size_t tasks = 0;
  size_t fallbacks = 0;
};

using BaseFiller = std::function<void(Engine&, ObjectBase&)>;

Outcome RunWithThreads(const BaseFiller& fill, const std::string& program_text,
                       int num_threads, bool semi_naive = true,
                       bool analyzer_admission = false) {
  Engine engine;
  ObjectBase base = engine.MakeBase();
  fill(engine, base);
  Result<Program> program = ParseProgram(program_text, engine);
  EXPECT_TRUE(program.ok()) << program.status().ToString();
  EvalOptions options;
  options.semi_naive = semi_naive;
  options.num_threads = num_threads;
  if (analyzer_admission) {
    options.admit_parallel =
        MakeParallelAdmission(std::make_shared<AnalysisReport>(
            AnalyzeUpdateProgram(*program, engine.symbols())));
  } else {
    options.admit_parallel =
        [](const Program&, const std::vector<uint32_t>&) { return true; };
  }
  ProbeTrace trace(engine.symbols(), engine.versions());
  Result<RunOutcome> outcome = engine.Run(*program, base, options, &trace);
  EXPECT_TRUE(outcome.ok()) << outcome.status().ToString();
  Outcome out;
  out.result_text =
      ObjectBaseToString(outcome->result, engine.symbols(), engine.versions());
  out.new_base_text = ObjectBaseToString(outcome->new_base, engine.symbols(),
                                         engine.versions());
  out.stats = std::move(outcome->stats);
  out.trace_lines = trace.lines();
  out.parallel_strata = trace.parallel_strata;
  out.fallback_rounds = trace.fallbacks;
  out.worker_tasks = trace.tasks;
  return out;
}

void ExpectIdentical(const Outcome& serial, const Outcome& parallel) {
  EXPECT_EQ(serial.result_text, parallel.result_text);
  EXPECT_EQ(serial.new_base_text, parallel.new_base_text);
  EXPECT_EQ(serial.trace_lines, parallel.trace_lines);
  EXPECT_EQ(serial.stats.versions_materialized,
            parallel.stats.versions_materialized);
  ASSERT_EQ(serial.stats.strata.size(), parallel.stats.strata.size());
  for (size_t i = 0; i < serial.stats.strata.size(); ++i) {
    const StratumStats& s = serial.stats.strata[i];
    const StratumStats& p = parallel.stats.strata[i];
    EXPECT_EQ(s.rounds, p.rounds) << "stratum " << i;
    EXPECT_EQ(s.t1_updates, p.t1_updates) << "stratum " << i;
    EXPECT_EQ(s.states_replaced, p.states_replaced) << "stratum " << i;
    EXPECT_EQ(s.copied_facts, p.copied_facts) << "stratum " << i;
    EXPECT_EQ(s.body_matches, p.body_matches) << "stratum " << i;
    EXPECT_EQ(s.delta_facts, p.delta_facts) << "stratum " << i;
    EXPECT_EQ(s.seed_probes, p.seed_probes) << "stratum " << i;
    EXPECT_EQ(s.seed_pairs_skipped, p.seed_pairs_skipped) << "stratum " << i;
    EXPECT_EQ(s.residual_rule_runs, p.residual_rule_runs) << "stratum " << i;
    EXPECT_EQ(s.index_probes, p.index_probes) << "stratum " << i;
    EXPECT_EQ(s.index_hits, p.index_hits) << "stratum " << i;
    EXPECT_EQ(s.indexed_scan_avoided_facts, p.indexed_scan_avoided_facts)
        << "stratum " << i;
  }
}

void Differential(const BaseFiller& fill, const std::string& program_text,
                  bool semi_naive = true) {
  Outcome serial = RunWithThreads(fill, program_text, 0, semi_naive);
  for (int threads : {2, 4}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    Outcome parallel =
        RunWithThreads(fill, program_text, threads, semi_naive);
    ExpectIdentical(serial, parallel);
    EXPECT_EQ(parallel.fallback_rounds, 0u);
  }
  EXPECT_EQ(serial.parallel_strata, 0u);  // serial runs emit no telemetry
}

BaseFiller Parsed(const char* base_text) {
  return [base_text](Engine& engine, ObjectBase& base) {
    Status s = ParseObjectBaseInto(base_text, engine.symbols(),
                                   engine.versions(), base);
    ASSERT_TRUE(s.ok()) << s.ToString();
  };
}

TEST(ParallelEvalDifferential, RecursiveAncestors) {
  Differential(Parsed("p1.isa -> person.  p1.parents -> p2.  "
                      "p1.parents -> p3.  p2.isa -> person.  "
                      "p2.parents -> p4.  p3.isa -> person.  "
                      "p4.isa -> person.  p4.parents -> p5.  "
                      "p5.isa -> person."),
               kAncestorsProgramText);
}

TEST(ParallelEvalDifferential, EnterpriseProgram) {
  Differential(Parsed("phil.isa -> empl.  phil.pos -> mgr.   "
                      "phil.sal -> 4000.  bob.isa -> empl.   "
                      "bob.boss -> phil.  bob.sal -> 4200."),
               kEnterpriseProgramText);
}

TEST(ParallelEvalDifferential, HypotheticalRaise) {
  Differential(Parsed("peter.isa -> empl.  peter.sal -> 100.  "
                      "peter.factor -> 3.  anna.isa -> empl.   "
                      "anna.sal -> 200.   anna.factor -> 1."),
               HypotheticalProgramText("peter"));
}

TEST(ParallelEvalDifferential, ChainedModifies) {
  Differential(Parsed("o.val -> 1."),
               "r1: mod[o].val -> (V, V2) <- o.val -> V, V2 = V + 1."
               "r2: mod[mod(o)].val -> (V, V2) <- mod(o).val -> V, "
               "V2 = V * 10.");
}

// Wide fan-out drives rounds over the parallel-seeding threshold: every
// round's delta carries hundreds of facts, so the seeded path genuinely
// fans out, and the interning of fresh ins(...) versions mid-round
// exercises the overlay replay ordering.
TEST(ParallelEvalDifferential, WideReachabilityActuallyFansOut) {
  constexpr int kNodes = 24;
  BaseFiller fill = [](Engine& engine, ObjectBase& base) {
    for (int i = 0; i < kNodes; ++i) {
      std::string name = "n" + std::to_string(i);
      engine.AddFact(base, name, "next",
                     engine.symbols().Symbol(
                         "n" + std::to_string((i + 1) % kNodes)));
      engine.AddFact(base, name, "next",
                     engine.symbols().Symbol(
                         "n" + std::to_string((i * 7 + 3) % kNodes)));
    }
  };
  const std::string program =
      "r1: ins[X].reach -> Y <- X.next -> Y."
      "r2: ins[X].reach -> Z <- ins(X).reach -> Y, Y.next -> Z.";
  Differential(fill, program);
  Outcome parallel = RunWithThreads(fill, program, 4);
  EXPECT_GT(parallel.parallel_strata, 0u);
  EXPECT_GT(parallel.worker_tasks, 0u);
}

// Naive mode re-matches every rule in full each round; the per-rule
// parallel fan-out must reproduce its (different) stats stream too.
TEST(ParallelEvalDifferential, NaiveModeFullMatchingFansOut) {
  Differential(Parsed("p1.isa -> person.  p1.parents -> p2.  "
                      "p1.parents -> p3.  p2.isa -> person.  "
                      "p2.parents -> p4.  p3.isa -> person.  "
                      "p4.isa -> person.  p4.parents -> p5.  "
                      "p5.isa -> person."),
               kAncestorsProgramText, /*semi_naive=*/false);
}

TEST(ParallelEvalDifferential, RandomGenealogies) {
  for (uint64_t seed : {1u, 7u, 13u, 42u}) {
    BaseFiller fill = [seed](Engine& engine, ObjectBase& base) {
      GenealogyOptions options;
      options.persons = 48;
      options.max_parents = 2;
      options.seed = seed;
      MakeGenealogy(options, engine, base);
    };
    Differential(fill, kAncestorsProgramText);
  }
}

TEST(ParallelEvalDifferential, RandomEnterprises) {
  for (uint64_t seed : {3u, 11u, 42u}) {
    BaseFiller fill = [seed](Engine& engine, ObjectBase& base) {
      EnterpriseOptions options;
      options.employees = 64;
      options.manager_every = 8;
      options.seed = seed;
      MakeEnterprise(options, engine, base);
    };
    Differential(fill, kEnterpriseProgramText);
  }
}

// Randomized mixed programs under the REAL analyzer-derived admission
// policy: clean recursive closures on private methods (overlap pairs
// only — confluent, admitted) interleaved in random order with
// ins-vs-del conflict pairs. Rule dependencies are version-term level,
// so every draw collapses into ONE evaluation stratum; the property is
// that a single conflicting pair anywhere in the stratum serializes it
// entirely — zero parallel telemetry — while conflict-free draws of the
// same shape do fan out. Either way the run stays bit-identical to
// serial.
TEST(ParallelEvalDifferential, AdmissionSerializesConflictingStrata) {
  BaseFiller fill = [](Engine& engine, ObjectBase& base) {
    for (int i = 0; i < 24; ++i) {
      std::string name = "n" + std::to_string(i);
      engine.AddFact(base, name, "next",
                     engine.symbols().Symbol(
                         "n" + std::to_string((i + 1) % 24)));
      engine.AddFact(base, name, "next",
                     engine.symbols().Symbol(
                         "n" + std::to_string((i * 5 + 2) % 24)));
    }
  };
  for (uint64_t seed : {1u, 5u, 9u, 13u, 17u, 23u}) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    Rng rng(seed);
    const size_t clean_groups = 1 + rng.Below(2);  // 1..2
    const size_t conflict_groups = rng.Below(3);   // 0..2
    std::vector<std::string> groups;
    for (size_t k = 0; k < clean_groups; ++k) {
      std::string m = "m" + std::to_string(k);
      std::string p = "c" + std::to_string(k);
      groups.push_back(p + "a: ins[X]." + m + " -> Y <- X.next -> Y." +
                       p + "b: ins[X]." + m + " -> Z <- ins(X)." + m +
                       " -> Y, Y.next -> Z.");
    }
    for (size_t k = 0; k < conflict_groups; ++k) {
      std::string m = "w" + std::to_string(k);
      std::string p = "p" + std::to_string(k);
      groups.push_back(p + "a: ins[X]." + m + " -> on <- X.next -> Y." +
                       p + "b: del[X]." + m + " -> on <- X.next -> Y.");
    }
    for (size_t i = groups.size(); i > 1; --i) {
      std::swap(groups[i - 1], groups[rng.Below(i)]);
    }
    std::string program_text;
    for (const std::string& group : groups) program_text += group;

    // Confirm the draw's stratum structure and conflict verdict on the
    // analyzer's own report, so the telemetry expectations below test
    // admission rather than guesses about stratification.
    {
      Engine probe;
      Result<Program> parsed = ParseProgram(program_text, probe);
      ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
      AnalysisReport report =
          AnalyzeUpdateProgram(*parsed, probe.symbols());
      ASSERT_TRUE(report.stratifiable);
      ASSERT_EQ(report.strata.size(), 1u);
      EXPECT_EQ(report.strata[0].conflict_pairs.empty(),
                conflict_groups == 0);
    }

    Outcome serial = RunWithThreads(fill, program_text, 0);
    Outcome parallel = RunWithThreads(fill, program_text, 4,
                                      /*semi_naive=*/true,
                                      /*analyzer_admission=*/true);
    ExpectIdentical(serial, parallel);
    if (conflict_groups > 0) {
      EXPECT_EQ(parallel.parallel_strata, 0u);
      EXPECT_EQ(parallel.worker_tasks, 0u);
    } else {
      // The wide graph pushes the clean closure over the fan-out
      // thresholds, so admission, not size, is what gates here.
      EXPECT_EQ(parallel.parallel_strata, 1u);
      EXPECT_GT(parallel.worker_tasks, 0u);
    }
  }
}

// Without an admission policy, num_threads alone must not parallelize —
// unadmitted programs run serially and emit no telemetry.
TEST(ParallelEvalDifferential, NoAdmissionPolicyMeansSerial) {
  Engine engine;
  ObjectBase base = engine.MakeBase();
  Status s = ParseObjectBaseInto("p1.isa -> person.  p1.parents -> p2.  "
                                 "p2.isa -> person.",
                                 engine.symbols(), engine.versions(), base);
  ASSERT_TRUE(s.ok());
  Result<Program> program = ParseProgram(kAncestorsProgramText, engine);
  ASSERT_TRUE(program.ok());
  EvalOptions options;
  options.num_threads = 4;
  ProbeTrace trace(engine.symbols(), engine.versions());
  Result<RunOutcome> outcome = engine.Run(*program, base, options, &trace);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(trace.parallel_strata, 0u);
  EXPECT_EQ(trace.tasks, 0u);
}

}  // namespace
}  // namespace verso
