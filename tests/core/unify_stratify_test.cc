// OID-sorted unification of version-id-terms and the stratification
// conditions (a)-(d) of Section 4, including the paper's own strata and
// programs that must be rejected.

#include <gtest/gtest.h>

#include "core/stratify.h"
#include "core/unify.h"
#include "parser/parser.h"

namespace verso {
namespace {

VidTerm T(std::vector<UpdateKind> ops, ObjTerm base) {
  VidTerm t;
  t.ops = std::move(ops);
  t.base = base;
  return t;
}

constexpr UpdateKind kIns = UpdateKind::kInsert;
constexpr UpdateKind kDel = UpdateKind::kDelete;
constexpr UpdateKind kMod = UpdateKind::kModify;

TEST(UnifyTest, PlainTerms) {
  ObjTerm x = ObjTerm::Var(VarId(0));
  ObjTerm y = ObjTerm::Var(VarId(1));
  ObjTerm henry = ObjTerm::Const(Oid(7));
  ObjTerm bob = ObjTerm::Const(Oid(8));
  EXPECT_TRUE(UnifyVidTerms(T({}, x), T({}, y)));
  EXPECT_TRUE(UnifyVidTerms(T({}, x), T({}, henry)));
  EXPECT_TRUE(UnifyVidTerms(T({}, henry), T({}, henry)));
  EXPECT_FALSE(UnifyVidTerms(T({}, henry), T({}, bob)));
}

TEST(UnifyTest, FunctorChainsMustMatchExactly) {
  ObjTerm x = ObjTerm::Var(VarId(0));
  ObjTerm e = ObjTerm::Var(VarId(1));
  EXPECT_TRUE(UnifyVidTerms(T({kMod}, x), T({kMod}, e)));
  EXPECT_FALSE(UnifyVidTerms(T({kMod}, x), T({kDel}, e)));
  EXPECT_FALSE(UnifyVidTerms(T({kMod, kMod}, x), T({kMod}, e)));
}

// The load-bearing restriction: a variable is quantified over O, so it
// never unifies with a term containing a functor. Without this, rule 4's
// head ins(mod(E)) would unify with rule 3's head subterm E and force
// rule4 strictly below rule3 — contradicting the paper's strata.
TEST(UnifyTest, VariablesNeverBindVersionedTerms) {
  ObjTerm e = ObjTerm::Var(VarId(0));
  EXPECT_FALSE(UnifyVidTerms(T({}, e), T({kMod}, ObjTerm::Var(VarId(1)))));
  EXPECT_FALSE(
      UnifyVidTerms(T({kIns, kMod}, ObjTerm::Var(VarId(1))), T({}, e)));
}

TEST(UnifyTest, SubtermsAreFunctorSuffixes) {
  VidTerm t = T({kIns, kDel, kMod}, ObjTerm::Var(VarId(0)));
  std::vector<VidTerm> subs = VidSubterms(t);
  ASSERT_EQ(subs.size(), 4u);
  EXPECT_EQ(subs[0].ops, (std::vector<UpdateKind>{kIns, kDel, kMod}));
  EXPECT_EQ(subs[1].ops, (std::vector<UpdateKind>{kDel, kMod}));
  EXPECT_EQ(subs[2].ops, (std::vector<UpdateKind>{kMod}));
  EXPECT_TRUE(subs[3].ops.empty());
}

// ---- Stratification ---------------------------------------------------

class StratifyTest : public ::testing::Test {
 protected:
  Result<Stratification> StratifyText(const char* text) {
    Result<Program> program = ParseProgram(text, symbols_);
    EXPECT_TRUE(program.ok()) << program.status().ToString();
    program_ = std::move(program).value();
    return Stratify(program_);
  }

  SymbolTable symbols_;
  Program program_;
};

// Section 4's worked result for Example 1: {r1,r2}, {r3}, {r4}.
TEST_F(StratifyTest, PaperExample1Strata) {
  Result<Stratification> s = StratifyText(R"(
      rule1: mod[E].sal -> (S, S2) <-
          E.isa -> empl / pos -> mgr / sal -> S, S2 = S * 1.1 + 200.
      rule2: mod[E].sal -> (S, S2) <-
          E.isa -> empl / sal -> S, not E.pos -> mgr, S2 = S * 1.1.
      rule3: del[mod(E)].* <-
          mod(E).isa -> empl / boss -> B / sal -> SE,
          mod(B).isa -> empl / sal -> SB, SE > SB.
      rule4: ins[mod(E)].isa -> hpe <-
          mod(E).isa -> empl / sal -> S, S > 4500,
          not del[mod(E)].isa -> empl.
  )");
  ASSERT_TRUE(s.ok()) << s.status().ToString();
  EXPECT_EQ(s->stratum_count(), 3u);
  EXPECT_EQ(s->stratum_of_rule[0], 0u);
  EXPECT_EQ(s->stratum_of_rule[1], 0u);
  EXPECT_EQ(s->stratum_of_rule[2], 1u);
  EXPECT_EQ(s->stratum_of_rule[3], 2u);
}

// Condition (a) alone (paper's first illustration): {r1,r2},{r3,r4} is a
// valid (a)-stratification, and with (c)/(d) rule4 lands above rule3.
TEST_F(StratifyTest, ConditionAWritersBelowExtenders) {
  Result<Stratification> s = StratifyText(R"(
      w: mod[E].sal -> (S, S2) <- E.sal -> S, S2 = S + 1.
      x: del[mod(E)].sal -> S <- mod(E).sal -> S, S > 10.
  )");
  ASSERT_TRUE(s.ok());
  EXPECT_LT(s->stratum_of_rule[0], s->stratum_of_rule[1]);
}

// Positive recursion through the same version shape shares a stratum
// (paper Example 3).
TEST_F(StratifyTest, PositiveRecursionSharesStratum) {
  Result<Stratification> s = StratifyText(R"(
      r1: ins[X].anc -> P <- X.isa -> person / parents -> P.
      r2: ins[X].anc -> P <- ins(X).isa -> person / anc -> A,
                             A.isa -> person / parents -> P.
  )");
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->stratum_count(), 1u);
}

// Condition (c): negation through the same head version is rejected.
TEST_F(StratifyTest, NegativeRecursionIsRejected) {
  Result<Stratification> s = StratifyText(R"(
      r1: ins[X].odd -> yes <- X.isa -> n, not ins(X).odd -> yes.
  )");
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.status().code(), StatusCode::kNotStratifiable);
}

// Condition (d): a rule may not read the del(.)-version it is itself
// deleting from (the copied state would still be shrinking).
TEST_F(StratifyTest, ReadingOwnDeleteTargetIsRejected) {
  Result<Stratification> s = StratifyText(R"(
      r1: del[V].m -> X <- del(V).q -> X.
  )");
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.status().code(), StatusCode::kNotStratifiable);
}

TEST_F(StratifyTest, ModReadersAboveModWriters) {
  Result<Stratification> s = StratifyText(R"(
      w: mod[E].sal -> (S, S2) <- E.raise -> yes, E.sal -> S, S2 = S + 1.
      r: ins[E].log -> S <- mod(E).sal -> S.
  )");
  ASSERT_TRUE(s.ok());
  // Condition (d): the mod-writer is strictly below the mod-reader.
  EXPECT_LT(s->stratum_of_rule[0], s->stratum_of_rule[1]);
}

// Hypothetical-raise program (Example 2): stratifiable, with r1 below
// everything and r4 on top.
TEST_F(StratifyTest, PaperExample2IsStratifiable) {
  Result<Stratification> s = StratifyText(R"(
      r1: mod[E].sal -> (S, S2) <- E.sal -> S / factor -> F, S2 = S * F.
      r2: mod[mod(E)].sal -> (S2, S) <- mod(E).sal -> S2, E.sal -> S.
      r3: ins[mod(mod(peter))].richest -> no <-
          mod(E).sal -> SE, mod(peter).sal -> SP, SE > SP.
      r4: ins[ins(mod(mod(peter)))].richest -> yes <-
          not ins(mod(mod(peter))).richest -> no.
  )");
  ASSERT_TRUE(s.ok()) << s.status().ToString();
  const auto& l = s->stratum_of_rule;
  EXPECT_LT(l[0], l[1]);
  EXPECT_LT(l[0], l[2]);
  EXPECT_LT(l[1], l[3]);
  EXPECT_LT(l[2], l[3]);
}

// Independent rules about different objects land in stratum 0 together.
TEST_F(StratifyTest, IndependentRulesShareBottomStratum) {
  Result<Stratification> s = StratifyText(R"(
      a: ins[x].m -> 1 <- x.p -> 2.
      b: ins[y].n -> 3 <- y.q -> 4.
  )");
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->stratum_count(), 1u);
}

// Constants matter for unification: updates of distinct constants do not
// constrain each other, updates of the same constant do.
TEST_F(StratifyTest, ConstantsSeparateStrataConstraints) {
  Result<Stratification> s = StratifyText(R"(
      a: mod[henry].sal -> (S, S2) <- henry.sal -> S, S2 = S + 1.
      b: ins[bob].log -> S <- mod(henry).sal -> S.
      c: ins[bob].note -> S <- mod(carl).sal -> S.
  )");
  ASSERT_TRUE(s.ok());
  const auto& l = s->stratum_of_rule;
  EXPECT_LT(l[0], l[1]);   // (d): a writes mod(henry), b reads it
  EXPECT_EQ(l[2], 0u);     // c reads mod(carl): no writer, bottom stratum
}

// Update-facts (empty bodies) stratify too.
TEST_F(StratifyTest, UpdateFactsWork) {
  Result<Stratification> s = StratifyText(R"(
      f: ins[henry].isa -> empl.
      g: ins[ins(henry)].isa -> mgr.
  )");
  ASSERT_TRUE(s.ok());
  EXPECT_LT(s->stratum_of_rule[0], s->stratum_of_rule[1]);  // condition (a)
}

}  // namespace
}  // namespace verso
