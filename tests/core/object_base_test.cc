#include "core/object_base.h"

#include <gtest/gtest.h>

#include "core/symbol_table.h"

namespace verso {
namespace {

class ObjectBaseTest : public ::testing::Test {
 protected:
  ObjectBaseTest() : base_(symbols_.exists_method(), &versions_) {}

  GroundApp App(Oid result, std::vector<Oid> args = {}) {
    GroundApp app;
    app.args = std::move(args);
    app.result = result;
    return app;
  }

  SymbolTable symbols_;
  VersionTable versions_;
  ObjectBase base_;
};

TEST_F(ObjectBaseTest, InsertContainsErase) {
  Vid henry = versions_.OfOid(symbols_.Symbol("henry"));
  MethodId sal = symbols_.Method("sal");
  EXPECT_TRUE(base_.Insert(henry, sal, App(symbols_.Int(250))));
  EXPECT_FALSE(base_.Insert(henry, sal, App(symbols_.Int(250))));  // dup
  EXPECT_TRUE(base_.Contains(henry, sal, App(symbols_.Int(250))));
  EXPECT_EQ(base_.fact_count(), 1u);
  EXPECT_TRUE(base_.Erase(henry, sal, App(symbols_.Int(250))));
  EXPECT_FALSE(base_.Erase(henry, sal, App(symbols_.Int(250))));
  EXPECT_EQ(base_.fact_count(), 0u);
  EXPECT_EQ(base_.StateOf(henry), nullptr);  // empty states vanish
}

TEST_F(ObjectBaseTest, MethodsAreSetValued) {
  // Several results for the same (version, method, args) coexist — the
  // paper's set semantics.
  Vid p = versions_.OfOid(symbols_.Symbol("p1"));
  MethodId anc = symbols_.Method("anc");
  EXPECT_TRUE(base_.Insert(p, anc, App(symbols_.Symbol("p2"))));
  EXPECT_TRUE(base_.Insert(p, anc, App(symbols_.Symbol("p3"))));
  const std::vector<GroundApp>* apps = base_.StateOf(p)->Find(anc);
  ASSERT_NE(apps, nullptr);
  EXPECT_EQ(apps->size(), 2u);
}

TEST_F(ObjectBaseTest, ArgsDistinguishApplications) {
  Vid m = versions_.OfOid(symbols_.Symbol("matrix"));
  MethodId at = symbols_.Method("at");
  Oid one = symbols_.Int(1);
  Oid two = symbols_.Int(2);
  EXPECT_TRUE(base_.Insert(m, at, App(symbols_.Int(10), {one, one})));
  EXPECT_TRUE(base_.Insert(m, at, App(symbols_.Int(20), {one, two})));
  EXPECT_TRUE(base_.Contains(m, at, App(symbols_.Int(10), {one, one})));
  EXPECT_FALSE(base_.Contains(m, at, App(symbols_.Int(10), {one, two})));
}

TEST_F(ObjectBaseTest, MethodIndexTracksVersions) {
  Vid a = versions_.OfOid(symbols_.Symbol("a"));
  Vid b = versions_.OfOid(symbols_.Symbol("b"));
  MethodId isa = symbols_.Method("isa");
  Oid empl = symbols_.Symbol("empl");
  base_.Insert(a, isa, App(empl));
  base_.Insert(b, isa, App(empl));
  const auto* vids = base_.VidsWithMethod(isa);
  ASSERT_NE(vids, nullptr);
  EXPECT_EQ(vids->size(), 2u);
  base_.Erase(a, isa, App(empl));
  vids = base_.VidsWithMethod(isa);
  ASSERT_NE(vids, nullptr);
  EXPECT_EQ(vids->size(), 1u);
  EXPECT_TRUE(vids->count(b));
  base_.Erase(b, isa, App(empl));
  EXPECT_EQ(base_.VidsWithMethod(isa), nullptr);
}

TEST_F(ObjectBaseTest, ReplaceVersionSwapsStateAndIndex) {
  Vid o = versions_.OfOid(symbols_.Symbol("o"));
  MethodId m1 = symbols_.Method("m1");
  MethodId m2 = symbols_.Method("m2");
  base_.Insert(o, m1, App(symbols_.Int(1)));

  VersionState next;
  next.Insert(m2, App(symbols_.Int(2)));
  EXPECT_TRUE(base_.ReplaceVersion(o, next));
  EXPECT_FALSE(base_.Contains(o, m1, App(symbols_.Int(1))));
  EXPECT_TRUE(base_.Contains(o, m2, App(symbols_.Int(2))));
  EXPECT_EQ(base_.VidsWithMethod(m1), nullptr);
  ASSERT_NE(base_.VidsWithMethod(m2), nullptr);

  // Replacing with an equal state reports "no change".
  EXPECT_FALSE(base_.ReplaceVersion(o, next));
  // Replacing with the empty state removes the version.
  EXPECT_TRUE(base_.ReplaceVersion(o, VersionState()));
  EXPECT_EQ(base_.StateOf(o), nullptr);
  EXPECT_EQ(base_.fact_count(), 0u);
}

TEST_F(ObjectBaseTest, ReplaceVersionReportsFactLevelDiff) {
  Vid o = versions_.OfOid(symbols_.Symbol("o"));
  MethodId m1 = symbols_.Method("m1");
  MethodId m2 = symbols_.Method("m2");
  MethodId m3 = symbols_.Method("m3");
  base_.Insert(o, m1, App(symbols_.Int(1)));
  base_.Insert(o, m2, App(symbols_.Int(2)));
  base_.Insert(o, m2, App(symbols_.Int(3)));

  // New state: m1 unchanged, m2 loses 2 and gains 4, m3 appears.
  VersionState next;
  next.Insert(m1, App(symbols_.Int(1)));
  next.Insert(m2, App(symbols_.Int(3)));
  next.Insert(m2, App(symbols_.Int(4)));
  next.Insert(m3, App(symbols_.Int(5)));

  DeltaLog diff;
  EXPECT_TRUE(base_.ReplaceVersion(o, next, &diff));
  ASSERT_EQ(diff.size(), 3u);
  // Merge order: methods ascending, removals/additions per method in
  // application order.
  EXPECT_EQ(diff[0].method, m2);
  EXPECT_FALSE(diff[0].added);
  EXPECT_EQ(diff[0].app, App(symbols_.Int(2)));
  EXPECT_EQ(diff[1].method, m2);
  EXPECT_TRUE(diff[1].added);
  EXPECT_EQ(diff[1].app, App(symbols_.Int(4)));
  EXPECT_EQ(diff[2].method, m3);
  EXPECT_TRUE(diff[2].added);
  for (const DeltaFact& fact : diff) EXPECT_EQ(fact.vid, o);

  // The method index followed the diff.
  EXPECT_NE(base_.VidsWithMethod(m3), nullptr);
  EXPECT_EQ(base_.fact_count(), 4u);

  // Equal state: no change, no diff entries.
  diff.clear();
  EXPECT_FALSE(base_.ReplaceVersion(o, next, &diff));
  EXPECT_TRUE(diff.empty());
}

TEST_F(ObjectBaseTest, ReplaceVersionDiffOnNewAndRemovedVersions) {
  Vid o = versions_.OfOid(symbols_.Symbol("o"));
  MethodId m = symbols_.Method("m");

  VersionState first;
  first.Insert(m, App(symbols_.Int(1)));
  DeltaLog diff;
  EXPECT_TRUE(base_.ReplaceVersion(o, first, &diff));
  ASSERT_EQ(diff.size(), 1u);  // every fact of a new version is an addition
  EXPECT_TRUE(diff[0].added);

  diff.clear();
  EXPECT_TRUE(base_.ReplaceVersion(o, VersionState(), &diff));
  ASSERT_EQ(diff.size(), 1u);  // removal wipes every fact
  EXPECT_FALSE(diff[0].added);
  EXPECT_EQ(base_.StateOf(o), nullptr);
  EXPECT_EQ(base_.VidsWithMethod(m), nullptr);
}

TEST_F(ObjectBaseTest, SealExistenceAddsExistsForPlainObjects) {
  Vid o = versions_.OfOid(symbols_.Symbol("o"));
  MethodId isa = symbols_.Method("isa");
  base_.Insert(o, isa, App(symbols_.Symbol("empl")));
  EXPECT_FALSE(base_.VersionExists(o));
  base_.SealExistence();
  EXPECT_TRUE(base_.VersionExists(o));
  // Idempotent.
  size_t facts = base_.fact_count();
  base_.SealExistence();
  EXPECT_EQ(base_.fact_count(), facts);
}

TEST_F(ObjectBaseTest, LatestExistingStageWalksToDeepestMaterialized) {
  Vid o = versions_.OfOid(symbols_.Symbol("o"));
  Vid mod_o = versions_.Child(o, UpdateKind::kModify);
  Vid del_mod_o = versions_.Child(mod_o, UpdateKind::kDelete);
  Oid root = symbols_.Symbol("o");

  // Nothing materialized: no v*.
  EXPECT_FALSE(base_.LatestExistingStage(del_mod_o).valid());

  base_.Insert(o, symbols_.exists_method(), App(root));
  EXPECT_EQ(base_.LatestExistingStage(del_mod_o), o);
  EXPECT_EQ(base_.LatestExistingStage(o), o);

  base_.Insert(mod_o, symbols_.exists_method(), App(root));
  EXPECT_EQ(base_.LatestExistingStage(del_mod_o), mod_o);
  // v* of the middle stage is itself.
  EXPECT_EQ(base_.LatestExistingStage(mod_o), mod_o);
}

TEST_F(ObjectBaseTest, OnlyExistsDetectsInformationlessVersions) {
  Vid o = versions_.OfOid(symbols_.Symbol("o"));
  base_.Insert(o, symbols_.exists_method(), App(symbols_.Symbol("o")));
  EXPECT_TRUE(base_.StateOf(o)->OnlyExists(symbols_.exists_method()));
  base_.Insert(o, symbols_.Method("isa"), App(symbols_.Symbol("empl")));
  EXPECT_FALSE(base_.StateOf(o)->OnlyExists(symbols_.exists_method()));
}

TEST_F(ObjectBaseTest, EqualityIsStateEquality) {
  ObjectBase other(symbols_.exists_method(), &versions_);
  Vid o = versions_.OfOid(symbols_.Symbol("o"));
  MethodId m = symbols_.Method("m");
  base_.Insert(o, m, App(symbols_.Int(1)));
  EXPECT_FALSE(base_ == other);
  other.Insert(o, m, App(symbols_.Int(1)));
  EXPECT_TRUE(base_ == other);
}

TEST_F(ObjectBaseTest, CopyIsIndependent) {
  Vid o = versions_.OfOid(symbols_.Symbol("o"));
  MethodId m = symbols_.Method("m");
  base_.Insert(o, m, App(symbols_.Int(1)));
  ObjectBase copy = base_;
  copy.Insert(o, m, App(symbols_.Int(2)));
  EXPECT_EQ(base_.fact_count(), 1u);
  EXPECT_EQ(copy.fact_count(), 2u);
}

// ---- Copy-on-write structural sharing --------------------------------

TEST_F(ObjectBaseTest, CopySharesStateAndDetachesOnFirstWrite) {
  Vid a = versions_.OfOid(symbols_.Symbol("a"));
  Vid b = versions_.OfOid(symbols_.Symbol("b"));
  MethodId m = symbols_.Method("m");
  base_.Insert(a, m, App(symbols_.Int(1)));
  base_.Insert(b, m, App(symbols_.Int(2)));

  ObjectBase copy = base_;
  // Copying shares every version's state handle: no fact was copied.
  EXPECT_EQ(copy.SharedStateOf(a), base_.SharedStateOf(a));
  EXPECT_EQ(copy.SharedStateOf(b), base_.SharedStateOf(b));

  // Writing one version through the copy detaches only that version.
  copy.Insert(a, m, App(symbols_.Int(3)));
  EXPECT_NE(copy.SharedStateOf(a), base_.SharedStateOf(a));
  EXPECT_EQ(copy.SharedStateOf(b), base_.SharedStateOf(b));
  EXPECT_FALSE(base_.Contains(a, m, App(symbols_.Int(3))));
  EXPECT_TRUE(copy.Contains(a, m, App(symbols_.Int(3))));
  EXPECT_EQ(base_.fact_count(), 2u);
  EXPECT_EQ(copy.fact_count(), 3u);
}

TEST_F(ObjectBaseTest, NoOpMutationsDoNotDetachSharedState) {
  Vid a = versions_.OfOid(symbols_.Symbol("a"));
  MethodId m = symbols_.Method("m");
  base_.Insert(a, m, App(symbols_.Int(1)));
  ObjectBase copy = base_;
  // A duplicate insert and a miss erase must leave the sharing intact.
  EXPECT_FALSE(copy.Insert(a, m, App(symbols_.Int(1))));
  EXPECT_FALSE(copy.Erase(a, m, App(symbols_.Int(99))));
  EXPECT_EQ(copy.SharedStateOf(a), base_.SharedStateOf(a));
}

TEST_F(ObjectBaseTest, EraseThroughCopyLeavesOriginalIntact) {
  Vid a = versions_.OfOid(symbols_.Symbol("a"));
  MethodId m = symbols_.Method("m");
  base_.Insert(a, m, App(symbols_.Int(1)));
  ObjectBase copy = base_;
  EXPECT_TRUE(copy.Erase(a, m, App(symbols_.Int(1))));
  EXPECT_EQ(copy.StateOf(a), nullptr);
  // The original still holds the fact and still answers its index.
  EXPECT_TRUE(base_.Contains(a, m, App(symbols_.Int(1))));
  ASSERT_NE(base_.VidsWithMethod(m), nullptr);
  EXPECT_EQ(base_.VidsWithMethod(m)->count(a), 1u);
  EXPECT_EQ(copy.VidsWithMethod(m), nullptr);
}

TEST_F(ObjectBaseTest, VersionStateCopySharesPerMethodVectors) {
  VersionState s1;
  MethodId m1 = symbols_.Method("m1");
  MethodId m2 = symbols_.Method("m2");
  s1.Insert(m1, App(symbols_.Int(1)));
  s1.Insert(m2, App(symbols_.Int(2)));

  VersionState s2 = s1;  // T_P step-2 copy: per-method pointer bumps
  ASSERT_NE(s2.FindShared(m1), nullptr);
  EXPECT_TRUE(SharesStorage(*s1.FindShared(m1), *s2.FindShared(m1)));
  EXPECT_TRUE(SharesStorage(*s1.FindShared(m2), *s2.FindShared(m2)));

  // Writing method m1 through the copy detaches m1's vector only.
  s2.Insert(m1, App(symbols_.Int(3)));
  EXPECT_FALSE(SharesStorage(*s1.FindShared(m1), *s2.FindShared(m1)));
  EXPECT_TRUE(SharesStorage(*s1.FindShared(m2), *s2.FindShared(m2)));
  EXPECT_FALSE(s1.Contains(m1, App(symbols_.Int(3))));
  EXPECT_TRUE(s2.Contains(m1, App(symbols_.Int(3))));
  EXPECT_EQ(s1.fact_count(), 2u);
  EXPECT_EQ(s2.fact_count(), 3u);
  EXPECT_FALSE(s1 == s2);
}

TEST_F(ObjectBaseTest, ReplaceVersionDiffsSharedStatesCorrectly) {
  Vid a = versions_.OfOid(symbols_.Symbol("a"));
  MethodId keep = symbols_.Method("keep");
  MethodId touch = symbols_.Method("touch");
  base_.Insert(a, keep, App(symbols_.Int(1)));
  base_.Insert(a, touch, App(symbols_.Int(2)));

  // The step-2 pattern: copy the state, mutate one method, swap it back.
  VersionState next = *base_.StateOf(a);
  next.Erase(touch, App(symbols_.Int(2)));
  next.Insert(touch, App(symbols_.Int(3)));

  DeltaLog diff;
  EXPECT_TRUE(base_.ReplaceVersion(a, std::move(next), &diff));
  // Only the touched method contributes delta facts; the shared `keep`
  // method was skipped by pointer equality.
  ASSERT_EQ(diff.size(), 2u);
  EXPECT_FALSE(diff[0].added);
  EXPECT_EQ(diff[0].method, touch);
  EXPECT_TRUE(diff[1].added);
  EXPECT_EQ(diff[1].method, touch);
  EXPECT_TRUE(base_.Contains(a, keep, App(symbols_.Int(1))));
  EXPECT_TRUE(base_.Contains(a, touch, App(symbols_.Int(3))));
  EXPECT_FALSE(base_.Contains(a, touch, App(symbols_.Int(2))));
}

TEST_F(ObjectBaseTest, AdoptVersionSharesAcrossBases) {
  Vid a = versions_.OfOid(symbols_.Symbol("a"));
  Vid b = versions_.OfOid(symbols_.Symbol("b"));
  MethodId m = symbols_.Method("m");
  base_.Insert(a, m, App(symbols_.Int(1)));
  base_.Insert(a, m, App(symbols_.Int(2)));

  // Rebinding a's state under vid b in another base copies no fact (the
  // BuildNewObjectBase pattern: facts never mention their VID).
  ObjectBase other(symbols_.exists_method(), &versions_);
  DeltaLog diff;
  EXPECT_TRUE(other.AdoptVersion(b, base_.SharedStateOf(a), &diff));
  EXPECT_EQ(diff.size(), 2u);
  EXPECT_EQ(other.fact_count(), 2u);
  EXPECT_TRUE(other.Contains(b, m, App(symbols_.Int(1))));
  ASSERT_NE(other.VidsWithMethod(m), nullptr);
  EXPECT_EQ(other.VidsWithMethod(m)->count(b), 1u);

  // Adopted storage is shared until written; a write detaches.
  other.Insert(b, m, App(symbols_.Int(3)));
  EXPECT_FALSE(base_.Contains(a, m, App(symbols_.Int(3))));
  EXPECT_EQ(base_.fact_count(), 2u);

  // Re-adopting an identical handle is a no-op.
  ObjectBase third(symbols_.exists_method(), &versions_);
  EXPECT_TRUE(third.AdoptVersion(b, base_.SharedStateOf(a)));
  EXPECT_FALSE(third.AdoptVersion(b, base_.SharedStateOf(a)));
}

// ---- Result-keyed index (IndexedApps) --------------------------------

/// Collects ForEachAppWithResult's enumeration into a vector.
std::vector<GroundApp> IndexLookup(const VersionState& state, MethodId method,
                                   Oid result, IndexStats* stats = nullptr) {
  std::vector<GroundApp> out;
  Status s = state.ForEachAppWithResult(method, result, stats,
                                        [&](const GroundApp& app) {
                                          out.push_back(app);
                                          return Status::Ok();
                                        });
  EXPECT_TRUE(s.ok()) << s.ToString();
  return out;
}

TEST_F(ObjectBaseTest, ForEachAppWithResultEnumeratesExactlyMatching) {
  Vid a = versions_.OfOid(symbols_.Symbol("a"));
  MethodId m = symbols_.Method("m");
  Oid one = symbols_.Int(1);
  Oid two = symbols_.Int(2);
  Oid hot = symbols_.Symbol("hot");
  Oid cold = symbols_.Symbol("cold");
  base_.Insert(a, m, App(hot, {one}));
  base_.Insert(a, m, App(cold, {one}));
  base_.Insert(a, m, App(hot, {two}));

  IndexStats stats;
  std::vector<GroundApp> hits =
      IndexLookup(*base_.StateOf(a), m, hot, &stats);
  ASSERT_EQ(hits.size(), 2u);
  // Scan order: sorted by args then result.
  EXPECT_EQ(hits[0], App(hot, {one}));
  EXPECT_EQ(hits[1], App(hot, {two}));
  EXPECT_EQ(stats.index_probes, 1u);
  EXPECT_EQ(stats.index_hits, 1u);
  EXPECT_EQ(stats.indexed_scan_avoided_facts, 1u);  // skipped the cold fact

  // A missing result is a probe without a hit that avoids the full scan.
  EXPECT_TRUE(IndexLookup(*base_.StateOf(a), m, symbols_.Int(99),
                          &stats).empty());
  EXPECT_EQ(stats.index_probes, 2u);
  EXPECT_EQ(stats.index_hits, 1u);
  EXPECT_EQ(stats.indexed_scan_avoided_facts, 4u);

  // The lookup stays correct after mutations invalidate the lazy index.
  base_.Insert(a, m, App(hot, {symbols_.Int(3)}));
  base_.Erase(a, m, App(hot, {one}));
  hits = IndexLookup(*base_.StateOf(a), m, hot);
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0], App(hot, {two}));
  EXPECT_EQ(hits[1], App(hot, {symbols_.Int(3)}));
}

TEST_F(ObjectBaseTest, EqualityAndSharingIgnoreLazyIndexState) {
  Vid a = versions_.OfOid(symbols_.Symbol("a"));
  MethodId m = symbols_.Method("m");
  Oid hot = symbols_.Symbol("hot");
  base_.Insert(a, m, App(hot));
  base_.Insert(a, m, App(symbols_.Symbol("cold")));

  // The step-2 pattern: a COW copy of the state, then a bound-result
  // probe that materializes the lazy index on ONE side only.
  VersionState copy = *base_.StateOf(a);
  EXPECT_FALSE(base_.StateOf(a)->FindShared(m)->node().index_built());
  EXPECT_EQ(IndexLookup(copy, m, hot).size(), 1u);
  EXPECT_TRUE(copy.FindShared(m)->node().index_built());

  // Building the index is not a write: storage is still shared and the
  // states still compare equal.
  EXPECT_TRUE(SharesStorage(*base_.StateOf(a)->FindShared(m),
                            *copy.FindShared(m)));
  EXPECT_TRUE(*base_.StateOf(a) == copy);

  // A state rebuilt from scratch (distinct storage, no index) also
  // compares equal to the probed one: equality ignores index state.
  VersionState rebuilt;
  rebuilt.Insert(m, App(symbols_.Symbol("cold")));
  rebuilt.Insert(m, App(hot));
  EXPECT_FALSE(rebuilt.FindShared(m)->node().index_built());
  EXPECT_TRUE(rebuilt == copy);

  // ReplaceVersion's shared-storage skip keeps holding after the lazy
  // build: swapping the probed copy back in reports "no change".
  EXPECT_FALSE(base_.ReplaceVersion(a, copy));
}

TEST_F(ObjectBaseTest, IndexDetachesWithWriterNotWithReader) {
  Vid a = versions_.OfOid(symbols_.Symbol("a"));
  MethodId m = symbols_.Method("m");
  Oid hot = symbols_.Symbol("hot");
  base_.Insert(a, m, App(hot, {symbols_.Int(1)}));
  base_.Insert(a, m, App(hot, {symbols_.Int(2)}));

  ObjectBase copy = base_;
  // Reader probes through the copy: index built on the shared node.
  EXPECT_EQ(IndexLookup(*copy.StateOf(a), m, hot).size(), 2u);
  EXPECT_EQ(copy.SharedStateOf(a), base_.SharedStateOf(a));

  // Writer mutates the original: it detaches; the copy keeps answering
  // from the (still valid) shared node it retained.
  base_.Insert(a, m, App(hot, {symbols_.Int(3)}));
  EXPECT_NE(copy.SharedStateOf(a), base_.SharedStateOf(a));
  EXPECT_EQ(IndexLookup(*copy.StateOf(a), m, hot).size(), 2u);
  EXPECT_EQ(IndexLookup(*base_.StateOf(a), m, hot).size(), 3u);
}

TEST_F(ObjectBaseTest, EqualityUsesContentNotStorageIdentity) {
  Vid a = versions_.OfOid(symbols_.Symbol("a"));
  MethodId m = symbols_.Method("m");
  base_.Insert(a, m, App(symbols_.Int(1)));

  ObjectBase shared = base_;           // shares storage
  ObjectBase rebuilt(symbols_.exists_method(), &versions_);
  rebuilt.Insert(a, m, App(symbols_.Int(1)));  // equal, distinct storage
  EXPECT_TRUE(base_ == shared);
  EXPECT_TRUE(base_ == rebuilt);

  rebuilt.Insert(a, m, App(symbols_.Int(2)));
  EXPECT_FALSE(base_ == rebuilt);
}

}  // namespace
}  // namespace verso
