// Stratum-by-stratum fixpoint evaluation (Section 4), the run-time
// version-linearity check, and the construction of the new object base
// (Section 5).

#include <gtest/gtest.h>

#include "core/commit.h"
#include "core/engine.h"
#include "core/pretty.h"
#include "parser/parser.h"

namespace verso {
namespace {

class EvaluatorTest : public ::testing::Test {
 protected:
  Result<RunOutcome> Run(const char* base_text, const char* program_text,
                         EvalOptions options = EvalOptions()) {
    Result<ObjectBase> base = ParseObjectBase(base_text, engine_);
    EXPECT_TRUE(base.ok()) << base.status().ToString();
    Result<Program> program = ParseProgram(program_text, engine_);
    EXPECT_TRUE(program.ok()) << program.status().ToString();
    program_ = std::move(program).value();
    return engine_.Run(program_, *base, options);
  }

  Engine engine_;
  Program program_;
};

TEST_F(EvaluatorTest, FixpointInTwoRoundsForNonRecursive) {
  Result<RunOutcome> r = Run("a.sal -> 1.  b.sal -> 2.",
                             "f: mod[E].sal -> (S, S2) <- E.sal -> S, "
                             "S2 = S * 2.");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->stats.strata.size(), 1u);
  EXPECT_EQ(r->stats.strata[0].rounds, 2u);  // change + confirm
  EXPECT_EQ(r->stats.versions_materialized, 2u);
}

TEST_F(EvaluatorTest, RecursiveStratumIteratesToClosure) {
  // Chain of 6: transitive closure needs several rounds.
  Result<RunOutcome> r = Run(
      "n1.next -> n2. n2.next -> n3. n3.next -> n4. n4.next -> n5. "
      "n5.next -> n6.",
      "r1: ins[X].reach -> Y <- X.next -> Y."
      "r2: ins[X].reach -> Z <- ins(X).reach -> Y, Y.next -> Z.");
  ASSERT_TRUE(r.ok());
  EXPECT_GE(r->stats.strata[0].rounds, 5u);
  Oid n1 = engine_.symbols().Symbol("n1");
  Vid v = engine_.versions().OfOid(n1);
  GroundApp app;
  app.result = engine_.symbols().Symbol("n6");
  EXPECT_TRUE(r->new_base.Contains(v, engine_.symbols().Method("reach"), app));
}

TEST_F(EvaluatorTest, LinearityViolationIsDetected) {
  // Both a modify and a delete of the same object fire: mod(o) and
  // del(o) are incomparable versions (the paper's Section 5 example).
  Result<RunOutcome> r = Run("o.m -> a.",
                             "r1: mod[o].m -> (a, b) <- o.m -> a."
                             "r2: del[o].m -> a <- o.m -> a.");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotVersionLinear);
  // The diagnostic names the object and both versions.
  EXPECT_NE(r.status().message().find("mod(o)"), std::string::npos);
  EXPECT_NE(r.status().message().find("del(o)"), std::string::npos);
}

TEST_F(EvaluatorTest, LinearityCheckCanBeDisabled) {
  EvalOptions options;
  options.check_version_linearity = false;
  Result<RunOutcome> r = Run("o.m -> a.",
                             "r1: mod[o].m -> (a, b) <- o.m -> a."
                             "r2: del[o].m -> a <- o.m -> a.",
                             options);
  // The evaluator no longer objects; the commit-time re-check still does.
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotVersionLinear);
}

TEST_F(EvaluatorTest, EmptyProgramIsIdentityPlusExists) {
  Program empty;
  Result<ObjectBase> base = ParseObjectBase("a.m -> 1.", engine_);
  ASSERT_TRUE(base.ok());
  Result<RunOutcome> r = engine_.Run(empty, *base);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(ObjectBaseToString(r->new_base, engine_.symbols(),
                               engine_.versions()),
            "a.exists -> a.\na.m -> 1.\n");
}

TEST_F(EvaluatorTest, UntouchedObjectsSurviveUnchanged) {
  Result<RunOutcome> r = Run(
      "a.isa -> empl.  a.sal -> 10.  rock.isa -> stone.  rock.mass -> 99.",
      "f: mod[E].sal -> (S, S2) <- E.isa -> empl, E.sal -> S, S2 = S + 1.");
  ASSERT_TRUE(r.ok());
  Vid rock = engine_.versions().OfOid(engine_.symbols().Symbol("rock"));
  GroundApp mass;
  mass.result = engine_.symbols().Int(99);
  EXPECT_TRUE(r->new_base.Contains(rock, engine_.symbols().Method("mass"),
                                   mass));
  // Only a was versioned.
  EXPECT_EQ(r->stats.versions_materialized, 1u);
}

// ---- Commit (Section 5) -------------------------------------------------

class CommitTest : public ::testing::Test {
 protected:
  CommitTest() : base_(symbols_.exists_method(), &versions_) {}

  void Facts(const char* text) {
    ASSERT_TRUE(
        ParseObjectBaseInto(text, symbols_, versions_, base_).ok());
  }

  SymbolTable symbols_;
  VersionTable versions_;
  ObjectBase base_;
};

TEST_F(CommitTest, FinalVersionWins) {
  Facts(R"(
      o.exists -> o.          o.sal -> 1.
      mod(o).exists -> o.     mod(o).sal -> 2.
      ins(mod(o)).exists -> o.  ins(mod(o)).sal -> 2.  ins(mod(o)).tag -> t.
  )");
  Result<ObjectBase> fresh = BuildNewObjectBase(base_, symbols_, versions_);
  ASSERT_TRUE(fresh.ok()) << fresh.status().ToString();
  EXPECT_EQ(ObjectBaseToString(*fresh, symbols_, versions_),
            "o.exists -> o.\no.sal -> 2.\no.tag -> t.\n");
}

TEST_F(CommitTest, ExistsOnlyFinalVersionVanishes) {
  Facts(R"(
      o.exists -> o.  o.sal -> 1.
      del(o).exists -> o.
  )");
  Result<ObjectBase> fresh = BuildNewObjectBase(base_, symbols_, versions_);
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(fresh->fact_count(), 0u);
}

TEST_F(CommitTest, IncomparableVersionsAreRejected) {
  Facts(R"(
      o.exists -> o.  o.sal -> 1.
      mod(o).exists -> o.  mod(o).sal -> 2.
      del(o).exists -> o.
  )");
  Result<ObjectBase> fresh = BuildNewObjectBase(base_, symbols_, versions_);
  ASSERT_FALSE(fresh.ok());
  EXPECT_EQ(fresh.status().code(), StatusCode::kNotVersionLinear);
}

TEST_F(CommitTest, IndependentObjectsCommitIndependently) {
  Facts(R"(
      a.exists -> a.  a.m -> 1.  mod(a).exists -> a.  mod(a).m -> 2.
      b.exists -> b.  b.m -> 3.
  )");
  Result<ObjectBase> fresh = BuildNewObjectBase(base_, symbols_, versions_);
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(ObjectBaseToString(*fresh, symbols_, versions_),
            "a.exists -> a.\na.m -> 2.\nb.exists -> b.\nb.m -> 3.\n");
}

}  // namespace
}  // namespace verso
