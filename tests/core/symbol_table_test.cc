#include "core/symbol_table.h"

#include <gtest/gtest.h>

namespace verso {
namespace {

TEST(SymbolTableTest, SymbolsInternToStableOids) {
  SymbolTable table;
  Oid henry = table.Symbol("henry");
  Oid bob = table.Symbol("bob");
  EXPECT_NE(henry, bob);
  EXPECT_EQ(table.Symbol("henry"), henry);
  EXPECT_EQ(table.kind(henry), OidKind::kSymbol);
  EXPECT_EQ(table.SymbolName(henry), "henry");
}

TEST(SymbolTableTest, NumbersAreCanonical) {
  SymbolTable table;
  // 1/2 and 2/4 normalize to the same OID — OID identity is numeric
  // equality, which is what makes `=` on numbers work.
  Oid half = table.Number(*Numeric::FromRatio(1, 2));
  EXPECT_EQ(table.Number(*Numeric::FromRatio(2, 4)), half);
  EXPECT_TRUE(table.IsNumber(half));
  EXPECT_EQ(table.NumberValue(half), *Numeric::FromRatio(1, 2));
  EXPECT_EQ(table.Int(250), table.Number(Numeric::FromInt(250)));
}

TEST(SymbolTableTest, StringsAreDistinctFromSymbols) {
  SymbolTable table;
  Oid sym = table.Symbol("abc");
  Oid str = table.String("abc");
  EXPECT_NE(sym, str);
  EXPECT_EQ(table.kind(str), OidKind::kString);
  EXPECT_EQ(table.StringValue(str), "abc");
}

TEST(SymbolTableTest, FindDoesNotIntern) {
  SymbolTable table;
  EXPECT_FALSE(table.FindSymbol("ghost").valid());
  size_t before = table.oid_count();
  table.FindSymbol("ghost");
  EXPECT_EQ(table.oid_count(), before);
  Oid real = table.Symbol("real");
  EXPECT_EQ(table.FindSymbol("real"), real);
}

TEST(SymbolTableTest, ExistsMethodIsPreInterned) {
  SymbolTable table;
  EXPECT_TRUE(table.exists_method().valid());
  EXPECT_EQ(table.MethodName(table.exists_method()), "exists");
  EXPECT_EQ(table.FindMethod("exists"), table.exists_method());
}

TEST(SymbolTableTest, MethodsInternSeparatelyFromOids) {
  SymbolTable table;
  MethodId sal = table.Method("sal");
  EXPECT_EQ(table.Method("sal"), sal);
  EXPECT_EQ(table.MethodName(sal), "sal");
  EXPECT_FALSE(table.FindMethod("nope").valid());
}

TEST(SymbolTableTest, OidToStringSurfaceSyntax) {
  SymbolTable table;
  EXPECT_EQ(table.OidToString(table.Symbol("empl")), "empl");
  EXPECT_EQ(table.OidToString(table.Int(4600)), "4600");
  EXPECT_EQ(table.OidToString(table.Number(*Numeric::Parse("1.1"))), "1.1");
  EXPECT_EQ(table.OidToString(table.String("hi")), "\"hi\"");
}

TEST(SymbolTableTest, CompareNumbersNumerically) {
  SymbolTable table;
  EXPECT_LT(table.Compare(table.Int(2), table.Int(10)), 0);
  EXPECT_EQ(table.Compare(table.Int(5), table.Int(5)), 0);
  EXPECT_GT(table.Compare(table.Number(*Numeric::Parse("1.5")),
                          table.Number(*Numeric::Parse("1.25"))),
            0);
}

TEST(SymbolTableTest, CompareSymbolsLexicographically) {
  SymbolTable table;
  EXPECT_LT(table.Compare(table.Symbol("anna"), table.Symbol("bob")), 0);
  EXPECT_GT(table.Compare(table.String("z"), table.String("a")), 0);
}

TEST(SymbolTableTest, CrossKindComparisonIsIncomparable) {
  SymbolTable table;
  EXPECT_EQ(table.Compare(table.Int(1), table.Symbol("one")),
            SymbolTable::kIncomparable);
  EXPECT_EQ(table.Compare(table.Symbol("a"), table.String("a")),
            SymbolTable::kIncomparable);
}

}  // namespace
}  // namespace verso
