// Rule safety analysis (Section 2.1 requires safe rules) and arithmetic
// expression evaluation.

#include <gtest/gtest.h>

#include "core/expr.h"
#include "core/rule.h"
#include "parser/parser.h"

namespace verso {
namespace {

class RuleSafetyTest : public ::testing::Test {
 protected:
  /// Parses a single rule and runs the analysis (ParseProgram does not).
  Status Analyze(const char* text) {
    Result<Program> program = ParseProgram(text, symbols_);
    EXPECT_TRUE(program.ok()) << program.status().ToString();
    program_ = std::move(program).value();
    Status status;
    for (Rule& rule : program_.rules) {
      status = AnalyzeRule(rule, symbols_);
      if (!status.ok()) return status;
    }
    return status;
  }

  SymbolTable symbols_;
  Program program_;
};

TEST_F(RuleSafetyTest, SafeRulePlansFullOrder) {
  ASSERT_TRUE(Analyze("r: mod[E].sal -> (S, S2) <- E.isa -> empl, "
                      "E.sal -> S, S2 = S * 1.1.").ok());
  EXPECT_EQ(program_.rules[0].execution_order.size(), 3u);
}

TEST_F(RuleSafetyTest, HeadVariableMustBeBound) {
  Status s = Analyze("r: ins[E].isa -> hpe <- x.q -> y.");
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kUnsafeRule);
}

TEST_F(RuleSafetyTest, NegatedLiteralNeedsGroundVariables) {
  Status s = Analyze("r: ins[x].m -> 1 <- not E.isa -> empl.");
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kUnsafeRule);
}

TEST_F(RuleSafetyTest, ComparisonNeedsBoundVariables) {
  Status s = Analyze("r: ins[x].m -> 1 <- S > 4500.");
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kUnsafeRule);
}

TEST_F(RuleSafetyTest, EqBindsEitherSide) {
  EXPECT_TRUE(Analyze("r: ins[x].m -> S2 <- x.p -> S, S2 = S + 1.").ok());
  EXPECT_TRUE(Analyze("r: ins[x].m -> S2 <- x.p -> S, S + 1 = S2.").ok());
}

TEST_F(RuleSafetyTest, ChainedEqBindings) {
  // S2 depends on S, S3 on S2: the planner must order them.
  EXPECT_TRUE(Analyze("r: ins[x].m -> S3 <- S3 = S2 * 2, x.p -> S, "
                      "S2 = S + 1.").ok());
}

TEST_F(RuleSafetyTest, CircularEqIsUnsafe) {
  Status s = Analyze("r: ins[x].m -> A <- A = B + 1, B = A + 1.");
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kUnsafeRule);
}

TEST_F(RuleSafetyTest, ExistsInHeadIsRejected) {
  Status s = Analyze("r: ins[x].exists -> x <- x.p -> y.");
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST_F(RuleSafetyTest, DeleteAllHeadIsFine) {
  EXPECT_TRUE(Analyze("r: del[mod(E)].* <- mod(E).isa -> empl.").ok());
}

TEST_F(RuleSafetyTest, UpdateFactIsSafe) {
  EXPECT_TRUE(Analyze("f: ins[henry].isa -> empl.").ok());
}

TEST_F(RuleSafetyTest, UpdateTermsInBodyBindVariables) {
  EXPECT_TRUE(Analyze("r: ins[x].log -> R <- del[mod(E)].sal -> R.").ok());
  EXPECT_TRUE(
      Analyze("r: ins[x].log -> R2 <- mod[E].sal -> (R, R2).").ok());
}

TEST_F(RuleSafetyTest, PlannerPrefersBoundVersions) {
  // The planner should order `E.sal -> S` before the comparison and put
  // literals with bound version bases early. We only assert it succeeds
  // and yields a complete permutation.
  ASSERT_TRUE(Analyze(R"(
      r: del[mod(E)].* <-
          mod(E).isa -> empl / boss -> B / sal -> SE,
          mod(B).isa -> empl / sal -> SB,
          SE > SB.
  )").ok());
  const Rule& rule = program_.rules[0];
  std::vector<bool> seen(rule.body.size(), false);
  for (uint32_t i : rule.execution_order) {
    EXPECT_LT(i, rule.body.size());
    EXPECT_FALSE(seen[i]);
    seen[i] = true;
  }
}

// ---- Expressions -------------------------------------------------------

class ExprTest : public ::testing::Test {
 protected:
  Oid Eval(ExprId id) {
    Result<Oid> r = EvalExpr(pool_, id, bindings_, symbols_);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return *r;
  }

  SymbolTable symbols_;
  ExprPool pool_;
  Bindings bindings_;
};

TEST_F(ExprTest, ConstantsEvaluateToThemselves) {
  Oid henry = symbols_.Symbol("henry");
  EXPECT_EQ(Eval(pool_.Const(henry)), henry);
}

TEST_F(ExprTest, VariablesReadBindings) {
  bindings_.push_back(symbols_.Int(5));
  EXPECT_EQ(Eval(pool_.Var(VarId(0))), symbols_.Int(5));
}

TEST_F(ExprTest, ArithmeticIsExact) {
  // 4000 * 1.1 + 200 == 4600 exactly.
  ExprId e = pool_.Binary(
      Expr::Kind::kAdd,
      pool_.Binary(Expr::Kind::kMul, pool_.Const(symbols_.Int(4000)),
                   pool_.Const(symbols_.Number(*Numeric::Parse("1.1")))),
      pool_.Const(symbols_.Int(200)));
  EXPECT_EQ(Eval(e), symbols_.Int(4600));
}

TEST_F(ExprTest, NegationAndDivision) {
  ExprId e = pool_.Neg(pool_.Binary(Expr::Kind::kDiv,
                                    pool_.Const(symbols_.Int(1)),
                                    pool_.Const(symbols_.Int(2))));
  EXPECT_EQ(Eval(e), symbols_.Number(*Numeric::FromRatio(-1, 2)));
}

TEST_F(ExprTest, ArithmeticOnSymbolsIsAnError) {
  ExprId e = pool_.Binary(Expr::Kind::kAdd,
                          pool_.Const(symbols_.Symbol("empl")),
                          pool_.Const(symbols_.Int(1)));
  Result<Oid> r = EvalExpr(pool_, e, bindings_, symbols_);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(ExprTest, DivisionByZeroIsAnError) {
  ExprId e = pool_.Binary(Expr::Kind::kDiv, pool_.Const(symbols_.Int(1)),
                          pool_.Const(symbols_.Int(0)));
  EXPECT_FALSE(EvalExpr(pool_, e, bindings_, symbols_).ok());
}

TEST_F(ExprTest, CollectVarsAndIsVarRef) {
  ExprId v0 = pool_.Var(VarId(0));
  ExprId e = pool_.Binary(Expr::Kind::kMul, v0, pool_.Var(VarId(2)));
  std::vector<VarId> vars;
  pool_.CollectVars(e, &vars);
  ASSERT_EQ(vars.size(), 2u);
  VarId out;
  EXPECT_TRUE(pool_.IsVarRef(v0, &out));
  EXPECT_EQ(out, VarId(0));
  EXPECT_FALSE(pool_.IsVarRef(e, &out));
}

TEST_F(ExprTest, CmpSemantics) {
  Oid two = symbols_.Int(2);
  Oid ten = symbols_.Int(10);
  Oid empl = symbols_.Symbol("empl");
  EXPECT_TRUE(EvalCmp(CmpOp::kLt, two, ten, symbols_));
  EXPECT_FALSE(EvalCmp(CmpOp::kGe, two, ten, symbols_));
  EXPECT_TRUE(EvalCmp(CmpOp::kEq, two, two, symbols_));
  EXPECT_TRUE(EvalCmp(CmpOp::kNe, two, empl, symbols_));
  // Ordering across kinds is false in both directions.
  EXPECT_FALSE(EvalCmp(CmpOp::kLt, two, empl, symbols_));
  EXPECT_FALSE(EvalCmp(CmpOp::kGt, two, empl, symbols_));
}

}  // namespace
}  // namespace verso
