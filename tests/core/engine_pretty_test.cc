// Engine facade behaviours and the pretty printer's ground-side output
// (facts, ground updates, version terms with constants).

#include <gtest/gtest.h>

#include "core/engine.h"
#include "core/pretty.h"
#include "parser/parser.h"

namespace verso {
namespace {

class EngineTest : public ::testing::Test {
 protected:
  Engine engine_;
};

TEST_F(EngineTest, AddFactOverloads) {
  ObjectBase base = engine_.MakeBase();
  engine_.AddFact(base, "henry", "isa", "empl");
  engine_.AddFact(base, "henry", "sal", int64_t{250});
  engine_.AddFact(base, "m", "at",
                  {engine_.symbols().Int(1), engine_.symbols().Int(2)},
                  engine_.symbols().Int(20));
  EXPECT_EQ(base.fact_count(), 3u);
  EXPECT_EQ(ObjectBaseToString(base, engine_.symbols(), engine_.versions()),
            "henry.isa -> empl.\n"
            "henry.sal -> 250.\n"
            "m.at@1,2 -> 20.\n");
}

TEST_F(EngineTest, RunDoesNotMutateInput) {
  ObjectBase base = engine_.MakeBase();
  engine_.AddFact(base, "a", "sal", int64_t{1});
  ObjectBase snapshot = base;
  Result<Program> program = ParseProgram(
      "r: mod[E].sal -> (S, S2) <- E.sal -> S, S2 = S + 1.", engine_);
  ASSERT_TRUE(program.ok());
  Result<RunOutcome> outcome = engine_.Run(*program, base);
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(base == snapshot);  // not even exists-sealed
}

TEST_F(EngineTest, SequentialRunsComposeThroughNewBase) {
  ObjectBase base = engine_.MakeBase();
  engine_.AddFact(base, "a", "sal", int64_t{100});
  Result<Program> program = ParseProgram(
      "r: mod[E].sal -> (S, S2) <- E.sal -> S, S2 = S * 2.", engine_);
  ASSERT_TRUE(program.ok());
  Result<RunOutcome> first = engine_.Run(*program, base);
  ASSERT_TRUE(first.ok());
  Result<RunOutcome> second = engine_.Run(*program, first->new_base);
  ASSERT_TRUE(second.ok());
  Vid a = engine_.versions().OfOid(engine_.symbols().Symbol("a"));
  GroundApp sal;
  sal.result = engine_.symbols().Int(400);
  EXPECT_TRUE(second->new_base.Contains(a, engine_.symbols().Method("sal"),
                                        sal));
}

TEST_F(EngineTest, ObjectCreationByInsertOnFreshOid) {
  ObjectBase base = engine_.MakeBase();
  engine_.AddFact(base, "a", "isa", "empl");
  Result<Program> program = ParseProgram(
      "f: ins[newguy].isa -> empl.", engine_);
  ASSERT_TRUE(program.ok());
  Result<RunOutcome> outcome = engine_.Run(*program, base);
  ASSERT_TRUE(outcome.ok());
  Vid fresh = engine_.versions().OfOid(engine_.symbols().Symbol("newguy"));
  const VersionState* state = outcome->new_base.StateOf(fresh);
  ASSERT_NE(state, nullptr);
  GroundApp isa;
  isa.result = engine_.symbols().Symbol("empl");
  EXPECT_TRUE(state->Contains(engine_.symbols().Method("isa"), isa));
  EXPECT_TRUE(outcome->new_base.VersionExists(fresh));
}

TEST_F(EngineTest, UnsafeProgramIsRejectedBeforeEvaluation) {
  ObjectBase base = engine_.MakeBase();
  Result<Program> program = ParseProgram(
      "r: ins[E].m -> 1 <- not E.q -> 2.", engine_);
  ASSERT_TRUE(program.ok());
  Result<RunOutcome> outcome = engine_.Run(*program, base);
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kUnsafeRule);
}

TEST_F(EngineTest, DeleteWholeObjectBase) {
  ObjectBase base = engine_.MakeBase();
  engine_.AddFact(base, "a", "m", int64_t{1});
  engine_.AddFact(base, "b", "m", int64_t{2});
  Result<Program> program = ParseProgram(
      "r: del[E].* <- E.m -> V.", engine_);
  ASSERT_TRUE(program.ok());
  Result<RunOutcome> outcome = engine_.Run(*program, base);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->new_base.fact_count(), 0u);
}

// ---- pretty (ground side) ----------------------------------------------

class PrettyTest : public ::testing::Test {
 protected:
  PrettyTest() {
    o_ = versions_.OfOid(symbols_.Symbol("o"));
    mod_o_ = versions_.Child(o_, UpdateKind::kModify);
  }

  SymbolTable symbols_;
  VersionTable versions_;
  Vid o_;
  Vid mod_o_;
};

TEST_F(PrettyTest, FactToStringForms) {
  GroundApp plain;
  plain.result = symbols_.Int(250);
  EXPECT_EQ(FactToString(o_, symbols_.Method("sal"), plain, symbols_,
                         versions_),
            "o.sal -> 250.");
  GroundApp with_args;
  with_args.args = {symbols_.Int(1), symbols_.Symbol("x")};
  with_args.result = symbols_.String("v");
  EXPECT_EQ(FactToString(mod_o_, symbols_.Method("at"), with_args, symbols_,
                         versions_),
            "mod(o).at@1,x -> \"v\".");
}

TEST_F(PrettyTest, GroundUpdateToStringForms) {
  GroundUpdate ins;
  ins.kind = UpdateKind::kInsert;
  ins.version = o_;
  ins.method = symbols_.Method("isa");
  ins.app.result = symbols_.Symbol("hpe");
  EXPECT_EQ(GroundUpdateToString(ins, symbols_, versions_),
            "ins[o].isa -> hpe");

  GroundUpdate mod;
  mod.kind = UpdateKind::kModify;
  mod.version = mod_o_;
  mod.method = symbols_.Method("sal");
  mod.app.result = symbols_.Int(4000);
  mod.new_result = symbols_.Int(4600);
  EXPECT_EQ(GroundUpdateToString(mod, symbols_, versions_),
            "mod[mod(o)].sal -> (4000, 4600)");
}

TEST_F(PrettyTest, ObjectBaseToStringIsSortedAndStable) {
  ObjectBase base(symbols_.exists_method(), &versions_);
  GroundApp b;
  b.result = symbols_.Int(2);
  GroundApp a;
  a.result = symbols_.Int(1);
  base.Insert(mod_o_, symbols_.Method("z"), b);
  base.Insert(o_, symbols_.Method("a"), a);
  EXPECT_EQ(ObjectBaseToString(base, symbols_, versions_),
            "mod(o).z -> 2.\no.a -> 1.\n");
}

}  // namespace
}  // namespace verso
