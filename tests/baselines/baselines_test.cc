// Baseline (non-versioned) update semantics from Section 2.4's
// discussion: the naive in-place semantics loops on the paper's first
// rule, and Logres-style modules need manual ordering to reproduce what
// verso derives from VID structure.

#include "baselines/baselines.h"

#include <gtest/gtest.h>

#include "core/engine.h"
#include "core/pretty.h"
#include "parser/parser.h"

namespace verso {
namespace {

class BaselinesTest : public ::testing::Test {
 protected:
  ObjectBase Base(const char* text) {
    Result<ObjectBase> base = ParseObjectBase(text, engine_);
    EXPECT_TRUE(base.ok()) << base.status().ToString();
    return std::move(base).value();
  }
  Program Prog(const char* text) {
    Result<Program> p = ParseProgram(text, engine_);
    EXPECT_TRUE(p.ok()) << p.status().ToString();
    return std::move(p).value();
  }

  Engine engine_;
};

// The paper's motivating observation: without versions, the salary raise
// re-applies every round — each round sees the already-raised salary.
TEST_F(BaselinesTest, NaiveSalaryRaiseDiverges) {
  ObjectBase base = Base("henry.isa -> empl.  henry.salary -> 100.");
  Program p = Prog(
      "raise: mod[E].salary -> (S, S2) <- E.isa -> empl, E.salary -> S, "
      "S2 = S * 2.");
  InPlaceOptions options;
  options.max_rounds = 16;
  Result<InPlaceOutcome> out = RunNaiveUpdate(
      p, base, engine_.symbols(), engine_.versions(), options);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_TRUE(out->diverged);
  EXPECT_EQ(out->rounds, 16u);
  // The salary kept doubling: 100 * 2^15 after 15 effective rounds.
  Vid henry = engine_.versions().OfOid(engine_.symbols().Symbol("henry"));
  const auto* apps =
      out->base.StateOf(henry)->Find(engine_.symbols().Method("salary"));
  ASSERT_NE(apps, nullptr);
  ASSERT_EQ(apps->size(), 1u);
  EXPECT_GT(Numeric::Compare(
                engine_.symbols().NumberValue(apps->front().result),
                Numeric::FromInt(100000)),
            0);
}

// A monotone insert program converges in place just fine.
TEST_F(BaselinesTest, NaiveMonotoneInsertsConverge) {
  ObjectBase base =
      Base("a.edge -> b.  b.edge -> c.  a.isa -> node.  b.isa -> node. "
           "c.isa -> node.");
  Program p = Prog(
      "r1: ins[X].reach -> Y <- X.edge -> Y."
      "r2: ins[X].reach -> Z <- X.reach -> Y, Y.edge -> Z.");
  Result<InPlaceOutcome> out =
      RunNaiveUpdate(p, base, engine_.symbols(), engine_.versions());
  ASSERT_TRUE(out.ok());
  EXPECT_FALSE(out->diverged);
  Vid a = engine_.versions().OfOid(engine_.symbols().Symbol("a"));
  GroundApp app;
  app.result = engine_.symbols().Symbol("c");
  EXPECT_TRUE(out->base.Contains(a, engine_.symbols().Method("reach"), app));
}

// Logres-style: with the enterprise update split into hand-ordered
// modules, the baseline reproduces verso's committed result.
TEST_F(BaselinesTest, ModularReproducesEnterpriseOutcome) {
  const char* base_text = R"(
      phil.isa -> empl.  phil.pos -> mgr.   phil.sal -> 4000.
      bob.isa -> empl.   bob.boss -> phil.  bob.sal -> 4200.
  )";
  std::vector<Program> modules;
  modules.push_back(Prog(R"(
      m1a: mod[E].sal -> (S, S2) <- E.isa -> empl / pos -> mgr / sal -> S,
                                    S2 = S * 1.1 + 200.
      m1b: mod[E].sal -> (S, S2) <- E.isa -> empl / sal -> S,
                                    not E.pos -> mgr, S2 = S * 1.1.
  )"));
  modules.push_back(Prog(R"(
      m2: del[E].* <- E.isa -> empl / boss -> B / sal -> SE,
                      B.isa -> empl / sal -> SB, SE > SB.
  )"));
  modules.push_back(Prog(R"(
      m3: ins[E].isa -> hpe <- E.isa -> empl / sal -> S, S > 4500.
  )"));
  InPlaceOptions options;
  options.max_rounds = 8;
  Result<InPlaceOutcome> out = RunModularUpdate(
      modules, Base(base_text), engine_.symbols(), engine_.versions(),
      options);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  // Module 1 would loop (same raise rule); Logres avoids that only with
  // inflationary semantics per module — here it hits the round cap.
  // That *is* the comparison point: the versioned program needed no cap.
  EXPECT_TRUE(out->diverged);
}

// With delta-guards added by hand (the "manual control" of Section 2.4),
// the modular baseline terminates and matches verso's ob'.
TEST_F(BaselinesTest, ModularWithGuardsMatchesVerso) {
  const char* base_text = R"(
      phil.isa -> empl.  phil.pos -> mgr.   phil.sal -> 4000.
      bob.isa -> empl.   bob.boss -> phil.  bob.sal -> 4200.
  )";
  // Manual guard: tag raised employees so the raise fires once.
  std::vector<Program> modules;
  modules.push_back(Prog(R"(
      m1a: mod[E].sal -> (S, S2) <- E.isa -> empl / pos -> mgr / sal -> S,
                                    not E.raised -> yes, S2 = S * 1.1 + 200.
      m1b: mod[E].sal -> (S, S2) <- E.isa -> empl / sal -> S,
                                    not E.pos -> mgr, not E.raised -> yes,
                                    S2 = S * 1.1.
      m1c: ins[E].raised -> yes <- E.isa -> empl.
  )"));
  modules.push_back(Prog(R"(
      m2: del[E].* <- E.isa -> empl / boss -> B / sal -> SE,
                      B.isa -> empl / sal -> SB, SE > SB.
  )"));
  modules.push_back(Prog(R"(
      m3: ins[E].isa -> hpe <- E.isa -> empl / sal -> S, S > 4500.
  )"));
  Result<InPlaceOutcome> out = RunModularUpdate(
      modules, Base(base_text), engine_.symbols(), engine_.versions());
  ASSERT_TRUE(out.ok());
  ASSERT_FALSE(out->diverged);

  Vid phil = engine_.versions().OfOid(engine_.symbols().Symbol("phil"));
  Vid bob = engine_.versions().OfOid(engine_.symbols().Symbol("bob"));
  GroundApp sal4600;
  sal4600.result = engine_.symbols().Int(4600);
  EXPECT_TRUE(out->base.Contains(phil, engine_.symbols().Method("sal"),
                                 sal4600));
  GroundApp hpe;
  hpe.result = engine_.symbols().Symbol("hpe");
  EXPECT_TRUE(out->base.Contains(phil, engine_.symbols().Method("isa"), hpe));
  // bob's facts were deleted in place (exists remains as a husk).
  const VersionState* bob_state = out->base.StateOf(bob);
  ASSERT_NE(bob_state, nullptr);
  EXPECT_TRUE(bob_state->OnlyExists(engine_.symbols().exists_method()));
}

TEST_F(BaselinesTest, ValidationRejectsVersionedConstructs) {
  ObjectBase base = Base("a.m -> 1.");
  Program versioned_head = Prog("r: ins[mod(E)].m -> 1 <- E.m -> 1.");
  EXPECT_FALSE(
      RunNaiveUpdate(versioned_head, base, engine_.symbols(),
                     engine_.versions())
          .ok());
  Program versioned_body = Prog("r: ins[E].m -> 2 <- mod(E).m -> 1.");
  EXPECT_FALSE(
      RunNaiveUpdate(versioned_body, base, engine_.symbols(),
                     engine_.versions())
          .ok());
  Program update_body = Prog("r: ins[E].m -> 2 <- del[E].m -> 1.");
  EXPECT_FALSE(
      RunNaiveUpdate(update_body, base, engine_.symbols(),
                     engine_.versions())
          .ok());
}

TEST_F(BaselinesTest, InPlaceDeleteRequiresPresentFact) {
  ObjectBase base = Base("a.m -> 1.");
  Program p = Prog("r: del[a].m -> 2.");  // 2 is not there
  Result<InPlaceOutcome> out =
      RunNaiveUpdate(p, base, engine_.symbols(), engine_.versions());
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->updates_applied, 0u);
}

}  // namespace
}  // namespace verso
