// Schema layer: declarations, object-base validation, static program
// checks.

#include "schema/schema.h"

#include <gtest/gtest.h>

#include "core/engine.h"
#include "parser/parser.h"

namespace verso {
namespace {

constexpr const char* kEnterpriseSchema = R"(
    method isa/0: symbol, set.
    method pos/0: symbol, single.
    method sal/0: number, single.
    method boss/0: symbol, set.
)";

class SchemaTest : public ::testing::Test {
 protected:
  Schema MustParse(const char* text) {
    Result<Schema> schema = Schema::Parse(text, engine_.symbols());
    EXPECT_TRUE(schema.ok()) << schema.status().ToString();
    return std::move(schema).value();
  }
  ObjectBase Base(const char* text) {
    Result<ObjectBase> base = ParseObjectBase(text, engine_);
    EXPECT_TRUE(base.ok());
    return std::move(base).value();
  }

  Engine engine_;
};

TEST_F(SchemaTest, ParseDeclarations) {
  Schema schema = MustParse(kEnterpriseSchema);
  EXPECT_EQ(schema.size(), 4u);
  const MethodSig* sal = schema.Find(engine_.symbols().Method("sal"));
  ASSERT_NE(sal, nullptr);
  EXPECT_EQ(sal->arity, 0u);
  EXPECT_EQ(sal->result, ResultKind::kNumber);
  EXPECT_TRUE(sal->single_valued);
  const MethodSig* isa = schema.Find(engine_.symbols().Method("isa"));
  ASSERT_NE(isa, nullptr);
  EXPECT_FALSE(isa->single_valued);
}

TEST_F(SchemaTest, ParseErrors) {
  EXPECT_FALSE(Schema::Parse("method sal: number, single.",
                             engine_.symbols()).ok());  // missing /arity
  EXPECT_FALSE(Schema::Parse("method sal/0: floaty, single.",
                             engine_.symbols()).ok());
  EXPECT_FALSE(Schema::Parse("method sal/0: number, sometimes.",
                             engine_.symbols()).ok());
}

TEST_F(SchemaTest, ConflictingRedeclarationFails) {
  EXPECT_FALSE(Schema::Parse(
      "method sal/0: number, single.  method sal/0: symbol, single.",
      engine_.symbols()).ok());
  // Identical re-declaration is fine.
  EXPECT_TRUE(Schema::Parse(
      "method sal/0: number, single.  method sal/0: number, single.",
      engine_.symbols()).ok());
}

TEST_F(SchemaTest, CheckBaseAcceptsConformingFacts) {
  Schema schema = MustParse(kEnterpriseSchema);
  ObjectBase base = Base(R"(
      phil.isa -> empl.  phil.pos -> mgr.  phil.sal -> 4000.
      bob.isa -> empl.   bob.isa -> mgr.   bob.boss -> phil.
  )");
  base.SealExistence();  // exists is implicitly fine
  EXPECT_TRUE(
      schema.CheckBase(base, engine_.symbols(), engine_.versions()).ok());
}

TEST_F(SchemaTest, CheckBaseRejectsUndeclaredMethod) {
  Schema schema = MustParse(kEnterpriseSchema);
  ObjectBase base = Base("phil.hobby -> chess.");
  Status s = schema.CheckBase(base, engine_.symbols(), engine_.versions());
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("hobby"), std::string::npos);
}

TEST_F(SchemaTest, CheckBaseRejectsKindMismatch) {
  Schema schema = MustParse(kEnterpriseSchema);
  ObjectBase base = Base("phil.sal -> lots.");  // symbol, not number
  EXPECT_FALSE(
      schema.CheckBase(base, engine_.symbols(), engine_.versions()).ok());
}

TEST_F(SchemaTest, CheckBaseRejectsDoubleValueOnSingleValued) {
  Schema schema = MustParse(kEnterpriseSchema);
  ObjectBase base = Base("phil.sal -> 1.  phil.sal -> 2.");
  Status s = schema.CheckBase(base, engine_.symbols(), engine_.versions());
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("single-valued"), std::string::npos);
  // The same two results on a set-valued method are fine.
  ObjectBase ok = Base("phil.isa -> empl.  phil.isa -> mgr.");
  EXPECT_TRUE(
      schema.CheckBase(ok, engine_.symbols(), engine_.versions()).ok());
}

TEST_F(SchemaTest, CheckBaseChecksArity) {
  Schema schema = MustParse("method at/2: number, single.");
  ObjectBase good = Base("m.at@1,2 -> 30.");
  EXPECT_TRUE(
      schema.CheckBase(good, engine_.symbols(), engine_.versions()).ok());
  ObjectBase bad = Base("m.at@1 -> 30.");
  EXPECT_FALSE(
      schema.CheckBase(bad, engine_.symbols(), engine_.versions()).ok());
}

TEST_F(SchemaTest, CheckProgramStaticChecks) {
  Schema schema = MustParse(kEnterpriseSchema);
  Result<Program> good = ParseProgram(
      "r: mod[E].sal -> (S, S2) <- E.isa -> empl, E.sal -> S, "
      "S2 = S * 1.1.", engine_.symbols());
  ASSERT_TRUE(good.ok());
  EXPECT_TRUE(schema.CheckProgram(*good, engine_.symbols()).ok());

  Result<Program> undeclared = ParseProgram(
      "r: ins[E].hobby -> chess <- E.isa -> empl.", engine_.symbols());
  ASSERT_TRUE(undeclared.ok());
  EXPECT_FALSE(schema.CheckProgram(*undeclared, engine_.symbols()).ok());

  Result<Program> bad_kind = ParseProgram(
      "r: ins[E].sal -> lots <- E.isa -> empl.", engine_.symbols());
  ASSERT_TRUE(bad_kind.ok());
  EXPECT_FALSE(schema.CheckProgram(*bad_kind, engine_.symbols()).ok());

  Result<Program> bad_arity = ParseProgram(
      "r: ins[E].boss@x -> y <- E.isa -> empl.", engine_.symbols());
  ASSERT_TRUE(bad_arity.ok());
  EXPECT_FALSE(schema.CheckProgram(*bad_arity, engine_.symbols()).ok());

  // delete-all heads carry no method and always pass the head check.
  Result<Program> del_all = ParseProgram(
      "r: del[mod(E)].* <- mod(E).isa -> empl.", engine_.symbols());
  ASSERT_TRUE(del_all.ok());
  EXPECT_TRUE(schema.CheckProgram(*del_all, engine_.symbols()).ok());
}

TEST_F(SchemaTest, CheckProgramChecksModifyNewResult) {
  Schema schema = MustParse(kEnterpriseSchema);
  Result<Program> bad = ParseProgram(
      "r: mod[E].sal -> (S, lots) <- E.sal -> S.", engine_.symbols());
  ASSERT_TRUE(bad.ok());
  EXPECT_FALSE(schema.CheckProgram(*bad, engine_.symbols()).ok());
}

// End-to-end: schema-check the committed base after a run.
TEST_F(SchemaTest, CommittedBaseStaysConforming) {
  Schema schema = MustParse(
      "method isa/0: symbol, set.  method pos/0: symbol, single. "
      "method sal/0: number, single.  method boss/0: symbol, set.");
  ObjectBase base = Base(R"(
      phil.isa -> empl.  phil.pos -> mgr.   phil.sal -> 4000.
      bob.isa -> empl.   bob.boss -> phil.  bob.sal -> 4200.
  )");
  Result<Program> program = ParseProgram(
      "r1: mod[E].sal -> (S, S2) <- E.isa -> empl / sal -> S, "
      "S2 = S * 1.1.", engine_.symbols());
  ASSERT_TRUE(program.ok());
  Result<RunOutcome> outcome = engine_.Run(*program, base);
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(schema.CheckBase(outcome->new_base, engine_.symbols(),
                               engine_.versions()).ok());
}

}  // namespace
}  // namespace verso
