// Temporal view over result(P): per-object stage chains with diffs.

#include "history/history.h"

#include <gtest/gtest.h>

#include "core/engine.h"
#include "parser/parser.h"
#include "workloads/workloads.h"

namespace verso {
namespace {

class HistoryTest : public ::testing::Test {
 protected:
  RunOutcome MustRun(const char* base_text, const char* program_text) {
    Result<ObjectBase> base = ParseObjectBase(base_text, engine_);
    EXPECT_TRUE(base.ok());
    Result<Program> program = ParseProgram(program_text, engine_);
    EXPECT_TRUE(program.ok());
    Result<RunOutcome> outcome = engine_.Run(*program, *base);
    EXPECT_TRUE(outcome.ok()) << outcome.status().ToString();
    return std::move(outcome).value();
  }

  Engine engine_;
};

TEST_F(HistoryTest, EnterpriseHistoriesTellFigure2) {
  RunOutcome outcome = MustRun(
      R"(
        phil.isa -> empl.  phil.pos -> mgr.   phil.sal -> 4000.
        bob.isa -> empl.   bob.boss -> phil.  bob.sal -> 4200.
      )",
      kEnterpriseProgramText);

  // phil: o -mod-> mod(phil) -ins-> ins(mod(phil)).
  Result<ObjectHistory> phil = HistoryOf(
      outcome.result, engine_.symbols().Symbol("phil"), engine_.symbols(),
      engine_.versions());
  ASSERT_TRUE(phil.ok()) << phil.status().ToString();
  ASSERT_EQ(phil->stages.size(), 3u);
  EXPECT_EQ(phil->update_group_count(), 2u);
  EXPECT_EQ(phil->stages[1].kind, UpdateKind::kModify);
  ASSERT_EQ(phil->stages[1].modified.size(), 1u);
  EXPECT_EQ(engine_.symbols().NumberValue(
                phil->stages[1].modified[0].old_result),
            Numeric::FromInt(4000));
  EXPECT_EQ(engine_.symbols().NumberValue(
                phil->stages[1].modified[0].new_result),
            Numeric::FromInt(4600));
  EXPECT_EQ(phil->stages[2].kind, UpdateKind::kInsert);
  ASSERT_EQ(phil->stages[2].added.size(), 1u);
  EXPECT_EQ(engine_.symbols().MethodName(phil->stages[2].added[0].first),
            "isa");

  // bob: o -mod-> mod(bob) -del-> del(mod(bob)) with everything removed.
  Result<ObjectHistory> bob = HistoryOf(
      outcome.result, engine_.symbols().Symbol("bob"), engine_.symbols(),
      engine_.versions());
  ASSERT_TRUE(bob.ok());
  ASSERT_EQ(bob->stages.size(), 3u);
  EXPECT_EQ(bob->stages[2].kind, UpdateKind::kDelete);
  EXPECT_EQ(bob->stages[2].removed.size(), 3u);  // isa, boss, sal
  EXPECT_EQ(bob->final_stage().fact_count, 1u);  // exists only

  // Rendering mentions the salary transition.
  std::string rendered =
      HistoryToString(*phil, engine_.symbols(), engine_.versions());
  EXPECT_NE(rendered.find("sal: 4000 -> 4600"), std::string::npos);
  EXPECT_NE(rendered.find("-ins-> ins(mod(phil))"), std::string::npos);
}

TEST_F(HistoryTest, UntouchedObjectHasSingleStage) {
  RunOutcome outcome = MustRun(
      "rock.mass -> 3.  e.isa -> empl.  e.sal -> 1.",
      "r: mod[E].sal -> (S, S2) <- E.isa -> empl, E.sal -> S, S2 = S + 1.");
  Result<ObjectHistory> rock = HistoryOf(
      outcome.result, engine_.symbols().Symbol("rock"), engine_.symbols(),
      engine_.versions());
  ASSERT_TRUE(rock.ok());
  EXPECT_EQ(rock->stages.size(), 1u);
  EXPECT_EQ(rock->update_group_count(), 0u);
}

TEST_F(HistoryTest, UnknownObjectIsNotFound) {
  RunOutcome outcome = MustRun("a.m -> 1.", "f: ins[a].n -> 2.");
  Result<ObjectHistory> history = HistoryOf(
      outcome.result, engine_.symbols().Symbol("ghost"), engine_.symbols(),
      engine_.versions());
  ASSERT_FALSE(history.ok());
  EXPECT_EQ(history.status().code(), StatusCode::kNotFound);
}

TEST_F(HistoryTest, NonLinearHandMadeBaseIsRejected) {
  ObjectBase base = engine_.MakeBase();
  Status s = ParseObjectBaseInto(
      "mod(o).exists -> o.  del(o).exists -> o.", engine_.symbols(),
      engine_.versions(), base);
  ASSERT_TRUE(s.ok());
  Result<ObjectHistory> history =
      HistoryOf(base, engine_.symbols().Symbol("o"), engine_.symbols(),
                engine_.versions());
  ASSERT_FALSE(history.ok());
  EXPECT_EQ(history.status().code(), StatusCode::kNotVersionLinear);
}

TEST_F(HistoryTest, AllHistoriesCoverEveryObject) {
  RunOutcome outcome = MustRun(
      "a.isa -> empl. a.sal -> 1.  b.isa -> empl. b.sal -> 2.  c.m -> 9.",
      "r: mod[E].sal -> (S, S2) <- E.isa -> empl, E.sal -> S, S2 = S + 1.");
  Result<std::vector<ObjectHistory>> all = AllHistories(
      outcome.result, engine_.symbols(), engine_.versions());
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->size(), 3u);  // a, b, c
  size_t with_updates = 0;
  for (const ObjectHistory& h : *all) {
    if (h.update_group_count() > 0) ++with_updates;
  }
  EXPECT_EQ(with_updates, 2u);
}

TEST_F(HistoryTest, HypotheticalHistoryShowsRaiseAndRevision) {
  RunOutcome outcome = MustRun(
      "peter.sal -> 100.  peter.factor -> 3.",
      "r1: mod[E].sal -> (S, S2) <- E.sal -> S / factor -> F, S2 = S * F."
      "r2: mod[mod(E)].sal -> (S2, S) <- mod(E).sal -> S2, E.sal -> S.");
  Result<ObjectHistory> peter = HistoryOf(
      outcome.result, engine_.symbols().Symbol("peter"), engine_.symbols(),
      engine_.versions());
  ASSERT_TRUE(peter.ok());
  ASSERT_EQ(peter->stages.size(), 3u);
  // Stage 1 raises 100 -> 300; stage 2 reverts 300 -> 100.
  ASSERT_EQ(peter->stages[1].modified.size(), 1u);
  EXPECT_EQ(engine_.symbols().NumberValue(
                peter->stages[1].modified[0].new_result),
            Numeric::FromInt(300));
  ASSERT_EQ(peter->stages[2].modified.size(), 1u);
  EXPECT_EQ(engine_.symbols().NumberValue(
                peter->stages[2].modified[0].new_result),
            Numeric::FromInt(100));
}

}  // namespace
}  // namespace verso
