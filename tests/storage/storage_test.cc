// Persistence substrate: codec round-trips, snapshot integrity, WAL
// framing with torn-tail recovery, and the Database facade.

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>

#include "core/pretty.h"
#include "obs/metrics.h"
#include "parser/parser.h"
#include "storage/codec.h"
#include "storage/database.h"
#include "storage/snapshot.h"
#include "storage/wal.h"
#include "util/crc32.h"
#include "util/fault_env.h"
#include "util/io.h"

namespace verso {
namespace {

// ---- codec primitives ------------------------------------------------------

TEST(CodecTest, VarintRoundTrip) {
  const std::vector<uint64_t> values = {0,   1,        127,       128,
                                        300, 1ull << 40, UINT64_MAX};
  BufferWriter w;
  for (uint64_t v : values) w.Varint(v);
  BufferReader r(w.buffer());
  for (uint64_t v : values) {
    Result<uint64_t> back = r.Varint();
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back, v);
  }
  EXPECT_TRUE(r.AtEnd());
}

TEST(CodecTest, ZigZagRoundTrip) {
  const std::vector<int64_t> values = {0, -1, 1, -64, 64, INT64_MIN,
                                       INT64_MAX};
  BufferWriter w;
  for (int64_t v : values) w.ZigZag(v);
  BufferReader r(w.buffer());
  for (int64_t v : values) {
    Result<int64_t> back = r.ZigZag();
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back, v);
  }
}

TEST(CodecTest, StrRoundTripAndTruncation) {
  BufferWriter w;
  w.Str("hello");
  w.Str("");
  BufferReader r(w.buffer());
  EXPECT_EQ(*r.Str(), "hello");
  EXPECT_EQ(*r.Str(), "");
  // Truncated buffer errors out rather than reading past the end.
  BufferReader bad(std::string_view(w.buffer().data(), 3));
  EXPECT_FALSE(bad.Str().ok());
}

// ---- object base / delta round-trips --------------------------------------

class StorageFixture : public ::testing::Test {
 protected:
  StorageFixture() {
    // One directory per test: ctest runs each TEST as its own process,
    // possibly in parallel, so a shared fixed path races.
    dir_ = ::testing::TempDir() + "/verso_storage_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
    EnsureDirectory(dir_).ok();
  }

  ObjectBase Base(const char* text, Engine& engine) {
    Result<ObjectBase> base = ParseObjectBase(text, engine);
    EXPECT_TRUE(base.ok()) << base.status().ToString();
    return std::move(base).value();
  }

  std::string dir_;
};

constexpr const char* kRichBase = R"(
    phil.isa -> empl.  phil.sal -> 4600.
    mod(phil).sal -> 5060.
    del(mod(bob)).exists -> bob.
    m.at@1,2 -> 20.   m.at@1,"s" -> -3.5.
)";

TEST_F(StorageFixture, ObjectBaseEncodesAcrossEngines) {
  Engine a;
  ObjectBase base = Base(kRichBase, a);
  std::string payload = EncodeObjectBase(base, a.symbols(), a.versions());

  // Decode into a *different* engine whose interning order differs.
  Engine b;
  b.symbols().Symbol("unrelated");
  b.symbols().Symbol("phil");
  ObjectBase decoded = b.MakeBase();
  ASSERT_TRUE(DecodeObjectBaseInto(payload, b.symbols(), b.versions(),
                                   decoded)
                  .ok());
  EXPECT_EQ(ObjectBaseToString(decoded, b.symbols(), b.versions()),
            ObjectBaseToString(base, a.symbols(), a.versions()));
}

TEST_F(StorageFixture, DeltaComputeApplyInverts) {
  Engine engine;
  ObjectBase before = Base("a.m -> 1.  b.m -> 2.  c.m -> 3.", engine);
  ObjectBase after = Base("a.m -> 1.  b.m -> 20.  d.m -> 4.", engine);
  FactDelta delta = ComputeDelta(before, after);
  EXPECT_EQ(delta.added.size(), 2u);    // b.m->20, d.m->4
  EXPECT_EQ(delta.removed.size(), 2u);  // b.m->2, c.m->3
  ObjectBase patched = before;
  ApplyDelta(delta, patched);
  EXPECT_TRUE(patched == after);

  std::string payload = EncodeDelta(delta, engine.symbols(),
                                    engine.versions());
  Result<FactDelta> back =
      DecodeDelta(payload, engine.symbols(), engine.versions());
  ASSERT_TRUE(back.ok());
  ObjectBase patched2 = before;
  ApplyDelta(*back, patched2);
  EXPECT_TRUE(patched2 == after);
}

TEST_F(StorageFixture, CorruptPayloadIsDetected) {
  Engine engine;
  ObjectBase base = Base("a.m -> 1.", engine);
  std::string payload = EncodeObjectBase(base, engine.symbols(),
                                         engine.versions());
  payload.resize(payload.size() - 1);  // truncate
  ObjectBase out = engine.MakeBase();
  EXPECT_FALSE(DecodeObjectBaseInto(payload, engine.symbols(),
                                    engine.versions(), out)
                   .ok());
}

// ---- snapshot ---------------------------------------------------------------

TEST_F(StorageFixture, SnapshotRoundTrip) {
  Engine a;
  ObjectBase base = Base(kRichBase, a);
  std::string path = dir_ + "/snap.vsnp";
  ASSERT_TRUE(WriteSnapshot(path, base, a.symbols(), a.versions()).ok());

  Engine b;
  ObjectBase loaded = b.MakeBase();
  ASSERT_TRUE(
      ReadSnapshotInto(path, b.symbols(), b.versions(), loaded).ok());
  EXPECT_EQ(ObjectBaseToString(loaded, b.symbols(), b.versions()),
            ObjectBaseToString(base, a.symbols(), a.versions()));
}

TEST_F(StorageFixture, SnapshotBitFlipIsCorruption) {
  Engine engine;
  ObjectBase base = Base("a.m -> 1.", engine);
  std::string path = dir_ + "/snap.vsnp";
  ASSERT_TRUE(
      WriteSnapshot(path, base, engine.symbols(), engine.versions()).ok());
  std::string bytes = *ReadFile(path);
  bytes[bytes.size() / 2] ^= 0x40;
  ASSERT_TRUE(WriteFile(path, bytes).ok());
  ObjectBase out = engine.MakeBase();
  Status s = ReadSnapshotInto(path, engine.symbols(), engine.versions(), out);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kCorruption);
}

// ---- WAL --------------------------------------------------------------------

TEST_F(StorageFixture, WalAppendAndRead) {
  std::string path = dir_ + "/wal.log";
  WalWriter writer(path);
  ASSERT_TRUE(writer.Append("first").ok());
  ASSERT_TRUE(writer.Append("").ok());
  ASSERT_TRUE(writer.Append("third record").ok());
  Result<WalReadResult> r = ReadWal(path);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->truncated_tail);
  ASSERT_EQ(r->records.size(), 3u);
  EXPECT_EQ(r->records[0].payload, "first");
  EXPECT_EQ(r->records[0].kind, WalRecordKind::kDelta);
  EXPECT_EQ(r->records[1].payload, "");
  EXPECT_EQ(r->records[2].payload, "third record");
}

TEST_F(StorageFixture, MissingWalIsEmpty) {
  Result<WalReadResult> r = ReadWal(dir_ + "/none.log");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->records.empty());
}

TEST_F(StorageFixture, TornTailIsDroppedNotFatal) {
  std::string path = dir_ + "/wal.log";
  WalWriter writer(path);
  ASSERT_TRUE(writer.Append("keep me").ok());
  ASSERT_TRUE(writer.Append("torn").ok());
  std::string bytes = *ReadFile(path);
  bytes.resize(bytes.size() - 2);  // simulate crash mid-write
  ASSERT_TRUE(WriteFile(path, bytes).ok());
  Result<WalReadResult> r = ReadWal(path);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->truncated_tail);
  ASSERT_EQ(r->records.size(), 1u);
  EXPECT_EQ(r->records[0].payload, "keep me");
}

TEST_F(StorageFixture, CorruptMiddleRecordDropsAllLaterRecords) {
  // A corrupt record in the MIDDLE of the log is indistinguishable from a
  // torn tail at that point: the bit-perfect records AFTER it are
  // intentionally dropped too, because replaying deltas with a gap would
  // fabricate a state no committed prefix ever had. The dropped bytes are
  // preserved (wal.log.corrupt) by Database recovery, not destroyed.
  std::string path = dir_ + "/wal.log";
  WalWriter writer(path);
  ASSERT_TRUE(writer.Append("keep").ok());
  ASSERT_TRUE(writer.Append("corrupt me").ok());
  ASSERT_TRUE(writer.Append("perfectly valid but unreachable").ok());
  std::string bytes = *ReadFile(path);
  // Flip one payload bit of the SECOND record: frame 1 ends at 12+4.
  bytes[16 + 12 + 2] ^= 0x01;
  ASSERT_TRUE(WriteFile(path, bytes).ok());
  Result<WalReadResult> r = ReadWal(path);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->truncated_tail);
  ASSERT_EQ(r->records.size(), 1u);
  EXPECT_EQ(r->records[0].payload, "keep");
  // Only the prefix before the damage counts as valid.
  EXPECT_EQ(r->valid_bytes, 16u);
}

TEST_F(StorageFixture, LengthWordBitFlipIsCaughtDeterministically) {
  // v2 frames carry a CRC over the length word itself, so a bit-flip in
  // the length is caught by checksum comparison — deterministically — and
  // never mis-frames the log. (v1 frames only caught this if the payload
  // CRC of the mis-framed record happened to land wrong.)
  std::string path = dir_ + "/wal.log";
  WalWriter writer(path);
  ASSERT_TRUE(writer.Append("first record payload").ok());
  ASSERT_TRUE(writer.Append("second").ok());
  std::string pristine = *ReadFile(path);
  // Every bit of the length word, including ones that would SHRINK the
  // frame so the next "frame" starts inside this record's payload.
  for (int bit = 0; bit < 8; ++bit) {
    std::string bytes = pristine;
    bytes[0] ^= static_cast<char>(1 << bit);
    ASSERT_TRUE(WriteFile(path, bytes).ok());
    Result<WalReadResult> r = ReadWal(path);
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(r->truncated_tail) << "bit " << bit;
    EXPECT_TRUE(r->records.empty()) << "bit " << bit;
    EXPECT_EQ(r->valid_bytes, 0u) << "bit " << bit;
  }
}

TEST_F(StorageFixture, LegacyV1FramesStillReadable) {
  // Hand-craft a pre-header-CRC frame (u32 length | u32 payload CRC |
  // payload) and append a modern v2 record after it: one log, both frame
  // versions, both replayed.
  std::string path = dir_ + "/wal.log";
  const std::string payload = "legacy v1 payload";
  std::string frame;
  uint32_t length = static_cast<uint32_t>(payload.size());
  for (int i = 0; i < 4; ++i) {
    frame += static_cast<char>((length >> (8 * i)) & 0xff);
  }
  uint32_t crc = Crc32(payload.data(), payload.size());
  for (int i = 0; i < 4; ++i) {
    frame += static_cast<char>((crc >> (8 * i)) & 0xff);
  }
  frame += payload;
  ASSERT_TRUE(AppendFile(path, frame).ok());

  WalWriter writer(path);
  ASSERT_TRUE(writer.Append(WalRecordKind::kBatch, "modern v2").ok());

  Result<WalReadResult> r = ReadWal(path);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->truncated_tail);
  ASSERT_EQ(r->records.size(), 2u);
  EXPECT_EQ(r->records[0].payload, payload);
  EXPECT_EQ(r->records[0].kind, WalRecordKind::kDelta);
  EXPECT_EQ(r->records[1].payload, "modern v2");
  EXPECT_EQ(r->records[1].kind, WalRecordKind::kBatch);
  // v1 header is 8 bytes, v2 is 12: the offsets prove both were framed.
  EXPECT_EQ(r->records[0].end_offset, 8 + payload.size());
  EXPECT_EQ(r->records[1].offset, r->records[0].end_offset);
}

// ---- Database ----------------------------------------------------------------

TEST_F(StorageFixture, DatabaseExecuteAndRecover) {
  std::string dbdir = dir_ + "/db";
  {
    Engine engine;
    Result<std::unique_ptr<Database>> db = Database::Open(dbdir, engine);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    ObjectBase base = Base("henry.isa -> empl.  henry.sal -> 100.", engine);
    ASSERT_TRUE((*db)->ImportBase(base).ok());
    Result<Program> raise = ParseProgram(
        "r: mod[E].sal -> (S, S2) <- E.isa -> empl, E.sal -> S, "
        "S2 = S * 2.", engine);
    ASSERT_TRUE(raise.ok());
    ASSERT_TRUE((*db)->Execute(*raise).ok());
    EXPECT_EQ((*db)->wal_records_since_checkpoint(), 2u);
  }
  // Reopen without a checkpoint: recovery replays the WAL.
  {
    Engine engine;
    Result<std::unique_ptr<Database>> db = Database::Open(dbdir, engine);
    ASSERT_TRUE(db.ok());
    Vid henry = engine.versions().OfOid(engine.symbols().Symbol("henry"));
    GroundApp sal;
    sal.result = engine.symbols().Int(200);
    EXPECT_TRUE((*db)->current().Contains(
        henry, engine.symbols().Method("sal"), sal));
    // Checkpoint folds the WAL into the snapshot.
    ASSERT_TRUE((*db)->Checkpoint().ok());
    EXPECT_EQ((*db)->wal_records_since_checkpoint(), 0u);
    EXPECT_FALSE(FileExists(dbdir + "/wal.log"));
  }
  // And a third open loads from the snapshot alone.
  {
    Engine engine;
    Result<std::unique_ptr<Database>> db = Database::Open(dbdir, engine);
    ASSERT_TRUE(db.ok());
    EXPECT_EQ((*db)->wal_records_since_checkpoint(), 0u);
    Vid henry = engine.versions().OfOid(engine.symbols().Symbol("henry"));
    GroundApp sal;
    sal.result = engine.symbols().Int(200);
    EXPECT_TRUE((*db)->current().Contains(
        henry, engine.symbols().Method("sal"), sal));
  }
}

TEST_F(StorageFixture, DatabaseSurvivesTornWalTail) {
  std::string dbdir = dir_ + "/db2";
  {
    Engine engine;
    Result<std::unique_ptr<Database>> db = Database::Open(dbdir, engine);
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE((*db)->ImportBase(Base("a.m -> 1.", engine)).ok());
    ASSERT_TRUE((*db)->ImportBase(Base("a.m -> 1. a.n -> 2.", engine)).ok());
  }
  // Tear the final record.
  std::string bytes = *ReadFile(dbdir + "/wal.log");
  bytes.resize(bytes.size() - 3);
  ASSERT_TRUE(WriteFile(dbdir + "/wal.log", bytes).ok());
  {
    Engine engine;
    Result<std::unique_ptr<Database>> db = Database::Open(dbdir, engine);
    ASSERT_TRUE(db.ok());
    EXPECT_TRUE((*db)->recovered_from_torn_wal());
    // The first import survived; the torn second one is gone.
    Vid a = engine.versions().OfOid(engine.symbols().Symbol("a"));
    GroundApp one;
    one.result = engine.symbols().Int(1);
    EXPECT_TRUE(
        (*db)->current().Contains(a, engine.symbols().Method("m"), one));
    GroundApp two;
    two.result = engine.symbols().Int(2);
    EXPECT_FALSE(
        (*db)->current().Contains(a, engine.symbols().Method("n"), two));
  }
}

TEST_F(StorageFixture, CorruptTailPreservationIsCappedAndNonFatal) {
  std::string dbdir = dir_ + "/db_cap";
  auto tear_tail = [&] {
    std::string bytes = *ReadFile(dbdir + "/wal.log");
    bytes.resize(bytes.size() - 3);
    ASSERT_TRUE(WriteFile(dbdir + "/wal.log", bytes).ok());
  };
  {
    Engine engine;
    Result<std::unique_ptr<Database>> db = Database::Open(dbdir, engine);
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE((*db)->ImportBase(Base("a.m -> 1.", engine)).ok());
    ASSERT_TRUE((*db)->ImportBase(Base("a.m -> 1. a.n -> 2.", engine)).ok());
  }
  // A healthy torn-tail recovery preserves the tail and reports Ok.
  tear_tail();
  {
    Engine engine;
    Result<std::unique_ptr<Database>> db = Database::Open(dbdir, engine);
    ASSERT_TRUE(db.ok());
    EXPECT_TRUE((*db)->recovered_from_torn_wal());
    EXPECT_TRUE((*db)->corrupt_tail_preservation().ok());
    EXPECT_TRUE(FileExists(dbdir + "/wal.log.corrupt"));
    ASSERT_TRUE((*db)->ImportBase(Base("a.m -> 1. a.n -> 2.", engine)).ok());
  }
  // Now pretend many earlier recoveries already filled the side file to
  // its growth cap. The next torn-tail recovery must still succeed, must
  // not grow the side file, and must RECORD that the forensic copy was
  // dropped instead of silently swallowing the failure (the old code
  // aborted recovery outright on any preservation problem).
  tear_tail();
  ASSERT_TRUE(
      WriteFile(dbdir + "/wal.log.corrupt",
                std::string(Database::kCorruptPreserveCap, 'x'))
          .ok());
  {
    Engine engine;
    Result<std::unique_ptr<Database>> db = Database::Open(dbdir, engine);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    EXPECT_TRUE((*db)->recovered_from_torn_wal());
    EXPECT_FALSE((*db)->corrupt_tail_preservation().ok());
    EXPECT_EQ(*FileSize(dbdir + "/wal.log.corrupt"),
              Database::kCorruptPreserveCap);
    // The valid prefix still recovered and the database still serves.
    Vid a = engine.versions().OfOid(engine.symbols().Symbol("a"));
    GroundApp one;
    one.result = engine.symbols().Int(1);
    EXPECT_TRUE(
        (*db)->current().Contains(a, engine.symbols().Method("m"), one));
  }
  // Just below the cap: the tail is trimmed to fit, recorded as partial.
  {
    Engine engine;
    Result<std::unique_ptr<Database>> db = Database::Open(dbdir, engine);
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE((*db)->ImportBase(Base("a.m -> 1. a.p -> 3.", engine)).ok());
  }
  tear_tail();
  ASSERT_TRUE(
      WriteFile(dbdir + "/wal.log.corrupt",
                std::string(Database::kCorruptPreserveCap - 1, 'x'))
          .ok());
  {
    Engine engine;
    Result<std::unique_ptr<Database>> db = Database::Open(dbdir, engine);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    EXPECT_FALSE((*db)->corrupt_tail_preservation().ok());
    EXPECT_EQ(*FileSize(dbdir + "/wal.log.corrupt"),
              Database::kCorruptPreserveCap);
  }
}

TEST_F(StorageFixture, ExecuteBatchGroupCommitsOneRecord) {
  std::string dbdir = dir_ + "/db_batch";
  {
    Engine engine;
    Result<std::unique_ptr<Database>> db = Database::Open(dbdir, engine);
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE((*db)->ImportBase(Base("a.sal -> 100.", engine)).ok());
    Result<Program> p1 = ParseProgram(
        "t: mod[a].sal -> (S, S2) <- a.sal -> S, S2 = S + 1.", engine);
    Result<Program> p2 = ParseProgram("t: ins[b].sal -> 7.", engine);
    Result<Program> p3 = ParseProgram(
        "t: mod[a].sal -> (S, S2) <- a.sal -> S, S2 = S * 2.", engine);
    ASSERT_TRUE(p1.ok() && p2.ok() && p3.ok());
    std::vector<Program*> batch = {&*p1, &*p2, &*p3};
    Result<std::vector<RunOutcome>> out = (*db)->ExecuteBatch(batch);
    ASSERT_TRUE(out.ok()) << out.status().ToString();
    EXPECT_EQ(out->size(), 3u);
    // One record for the import, ONE for the whole three-transaction
    // group — the second transaction sees the first's effects.
    EXPECT_EQ((*db)->wal_records_since_checkpoint(), 2u);
    Result<WalReadResult> wal = ReadWal(dbdir + "/wal.log");
    ASSERT_TRUE(wal.ok());
    ASSERT_EQ(wal->records.size(), 2u);
    EXPECT_EQ(wal->records[1].kind, WalRecordKind::kBatch);
  }
  // Recovery replays every transaction of the batch in order.
  {
    Engine engine;
    Result<std::unique_ptr<Database>> db = Database::Open(dbdir, engine);
    ASSERT_TRUE(db.ok());
    Vid a = engine.versions().OfOid(engine.symbols().Symbol("a"));
    GroundApp sal;
    sal.result = engine.symbols().Int(202);  // (100 + 1) * 2
    EXPECT_TRUE(
        (*db)->current().Contains(a, engine.symbols().Method("sal"), sal));
    Vid b = engine.versions().OfOid(engine.symbols().Symbol("b"));
    GroundApp seven;
    seven.result = engine.symbols().Int(7);
    EXPECT_TRUE(
        (*db)->current().Contains(b, engine.symbols().Method("sal"), seven));
  }
}

TEST_F(StorageFixture, ExecuteBatchIsAllOrNothing) {
  std::string dbdir = dir_ + "/db_batch_fail";
  Engine engine;
  Result<std::unique_ptr<Database>> db = Database::Open(dbdir, engine);
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE((*db)->ImportBase(Base("o.m -> a.", engine)).ok());
  Result<Program> good = ParseProgram("t: ins[o].m -> b.", engine);
  // Non-linear program: fails to evaluate.
  Result<Program> bad = ParseProgram(
      "r1: mod[o].m -> (a, b) <- o.m -> a."
      "r2: del[o].m -> a <- o.m -> a.", engine);
  ASSERT_TRUE(good.ok() && bad.ok());
  size_t records = (*db)->wal_records_since_checkpoint();
  std::vector<Program*> batch = {&*good, &*bad};
  Result<std::vector<RunOutcome>> out = (*db)->ExecuteBatch(batch);
  EXPECT_FALSE(out.ok());
  // Neither the good nor the bad transaction committed.
  EXPECT_EQ((*db)->wal_records_since_checkpoint(), records);
  Vid o = engine.versions().OfOid(engine.symbols().Symbol("o"));
  GroundApp b;
  b.result = engine.symbols().Symbol("b");
  EXPECT_FALSE((*db)->current().Contains(o, engine.symbols().Method("m"), b));
}

TEST_F(StorageFixture, RecoveryReplaysLegacyAndBatchedRecords) {
  std::string dbdir = dir_ + "/db_mixed";
  ASSERT_TRUE(EnsureDirectory(dbdir).ok());
  // Hand-write a legacy (pre-batching) record: one bare EncodeDelta image
  // per transaction, framed without the batch bit.
  {
    Engine engine;
    ObjectBase before = engine.MakeBase();
    ObjectBase after = Base("a.m -> 1.  b.m -> 2.", engine);
    FactDelta delta = ComputeDelta(before, after);
    WalWriter writer(dbdir + "/wal.log");
    ASSERT_TRUE(writer
                    .Append(WalRecordKind::kDelta,
                            EncodeDelta(delta, engine.symbols(),
                                        engine.versions()))
                    .ok());
  }
  // A fresh database replays the legacy record, then appends batched
  // records of its own; a third incarnation replays the mixed log.
  {
    Engine engine;
    Result<std::unique_ptr<Database>> db = Database::Open(dbdir, engine);
    ASSERT_TRUE(db.ok());
    Vid a = engine.versions().OfOid(engine.symbols().Symbol("a"));
    GroundApp one;
    one.result = engine.symbols().Int(1);
    ASSERT_TRUE(
        (*db)->current().Contains(a, engine.symbols().Method("m"), one));
    Result<Program> ins = ParseProgram("t: ins[c].m -> 3.", engine);
    ASSERT_TRUE(ins.ok());
    ASSERT_TRUE((*db)->Execute(*ins).ok());
  }
  {
    Engine engine;
    Result<std::unique_ptr<Database>> db = Database::Open(dbdir, engine);
    ASSERT_TRUE(db.ok());
    EXPECT_EQ((*db)->wal_records_since_checkpoint(), 2u);
    Result<WalReadResult> wal = ReadWal(dbdir + "/wal.log");
    ASSERT_TRUE(wal.ok());
    ASSERT_EQ(wal->records.size(), 2u);
    EXPECT_EQ(wal->records[0].kind, WalRecordKind::kDelta);
    EXPECT_EQ(wal->records[1].kind, WalRecordKind::kBatch);
    for (const char* obj : {"a", "b", "c"}) {
      Vid vid = engine.versions().OfOid(engine.symbols().Symbol(obj));
      EXPECT_NE((*db)->current().StateOf(vid), nullptr) << obj;
    }
  }
}

TEST_F(StorageFixture, TornTailInsideBatchedFrameDropsWholeGroup) {
  std::string dbdir = dir_ + "/db_torn_batch";
  {
    Engine engine;
    Result<std::unique_ptr<Database>> db = Database::Open(dbdir, engine);
    ASSERT_TRUE(db.ok());
    // Record 1: a plain import. Record 2: a three-transaction group
    // commit — ONE kind-tagged batched frame.
    ASSERT_TRUE((*db)->ImportBase(Base("a.m -> 1.", engine)).ok());
    Result<Program> p1 = ParseProgram("t: ins[b].m -> 2.", engine);
    Result<Program> p2 = ParseProgram("t: ins[c].m -> 3.", engine);
    Result<Program> p3 = ParseProgram("t: ins[d].m -> 4.", engine);
    ASSERT_TRUE(p1.ok() && p2.ok() && p3.ok());
    std::vector<Program*> batch = {&*p1, &*p2, &*p3};
    ASSERT_TRUE((*db)->ExecuteBatch(batch).ok());
    EXPECT_EQ((*db)->wal_records_since_checkpoint(), 2u);
  }
  // Tear the tail INSIDE the batched frame: the payload of the second
  // record loses its final bytes, as if the writer crashed mid-append.
  std::string bytes = *ReadFile(dbdir + "/wal.log");
  bytes.resize(bytes.size() - 5);
  ASSERT_TRUE(WriteFile(dbdir + "/wal.log", bytes).ok());
  {
    Engine engine;
    Result<std::unique_ptr<Database>> db = Database::Open(dbdir, engine);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    EXPECT_TRUE((*db)->recovered_from_torn_wal());
    // The dropped bytes are preserved for forensics, not destroyed.
    EXPECT_TRUE(FileExists(dbdir + "/wal.log.corrupt"));
    // The frame is the durability unit: NONE of the group's three
    // transactions survives — not even the ones whose bytes were intact —
    // while the earlier record is fully recovered.
    Vid a = engine.versions().OfOid(engine.symbols().Symbol("a"));
    GroundApp one;
    one.result = engine.symbols().Int(1);
    EXPECT_TRUE(
        (*db)->current().Contains(a, engine.symbols().Method("m"), one));
    for (const char* obj : {"b", "c", "d"}) {
      Vid vid = engine.versions().OfOid(engine.symbols().Symbol(obj));
      EXPECT_EQ((*db)->current().StateOf(vid), nullptr) << obj;
    }
    // The torn tail is gone for good: later commits append after it.
    Result<Program> p = ParseProgram("t: ins[e].m -> 5.", engine);
    ASSERT_TRUE(p.ok());
    ASSERT_TRUE((*db)->Execute(*p).ok());
  }
  {
    Engine engine;
    Result<std::unique_ptr<Database>> db = Database::Open(dbdir, engine);
    ASSERT_TRUE(db.ok());
    Vid e = engine.versions().OfOid(engine.symbols().Symbol("e"));
    EXPECT_NE((*db)->current().StateOf(e), nullptr);
  }
}

TEST_F(StorageFixture, InMemoryDatabaseCommitsWithoutTouchingDisk) {
  Engine engine;
  Result<std::unique_ptr<Database>> db = Database::OpenInMemory(engine);
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE((*db)->ImportBase(Base("a.sal -> 100.", engine)).ok());
  Result<Program> p = ParseProgram(
      "t: mod[a].sal -> (S, S2) <- a.sal -> S, S2 = S * 2.", engine);
  ASSERT_TRUE(p.ok());
  Result<RunOutcome> out = (*db)->Execute(*p);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ((*db)->commit_epoch(), 2u);
  EXPECT_EQ((*db)->wal_records_since_checkpoint(), 0u);
  EXPECT_TRUE((*db)->Checkpoint().ok());  // no-op, not an error
  // The committed delta is exposed on the outcome: the old salary fact
  // removed, the doubled one added (plus the sealed exists fact).
  MethodId sal = engine.symbols().Method("sal");
  bool removed_100 = false, added_200 = false;
  for (const DeltaFact& fact : out->committed_delta) {
    if (fact.method != sal) continue;
    if (!fact.added && fact.app.result == engine.symbols().Int(100)) {
      removed_100 = true;
    }
    if (fact.added && fact.app.result == engine.symbols().Int(200)) {
      added_200 = true;
    }
  }
  EXPECT_TRUE(removed_100);
  EXPECT_TRUE(added_200);
  EXPECT_FALSE(Database::Open("", engine).ok());  // empty dir is rejected
}

TEST_F(StorageFixture, AddObserverIsIdempotent) {
  class CountingObserver : public CommitObserver {
   public:
    Status OnCommit(const DeltaLog&, const ObjectBase&, uint64_t) override {
      ++commits;
      return Status::Ok();
    }
    int commits = 0;
  };
  Engine engine;
  Result<std::unique_ptr<Database>> db = Database::OpenInMemory(engine);
  ASSERT_TRUE(db.ok());
  CountingObserver observer;
  (*db)->AddObserver(&observer);
  (*db)->AddObserver(&observer);  // no-op, not a second registration
  ASSERT_TRUE((*db)->ImportBase(Base("a.m -> 1.", engine)).ok());
  EXPECT_EQ(observer.commits, 1);
  (*db)->RemoveObserver(&observer);
}

TEST_F(StorageFixture, DeltaBatchRoundTrip) {
  Engine engine;
  ObjectBase empty = engine.MakeBase();
  ObjectBase one = Base("a.m -> 1.", engine);
  ObjectBase two = Base("a.m -> 1.  b.m -> 2.", engine);
  std::vector<FactDelta> deltas = {ComputeDelta(empty, one),
                                   ComputeDelta(one, two)};
  std::string payload =
      EncodeDeltaBatch(deltas, engine.symbols(), engine.versions());
  Result<std::vector<FactDelta>> back =
      DecodeDeltaBatch(payload, engine.symbols(), engine.versions());
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->size(), 2u);
  ObjectBase replayed = engine.MakeBase();
  for (const FactDelta& delta : *back) ApplyDelta(delta, replayed);
  EXPECT_TRUE(replayed == two);
  // Truncation is corruption, not silent data loss.
  payload.resize(payload.size() - 1);
  EXPECT_FALSE(
      DecodeDeltaBatch(payload, engine.symbols(), engine.versions()).ok());
}

TEST_F(StorageFixture, CheckpointCrashWindowLosesNothing) {
  // Checkpoint is two durability steps: (1) commit the base into the
  // store — for the default mem backend, install the new image by atomic
  // rename — (2) remove the WAL. A crash anywhere in that sequence must
  // lose nothing: before the rename the old image + full WAL recover;
  // after it the new image + stale WAL recover (replaying the
  // already-folded records idempotently). This is the regression test for
  // the crash window between the two steps.
  using FaultKind = FaultInjectingEnv::FaultKind;
  using OpFilter = FaultInjectingEnv::OpFilter;
  struct Window {
    OpFilter filter;
    size_t partial;  // non-data ops: 0 = op did not happen, 1 = it did
    const char* what;
  };
  const Window windows[] = {
      {OpFilter::kWrite, 0, "crash before the snapshot tmp write"},
      {OpFilter::kWrite, 9, "crash mid snapshot tmp write (short write)"},
      {OpFilter::kRename, 0, "crash before the snapshot rename"},
      {OpFilter::kRename, 1, "crash after rename, before WAL removal"},
      {OpFilter::kRemove, 0, "crash before the WAL removal"},
      {OpFilter::kRemove, 1, "crash after the WAL removal"},
  };
  for (const Window& w : windows) {
    SCOPED_TRACE(w.what);
    FaultInjectingEnv env;
    DatabaseOptions options;
    options.env = &env;
    options.retry_backoff_us = 0;
    std::string expected;
    {
      Engine engine;
      Result<std::unique_ptr<Database>> db =
          Database::Open("/db", engine, options);
      ASSERT_TRUE(db.ok());
      ASSERT_TRUE((*db)->ImportBase(Base("a.m -> 1.", engine)).ok());
      // An earlier checkpoint, so the torture'd one REPLACES a snapshot.
      ASSERT_TRUE((*db)->Checkpoint().ok());
      ASSERT_TRUE(
          (*db)->ImportBase(Base("a.m -> 1. b.m -> 2.", engine)).ok());
      expected = ObjectBaseToString((*db)->current(), engine.symbols(),
                                    engine.versions());
      FaultInjectingEnv::FaultPlan plan;
      plan.fail_at = 0;
      plan.kind = FaultKind::kCrash;
      plan.partial_bytes = w.partial;
      plan.filter = w.filter;
      env.SetPlan(plan);
      EXPECT_FALSE((*db)->Checkpoint().ok());
      ASSERT_TRUE(env.crashed());
    }
    auto disk = env.CloneSurvivingFiles();
    DatabaseOptions reopen;
    reopen.env = disk.get();
    reopen.retry_backoff_us = 0;
    Engine engine;
    Result<std::unique_ptr<Database>> db =
        Database::Open("/db", engine, reopen);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    EXPECT_EQ(ObjectBaseToString((*db)->current(), engine.symbols(),
                                 engine.versions()),
              expected);
    // The recovered database is fully writable again.
    EXPECT_TRUE(db->get()->health().ok());
    ASSERT_TRUE(
        (*db)->ImportBase(Base("a.m -> 1. b.m -> 2. c.m -> 3.", engine))
            .ok());
  }
}

TEST_F(StorageFixture, PageLogCheckpointCrashWindowLosesNothing) {
  // The page-log twin of CheckpointCrashWindowLosesNothing: here step (1)
  // is an APPEND of one ops frame to store.plog (possibly followed by a
  // compaction rewrite), step (2) the WAL removal. A torn append frame
  // must be chopped on reopen and the stale WAL replayed over the old
  // store generation.
  using FaultKind = FaultInjectingEnv::FaultKind;
  using OpFilter = FaultInjectingEnv::OpFilter;
  struct Window {
    OpFilter filter;
    size_t partial;
    const char* what;
  };
  const Window windows[] = {
      {OpFilter::kAppend, 0, "crash before the store append"},
      {OpFilter::kAppend, 7, "crash mid store append (torn frame)"},
      {OpFilter::kRemove, 0, "crash before the WAL removal"},
      {OpFilter::kRemove, 1, "crash after the WAL removal"},
  };
  for (const Window& w : windows) {
    SCOPED_TRACE(w.what);
    FaultInjectingEnv env;
    DatabaseOptions options;
    options.env = &env;
    options.retry_backoff_us = 0;
    options.store_backend = StoreBackend::kPageLog;
    std::string expected;
    {
      Engine engine;
      Result<std::unique_ptr<Database>> db =
          Database::Open("/db", engine, options);
      ASSERT_TRUE(db.ok());
      ASSERT_TRUE((*db)->ImportBase(Base("a.m -> 1.", engine)).ok());
      // An earlier checkpoint, so the torture'd one EXTENDS a live log.
      ASSERT_TRUE((*db)->Checkpoint().ok());
      ASSERT_TRUE(
          (*db)->ImportBase(Base("a.m -> 1. b.m -> 2.", engine)).ok());
      expected = ObjectBaseToString((*db)->current(), engine.symbols(),
                                    engine.versions());
      FaultInjectingEnv::FaultPlan plan;
      plan.fail_at = 0;
      plan.kind = FaultKind::kCrash;
      plan.partial_bytes = w.partial;
      plan.filter = w.filter;
      env.SetPlan(plan);
      EXPECT_FALSE((*db)->Checkpoint().ok());
      ASSERT_TRUE(env.crashed());
    }
    auto disk = env.CloneSurvivingFiles();
    DatabaseOptions reopen;
    reopen.env = disk.get();
    reopen.retry_backoff_us = 0;
    reopen.store_backend = StoreBackend::kPageLog;
    Engine engine;
    Result<std::unique_ptr<Database>> db =
        Database::Open("/db", engine, reopen);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    EXPECT_EQ(ObjectBaseToString((*db)->current(), engine.symbols(),
                                 engine.versions()),
              expected);
    EXPECT_TRUE(db->get()->health().ok());
    ASSERT_TRUE(
        (*db)->ImportBase(Base("a.m -> 1. b.m -> 2. c.m -> 3.", engine))
            .ok());
  }
}

TEST_F(StorageFixture, CheckpointBoundsRecoveryToTheWalSuffix) {
  // The acceptance property of the store rebase: a cold open after a
  // checkpoint replays ONLY the post-checkpoint WAL suffix (frame-count
  // metric), rebuilding the bulk of the base from the store's "b/" range
  // scan instead of the full commit history.
  Counter& frames = MetricsRegistry::Global().GetCounter(
      "storage.recovery_replayed_frames");
  Counter& store_keys =
      MetricsRegistry::Global().GetCounter("storage.recovery_store_keys");
  for (StoreBackend backend : {StoreBackend::kMem, StoreBackend::kPageLog}) {
    SCOPED_TRACE(StoreBackendName(backend));
    FaultInjectingEnv env;
    DatabaseOptions options;
    options.env = &env;
    options.retry_backoff_us = 0;
    options.store_backend = backend;
    std::string expected;
    {
      Engine engine;
      Result<std::unique_ptr<Database>> db =
          Database::Open("/db", engine, options);
      ASSERT_TRUE(db.ok());
      // 6 pre-checkpoint commits, then the fold, then a 2-commit suffix.
      std::string text;
      for (int i = 0; i < 6; ++i) {
        text += "o" + std::to_string(i) + ".m -> " + std::to_string(i) + ". ";
        ASSERT_TRUE((*db)->ImportBase(Base(text.c_str(), engine)).ok());
      }
      ASSERT_TRUE((*db)->Checkpoint().ok());
      EXPECT_EQ((*db)->checkpoint_generation(), 1u);
      for (int i = 6; i < 8; ++i) {
        text += "o" + std::to_string(i) + ".m -> " + std::to_string(i) + ". ";
        ASSERT_TRUE((*db)->ImportBase(Base(text.c_str(), engine)).ok());
      }
      EXPECT_EQ((*db)->wal_records_since_checkpoint(), 2u);
      expected = ObjectBaseToString((*db)->current(), engine.symbols(),
                                    engine.versions());
    }
    uint64_t frames_before = frames.value();
    uint64_t keys_before = store_keys.value();
    Engine engine;
    Result<std::unique_ptr<Database>> db =
        Database::Open("/db", engine, options);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    EXPECT_EQ((*db)->wal_records_since_checkpoint(), 2u);
    EXPECT_EQ(frames.value() - frames_before, 2u);  // suffix only
    EXPECT_EQ(store_keys.value() - keys_before, 6u);  // o0..o5 from store
    EXPECT_EQ((*db)->checkpoint_generation(), 1u);
    EXPECT_EQ(ObjectBaseToString((*db)->current(), engine.symbols(),
                                 engine.versions()),
              expected);
  }
}

TEST_F(StorageFixture, AutoCheckpointKeepsRecoveryReplayBounded) {
  // With checkpoint_wal_bytes armed, replay work at recovery stays
  // bounded no matter how many transactions commit: every commit that
  // pushes the WAL past the threshold folds it, so a cold open replays
  // at most the last unfolded suffix.
  Counter& frames = MetricsRegistry::Global().GetCounter(
      "storage.recovery_replayed_frames");
  Counter& autos =
      MetricsRegistry::Global().GetCounter("storage.auto_checkpoints");
  FaultInjectingEnv env;
  DatabaseOptions options;
  options.env = &env;
  options.retry_backoff_us = 0;
  options.store_backend = StoreBackend::kPageLog;
  options.checkpoint_wal_bytes = 256;
  std::string expected;
  {
    Engine engine;
    Result<std::unique_ptr<Database>> db =
        Database::Open("/db", engine, options);
    ASSERT_TRUE(db.ok());
    std::string text;
    size_t max_wal = 0;
    for (int i = 0; i < 40; ++i) {
      text += "o" + std::to_string(i) + ".m -> " + std::to_string(i) + ". ";
      ASSERT_TRUE((*db)->ImportBase(Base(text.c_str(), engine)).ok());
      max_wal = std::max(max_wal, (*db)->wal_bytes_since_checkpoint());
    }
    // The WAL never accumulates past one commit beyond the threshold
    // (each commit's frame is a few hundred bytes here).
    EXPECT_LT(max_wal, options.checkpoint_wal_bytes + 2048);
    EXPECT_GT((*db)->checkpoint_generation(), 2u);
    EXPECT_GT(autos.value(), 2u);
    expected = ObjectBaseToString((*db)->current(), engine.symbols(),
                                  engine.versions());
  }
  uint64_t frames_before = frames.value();
  Engine engine;
  Result<std::unique_ptr<Database>> db =
      Database::Open("/db", engine, options);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  // 40 commits happened; recovery replays at most a couple of frames.
  EXPECT_LE(frames.value() - frames_before, 2u);
  EXPECT_EQ(ObjectBaseToString((*db)->current(), engine.symbols(),
                               engine.versions()),
            expected);

  // Unarmed (the default), the same workload folds nothing.
  FaultInjectingEnv manual_env;
  DatabaseOptions manual;
  manual.env = &manual_env;
  manual.retry_backoff_us = 0;
  Engine manual_engine;
  Result<std::unique_ptr<Database>> manual_db =
      Database::Open("/db", manual_engine, manual);
  ASSERT_TRUE(manual_db.ok());
  std::string text;
  for (int i = 0; i < 10; ++i) {
    text += "o" + std::to_string(i) + ".m -> " + std::to_string(i) + ". ";
    ASSERT_TRUE(
        (*manual_db)->ImportBase(Base(text.c_str(), manual_engine)).ok());
  }
  EXPECT_EQ((*manual_db)->wal_records_since_checkpoint(), 10u);
  EXPECT_EQ((*manual_db)->checkpoint_generation(), 0u);
}

TEST_F(StorageFixture, LegacySnapshotDirectoryUpgradesToStoreOnCheckpoint) {
  // A directory checkpointed before the store subsystem existed holds
  // snapshot.vsnp + wal.log. It must recover as-is, and the next
  // Checkpoint() must supersede the legacy image with a store generation
  // (removing the old file).
  FaultInjectingEnv env;
  std::string expected;
  {
    Engine engine;
    ObjectBase base = Base("a.m -> 1. b.m -> 2.", engine);
    ASSERT_TRUE(WriteSnapshot("/db/snapshot.vsnp", base, engine.symbols(),
                              engine.versions(), &env)
                    .ok());
    expected = ObjectBaseToString(base, engine.symbols(), engine.versions());
  }
  DatabaseOptions options;
  options.env = &env;
  options.retry_backoff_us = 0;
  {
    Engine engine;
    Result<std::unique_ptr<Database>> db =
        Database::Open("/db", engine, options);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    EXPECT_EQ(ObjectBaseToString((*db)->current(), engine.symbols(),
                                 engine.versions()),
              expected);
    EXPECT_EQ((*db)->checkpoint_generation(), 0u);  // pre-store dir
    ASSERT_TRUE((*db)->Checkpoint().ok());
    EXPECT_EQ((*db)->checkpoint_generation(), 1u);
    EXPECT_FALSE(env.FileExists("/db/snapshot.vsnp"));
    EXPECT_TRUE(env.FileExists("/db/store.img"));
  }
  Engine engine;
  Result<std::unique_ptr<Database>> db =
      Database::Open("/db", engine, options);
  ASSERT_TRUE(db.ok());
  EXPECT_EQ((*db)->checkpoint_generation(), 1u);
  EXPECT_EQ(ObjectBaseToString((*db)->current(), engine.symbols(),
                               engine.versions()),
            expected);
}

TEST_F(StorageFixture, FailedProgramLeavesDatabaseUntouched) {
  std::string dbdir = dir_ + "/db3";
  Engine engine;
  Result<std::unique_ptr<Database>> db = Database::Open(dbdir, engine);
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE((*db)->ImportBase(Base("o.m -> a.", engine)).ok());
  // Non-linear program: Execute fails, current() unchanged.
  Result<Program> bad = ParseProgram(
      "r1: mod[o].m -> (a, b) <- o.m -> a."
      "r2: del[o].m -> a <- o.m -> a.", engine);
  ASSERT_TRUE(bad.ok());
  size_t records = (*db)->wal_records_since_checkpoint();
  Result<RunOutcome> out = (*db)->Execute(*bad);
  EXPECT_FALSE(out.ok());
  EXPECT_EQ((*db)->wal_records_since_checkpoint(), records);
  Vid o = engine.versions().OfOid(engine.symbols().Symbol("o"));
  GroundApp m;
  m.result = engine.symbols().Symbol("a");
  EXPECT_TRUE((*db)->current().Contains(o, engine.symbols().Method("m"), m));
}

}  // namespace
}  // namespace verso
