// Regression tests for commit-shape-independent trace emission: a
// TraceSink (and therefore the metrics bridge built on it) must hear the
// SAME event stream for a group of transactions whether they commit one
// by one through Execute or together through ExecuteBatch — including
// members that converge in round 0, naive-mode evaluation (which has no
// semi-naive rounds), and strata that never touch the index.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/trace.h"
#include "parser/parser.h"
#include "storage/database.h"

namespace verso {
namespace {

/// Records the evaluation-shaped events as comparable strings.
class EventLog : public TraceSink {
 public:
  void OnStratumBegin(uint32_t stratum, size_t rule_count) override {
    Add("begin s" + std::to_string(stratum) + " rules=" +
        std::to_string(rule_count));
  }
  void OnRoundBegin(uint32_t stratum, uint32_t round) override {
    Add("round s" + std::to_string(stratum) + " r" + std::to_string(round));
  }
  void OnDeltaRound(uint32_t stratum, uint32_t round, size_t delta_facts,
                    size_t seed_probes, size_t residual_rules) override {
    Add("delta s" + std::to_string(stratum) + " r" + std::to_string(round) +
        " facts=" + std::to_string(delta_facts) + " seeds=" +
        std::to_string(seed_probes) + " residual=" +
        std::to_string(residual_rules));
  }
  void OnIndexUse(uint32_t stratum, size_t probes, size_t hits,
                  size_t avoided_facts) override {
    Add("index s" + std::to_string(stratum) + " probes=" +
        std::to_string(probes) + " hits=" + std::to_string(hits) +
        " avoided=" + std::to_string(avoided_facts));
  }
  void OnStratumFixpoint(uint32_t stratum, uint32_t rounds) override {
    Add("fixpoint s" + std::to_string(stratum) + " rounds=" +
        std::to_string(rounds));
  }

  const std::vector<std::string>& lines() const { return lines_; }
  size_t Count(const std::string& prefix) const {
    size_t n = 0;
    for (const std::string& line : lines_) {
      if (line.compare(0, prefix.size(), prefix) == 0) ++n;
    }
    return n;
  }

 private:
  void Add(std::string line) { lines_.push_back(std::move(line)); }
  std::vector<std::string> lines_;
};

// The middle member's body never matches: it evaluates, converges in
// round 0, and commits nothing — the shape that used to be invisible to
// per-commit index accounting.
const char* const kMembers[] = {
    "t1: ins[ann].sal -> 1000.",
    "t2: ins[ann].bonus -> B <- ann.nosuch -> B.",  // no-op member
    "t3: mod[E].sal -> (S, S2) <- E.sal -> S, S2 = S * 2.",
};

std::vector<std::string> RunSequential(const EvalOptions& options) {
  Engine engine;
  std::unique_ptr<Database> db =
      std::move(Database::OpenInMemory(engine)).value();
  EventLog log;
  for (const char* text : kMembers) {
    Result<Program> program = ParseProgram(text, engine);
    EXPECT_TRUE(program.ok()) << program.status().ToString();
    EXPECT_TRUE(db->Execute(*program, options, &log).ok()) << text;
  }
  return log.lines();
}

std::vector<std::string> RunBatched(const EvalOptions& options) {
  Engine engine;
  std::unique_ptr<Database> db =
      std::move(Database::OpenInMemory(engine)).value();
  EventLog log;
  std::vector<Program> programs;
  std::vector<Program*> pointers;
  for (const char* text : kMembers) {
    Result<Program> program = ParseProgram(text, engine);
    EXPECT_TRUE(program.ok()) << program.status().ToString();
    programs.push_back(std::move(*program));
  }
  for (Program& program : programs) pointers.push_back(&program);
  EXPECT_TRUE(db->ExecuteBatch(pointers, options, &log).ok());
  return log.lines();
}

TEST(BatchTraceConsistencyTest, BatchAndSequentialEmitIdenticalStreams) {
  EXPECT_EQ(RunSequential(EvalOptions()), RunBatched(EvalOptions()));
}

TEST(BatchTraceConsistencyTest,
     BatchAndSequentialEmitIdenticalStreamsInNaiveMode) {
  EvalOptions naive;
  naive.semi_naive = false;
  EXPECT_EQ(RunSequential(naive), RunBatched(naive));
}

TEST(BatchTraceConsistencyTest, RoundZeroConvergingCommitStillReportsIndex) {
  Engine engine;
  std::unique_ptr<Database> db =
      std::move(Database::OpenInMemory(engine)).value();
  Result<Program> first = ParseProgram("t: ins[ann].sal -> 1000.", engine);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(db->Execute(*first).ok());

  // A rule whose body never matches derives nothing: the fixpoint
  // converges in round 0, so no OnDeltaRound — but OnIndexUse must still
  // arrive, with zero probes, once per stratum, so per-commit coverage
  // is shape-independent.
  EventLog log;
  Result<Program> again =
      ParseProgram("t: ins[ann].bonus -> B <- ann.nosuch -> B.", engine);
  ASSERT_TRUE(again.ok());
  ASSERT_TRUE(db->Execute(*again, EvalOptions(), &log).ok());
  EXPECT_EQ(log.Count("delta"), 0u);
  EXPECT_EQ(log.Count("index"), log.Count("fixpoint"));
  EXPECT_GE(log.Count("index"), 1u);
  EXPECT_EQ(log.Count("index s0 probes=0"), log.Count("index"));
}

// The parallel path must not perturb the trace stream: workers never
// talk to the sink directly — emission stays funneled through the
// serial merge — so OnDeltaRound/OnIndexUse/... sequences are
// thread-count-invariant, both per-commit and batched.
TEST(BatchTraceConsistencyTest, ParallelEvaluationEmitsIdenticalStreams) {
  EvalOptions parallel;
  parallel.num_threads = 4;
  parallel.admit_parallel = [](const Program&,
                               const std::vector<uint32_t>&) { return true; };
  EXPECT_EQ(RunSequential(EvalOptions()), RunSequential(parallel));
  EXPECT_EQ(RunSequential(EvalOptions()), RunBatched(parallel));
}

// Same invariant on a fixpoint wide enough to actually cross the
// fan-out thresholds (hundreds of delta facts per round), so the
// parallel lane genuinely dispatches to workers while tracing.
TEST(BatchTraceConsistencyTest, WideParallelFixpointKeepsTheStream) {
  auto run = [](int num_threads) {
    Engine engine;
    std::unique_ptr<Database> db =
        std::move(Database::OpenInMemory(engine)).value();
    std::string base;
    for (int i = 0; i < 24; ++i) {
      std::string n = "n" + std::to_string(i);
      base += "a" + std::to_string(i) + ": ins[" + n + "].next -> n" +
              std::to_string((i + 1) % 24) + ".";
      base += "b" + std::to_string(i) + ": ins[" + n + "].next -> n" +
              std::to_string((i * 7 + 3) % 24) + ".";
    }
    Result<Program> seed = ParseProgram(base, engine);
    EXPECT_TRUE(seed.ok()) << seed.status().ToString();
    EXPECT_TRUE(db->Execute(*seed).ok());

    EvalOptions options;
    options.num_threads = num_threads;
    options.admit_parallel =
        [](const Program&, const std::vector<uint32_t>&) { return true; };
    EventLog log;
    Result<Program> reach = ParseProgram(
        "r1: ins[X].reach -> Y <- X.next -> Y."
        "r2: ins[X].reach -> Z <- ins(X).reach -> Y, Y.next -> Z.",
        engine);
    EXPECT_TRUE(reach.ok()) << reach.status().ToString();
    EXPECT_TRUE(db->Execute(*reach, options, &log).ok());
    return log.lines();
  };
  std::vector<std::string> serial = run(0);
  EXPECT_GE(serial.size(), 4u);  // a real multi-round stream
  EXPECT_EQ(serial, run(4));
}

TEST(BatchTraceConsistencyTest, NaiveModeEmitsDeltaRounds) {
  Engine engine;
  std::unique_ptr<Database> db =
      std::move(Database::OpenInMemory(engine)).value();
  Result<Program> seed = ParseProgram("t: ins[ann].sal -> 1000.", engine);
  ASSERT_TRUE(seed.ok());
  ASSERT_TRUE(db->Execute(*seed).ok());

  // Naive evaluation has no semi-naive rounds, but every consumed round
  // still notifies (seed_probes reported as 0, full re-matches as
  // residual runs) — the metrics bridge hears rounds in both modes.
  EvalOptions naive;
  naive.semi_naive = false;
  EventLog log;
  Result<Program> mod =
      ParseProgram("t: mod[E].sal -> (S, S2) <- E.sal -> S, S2 = S * 2.",
                   engine);
  ASSERT_TRUE(mod.ok());
  ASSERT_TRUE(db->Execute(*mod, naive, &log).ok());
  EXPECT_GE(log.Count("delta"), 1u);
  for (const std::string& line : log.lines()) {
    if (line.compare(0, 5, "delta") == 0) {
      EXPECT_NE(line.find("seeds=0"), std::string::npos) << line;
    }
  }
}

}  // namespace
}  // namespace verso
