// Regression tests for commit-shape-independent trace emission: a
// TraceSink (and therefore the metrics bridge built on it) must hear the
// SAME event stream for a group of transactions whether they commit one
// by one through Execute or together through ExecuteBatch — including
// members that converge in round 0, naive-mode evaluation (which has no
// semi-naive rounds), and strata that never touch the index.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/trace.h"
#include "parser/parser.h"
#include "storage/database.h"

namespace verso {
namespace {

/// Records the evaluation-shaped events as comparable strings.
class EventLog : public TraceSink {
 public:
  void OnStratumBegin(uint32_t stratum, size_t rule_count) override {
    Add("begin s" + std::to_string(stratum) + " rules=" +
        std::to_string(rule_count));
  }
  void OnRoundBegin(uint32_t stratum, uint32_t round) override {
    Add("round s" + std::to_string(stratum) + " r" + std::to_string(round));
  }
  void OnDeltaRound(uint32_t stratum, uint32_t round, size_t delta_facts,
                    size_t seed_probes, size_t residual_rules) override {
    Add("delta s" + std::to_string(stratum) + " r" + std::to_string(round) +
        " facts=" + std::to_string(delta_facts) + " seeds=" +
        std::to_string(seed_probes) + " residual=" +
        std::to_string(residual_rules));
  }
  void OnIndexUse(uint32_t stratum, size_t probes, size_t hits,
                  size_t avoided_facts) override {
    Add("index s" + std::to_string(stratum) + " probes=" +
        std::to_string(probes) + " hits=" + std::to_string(hits) +
        " avoided=" + std::to_string(avoided_facts));
  }
  void OnStratumFixpoint(uint32_t stratum, uint32_t rounds) override {
    Add("fixpoint s" + std::to_string(stratum) + " rounds=" +
        std::to_string(rounds));
  }

  const std::vector<std::string>& lines() const { return lines_; }
  size_t Count(const std::string& prefix) const {
    size_t n = 0;
    for (const std::string& line : lines_) {
      if (line.compare(0, prefix.size(), prefix) == 0) ++n;
    }
    return n;
  }

 private:
  void Add(std::string line) { lines_.push_back(std::move(line)); }
  std::vector<std::string> lines_;
};

// The middle member's body never matches: it evaluates, converges in
// round 0, and commits nothing — the shape that used to be invisible to
// per-commit index accounting.
const char* const kMembers[] = {
    "t1: ins[ann].sal -> 1000.",
    "t2: ins[ann].bonus -> B <- ann.nosuch -> B.",  // no-op member
    "t3: mod[E].sal -> (S, S2) <- E.sal -> S, S2 = S * 2.",
};

std::vector<std::string> RunSequential(const EvalOptions& options) {
  Engine engine;
  std::unique_ptr<Database> db =
      std::move(Database::OpenInMemory(engine)).value();
  EventLog log;
  for (const char* text : kMembers) {
    Result<Program> program = ParseProgram(text, engine);
    EXPECT_TRUE(program.ok()) << program.status().ToString();
    EXPECT_TRUE(db->Execute(*program, options, &log).ok()) << text;
  }
  return log.lines();
}

std::vector<std::string> RunBatched(const EvalOptions& options) {
  Engine engine;
  std::unique_ptr<Database> db =
      std::move(Database::OpenInMemory(engine)).value();
  EventLog log;
  std::vector<Program> programs;
  std::vector<Program*> pointers;
  for (const char* text : kMembers) {
    Result<Program> program = ParseProgram(text, engine);
    EXPECT_TRUE(program.ok()) << program.status().ToString();
    programs.push_back(std::move(*program));
  }
  for (Program& program : programs) pointers.push_back(&program);
  EXPECT_TRUE(db->ExecuteBatch(pointers, options, &log).ok());
  return log.lines();
}

TEST(BatchTraceConsistencyTest, BatchAndSequentialEmitIdenticalStreams) {
  EXPECT_EQ(RunSequential(EvalOptions()), RunBatched(EvalOptions()));
}

TEST(BatchTraceConsistencyTest,
     BatchAndSequentialEmitIdenticalStreamsInNaiveMode) {
  EvalOptions naive;
  naive.semi_naive = false;
  EXPECT_EQ(RunSequential(naive), RunBatched(naive));
}

TEST(BatchTraceConsistencyTest, RoundZeroConvergingCommitStillReportsIndex) {
  Engine engine;
  std::unique_ptr<Database> db =
      std::move(Database::OpenInMemory(engine)).value();
  Result<Program> first = ParseProgram("t: ins[ann].sal -> 1000.", engine);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(db->Execute(*first).ok());

  // A rule whose body never matches derives nothing: the fixpoint
  // converges in round 0, so no OnDeltaRound — but OnIndexUse must still
  // arrive, with zero probes, once per stratum, so per-commit coverage
  // is shape-independent.
  EventLog log;
  Result<Program> again =
      ParseProgram("t: ins[ann].bonus -> B <- ann.nosuch -> B.", engine);
  ASSERT_TRUE(again.ok());
  ASSERT_TRUE(db->Execute(*again, EvalOptions(), &log).ok());
  EXPECT_EQ(log.Count("delta"), 0u);
  EXPECT_EQ(log.Count("index"), log.Count("fixpoint"));
  EXPECT_GE(log.Count("index"), 1u);
  EXPECT_EQ(log.Count("index s0 probes=0"), log.Count("index"));
}

TEST(BatchTraceConsistencyTest, NaiveModeEmitsDeltaRounds) {
  Engine engine;
  std::unique_ptr<Database> db =
      std::move(Database::OpenInMemory(engine)).value();
  Result<Program> seed = ParseProgram("t: ins[ann].sal -> 1000.", engine);
  ASSERT_TRUE(seed.ok());
  ASSERT_TRUE(db->Execute(*seed).ok());

  // Naive evaluation has no semi-naive rounds, but every consumed round
  // still notifies (seed_probes reported as 0, full re-matches as
  // residual runs) — the metrics bridge hears rounds in both modes.
  EvalOptions naive;
  naive.semi_naive = false;
  EventLog log;
  Result<Program> mod =
      ParseProgram("t: mod[E].sal -> (S, S2) <- E.sal -> S, S2 = S * 2.",
                   engine);
  ASSERT_TRUE(mod.ok());
  ASSERT_TRUE(db->Execute(*mod, naive, &log).ok());
  EXPECT_GE(log.Count("delta"), 1u);
  for (const std::string& line : log.lines()) {
    if (line.compare(0, 5, "delta") == 0) {
      EXPECT_NE(line.find("seeds=0"), std::string::npos) << line;
    }
  }
}

}  // namespace
}  // namespace verso
