// Degraded (read-only) mode and the transient-retry commit path: a WAL
// append that fails permanently (or exhausts its retry budget) must leave
// the database serving reads, refusing writes with kReadOnly, and
// reporting the cause — never half-committed, never crashed.

#include <gtest/gtest.h>

#include "api/api.h"
#include "core/pretty.h"
#include "core/trace.h"
#include "parser/parser.h"
#include "storage/database.h"
#include "storage/wal.h"
#include "util/clock.h"
#include "util/fault_env.h"

namespace verso {
namespace {

using FaultKind = FaultInjectingEnv::FaultKind;
using OpFilter = FaultInjectingEnv::OpFilter;

constexpr const char* kDir = "/db";

DatabaseOptions FastRetryOptions(Env* env) {
  DatabaseOptions options;
  options.env = env;
  options.retry_backoff_us = 0;  // no sleeping in tests
  return options;
}

class DegradedFixture : public ::testing::Test {
 protected:
  std::unique_ptr<Database> OpenDb(Engine& engine, DatabaseOptions options) {
    Result<std::unique_ptr<Database>> db =
        Database::Open(kDir, engine, options);
    EXPECT_TRUE(db.ok()) << db.status().ToString();
    return std::move(db).value();
  }

  Status Commit(Database& db, Engine& engine, const char* text) {
    Result<Program> program = ParseProgram(text, engine);
    EXPECT_TRUE(program.ok()) << program.status().ToString();
    return db.Execute(*program).status();
  }

  FaultInjectingEnv env_;
};

TEST_F(DegradedFixture, PermanentAppendFailureEntersDegradedMode) {
  Engine engine;
  std::unique_ptr<Database> db = OpenDb(engine, FastRetryOptions(&env_));
  ASSERT_TRUE(Commit(*db, engine, "t: ins[a].m -> 1.").ok());
  std::string before =
      ObjectBaseToString(db->current(), engine.symbols(), engine.versions());

  FaultInjectingEnv::FaultPlan plan;
  plan.fail_at = 0;
  plan.kind = FaultKind::kEnospc;
  plan.filter = OpFilter::kAppend;
  env_.SetPlan(plan);
  Status failed = Commit(*db, engine, "t: ins[b].m -> 2.");
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.code(), StatusCode::kIoError);

  // Degraded: sticky cause, counted once, and the failed commit is NOT
  // half-installed — the in-memory base still equals the pre-failure one.
  EXPECT_FALSE(db->health().ok());
  EXPECT_EQ(db->stats().degraded_entered, 1u);
  EXPECT_EQ(db->stats().io_failures, 1u);
  EXPECT_EQ(db->stats().retries, 0u);  // permanent errors never retry
  EXPECT_EQ(
      ObjectBaseToString(db->current(), engine.symbols(), engine.versions()),
      before);

  // Every further write — Execute, ImportBase, Checkpoint — is kReadOnly.
  env_.Disarm();
  Status readonly = Commit(*db, engine, "t: ins[c].m -> 3.");
  ASSERT_FALSE(readonly.ok());
  EXPECT_EQ(readonly.code(), StatusCode::kReadOnly);
  EXPECT_EQ(db->Checkpoint().code(), StatusCode::kReadOnly);
  EXPECT_EQ(db->stats().degraded_entered, 1u);  // still once

  // Reads keep serving the last committed state.
  EXPECT_EQ(
      ObjectBaseToString(db->current(), engine.symbols(), engine.versions()),
      before);

  // Reopen recovers: the handle-level degradation is not on disk.
  db = OpenDb(engine, FastRetryOptions(&env_));
  EXPECT_TRUE(db->health().ok());
  ASSERT_TRUE(Commit(*db, engine, "t: ins[c].m -> 3.").ok());
}

TEST_F(DegradedFixture, TransientAppendFailureRetriesAndSucceeds) {
  Engine engine;
  std::unique_ptr<Database> db = OpenDb(engine, FastRetryOptions(&env_));
  ASSERT_TRUE(Commit(*db, engine, "t: ins[a].m -> 1.").ok());

  // Two consecutive transient failures, each leaving a partial frame the
  // retry must roll back; the third attempt succeeds.
  FaultInjectingEnv::FaultPlan plan;
  plan.fail_at = 0;
  plan.repeat = 2;
  plan.kind = FaultKind::kTransient;
  plan.partial_bytes = 5;  // short write: garbage lands before the error
  plan.filter = OpFilter::kAppend;
  env_.SetPlan(plan);
  ASSERT_TRUE(Commit(*db, engine, "t: ins[b].m -> 2.").ok());
  EXPECT_TRUE(db->health().ok());
  EXPECT_EQ(db->stats().io_failures, 2u);
  EXPECT_EQ(db->stats().retries, 2u);
  EXPECT_EQ(db->stats().degraded_entered, 0u);

  // The rollback worked: the log parses cleanly (no torn frames between
  // records) and a reopened database sees both commits.
  Result<WalReadResult> wal = ReadWal(std::string(kDir) + "/wal.log", &env_);
  ASSERT_TRUE(wal.ok());
  EXPECT_FALSE(wal->truncated_tail);
  Engine engine2;
  std::unique_ptr<Database> reopened =
      OpenDb(engine2, FastRetryOptions(&env_));
  EXPECT_FALSE(reopened->recovered_from_torn_wal());
  EXPECT_EQ(ObjectBaseToString(reopened->current(), engine2.symbols(),
                               engine2.versions()),
            ObjectBaseToString(db->current(), engine.symbols(),
                               engine.versions()));
}

TEST_F(DegradedFixture, TransientRetryExhaustionDegrades) {
  Engine engine;
  DatabaseOptions options = FastRetryOptions(&env_);
  options.wal_retry_limit = 2;
  std::unique_ptr<Database> db = OpenDb(engine, options);
  ASSERT_TRUE(Commit(*db, engine, "t: ins[a].m -> 1.").ok());

  // The device stays flaky longer than the retry budget: first try plus
  // two retries all fail, and the database gives up into degraded mode.
  FaultInjectingEnv::FaultPlan plan;
  plan.fail_at = 0;
  plan.repeat = 3;
  plan.kind = FaultKind::kTransient;
  plan.filter = OpFilter::kAppend;
  env_.SetPlan(plan);
  Status failed = Commit(*db, engine, "t: ins[b].m -> 2.");
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.code(), StatusCode::kIoTransient);
  EXPECT_FALSE(db->health().ok());
  EXPECT_EQ(db->stats().io_failures, 3u);
  EXPECT_EQ(db->stats().retries, 2u);
  EXPECT_EQ(db->stats().degraded_entered, 1u);
}

TEST_F(DegradedFixture, StorageFaultsReachTheTraceSink) {
  Engine engine;
  RecordingTrace trace(engine.symbols(), engine.versions());
  DatabaseOptions options = FastRetryOptions(&env_);
  options.wal_retry_limit = 1;
  options.trace = &trace;
  std::unique_ptr<Database> db = OpenDb(engine, options);

  FaultInjectingEnv::FaultPlan plan;
  plan.fail_at = 0;
  plan.repeat = 2;
  plan.kind = FaultKind::kTransient;
  plan.filter = OpFilter::kAppend;
  env_.SetPlan(plan);
  ASSERT_FALSE(Commit(*db, engine, "t: ins[a].m -> 1.").ok());
  // One line per failed attempt, the last marked as the degrading one.
  ASSERT_EQ(trace.lines().size(), 2u);
  EXPECT_NE(trace.lines()[0].find("storage fault on wal-append (attempt 0)"),
            std::string::npos);
  EXPECT_EQ(trace.lines()[0].find("DEGRADED"), std::string::npos);
  EXPECT_NE(trace.lines()[1].find("attempt 1"), std::string::npos);
  EXPECT_NE(trace.lines()[1].find("DEGRADED (read-only)"), std::string::npos);
}

TEST_F(DegradedFixture, FailedCheckpointLeavesDatabaseHealthy) {
  Engine engine;
  std::unique_ptr<Database> db = OpenDb(engine, FastRetryOptions(&env_));
  ASSERT_TRUE(Commit(*db, engine, "t: ins[a].m -> 1.").ok());

  // Snapshot write fails (ENOSPC): nothing lost, still writable.
  FaultInjectingEnv::FaultPlan plan;
  plan.fail_at = 0;
  plan.kind = FaultKind::kEnospc;
  plan.filter = OpFilter::kWrite;
  env_.SetPlan(plan);
  EXPECT_FALSE(db->Checkpoint().ok());
  EXPECT_TRUE(db->health().ok());
  EXPECT_EQ(db->stats().io_failures, 1u);
  EXPECT_GT(db->wal_records_since_checkpoint(), 0u);
  env_.Disarm();
  ASSERT_TRUE(Commit(*db, engine, "t: ins[b].m -> 2.").ok());
  ASSERT_TRUE(db->Checkpoint().ok());
}

// ---- Connection-level degraded mode ---------------------------------------

TEST(DegradedConnectionTest, ReadsAndSubscriptionsSurviveDegradedMode) {
  FaultInjectingEnv env;
  ConnectionOptions options;
  options.env = &env;
  options.retry_backoff_us = 0;
  Result<std::unique_ptr<Connection>> conn = Connection::Open(kDir, options);
  ASSERT_TRUE(conn.ok()) << conn.status().ToString();
  auto session = (*conn)->OpenSession();
  ASSERT_TRUE(session->Execute("t: ins[ann].sal -> 2000.").ok());
  ASSERT_TRUE(session
                  ->Execute("CREATE VIEW rich AS derive X.rich -> yes <- "
                            "X.sal -> S, S > 1000.")
                  .ok());
  std::vector<ViewDelta> deltas;
  ASSERT_TRUE(session
                  ->Subscribe("rich",
                              [&deltas](const ViewDelta& d) {
                                deltas.push_back(d);
                              })
                  .ok());
  ASSERT_TRUE(session->Execute("t: ins[bob].sal -> 3000.").ok());
  ASSERT_EQ(deltas.size(), 1u);

  // A reader pinned BEFORE the failure.
  auto pinned = (*conn)->OpenSession();
  Result<ResultSet> pinned_rich = pinned->Execute("QUERY rich");
  ASSERT_TRUE(pinned_rich.ok());
  EXPECT_EQ(pinned_rich->size(), 2u);  // ann and bob

  FaultInjectingEnv::FaultPlan plan;
  plan.fail_at = 0;
  plan.kind = FaultKind::kEio;
  plan.filter = OpFilter::kAppend;
  env.SetPlan(plan);
  Result<ResultSet> failed = session->Execute("t: ins[cal].sal -> 4000.");
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.status().code(), StatusCode::kIoError);
  env.Disarm();

  // The connection is degraded and says why.
  EXPECT_FALSE((*conn)->health().ok());
  EXPECT_EQ((*conn)->storage_stats().degraded_entered, 1u);

  // Further writes — Execute, ImportText, Checkpoint — refuse as
  // kReadOnly without touching state or crashing.
  EXPECT_EQ(session->Execute("t: ins[dee].sal -> 5000.").status().code(),
            StatusCode::kReadOnly);
  EXPECT_EQ((*conn)->ImportText("eve.sal -> 6000.").code(),
            StatusCode::kReadOnly);
  EXPECT_EQ((*conn)->Checkpoint().code(), StatusCode::kReadOnly);

  // Reads keep serving the last committed state: the pinned session, a
  // FRESH session, and the view all still answer.
  EXPECT_TRUE(pinned->Execute("QUERY rich").ok());
  auto fresh = (*conn)->OpenSession();
  Result<ResultSet> after = fresh->Execute("QUERY rich");
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->size(), 2u);  // cal never committed
  // No phantom subscription delivery for the refused/failed writes.
  EXPECT_EQ(deltas.size(), 1u);
}

TEST(DegradedConnectionTest, ConnectionRetriesTransientAppends) {
  FaultInjectingEnv env;
  ConnectionOptions options;
  options.env = &env;
  options.retry_backoff_us = 0;
  options.wal_retry_limit = 3;
  Result<std::unique_ptr<Connection>> conn = Connection::Open(kDir, options);
  ASSERT_TRUE(conn.ok());
  auto session = (*conn)->OpenSession();

  FaultInjectingEnv::FaultPlan plan;
  plan.fail_at = 0;
  plan.repeat = 2;
  plan.kind = FaultKind::kTransient;
  plan.partial_bytes = 3;
  plan.filter = OpFilter::kAppend;
  env.SetPlan(plan);
  ASSERT_TRUE(session->Execute("t: ins[ann].sal -> 2000.").ok());
  EXPECT_TRUE((*conn)->health().ok());
  EXPECT_EQ((*conn)->storage_stats().retries, 2u);
  EXPECT_EQ((*conn)->storage_stats().io_failures, 2u);
}

TEST_F(DegradedFixture, TransientRetryBackoffFollowsExponentialSchedule) {
  // The backoff sleeps through the Clock seam: a FakeClock makes the
  // exponential schedule observable (and the test instant) instead of
  // actually waiting out retry_backoff_us << attempt.
  Engine engine;
  FakeClock clock;
  DatabaseOptions options;
  options.env = &env_;
  options.retry_backoff_us = 100;
  options.clock = &clock;
  std::unique_ptr<Database> db = OpenDb(engine, options);
  ASSERT_TRUE(Commit(*db, engine, "t: ins[a].m -> 1.").ok());
  EXPECT_TRUE(clock.sleeps().empty());  // the success path never sleeps

  FaultInjectingEnv::FaultPlan plan;
  plan.fail_at = 0;
  plan.repeat = 3;
  plan.kind = FaultKind::kTransient;
  plan.filter = OpFilter::kAppend;
  env_.SetPlan(plan);
  ASSERT_TRUE(Commit(*db, engine, "t: ins[b].m -> 2.").ok());
  EXPECT_EQ(db->stats().retries, 3u);
  // Attempt k (1-based after the failure that triggers it) sleeps
  // retry_backoff_us << k: 200, 400, 800 µs.
  EXPECT_EQ(clock.sleeps(), (std::vector<uint64_t>{200, 400, 800}));
  EXPECT_EQ(clock.slept_micros_total(), 1400u);
}

}  // namespace
}  // namespace verso
