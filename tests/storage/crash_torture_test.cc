// Crash-recovery torture harness: a randomized workload runs against a
// FaultInjectingEnv, a crash is injected at EVERY mutating I/O point (and
// at every WAL byte-prefix), the database is reopened from the surviving
// disk image, and the recovered state — committed base, view results,
// subscription replay — must equal EXACTLY the state after some prefix of
// the committed transactions (atomicity), with that prefix covering every
// acknowledged commit (durability). Mid-Checkpoint crashes are part of
// the sweep: the workload checkpoints halfway through.
//
// Scaling knobs (environment variables, for CI sampling vs exhaustive
// local runs — see .github/workflows/ci.yml):
//   VERSO_TORTURE_SEED           workload seed            (default 12345)
//   VERSO_TORTURE_OP_STRIDE      crash-op sampling stride (default 1)
//   VERSO_TORTURE_PREFIX_STRIDE  WAL byte-prefix stride   (default 1)
//   VERSO_TORTURE_BACKEND        "mem" / "pagelog"        (default: both)

#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "api/api.h"
#include "core/pretty.h"
#include "util/fault_env.h"

namespace verso {
namespace {

using FaultKind = FaultInjectingEnv::FaultKind;

constexpr const char* kDir = "/db";
constexpr const char* kViewDdl =
    "CREATE VIEW rich AS derive X.rich -> yes <- X.sal -> S, S > 1000.";

uint64_t EnvKnob(const char* name, uint64_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  char* end = nullptr;
  unsigned long long parsed = std::strtoull(value, &end, 10);
  return (end != value && parsed > 0) ? parsed : fallback;
}

/// Deterministic PRNG (the harness must replay byte-identically for a
/// given seed — std::rand and friends are off the table).
struct Lcg {
  uint64_t state;
  uint32_t Next(uint32_t bound) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return static_cast<uint32_t>((state >> 33) % bound);
  }
};

/// A seed-derived transaction script over a handful of objects: inserts,
/// salary bumps crossing the view threshold, and deletes. del on a
/// since-deleted object is a deliberate no-op transaction (commits no WAL
/// record), so the expected-state sequence contains equal neighbors —
/// recovery must cope with that too.
std::vector<std::string> MakeWorkload(uint64_t seed) {
  Lcg rng{seed * 2 + 1};
  std::vector<std::string> txns;
  std::vector<int> live;
  int next_obj = 0;
  constexpr int kTxns = 12;
  for (int i = 0; i < kTxns; ++i) {
    uint32_t kind = live.empty() ? 0 : rng.Next(4);
    if (kind <= 1) {  // insert a fresh object
      int obj = next_obj++;
      int sal = 500 + 700 * static_cast<int>(rng.Next(4));  // straddles 1000
      txns.push_back("t: ins[o" + std::to_string(obj) + "].sal -> " +
                     std::to_string(sal) + ".");
      live.push_back(obj);
    } else if (kind == 2) {  // bump an existing object's salary
      int obj = live[rng.Next(static_cast<uint32_t>(live.size()))];
      txns.push_back("t: mod[o" + std::to_string(obj) +
                     "].sal -> (S, S2) <- o" + std::to_string(obj) +
                     ".sal -> S, S2 = S + 800.");
    } else {  // delete an object's salary facts (maybe already gone)
      int obj = live[rng.Next(static_cast<uint32_t>(live.size()))];
      txns.push_back("t: del[o" + std::to_string(obj) + "].sal -> S <- o" +
                     std::to_string(obj) + ".sal -> S.");
    }
  }
  return txns;
}

/// Backends the sweep runs against — both by default, narrowable via the
/// VERSO_TORTURE_BACKEND knob so CI can split them across matrix jobs.
std::vector<StoreBackend> TortureBackends() {
  const char* value = std::getenv("VERSO_TORTURE_BACKEND");
  if (value == nullptr || *value == '\0') {
    return {StoreBackend::kMem, StoreBackend::kPageLog};
  }
  Result<StoreBackend> parsed = ParseStoreBackend(value);
  EXPECT_TRUE(parsed.ok()) << "bad VERSO_TORTURE_BACKEND: " << value;
  return {parsed.ok() ? *parsed : StoreBackend::kMem};
}

ConnectionOptions TortureOptions(Env* env, StoreBackend backend) {
  ConnectionOptions options;
  options.env = env;
  options.retry_backoff_us = 0;
  options.store_backend = backend;
  return options;
}

std::string BaseString(Connection& conn) {
  return ObjectBaseToString(conn.database().current(), conn.symbols(),
                            conn.versions());
}

std::string SessionViewString(Connection& conn, Session& session) {
  Result<const ObjectBase*> view = session.ViewSnapshot("rich");
  if (!view.ok()) {
    ADD_FAILURE() << "view snapshot: " << view.status().ToString();
    return "<error>";
  }
  return ObjectBaseToString(**view, conn.symbols(), conn.versions());
}

/// Everything the reference (fault-free) run records about the workload:
/// the per-committed-transaction truth the crash sweeps compare against.
struct Reference {
  /// states[k] / view_states[k] = base / view-result rendering after the
  /// first k transactions committed (index 0 = before any).
  std::vector<std::string> states;
  std::vector<std::string> view_states;
  /// state_by_records[r] = base rendering at the moment the WAL held
  /// exactly r records. Not every transaction writes a record (a del with
  /// nothing to delete commits an empty delta), and DIFFERENT prefixes
  /// can render equal states (ins then del returns to the start), so the
  /// record count — which recovery reports — is the unambiguous key the
  /// byte-prefix sweep matches on.
  std::vector<std::string> state_by_records;
  /// Total mutating env ops of the complete run — the crash-point space.
  uint64_t total_ops = 0;
  /// Final WAL image of a run WITHOUT checkpoint (byte-prefix sweep).
  std::string wal_bytes;
};

/// Runs the workload start to finish on `env`. Returns the number of
/// acknowledged (successfully committed) transactions; stops at the first
/// failure (after a crash fault everything fails). When `ref` is given,
/// records expected states; `checkpoint_at` < 0 disables the checkpoint.
size_t RunWorkload(FaultInjectingEnv& env, const std::vector<std::string>& txns,
                   int checkpoint_at, StoreBackend backend, Reference* ref) {
  Result<std::unique_ptr<Connection>> conn =
      Connection::Open(kDir, TortureOptions(&env, backend));
  if (!conn.ok()) return 0;
  auto session = (*conn)->OpenSession();
  if (!session->Execute(kViewDdl).ok()) return 0;

  // Subscription replay ledger: folding every delivered ViewDelta onto
  // the (empty) subscribe-time seed must reconstruct the live view result
  // after every transaction — the read-replica contract.
  std::set<std::string> replay;
  uint64_t sub = 0;
  if (ref != nullptr) {
    Result<uint64_t> token = session->Subscribe(
        "rich", [&replay, conn = conn->get()](const ViewDelta& delta) {
          for (const DeltaFact& fact : delta.facts) {
            std::string row = FactToString(fact.vid, fact.method, fact.app,
                                           conn->symbols(), conn->versions());
            if (fact.added) {
              replay.insert(row);
            } else {
              replay.erase(row);
            }
          }
        });
    EXPECT_TRUE(token.ok()) << token.status().ToString();
    sub = *token;

    ref->states.push_back(BaseString(**conn));
    ref->view_states.push_back(SessionViewString(**conn, *session));
    ref->state_by_records.push_back(BaseString(**conn));
  }

  size_t acked = 0;
  for (size_t i = 0; i < txns.size(); ++i) {
    if (checkpoint_at >= 0 && i == static_cast<size_t>(checkpoint_at)) {
      // Mid-workload checkpoint: its snapshot-write / rename / WAL-remove
      // ops are crash points like any other. A failure here does not
      // abort the workload (a failed checkpoint loses nothing).
      (*conn)->Checkpoint().ok();
    }
    Status status = session->Execute(txns[i]).status();
    if (!status.ok() && status.code() != StatusCode::kObserverFailed) break;
    ++acked;
    if (ref != nullptr) {
      ref->states.push_back(BaseString(**conn));
      while (ref->state_by_records.size() <=
             (*conn)->wal_records_since_checkpoint()) {
        ref->state_by_records.push_back(ref->states.back());
      }
      std::string view_now = SessionViewString(**conn, *session);
      ref->view_states.push_back(view_now);
      // Subscription replay must have reconstructed exactly this state.
      std::string replayed;
      for (const std::string& row : replay) {
        replayed += row;
        replayed += '\n';
      }
      EXPECT_EQ(replayed, view_now)
          << "subscription replay diverged after txn " << i;
    }
  }
  if (ref != nullptr) {
    session->Unsubscribe(sub).ok();
    ref->total_ops = env.mutating_ops();
    auto it = env.files().find(std::string(kDir) + "/wal.log");
    ref->wal_bytes = it != env.files().end() ? it->second : std::string();
  }
  return acked;
}

/// Reopens the database from `disk` and asserts the recovered base AND
/// the re-created view equal the reference state after some prefix of
/// committed transactions. Returns that prefix length k (nullopt = the
/// recovered state matched NO committed prefix: atomicity is broken).
std::optional<size_t> RecoverAndMatch(Env* disk, const Reference& ref,
                                      StoreBackend backend, bool check_view) {
  Result<std::unique_ptr<Connection>> conn =
      Connection::Open(kDir, TortureOptions(disk, backend));
  if (!conn.ok()) {
    ADD_FAILURE() << "recovery failed: " << conn.status().ToString();
    return std::nullopt;
  }
  std::string base = BaseString(**conn);
  std::optional<size_t> matched;
  for (size_t k = 0; k < ref.states.size(); ++k) {
    if (ref.states[k] == base) matched = k;  // keep the LARGEST match
  }
  if (!matched.has_value()) {
    ADD_FAILURE() << "recovered base matches no committed prefix:\n" << base;
    return std::nullopt;
  }
  if (check_view) {
    // Views are re-created after open (they are not persistent); the
    // from-scratch evaluation over the recovered base must equal the
    // incrementally-maintained result the reference run recorded at k.
    auto session = (*conn)->OpenSession();
    Status ddl = session->Execute(kViewDdl).status();
    if (!ddl.ok()) {
      ADD_FAILURE() << "view re-creation failed: " << ddl.ToString();
      return matched;
    }
    Result<const ObjectBase*> view = session->ViewSnapshot("rich");
    if (!view.ok()) {
      ADD_FAILURE() << view.status().ToString();
      return matched;
    }
    EXPECT_EQ(ObjectBaseToString(**view, (*conn)->symbols(),
                                 (*conn)->versions()),
              ref.view_states[*matched])
        << "view result diverged from reference at prefix " << *matched;
  }
  return matched;
}

TEST(CrashTortureTest, CrashAtEveryMutatingOpRecoversToACommittedPrefix) {
  const uint64_t seed = EnvKnob("VERSO_TORTURE_SEED", 12345);
  const uint64_t stride = EnvKnob("VERSO_TORTURE_OP_STRIDE", 1);
  const std::vector<std::string> txns = MakeWorkload(seed);
  const int checkpoint_at = static_cast<int>(txns.size()) / 2;

  for (StoreBackend backend : TortureBackends()) {
    SCOPED_TRACE(std::string("backend ") + StoreBackendName(backend));
    // Fault-free reference run: records the committed-prefix truth and
    // the size of the crash-point space (and validates subscription
    // replay). The op space differs per backend — the page-log store
    // appends (and may compact), the mem store rewrites one image — so
    // each backend sweeps its own space, which for pagelog includes the
    // mid-checkpoint WAL-truncation windows behind a live store log.
    FaultInjectingEnv clean;
    Reference ref;
    size_t all = RunWorkload(clean, txns, checkpoint_at, backend, &ref);
    ASSERT_EQ(all, txns.size());
    ASSERT_EQ(ref.states.size(), txns.size() + 1);
    ASSERT_GT(ref.total_ops, 0u);

    // Crash at every mutating I/O point, twice: once with nothing of the
    // crashing op landing, once with a partial payload (short write / the
    // op completing right before the crash).
    for (uint64_t op = 0; op < ref.total_ops; op += stride) {
      for (size_t partial : {size_t{0}, size_t{6}}) {
        SCOPED_TRACE("crash at op " + std::to_string(op) + " partial " +
                     std::to_string(partial) + " seed " +
                     std::to_string(seed));
        FaultInjectingEnv env;
        FaultInjectingEnv::FaultPlan plan;
        plan.fail_at = op;
        plan.kind = FaultKind::kCrash;
        plan.partial_bytes = partial;
        env.SetPlan(plan);
        size_t acked = RunWorkload(env, txns, checkpoint_at, backend, nullptr);
        ASSERT_TRUE(env.crashed());
        auto disk = env.CloneSurvivingFiles();
        std::optional<size_t> k = RecoverAndMatch(disk.get(), ref, backend,
                                                  /*check_view=*/true);
        ASSERT_TRUE(k.has_value());
        // Durability: every acknowledged commit survived the crash.
        EXPECT_GE(*k, acked) << "acked commit lost";
      }
    }
  }
}

TEST(CrashTortureTest, EveryWalBytePrefixRecoversToACommittedPrefix) {
  const uint64_t seed = EnvKnob("VERSO_TORTURE_SEED", 12345);
  const uint64_t stride = EnvKnob("VERSO_TORTURE_PREFIX_STRIDE", 1);
  const std::vector<std::string> txns = MakeWorkload(seed);

  for (StoreBackend backend : TortureBackends()) {
    SCOPED_TRACE(std::string("backend ") + StoreBackendName(backend));
    // Reference run WITHOUT a checkpoint, so the WAL alone carries every
    // transaction and truncating it to L bytes models a crash with
    // exactly L bytes durable.
    FaultInjectingEnv clean;
    Reference ref;
    ASSERT_EQ(RunWorkload(clean, txns, /*checkpoint_at=*/-1, backend, &ref),
              txns.size());
    ASSERT_FALSE(ref.wal_bytes.empty());

    std::vector<size_t> lengths;
    for (size_t len = 0; len < ref.wal_bytes.size(); len += stride) {
      lengths.push_back(len);
    }
    lengths.push_back(ref.wal_bytes.size());  // the stride never skips "all"

    size_t last_records = 0;
    for (size_t len : lengths) {
      SCOPED_TRACE("wal prefix " + std::to_string(len) + "/" +
                   std::to_string(ref.wal_bytes.size()) + " bytes, seed " +
                   std::to_string(seed));
      FaultInjectingEnv env;
      env.SetFileContents(std::string(kDir) + "/wal.log",
                          ref.wal_bytes.substr(0, len));
      Result<std::unique_ptr<Connection>> conn =
          Connection::Open(kDir, TortureOptions(&env, backend));
      ASSERT_TRUE(conn.ok()) << conn.status().ToString();
      // Recovery replays exactly the full frames of the prefix; the state
      // must be the one the reference run had at that record count — not
      // merely "some equal-looking state".
      size_t records = (*conn)->wal_records_since_checkpoint();
      ASSERT_LT(records, ref.state_by_records.size());
      EXPECT_EQ(BaseString(**conn), ref.state_by_records[records]);
      // More durable bytes can only mean more recovered records.
      EXPECT_GE(records, last_records) << "recovery went backwards";
      last_records = records;
    }
    // The full log recovers the full run.
    EXPECT_EQ(last_records, ref.state_by_records.size() - 1);
    FaultInjectingEnv full;
    full.SetFileContents(std::string(kDir) + "/wal.log", ref.wal_bytes);
    Result<std::unique_ptr<Connection>> conn =
        Connection::Open(kDir, TortureOptions(&full, backend));
    ASSERT_TRUE(conn.ok());
    EXPECT_EQ(BaseString(**conn), ref.states.back());
  }
}

TEST(CrashTortureTest, DifferentSeedsDifferentWorkloads) {
  // The seed knob genuinely varies the workload (the CI matrix relies on
  // distinct seeds exploring distinct commit/checkpoint interleavings).
  EXPECT_NE(MakeWorkload(1), MakeWorkload(2));
  EXPECT_EQ(MakeWorkload(7), MakeWorkload(7));
}

}  // namespace
}  // namespace verso
