// The synthetic workload generators: determinism, shape, and the
// reference closure used by the property sweeps.

#include "workloads/workloads.h"

#include <gtest/gtest.h>

#include "core/pretty.h"
#include "parser/parser.h"

namespace verso {
namespace {

TEST(RngTest, DeterministicStream) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
  Rng c(124);
  bool differs = false;
  Rng a2(123);
  for (int i = 0; i < 10; ++i) differs |= a2.Next() != c.Next();
  EXPECT_TRUE(differs);
}

TEST(RngTest, BelowStaysBelow) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Below(7), 7u);
  }
  EXPECT_EQ(rng.Below(0), 0u);
}

TEST(WorkloadsTest, EnterpriseIsDeterministicAcrossEngines) {
  std::string first;
  for (int run = 0; run < 2; ++run) {
    Engine engine;
    ObjectBase base = engine.MakeBase();
    EnterpriseOptions options;
    options.employees = 20;
    options.seed = 5;
    MakeEnterprise(options, engine, base);
    std::string printed =
        ObjectBaseToString(base, engine.symbols(), engine.versions());
    if (run == 0) {
      first = printed;
    } else {
      EXPECT_EQ(printed, first);
    }
  }
}

TEST(WorkloadsTest, EnterpriseShape) {
  Engine engine;
  ObjectBase base = engine.MakeBase();
  EnterpriseOptions options;
  options.employees = 24;
  options.manager_every = 6;
  options.bystanders = 3;
  Enterprise e = MakeEnterprise(options, engine, base);
  ASSERT_EQ(e.names.size(), 24u);
  size_t managers = 0;
  for (size_t i = 0; i < e.names.size(); ++i) {
    if (e.is_manager[i]) {
      ++managers;
      EXPECT_EQ(e.boss[i], -1);  // managers are forest roots here
    } else {
      ASSERT_GE(e.boss[i], 0);
      EXPECT_TRUE(e.is_manager[static_cast<size_t>(e.boss[i])]);
    }
    EXPECT_GE(e.salary[i], options.min_salary);
    EXPECT_LE(e.salary[i], options.max_salary);
  }
  EXPECT_EQ(managers, 4u);
  // Facts: per employee isa+sal (+pos for mgr, +boss for worker), plus
  // 2 per bystander.
  EXPECT_EQ(base.fact_count(), 24u * 3u + 3u * 2u);
}

TEST(WorkloadsTest, GenealogyIsAcyclicAndClosureMatchesBruteForce) {
  Engine engine;
  ObjectBase base = engine.MakeBase();
  GenealogyOptions options;
  options.persons = 20;
  options.seed = 3;
  Genealogy g = MakeGenealogy(options, engine, base);
  // Acyclic by construction: parents have strictly larger indices.
  for (size_t i = 0; i < g.parents.size(); ++i) {
    for (int p : g.parents[i]) {
      EXPECT_GT(p, static_cast<int>(i));
    }
  }
  // Closure is reflexive-free and transitive.
  std::vector<std::vector<int>> closure = g.AncestorClosure();
  for (size_t i = 0; i < closure.size(); ++i) {
    for (int a : closure[i]) {
      EXPECT_NE(a, static_cast<int>(i));
      // Transitivity: ancestors of my ancestors are my ancestors.
      for (int b : closure[static_cast<size_t>(a)]) {
        bool found = false;
        for (int c : closure[i]) found |= c == b;
        EXPECT_TRUE(found);
      }
    }
  }
}

TEST(WorkloadsTest, GraphFactCountsAndDeterminism) {
  Engine engine;
  ObjectBase base = engine.MakeBase();
  MakeGraph(10, 25, /*seed=*/1, engine, base);
  // 10 isa facts + up to 25 edges (duplicates collapse by set semantics).
  EXPECT_GE(base.fact_count(), 10u);
  EXPECT_LE(base.fact_count(), 35u);
}

TEST(WorkloadsTest, SharedProgramTextsParse) {
  Engine engine;
  EXPECT_TRUE(ParseProgram(kEnterpriseProgramText, engine).ok());
  EXPECT_TRUE(ParseProgram(kAncestorsProgramText, engine).ok());
  EXPECT_TRUE(ParseProgram(HypotheticalProgramText("peter"), engine).ok());
}

}  // namespace
}  // namespace verso
