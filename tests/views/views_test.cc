// Incremental materialized views: counting maintenance for non-recursive
// strata, delete-and-rederive for recursive strata, catalog wiring into
// the Database commit stream, and the observability hooks.

#include <gtest/gtest.h>

#include <filesystem>

#include "parser/parser.h"
#include "query/query.h"
#include "storage/database.h"
#include "views/catalog.h"
#include "views/view.h"

namespace verso {
namespace {

class ViewsTest : public ::testing::Test {
 protected:
  ViewsTest() {
    dir_ = ::testing::TempDir() + "/verso_views_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
  }

  std::unique_ptr<Database> OpenDb() {
    Result<std::unique_ptr<Database>> db = Database::Open(dir_, engine_);
    EXPECT_TRUE(db.ok()) << db.status().ToString();
    return std::move(db).value();
  }

  ObjectBase Base(const char* text) {
    Result<ObjectBase> base = ParseObjectBase(text, engine_);
    EXPECT_TRUE(base.ok()) << base.status().ToString();
    return std::move(base).value();
  }

  void Exec(Database& db, const std::string& text) {
    Result<Program> program = ParseProgram(text, engine_);
    ASSERT_TRUE(program.ok()) << program.status().ToString();
    Result<RunOutcome> out = db.Execute(*program);
    ASSERT_TRUE(out.ok()) << out.status().ToString();
  }

  bool Holds(const ObjectBase& base, const char* object, const char* method,
             const char* result) {
    Vid vid = engine_.versions().OfOid(engine_.symbols().Symbol(object));
    GroundApp app;
    app.result = engine_.symbols().Symbol(result);
    return base.Contains(vid, engine_.symbols().Method(method), app);
  }

  /// The view's result must equal a from-scratch evaluation of the same
  /// rules over the current committed base.
  void ExpectFresh(const MaterializedView& view, const ObjectBase& base,
                   const char* rules) {
    Result<QueryProgram> program =
        ParseQueryProgram(rules, engine_.symbols());
    ASSERT_TRUE(program.ok());
    Result<ObjectBase> fresh = EvaluateQueries(*program, base, engine_);
    ASSERT_TRUE(fresh.ok()) << fresh.status().ToString();
    EXPECT_TRUE(view.result() == *fresh);
  }

  Engine engine_;
  std::string dir_;
};

constexpr const char* kRichRules =
    "q: derive X.rich -> yes <- X.sal -> S, S > 3000.";

TEST_F(ViewsTest, CountingMaintenanceTracksInsertsAndDeletes) {
  std::unique_ptr<Database> db = OpenDb();
  ASSERT_TRUE(db->ImportBase(Base("a.sal -> 100.  b.sal -> 4000.")).ok());

  ViewCatalog catalog(engine_);
  ASSERT_TRUE(catalog.RegisterText("rich", kRichRules, db->current()).ok());
  catalog.Attach(*db);
  const MaterializedView* view = catalog.Find("rich");
  ASSERT_NE(view, nullptr);
  EXPECT_FALSE(Holds(view->result(), "a", "rich", "yes"));
  EXPECT_TRUE(Holds(view->result(), "b", "rich", "yes"));

  // a gets a raise above the threshold.
  Exec(*db, "t: mod[a].sal -> (S, 5000) <- a.sal -> S.");
  EXPECT_TRUE(Holds(view->result(), "a", "rich", "yes"));
  ExpectFresh(*view, db->current(), kRichRules);

  // b drops below it.
  Exec(*db, "t: mod[b].sal -> (S, 10) <- b.sal -> S.");
  EXPECT_FALSE(Holds(view->result(), "b", "rich", "yes"));
  ExpectFresh(*view, db->current(), kRichRules);
  EXPECT_EQ(view->stats().maintenance_runs, 2u);
  EXPECT_GT(view->stats().support_decrements, 0u);
}

TEST_F(ViewsTest, SupportCountsKeepMultiplyDerivedFactsAlive) {
  std::unique_ptr<Database> db = OpenDb();
  // c.flag is derivable from either of two premises.
  ASSERT_TRUE(db->ImportBase(Base("c.p -> 1.  c.q -> 1.")).ok());
  const char* rules =
      "r1: derive X.flag -> yes <- X.p -> 1."
      "r2: derive X.flag -> yes <- X.q -> 1.";

  ViewCatalog catalog(engine_);
  ASSERT_TRUE(catalog.RegisterText("flag", rules, db->current()).ok());
  catalog.Attach(*db);
  const MaterializedView* view = catalog.Find("flag");
  EXPECT_TRUE(Holds(view->result(), "c", "flag", "yes"));

  // Losing one derivation must not retract the fact...
  Exec(*db, "t: del[c].p -> 1.");
  EXPECT_TRUE(Holds(view->result(), "c", "flag", "yes"));
  ExpectFresh(*view, db->current(), rules);

  // ...losing the second one must.
  Exec(*db, "t: del[c].q -> 1.");
  EXPECT_FALSE(Holds(view->result(), "c", "flag", "yes"));
  ExpectFresh(*view, db->current(), rules);
}

TEST_F(ViewsTest, NegationGainsAndLosesMatches) {
  std::unique_ptr<Database> db = OpenDb();
  ASSERT_TRUE(
      db->ImportBase(Base("a.isa -> empl.  b.isa -> empl.  b.pos -> mgr."))
          .ok());
  const char* rules =
      "q: derive X.peon -> yes <- X.isa -> empl, not X.pos -> mgr.";

  ViewCatalog catalog(engine_);
  ASSERT_TRUE(catalog.RegisterText("peon", rules, db->current()).ok());
  catalog.Attach(*db);
  const MaterializedView* view = catalog.Find("peon");
  EXPECT_TRUE(Holds(view->result(), "a", "peon", "yes"));
  EXPECT_FALSE(Holds(view->result(), "b", "peon", "yes"));

  // Promoting a destroys its match through the negated literal.
  Exec(*db, "t: ins[a].pos -> mgr.");
  EXPECT_FALSE(Holds(view->result(), "a", "peon", "yes"));
  ExpectFresh(*view, db->current(), rules);

  // Demoting b creates one.
  Exec(*db, "t: del[b].pos -> mgr.");
  EXPECT_TRUE(Holds(view->result(), "b", "peon", "yes"));
  ExpectFresh(*view, db->current(), rules);
}

constexpr const char* kClosureRules =
    "q1: derive X.reaches -> Y <- X.edge -> Y."
    "q2: derive X.reaches -> Z <- X.reaches -> Y, Y.edge -> Z.";

TEST_F(ViewsTest, DRedMaintainsTransitiveClosure) {
  std::unique_ptr<Database> db = OpenDb();
  ASSERT_TRUE(db->ImportBase(
                    Base("a.edge -> b.  b.edge -> c.  c.edge -> d."))
                  .ok());

  ViewCatalog catalog(engine_);
  ASSERT_TRUE(
      catalog.RegisterText("closure", kClosureRules, db->current()).ok());
  catalog.Attach(*db);
  const MaterializedView* view = catalog.Find("closure");
  ASSERT_EQ(view->stratification().strata.size(), 1u);
  EXPECT_TRUE(view->stratification().strata[0].recursive);
  EXPECT_TRUE(Holds(view->result(), "a", "reaches", "d"));

  // Inserting a shortcut edge: insertion propagation only.
  Exec(*db, "t: ins[d].edge -> a.");
  EXPECT_TRUE(Holds(view->result(), "d", "reaches", "c"));
  ExpectFresh(*view, db->current(), kClosureRules);

  // Deleting the cycle-closing edge: overdelete + rederive.
  Exec(*db, "t: del[d].edge -> a.");
  EXPECT_FALSE(Holds(view->result(), "d", "reaches", "a"));
  EXPECT_TRUE(Holds(view->result(), "a", "reaches", "d"));
  ExpectFresh(*view, db->current(), kClosureRules);
  EXPECT_GT(view->stats().overdeleted, 0u);
}

TEST_F(ViewsTest, DRedRederivesFactsWithAlternativeProofs) {
  std::unique_ptr<Database> db = OpenDb();
  // Two disjoint paths a->c: deleting one must keep a.reaches->c.
  ASSERT_TRUE(db->ImportBase(
                    Base("a.edge -> b.  b.edge -> c.  a.edge -> x.  "
                         "x.edge -> c."))
                  .ok());

  ViewCatalog catalog(engine_);
  ASSERT_TRUE(
      catalog.RegisterText("closure", kClosureRules, db->current()).ok());
  catalog.Attach(*db);
  const MaterializedView* view = catalog.Find("closure");

  Exec(*db, "t: del[a].edge -> b.");
  EXPECT_TRUE(Holds(view->result(), "a", "reaches", "c"));
  EXPECT_FALSE(Holds(view->result(), "a", "reaches", "b"));
  ExpectFresh(*view, db->current(), kClosureRules);
  EXPECT_GT(view->stats().rederived, 0u);
}

TEST_F(ViewsTest, DRedHandlesNonlinearRecursion) {
  // path <- path, path: a derivation can join TWO simultaneously
  // overdeleted facts, so overdeletion must probe against the full old
  // database (regression test: erasing cascade facts eagerly missed the
  // joint derivation of a.path->c and left it dangling).
  std::unique_ptr<Database> db = OpenDb();
  ASSERT_TRUE(db->ImportBase(Base("a.edge -> b.  b.edge -> c.")).ok());
  const char* rules =
      "q1: derive X.path -> Y <- X.edge -> Y."
      "q2: derive X.path -> Z <- X.path -> Y, Y.path -> Z.";

  ViewCatalog catalog(engine_);
  ASSERT_TRUE(catalog.RegisterText("path", rules, db->current()).ok());
  catalog.Attach(*db);
  const MaterializedView* view = catalog.Find("path");
  EXPECT_TRUE(Holds(view->result(), "a", "path", "c"));

  // One transaction deletes both supporting edges.
  Result<Program> both = ParseProgram(
      "t1: del[a].edge -> b.  t2: del[b].edge -> c.", engine_);
  ASSERT_TRUE(both.ok());
  ASSERT_TRUE(db->Execute(*both).ok());
  EXPECT_FALSE(Holds(view->result(), "a", "path", "c"));
  ExpectFresh(*view, db->current(), rules);
}

TEST_F(ViewsTest, ObserverErrorPoisonsOneViewNotTheCommit) {
  std::unique_ptr<Database> db = OpenDb();
  ASSERT_TRUE(db->ImportBase(Base("a.sal -> 100.")).ok());
  ViewCatalog catalog(engine_);
  // "bad" derives `marker`; a later transaction writes marker as a base
  // method, which only this view must reject.
  ASSERT_TRUE(catalog
                  .RegisterText("bad",
                                "q: derive X.marker -> yes <- X.sal -> S.",
                                db->current())
                  .ok());
  ASSERT_TRUE(catalog.RegisterText("rich", kRichRules, db->current()).ok());
  catalog.Attach(*db);

  Result<Program> toxic = ParseProgram(
      "t1: ins[z].marker -> yes.  t2: mod[a].sal -> (S, 9000) <- a.sal -> S.",
      engine_);
  ASSERT_TRUE(toxic.ok());
  Result<RunOutcome> out = db->Execute(*toxic);
  // The maintenance error surfaces, but the commit stands...
  ASSERT_FALSE(out.ok());
  Vid a = engine_.versions().OfOid(engine_.symbols().Symbol("a"));
  GroundApp sal;
  sal.result = engine_.symbols().Int(9000);
  EXPECT_TRUE(
      db->current().Contains(a, engine_.symbols().Method("sal"), sal));
  // ...the failing view is poisoned, and the healthy one kept tracking.
  EXPECT_FALSE(catalog.Find("bad")->health().ok());
  EXPECT_TRUE(catalog.Find("rich")->health().ok());
  EXPECT_TRUE(Holds(catalog.Find("rich")->result(), "a", "rich", "yes"));
  ExpectFresh(*catalog.Find("rich"), db->current(), kRichRules);

  // Subsequent commits keep maintaining the healthy view; the poisoned
  // one keeps refusing with its original error.
  Exec(*db, "t: mod[a].sal -> (S, 10) <- a.sal -> S.");
  EXPECT_FALSE(Holds(catalog.Find("rich")->result(), "a", "rich", "yes"));
  EXPECT_FALSE(catalog.Find("bad")->health().ok());
}

TEST_F(ViewsTest, ExecuteBatchObserverErrorStillInstallsAllDeltas) {
  std::unique_ptr<Database> db = OpenDb();
  ASSERT_TRUE(db->ImportBase(Base("a.sal -> 100.")).ok());
  ViewCatalog catalog(engine_);
  ASSERT_TRUE(catalog
                  .RegisterText("bad",
                                "q: derive X.marker -> yes <- X.sal -> S.",
                                db->current())
                  .ok());
  ASSERT_TRUE(catalog.RegisterText("rich", kRichRules, db->current()).ok());
  catalog.Attach(*db);

  // Transaction 1 poisons the "bad" view; transaction 2 must still be
  // applied in memory (both are already durable in the WAL) AND delivered
  // to the healthy view.
  Result<Program> p1 = ParseProgram("t: ins[z].marker -> yes.", engine_);
  Result<Program> p2 = ParseProgram(
      "t: mod[a].sal -> (S, 9000) <- a.sal -> S.", engine_);
  ASSERT_TRUE(p1.ok() && p2.ok());
  std::vector<Program*> batch = {&*p1, &*p2};
  Result<std::vector<RunOutcome>> out = db->ExecuteBatch(batch);
  EXPECT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kObserverFailed);
  Vid a = engine_.versions().OfOid(engine_.symbols().Symbol("a"));
  GroundApp sal;
  sal.result = engine_.symbols().Int(9000);
  EXPECT_TRUE(
      db->current().Contains(a, engine_.symbols().Method("sal"), sal));
  EXPECT_FALSE(catalog.Find("bad")->health().ok());
  EXPECT_TRUE(catalog.Find("rich")->health().ok());
  EXPECT_TRUE(Holds(catalog.Find("rich")->result(), "a", "rich", "yes"));
  ExpectFresh(*catalog.Find("rich"), db->current(), kRichRules);
}

TEST_F(ViewsTest, StratifiedViewRipplesAcrossStrata) {
  std::unique_ptr<Database> db = OpenDb();
  ASSERT_TRUE(db->ImportBase(
                    Base("a.edge -> b.  b.edge -> c.  s.node -> a.  "
                         "s.node -> b.  s.node -> c."))
                  .ok());
  const char* rules =
      "q1: derive X.reaches -> Y <- X.edge -> Y."
      "q2: derive X.reaches -> Z <- X.reaches -> Y, Y.edge -> Z."
      "q3: derive X.stuck -> yes <- S.node -> X, not X.reaches -> X.";

  ViewCatalog catalog(engine_);
  ASSERT_TRUE(catalog.RegisterText("stuck", rules, db->current()).ok());
  catalog.Attach(*db);
  const MaterializedView* view = catalog.Find("stuck");
  EXPECT_TRUE(Holds(view->result(), "a", "stuck", "yes"));

  // Closing the cycle flips reaches->self for all three, which must
  // retract their stuck facts through the negated literal upstairs.
  Exec(*db, "t: ins[c].edge -> a.");
  EXPECT_FALSE(Holds(view->result(), "a", "stuck", "yes"));
  EXPECT_FALSE(Holds(view->result(), "b", "stuck", "yes"));
  ExpectFresh(*view, db->current(), rules);

  Exec(*db, "t: del[c].edge -> a.");
  EXPECT_TRUE(Holds(view->result(), "a", "stuck", "yes"));
  ExpectFresh(*view, db->current(), rules);
}

TEST_F(ViewsTest, ImportBaseFlowsThroughAttachedCatalog) {
  std::unique_ptr<Database> db = OpenDb();
  ViewCatalog catalog(engine_);
  // Register over the empty base, then import: the commit stream must
  // carry the view to the same state as evaluating over the import.
  ASSERT_TRUE(catalog.RegisterText("rich", kRichRules, db->current()).ok());
  catalog.Attach(*db);
  ASSERT_TRUE(db->ImportBase(Base("a.sal -> 100.  b.sal -> 4000.")).ok());
  const MaterializedView* view = catalog.Find("rich");
  EXPECT_TRUE(Holds(view->result(), "b", "rich", "yes"));
  ExpectFresh(*view, db->current(), kRichRules);
}

TEST_F(ViewsTest, ExecuteBatchNotifiesPerTransaction) {
  std::unique_ptr<Database> db = OpenDb();
  ASSERT_TRUE(db->ImportBase(Base("a.sal -> 100.")).ok());
  ViewCatalog catalog(engine_);
  ASSERT_TRUE(catalog.RegisterText("rich", kRichRules, db->current()).ok());
  catalog.Attach(*db);

  Result<Program> p1 =
      ParseProgram("t: mod[a].sal -> (S, 5000) <- a.sal -> S.", engine_);
  Result<Program> p2 =
      ParseProgram("t: mod[a].sal -> (S, 20) <- a.sal -> S.", engine_);
  ASSERT_TRUE(p1.ok() && p2.ok());
  std::vector<Program*> batch = {&*p1, &*p2};
  Result<std::vector<RunOutcome>> out = db->ExecuteBatch(batch);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(out->size(), 2u);
  // One WAL record for the group, two maintenance runs for the view.
  EXPECT_EQ(db->wal_records_since_checkpoint(), 2u);  // import + batch
  const MaterializedView* view = catalog.Find("rich");
  EXPECT_EQ(view->stats().maintenance_runs, 2u);
  EXPECT_FALSE(Holds(view->result(), "a", "rich", "yes"));
  ExpectFresh(*view, db->current(), kRichRules);
}

TEST_F(ViewsTest, RegistrationRejectsStoredDerivedMethod) {
  ObjectBase base = Base("a.rich -> yes.");
  ViewCatalog catalog(engine_);
  Status status = catalog.RegisterText("rich", kRichRules, base);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST_F(ViewsTest, CommitWritingDerivedMethodIsRejected) {
  std::unique_ptr<Database> db = OpenDb();
  ASSERT_TRUE(db->ImportBase(Base("a.sal -> 5000.")).ok());
  ViewCatalog catalog(engine_);
  ASSERT_TRUE(catalog.RegisterText("rich", kRichRules, db->current()).ok());
  catalog.Attach(*db);
  Result<Program> bad = ParseProgram("t: ins[z].rich -> yes.", engine_);
  ASSERT_TRUE(bad.ok());
  Result<RunOutcome> out = db->Execute(*bad);
  ASSERT_FALSE(out.ok());
  // kObserverFailed: the commit IS durable — callers must not retry.
  EXPECT_EQ(out.status().code(), StatusCode::kObserverFailed);
  Vid z = engine_.versions().OfOid(engine_.symbols().Symbol("z"));
  GroundApp yes;
  yes.result = engine_.symbols().Symbol("yes");
  EXPECT_TRUE(
      db->current().Contains(z, engine_.symbols().Method("rich"), yes));
}

TEST_F(ViewsTest, CatalogSurvivesDatabaseDestruction) {
  ViewCatalog catalog(engine_);
  {
    std::unique_ptr<Database> db = OpenDb();
    ASSERT_TRUE(db->ImportBase(Base("a.sal -> 100.")).ok());
    ASSERT_TRUE(catalog.RegisterText("rich", kRichRules, db->current()).ok());
    catalog.Attach(*db);
  }
  // The database died first; the catalog must have been told and must not
  // touch the freed database on Detach/destruction.
  catalog.Detach();
  EXPECT_NE(catalog.Find("rich"), nullptr);
}

TEST_F(ViewsTest, DoubleAttachMaintainsOnce) {
  std::unique_ptr<Database> db = OpenDb();
  ASSERT_TRUE(db->ImportBase(Base("a.sal -> 100.")).ok());
  ViewCatalog catalog(engine_);
  ASSERT_TRUE(catalog.RegisterText("rich", kRichRules, db->current()).ok());
  // Attaching twice (or thrice) must not double-register the observer:
  // doubled maintenance would double stats and corrupt support counts.
  catalog.Attach(*db);
  catalog.Attach(*db);
  catalog.Attach(*db);
  Exec(*db, "t: mod[a].sal -> (S, 5000) <- a.sal -> S.");
  const MaterializedView* view = catalog.Find("rich");
  EXPECT_EQ(view->stats().maintenance_runs, 1u);
  EXPECT_EQ(view->stats().facts_added, 1u);
  EXPECT_TRUE(Holds(view->result(), "a", "rich", "yes"));
  ExpectFresh(*view, db->current(), kRichRules);
  // And one Detach fully severs the (single) registration.
  catalog.Detach();
  Exec(*db, "t: mod[a].sal -> (S, 100) <- a.sal -> S.");
  EXPECT_EQ(view->stats().maintenance_runs, 1u);
}

TEST_F(ViewsTest, OnDatabaseClosedOrderingWhenCatalogOutlivesDatabase) {
  // A second observer registered AFTER the catalog, to pin down the
  // notification order among observers at destruction time.
  class ClosedRecorder : public CommitObserver {
   public:
    explicit ClosedRecorder(std::vector<std::string>* log, std::string name)
        : log_(log), name_(std::move(name)) {}
    Status OnCommit(const DeltaLog&, const ObjectBase&, uint64_t) override {
      return Status::Ok();
    }
    void OnDatabaseClosed() override { log_->push_back(name_); }

   private:
    std::vector<std::string>* log_;
    std::string name_;
  };

  std::vector<std::string> closed;
  ViewCatalog catalog(engine_);
  ClosedRecorder recorder(&closed, "recorder");
  {
    std::unique_ptr<Database> db = OpenDb();
    ASSERT_TRUE(db->ImportBase(Base("a.sal -> 100.")).ok());
    ASSERT_TRUE(catalog.RegisterText("rich", kRichRules, db->current()).ok());
    catalog.Attach(*db);
    db->AddObserver(&recorder);
    closed.push_back("alive");
  }
  // ~Database notified observers in registration order (catalog first),
  // strictly after the last commit.
  ASSERT_EQ(closed.size(), 2u);
  EXPECT_EQ(closed[0], "alive");
  EXPECT_EQ(closed[1], "recorder");

  // The catalog forgot the dead database: Detach is a no-op, and it can
  // re-attach to a successor database and resume maintenance exactly
  // where the view state left off.
  catalog.Detach();
  std::filesystem::remove_all(dir_);
  std::unique_ptr<Database> next = OpenDb();
  ASSERT_TRUE(next->ImportBase(Base("a.sal -> 100.")).ok());
  catalog.Attach(*next);
  Exec(*next, "t: mod[a].sal -> (S, 9000) <- a.sal -> S.");
  const MaterializedView* view = catalog.Find("rich");
  EXPECT_EQ(view->stats().maintenance_runs, 1u);
  EXPECT_TRUE(Holds(view->result(), "a", "rich", "yes"));
}

TEST_F(ViewsTest, DeltaSinkPublishesResultLevelDeltas) {
  class Recorder : public ViewDeltaSink {
   public:
    void OnViewDelta(const MaterializedView& view, const DeltaLog& delta,
                     uint64_t epoch) override {
      names.push_back(view.name());
      deltas.push_back(delta);
      epochs.push_back(epoch);
    }
    std::vector<std::string> names;
    std::vector<DeltaLog> deltas;
    std::vector<uint64_t> epochs;
  };

  std::unique_ptr<Database> db = OpenDb();
  ASSERT_TRUE(db->ImportBase(Base("a.sal -> 100.")).ok());
  ViewCatalog catalog(engine_);
  ASSERT_TRUE(catalog.RegisterText("rich", kRichRules, db->current()).ok());
  catalog.Attach(*db);
  Recorder recorder;
  catalog.SetDeltaSink(&recorder);

  // Replaying the published delta on a copy of the pre-commit result
  // must land exactly on the post-commit result.
  ObjectBase replay = catalog.Find("rich")->result();
  Exec(*db, "t: mod[a].sal -> (S, 5000) <- a.sal -> S.");
  ASSERT_EQ(recorder.names, std::vector<std::string>{"rich"});
  ASSERT_EQ(recorder.deltas.size(), 1u);
  // The delta is result-level: the base transition AND the derived gain.
  bool rich_gained = false;
  for (const DeltaFact& fact : recorder.deltas[0]) {
    if (fact.method == engine_.symbols().Method("rich") && fact.added) {
      rich_gained = true;
    }
  }
  EXPECT_TRUE(rich_gained);
  for (const DeltaFact& fact : recorder.deltas[0]) {
    bool changed = fact.added ? replay.Insert(fact.vid, fact.method, fact.app)
                              : replay.Erase(fact.vid, fact.method, fact.app);
    ASSERT_TRUE(changed);
  }
  EXPECT_TRUE(replay == catalog.Find("rich")->result());

  // Unregistering the sink stops publication.
  catalog.SetDeltaSink(nullptr);
  Exec(*db, "t: mod[a].sal -> (S, 100) <- a.sal -> S.");
  EXPECT_EQ(recorder.deltas.size(), 1u);
}

TEST_F(ViewsTest, CatalogRegisterDropAndDuplicate) {
  ObjectBase base = Base("a.sal -> 5000.");
  ViewCatalog catalog(engine_);
  ASSERT_TRUE(catalog.RegisterText("rich", kRichRules, base).ok());
  EXPECT_EQ(catalog.size(), 1u);
  EXPECT_EQ(catalog.names(), std::vector<std::string>{"rich"});
  Status dup = catalog.RegisterText("rich", kRichRules, base);
  EXPECT_EQ(dup.code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(catalog.Drop("rich").ok());
  EXPECT_EQ(catalog.Find("rich"), nullptr);
  EXPECT_EQ(catalog.Drop("rich").code(), StatusCode::kNotFound);
}

TEST_F(ViewsTest, DetachedCatalogStopsMaintaining) {
  std::unique_ptr<Database> db = OpenDb();
  ASSERT_TRUE(db->ImportBase(Base("a.sal -> 100.")).ok());
  ViewCatalog catalog(engine_);
  ASSERT_TRUE(catalog.RegisterText("rich", kRichRules, db->current()).ok());
  catalog.Attach(*db);
  catalog.Detach();
  Exec(*db, "t: mod[a].sal -> (S, 5000) <- a.sal -> S.");
  const MaterializedView* view = catalog.Find("rich");
  EXPECT_EQ(view->stats().maintenance_runs, 0u);
  EXPECT_FALSE(Holds(view->result(), "a", "rich", "yes"));
}

TEST_F(ViewsTest, TraceSinkSeesViewMaintenance) {
  std::unique_ptr<Database> db = OpenDb();
  ASSERT_TRUE(db->ImportBase(Base("a.sal -> 100.")).ok());
  RecordingTrace trace(engine_.symbols(), engine_.versions());
  ViewCatalog catalog(engine_.symbols(), engine_.versions(), &trace);
  ASSERT_TRUE(catalog.RegisterText("rich", kRichRules, db->current()).ok());
  catalog.Attach(*db);
  Exec(*db, "t: mod[a].sal -> (S, 5000) <- a.sal -> S.");
  bool saw_view_line = false;
  for (const std::string& line : trace.lines()) {
    saw_view_line |= line.find("view rich:") != std::string::npos;
  }
  EXPECT_TRUE(saw_view_line);
}

}  // namespace
}  // namespace verso
