// Randomized differential test of incremental view maintenance: after
// EVERY committed transaction in a generated update sequence, each
// maintained view must be bit-identical to a from-scratch EvaluateQueries
// over the current committed base. Exercises insert-, delete-, and
// mod-heavy mixes over the enterprise and graph workloads, through both
// counting (non-recursive, incl. negation) and DRed (recursive) strata.
// Every mix runs once per store backend (mem, pagelog); the final
// committed base must be bit-identical across backends.
//
// Every combination additionally runs with maintenance fanned out across
// 4 worker lanes (ViewCatalog::set_num_threads): results AND cumulative
// ViewStats must be bit-identical to the serial lane — the per-txn
// differential against a fresh serial EvaluateQueries already pins the
// facts, and the stats comparison pins the probe-for-probe work stream.

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

#include "core/pretty.h"
#include "parser/parser.h"
#include "query/query.h"
#include "storage/database.h"
#include "views/catalog.h"
#include "workloads/workloads.h"

namespace verso {
namespace {

struct Mix {
  const char* name;
  int insert_weight;
  int delete_weight;
  int modify_weight;
};

class ViewsDiffTest : public ::testing::Test {
 protected:
  ViewsDiffTest() {
    dir_ = ::testing::TempDir() + "/verso_views_diff_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
  }

  std::unique_ptr<Database> OpenDb(StoreBackend backend) {
    DatabaseOptions options;
    options.store_backend = backend;
    Result<std::unique_ptr<Database>> db =
        Database::Open(dir_, engine_, options);
    EXPECT_TRUE(db.ok()) << db.status().ToString();
    return std::move(db).value();
  }

  std::string Render(const Database& db) {
    return ObjectBaseToString(db.current(), engine_.symbols(),
                              engine_.versions());
  }

  /// Deterministic sorted snapshot of (object, result) pairs carrying
  /// `method` at depth 0 — the sample space for delete/modify txns.
  std::vector<std::pair<std::string, std::string>> FactsOf(
      const ObjectBase& base, const char* method) {
    std::vector<std::pair<std::string, std::string>> facts;
    MethodId m = engine_.symbols().Method(method);
    const auto* vids = base.VidsWithMethod(m);
    if (vids == nullptr) return facts;
    for (const auto& [vid, count] : *vids) {
      (void)count;
      if (engine_.versions().depth(vid) != 0) continue;
      const std::vector<GroundApp>* apps = base.StateOf(vid)->Find(m);
      if (apps == nullptr) continue;
      for (const GroundApp& app : *apps) {
        facts.emplace_back(
            engine_.symbols().OidToString(engine_.versions().root(vid)),
            engine_.symbols().OidToString(app.result));
      }
    }
    std::sort(facts.begin(), facts.end());
    return facts;
  }

  void RunSequence(Database& db, ViewCatalog& catalog,
                   const std::vector<const char*>& view_rules,
                   const Mix& mix, size_t txns, uint64_t seed,
                   const std::vector<std::string>& objects,
                   const char* link_method, bool numeric_method) {
    Rng rng(seed);
    int total = mix.insert_weight + mix.delete_weight + mix.modify_weight;
    for (size_t t = 0; t < txns; ++t) {
      std::string text = MakeTxn(db.current(), rng,
                                 static_cast<int>(rng.Below(
                                     static_cast<uint64_t>(total))),
                                 mix, objects, link_method, numeric_method);
      Result<Program> program = ParseProgram(text, engine_);
      ASSERT_TRUE(program.ok())
          << program.status().ToString() << "\n" << text;
      Result<RunOutcome> out = db.Execute(*program);
      ASSERT_TRUE(out.ok()) << out.status().ToString() << "\n" << text;

      // Differential check: every view equals a fresh evaluation.
      for (size_t v = 0; v < view_rules.size(); ++v) {
        Result<QueryProgram> fresh_program =
            ParseQueryProgram(view_rules[v], engine_.symbols());
        ASSERT_TRUE(fresh_program.ok());
        Result<ObjectBase> fresh =
            EvaluateQueries(*fresh_program, db.current(), engine_);
        ASSERT_TRUE(fresh.ok()) << fresh.status().ToString();
        const MaterializedView* view =
            catalog.Find("v" + std::to_string(v));
        ASSERT_NE(view, nullptr);
        ASSERT_TRUE(view->result() == *fresh)
            << mix.name << ": view v" << v << " diverged after txn " << t
            << " (" << text << ")";
      }
    }
  }

  /// One single-update transaction: insert a random link/value, delete a
  /// random existing fact, or modify a random existing fact.
  std::string MakeTxn(const ObjectBase& base, Rng& rng, int pick,
                      const Mix& mix, const std::vector<std::string>& objects,
                      const char* link_method, bool numeric_method) {
    const std::string& subject =
        objects[rng.Below(objects.size())];
    auto existing = FactsOf(base, link_method);
    std::string value =
        numeric_method ? std::to_string(100 + rng.Below(9000))
                       : objects[rng.Below(objects.size())];
    if (pick < mix.insert_weight || existing.empty()) {
      return "t: ins[" + subject + "]." + link_method + " -> " + value + ".";
    }
    const auto& victim = existing[rng.Below(existing.size())];
    if (pick < mix.insert_weight + mix.delete_weight) {
      return "t: del[" + victim.first + "]." + link_method + " -> " +
             victim.second + ".";
    }
    return "t: mod[" + victim.first + "]." + link_method + " -> (" +
           victim.second + ", " + value + ").";
  }

  static void ExpectSameStats(const ViewStats& a, const ViewStats& b) {
    EXPECT_EQ(a.full_evaluations, b.full_evaluations);
    EXPECT_EQ(a.maintenance_runs, b.maintenance_runs);
    EXPECT_EQ(a.delta_facts_seen, b.delta_facts_seen);
    EXPECT_EQ(a.facts_added, b.facts_added);
    EXPECT_EQ(a.facts_removed, b.facts_removed);
    EXPECT_EQ(a.support_increments, b.support_increments);
    EXPECT_EQ(a.support_decrements, b.support_decrements);
    EXPECT_EQ(a.overdeleted, b.overdeleted);
    EXPECT_EQ(a.rederived, b.rederived);
    EXPECT_EQ(a.seed_probes, b.seed_probes);
    EXPECT_EQ(a.rederive_probes, b.rederive_probes);
    EXPECT_EQ(a.index_probes, b.index_probes);
    EXPECT_EQ(a.index_hits, b.index_hits);
    EXPECT_EQ(a.indexed_scan_avoided_facts, b.indexed_scan_avoided_facts);
  }

  Engine engine_;
  std::string dir_;
};

// Graph workload: recursive closure (DRed) + a counting stratum with
// negation layered on top of the recursive one.
TEST_F(ViewsDiffTest, GraphMixes) {
  const std::vector<const char*> kViews = {
      // v0: recursive reachability.
      "q1: derive X.reaches -> Y <- X.edge -> Y."
      "q2: derive X.reaches -> Z <- X.reaches -> Y, Y.edge -> Z.",
      // v1: direct links that are NOT on a cycle back to themselves.
      "q1: derive X.linked -> Y <- X.edge -> Y."
      "q2: derive X.linked -> Z <- X.linked -> Y, Y.edge -> Z."
      "q3: derive X.acyclic -> yes <- X.edge -> Y, not X.linked -> X.",
      // v2: NONLINEAR closure — a body joining two recursive literals
      // exercises DRed derivations through multiple overdeleted facts.
      "q1: derive X.path -> Y <- X.edge -> Y."
      "q2: derive X.path -> Z <- X.path -> Y, Y.path -> Z.",
  };
  const std::vector<Mix> kMixes = {
      {"insert-heavy", 6, 1, 1},
      {"delete-heavy", 1, 6, 1},
      {"mod-heavy", 1, 1, 6},
  };

  size_t nodes = 16;
  std::vector<std::string> objects;
  for (size_t i = 0; i < nodes; ++i) {
    objects.push_back("n" + std::to_string(i));
  }

  uint64_t seed = 0;
  for (const Mix& mix : kMixes) {
    // The same deterministic mix runs once per (store backend, thread
    // count); the final committed base must come out bit-identical
    // regardless of how it was persisted or fanned out along the way.
    std::string reference_render;
    ViewStats serial_stats;
    for (int threads : {0, 4}) {
      for (StoreBackend backend :
           {StoreBackend::kMem, StoreBackend::kPageLog}) {
        SCOPED_TRACE(std::string(mix.name) + " on " +
                     StoreBackendName(backend) + " threads=" +
                     std::to_string(threads));
        std::filesystem::remove_all(dir_);
        std::unique_ptr<Database> db = OpenDb(backend);
        ObjectBase base = engine_.MakeBase();
        MakeGraph(nodes, /*edges=*/24, /*seed=*/7 + seed, engine_, base);
        ASSERT_TRUE(db->ImportBase(base).ok());

        ViewCatalog catalog(engine_);
        catalog.set_num_threads(threads);
        for (size_t v = 0; v < kViews.size(); ++v) {
          ASSERT_TRUE(catalog
                          .RegisterText("v" + std::to_string(v), kViews[v],
                                        db->current())
                          .ok());
        }
        catalog.Attach(*db);
        RunSequence(*db, catalog, kViews, mix, /*txns=*/40, 1000 + seed,
                    objects, "edge", /*numeric_method=*/false);
        if (threads == 0 && backend == StoreBackend::kMem) {
          reference_render = Render(*db);
          serial_stats = catalog.TotalStats();
        } else {
          EXPECT_EQ(Render(*db), reference_render)
              << mix.name << ": lanes diverged";
          if (backend == StoreBackend::kMem) {
            ExpectSameStats(serial_stats, catalog.TotalStats());
          }
        }
      }
    }
    ++seed;
  }
}

// Enterprise workload: counting strata over salaries (built-ins) and the
// boss forest (recursive chain-of-command + negation).
TEST_F(ViewsDiffTest, EnterpriseMixes) {
  const std::vector<const char*> kViews = {
      // v0: who earns above the bar (built-in comparisons, counting).
      "q: derive X.rich -> yes <- X.sal -> S, S > 5000.",
      // v1: recursive chain of command.
      "q1: derive X.chain -> Y <- X.boss -> Y."
      "q2: derive X.chain -> Z <- X.chain -> Y, Y.boss -> Z.",
      // v2: employees with no boss at all (negation over a lower derived
      // stratum — two counting strata rippling).
      "q1: derive X.hasboss -> yes <- X.boss -> B."
      "q2: derive X.root -> yes <- X.isa -> empl, not X.hasboss -> yes.",
  };
  const std::vector<Mix> kMixes = {
      {"insert-heavy", 6, 1, 1},
      {"delete-heavy", 1, 6, 1},
      {"mod-heavy", 1, 1, 6},
  };

  EnterpriseOptions options;
  options.employees = 24;
  std::vector<std::string> objects;
  for (size_t i = 0; i < options.employees; ++i) {
    objects.push_back("emp" + std::to_string(i));
  }

  uint64_t seed = 0;
  for (const Mix& mix : kMixes) {
    std::string reference_render;
    ViewStats serial_stats;
    for (int threads : {0, 4}) {
      for (StoreBackend backend :
           {StoreBackend::kMem, StoreBackend::kPageLog}) {
        SCOPED_TRACE(std::string(mix.name) + " on " +
                     StoreBackendName(backend) + " threads=" +
                     std::to_string(threads));
        std::filesystem::remove_all(dir_);
        std::unique_ptr<Database> db = OpenDb(backend);
        ObjectBase base = engine_.MakeBase();
        options.seed = 42 + seed;
        MakeEnterprise(options, engine_, base);
        ASSERT_TRUE(db->ImportBase(base).ok());

        ViewCatalog catalog(engine_);
        catalog.set_num_threads(threads);
        for (size_t v = 0; v < kViews.size(); ++v) {
          ASSERT_TRUE(catalog
                          .RegisterText("v" + std::to_string(v), kViews[v],
                                        db->current())
                          .ok());
        }
        catalog.Attach(*db);
        // Alternate between the salary column and the boss forest.
        RunSequence(*db, catalog, kViews, mix, /*txns=*/20, 2000 + seed,
                    objects, "sal", /*numeric_method=*/true);
        RunSequence(*db, catalog, kViews, mix, /*txns=*/20, 3000 + seed,
                    objects, "boss", /*numeric_method=*/false);
        if (threads == 0 && backend == StoreBackend::kMem) {
          reference_render = Render(*db);
          serial_stats = catalog.TotalStats();
        } else {
          EXPECT_EQ(Render(*db), reference_render)
              << mix.name << ": lanes diverged";
          if (backend == StoreBackend::kMem) {
            ExpectSameStats(serial_stats, catalog.TotalStats());
          }
        }
      }
    }
    ++seed;
  }
}

}  // namespace
}  // namespace verso
