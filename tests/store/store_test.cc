// Store component tests, run against BOTH backends wherever the contract
// is backend-independent: transactional put/get/delete/scan and the meta
// table, abort-by-drop, persistence across reopen, and atomicity under
// injected I/O failure. Backend-specific recovery shapes (the mem image's
// strict CRC, the page log's torn-tail chop and compaction) get their own
// tests below.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "store/page_log_store.h"
#include "store/store.h"
#include "util/fault_env.h"

namespace verso {
namespace {

using FaultKind = FaultInjectingEnv::FaultKind;
using OpFilter = FaultInjectingEnv::OpFilter;

constexpr StoreBackend kBackends[] = {StoreBackend::kMem,
                                      StoreBackend::kPageLog};

std::unique_ptr<Store> MustOpen(StoreBackend backend, Env* env) {
  Result<std::unique_ptr<Store>> store = OpenStore(backend, "/store", env);
  EXPECT_TRUE(store.ok()) << store.status().ToString();
  return std::move(*store);
}

TEST(StoreTest, PutGetDeleteScanAndMetaRoundTrip) {
  for (StoreBackend backend : kBackends) {
    SCOPED_TRACE(StoreBackendName(backend));
    FaultInjectingEnv env;
    std::unique_ptr<Store> store = MustOpen(backend, &env);
    EXPECT_STREQ(store->name(), StoreBackendName(backend));
    EXPECT_TRUE(store->empty());

    WriteTransaction txn = store->BeginWrite();
    txn.Put("b/bob", "2");
    txn.Put("b/ann", "1");
    txn.Put("c/cfg", "x");
    txn.PutMeta("generation", 7);
    ASSERT_TRUE(txn.Commit().ok());
    EXPECT_TRUE(txn.committed());
    EXPECT_EQ(txn.Commit().code(), StatusCode::kInvalidArgument);

    ReadTransaction read = store->BeginRead();
    EXPECT_EQ(store->key_count(), 3u);
    Result<std::string> got = store->Get(read, "b/ann");
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(*got, "1");
    EXPECT_EQ(store->Get(read, "b/zzz").status().code(),
              StatusCode::kNotFound);
    EXPECT_TRUE(store->Contains(read, "c/cfg"));
    EXPECT_FALSE(store->Contains(read, "nope"));

    // Prefix scan: only "b/" keys, ascending.
    std::vector<std::string> keys;
    ASSERT_TRUE(store
                    ->Scan(read, "b/",
                           [&](std::string_view key, std::string_view) {
                             keys.emplace_back(key);
                             return Status::Ok();
                           })
                    .ok());
    EXPECT_EQ(keys, (std::vector<std::string>{"b/ann", "b/bob"}));

    Result<uint64_t> generation = store->GetMeta(read, "generation");
    ASSERT_TRUE(generation.ok());
    EXPECT_EQ(*generation, 7u);
    EXPECT_EQ(store->GetMeta(read, "missing").status().code(),
              StatusCode::kNotFound);

    WriteTransaction del = store->BeginWrite();
    del.Delete("b/bob");
    del.Delete("never-existed");  // absent-key delete is a no-op
    ASSERT_TRUE(del.Commit().ok());
    EXPECT_EQ(store->key_count(), 2u);
    EXPECT_FALSE(store->Contains(read, "b/bob"));
  }
}

TEST(StoreTest, DroppedTransactionIsInvisibleAndStateSurvivesReopen) {
  for (StoreBackend backend : kBackends) {
    SCOPED_TRACE(StoreBackendName(backend));
    FaultInjectingEnv env;
    {
      std::unique_ptr<Store> store = MustOpen(backend, &env);
      WriteTransaction keep = store->BeginWrite();
      keep.Put("b/ann", "1");
      keep.PutMeta("generation", 1);
      ASSERT_TRUE(keep.Commit().ok());
      {
        // Staged but never committed: destroyed = aborted.
        WriteTransaction dropped = store->BeginWrite();
        dropped.Put("b/ghost", "boo");
        dropped.Delete("b/ann");
      }
      ReadTransaction read = store->BeginRead();
      EXPECT_TRUE(store->Contains(read, "b/ann"));
      EXPECT_FALSE(store->Contains(read, "b/ghost"));
    }
    std::unique_ptr<Store> reopened = MustOpen(backend, &env);
    ReadTransaction read = reopened->BeginRead();
    EXPECT_EQ(reopened->key_count(), 1u);
    Result<std::string> ann = reopened->Get(read, "b/ann");
    ASSERT_TRUE(ann.ok());
    EXPECT_EQ(*ann, "1");
    Result<uint64_t> generation = reopened->GetMeta(read, "generation");
    ASSERT_TRUE(generation.ok());
    EXPECT_EQ(*generation, 1u);
  }
}

TEST(StoreTest, FailedCommitLeavesStoreUnchangedOnDiskAndInMemory) {
  // The write path differs per backend (mem = WriteFile tmp + rename,
  // pagelog = append), so fail the first matching op of each.
  struct Case {
    StoreBackend backend;
    OpFilter filter;
  };
  for (const Case& c : {Case{StoreBackend::kMem, OpFilter::kWrite},
                        Case{StoreBackend::kPageLog, OpFilter::kAppend}}) {
    SCOPED_TRACE(StoreBackendName(c.backend));
    FaultInjectingEnv env;
    std::unique_ptr<Store> store = MustOpen(c.backend, &env);
    WriteTransaction first = store->BeginWrite();
    first.Put("b/ann", "1");
    ASSERT_TRUE(first.Commit().ok());

    FaultInjectingEnv::FaultPlan plan;
    plan.fail_at = 0;
    plan.kind = FaultKind::kEio;
    plan.partial_bytes = 5;  // a torn partial write, the nastiest case
    plan.filter = c.filter;
    env.SetPlan(plan);
    WriteTransaction failing = store->BeginWrite();
    failing.Put("b/bob", "2");
    failing.Delete("b/ann");
    EXPECT_FALSE(failing.Commit().ok());
    EXPECT_FALSE(failing.committed());
    env.Disarm();

    // In-memory state unchanged...
    ReadTransaction read = store->BeginRead();
    EXPECT_TRUE(store->Contains(read, "b/ann"));
    EXPECT_FALSE(store->Contains(read, "b/bob"));
    // ...and the disk image recovers to the same committed state (the
    // pagelog rolled back its torn frame; the mem image was replaced
    // atomically or not at all).
    std::unique_ptr<Store> reopened = MustOpen(c.backend, &env);
    ReadTransaction reread = reopened->BeginRead();
    EXPECT_EQ(reopened->key_count(), 1u);
    EXPECT_TRUE(reopened->Contains(reread, "b/ann"));

    // The store stays usable: the next commit lands.
    WriteTransaction retry = store->BeginWrite();
    retry.Put("b/bob", "2");
    ASSERT_TRUE(retry.Commit().ok());
    EXPECT_TRUE(store->Contains(read, "b/bob"));
  }
}

TEST(StoreTest, VolatileMemStoreServesWithoutADirectory) {
  FaultInjectingEnv env;
  for (StoreBackend backend : kBackends) {
    // An empty dir means volatile for BOTH backends (an ephemeral page
    // log has nothing to append to, so it degrades to the mem backend).
    Result<std::unique_ptr<Store>> store = OpenStore(backend, "", &env);
    ASSERT_TRUE(store.ok());
    WriteTransaction txn = (*store)->BeginWrite();
    txn.Put("k", "v");
    ASSERT_TRUE(txn.Commit().ok());
    EXPECT_EQ((*store)->key_count(), 1u);
    EXPECT_TRUE(env.files().empty());  // nothing persisted
  }
}

TEST(StoreTest, ReadTransactionFromAnotherStoreIsRefused) {
  FaultInjectingEnv env;
  std::unique_ptr<Store> a = MustOpen(StoreBackend::kMem, &env);
  Result<std::unique_ptr<Store>> b = OpenStore(StoreBackend::kMem, "", &env);
  ASSERT_TRUE(b.ok());
  ReadTransaction foreign = (*b)->BeginRead();
  EXPECT_EQ(a->Get(foreign, "k").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(a->Scan(foreign, "", [](std::string_view, std::string_view) {
               return Status::Ok();
             }).code(),
            StatusCode::kInvalidArgument);
}

TEST(StoreTest, FutureFormatVersionRefusesToOpen) {
  for (StoreBackend backend : kBackends) {
    SCOPED_TRACE(StoreBackendName(backend));
    FaultInjectingEnv env;
    {
      std::unique_ptr<Store> store = MustOpen(backend, &env);
      WriteTransaction txn = store->BeginWrite();
      txn.Put("k", "v");
      txn.PutMeta("format", 999);  // "written by a newer build"
      ASSERT_TRUE(txn.Commit().ok());
    }
    Result<std::unique_ptr<Store>> reopened =
        OpenStore(backend, "/store", &env);
    EXPECT_EQ(reopened.status().code(), StatusCode::kInvalidArgument)
        << reopened.status().ToString();
  }
}

TEST(StoreTest, MemImageDamageIsCorruptionNotAnEmptyStore) {
  FaultInjectingEnv env;
  {
    std::unique_ptr<Store> store = MustOpen(StoreBackend::kMem, &env);
    WriteTransaction txn = store->BeginWrite();
    txn.Put("b/ann", "1");
    ASSERT_TRUE(txn.Commit().ok());
  }
  // Flip a payload byte: the image's CRC must catch it and the open must
  // FAIL — the image is the checkpoint of record, so reading damage as
  // "empty store" would silently drop the base.
  std::string image = env.files().at("/store/store.img");
  image[image.size() - 1] ^= 0x40;
  env.SetFileContents("/store/store.img", image);
  Result<std::unique_ptr<Store>> reopened =
      OpenStore(StoreBackend::kMem, "/store", &env);
  EXPECT_EQ(reopened.status().code(), StatusCode::kCorruption);
}

TEST(StoreTest, PageLogTornTailIsChoppedToLastCommit) {
  FaultInjectingEnv env;
  size_t first_commit_bytes = 0;
  {
    std::unique_ptr<Store> store = MustOpen(StoreBackend::kPageLog, &env);
    WriteTransaction one = store->BeginWrite();
    one.Put("b/ann", "1");
    ASSERT_TRUE(one.Commit().ok());
    first_commit_bytes = env.files().at("/store/store.plog").size();
    WriteTransaction two = store->BeginWrite();
    two.Put("b/bob", "2");
    ASSERT_TRUE(two.Commit().ok());
  }
  // Crash mid-second-frame: keep a prefix that tears the last record.
  std::string log = env.files().at("/store/store.plog");
  ASSERT_GT(log.size(), first_commit_bytes + 3);
  env.SetFileContents("/store/store.plog",
                      log.substr(0, first_commit_bytes + 3));
  Result<std::unique_ptr<Store>> reopened =
      OpenStore(StoreBackend::kPageLog, "/store", &env);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  auto* pagelog = static_cast<PageLogStore*>(reopened->get());
  EXPECT_TRUE(pagelog->recovered_torn_tail());
  EXPECT_EQ(env.files().at("/store/store.plog").size(), first_commit_bytes);
  ReadTransaction read = (*reopened)->BeginRead();
  EXPECT_TRUE((*reopened)->Contains(read, "b/ann"));
  EXPECT_FALSE((*reopened)->Contains(read, "b/bob"));
}

TEST(StoreTest, PageLogCompactsOnceDeadBytesDominate) {
  FaultInjectingEnv env;
  std::unique_ptr<Store> store = MustOpen(StoreBackend::kPageLog, &env);
  auto* pagelog = static_cast<PageLogStore*>(store.get());
  // Overwrite a handful of keys until well past the compaction floor:
  // almost every logged byte is dead, so compaction must have fired and
  // kept the file near one live image, far below the bytes appended.
  const std::string value(512, 'v');
  size_t appended = 0;
  for (int round = 0; round < 400; ++round) {
    WriteTransaction txn = store->BeginWrite();
    for (int k = 0; k < 4; ++k) {
      txn.Put("b/key" + std::to_string(k),
              value + std::to_string(round));
    }
    ASSERT_TRUE(txn.Commit().ok());
    appended += 4 * (value.size() + 16);
  }
  ASSERT_GT(appended, PageLogStore::kCompactMinBytes * 4);
  EXPECT_LT(pagelog->log_bytes(), PageLogStore::kCompactMinBytes * 2);
  EXPECT_LT(env.files().at("/store/store.plog").size(),
            PageLogStore::kCompactMinBytes * 2);

  // Everything still there, on disk and after replaying the compacted log.
  std::unique_ptr<Store> reopened = MustOpen(StoreBackend::kPageLog, &env);
  ReadTransaction read = reopened->BeginRead();
  EXPECT_EQ(reopened->key_count(), 4u);
  Result<std::string> got = reopened->Get(read, "b/key3");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, value + "399");
}

}  // namespace
}  // namespace verso
