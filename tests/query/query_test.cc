// Derived-method query layer (Section 6 extension): stratified Datalog
// over version-terms with semi-naive evaluation.

#include "query/query.h"

#include <gtest/gtest.h>

#include "core/pretty.h"
#include "parser/parser.h"

namespace verso {
namespace {

class QueryTest : public ::testing::Test {
 protected:
  ObjectBase Base(const char* text) {
    Result<ObjectBase> base = ParseObjectBase(text, engine_);
    EXPECT_TRUE(base.ok()) << base.status().ToString();
    return std::move(base).value();
  }

  ObjectBase Eval(const char* base_text, const char* rules,
                  QueryOptions options = QueryOptions()) {
    ObjectBase base = Base(base_text);
    Result<QueryProgram> program =
        ParseQueryProgram(rules, engine_.symbols());
    EXPECT_TRUE(program.ok()) << program.status().ToString();
    Result<ObjectBase> out =
        EvaluateQueries(*program, base, engine_, &stats_, options);
    EXPECT_TRUE(out.ok()) << out.status().ToString();
    return std::move(out).value();
  }

  bool Holds(const ObjectBase& base, const char* object, const char* method,
             const char* result) {
    Vid vid = engine_.versions().OfOid(engine_.symbols().Symbol(object));
    GroundApp app;
    app.result = engine_.symbols().Symbol(result);
    return base.Contains(vid, engine_.symbols().Method(method), app);
  }

  Engine engine_;
  QueryStats stats_;
};

constexpr const char* kGraph = R"(
    a.edge -> b.  b.edge -> c.  c.edge -> d.  d.edge -> e.
    x.edge -> y.
)";

constexpr const char* kClosure = R"(
    q1: derive X.reaches -> Y <- X.edge -> Y.
    q2: derive X.reaches -> Z <- X.reaches -> Y, Y.edge -> Z.
)";

TEST_F(QueryTest, TransitiveClosure) {
  ObjectBase out = Eval(kGraph, kClosure);
  for (const char* to : {"b", "c", "d", "e"}) {
    EXPECT_TRUE(Holds(out, "a", "reaches", to)) << to;
  }
  EXPECT_TRUE(Holds(out, "x", "reaches", "y"));
  EXPECT_FALSE(Holds(out, "x", "reaches", "a"));
  EXPECT_FALSE(Holds(out, "a", "reaches", "a"));
  EXPECT_EQ(stats_.derived_facts, 4u + 3u + 2u + 1u + 1u);
}

TEST_F(QueryTest, SemiNaiveMatchesNaive) {
  QueryOptions naive;
  naive.semi_naive = false;
  ObjectBase semi = Eval(kGraph, kClosure);
  QueryStats semi_stats = stats_;
  ObjectBase full = Eval(kGraph, kClosure, naive);
  EXPECT_TRUE(semi == full);
  EXPECT_GT(semi_stats.delta_joins, 0u);
}

TEST_F(QueryTest, StratifiedNegation) {
  ObjectBase out = Eval(
      "a.edge -> b.  b.edge -> c.  s.node -> a. s.node -> b. s.node -> c.",
      R"(
        q1: derive X.reaches -> Y <- X.edge -> Y.
        q2: derive X.reaches -> Z <- X.reaches -> Y, Y.edge -> Z.
        q3: derive X.sink -> yes <- S.node -> X, not X.reaches -> X,
                                    not X.edge -> X.
      )");
  // Everything is a "sink" here (no cycles); the point is that negation
  // of the recursive method evaluates after its stratum completed.
  EXPECT_TRUE(Holds(out, "c", "sink", "yes"));
  EXPECT_GE(stats_.strata, 2u);
}

TEST_F(QueryTest, NegativeRecursionRejected) {
  ObjectBase base = Base("a.edge -> b.");
  Result<QueryProgram> program = ParseQueryProgram(
      "q: derive X.weird -> yes <- X.edge -> Y, not X.weird -> yes.",
      engine_.symbols());
  ASSERT_TRUE(program.ok());
  Result<ObjectBase> out = EvaluateQueries(*program, base, engine_);
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kNotStratifiable);
}

TEST_F(QueryTest, DerivedMethodMayNotBeStored) {
  ObjectBase base = Base("a.reaches -> b.");
  Result<QueryProgram> program = ParseQueryProgram(
      "q: derive X.reaches -> Y <- X.edge -> Y.", engine_.symbols());
  ASSERT_TRUE(program.ok());
  Result<ObjectBase> out = EvaluateQueries(*program, base, engine_);
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(QueryTest, BuiltinsInQueries) {
  ObjectBase out = Eval(
      "a.sal -> 100.  b.sal -> 4000.  c.sal -> 5000.",
      "q: derive X.rich -> yes <- X.sal -> S, S > 3000.");
  EXPECT_FALSE(Holds(out, "a", "rich", "yes"));
  EXPECT_TRUE(Holds(out, "b", "rich", "yes"));
  EXPECT_TRUE(Holds(out, "c", "rich", "yes"));
}

TEST_F(QueryTest, DerivedMethodsOverVersionedFacts) {
  // Queries can read versioned stages of result(P): which objects had
  // their salary hypothetically raised?
  ObjectBase out = Eval(
      "a.sal -> 100.  mod(a).sal -> 110.  b.sal -> 50.",
      "q: derive X.was_raised -> yes <- X.sal -> S, mod(X).sal -> S2, "
      "S2 > S.");
  EXPECT_TRUE(Holds(out, "a", "was_raised", "yes"));
  EXPECT_FALSE(Holds(out, "b", "was_raised", "yes"));
}

TEST_F(QueryTest, QueryDoesNotMutateInput) {
  ObjectBase base = Base(kGraph);
  size_t facts = base.fact_count();
  Result<QueryProgram> program =
      ParseQueryProgram(kClosure, engine_.symbols());
  ASSERT_TRUE(program.ok());
  Result<ObjectBase> out = EvaluateQueries(*program, base, engine_);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(base.fact_count(), facts);
  EXPECT_GT(out->fact_count(), facts);
}

// Long chain: semi-naive must not blow up rounds (one per depth).
TEST_F(QueryTest, LongChainRounds) {
  std::string base_text;
  for (int i = 0; i < 40; ++i) {
    base_text += "n" + std::to_string(i) + ".edge -> n" +
                 std::to_string(i + 1) + ".\n";
  }
  ObjectBase out = Eval(base_text.c_str(), kClosure);
  EXPECT_TRUE(Holds(out, "n0", "reaches", "n40"));
  EXPECT_EQ(stats_.derived_facts, 40u * 41u / 2u);
}

}  // namespace
}  // namespace verso
