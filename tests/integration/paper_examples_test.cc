// End-to-end reproduction of every worked example in the paper
// (Sections 2.1 and 2.3), asserting the exact outcomes the paper states:
// the salary raise fires exactly once per employee, the enterprise update
// leaves phil in hpe at $4600 and fires bob, the hypothetical raise is
// revised away, and the recursive set-valued `anc` closes transitively.
// Also covers footnote 2 (negated update-term vs negated version-term)
// and the strata printed in Section 4.

#include <gtest/gtest.h>

#include "core/engine.h"
#include "core/pretty.h"
#include "parser/parser.h"

namespace verso {
namespace {

constexpr const char* kEnterpriseProgram = R"(
rule1: mod[E].sal -> (S, S2) <-
    E.isa -> empl / pos -> mgr / sal -> S,
    S2 = S * 1.1 + 200.
rule2: mod[E].sal -> (S, S2) <-
    E.isa -> empl / sal -> S,
    not E.pos -> mgr,
    S2 = S * 1.1.
rule3: del[mod(E)].* <-
    mod(E).isa -> empl / boss -> B / sal -> SE,
    mod(B).isa -> empl / sal -> SB,
    SE > SB.
rule4: ins[mod(E)].isa -> hpe <-
    mod(E).isa -> empl / sal -> S,
    S > 4500,
    not del[mod(E)].isa -> empl.
)";

constexpr const char* kEnterpriseBase = R"(
phil.isa -> empl.  phil.pos -> mgr.   phil.sal -> 4000.
bob.isa -> empl.   bob.boss -> phil.  bob.sal -> 4200.
)";

class PaperExamples : public ::testing::Test {
 protected:
  RunOutcome MustRun(const char* base_text, const char* program_text) {
    Result<ObjectBase> base = ParseObjectBase(base_text, engine_);
    EXPECT_TRUE(base.ok()) << base.status().ToString();
    Result<Program> program = ParseProgram(program_text, engine_);
    EXPECT_TRUE(program.ok()) << program.status().ToString();
    program_ = std::move(program).value();
    Result<RunOutcome> outcome = engine_.Run(program_, *base);
    EXPECT_TRUE(outcome.ok()) << outcome.status().ToString();
    return std::move(outcome).value();
  }

  /// True iff `object.method -> result` (symbols) holds in `base`.
  bool Holds(const ObjectBase& base, const char* object, const char* method,
             const char* result) {
    return HoldsOid(base, object, method,
                    engine_.symbols().Symbol(result));
  }
  bool HoldsInt(const ObjectBase& base, const char* object,
                const char* method, int64_t result) {
    return HoldsOid(base, object, method, engine_.symbols().Int(result));
  }
  bool HoldsOid(const ObjectBase& base, const char* object,
                const char* method, Oid result) {
    Vid vid = engine_.versions().OfOid(engine_.symbols().Symbol(object));
    GroundApp app;
    app.result = result;
    return base.Contains(vid, engine_.symbols().Method(method), app);
  }

  Engine engine_;
  Program program_;
};

// Section 2.1: "To every employee a 10% salary-raise has to be performed"
// — and it terminates, raising each salary exactly once (250 -> 275).
TEST_F(PaperExamples, SalaryRaiseFiresExactlyOnce) {
  RunOutcome outcome = MustRun(
      "henry.isa -> empl.  henry.salary -> 250.",
      "mod[E].salary -> (S, S2) <- E.isa -> empl, E.salary -> S, "
      "S2 = S * 1.1.");
  // Exactly 275, not 302.5 (a second application) and not a float-noise
  // neighbour: numerics are exact rationals.
  EXPECT_TRUE(HoldsInt(outcome.new_base, "henry", "salary", 275));
  EXPECT_FALSE(HoldsOid(
      outcome.new_base, "henry", "salary",
      engine_.symbols().Number(*Numeric::FromRatio(605, 2))));  // 302.5
  // One stratum, fixpoint after the second (unchanged) round.
  ASSERT_EQ(outcome.stratification.stratum_count(), 1u);
  EXPECT_EQ(outcome.stats.strata[0].rounds, 2u);
}

// Section 2.3, Example 1 + Figure 2: phil ends in hpe with $4600; bob is
// fired and vanishes from the new object base.
TEST_F(PaperExamples, EnterpriseUpdateMatchesFigure2) {
  RunOutcome outcome = MustRun(kEnterpriseBase, kEnterpriseProgram);

  // Figure 2's intermediate versions in result(P).
  const SymbolTable& sym = engine_.symbols();
  VersionTable& ver = engine_.versions();
  Vid phil = ver.OfOid(engine_.symbols().Symbol("phil"));
  Vid bob = ver.OfOid(engine_.symbols().Symbol("bob"));
  Vid mod_phil = ver.Child(phil, UpdateKind::kModify);
  Vid mod_bob = ver.Child(bob, UpdateKind::kModify);
  Vid del_mod_bob = ver.Child(mod_bob, UpdateKind::kDelete);
  Vid ins_mod_phil = ver.Child(mod_phil, UpdateKind::kInsert);

  GroundApp sal4600;
  sal4600.result = engine_.symbols().Int(4600);
  EXPECT_TRUE(outcome.result.Contains(mod_phil, engine_.symbols().Method("sal"),
                                      sal4600));
  GroundApp sal4620;
  sal4620.result = engine_.symbols().Int(4620);
  EXPECT_TRUE(outcome.result.Contains(mod_bob, engine_.symbols().Method("sal"),
                                      sal4620));
  // del(mod(bob)) survives as a note of existence only.
  ASSERT_NE(outcome.result.StateOf(del_mod_bob), nullptr);
  EXPECT_TRUE(
      outcome.result.StateOf(del_mod_bob)->OnlyExists(sym.exists_method()));
  // ins(mod(phil)) carries both isa results.
  GroundApp isa_empl;
  isa_empl.result = engine_.symbols().Symbol("empl");
  GroundApp isa_hpe;
  isa_hpe.result = engine_.symbols().Symbol("hpe");
  EXPECT_TRUE(outcome.result.Contains(ins_mod_phil,
                                      engine_.symbols().Method("isa"),
                                      isa_empl));
  EXPECT_TRUE(outcome.result.Contains(ins_mod_phil,
                                      engine_.symbols().Method("isa"),
                                      isa_hpe));

  // The committed object base, canonically printed.
  EXPECT_EQ(ObjectBaseToString(outcome.new_base, sym, ver),
            "phil.exists -> phil.\n"
            "phil.isa -> empl.\n"
            "phil.isa -> hpe.\n"
            "phil.pos -> mgr.\n"
            "phil.sal -> 4600.\n");
}

// Section 4: the stratification printed for Example 1 is
// {rule1, rule2}, {rule3}, {rule4}.
TEST_F(PaperExamples, EnterpriseStrataMatchSection4) {
  RunOutcome outcome = MustRun(kEnterpriseBase, kEnterpriseProgram);
  ASSERT_EQ(outcome.stratification.stratum_count(), 3u);
  EXPECT_EQ(StratificationToString(outcome.stratification, program_),
            "stratum 0: rule1 rule2\n"
            "stratum 1: rule3\n"
            "stratum 2: rule4\n");
}

// Footnote 2: replacing the negated update-term of rule4 by a negated
// version-term does NOT have the intended effect — the rule then fires
// for the fired employee bob, materializing ins(mod(bob)) next to
// del(mod(bob)), which the run-time linearity check rejects.
TEST_F(PaperExamples, Footnote2NegatedVersionTermIsWrong) {
  Result<ObjectBase> base = ParseObjectBase(kEnterpriseBase, engine_);
  ASSERT_TRUE(base.ok());
  std::string wrong(kEnterpriseProgram);
  size_t at = wrong.find("not del[mod(E)].isa -> empl");
  ASSERT_NE(at, std::string::npos);
  wrong.replace(at, 27, "not del(mod(E)).isa -> empl");
  Result<Program> program = ParseProgram(wrong, engine_);
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  Result<RunOutcome> outcome = engine_.Run(*program, *base);
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kNotVersionLinear);
}

// Section 2.3, Example 2: hypothetical salary raise, revised right away;
// mod(mod(e)) equals the original state and `richest` is answered from
// the middle version.
TEST_F(PaperExamples, HypotheticalRaiseIsRevised) {
  const char* base = R"(
      peter.isa -> empl.  peter.sal -> 100.  peter.factor -> 3.
      anna.isa -> empl.   anna.sal -> 200.   anna.factor -> 1.
  )";
  const char* program = R"(
      r1: mod[E].sal -> (S, S2) <- E.sal -> S / factor -> F, S2 = S * F.
      r2: mod[mod(E)].sal -> (S2, S) <- mod(E).sal -> S2, E.sal -> S.
      r3: ins[mod(mod(peter))].richest -> no <-
          mod(E).sal -> SE, mod(peter).sal -> SP, SE > SP.
      r4: ins[ins(mod(mod(peter)))].richest -> yes <-
          not ins(mod(mod(peter))).richest -> no.
  )";
  RunOutcome outcome = MustRun(base, program);
  // peter would be the richest: 100*3 = 300 > 200*1; and his committed
  // salary is the *original* 100 — the raise was hypothetical.
  EXPECT_TRUE(Holds(outcome.new_base, "peter", "richest", "yes"));
  EXPECT_FALSE(Holds(outcome.new_base, "peter", "richest", "no"));
  EXPECT_TRUE(HoldsInt(outcome.new_base, "peter", "sal", 100));
  EXPECT_TRUE(HoldsInt(outcome.new_base, "anna", "sal", 200));

  // Strata: r1 below r2 and r3; r2, r3 below r4 (negation).
  const auto& s = outcome.stratification.stratum_of_rule;
  EXPECT_LT(s[0], s[1]);
  EXPECT_LT(s[0], s[2]);
  EXPECT_LT(s[1], s[3]);
  EXPECT_LT(s[2], s[3]);
}

TEST_F(PaperExamples, HypotheticalRaiseNegativeCase) {
  const char* base = R"(
      peter.isa -> empl.  peter.sal -> 100.  peter.factor -> 3.
      anna.isa -> empl.   anna.sal -> 200.   anna.factor -> 2.
  )";
  const char* program = R"(
      r1: mod[E].sal -> (S, S2) <- E.sal -> S / factor -> F, S2 = S * F.
      r2: mod[mod(E)].sal -> (S2, S) <- mod(E).sal -> S2, E.sal -> S.
      r3: ins[mod(mod(peter))].richest -> no <-
          mod(E).sal -> SE, mod(peter).sal -> SP, SE > SP.
      r4: ins[ins(mod(mod(peter)))].richest -> yes <-
          not ins(mod(mod(peter))).richest -> no.
  )";
  RunOutcome outcome = MustRun(base, program);
  // anna's hypothetical 400 beats peter's 300.
  EXPECT_TRUE(Holds(outcome.new_base, "peter", "richest", "no"));
  EXPECT_FALSE(Holds(outcome.new_base, "peter", "richest", "yes"));
  EXPECT_TRUE(HoldsInt(outcome.new_base, "peter", "sal", 100));
}

// Section 2.3, Example 3: recursive rules computing set-valued `anc`.
TEST_F(PaperExamples, RecursiveAncestorsAreSetValued) {
  const char* base = R"(
      p1.isa -> person.  p1.parents -> p2.  p1.parents -> p3.
      p2.isa -> person.  p2.parents -> p4.
      p3.isa -> person.
      p4.isa -> person.  p4.parents -> p5.
      p5.isa -> person.
  )";
  const char* program = R"(
      r1: ins[X].anc -> P <- X.isa -> person / parents -> P.
      r2: ins[X].anc -> P <- ins(X).isa -> person / anc -> A,
                             A.isa -> person / parents -> P.
  )";
  RunOutcome outcome = MustRun(base, program);
  // Both rules share one stratum (positive recursion through ins(X)).
  EXPECT_EQ(outcome.stratification.stratum_count(), 1u);
  for (const char* anc : {"p2", "p3", "p4", "p5"}) {
    EXPECT_TRUE(Holds(outcome.new_base, "p1", "anc", anc)) << anc;
  }
  EXPECT_FALSE(Holds(outcome.new_base, "p1", "anc", "p1"));
  EXPECT_TRUE(Holds(outcome.new_base, "p2", "anc", "p4"));
  EXPECT_TRUE(Holds(outcome.new_base, "p2", "anc", "p5"));
  EXPECT_FALSE(Holds(outcome.new_base, "p3", "anc", "p4"));
  EXPECT_TRUE(Holds(outcome.new_base, "p4", "anc", "p5"));
  // p3 and p5 have no parents: rule 1 never fires for them, so they keep
  // their original state (and no anc method).
  EXPECT_TRUE(Holds(outcome.new_base, "p3", "isa", "person"));
}

}  // namespace
}  // namespace verso
