// Parameterized property sweeps over generated workloads: the semantic
// invariants the paper's construction guarantees, checked at scale and
// across seeds.

#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "baselines/baselines.h"
#include "core/engine.h"
#include "core/pretty.h"
#include "parser/parser.h"
#include "workloads/workloads.h"

namespace verso {
namespace {

struct SweepParam {
  size_t employees;
  uint64_t seed;
};

class EnterpriseSweep : public ::testing::TestWithParam<SweepParam> {};

// Invariant bundle on the paper's running program over random
// enterprises:
//  * termination in exactly 2 rounds per stratum (non-recursive rules),
//  * every employee's salary raised exactly once (exact rationals),
//  * fired employees vanish; survivors keep all untouched methods,
//  * hpe membership is exactly "survivor with raised salary > 4500",
//  * bystander objects are byte-identical (frame property),
//  * result(P) is version-linear (commit succeeds).
TEST_P(EnterpriseSweep, RunningExampleInvariants) {
  const SweepParam param = GetParam();
  Engine engine;
  ObjectBase base = engine.MakeBase();
  EnterpriseOptions options;
  options.employees = param.employees;
  options.seed = param.seed;
  options.bystanders = 16;
  Enterprise enterprise = MakeEnterprise(options, engine, base);

  Result<Program> program = ParseProgram(kEnterpriseProgramText, engine);
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  Result<RunOutcome> outcome = engine.Run(*program, base);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();

  // Termination shape: 3 strata, each fixpointing in 2 rounds.
  ASSERT_EQ(outcome->stats.strata.size(), 3u);
  for (const StratumStats& s : outcome->stats.strata) {
    EXPECT_LE(s.rounds, 2u);
  }

  const SymbolTable& sym = engine.symbols();
  VersionTable& ver = engine.versions();
  MethodId sal = engine.symbols().Method("sal");
  MethodId isa = engine.symbols().Method("isa");
  Numeric rate = *Numeric::Parse("1.1");

  // Reference semantics computed independently in plain C++.
  const size_t n = enterprise.names.size();
  std::vector<Numeric> raised(n);
  for (size_t i = 0; i < n; ++i) {
    Numeric s = Numeric::FromInt(enterprise.salary[i]);
    Numeric r = *Numeric::Mul(s, rate);
    if (enterprise.is_manager[i]) r = *Numeric::Add(r, Numeric::FromInt(200));
    raised[i] = r;
  }
  std::vector<bool> fired(n, false);
  for (size_t i = 0; i < n; ++i) {
    if (enterprise.boss[i] >= 0 &&
        Numeric::Compare(raised[i],
                         raised[static_cast<size_t>(enterprise.boss[i])]) > 0) {
      fired[i] = true;
    }
  }

  for (size_t i = 0; i < n; ++i) {
    Vid v = ver.OfOid(engine.symbols().Symbol(enterprise.names[i]));
    const VersionState* state = outcome->new_base.StateOf(v);
    if (fired[i]) {
      EXPECT_EQ(state, nullptr) << enterprise.names[i] << " should be fired";
      continue;
    }
    ASSERT_NE(state, nullptr) << enterprise.names[i];
    // Salary raised exactly once.
    const std::vector<GroundApp>* sal_apps = state->Find(sal);
    ASSERT_NE(sal_apps, nullptr);
    ASSERT_EQ(sal_apps->size(), 1u);
    EXPECT_EQ(sym.NumberValue(sal_apps->front().result), raised[i])
        << enterprise.names[i];
    // hpe membership.
    GroundApp hpe;
    hpe.result = engine.symbols().Symbol("hpe");
    bool expect_hpe = Numeric::Compare(raised[i], Numeric::FromInt(4500)) > 0;
    EXPECT_EQ(state->Contains(isa, hpe), expect_hpe) << enterprise.names[i];
    // Untouched methods preserved.
    GroundApp empl;
    empl.result = engine.symbols().Symbol("empl");
    EXPECT_TRUE(state->Contains(isa, empl));
  }

  // Frame property: bystanders are untouched, fact for fact.
  MethodId mass = engine.symbols().Method("mass");
  for (size_t i = 0; i < options.bystanders; ++i) {
    Vid rock = ver.OfOid(engine.symbols().Symbol("rock" + std::to_string(i)));
    const VersionState* before = base.StateOf(rock);
    const VersionState* after = outcome->new_base.StateOf(rock);
    ASSERT_NE(before, nullptr);
    ASSERT_NE(after, nullptr);
    EXPECT_EQ(before->Find(mass)->front().result,
              after->Find(mass)->front().result);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, EnterpriseSweep,
    ::testing::Values(SweepParam{2, 1}, SweepParam{8, 2}, SweepParam{32, 3},
                      SweepParam{64, 4}, SweepParam{128, 5},
                      SweepParam{64, 99}, SweepParam{64, 1234}),
    [](const ::testing::TestParamInfo<SweepParam>& info) {
      return "n" + std::to_string(info.param.employees) + "_seed" +
             std::to_string(info.param.seed);
    });

class GenealogySweep : public ::testing::TestWithParam<SweepParam> {};

// The recursive insert program computes exactly the transitive closure of
// `parents` (reference closure computed independently).
TEST_P(GenealogySweep, AncestorsAreTransitiveClosure) {
  Engine engine;
  ObjectBase base = engine.MakeBase();
  GenealogyOptions options;
  options.persons = GetParam().employees;
  options.seed = GetParam().seed;
  Genealogy g = MakeGenealogy(options, engine, base);

  Result<Program> program = ParseProgram(kAncestorsProgramText, engine);
  ASSERT_TRUE(program.ok());
  Result<RunOutcome> outcome = engine.Run(*program, base);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();

  std::vector<std::vector<int>> closure = g.AncestorClosure();
  MethodId anc = engine.symbols().Method("anc");
  for (size_t i = 0; i < g.names.size(); ++i) {
    Vid v = engine.versions().OfOid(engine.symbols().Symbol(g.names[i]));
    const VersionState* state = outcome->new_base.StateOf(v);
    ASSERT_NE(state, nullptr);
    const std::vector<GroundApp>* apps = state->Find(anc);
    size_t got = apps == nullptr ? 0 : apps->size();
    EXPECT_EQ(got, closure[i].size()) << g.names[i];
    for (int a : closure[i]) {
      GroundApp app;
      app.result = engine.symbols().Symbol(g.names[static_cast<size_t>(a)]);
      EXPECT_TRUE(state->Contains(anc, app))
          << g.names[i] << " anc " << g.names[static_cast<size_t>(a)];
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, GenealogySweep,
    ::testing::Values(SweepParam{4, 11}, SweepParam{16, 12},
                      SweepParam{48, 13}, SweepParam{96, 14},
                      SweepParam{48, 500}),
    [](const ::testing::TestParamInfo<SweepParam>& info) {
      return "n" + std::to_string(info.param.employees) + "_seed" +
             std::to_string(info.param.seed);
    });

// Index consistency: after any randomized sequence of inserts, erases,
// COW copies (detach points), and version replacements, a bound-result
// lookup through the lazily built result index enumerates exactly the
// facts a full scan filtered by result does — and building the index on
// one side never breaks equality or structural sharing with the other.
TEST(PropertyTest, ResultIndexLookupsMatchFullScans) {
  for (uint64_t seed : {7ull, 77ull, 777ull}) {
    std::mt19937_64 rng(seed);
    SymbolTable symbols;
    VersionTable versions;
    ObjectBase base(symbols.exists_method(), &versions);

    constexpr int kVersions = 6;
    constexpr int kMethods = 4;
    constexpr int kResults = 5;
    constexpr int kArgs = 3;
    std::vector<Vid> vids;
    for (int i = 0; i < kVersions; ++i) {
      vids.push_back(
          versions.OfOid(symbols.Symbol("o" + std::to_string(i))));
    }
    std::vector<MethodId> methods;
    for (int i = 0; i < kMethods; ++i) {
      methods.push_back(symbols.Method("m" + std::to_string(i)));
    }
    std::vector<Oid> results;
    for (int i = 0; i < kResults; ++i) {
      results.push_back(symbols.Symbol("r" + std::to_string(i)));
    }

    auto random_app = [&]() {
      GroundApp app;
      app.args.push_back(symbols.Int(static_cast<int64_t>(rng() % kArgs)));
      app.result = results[rng() % kResults];
      return app;
    };

    // `shadow` holds COW copies taken mid-sequence: every copy is a
    // detach point for later writes to `base`, and each copy's lookups
    // must keep agreeing with its own scans after the original moves on.
    std::vector<ObjectBase> shadow;
    auto check_one = [&](const ObjectBase& b) {
      for (Vid vid : vids) {
        const VersionState* state = b.StateOf(vid);
        if (state == nullptr) continue;
        for (MethodId method : methods) {
          const std::vector<GroundApp>* apps = state->Find(method);
          for (Oid result : results) {
            std::vector<GroundApp> via_index;
            Status s = state->ForEachAppWithResult(
                method, result, nullptr, [&](const GroundApp& app) {
                  via_index.push_back(app);
                  return Status::Ok();
                });
            ASSERT_TRUE(s.ok());
            std::vector<GroundApp> via_scan;
            if (apps != nullptr) {
              for (const GroundApp& app : *apps) {
                if (app.result == result) via_scan.push_back(app);
              }
            }
            EXPECT_EQ(via_index, via_scan);
          }
        }
      }
    };

    for (int step = 0; step < 300; ++step) {
      Vid vid = vids[rng() % vids.size()];
      MethodId method = methods[rng() % methods.size()];
      switch (rng() % 6) {
        case 0:
        case 1:
          base.Insert(vid, method, random_app());
          break;
        case 2:
          base.Erase(vid, method, random_app());
          break;
        case 3: {  // COW copy: later writes to base must detach.
          if (shadow.size() < 4) shadow.push_back(base);
          break;
        }
        case 4: {  // Replace a version with a mutated COW copy.
          const VersionState* cur = base.StateOf(vid);
          VersionState next = cur == nullptr ? VersionState() : *cur;
          next.Insert(method, random_app());
          next.Erase(method, random_app());
          base.ReplaceVersion(vid, std::move(next));
          break;
        }
        case 5: {  // Probe now: builds lazy indexes mid-sequence.
          const VersionState* state = base.StateOf(vid);
          if (state != nullptr) {
            Status s = state->ForEachAppWithResult(
                method, results[rng() % results.size()], nullptr,
                [&](const GroundApp&) { return Status::Ok(); });
            ASSERT_TRUE(s.ok());
          }
          break;
        }
      }
      if (step % 50 == 49) {
        check_one(base);
        for (const ObjectBase& copy : shadow) check_one(copy);
      }
    }
    check_one(base);
    for (const ObjectBase& copy : shadow) {
      check_one(copy);
      // Lazy index builds above must not have broken value equality:
      // a fact-by-fact rebuild (distinct storage, no indexes) still
      // compares equal to the probed copy.
      ObjectBase rebuilt(copy.exists_method(), copy.version_table());
      for (const auto& [vid, state] : copy.versions()) {
        for (const auto& [method, apps] : state->methods()) {
          for (const GroundApp& app : apps) rebuilt.Insert(vid, method, app);
        }
      }
      EXPECT_TRUE(copy == rebuilt);
    }
  }
}

// A program whose bodies never match leaves ob' == sealed input.
TEST(PropertyTest, NoOpProgramIsIdentity) {
  Engine engine;
  ObjectBase base = engine.MakeBase();
  EnterpriseOptions options;
  options.employees = 32;
  MakeEnterprise(options, engine, base);
  Result<Program> program = ParseProgram(
      "r: ins[E].tag -> t <- E.isa -> unicorn.", engine);
  ASSERT_TRUE(program.ok());
  Result<RunOutcome> outcome = engine.Run(*program, base);
  ASSERT_TRUE(outcome.ok());
  ObjectBase sealed = base;
  sealed.SealExistence();
  EXPECT_TRUE(outcome->new_base == sealed);
  EXPECT_EQ(outcome->stats.versions_materialized, 0u);
}

// Determinism: two runs over the same seed produce identical canonical
// prints (set semantics, no iteration-order leakage).
TEST(PropertyTest, RunsAreDeterministic) {
  std::string first;
  for (int run = 0; run < 2; ++run) {
    Engine engine;
    ObjectBase base = engine.MakeBase();
    EnterpriseOptions options;
    options.employees = 48;
    options.seed = 77;
    MakeEnterprise(options, engine, base);
    Result<Program> program = ParseProgram(kEnterpriseProgramText, engine);
    ASSERT_TRUE(program.ok());
    Result<RunOutcome> outcome = engine.Run(*program, base);
    ASSERT_TRUE(outcome.ok());
    std::string printed = ObjectBaseToString(
        outcome->new_base, engine.symbols(), engine.versions());
    if (run == 0) {
      first = printed;
    } else {
      EXPECT_EQ(printed, first);
    }
  }
}

// The guarded modular baseline (manual control) agrees with verso on the
// committed result for the running example, across seeds.
TEST(PropertyTest, GuardedModularBaselineAgreesWithVerso) {
  for (uint64_t seed : {21ull, 22ull, 23ull}) {
    Engine engine;
    ObjectBase base = engine.MakeBase();
    EnterpriseOptions options;
    options.employees = 40;
    options.seed = seed;
    MakeEnterprise(options, engine, base);

    Result<Program> program = ParseProgram(kEnterpriseProgramText, engine);
    ASSERT_TRUE(program.ok());
    Result<RunOutcome> verso_out = engine.Run(*program, base);
    ASSERT_TRUE(verso_out.ok());

    std::vector<Program> modules;
    auto add = [&](const char* text) {
      Result<Program> m = ParseProgram(text, engine);
      ASSERT_TRUE(m.ok());
      modules.push_back(std::move(m).value());
    };
    add("m1a: mod[E].sal -> (S, S2) <- E.isa -> empl / pos -> mgr / sal -> S,"
        " not E.raised -> yes, S2 = S * 1.1 + 200."
        "m1b: mod[E].sal -> (S, S2) <- E.isa -> empl / sal -> S,"
        " not E.pos -> mgr, not E.raised -> yes, S2 = S * 1.1."
        "m1c: ins[E].raised -> yes <- E.isa -> empl.");
    add("m2: del[E].* <- E.isa -> empl / boss -> B / sal -> SE,"
        " B.isa -> empl / sal -> SB, SE > SB.");
    add("m3: ins[E].isa -> hpe <- E.isa -> empl / sal -> S, S > 4500.");
    Result<InPlaceOutcome> modular = RunModularUpdate(
        modules, base, engine.symbols(), engine.versions());
    ASSERT_TRUE(modular.ok());
    ASSERT_FALSE(modular->diverged);

    // Compare survivor salaries and hpe membership (the baseline keeps
    // husk objects and `raised` tags, so compare method-by-method).
    MethodId sal = engine.symbols().Method("sal");
    MethodId isa = engine.symbols().Method("isa");
    for (const auto& [vid, state] : verso_out->new_base.versions()) {
      const std::vector<GroundApp>* vs = state->Find(sal);
      if (vs == nullptr) continue;
      const VersionState* ms = modular->base.StateOf(vid);
      ASSERT_NE(ms, nullptr);
      ASSERT_NE(ms->Find(sal), nullptr);
      EXPECT_EQ(*ms->Find(sal), *vs);
      GroundApp hpe;
      hpe.result = engine.symbols().Symbol("hpe");
      EXPECT_EQ(ms->Contains(isa, hpe), state->Contains(isa, hpe));
    }
  }
}

}  // namespace
}  // namespace verso
