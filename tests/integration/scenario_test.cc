// End-to-end scenario: a quarter of enterprise life run through the
// persistent Database — hiring, raises, a round of firings, and a
// reorganization — each step an update-program committed as a
// transaction, with history inspection and crash recovery in the middle.
// Exercises parser + engine + versioning + history + storage together.

#include <gtest/gtest.h>

#include <filesystem>

#include "core/pretty.h"
#include "history/history.h"
#include "parser/parser.h"
#include "storage/database.h"

namespace verso {
namespace {

class ScenarioTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/verso_scenario";
    std::filesystem::remove_all(dir_);
  }

  Program Prog(Engine& engine, const char* text) {
    Result<Program> p = ParseProgram(text, engine);
    EXPECT_TRUE(p.ok()) << p.status().ToString();
    return std::move(p).value();
  }

  bool Holds(Engine& engine, const ObjectBase& base, const char* object,
             const char* method, const char* result) {
    Vid vid = engine.versions().OfOid(engine.symbols().Symbol(object));
    GroundApp app;
    app.result = engine.symbols().Symbol(result);
    return base.Contains(vid, engine.symbols().Method(method), app);
  }
  bool HoldsInt(Engine& engine, const ObjectBase& base, const char* object,
                const char* method, int64_t result) {
    Vid vid = engine.versions().OfOid(engine.symbols().Symbol(object));
    GroundApp app;
    app.result = engine.symbols().Int(result);
    return base.Contains(vid, engine.symbols().Method(method), app);
  }

  std::string dir_;
};

TEST_F(ScenarioTest, AQuarterOfEnterpriseLife) {
  {
    Engine engine;
    Result<std::unique_ptr<Database>> db = Database::Open(dir_, engine);
    ASSERT_TRUE(db.ok());

    // Month 0: initial staffing.
    Result<ObjectBase> initial = ParseObjectBase(R"(
        ada.isa -> empl.   ada.pos -> mgr.   ada.sal -> 5000.
        ben.isa -> empl.   ben.boss -> ada.  ben.sal -> 3000.
        cleo.isa -> empl.  cleo.boss -> ada. cleo.sal -> 3200.
    )", engine);
    ASSERT_TRUE(initial.ok());
    ASSERT_TRUE((*db)->ImportBase(*initial).ok());

    // Month 1: hire dan (object creation via insert on a fresh OID).
    Program hire = Prog(engine, R"(
        h1: ins[dan].isa -> empl <- ada.isa -> empl.
        h2: ins[ins(dan)].boss -> ada <- ins(dan).isa -> empl.
        h3: ins[ins(ins(dan))].sal -> 2800 <- ins(ins(dan)).isa -> empl.
    )");
    ASSERT_TRUE((*db)->Execute(hire).ok());
    EXPECT_TRUE(Holds(engine, (*db)->current(), "dan", "isa", "empl"));
    EXPECT_TRUE(HoldsInt(engine, (*db)->current(), "dan", "sal", 2800));

    // Month 2: across-the-board raise with a manager bonus; inspect the
    // process history before it is folded into the committed base.
    Program raise = Prog(engine, R"(
        r1: mod[E].sal -> (S, S2) <-
            E.isa -> empl / pos -> mgr / sal -> S, S2 = S * 1.1 + 200.
        r2: mod[E].sal -> (S, S2) <-
            E.isa -> empl / sal -> S, not E.pos -> mgr, S2 = S * 1.1.
    )");
    Result<RunOutcome> raised = (*db)->Execute(raise);
    ASSERT_TRUE(raised.ok());
    Result<ObjectHistory> ada_history = HistoryOf(
        raised->result, engine.symbols().Symbol("ada"), engine.symbols(),
        engine.versions());
    ASSERT_TRUE(ada_history.ok());
    ASSERT_EQ(ada_history->update_group_count(), 1u);
    EXPECT_EQ(engine.symbols().NumberValue(
                  ada_history->stages[1].modified[0].new_result),
              Numeric::FromInt(5700));
    EXPECT_TRUE(HoldsInt(engine, (*db)->current(), "ben", "sal", 3300));
    EXPECT_TRUE(HoldsInt(engine, (*db)->current(), "dan", "sal", 3080));
  }

  // Crash: reopen from disk (snapshot absent, WAL replay only).
  {
    Engine engine;
    Result<std::unique_ptr<Database>> db = Database::Open(dir_, engine);
    ASSERT_TRUE(db.ok());
    EXPECT_FALSE((*db)->recovered_from_torn_wal());
    EXPECT_TRUE(HoldsInt(engine, (*db)->current(), "ada", "sal", 5700));
    EXPECT_TRUE(HoldsInt(engine, (*db)->current(), "cleo", "sal", 3520));

    // Month 3: cleo is promoted to manager and stops reporting to ada;
    // whoever now out-earns their remaining boss is let go (nobody —
    // check the rule really is conditional).
    Program reorg = Prog(engine, R"(
        p1: ins[cleo].pos -> mgr <- cleo.isa -> empl.
        p2: del[ins(cleo)].boss -> ada <- ins(cleo).pos -> mgr.
        f1: del[E].* <- E.isa -> empl / boss -> B / sal -> SE,
                        B.isa -> empl / sal -> SB, SE > SB.
    )");
    ASSERT_TRUE((*db)->Execute(reorg).ok());
    EXPECT_TRUE(Holds(engine, (*db)->current(), "cleo", "pos", "mgr"));
    EXPECT_FALSE(Holds(engine, (*db)->current(), "cleo", "boss", "ada"));
    EXPECT_TRUE(Holds(engine, (*db)->current(), "ben", "isa", "empl"));

    // Checkpoint and compact.
    ASSERT_TRUE((*db)->Checkpoint().ok());
  }

  // Final reopen from the snapshot alone; the quarter's end state holds.
  {
    Engine engine;
    Result<std::unique_ptr<Database>> db = Database::Open(dir_, engine);
    ASSERT_TRUE(db.ok());
    EXPECT_EQ((*db)->wal_records_since_checkpoint(), 0u);
    EXPECT_TRUE(HoldsInt(engine, (*db)->current(), "dan", "sal", 3080));
    EXPECT_TRUE(Holds(engine, (*db)->current(), "cleo", "pos", "mgr"));
    // Four employees on the books.
    size_t employees = 0;
    MethodId isa = engine.symbols().Method("isa");
    GroundApp empl;
    empl.result = engine.symbols().Symbol("empl");
    for (const auto& [vid, state] : (*db)->current().versions()) {
      if (state->Contains(isa, empl)) ++employees;
    }
    EXPECT_EQ(employees, 4u);
  }
}

}  // namespace
}  // namespace verso
