// Edge cases across the full pipeline: arity overloading, string values,
// pre-versioned input bases, deep version terms, argument methods under
// update, and multi-program composition.

#include <gtest/gtest.h>

#include "core/engine.h"
#include "core/pretty.h"
#include "parser/parser.h"

namespace verso {
namespace {

class EdgeCases : public ::testing::Test {
 protected:
  RunOutcome MustRun(const char* base_text, const char* program_text) {
    Result<ObjectBase> base = ParseObjectBase(base_text, engine_);
    EXPECT_TRUE(base.ok()) << base.status().ToString();
    Result<Program> program = ParseProgram(program_text, engine_);
    EXPECT_TRUE(program.ok()) << program.status().ToString();
    Result<RunOutcome> outcome = engine_.Run(*program, *base);
    EXPECT_TRUE(outcome.ok()) << outcome.status().ToString();
    return std::move(outcome).value();
  }

  std::string Print(const ObjectBase& base) {
    return ObjectBaseToString(base, engine_.symbols(), engine_.versions());
  }

  Engine engine_;
};

// The same method name with different arities coexists; patterns match
// by arity.
TEST_F(EdgeCases, ArityOverloadedMethods) {
  RunOutcome outcome = MustRun(
      "m.at -> 1.  m.at@7 -> 2.  m.at@7,8 -> 3.",
      "r: ins[m].hits -> V <- m.at@I -> V.");
  EXPECT_EQ(Print(outcome.new_base),
            "m.at -> 1.\n"
            "m.at@7 -> 2.\n"
            "m.at@7,8 -> 3.\n"
            "m.exists -> m.\n"
            "m.hits -> 2.\n");
}

// Updates over methods *with* arguments: a modify addresses exactly one
// (args, result) application.
TEST_F(EdgeCases, ModifyWithArguments) {
  RunOutcome outcome = MustRun(
      "grid.cell@1,1 -> 0.  grid.cell@1,2 -> 0.",
      "r: mod[G].cell@1,1 -> (V, V2) <- G.cell@1,1 -> V, V2 = V + 5.");
  Vid grid = engine_.versions().OfOid(engine_.symbols().Symbol("grid"));
  GroundApp changed;
  changed.args = {engine_.symbols().Int(1), engine_.symbols().Int(1)};
  changed.result = engine_.symbols().Int(5);
  EXPECT_TRUE(outcome.new_base.Contains(
      grid, engine_.symbols().Method("cell"), changed));
  GroundApp untouched;
  untouched.args = {engine_.symbols().Int(1), engine_.symbols().Int(2)};
  untouched.result = engine_.symbols().Int(0);
  EXPECT_TRUE(outcome.new_base.Contains(
      grid, engine_.symbols().Method("cell"), untouched));
}

// String values flow through updates and comparisons.
TEST_F(EdgeCases, StringValues) {
  RunOutcome outcome = MustRun(
      "doc.title -> \"draft\".",
      "r: mod[D].title -> (T, \"final\") <- D.title -> T, T = \"draft\".");
  Vid doc = engine_.versions().OfOid(engine_.symbols().Symbol("doc"));
  GroundApp title;
  title.result = engine_.symbols().String("final");
  EXPECT_TRUE(outcome.new_base.Contains(
      doc, engine_.symbols().Method("title"), title));
}

// Negative numbers and rational arithmetic in one rule.
TEST_F(EdgeCases, NegativeAndRationalArithmetic) {
  RunOutcome outcome = MustRun(
      "acct.balance -> -10.",
      "r: mod[A].balance -> (B, B2) <- acct.balance -> B, B < 0, "
      "B2 = B * 1.5 - 2, A = acct.");
  Vid acct = engine_.versions().OfOid(engine_.symbols().Symbol("acct"));
  GroundApp balance;
  balance.result =
      engine_.symbols().Number(*Numeric::Parse("-17"));  // -10*1.5-2
  EXPECT_TRUE(outcome.new_base.Contains(
      acct, engine_.symbols().Method("balance"), balance));
}

// The input object base may already contain versioned facts (e.g. a
// printed result(P) loaded back): evaluation continues from there.
TEST_F(EdgeCases, PreVersionedInputBase) {
  RunOutcome outcome = MustRun(
      R"(
        e.exists -> e.        e.isa -> empl.   e.sal -> 100.
        mod(e).exists -> e.   mod(e).isa -> empl.  mod(e).sal -> 110.
      )",
      // Reads the mod-version that was already present in the input.
      "r: ins[mod(E)].checked -> yes <- mod(E).sal -> S, S > 105.");
  Vid e = engine_.versions().OfOid(engine_.symbols().Symbol("e"));
  Vid target = engine_.versions().Child(
      engine_.versions().Child(e, UpdateKind::kModify), UpdateKind::kInsert);
  GroundApp checked;
  checked.result = engine_.symbols().Symbol("yes");
  EXPECT_TRUE(outcome.result.Contains(
      target, engine_.symbols().Method("checked"), checked));
  // Commit picks ins(mod(e)) as the final version.
  GroundApp sal;
  sal.result = engine_.symbols().Int(110);
  EXPECT_TRUE(
      outcome.new_base.Contains(e, engine_.symbols().Method("sal"), sal));
}

// Three consecutive update groups in one program: Figure 1's
// ins(del(mod(o))) chain end to end.
TEST_F(EdgeCases, ThreeStageChain) {
  RunOutcome outcome = MustRun(
      "o.a -> 1.  o.b -> 2.",
      R"(
        s1: mod[o].a -> (V, V2) <- o.a -> V, V2 = V + 10.
        s2: del[mod(o)].b -> 2 <- mod(o).b -> 2.
        s3: ins[del(mod(o))].c -> 3 <- del(mod(o)).a -> V.
      )");
  EXPECT_EQ(Print(outcome.new_base),
            "o.a -> 11.\n"
            "o.c -> 3.\n"
            "o.exists -> o.\n");
}

// Two programs applied in sequence through ob' compose like one
// transaction after another (the Database layer relies on this).
TEST_F(EdgeCases, ComposedPrograms) {
  Result<ObjectBase> base =
      ParseObjectBase("x.n -> 1.", engine_);
  ASSERT_TRUE(base.ok());
  Result<Program> inc = ParseProgram(
      "r: mod[E].n -> (V, V2) <- E.n -> V, V2 = V + 1.", engine_);
  ASSERT_TRUE(inc.ok());
  ObjectBase current = *base;
  for (int i = 0; i < 5; ++i) {
    Result<RunOutcome> out = engine_.Run(*inc, current);
    ASSERT_TRUE(out.ok());
    current = out->new_base;
  }
  Vid x = engine_.versions().OfOid(engine_.symbols().Symbol("x"));
  GroundApp n;
  n.result = engine_.symbols().Int(6);
  EXPECT_TRUE(current.Contains(x, engine_.symbols().Method("n"), n));
}

// An update-term reading a *different* object's update: cross-object
// coordination ("if bob was fired, flag phil").
TEST_F(EdgeCases, CrossObjectUpdateObservation) {
  RunOutcome outcome = MustRun(
      R"(
        phil.isa -> empl.  phil.sal -> 10.
        bob.isa -> empl.   bob.sal -> 20.  bob.flagged -> yes.
      )",
      R"(
        s1: del[bob].* <- bob.flagged -> yes.
        s2: ins[phil].note -> bob_left <- del[bob].isa -> empl.
      )");
  Vid phil = engine_.versions().OfOid(engine_.symbols().Symbol("phil"));
  Vid target = engine_.versions().Child(phil, UpdateKind::kInsert);
  GroundApp note;
  note.result = engine_.symbols().Symbol("bob_left");
  EXPECT_TRUE(outcome.result.Contains(
      target, engine_.symbols().Method("note"), note));
  // bob is gone from ob'.
  Vid bob = engine_.versions().OfOid(engine_.symbols().Symbol("bob"));
  EXPECT_EQ(outcome.new_base.StateOf(bob), nullptr);
}

// exists survives del[V].* and cannot be forged into heads even through
// delete-all (already checked), nor deleted explicitly.
TEST_F(EdgeCases, ExistsIsProtected) {
  Result<Program> program = ParseProgram(
      "r: del[E].exists -> E <- E.isa -> empl.", engine_);
  ASSERT_TRUE(program.ok());
  Result<ObjectBase> base = ParseObjectBase("a.isa -> empl.", engine_);
  ASSERT_TRUE(base.ok());
  Result<RunOutcome> outcome = engine_.Run(*program, *base);
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace verso
