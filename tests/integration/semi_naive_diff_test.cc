// Differential tests for the delta-driven fixpoint: semi-naive and naive
// evaluation must be observationally identical — same result(P), same
// committed object base, same cumulative T¹ and round counts — across
// every paper example and randomized generated workloads. On multi-round
// fixpoints the delta path must also do strictly less matching work,
// which is the whole point of seeding from deltas.
//
// Every case additionally runs the semi-naive path with num_threads = 4
// under the real analyzer-derived admission policy
// (MakeParallelAdmission); the parallel lane must be bit-identical to
// serial semi-naive in result, committed base, and every per-stratum
// work counter.

#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <string>

#include "analysis/analyzer.h"
#include "core/engine.h"
#include "core/pretty.h"
#include "parser/parser.h"
#include "storage/database.h"
#include "util/fault_env.h"
#include "workloads/workloads.h"

namespace verso {
namespace {

struct ModeOutcome {
  std::string result_text;    // canonical print of result(P)
  std::string new_base_text;  // canonical print of the committed base
  EvalStats stats;
};

using BaseFiller = std::function<void(Engine&, ObjectBase&)>;

ModeOutcome RunMode(const BaseFiller& fill, const std::string& program_text,
                    bool semi_naive, int num_threads = 0) {
  Engine engine;
  ObjectBase base = engine.MakeBase();
  fill(engine, base);
  Result<Program> program = ParseProgram(program_text, engine);
  EXPECT_TRUE(program.ok()) << program.status().ToString();
  EvalOptions options;
  options.semi_naive = semi_naive;
  options.num_threads = num_threads;
  if (num_threads > 0) {
    // The production admission policy: only strata the analyzer proved
    // free of update conflicts fan out.
    options.admit_parallel =
        MakeParallelAdmission(std::make_shared<AnalysisReport>(
            AnalyzeUpdateProgram(*program, engine.symbols())));
  }
  Result<RunOutcome> outcome = engine.Run(*program, base, options);
  EXPECT_TRUE(outcome.ok()) << outcome.status().ToString();
  ModeOutcome mode;
  mode.result_text =
      ObjectBaseToString(outcome->result, engine.symbols(), engine.versions());
  mode.new_base_text = ObjectBaseToString(outcome->new_base, engine.symbols(),
                                          engine.versions());
  mode.stats = std::move(outcome->stats);
  return mode;
}

BaseFiller Parsed(const char* base_text) {
  return [base_text](Engine& engine, ObjectBase& base) {
    Status s = ParseObjectBaseInto(base_text, engine.symbols(),
                                   engine.versions(), base);
    ASSERT_TRUE(s.ok()) << s.ToString();
  };
}

/// Runs both modes and asserts observational equality; returns the pair
/// for additional per-test assertions.
std::pair<ModeOutcome, ModeOutcome> Differential(
    const BaseFiller& fill, const std::string& program_text) {
  ModeOutcome semi = RunMode(fill, program_text, /*semi_naive=*/true);
  ModeOutcome naive = RunMode(fill, program_text, /*semi_naive=*/false);
  EXPECT_EQ(semi.result_text, naive.result_text);
  EXPECT_EQ(semi.new_base_text, naive.new_base_text);
  EXPECT_EQ(semi.stats.total_t1_updates(), naive.stats.total_t1_updates());
  EXPECT_EQ(semi.stats.total_rounds(), naive.stats.total_rounds());
  EXPECT_EQ(semi.stats.strata.size(), naive.stats.strata.size());
  for (size_t i = 0;
       i < std::min(semi.stats.strata.size(), naive.stats.strata.size());
       ++i) {
    EXPECT_EQ(semi.stats.strata[i].t1_updates,
              naive.stats.strata[i].t1_updates)
        << "stratum " << i;
    EXPECT_EQ(semi.stats.strata[i].rounds, naive.stats.strata[i].rounds)
        << "stratum " << i;
  }

  // Parallel lane: semi-naive at 4 threads under the analyzer's admission
  // policy must match serial semi-naive bit for bit, including the work
  // counters the fan-out could plausibly perturb.
  ModeOutcome parallel =
      RunMode(fill, program_text, /*semi_naive=*/true, /*num_threads=*/4);
  EXPECT_EQ(parallel.result_text, semi.result_text);
  EXPECT_EQ(parallel.new_base_text, semi.new_base_text);
  EXPECT_EQ(parallel.stats.total_t1_updates(), semi.stats.total_t1_updates());
  EXPECT_EQ(parallel.stats.total_rounds(), semi.stats.total_rounds());
  EXPECT_EQ(parallel.stats.total_body_matches(),
            semi.stats.total_body_matches());
  EXPECT_EQ(parallel.stats.strata.size(), semi.stats.strata.size());
  for (size_t i = 0;
       i < std::min(parallel.stats.strata.size(), semi.stats.strata.size());
       ++i) {
    EXPECT_EQ(parallel.stats.strata[i].t1_updates,
              semi.stats.strata[i].t1_updates)
        << "parallel stratum " << i;
    EXPECT_EQ(parallel.stats.strata[i].rounds, semi.stats.strata[i].rounds)
        << "parallel stratum " << i;
    EXPECT_EQ(parallel.stats.strata[i].seed_probes,
              semi.stats.strata[i].seed_probes)
        << "parallel stratum " << i;
    EXPECT_EQ(parallel.stats.strata[i].body_matches,
              semi.stats.strata[i].body_matches)
        << "parallel stratum " << i;
  }

  return {std::move(semi), std::move(naive)};
}

TEST(SemiNaiveDifferential, SalaryRaise) {
  Differential(Parsed("henry.isa -> empl.  henry.salary -> 250."),
               "mod[E].salary -> (S, S2) <- E.isa -> empl, E.salary -> S, "
               "S2 = S * 1.1.");
}

// The full Section 2.3 enterprise program: modifies, a delete-all head,
// and negation — every rule is residual, so this exercises the
// method-relevance gating rather than the seeding.
TEST(SemiNaiveDifferential, EnterpriseProgram) {
  Differential(Parsed("phil.isa -> empl.  phil.pos -> mgr.   "
                      "phil.sal -> 4000.  bob.isa -> empl.   "
                      "bob.boss -> phil.  bob.sal -> 4200."),
               kEnterpriseProgramText);
}

// Example 2: nested hypothetical versions (mod(mod(e))) and negation.
TEST(SemiNaiveDifferential, HypotheticalRaise) {
  Differential(Parsed("peter.isa -> empl.  peter.sal -> 100.  "
                      "peter.factor -> 3.  anna.isa -> empl.   "
                      "anna.sal -> 200.   anna.factor -> 1."),
               HypotheticalProgramText("peter"));
}

// Example 3: the recursive set-valued `anc` closure — insert-only rules,
// the seeded fast path.
TEST(SemiNaiveDifferential, RecursiveAncestors) {
  Differential(Parsed("p1.isa -> person.  p1.parents -> p2.  "
                      "p1.parents -> p3.  p2.isa -> person.  "
                      "p2.parents -> p4.  p3.isa -> person.  "
                      "p4.isa -> person.  p4.parents -> p5.  "
                      "p5.isa -> person."),
               kAncestorsProgramText);
}

// A deep chain drives a long fixpoint (one round per hop): the delta path
// must re-derive strictly fewer matches than the naive full re-match —
// the headline property of semi-naive evaluation.
TEST(SemiNaiveDifferential, DeepChainDoesStrictlyLessMatching) {
  constexpr int kChain = 24;
  BaseFiller fill = [](Engine& engine, ObjectBase& base) {
    for (int i = 0; i < kChain; ++i) {
      std::string name = "n" + std::to_string(i);
      if (i + 1 < kChain) {
        engine.AddFact(base, name, "next",
                       engine.symbols().Symbol("n" + std::to_string(i + 1)));
      } else {
        engine.AddFact(base, name, "last", engine.symbols().Symbol("yes"));
      }
    }
  };
  auto [semi, naive] = Differential(
      fill,
      "r1: ins[X].reach -> Y <- X.next -> Y."
      "r2: ins[X].reach -> Z <- ins(X).reach -> Y, Y.next -> Z.");
  EXPECT_GT(semi.stats.total_rounds(), 10u);  // genuinely multi-round
  EXPECT_LT(semi.stats.total_body_matches(), naive.stats.total_body_matches());
  // Round 0 matched in full; afterwards only delta-seeded probes ran.
  EXPECT_GT(semi.stats.strata[0].seed_probes, 0u);
  EXPECT_EQ(semi.stats.strata[0].residual_rule_runs, 0u);
}

// Chained modifies across a version chain force the residual path through
// several strata; both modes must still agree exactly.
TEST(SemiNaiveDifferential, ChainedModifies) {
  Differential(Parsed("o.val -> 1."),
               "r1: mod[o].val -> (V, V2) <- o.val -> V, V2 = V + 1."
               "r2: mod[mod(o)].val -> (V, V2) <- mod(o).val -> V, "
               "V2 = V * 10.");
}

// Randomized genealogies: the recursive program over several seeds.
TEST(SemiNaiveDifferential, RandomGenealogies) {
  for (uint64_t seed : {1u, 7u, 13u, 42u}) {
    BaseFiller fill = [seed](Engine& engine, ObjectBase& base) {
      GenealogyOptions options;
      options.persons = 48;
      options.max_parents = 2;
      options.seed = seed;
      MakeGenealogy(options, engine, base);
    };
    Differential(fill, kAncestorsProgramText);
  }
}

// The persistence differential: committing the same program through a
// Database on either store backend — and recovering it cold after a
// checkpoint — must yield a base bit-identical to the bare engine run.
// The third leg of the semi-naive/naive/persisted triangle.
TEST(SemiNaiveDifferential, StoreBackendsCommitBitIdenticalState) {
  struct Case {
    const char* name;
    const char* base;
    std::string program;
  };
  const Case cases[] = {
      {"enterprise",
       "phil.isa -> empl.  phil.pos -> mgr.   phil.sal -> 4000.  "
       "bob.isa -> empl.   bob.boss -> phil.  bob.sal -> 4200.",
       kEnterpriseProgramText},
      {"hypothetical",
       "peter.isa -> empl.  peter.sal -> 100.  peter.factor -> 3.  "
       "anna.isa -> empl.   anna.sal -> 200.   anna.factor -> 1.",
       HypotheticalProgramText("peter")},
      {"ancestors",
       "p1.isa -> person.  p1.parents -> p2.  p1.parents -> p3.  "
       "p2.isa -> person.  p2.parents -> p4.  p3.isa -> person.  "
       "p4.isa -> person.  p4.parents -> p5.  p5.isa -> person.",
       kAncestorsProgramText},
  };
  for (const Case& c : cases) {
    SCOPED_TRACE(c.name);
    ModeOutcome reference =
        RunMode(Parsed(c.base), c.program, /*semi_naive=*/true);
    for (StoreBackend backend :
         {StoreBackend::kMem, StoreBackend::kPageLog}) {
      SCOPED_TRACE(StoreBackendName(backend));
      FaultInjectingEnv env;
      DatabaseOptions options;
      options.env = &env;
      options.retry_backoff_us = 0;
      options.store_backend = backend;
      {
        Engine engine;
        Result<std::unique_ptr<Database>> db =
            Database::Open("/db", engine, options);
        ASSERT_TRUE(db.ok()) << db.status().ToString();
        Result<ObjectBase> base = ParseObjectBase(c.base, engine);
        ASSERT_TRUE(base.ok());
        ASSERT_TRUE((*db)->ImportBase(*base).ok());
        Result<Program> program = ParseProgram(c.program, engine);
        ASSERT_TRUE(program.ok()) << program.status().ToString();
        Result<RunOutcome> out = (*db)->Execute(*program);
        ASSERT_TRUE(out.ok()) << out.status().ToString();
        EXPECT_EQ(ObjectBaseToString((*db)->current(), engine.symbols(),
                                     engine.versions()),
                  reference.new_base_text);
        ASSERT_TRUE((*db)->Checkpoint().ok());
      }
      // Cold recovery from the checkpointed store alone (no WAL left).
      Engine engine;
      Result<std::unique_ptr<Database>> db =
          Database::Open("/db", engine, options);
      ASSERT_TRUE(db.ok()) << db.status().ToString();
      EXPECT_EQ((*db)->wal_records_since_checkpoint(), 0u);
      EXPECT_EQ(ObjectBaseToString((*db)->current(), engine.symbols(),
                                   engine.versions()),
                reference.new_base_text);
    }
  }
}

// Randomized enterprises: the four-rule paper program over several seeds
// (deletes, modifies, negation, multiple strata).
TEST(SemiNaiveDifferential, RandomEnterprises) {
  for (uint64_t seed : {3u, 11u, 42u}) {
    BaseFiller fill = [seed](Engine& engine, ObjectBase& base) {
      EnterpriseOptions options;
      options.employees = 64;
      options.manager_every = 8;
      options.seed = seed;
      MakeEnterprise(options, engine, base);
    };
    Differential(fill, kEnterpriseProgramText);
  }
}

}  // namespace
}  // namespace verso
