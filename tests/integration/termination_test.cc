// The termination claim of Section 2.1: the versioned salary raise fires
// exactly once per employee and the evaluation reaches a fixpoint,
// while the same rule without versions re-applies forever. Also checks
// the trace hooks that expose the process.

#include <gtest/gtest.h>

#include "baselines/baselines.h"
#include "core/engine.h"
#include "core/trace.h"
#include "parser/parser.h"
#include "workloads/workloads.h"

namespace verso {
namespace {

class TerminationSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(TerminationSweep, VersionedRaiseTerminatesNaiveDoesNot) {
  const size_t n = GetParam();
  Engine engine;
  ObjectBase base = engine.MakeBase();
  EnterpriseOptions options;
  options.employees = n;
  MakeEnterprise(options, engine, base);

  const char* rule =
      "raise: mod[E].sal -> (S, S2) <- E.isa -> empl, E.sal -> S, "
      "S2 = S * 1.1.";

  // Versioned: terminates in 2 rounds regardless of n.
  Result<Program> versioned = ParseProgram(rule, engine);
  ASSERT_TRUE(versioned.ok());
  Result<RunOutcome> outcome = engine.Run(*versioned, base);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->stats.total_rounds(), 2u);
  EXPECT_EQ(outcome->stats.versions_materialized, n);

  // Naive in-place: still changing when the round budget runs out.
  // (The budget stays below ~18 rounds: 1.1^k has denominator 10^k, and
  // the exact-rational representation reports overflow past int64 rather
  // than silently wrapping — itself a nice property, but here we want to
  // observe divergence, not overflow.)
  Result<Program> naive = ParseProgram(rule, engine);
  ASSERT_TRUE(naive.ok());
  InPlaceOptions in_place;
  in_place.max_rounds = 12;
  Result<InPlaceOutcome> diverged = RunNaiveUpdate(
      *naive, base, engine.symbols(), engine.versions(), in_place);
  ASSERT_TRUE(diverged.ok());
  EXPECT_TRUE(diverged->diverged);
}

INSTANTIATE_TEST_SUITE_P(Sizes, TerminationSweep,
                         ::testing::Values(1, 4, 16, 64, 256),
                         ::testing::PrintToStringParamName());

// The divergence guard: an (artificially tiny) round budget turns a
// legitimate recursive program into a reported kDivergence instead of an
// endless loop.
TEST(TerminationTest, RoundBudgetReportsDivergence) {
  Engine engine;
  ObjectBase base = engine.MakeBase();
  GenealogyOptions options;
  options.persons = 32;
  options.max_parents = 1;
  MakeGenealogy(options, engine, base);
  Result<Program> program = ParseProgram(kAncestorsProgramText, engine);
  ASSERT_TRUE(program.ok());
  EvalOptions eval;
  eval.max_rounds_per_stratum = 2;  // too small for a 32-person chain
  Result<RunOutcome> outcome = engine.Run(*program, base, eval);
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kDivergence);
}

// The trace observes the full process: derivations in every round,
// materializations exactly once per version, strata in order.
TEST(TerminationTest, TraceSeesTheProcess) {
  Engine engine;
  ObjectBase base = engine.MakeBase();
  EnterpriseOptions options;
  options.employees = 4;
  options.manager_every = 2;
  MakeEnterprise(options, engine, base);

  Result<Program> program = ParseProgram(kEnterpriseProgramText, engine);
  ASSERT_TRUE(program.ok());
  RecordingTrace trace(engine.symbols(), engine.versions());
  Result<RunOutcome> outcome =
      engine.Run(*program, base, EvalOptions(), &trace);
  ASSERT_TRUE(outcome.ok());

  int strata_begins = 0;
  int materializations = 0;
  for (const std::string& line : trace.lines()) {
    if (line.find("stratum") == 0 && line.find("rules)") != std::string::npos) {
      ++strata_begins;
    }
    if (line.find("materialize") != std::string::npos) ++materializations;
  }
  EXPECT_EQ(strata_begins, 3);
  EXPECT_EQ(static_cast<size_t>(materializations),
            outcome->stats.versions_materialized);
}

}  // namespace
}  // namespace verso
