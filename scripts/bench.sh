#!/usr/bin/env bash
# Builds the benchmarks in Release mode and records the perf trajectory:
# bench_tp_operator (single application + iterated fixpoint, naive vs
# semi-naive), bench_fig2_enterprise (the paper's end-to-end enterprise
# update), bench_views (incremental view maintenance vs from-scratch
# recomputation), bench_api (client-API facade: session open / snapshot
# pin, snapshot reads under concurrent commits, subscription fan-out),
# bench_snapshots (copy-on-write structural sharing: pin cost under
# ongoing commits and T_P step-2 materialization, each against its
# deep-copy baseline), bench_index (the result-keyed IndexedApps
# index: bound-result body matching and DRed rederive probes, each
# against the full-scan ablation), bench_obs (the always-on metrics
# registry: fixpoint + commit workloads with metrics enabled vs the
# registry-disabled ablation — the On/Off pairs bound the
# instrumentation's overhead), bench_store (src/store backends:
# put/get/scan, checkpoint cost, and checkpointed cold-open vs
# full-WAL-replay restart), bench_analysis (the static rule-program
# analyzer: full analysis runs at 256-4096 generated rules and the
# prepare overhead it adds to a Statement, on vs off), and
# bench_parallel (the parallel derivation path: the recursive fixpoint,
# graph-closure recomputation, and DRed maintenance each swept over
# 1/2/4/8 evaluation lanes; threads=1 is the serial baseline). JSON
# results land next to this repo's root so successive PRs can diff them.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR=${BUILD_DIR:-build-bench}

cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD_DIR" -j"$(nproc)" \
      --target bench_tp_operator bench_fig2_enterprise bench_views \
               bench_api bench_snapshots bench_index bench_obs bench_store \
               bench_analysis bench_parallel

"$BUILD_DIR"/bench_tp_operator \
    --benchmark_format=json \
    --benchmark_out=BENCH_tp.json \
    --benchmark_out_format=json
"$BUILD_DIR"/bench_fig2_enterprise \
    --benchmark_format=json \
    --benchmark_out=BENCH_fig2.json \
    --benchmark_out_format=json
"$BUILD_DIR"/bench_views \
    --benchmark_format=json \
    --benchmark_out=BENCH_views.json \
    --benchmark_out_format=json
"$BUILD_DIR"/bench_api \
    --benchmark_format=json \
    --benchmark_out=BENCH_api.json \
    --benchmark_out_format=json
"$BUILD_DIR"/bench_snapshots \
    --benchmark_format=json \
    --benchmark_out=BENCH_snapshots.json \
    --benchmark_out_format=json
"$BUILD_DIR"/bench_index \
    --benchmark_format=json \
    --benchmark_out=BENCH_index.json \
    --benchmark_out_format=json
# The obs ablation compares On/Off pairs of the same workload, so the
# run-order drift of a busy host would masquerade as instrumentation
# overhead: interleave repetitions and record medians instead.
"$BUILD_DIR"/bench_obs \
    --benchmark_enable_random_interleaving=true \
    --benchmark_repetitions=6 \
    --benchmark_report_aggregates_only=true \
    --benchmark_format=json \
    --benchmark_out=BENCH_obs.json \
    --benchmark_out_format=json
"$BUILD_DIR"/bench_store \
    --benchmark_format=json \
    --benchmark_out=BENCH_store.json \
    --benchmark_out_format=json
"$BUILD_DIR"/bench_analysis \
    --benchmark_format=json \
    --benchmark_out=BENCH_analysis.json \
    --benchmark_out_format=json
"$BUILD_DIR"/bench_parallel \
    --benchmark_format=json \
    --benchmark_out=BENCH_parallel.json \
    --benchmark_out_format=json

echo "Wrote BENCH_tp.json, BENCH_fig2.json, BENCH_views.json," \
     "BENCH_api.json, BENCH_snapshots.json, BENCH_index.json," \
     "BENCH_obs.json, BENCH_store.json, BENCH_analysis.json, and" \
     "BENCH_parallel.json"
