#ifndef VERSO_QUERY_QUERY_H_
#define VERSO_QUERY_QUERY_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/engine.h"
#include "core/object_base.h"
#include "core/program.h"
#include "util/result.h"

namespace verso {

/// Derived methods — the "derived objects" extension of Section 6.
///
/// A derived-method program is a set of rules
///
///     derive V.m@A.. -> R <- body.
///
/// whose heads are version-terms (no update is performed; the method
/// result is *defined*). Derived methods behave like stratified Datalog
/// IDB predicates over the object base: bodies may read stored and
/// derived methods, negate lower-stratum methods, and use built-ins.
/// Derived methods can be queried but never updated — update-programs may
/// only write base methods, exactly as the paper prescribes.
///
/// Internally a rule is carried as a core Rule whose head is the
/// ins-update of the head version-term; evaluation inserts facts directly
/// into the queried version instead of creating an ins(...) version.
struct QueryProgram {
  std::vector<Rule> rules;

  /// Methods defined by rule heads (the IDB).
  std::vector<MethodId> derived_methods;
};

/// Parses derived-method rules. Syntax mirrors update-programs but each
/// clause head is `derive <version-term-literal>`:
///
///     derive X.reaches -> Y <- X.edge -> Y.
///     derive X.reaches -> Z <- X.reaches -> Y, Y.edge -> Z.
Result<QueryProgram> ParseQueryProgram(std::string_view source,
                                       SymbolTable& symbols);

/// One stratum of a derived-method program: a strongly connected component
/// of the method dependency graph (methods in the role of predicates),
/// emitted in bottom-up dependency order.
struct QueryStratum {
  /// Indices into QueryProgram::rules, in program order.
  std::vector<uint32_t> rules;
  /// Derived methods defined by this stratum's rule heads (sorted).
  std::vector<MethodId> methods;
  /// True iff some rule body reads a method of this same stratum — the
  /// stratum needs fixpoint iteration (and, in the views subsystem,
  /// delete-and-rederive instead of counting maintenance).
  bool recursive = false;
};

/// SCC-condensation stratification of a derived-method program, the
/// dependency information incremental view maintenance is planned from.
struct QueryStratification {
  std::vector<QueryStratum> strata;
  /// Derived method -> index into `strata` of its defining stratum.
  std::unordered_map<uint32_t, uint32_t> stratum_of_method;
};

/// Runs AnalyzeRule over every rule and computes the SCC-based
/// stratification. Fails (kNotStratifiable) when a negation occurs inside
/// a strongly connected component — recursion through negation.
Result<QueryStratification> AnalyzeQueryProgram(QueryProgram& program,
                                                const SymbolTable& symbols);

struct QueryStats {
  uint32_t strata = 0;
  uint32_t rounds = 0;          // total fixpoint rounds across strata
  size_t derived_facts = 0;     // facts added by rules
  size_t delta_joins = 0;       // semi-naive delta-seeded join probes
  size_t seed_pairs_skipped = 0;  // pairs pruned by the frontier index

  // Result-index counters (bound-result literals answered through
  // ForEachAppWithResult instead of a full per-method scan).
  size_t index_probes = 0;
  size_t index_hits = 0;
  size_t indexed_scan_avoided_facts = 0;
};

struct QueryOptions {
  /// Use semi-naive (delta-driven) evaluation for recursive strata.
  /// Naive re-derivation is kept for the ablation benchmark.
  bool semi_naive = true;
  uint32_t max_rounds_per_stratum = 1u << 20;

  /// Evaluation lanes for recursive strata (caller + num_threads - 1
  /// pool workers); 0 or 1 evaluates serially. The derived-method
  /// fixpoint is monotone and every round derives against the frozen
  /// round-start state, so fan-out needs no admission analysis and is
  /// bit-identical to serial evaluation.
  int num_threads = 0;
};

/// Resolves a rule's head under a complete body binding to the ground
/// view fact it derives (`added` always true). The single head-resolution
/// path shared by EvaluateQueries, SolveRecursiveStratum, and the views
/// maintainer's sinks.
Result<DeltaFact> ResolveHeadFact(const Rule& rule, const Bindings& bindings,
                                  VersionTable& versions);

/// Semi-naive fixpoint of one recursive stratum over `working`: round 0
/// full-matches every stratum rule, later rounds probe only the frontier
/// facts, found through their (method, shape) index. Rounds are frozen —
/// derivation reads only the state the round began with; every head fact
/// installs at the round boundary — which is what makes the fan-out with
/// `num_threads` > 1 bit-identical to serial evaluation. Counters
/// accumulate into `stats` when given (rounds, derived_facts,
/// delta_joins, seed_pairs_skipped). Rules must already be analyzed
/// (AnalyzeQueryProgram). Shared by EvaluateQueries and the views
/// subsystem's initial materialization.
Status SolveRecursiveStratum(const QueryProgram& program,
                             const QueryStratum& stratum,
                             SymbolTable& symbols, VersionTable& versions,
                             ObjectBase& working, uint32_t max_rounds,
                             QueryStats* stats, int num_threads = 0);

/// Evaluates the derived methods over `base`, returning a new object base
/// containing `base` plus all derived facts. Fails if a derived method
/// already occurs in `base` (derived and stored definitions must not mix)
/// or if the rules are not stratifiable w.r.t. negation.
Result<ObjectBase> EvaluateQueries(QueryProgram& program,
                                   const ObjectBase& base,
                                   SymbolTable& symbols,
                                   VersionTable& versions,
                                   QueryStats* stats = nullptr,
                                   const QueryOptions& options = QueryOptions());

/// Engine-bound convenience.
Result<ObjectBase> EvaluateQueries(QueryProgram& program,
                                   const ObjectBase& base, Engine& engine,
                                   QueryStats* stats = nullptr,
                                   const QueryOptions& options = QueryOptions());

}  // namespace verso

#endif  // VERSO_QUERY_QUERY_H_
