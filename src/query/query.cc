#include "query/query.h"

#include <algorithm>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "core/delta.h"
#include "core/match.h"
#include "parser/parser.h"

namespace verso {

namespace {

/// Method-level stratification of derived rules w.r.t. negation: classic
/// stratified Datalog, with methods in the role of predicates.
Result<std::vector<std::vector<uint32_t>>> StratifyByMethod(
    const QueryProgram& program) {
  std::unordered_set<uint32_t> derived;
  for (MethodId m : program.derived_methods) derived.insert(m.value);

  // head method <- body method edges; strict when the body literal is
  // negated.
  const size_t n = program.rules.size();
  std::unordered_map<uint32_t, std::vector<uint32_t>> rules_defining;
  for (size_t r = 0; r < n; ++r) {
    rules_defining[program.rules[r].head.app.method.value].push_back(
        static_cast<uint32_t>(r));
  }

  // Compute stratum per derived method by fixpoint relaxation.
  std::unordered_map<uint32_t, uint32_t> level;
  for (MethodId m : program.derived_methods) level[m.value] = 0;
  for (size_t pass = 0; pass <= program.derived_methods.size() + 1; ++pass) {
    bool changed = false;
    for (const Rule& rule : program.rules) {
      uint32_t& head_level = level[rule.head.app.method.value];
      for (const Literal& lit : rule.body) {
        if (lit.kind != Literal::Kind::kVersion) continue;
        uint32_t m = lit.version.app.method.value;
        if (!derived.count(m)) continue;
        uint32_t need = level[m] + (lit.negated ? 1 : 0);
        if (head_level < need) {
          head_level = need;
          changed = true;
        }
      }
    }
    if (!changed) break;
    if (pass == program.derived_methods.size() + 1) {
      return Status::NotStratifiable(
          "derived methods are recursive through negation");
    }
  }

  uint32_t max_level = 0;
  for (const auto& [m, l] : level) max_level = std::max(max_level, l);
  std::vector<std::vector<uint32_t>> strata(max_level + 1);
  for (size_t r = 0; r < n; ++r) {
    strata[level[program.rules[r].head.app.method.value]].push_back(
        static_cast<uint32_t>(r));
  }
  return strata;
}

}  // namespace

Result<QueryProgram> ParseQueryProgram(std::string_view source,
                                       SymbolTable& symbols) {
  VERSO_ASSIGN_OR_RETURN(Program inner, ParseDerivedRules(source, symbols));
  QueryProgram program;
  std::set<uint32_t> methods;
  for (Rule& rule : inner.rules) {
    methods.insert(rule.head.app.method.value);
    program.rules.push_back(std::move(rule));
  }
  for (uint32_t m : methods) program.derived_methods.push_back(MethodId(m));
  return program;
}

Result<ObjectBase> EvaluateQueries(QueryProgram& program,
                                   const ObjectBase& base,
                                   SymbolTable& symbols,
                                   VersionTable& versions, QueryStats* stats,
                                   const QueryOptions& options) {
  for (Rule& rule : program.rules) {
    VERSO_RETURN_IF_ERROR(AnalyzeRule(rule, symbols));
  }
  // Derived methods must not be stored: the separation between base
  // methods (updatable) and derived methods (defined by rules) is the
  // paper's own (Section 1: "units for updates are the result sets of
  // base methods").
  for (MethodId m : program.derived_methods) {
    if (base.VidsWithMethod(m) != nullptr) {
      return Status::InvalidArgument(
          "derived method '" + std::string(symbols.MethodName(m)) +
          "' already has stored facts in the object base");
    }
  }
  VERSO_ASSIGN_OR_RETURN(std::vector<std::vector<uint32_t>> strata,
                         StratifyByMethod(program));

  ObjectBase working = base;
  MatchContext ctx{symbols, versions, working};
  QueryStats local;
  local.strata = static_cast<uint32_t>(strata.size());

  for (const std::vector<uint32_t>& stratum : strata) {
    std::vector<DeltaFact> delta;
    // Which head methods belong to this stratum (their facts seed delta).
    std::unordered_set<uint32_t> stratum_methods;
    for (uint32_t r : stratum) {
      stratum_methods.insert(program.rules[r].head.app.method.value);
    }

    auto derive_head = [&](const Rule& rule,
                           const Bindings& bindings) -> Status {
      Vid vid = ResolveVid(rule.head.version, bindings, versions);
      if (!vid.valid()) {
        return Status::Internal("unbound head version in derived rule");
      }
      GroundApp app = ResolveApp(rule.head.app, bindings);
      DeltaFact fact{vid, rule.head.app.method, app, /*added=*/true};
      if (working.Insert(vid, rule.head.app.method, std::move(app))) {
        ++local.derived_facts;
        delta.push_back(std::move(fact));
      }
      return Status::Ok();
    };

    // Round 0: full evaluation of every rule in the stratum.
    ++local.rounds;
    for (uint32_t r : stratum) {
      const Rule& rule = program.rules[r];
      VERSO_RETURN_IF_ERROR(ForEachBodyMatch(
          rule, ctx,
          [&](const Bindings& bindings) { return derive_head(rule, bindings); }));
    }

    if (!options.semi_naive) {
      // Naive: re-run all rules until nothing new is derived.
      for (uint32_t round = 1;; ++round) {
        if (round >= options.max_rounds_per_stratum) {
          return Status::Divergence("query stratum exceeded round bound");
        }
        size_t before = local.derived_facts;
        ++local.rounds;
        for (uint32_t r : stratum) {
          const Rule& rule = program.rules[r];
          VERSO_RETURN_IF_ERROR(ForEachBodyMatch(
              rule, ctx, [&](const Bindings& bindings) {
                return derive_head(rule, bindings);
              }));
        }
        if (local.derived_facts == before) break;
      }
      continue;
    }

    // Semi-naive rounds: every new fact must be joined through at least
    // one body occurrence of a this-stratum method.
    std::vector<DeltaFact> frontier = std::move(delta);
    for (uint32_t round = 1; !frontier.empty(); ++round) {
      if (round >= options.max_rounds_per_stratum) {
        return Status::Divergence("query stratum exceeded round bound");
      }
      delta.clear();
      ++local.rounds;
      for (uint32_t r : stratum) {
        const Rule& rule = program.rules[r];
        for (size_t li = 0; li < rule.body.size(); ++li) {
          const Literal& lit = rule.body[li];
          if (lit.kind != Literal::Kind::kVersion || lit.negated) continue;
          if (!stratum_methods.count(lit.version.app.method.value)) continue;
          for (const DeltaFact& fact : frontier) {
            Bindings seed;
            if (!SeedBindingsFromDelta(rule, static_cast<uint32_t>(li), fact,
                                       versions, seed)) {
              continue;
            }
            ++local.delta_joins;
            VERSO_RETURN_IF_ERROR(ForEachBodyMatchFrom(
                rule, ctx, seed, static_cast<int>(li),
                [&](const Bindings& bindings) {
                  return derive_head(rule, bindings);
                }));
          }
        }
      }
      frontier = std::move(delta);
      delta.clear();
    }
  }

  if (stats != nullptr) *stats = local;
  return working;
}

Result<ObjectBase> EvaluateQueries(QueryProgram& program,
                                   const ObjectBase& base, Engine& engine,
                                   QueryStats* stats,
                                   const QueryOptions& options) {
  return EvaluateQueries(program, base, engine.symbols(), engine.versions(),
                         stats, options);
}

}  // namespace verso
