#include "query/query.h"

#include <algorithm>
#include <memory>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "core/delta.h"
#include "core/match.h"
#include "core/parallel_eval.h"
#include "parser/parser.h"

namespace verso {

namespace {

/// Tarjan's SCC algorithm (iterative) over the derived-method dependency
/// graph: node = derived method, edge head -> body-method for every body
/// literal reading a derived method. Tarjan completes a component only
/// after everything it depends on, so components pop in exactly the
/// bottom-up stratum order the evaluator and the view maintainer need.
class MethodSccFinder {
 public:
  explicit MethodSccFinder(size_t node_count)
      : adjacency_(node_count), state_(node_count) {}

  void AddEdge(uint32_t from, uint32_t to) { adjacency_[from].push_back(to); }

  /// Components in reverse-topological (bottom-up dependency) order.
  std::vector<std::vector<uint32_t>> Run() {
    for (uint32_t n = 0; n < state_.size(); ++n) {
      if (state_[n].index == kUnvisited) Visit(n);
    }
    return std::move(components_);
  }

  /// After Run(): the component index of a node.
  uint32_t ComponentOf(uint32_t node) const { return state_[node].component; }

 private:
  static constexpr uint32_t kUnvisited = UINT32_MAX;

  struct NodeState {
    uint32_t index = kUnvisited;
    uint32_t lowlink = 0;
    uint32_t component = kUnvisited;
    bool on_stack = false;
  };

  void Visit(uint32_t root) {
    struct Frame {
      uint32_t node;
      size_t next_edge = 0;
    };
    std::vector<Frame> frames{{root}};
    Push(root);
    while (!frames.empty()) {
      Frame& frame = frames.back();
      NodeState& node = state_[frame.node];
      if (frame.next_edge < adjacency_[frame.node].size()) {
        uint32_t next = adjacency_[frame.node][frame.next_edge++];
        if (state_[next].index == kUnvisited) {
          Push(next);
          frames.push_back({next});
        } else if (state_[next].on_stack) {
          node.lowlink = std::min(node.lowlink, state_[next].index);
        }
        continue;
      }
      if (node.lowlink == node.index) PopComponent(frame.node);
      uint32_t done = frame.node;
      frames.pop_back();
      if (!frames.empty()) {
        NodeState& parent = state_[frames.back().node];
        parent.lowlink = std::min(parent.lowlink, state_[done].lowlink);
      }
    }
  }

  void Push(uint32_t node) {
    state_[node].index = state_[node].lowlink = next_index_++;
    state_[node].on_stack = true;
    stack_.push_back(node);
  }

  void PopComponent(uint32_t head) {
    std::vector<uint32_t> component;
    while (true) {
      uint32_t node = stack_.back();
      stack_.pop_back();
      state_[node].on_stack = false;
      state_[node].component = static_cast<uint32_t>(components_.size());
      component.push_back(node);
      if (node == head) break;
    }
    components_.push_back(std::move(component));
  }

  std::vector<std::vector<uint32_t>> adjacency_;
  std::vector<NodeState> state_;
  std::vector<uint32_t> stack_;
  std::vector<std::vector<uint32_t>> components_;
  uint32_t next_index_ = 0;
};

}  // namespace

Result<QueryProgram> ParseQueryProgram(std::string_view source,
                                       SymbolTable& symbols) {
  VERSO_ASSIGN_OR_RETURN(Program inner, ParseDerivedRules(source, symbols));
  QueryProgram program;
  std::set<uint32_t> methods;
  for (Rule& rule : inner.rules) {
    methods.insert(rule.head.app.method.value);
    program.rules.push_back(std::move(rule));
  }
  for (uint32_t m : methods) program.derived_methods.push_back(MethodId(m));
  return program;
}

Result<QueryStratification> AnalyzeQueryProgram(QueryProgram& program,
                                                const SymbolTable& symbols) {
  for (Rule& rule : program.rules) {
    VERSO_RETURN_IF_ERROR(AnalyzeRule(rule, symbols));
  }

  // Dense node ids for the derived methods.
  std::unordered_map<uint32_t, uint32_t> node_of_method;
  for (MethodId m : program.derived_methods) {
    node_of_method.emplace(m.value, static_cast<uint32_t>(node_of_method.size()));
  }

  struct Edge {
    uint32_t head_node;
    uint32_t body_node;
    bool negated;
  };
  std::vector<Edge> edges;
  MethodSccFinder scc(node_of_method.size());
  for (const Rule& rule : program.rules) {
    auto head_it = node_of_method.find(rule.head.app.method.value);
    if (head_it == node_of_method.end()) {
      // Caller-assembled programs can desynchronize the two fields;
      // surface it in-band instead of crashing on a map lookup.
      return Status::InvalidArgument(
          "derived method '" +
          std::string(symbols.MethodName(rule.head.app.method)) +
          "' is used as a rule head but missing from derived_methods");
    }
    uint32_t head_node = head_it->second;
    for (const Literal& lit : rule.body) {
      if (lit.kind != Literal::Kind::kVersion) continue;
      auto it = node_of_method.find(lit.version.app.method.value);
      if (it == node_of_method.end()) continue;  // base method
      scc.AddEdge(head_node, it->second);
      edges.push_back({head_node, it->second, lit.negated});
    }
  }

  std::vector<std::vector<uint32_t>> components = scc.Run();

  // Condition (d): no negation inside a component. The diagnostic names
  // the actual method cycle (head -> negated body -> ... -> head), found
  // by BFS within the component.
  for (const Edge& edge : edges) {
    if (!edge.negated ||
        scc.ComponentOf(edge.head_node) != scc.ComponentOf(edge.body_node)) {
      continue;
    }
    std::vector<MethodId> method_of_node(node_of_method.size());
    for (const auto& [m, node] : node_of_method) {
      method_of_node[node] = MethodId(m);
    }
    std::string path(symbols.MethodName(method_of_node[edge.head_node]));
    if (edge.head_node == edge.body_node) {
      path += " -> ";
      path += symbols.MethodName(method_of_node[edge.head_node]);
    } else {
      std::vector<std::vector<uint32_t>> adj(node_of_method.size());
      for (const Edge& e : edges) adj[e.head_node].push_back(e.body_node);
      // BFS body -> ... -> head inside the component; pred[x] -> x is an
      // edge, so walking pred back from head then reversing yields the
      // closing path in dependency order.
      std::vector<int> pred(node_of_method.size(), -1);
      std::vector<uint32_t> queue{edge.body_node};
      pred[edge.body_node] = static_cast<int>(edge.body_node);
      for (size_t qi = 0; qi < queue.size() && pred[edge.head_node] == -1;
           ++qi) {
        for (uint32_t next : adj[queue[qi]]) {
          if (scc.ComponentOf(next) != scc.ComponentOf(edge.head_node) ||
              pred[next] != -1) {
            continue;
          }
          pred[next] = static_cast<int>(queue[qi]);
          queue.push_back(next);
        }
      }
      std::vector<uint32_t> back{edge.head_node};
      while (back.back() != edge.body_node) {
        back.push_back(static_cast<uint32_t>(pred[back.back()]));
      }
      for (auto it = back.rbegin(); it != back.rend(); ++it) {
        path += " -> ";
        path += symbols.MethodName(method_of_node[*it]);
      }
    }
    return Status::NotStratifiable(
        "derived methods are recursive through negation: " + path);
  }

  QueryStratification out;
  out.strata.resize(components.size());
  for (MethodId m : program.derived_methods) {
    uint32_t component = scc.ComponentOf(node_of_method.at(m.value));
    out.strata[component].methods.push_back(m);
    out.stratum_of_method.emplace(m.value, component);
  }
  for (QueryStratum& stratum : out.strata) {
    std::sort(stratum.methods.begin(), stratum.methods.end());
    stratum.recursive = stratum.methods.size() > 1;
  }
  for (uint32_t r = 0; r < program.rules.size(); ++r) {
    const Rule& rule = program.rules[r];
    uint32_t component =
        out.stratum_of_method.at(rule.head.app.method.value);
    QueryStratum& stratum = out.strata[component];
    stratum.rules.push_back(r);
    // Self-loop: a singleton component is still recursive when one of its
    // rules reads the method it defines.
    for (const Literal& lit : rule.body) {
      if (lit.kind != Literal::Kind::kVersion) continue;
      MethodId m = lit.version.app.method;
      if (std::binary_search(stratum.methods.begin(), stratum.methods.end(),
                             m)) {
        stratum.recursive = true;
      }
    }
  }
  return out;
}

Result<DeltaFact> ResolveHeadFact(const Rule& rule, const Bindings& bindings,
                                  VersionTable& versions) {
  Vid vid = ResolveVid(rule.head.version, bindings, versions);
  if (!vid.valid()) {
    return Status::Internal("unbound head version in derived rule");
  }
  return DeltaFact{vid, rule.head.app.method,
                   ResolveApp(rule.head.app, bindings), /*added=*/true};
}

namespace {

/// Minimum work before a query-fixpoint round fans out (deterministic
/// serial quantities only, mirroring the evaluator's thresholds).
constexpr size_t kMinParallelQueryRules = 2;
constexpr size_t kMinParallelFrontier = 16;

/// One parallel task's recording: derived head facts in lane ids, the
/// lane's overlay log position at task end, and the task's counters.
struct QueryTaskOutput {
  int lane = -1;
  EvalLane::Mark end;
  std::vector<DeltaFact> facts;
  size_t delta_joins = 0;
  IndexStats index;
  Status status = Status::Ok();
  bool threw = false;
};

std::vector<std::unique_ptr<EvalLane>> MakeQueryLanes(
    int count, const SymbolTable& symbols, const VersionTable& versions,
    const ObjectBase& working) {
  std::vector<std::unique_ptr<EvalLane>> lanes;
  lanes.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    lanes.push_back(std::make_unique<EvalLane>(symbols, versions, working));
  }
  return lanes;
}

}  // namespace

Status SolveRecursiveStratum(const QueryProgram& program,
                             const QueryStratum& stratum,
                             SymbolTable& symbols, VersionTable& versions,
                             ObjectBase& working, uint32_t max_rounds,
                             QueryStats* stats, int num_threads) {
  IndexStats istats;
  MatchContext ctx{symbols, versions, working, &istats};
  DeltaLog frontier;
  DeltaLog delta;
  // Rounds are frozen: head facts are buffered during derivation — the
  // matcher holds pointers into the base's fact vectors, and parallel
  // lanes share the round-start state — and installed only at the round
  // boundary. The fixpoint is monotone, so batching installs changes
  // round packaging but not the result.
  std::vector<DeltaFact> pending;
  auto derive_head = [&](const Rule& rule,
                         const Bindings& bindings) -> Status {
    VERSO_ASSIGN_OR_RETURN(DeltaFact head,
                           ResolveHeadFact(rule, bindings, versions));
    pending.push_back(std::move(head));
    return Status::Ok();
  };
  auto install_pending = [&]() {
    for (DeltaFact& fact : pending) {
      if (working.Insert(fact.vid, fact.method, fact.app)) {
        if (stats != nullptr) ++stats->derived_facts;
        delta.push_back(std::move(fact));
      }
    }
    pending.clear();
  };

  // Merges parallel task outputs in task order: replay each lane's
  // overlay log, remap the recorded facts into `pending`, fold counters.
  // A task that threw aborts the merge so the caller can rerun the round
  // serially (lanes never touch shared state).
  auto merge_outputs =
      [&](std::vector<QueryTaskOutput>& outputs,
          const std::vector<std::unique_ptr<EvalLane>>& lanes,
          bool* fell_back) -> Status {
    for (const QueryTaskOutput& out : outputs) {
      if (out.threw) {
        *fell_back = true;
        return Status::Ok();
      }
    }
    for (QueryTaskOutput& out : outputs) {
      EvalLane& lane = *lanes[out.lane];
      lane.ReplayTo(out.end, symbols, versions);
      for (DeltaFact& fact : out.facts) {
        pending.push_back(lane.MapFact(std::move(fact)));
      }
      if (stats != nullptr) stats->delta_joins += out.delta_joins;
      istats.index_probes += out.index.index_probes;
      istats.index_hits += out.index.index_hits;
      istats.indexed_scan_avoided_facts += out.index.indexed_scan_avoided_facts;
      VERSO_RETURN_IF_ERROR(out.status);
    }
    return Status::Ok();
  };

  // Round 0: full evaluation of every rule in the stratum.
  if (stats != nullptr) ++stats->rounds;
  bool round0_done = false;
  if (num_threads > 1 && stratum.rules.size() >= kMinParallelQueryRules) {
    const size_t task_count = stratum.rules.size();
    const int lane_count = static_cast<int>(std::min<size_t>(
        static_cast<size_t>(num_threads), task_count));
    std::vector<std::unique_ptr<EvalLane>> lanes =
        MakeQueryLanes(lane_count, symbols, versions, working);
    std::vector<QueryTaskOutput> outputs(task_count);
    ParallelTelemetry ptel;
    RunTasksOnLanes(
        lane_count, task_count,
        [&](int lane_index, size_t task) {
          QueryTaskOutput& out = outputs[task];
          out.lane = lane_index;
          EvalLane& lane = *lanes[lane_index];
          try {
            const Rule& rule = program.rules[stratum.rules[task]];
            MatchContext lane_ctx{lane.symbols, lane.versions, lane.base,
                                  &out.index};
            out.status = ForEachBodyMatch(
                rule, lane_ctx, [&](const Bindings& bindings) -> Status {
                  VERSO_ASSIGN_OR_RETURN(
                      DeltaFact head,
                      ResolveHeadFact(rule, bindings, lane.versions));
                  out.facts.push_back(std::move(head));
                  return Status::Ok();
                });
          } catch (...) {
            out.threw = true;
          }
          out.end = lane.mark();
        },
        ptel);
    bool fell_back = false;
    VERSO_RETURN_IF_ERROR(merge_outputs(outputs, lanes, &fell_back));
    round0_done = !fell_back;
  }
  if (!round0_done) {
    for (uint32_t r : stratum.rules) {
      const Rule& rule = program.rules[r];
      VERSO_RETURN_IF_ERROR(ForEachBodyMatch(
          rule, ctx, [&](const Bindings& bindings) {
            return derive_head(rule, bindings);
          }));
    }
  }
  install_pending();

  // Semi-naive rounds: every new fact must be joined through at least one
  // body occurrence of a this-stratum method, found through the
  // frontier's (method, shape) index.
  frontier = std::move(delta);
  delta = DeltaLog();
  DeltaIndex index;
  for (uint32_t round = 1; !frontier.empty(); ++round) {
    if (round >= max_rounds) {
      return Status::Divergence("query stratum exceeded round bound");
    }
    delta.clear();
    if (stats != nullptr) ++stats->rounds;
    index.Build(frontier, versions);

    // The round's probe work as (rule, literal, frontier-chunk) specs —
    // the serial loop runs them inline, the parallel path fans them out.
    struct ProbeSpec {
      const Rule* rule = nullptr;
      uint32_t literal = 0;
      const std::vector<const DeltaFact*>* bucket = nullptr;
      size_t begin = 0;
      size_t end = 0;
    };
    std::vector<ProbeSpec> specs;
    const bool parallel_round =
        num_threads > 1 && frontier.size() >= kMinParallelFrontier;
    const size_t chunk_denominator =
        parallel_round ? static_cast<size_t>(num_threads) * 4 : 1;
    for (uint32_t r : stratum.rules) {
      const Rule& rule = program.rules[r];
      for (size_t li = 0; li < rule.body.size(); ++li) {
        const Literal& lit = rule.body[li];
        if (lit.kind != Literal::Kind::kVersion || lit.negated) continue;
        if (!std::binary_search(stratum.methods.begin(),
                                stratum.methods.end(),
                                lit.version.app.method)) {
          continue;
        }
        MethodId method;
        VidShape shape;
        if (!SeedKeyForLiteral(rule, static_cast<uint32_t>(li), versions,
                               &method, &shape)) {
          continue;
        }
        const std::vector<const DeltaFact*>* bucket =
            index.Added(method, shape);
        if (bucket == nullptr) {
          if (stats != nullptr) stats->seed_pairs_skipped += frontier.size();
          continue;
        }
        if (stats != nullptr) {
          stats->seed_pairs_skipped += frontier.size() - bucket->size();
        }
        const size_t chunk =
            std::max<size_t>(1, bucket->size() / chunk_denominator);
        for (size_t b = 0; b < bucket->size(); b += chunk) {
          specs.push_back({&rule, static_cast<uint32_t>(li), bucket, b,
                           std::min(bucket->size(), b + chunk)});
        }
      }
    }

    bool round_done = false;
    if (parallel_round && !specs.empty()) {
      const int lane_count = static_cast<int>(std::min<size_t>(
          static_cast<size_t>(num_threads), specs.size()));
      std::vector<std::unique_ptr<EvalLane>> lanes =
          MakeQueryLanes(lane_count, symbols, versions, working);
      std::vector<QueryTaskOutput> outputs(specs.size());
      ParallelTelemetry ptel;
      RunTasksOnLanes(
          lane_count, specs.size(),
          [&](int lane_index, size_t task) {
            const ProbeSpec& spec = specs[task];
            QueryTaskOutput& out = outputs[task];
            out.lane = lane_index;
            EvalLane& lane = *lanes[lane_index];
            try {
              const Rule& rule = *spec.rule;
              MatchContext lane_ctx{lane.symbols, lane.versions, lane.base,
                                    &out.index};
              for (size_t i = spec.begin; i < spec.end; ++i) {
                Bindings seed;
                if (!SeedBindingsFromDelta(rule, spec.literal,
                                           *(*spec.bucket)[i], lane.versions,
                                           seed)) {
                  continue;
                }
                ++out.delta_joins;
                out.status = ForEachBodyMatchFrom(
                    rule, lane_ctx, seed, static_cast<int>(spec.literal),
                    [&](const Bindings& bindings) -> Status {
                      VERSO_ASSIGN_OR_RETURN(
                          DeltaFact head,
                          ResolveHeadFact(rule, bindings, lane.versions));
                      out.facts.push_back(std::move(head));
                      return Status::Ok();
                    });
                if (!out.status.ok()) break;
              }
            } catch (...) {
              out.threw = true;
            }
            out.end = lane.mark();
          },
          ptel);
      bool fell_back = false;
      VERSO_RETURN_IF_ERROR(merge_outputs(outputs, lanes, &fell_back));
      round_done = !fell_back;
      if (fell_back) pending.clear();
    }
    if (!round_done) {
      for (const ProbeSpec& spec : specs) {
        const Rule& rule = *spec.rule;
        for (size_t i = spec.begin; i < spec.end; ++i) {
          Bindings seed;
          if (!SeedBindingsFromDelta(rule, spec.literal, *(*spec.bucket)[i],
                                     versions, seed)) {
            continue;
          }
          if (stats != nullptr) ++stats->delta_joins;
          VERSO_RETURN_IF_ERROR(ForEachBodyMatchFrom(
              rule, ctx, seed, static_cast<int>(spec.literal),
              [&](const Bindings& bindings) {
                return derive_head(rule, bindings);
              }));
        }
      }
    }
    install_pending();
    frontier = std::move(delta);
    delta = DeltaLog();
  }
  if (stats != nullptr) {
    stats->index_probes += istats.index_probes;
    stats->index_hits += istats.index_hits;
    stats->indexed_scan_avoided_facts += istats.indexed_scan_avoided_facts;
  }
  return Status::Ok();
}

Result<ObjectBase> EvaluateQueries(QueryProgram& program,
                                   const ObjectBase& base,
                                   SymbolTable& symbols,
                                   VersionTable& versions, QueryStats* stats,
                                   const QueryOptions& options) {
  // Derived methods must not be stored: the separation between base
  // methods (updatable) and derived methods (defined by rules) is the
  // paper's own (Section 1: "units for updates are the result sets of
  // base methods").
  for (MethodId m : program.derived_methods) {
    if (base.VidsWithMethod(m) != nullptr) {
      return Status::InvalidArgument(
          "derived method '" + std::string(symbols.MethodName(m)) +
          "' already has stored facts in the object base");
    }
  }
  VERSO_ASSIGN_OR_RETURN(QueryStratification stratification,
                         AnalyzeQueryProgram(program, symbols));

  ObjectBase working = base;
  QueryStats local;
  IndexStats istats;
  MatchContext ctx{symbols, versions, working, &istats};
  local.strata = static_cast<uint32_t>(stratification.strata.size());

  for (const QueryStratum& stratum : stratification.strata) {
    if (stratum.recursive && options.semi_naive) {
      VERSO_RETURN_IF_ERROR(SolveRecursiveStratum(
          program, stratum, symbols, versions, working,
          options.max_rounds_per_stratum, &local, options.num_threads));
      continue;
    }

    // Buffered head install, as in SolveRecursiveStratum.
    std::vector<DeltaFact> pending;
    size_t installed = 0;
    auto derive_head = [&](const Rule& rule,
                           const Bindings& bindings) -> Status {
      VERSO_ASSIGN_OR_RETURN(DeltaFact head,
                             ResolveHeadFact(rule, bindings, versions));
      pending.push_back(std::move(head));
      return Status::Ok();
    };
    auto install_pending = [&]() {
      for (DeltaFact& fact : pending) {
        if (working.Insert(fact.vid, fact.method, fact.app)) {
          ++local.derived_facts;
          ++installed;
        }
      }
      pending.clear();
    };

    // Round 0: full evaluation of every rule in the stratum — for a
    // non-recursive stratum this already is the fixpoint.
    ++local.rounds;
    for (uint32_t r : stratum.rules) {
      const Rule& rule = program.rules[r];
      VERSO_RETURN_IF_ERROR(ForEachBodyMatch(
          rule, ctx,
          [&](const Bindings& bindings) { return derive_head(rule, bindings); }));
      install_pending();
    }
    if (!stratum.recursive) continue;

    // Naive ablation mode: re-run all rules until nothing new is derived.
    for (uint32_t round = 1;; ++round) {
      if (round >= options.max_rounds_per_stratum) {
        return Status::Divergence("query stratum exceeded round bound");
      }
      installed = 0;
      ++local.rounds;
      for (uint32_t r : stratum.rules) {
        const Rule& rule = program.rules[r];
        VERSO_RETURN_IF_ERROR(ForEachBodyMatch(
            rule, ctx, [&](const Bindings& bindings) {
              return derive_head(rule, bindings);
            }));
        install_pending();
      }
      if (installed == 0) break;
    }
  }

  local.index_probes += istats.index_probes;
  local.index_hits += istats.index_hits;
  local.indexed_scan_avoided_facts += istats.indexed_scan_avoided_facts;
  if (stats != nullptr) *stats = local;
  return working;
}

Result<ObjectBase> EvaluateQueries(QueryProgram& program,
                                   const ObjectBase& base, Engine& engine,
                                   QueryStats* stats,
                                   const QueryOptions& options) {
  return EvaluateQueries(program, base, engine.symbols(), engine.versions(),
                         stats, options);
}

}  // namespace verso
