#ifndef VERSO_SCHEMA_SCHEMA_H_
#define VERSO_SCHEMA_SCHEMA_H_

#include <string>
#include <string_view>
#include <unordered_map>

#include "core/object_base.h"
#include "core/program.h"
#include "core/symbol_table.h"
#include "util/result.h"

namespace verso {

/// Optional typing layer over methods — the paper's Section 2.4 remark
/// that inserts/deletes "would require changes of corresponding
/// class-definitions in a strongly typed environment" ([SZ87]). verso
/// keeps the language untyped (as the paper does) but ships a schema
/// checker a deployment can opt into: method signatures with arity,
/// result kind, and single-/set-valuedness, validated against object
/// bases and (statically) against update-programs.

/// Expected kind of a method's result OID.
enum class ResultKind : uint8_t {
  kAny,     // unconstrained
  kNumber,
  kSymbol,
  kString,
};

struct MethodSig {
  uint32_t arity = 0;
  ResultKind result = ResultKind::kAny;
  /// Single-valued methods admit at most one result per (version, args);
  /// the paper's language is set-valued by default.
  bool single_valued = false;
};

class Schema {
 public:
  /// Declares a method; re-declaring with a different signature fails.
  Status Declare(MethodId method, const MethodSig& sig,
                 const SymbolTable& symbols);

  /// Parses declarations, one per clause:
  ///     method sal/0: number, single.
  ///     method boss/0: symbol, set.
  ///     method at/2: any, single.
  /// The kind is one of any|number|symbol|string; the valuedness is
  /// single|set (set is the paper's default).
  static Result<Schema> Parse(std::string_view text, SymbolTable& symbols);

  const MethodSig* Find(MethodId method) const;
  size_t size() const { return sigs_.size(); }

  /// Every fact's method must be declared with matching arity and result
  /// kind; single-valued methods must hold at most one result per
  /// (version, args). `exists` is implicitly declared (arity 0, symbol,
  /// single).
  Status CheckBase(const ObjectBase& base, const SymbolTable& symbols,
                   const VersionTable& versions) const;

  /// Static program check: every method mentioned in a head or body must
  /// be declared with matching arity; constant results must match the
  /// declared kind. (Variables are unconstrained — the language stays
  /// dynamically typed, exactly as in the paper.)
  Status CheckProgram(const Program& program,
                      const SymbolTable& symbols) const;

 private:
  std::unordered_map<uint32_t, MethodSig> sigs_;
};

}  // namespace verso

#endif  // VERSO_SCHEMA_SCHEMA_H_
