#include "schema/schema.h"

#include "parser/lexer.h"

namespace verso {

namespace {

const char* ResultKindName(ResultKind kind) {
  switch (kind) {
    case ResultKind::kAny:
      return "any";
    case ResultKind::kNumber:
      return "number";
    case ResultKind::kSymbol:
      return "symbol";
    case ResultKind::kString:
      return "string";
  }
  return "?";
}

bool KindMatches(ResultKind expected, Oid value, const SymbolTable& symbols) {
  switch (expected) {
    case ResultKind::kAny:
      return true;
    case ResultKind::kNumber:
      return symbols.kind(value) == OidKind::kNumber;
    case ResultKind::kSymbol:
      return symbols.kind(value) == OidKind::kSymbol;
    case ResultKind::kString:
      return symbols.kind(value) == OidKind::kString;
  }
  return false;
}

Status SigMismatch(std::string_view what, MethodId method,
                   const SymbolTable& symbols, const std::string& detail) {
  return Status::InvalidArgument("schema: method '" +
                                 std::string(symbols.MethodName(method)) +
                                 "' " + std::string(what) + ": " + detail);
}

}  // namespace

Status Schema::Declare(MethodId method, const MethodSig& sig,
                       const SymbolTable& symbols) {
  auto [it, inserted] = sigs_.emplace(method.value, sig);
  if (!inserted && (it->second.arity != sig.arity ||
                    it->second.result != sig.result ||
                    it->second.single_valued != sig.single_valued)) {
    return Status::InvalidArgument(
        "schema: conflicting re-declaration of method '" +
        std::string(symbols.MethodName(method)) + "'");
  }
  return Status::Ok();
}

Result<Schema> Schema::Parse(std::string_view text, SymbolTable& symbols) {
  VERSO_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(text));
  Schema schema;
  size_t pos = 0;
  auto peek = [&]() -> const Token& { return tokens[pos]; };
  auto next = [&]() -> const Token& { return tokens[pos++]; };
  auto expect = [&](TokenKind kind, const char* what) -> Status {
    if (peek().kind != kind) {
      return Status::ParseError("schema line " + std::to_string(peek().line) +
                                ": expected " + what);
    }
    ++pos;
    return Status::Ok();
  };
  while (peek().kind != TokenKind::kEof) {
    if (peek().kind != TokenKind::kIdent || peek().text != "method") {
      return Status::ParseError("schema line " + std::to_string(peek().line) +
                                ": expected 'method'");
    }
    next();
    if (peek().kind != TokenKind::kIdent) {
      return Status::ParseError("schema: expected a method name");
    }
    MethodId method = symbols.Method(next().text);
    VERSO_RETURN_IF_ERROR(expect(TokenKind::kSlash, "'/'"));
    if (peek().kind != TokenKind::kNumber) {
      return Status::ParseError("schema: expected an arity");
    }
    MethodSig sig;
    sig.arity = static_cast<uint32_t>(std::stoul(next().text));
    VERSO_RETURN_IF_ERROR(expect(TokenKind::kColon, "':'"));
    if (peek().kind != TokenKind::kIdent) {
      return Status::ParseError("schema: expected a result kind");
    }
    std::string kind = next().text;
    if (kind == "any") {
      sig.result = ResultKind::kAny;
    } else if (kind == "number") {
      sig.result = ResultKind::kNumber;
    } else if (kind == "symbol") {
      sig.result = ResultKind::kSymbol;
    } else if (kind == "string") {
      sig.result = ResultKind::kString;
    } else {
      return Status::ParseError("schema: unknown result kind '" + kind + "'");
    }
    VERSO_RETURN_IF_ERROR(expect(TokenKind::kComma, "','"));
    if (peek().kind != TokenKind::kIdent ||
        (peek().text != "single" && peek().text != "set")) {
      return Status::ParseError("schema: expected 'single' or 'set'");
    }
    sig.single_valued = next().text == "single";
    VERSO_RETURN_IF_ERROR(expect(TokenKind::kDot, "'.'"));
    VERSO_RETURN_IF_ERROR(schema.Declare(method, sig, symbols));
  }
  return schema;
}

const MethodSig* Schema::Find(MethodId method) const {
  auto it = sigs_.find(method.value);
  return it == sigs_.end() ? nullptr : &it->second;
}

Status Schema::CheckBase(const ObjectBase& base, const SymbolTable& symbols,
                         const VersionTable& versions) const {
  for (const auto& [vid, state] : base.versions()) {
    for (const auto& [method, apps] : state->methods()) {
      if (method == base.exists_method()) continue;
      const MethodSig* sig = Find(method);
      if (sig == nullptr) {
        return SigMismatch("is not declared", method, symbols,
                           "first fact on version " +
                               versions.ToString(vid, symbols));
      }
      const GroundApp* prev = nullptr;
      for (const GroundApp& app : apps) {
        if (app.args.size() != sig->arity) {
          return SigMismatch("arity mismatch", method, symbols,
                             "expected " + std::to_string(sig->arity) +
                                 " arguments, found " +
                                 std::to_string(app.args.size()));
        }
        if (!KindMatches(sig->result, app.result, symbols)) {
          return SigMismatch(
              "result kind mismatch", method, symbols,
              "expected " + std::string(ResultKindName(sig->result)) +
                  ", found " + symbols.OidToString(app.result));
        }
        // apps are sorted by (args, result): duplicates of (args) with
        // different results are adjacent.
        if (sig->single_valued && prev != nullptr &&
            prev->args == app.args) {
          return SigMismatch(
              "declared single-valued", method, symbols,
              "version " + versions.ToString(vid, symbols) +
                  " holds results " + symbols.OidToString(prev->result) +
                  " and " + symbols.OidToString(app.result));
        }
        prev = &app;
      }
    }
  }
  return Status::Ok();
}

Status Schema::CheckProgram(const Program& program,
                            const SymbolTable& symbols) const {
  auto check_app = [&](const AppPattern& app, const std::string& where,
                       bool is_mod_pair,
                       const ObjTerm* new_result) -> Status {
    const MethodSig* sig = Find(app.method);
    if (sig == nullptr) {
      return SigMismatch("is not declared", app.method, symbols, where);
    }
    if (app.args.size() != sig->arity) {
      return SigMismatch("arity mismatch", app.method, symbols,
                         where + ": expected " + std::to_string(sig->arity) +
                             " arguments");
    }
    if (!app.result.is_var &&
        !KindMatches(sig->result, app.result.oid, symbols)) {
      return SigMismatch("result kind mismatch", app.method, symbols, where);
    }
    if (is_mod_pair && new_result != nullptr && !new_result->is_var &&
        !KindMatches(sig->result, new_result->oid, symbols)) {
      return SigMismatch("new-result kind mismatch", app.method, symbols,
                         where);
    }
    return Status::Ok();
  };

  for (const Rule& rule : program.rules) {
    const std::string where = "in " + rule.DisplayName();
    if (!rule.head.delete_all) {
      VERSO_RETURN_IF_ERROR(check_app(
          rule.head.app, where + " (head)",
          rule.head.kind == UpdateKind::kModify, &rule.head.new_result));
    }
    for (const Literal& lit : rule.body) {
      if (lit.kind == Literal::Kind::kVersion) {
        VERSO_RETURN_IF_ERROR(
            check_app(lit.version.app, where, false, nullptr));
      } else if (lit.kind == Literal::Kind::kUpdate) {
        VERSO_RETURN_IF_ERROR(check_app(
            lit.update.app, where, lit.update.kind == UpdateKind::kModify,
            &lit.update.new_result));
      }
    }
  }
  return Status::Ok();
}

}  // namespace verso
