#include "obs/metrics.h"

#include <algorithm>
#include <ostream>

namespace verso {

uint64_t Histogram::ValueAtQuantile(double q) const {
  uint64_t n = count();
  if (n == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the quantile sample, 1-based; q=1 is the max sample's bucket.
  uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(n));
  if (rank == 0) rank = 1;
  uint64_t seen = 0;
  for (size_t i = 0; i < kBuckets; ++i) {
    seen += buckets_[i].load(std::memory_order_relaxed);
    if (seen >= rank) return BucketUpperBound(i);
  }
  // count_ raced ahead of a bucket increment; the last bucket bounds all.
  return BucketUpperBound(kBuckets - 1);
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();  // never dies
  return *registry;
}

Counter& MetricsRegistry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_
             .emplace(std::string(name),
                      std::unique_ptr<Counter>(new Counter(&enabled_)))
             .first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::GetGauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_
             .emplace(std::string(name),
                      std::unique_ptr<Gauge>(new Gauge(&enabled_)))
             .first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::GetHistogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name),
                      std::unique_ptr<Histogram>(new Histogram(&enabled_)))
             .first;
  }
  return *it->second;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) {
    counter->value_.store(0, std::memory_order_relaxed);
  }
  for (auto& [name, gauge] : gauges_) {
    gauge->value_.store(0, std::memory_order_relaxed);
  }
  for (auto& [name, hist] : histograms_) {
    for (size_t i = 0; i < Histogram::kBuckets; ++i) {
      hist->buckets_[i].store(0, std::memory_order_relaxed);
    }
    hist->count_.store(0, std::memory_order_relaxed);
    hist->sum_micros_.store(0, std::memory_order_relaxed);
  }
}

std::vector<MetricsRegistry::Entry> MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Entry> entries;
  entries.reserve(counters_.size() + gauges_.size() + 5 * histograms_.size());
  for (const auto& [name, counter] : counters_) {
    entries.push_back(Entry{name, static_cast<int64_t>(counter->value())});
  }
  for (const auto& [name, gauge] : gauges_) {
    entries.push_back(Entry{name, gauge->value()});
  }
  for (const auto& [name, hist] : histograms_) {
    entries.push_back(
        Entry{name + ".count", static_cast<int64_t>(hist->count())});
    entries.push_back(
        Entry{name + ".sum_us", static_cast<int64_t>(hist->sum_micros())});
    entries.push_back(Entry{name + ".p50_us",
                            static_cast<int64_t>(hist->ValueAtQuantile(0.50))});
    entries.push_back(Entry{name + ".p95_us",
                            static_cast<int64_t>(hist->ValueAtQuantile(0.95))});
    entries.push_back(Entry{name + ".p99_us",
                            static_cast<int64_t>(hist->ValueAtQuantile(0.99))});
  }
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) { return a.name < b.name; });
  return entries;
}

void MetricsRegistry::WriteJson(const std::vector<Entry>& entries,
                                std::ostream& out) {
  // Metric names are [a-z0-9._]+ by convention, so no JSON escaping is
  // needed; keep the document stable (sorted keys, integer values, fixed
  // layout) so successive dumps diff cleanly.
  out << "{\n  \"verso_metrics_version\": 1,\n  \"metrics\": {";
  bool first = true;
  for (const Entry& entry : entries) {
    out << (first ? "\n" : ",\n") << "    \"" << entry.name
        << "\": " << entry.value;
    first = false;
  }
  out << "\n  }\n}\n";
}

void MetricsRegistry::DumpJson(std::ostream& out) const {
  WriteJson(Snapshot(), out);
}

}  // namespace verso
