#ifndef VERSO_OBS_METRICS_H_
#define VERSO_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "util/clock.h"

namespace verso {

/// Always-on operational metrics (ROADMAP: "always-on telemetry", the
/// nano-node lib/stats shape). One process-wide MetricsRegistry holds
/// named monotonic counters, gauges, and fixed-bucket latency histograms;
/// every layer (commit path, sessions, views, storage faults, workloads,
/// benches) reports into it through preregistered handles, and clients
/// read it back through `QUERY METRICS` / Connection::DumpMetrics.
///
/// Cost model — cheap enough to stay on in Release:
///   * event paths are one relaxed atomic load (the enabled flag) plus
///     one or two relaxed fetch_adds — no locks, no map lookups;
///   * handles are preregistered once (GetCounter takes a mutex, so hot
///     paths hold a `Counter&`, never a name);
///   * timing spans read the registry's Clock twice; with the registry
///     disabled they skip the clock reads entirely (the ablation
///     bench/bench_obs.cc measures exactly this on/off difference).
///
/// Registration never unregisters: handles are stable for the registry's
/// lifetime (values live in node-stable maps). Counters are monotonic;
/// Reset() exists for tests and bench ablations only.

class MetricsRegistry;

/// A named monotonic event counter.
class Counter {
 public:
  void Add(uint64_t n = 1) {
    if (!enabled_->load(std::memory_order_relaxed)) return;
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  explicit Counter(const std::atomic<bool>* enabled) : enabled_(enabled) {}
  const std::atomic<bool>* enabled_;
  std::atomic<uint64_t> value_{0};
};

/// A named last-value gauge (may go down; may be negative).
class Gauge {
 public:
  void Set(int64_t v) {
    if (!enabled_->load(std::memory_order_relaxed)) return;
    value_.store(v, std::memory_order_relaxed);
  }
  void Add(int64_t d) {
    if (!enabled_->load(std::memory_order_relaxed)) return;
    value_.fetch_add(d, std::memory_order_relaxed);
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  explicit Gauge(const std::atomic<bool>* enabled) : enabled_(enabled) {}
  const std::atomic<bool>* enabled_;
  std::atomic<int64_t> value_{0};
};

/// A fixed-bucket latency histogram over microsecond samples: bucket 0
/// holds sub-microsecond samples, bucket i >= 1 holds samples in
/// [2^(i-1), 2^i) µs. Quantiles report the upper bound of the bucket the
/// rank falls in, so ValueAtQuantile(q) >= the true quantile and is at
/// most 2x above it — tight enough for p50/p95/p99 trend lines, constant
/// memory, and wait-free recording.
class Histogram {
 public:
  static constexpr size_t kBuckets = 40;

  void Record(uint64_t micros) {
    if (!enabled_->load(std::memory_order_relaxed)) return;
    buckets_[BucketOf(micros)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_micros_.fetch_add(micros, std::memory_order_relaxed);
  }

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum_micros() const {
    return sum_micros_.load(std::memory_order_relaxed);
  }

  /// Upper bound (µs) of the bucket holding the q-quantile sample
  /// (0 < q <= 1); 0 when the histogram is empty.
  uint64_t ValueAtQuantile(double q) const;

  /// Bucket index of a sample: 0 for 0 µs, else floor(log2(µs)) + 1,
  /// clamped to the last bucket.
  static size_t BucketOf(uint64_t micros) {
    if (micros == 0) return 0;
    size_t bits = 64 - static_cast<size_t>(__builtin_clzll(micros));
    return bits < kBuckets ? bits : kBuckets - 1;
  }
  /// Exclusive upper bound (µs) of bucket i (inclusive for the last,
  /// saturated bucket).
  static uint64_t BucketUpperBound(size_t bucket) {
    return bucket >= 63 ? ~0ull : (1ull << bucket);
  }

 private:
  friend class MetricsRegistry;
  explicit Histogram(const std::atomic<bool>* enabled) : enabled_(enabled) {}
  const std::atomic<bool>* enabled_;
  std::atomic<uint64_t> buckets_[kBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_micros_{0};
};

class MetricsRegistry {
 public:
  /// A fresh, independent registry (unit tests). Production code uses
  /// Global().
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry every library layer reports into.
  static MetricsRegistry& Global();

  /// Returns the named metric, registering it on first use. Handles are
  /// stable for the registry's lifetime; preregister them outside hot
  /// paths (registration takes a mutex). A name belongs to exactly one
  /// metric kind for the registry's lifetime.
  Counter& GetCounter(std::string_view name);
  Gauge& GetGauge(std::string_view name);
  Histogram& GetHistogram(std::string_view name);

  /// The ablation switch: while disabled, every Add/Set/Record is a
  /// no-op and timing spans skip their clock reads. Values are retained.
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  /// The clock timing spans read; defaults to Clock::Default(). Not
  /// owned; tests install a FakeClock for deterministic histograms.
  Clock* clock() const {
    Clock* c = clock_.load(std::memory_order_relaxed);
    return c != nullptr ? c : Clock::Default();
  }
  void set_clock(Clock* clock) {
    clock_.store(clock, std::memory_order_relaxed);
  }

  /// Zeroes every registered value (names stay registered). Tests and
  /// bench ablations only — production counters are monotonic.
  void Reset();

  /// One row of a metrics snapshot. Histograms expand into five derived
  /// rows: `<name>.count`, `<name>.sum_us`, `<name>.p50_us`,
  /// `<name>.p95_us`, `<name>.p99_us`.
  struct Entry {
    std::string name;
    int64_t value = 0;
  };

  /// A consistent-enough point-in-time read of every registered metric,
  /// sorted by name. (Individual values are relaxed reads — each value
  /// is exact, the set is not a cross-metric atomic cut.)
  std::vector<Entry> Snapshot() const;

  /// Writes `entries` as the stable JSON document clients and CI parse:
  /// a flat, name-sorted object under the "metrics" key plus a format
  /// version tag. Byte-identical for equal snapshots.
  static void WriteJson(const std::vector<Entry>& entries, std::ostream& out);

  /// Snapshot() + WriteJson().
  void DumpJson(std::ostream& out) const;

 private:
  mutable std::mutex mu_;  // registration and snapshot; never event paths
  std::atomic<bool> enabled_{true};
  std::atomic<Clock*> clock_{nullptr};
  // std::map: node-stable addresses AND name-sorted iteration for free.
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

/// Times a span and records it (in µs) into a histogram when destroyed
/// or explicitly stopped. With the registry disabled, no clock is read.
class ScopedTimer {
 public:
  ScopedTimer(MetricsRegistry& registry, Histogram& hist)
      : clock_(registry.enabled() ? registry.clock() : nullptr),
        hist_(&hist),
        start_nanos_(clock_ != nullptr ? clock_->NowNanos() : 0) {}
  ~ScopedTimer() { Stop(); }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  /// Records the elapsed time (first call only) and returns it in µs.
  uint64_t Stop() {
    if (clock_ == nullptr) return 0;
    uint64_t elapsed_us = (clock_->NowNanos() - start_nanos_) / 1000;
    hist_->Record(elapsed_us);
    clock_ = nullptr;
    return elapsed_us;
  }

 private:
  Clock* clock_;
  Histogram* hist_;
  uint64_t start_nanos_;
};

}  // namespace verso

#endif  // VERSO_OBS_METRICS_H_
