#include "obs/metrics_sink.h"

namespace verso {

MetricsTraceSink::MetricsTraceSink(MetricsRegistry& registry, TraceSink* next)
    : next_(next),
      strata_(registry.GetCounter("eval.strata")),
      rounds_(registry.GetCounter("eval.rounds")),
      delta_rounds_(registry.GetCounter("eval.delta_rounds")),
      delta_facts_(registry.GetCounter("eval.delta_facts")),
      seed_probes_(registry.GetCounter("eval.seed_probes")),
      residual_rule_runs_(registry.GetCounter("eval.residual_rule_runs")),
      updates_derived_(registry.GetCounter("eval.updates_derived")),
      versions_materialized_(
          registry.GetCounter("eval.versions_materialized")),
      index_probes_(registry.GetCounter("index.probes")),
      index_hits_(registry.GetCounter("index.hits")),
      index_avoided_(registry.GetCounter("index.scan_avoided_facts")),
      parallel_strata_(registry.GetCounter("eval.parallel_strata")),
      serial_fallback_strata_(
          registry.GetCounter("eval.serial_fallback_strata")),
      worker_tasks_(registry.GetCounter("eval.worker_tasks")),
      worker_queue_us_(registry.GetHistogram("eval.worker_queue_us")),
      view_runs_(registry.GetCounter("view.maintenance_runs")),
      view_delta_facts_(registry.GetCounter("view.delta_facts")),
      view_added_(registry.GetCounter("view.facts_added")),
      view_removed_(registry.GetCounter("view.facts_removed")),
      view_overdeleted_(registry.GetCounter("view.overdeleted")),
      view_rederived_(registry.GetCounter("view.rederived")),
      storage_faults_(registry.GetCounter("storage.faults")),
      storage_degraded_(registry.GetCounter("storage.degraded_entered")) {}

void MetricsTraceSink::OnStratumBegin(uint32_t stratum, size_t rule_count) {
  strata_.Add();
  if (next_ != nullptr) next_->OnStratumBegin(stratum, rule_count);
}

void MetricsTraceSink::OnRoundBegin(uint32_t stratum, uint32_t round) {
  rounds_.Add();
  if (next_ != nullptr) next_->OnRoundBegin(stratum, round);
}

void MetricsTraceSink::OnDeltaRound(uint32_t stratum, uint32_t round,
                                    size_t delta_facts, size_t seed_probes,
                                    size_t residual_rules) {
  delta_rounds_.Add();
  delta_facts_.Add(delta_facts);
  seed_probes_.Add(seed_probes);
  residual_rule_runs_.Add(residual_rules);
  if (next_ != nullptr) {
    next_->OnDeltaRound(stratum, round, delta_facts, seed_probes,
                        residual_rules);
  }
}

void MetricsTraceSink::OnUpdateDerived(const Rule& rule,
                                       const GroundUpdate& update) {
  updates_derived_.Add();
  if (next_ != nullptr) next_->OnUpdateDerived(rule, update);
}

void MetricsTraceSink::OnVersionMaterialized(Vid version, Vid copied_from,
                                             size_t copied_facts) {
  versions_materialized_.Add();
  if (next_ != nullptr) {
    next_->OnVersionMaterialized(version, copied_from, copied_facts);
  }
}

void MetricsTraceSink::OnIndexUse(uint32_t stratum, size_t probes,
                                  size_t hits, size_t avoided_facts) {
  index_probes_.Add(probes);
  index_hits_.Add(hits);
  index_avoided_.Add(avoided_facts);
  if (next_ != nullptr) {
    next_->OnIndexUse(stratum, probes, hits, avoided_facts);
  }
}

void MetricsTraceSink::OnStratumFixpoint(uint32_t stratum, uint32_t rounds) {
  if (next_ != nullptr) next_->OnStratumFixpoint(stratum, rounds);
}

void MetricsTraceSink::OnParallelEval(uint32_t stratum, size_t parallel_rounds,
                                      size_t worker_tasks,
                                      size_t fallback_rounds,
                                      const std::vector<uint64_t>& queue_wait_us) {
  if (parallel_rounds > 0) parallel_strata_.Add();
  if (fallback_rounds > 0) serial_fallback_strata_.Add();
  worker_tasks_.Add(worker_tasks);
  for (uint64_t us : queue_wait_us) worker_queue_us_.Record(us);
  if (next_ != nullptr) {
    next_->OnParallelEval(stratum, parallel_rounds, worker_tasks,
                          fallback_rounds, queue_wait_us);
  }
}

void MetricsTraceSink::OnViewMaintenance(std::string_view view,
                                         size_t delta_facts, size_t added,
                                         size_t removed, size_t overdeleted,
                                         size_t rederived) {
  view_runs_.Add();
  view_delta_facts_.Add(delta_facts);
  view_added_.Add(added);
  view_removed_.Add(removed);
  view_overdeleted_.Add(overdeleted);
  view_rederived_.Add(rederived);
  if (next_ != nullptr) {
    next_->OnViewMaintenance(view, delta_facts, added, removed, overdeleted,
                             rederived);
  }
}

void MetricsTraceSink::OnStorageFault(std::string_view op,
                                      const Status& status, uint32_t attempt,
                                      bool degraded) {
  storage_faults_.Add();
  if (degraded) storage_degraded_.Add();
  if (next_ != nullptr) next_->OnStorageFault(op, status, attempt, degraded);
}

}  // namespace verso
