#ifndef VERSO_OBS_METRICS_SINK_H_
#define VERSO_OBS_METRICS_SINK_H_

#include "core/trace.h"
#include "obs/metrics.h"

namespace verso {

/// Bridges every TraceSink hook into a MetricsRegistry, then forwards to
/// an optional downstream sink. Connection installs one permanently, so
/// evaluation, view maintenance, and storage-fault events feed the
/// registry always-on, while a client-supplied TraceSink
/// (ConnectionOptions::trace / Connection::SetTrace) still sees the raw
/// event stream unchanged.
///
/// The TraceSink contract stays the one-way street it always was: the
/// bridge only counts; it never mutates events or suppresses forwarding.
class MetricsTraceSink : public TraceSink {
 public:
  explicit MetricsTraceSink(MetricsRegistry& registry,
                            TraceSink* next = nullptr);

  /// The downstream sink events are forwarded to (not owned; nullptr for
  /// none). Rewirable at any time — Connection::SetTrace goes through
  /// this.
  void set_next(TraceSink* next) { next_ = next; }
  TraceSink* next() const { return next_; }

  void OnStratumBegin(uint32_t stratum, size_t rule_count) override;
  void OnRoundBegin(uint32_t stratum, uint32_t round) override;
  void OnDeltaRound(uint32_t stratum, uint32_t round, size_t delta_facts,
                    size_t seed_probes, size_t residual_rules) override;
  void OnUpdateDerived(const Rule& rule, const GroundUpdate& update) override;
  void OnVersionMaterialized(Vid version, Vid copied_from,
                             size_t copied_facts) override;
  void OnIndexUse(uint32_t stratum, size_t probes, size_t hits,
                  size_t avoided_facts) override;
  void OnStratumFixpoint(uint32_t stratum, uint32_t rounds) override;
  void OnParallelEval(uint32_t stratum, size_t parallel_rounds,
                      size_t worker_tasks, size_t fallback_rounds,
                      const std::vector<uint64_t>& queue_wait_us) override;
  void OnViewMaintenance(std::string_view view, size_t delta_facts,
                         size_t added, size_t removed, size_t overdeleted,
                         size_t rederived) override;
  void OnStorageFault(std::string_view op, const Status& status,
                      uint32_t attempt, bool degraded) override;

 private:
  TraceSink* next_;

  Counter& strata_;
  Counter& rounds_;
  Counter& delta_rounds_;
  Counter& delta_facts_;
  Counter& seed_probes_;
  Counter& residual_rule_runs_;
  Counter& updates_derived_;
  Counter& versions_materialized_;
  Counter& index_probes_;
  Counter& index_hits_;
  Counter& index_avoided_;
  Counter& parallel_strata_;
  Counter& serial_fallback_strata_;
  Counter& worker_tasks_;
  Histogram& worker_queue_us_;
  Counter& view_runs_;
  Counter& view_delta_facts_;
  Counter& view_added_;
  Counter& view_removed_;
  Counter& view_overdeleted_;
  Counter& view_rederived_;
  Counter& storage_faults_;
  Counter& storage_degraded_;
};

}  // namespace verso

#endif  // VERSO_OBS_METRICS_SINK_H_
