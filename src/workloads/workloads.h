#ifndef VERSO_WORKLOADS_WORKLOADS_H_
#define VERSO_WORKLOADS_WORKLOADS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/engine.h"
#include "core/object_base.h"

namespace verso {

/// Deterministic synthetic workloads for benchmarks and property tests.
/// The paper evaluates no data sets (it is a semantics paper); these
/// generators produce object bases with the schema of its examples
/// (employees/bosses/salaries, person/parents genealogies, plain graphs)
/// at configurable scale, fully seeded so every run is reproducible.

/// xorshift64* — tiny deterministic PRNG so workloads never depend on
/// std:: library distribution details.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed ? seed : 0x9e3779b97f4a7c15ULL) {}

  uint64_t Next() {
    state_ ^= state_ >> 12;
    state_ ^= state_ << 25;
    state_ ^= state_ >> 27;
    return state_ * 0x2545F4914F6CDD1DULL;
  }
  /// Uniform in [0, bound).
  uint64_t Below(uint64_t bound) { return bound == 0 ? 0 : Next() % bound; }

 private:
  uint64_t state_;
};

/// An enterprise in the shape of the paper's running example: a boss
/// forest of employees with integer salaries; a fraction are managers.
struct Enterprise {
  std::vector<std::string> names;   // emp0, emp1, ...
  std::vector<int> boss;            // index of boss, -1 for roots
  std::vector<int64_t> salary;
  std::vector<bool> is_manager;
};

struct EnterpriseOptions {
  size_t employees = 64;
  /// Every k-th employee is a manager (roots of the boss forest).
  size_t manager_every = 8;
  int64_t min_salary = 1000;
  int64_t max_salary = 9000;
  uint64_t seed = 42;
  /// Extra objects that no rule touches (frame-problem measurements).
  size_t bystanders = 0;
};

/// Generates the enterprise and materializes it into `base`
/// (isa/pos/boss/sal facts, plus `mass` facts for bystanders).
Enterprise MakeEnterprise(const EnterpriseOptions& options, Engine& engine,
                          ObjectBase& base);

/// A person forest for the recursive-ancestors example: person i may have
/// parents among persons with larger index (acyclic by construction).
struct Genealogy {
  std::vector<std::string> names;
  std::vector<std::vector<int>> parents;

  /// Reference transitive closure (for correctness checks).
  std::vector<std::vector<int>> AncestorClosure() const;
};

struct GenealogyOptions {
  size_t persons = 64;
  size_t max_parents = 2;
  uint64_t seed = 7;
};

Genealogy MakeGenealogy(const GenealogyOptions& options, Engine& engine,
                        ObjectBase& base);

/// A random directed graph (edge facts) for query-layer benchmarks.
void MakeGraph(size_t nodes, size_t edges, uint64_t seed, Engine& engine,
               ObjectBase& base);

/// The paper's four enterprise rules (Section 2.3, Example 1) in surface
/// syntax, shared by tests and benchmarks.
extern const char kEnterpriseProgramText[];

/// The hypothetical-raise program (Example 2), parameterized on the
/// distinguished employee name.
std::string HypotheticalProgramText(const std::string& subject);

/// The recursive-ancestors program (Example 3).
extern const char kAncestorsProgramText[];

}  // namespace verso

#endif  // VERSO_WORKLOADS_WORKLOADS_H_
