#include "workloads/workloads.h"

#include "obs/metrics.h"

namespace verso {

namespace {

/// Generator handles into the global registry — benches and examples
/// report workload sizes through the same surface as everything else.
struct WorkloadMetrics {
  Counter& bases_generated;
  Counter& objects;
  Counter& facts;

  static WorkloadMetrics& Get() {
    static WorkloadMetrics* metrics =
        new WorkloadMetrics(MetricsRegistry::Global());  // never dies
    return *metrics;
  }

  explicit WorkloadMetrics(MetricsRegistry& registry)
      : bases_generated(registry.GetCounter("workload.bases_generated")),
        objects(registry.GetCounter("workload.objects")),
        facts(registry.GetCounter("workload.facts")) {}
};

}  // namespace

Enterprise MakeEnterprise(const EnterpriseOptions& options, Engine& engine,
                          ObjectBase& base) {
  Enterprise e;
  Rng rng(options.seed);
  const size_t n = options.employees;
  e.names.reserve(n);
  e.boss.assign(n, -1);
  e.salary.assign(n, 0);
  e.is_manager.assign(n, false);

  size_t manager_every = options.manager_every == 0 ? 1 : options.manager_every;
  std::vector<int> managers;
  for (size_t i = 0; i < n; ++i) {
    e.names.push_back("emp" + std::to_string(i));
    e.is_manager[i] = (i % manager_every) == 0;
    if (e.is_manager[i]) managers.push_back(static_cast<int>(i));
  }
  int64_t range = options.max_salary - options.min_salary + 1;
  for (size_t i = 0; i < n; ++i) {
    e.salary[i] = options.min_salary +
                  static_cast<int64_t>(rng.Below(static_cast<uint64_t>(range)));
    if (!e.is_manager[i] && !managers.empty()) {
      // Boss is a manager with smaller index when possible (keeps the
      // forest acyclic and the example's shape: workers report upward).
      e.boss[i] = managers[rng.Below(managers.size())];
      if (e.boss[i] == static_cast<int>(i)) e.boss[i] = managers[0];
    }
  }

  size_t facts = 0;
  for (size_t i = 0; i < n; ++i) {
    engine.AddFact(base, e.names[i], "isa", "empl");
    engine.AddFact(base, e.names[i], "sal", e.salary[i]);
    facts += 2;
    if (e.is_manager[i]) {
      engine.AddFact(base, e.names[i], "pos", "mgr");
      ++facts;
    }
    if (e.boss[i] >= 0) {
      engine.AddFact(base, e.names[i], "boss",
                     engine.symbols().Symbol(e.names[e.boss[i]]));
      ++facts;
    }
  }
  for (size_t i = 0; i < options.bystanders; ++i) {
    std::string name = "rock" + std::to_string(i);
    engine.AddFact(base, name, "isa", "stone");
    engine.AddFact(base, name, "mass",
                   static_cast<int64_t>(rng.Below(1000)));
    facts += 2;
  }
  WorkloadMetrics& metrics = WorkloadMetrics::Get();
  metrics.bases_generated.Add();
  metrics.objects.Add(n + options.bystanders);
  metrics.facts.Add(facts);
  return e;
}

std::vector<std::vector<int>> Genealogy::AncestorClosure() const {
  const size_t n = names.size();
  std::vector<std::vector<bool>> reach(n, std::vector<bool>(n, false));
  // parents point to larger indices: process from the back.
  for (size_t i = n; i-- > 0;) {
    for (int p : parents[i]) {
      reach[i][static_cast<size_t>(p)] = true;
      for (size_t j = 0; j < n; ++j) {
        if (reach[static_cast<size_t>(p)][j]) reach[i][j] = true;
      }
    }
  }
  std::vector<std::vector<int>> out(n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      if (reach[i][j]) out[i].push_back(static_cast<int>(j));
    }
  }
  return out;
}

Genealogy MakeGenealogy(const GenealogyOptions& options, Engine& engine,
                        ObjectBase& base) {
  Genealogy g;
  Rng rng(options.seed);
  const size_t n = options.persons;
  g.names.reserve(n);
  g.parents.assign(n, {});
  for (size_t i = 0; i < n; ++i) {
    g.names.push_back("p" + std::to_string(i));
  }
  for (size_t i = 0; i + 1 < n; ++i) {
    size_t count = rng.Below(options.max_parents + 1);
    for (size_t k = 0; k < count; ++k) {
      int parent =
          static_cast<int>(i + 1 + rng.Below(n - i - 1));
      bool dup = false;
      for (int existing : g.parents[i]) dup |= existing == parent;
      if (!dup) g.parents[i].push_back(parent);
    }
  }
  size_t facts = 0;
  for (size_t i = 0; i < n; ++i) {
    engine.AddFact(base, g.names[i], "isa", "person");
    facts += 1 + g.parents[i].size();
    for (int p : g.parents[i]) {
      engine.AddFact(base, g.names[i], "parents",
                     engine.symbols().Symbol(g.names[static_cast<size_t>(p)]));
    }
  }
  WorkloadMetrics& metrics = WorkloadMetrics::Get();
  metrics.bases_generated.Add();
  metrics.objects.Add(n);
  metrics.facts.Add(facts);
  return g;
}

void MakeGraph(size_t nodes, size_t edges, uint64_t seed, Engine& engine,
               ObjectBase& base) {
  Rng rng(seed);
  for (size_t i = 0; i < nodes; ++i) {
    engine.AddFact(base, "n" + std::to_string(i), "isa", "node");
  }
  for (size_t i = 0; i < edges; ++i) {
    size_t from = rng.Below(nodes);
    size_t to = rng.Below(nodes);
    engine.AddFact(base, "n" + std::to_string(from), "edge",
                   engine.symbols().Symbol("n" + std::to_string(to)));
  }
  WorkloadMetrics& metrics = WorkloadMetrics::Get();
  metrics.bases_generated.Add();
  metrics.objects.Add(nodes);
  metrics.facts.Add(nodes + edges);
}

const char kEnterpriseProgramText[] = R"(
rule1: mod[E].sal -> (S, S2) <-
    E.isa -> empl / pos -> mgr / sal -> S,
    S2 = S * 1.1 + 200.
rule2: mod[E].sal -> (S, S2) <-
    E.isa -> empl / sal -> S,
    not E.pos -> mgr,
    S2 = S * 1.1.
rule3: del[mod(E)].* <-
    mod(E).isa -> empl / boss -> B / sal -> SE,
    mod(B).isa -> empl / sal -> SB,
    SE > SB.
rule4: ins[mod(E)].isa -> hpe <-
    mod(E).isa -> empl / sal -> S,
    S > 4500,
    not del[mod(E)].isa -> empl.
)";

std::string HypotheticalProgramText(const std::string& subject) {
  return R"(
r1: mod[E].sal -> (S, S2) <- E.sal -> S / factor -> F, S2 = S * F.
r2: mod[mod(E)].sal -> (S2, S) <- mod(E).sal -> S2, E.sal -> S.
r3: ins[mod(mod()" + subject + R"())].richest -> no <-
    mod(E).sal -> SE, mod()" + subject + R"().sal -> SP, SE > SP.
r4: ins[ins(mod(mod()" + subject + R"()))].richest -> yes <-
    not ins(mod(mod()" + subject + R"())).richest -> no.
)";
}

const char kAncestorsProgramText[] = R"(
r1: ins[X].anc -> P <- X.isa -> person / parents -> P.
r2: ins[X].anc -> P <- ins(X).isa -> person / anc -> A,
                       A.isa -> person / parents -> P.
)";

}  // namespace verso
