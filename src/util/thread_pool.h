#ifndef VERSO_UTIL_THREAD_POOL_H_
#define VERSO_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace verso {

/// A shared, lazily started worker pool with a bounded task queue.
///
/// The pool is process-wide (Shared()) so every subsystem that fans out —
/// T_P derivation rounds, DRed probe waves, the query fixpoint — draws
/// from one set of threads instead of oversubscribing the machine.
/// Threads are spawned on first use, capped at hardware_concurrency - 1
/// (the caller of Run participates as a lane of its own, so the cap keeps
/// total runnable lanes at the core count).
///
/// Run(lanes, body) executes body(0) on the calling thread and
/// body(1) .. body(lanes - 1) on pool workers, blocking until every lane
/// returns. `body` must not throw (callers that need failure isolation
/// wrap their work in try/catch and record the outcome per lane). The
/// per-dispatch queue-wait times are reported for observability.
class ThreadPool {
 public:
  /// The process-wide pool.
  static ThreadPool& Shared();

  explicit ThreadPool(int max_workers = 0, size_t queue_capacity = 256);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Runs body(lane) for lane in [0, lanes): lane 0 inline on the caller,
  /// the rest on workers. Blocks until all lanes finish. When
  /// `queue_wait_us` is given, the microseconds each dispatched job spent
  /// queued before a worker picked it up are appended (one entry per
  /// worker lane actually dispatched).
  void Run(int lanes, const std::function<void(int)>& body,
           std::vector<uint64_t>* queue_wait_us = nullptr);

  /// Lanes Run can usefully drive: the worker cap plus the caller's lane.
  int max_lanes() const { return max_workers_ + 1; }

  /// Workers actually spawned so far (lazy start; tests).
  size_t worker_count() const;

 private:
  struct Job {
    std::function<void()> fn;
    uint64_t enqueued_ns = 0;
  };

  void EnsureWorkers(int wanted);
  void WorkerLoop();

  const int max_workers_;
  const size_t queue_capacity_;

  mutable std::mutex mu_;
  std::condition_variable queue_nonempty_;
  std::condition_variable queue_nonfull_;
  std::deque<Job> queue_;
  std::vector<std::thread> workers_;
  bool shutdown_ = false;
};

}  // namespace verso

#endif  // VERSO_UTIL_THREAD_POOL_H_
