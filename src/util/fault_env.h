#ifndef VERSO_UTIL_FAULT_ENV_H_
#define VERSO_UTIL_FAULT_ENV_H_

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>

#include "util/io.h"

namespace verso {

/// Deterministic in-memory Env with scripted fault injection — the
/// crash-correctness oracle behind tests/storage/crash_torture_test.cc
/// (the RocksDB FaultInjectionTestEnv pattern).
///
/// The environment counts every MUTATING operation (WriteFile, AppendFile,
/// RenameFile, RemoveFile, TruncateFile, EnsureDirectory) and can be armed
/// to fail the Nth one:
///
///   - kEio / kEnospc   the operation fails with a permanent kIoError
///                      after applying `partial_bytes` of its payload (a
///                      short write followed by an error — the nastiest
///                      append failure); the env keeps working afterwards.
///   - kTransient       same, but the error is kIoTransient — the storage
///                      layer's retry-with-backoff policy applies.
///   - kCrash           the process "dies" mid-operation: `partial_bytes`
///                      of the payload land (unsynced tail dropped), the
///                      operation and EVERY later one fail with kIoError,
///                      and crashed() turns true. CloneSurvivingFiles()
///                      then yields the post-crash disk image a rebooted
///                      process would recover from.
///
/// For non-data operations (rename/remove/truncate/mkdir) `partial_bytes`
/// selects all-or-nothing: 0 means the operation did not happen, anything
/// else means it completed before the fault hit.
///
/// Reads are never failed by the plan (a read failure cannot affect
/// durability), but after a kCrash every operation, reads included, fails:
/// the process is conceptually dead.
class FaultInjectingEnv : public Env {
 public:
  enum class FaultKind : uint8_t { kEio, kEnospc, kTransient, kCrash };

  /// Which mutating operations count toward `fail_at`.
  enum class OpFilter : uint8_t {
    kAnyMutating,
    kWrite,
    kAppend,
    kRename,
    kRemove,
    kTruncate,
  };

  static constexpr uint64_t kNever = ~0ull;

  struct FaultPlan {
    /// 0-based index among operations matching `filter`; kNever disarms.
    uint64_t fail_at = kNever;
    /// Consecutive matching operations to fail from `fail_at` on (a flaky
    /// device that stays flaky across retries). kCrash ignores this —
    /// after a crash everything fails anyway.
    uint32_t repeat = 1;
    FaultKind kind = FaultKind::kEio;
    /// Payload bytes applied before the fault (data ops), or the
    /// did-it-happen toggle for non-data ops.
    size_t partial_bytes = 0;
    OpFilter filter = OpFilter::kAnyMutating;
  };

  FaultInjectingEnv() = default;

  /// Arms (or re-arms) the fault plan. For kAnyMutating plans `fail_at`
  /// is an ABSOLUTE op index (use mutating_ops() to aim relative to work
  /// already done — the torture driver's counting-run pattern); for
  /// filtered plans it counts matching ops from this call on ("fail the
  /// first append from now").
  void SetPlan(const FaultPlan& plan) {
    plan_ = plan;
    faults_hit_ = 0;
    matching_ops_ = 0;
  }
  void Disarm() { plan_.fail_at = kNever; }

  /// Mutating operations seen so far (the injection-point space a torture
  /// driver sweeps after a fault-free counting run).
  uint64_t mutating_ops() const { return mutating_ops_; }
  /// True once a kCrash fault fired; every later operation fails.
  bool crashed() const { return crashed_; }
  /// Faults injected so far under the current plan.
  uint32_t faults_hit() const { return faults_hit_; }

  /// The surviving "disk" after a crash (or at any quiescent point): a
  /// fresh, fault-free env holding a copy of the current file contents —
  /// what a rebooted process would see.
  std::unique_ptr<FaultInjectingEnv> CloneSurvivingFiles() const;

  /// Direct file-image access, for byte-prefix sweeps.
  const std::map<std::string, std::string>& files() const { return files_; }
  void SetFileContents(const std::string& path, std::string contents) {
    files_[path] = std::move(contents);
  }

  // -- Env -------------------------------------------------------------
  Result<std::string> ReadFile(const std::string& path) override;
  Status WriteFile(const std::string& path, std::string_view contents) override;
  Status AppendFile(const std::string& path,
                    std::string_view contents) override;
  Status RenameFile(const std::string& from, const std::string& to) override;
  bool FileExists(const std::string& path) override;
  Result<size_t> FileSize(const std::string& path) override;
  Status RemoveFile(const std::string& path) override;
  Status TruncateFile(const std::string& path, size_t size) override;
  Status EnsureDirectory(const std::string& path) override;

 private:
  /// Bumps the op counters; returns the fault to inject into this
  /// operation, or OK. Sets crashed_ for kCrash plans. `fired` is true
  /// only when the fault fires on this very operation (partial payloads
  /// apply), not when the env died earlier.
  Status NextFault(OpFilter op, bool& fired);

  FaultPlan plan_;
  uint64_t mutating_ops_ = 0;
  uint64_t matching_ops_ = 0;
  uint32_t faults_hit_ = 0;
  bool crashed_ = false;
  std::map<std::string, std::string> files_;
  std::set<std::string> dirs_;
};

}  // namespace verso

#endif  // VERSO_UTIL_FAULT_ENV_H_
