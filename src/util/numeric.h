#ifndef VERSO_UTIL_NUMERIC_H_
#define VERSO_UTIL_NUMERIC_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#include "util/result.h"
#include "util/status.h"

namespace verso {

/// Exact rational number with 64-bit numerator/denominator, always kept
/// normalized (gcd 1, denominator > 0).
///
/// The paper's examples rely on exact decimal arithmetic (a salary of 250
/// raised by 10% must compare equal to 275, and 4000*1.1+200 to 4600);
/// binary floating point cannot express 1.1, so verso values are exact
/// rationals. Decimal literals parse exactly ("1.1" == 11/10). All
/// arithmetic is overflow-checked through 128-bit intermediates and
/// reported via Result rather than silently wrapping.
class Numeric {
 public:
  /// Zero.
  Numeric() : num_(0), den_(1) {}

  static Numeric FromInt(int64_t v) { return Numeric(v, 1); }

  /// Builds num/den, normalizing sign and gcd. Fails on den == 0.
  static Result<Numeric> FromRatio(int64_t num, int64_t den);

  /// Parses an optionally signed integer or decimal literal, e.g. "-12",
  /// "3.50", ".5". The decimal is converted exactly (3.50 == 7/2).
  static Result<Numeric> Parse(std::string_view text);

  int64_t numerator() const { return num_; }
  int64_t denominator() const { return den_; }

  bool is_integer() const { return den_ == 1; }
  bool is_zero() const { return num_ == 0; }
  bool is_negative() const { return num_ < 0; }

  /// Overflow-checked arithmetic.
  static Result<Numeric> Add(const Numeric& a, const Numeric& b);
  static Result<Numeric> Sub(const Numeric& a, const Numeric& b);
  static Result<Numeric> Mul(const Numeric& a, const Numeric& b);
  /// Fails on division by zero.
  static Result<Numeric> Div(const Numeric& a, const Numeric& b);
  static Result<Numeric> Neg(const Numeric& a);

  /// Exact three-way comparison (no overflow: compares via 128-bit
  /// cross-multiplication).
  static int Compare(const Numeric& a, const Numeric& b);

  friend bool operator==(const Numeric& a, const Numeric& b) {
    return a.num_ == b.num_ && a.den_ == b.den_;
  }
  friend bool operator!=(const Numeric& a, const Numeric& b) {
    return !(a == b);
  }
  friend bool operator<(const Numeric& a, const Numeric& b) {
    return Compare(a, b) < 0;
  }

  /// Renders as an integer when possible; as an exact decimal when the
  /// denominator divides a power of ten (e.g. "2.75"); otherwise "p/q".
  std::string ToString() const;

  size_t Hash() const;

 private:
  Numeric(int64_t num, int64_t den) : num_(num), den_(den) {}

  int64_t num_;
  int64_t den_;  // > 0
};

}  // namespace verso

template <>
struct std::hash<verso::Numeric> {
  size_t operator()(const verso::Numeric& n) const { return n.Hash(); }
};

#endif  // VERSO_UTIL_NUMERIC_H_
