#include "util/fault_env.h"

#include <algorithm>

namespace verso {

namespace {

Status DeadEnv() {
  return Status::IoError("simulated crash: environment is down");
}

Status FaultStatus(FaultInjectingEnv::FaultKind kind) {
  switch (kind) {
    case FaultInjectingEnv::FaultKind::kEio:
      return Status::IoError("injected EIO");
    case FaultInjectingEnv::FaultKind::kEnospc:
      return Status::IoError("injected ENOSPC: no space left on device");
    case FaultInjectingEnv::FaultKind::kTransient:
      return Status::IoTransient("injected transient I/O failure");
    case FaultInjectingEnv::FaultKind::kCrash:
      return Status::IoError("simulated crash");
  }
  return Status::Internal("unreachable fault kind");
}

}  // namespace

// `fired` distinguishes "the fault fires on THIS operation" (partial
// payload applies) from "the env crashed earlier" (nothing is touched).
Status FaultInjectingEnv::NextFault(OpFilter op, bool& fired) {
  fired = false;
  if (crashed_) return DeadEnv();
  uint64_t any_index = mutating_ops_++;
  uint64_t idx = any_index;
  if (plan_.filter != OpFilter::kAnyMutating) {
    if (plan_.filter != op) return Status::Ok();
    idx = matching_ops_++;
  }
  if (plan_.fail_at == kNever || idx < plan_.fail_at) return Status::Ok();
  if (plan_.kind != FaultKind::kCrash &&
      idx >= plan_.fail_at + plan_.repeat) {
    return Status::Ok();
  }
  ++faults_hit_;
  fired = true;
  if (plan_.kind == FaultKind::kCrash) crashed_ = true;
  return FaultStatus(plan_.kind);
}

std::unique_ptr<FaultInjectingEnv> FaultInjectingEnv::CloneSurvivingFiles()
    const {
  auto clone = std::make_unique<FaultInjectingEnv>();
  clone->files_ = files_;
  clone->dirs_ = dirs_;
  return clone;
}

Result<std::string> FaultInjectingEnv::ReadFile(const std::string& path) {
  if (crashed_) return DeadEnv();
  auto it = files_.find(path);
  if (it == files_.end()) {
    return Status::IoError("cannot open '" + path + "' for reading");
  }
  return it->second;
}

Status FaultInjectingEnv::WriteFile(const std::string& path,
                                    std::string_view contents) {
  bool fired = false;
  Status fault = NextFault(OpFilter::kWrite, fired);
  if (!fault.ok()) {
    if (fired) {
      // Short write: the truncate already happened, only the partial
      // prefix of the new contents made it down.
      size_t n = std::min(plan_.partial_bytes, contents.size());
      files_[path] = std::string(contents.substr(0, n));
    }
    return fault;
  }
  files_[path] = std::string(contents);
  return Status::Ok();
}

Status FaultInjectingEnv::AppendFile(const std::string& path,
                                     std::string_view contents) {
  bool fired = false;
  Status fault = NextFault(OpFilter::kAppend, fired);
  if (!fault.ok()) {
    if (fired) {
      size_t n = std::min(plan_.partial_bytes, contents.size());
      files_[path] += std::string(contents.substr(0, n));
    }
    return fault;
  }
  files_[path] += std::string(contents);
  return Status::Ok();
}

Status FaultInjectingEnv::RenameFile(const std::string& from,
                                     const std::string& to) {
  bool fired = false;
  Status fault = NextFault(OpFilter::kRename, fired);
  bool apply = fault.ok() || (fired && plan_.partial_bytes > 0);
  if (apply) {
    auto it = files_.find(from);
    if (it == files_.end()) {
      return fault.ok()
                 ? Status::IoError("rename '" + from + "': no such file")
                 : fault;
    }
    files_[to] = std::move(it->second);
    files_.erase(it);
  }
  return fault;
}

bool FaultInjectingEnv::FileExists(const std::string& path) {
  return files_.count(path) > 0 || dirs_.count(path) > 0;
}

Result<size_t> FaultInjectingEnv::FileSize(const std::string& path) {
  if (crashed_) return DeadEnv();
  auto it = files_.find(path);
  if (it == files_.end()) {
    return Status::IoError("size of '" + path + "': no such file");
  }
  return it->second.size();
}

Status FaultInjectingEnv::RemoveFile(const std::string& path) {
  bool fired = false;
  Status fault = NextFault(OpFilter::kRemove, fired);
  bool apply = fault.ok() || (fired && plan_.partial_bytes > 0);
  if (apply) files_.erase(path);
  return fault;
}

Status FaultInjectingEnv::TruncateFile(const std::string& path, size_t size) {
  bool fired = false;
  Status fault = NextFault(OpFilter::kTruncate, fired);
  bool apply = fault.ok() || (fired && plan_.partial_bytes > 0);
  if (apply) {
    auto it = files_.find(path);
    if (it == files_.end()) {
      return fault.ok()
                 ? Status::IoError("truncate '" + path + "': no such file")
                 : fault;
    }
    it->second.resize(size, '\0');
  }
  return fault;
}

Status FaultInjectingEnv::EnsureDirectory(const std::string& path) {
  bool fired = false;
  Status fault = NextFault(OpFilter::kAnyMutating, fired);
  if (fault.ok()) dirs_.insert(path);
  return fault;
}

}  // namespace verso
