#ifndef VERSO_UTIL_RESULT_H_
#define VERSO_UTIL_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "util/status.h"

namespace verso {

/// Either a value of type T or an error Status (never both, never neither).
/// Modeled after arrow::Result / absl::StatusOr.
template <typename T>
class Result {
 public:
  // NOLINTNEXTLINE(google-explicit-constructor): implicit by design, like
  // arrow::Result, so `return value;` and `return status;` both work.
  Result(T value) : value_(std::move(value)) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  Result(Status status) : status_(std::move(status)) {
    assert(!status_.ok() && "Result constructed from OK status");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Value if ok, otherwise `fallback`.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_;  // OK iff value_ holds a value
};

/// Evaluate `expr` (a Result<T>); on error return its Status, otherwise
/// bind the value to `lhs`.
#define VERSO_ASSIGN_OR_RETURN(lhs, expr)                  \
  VERSO_ASSIGN_OR_RETURN_IMPL(                             \
      VERSO_RESULT_CONCAT(_verso_result_, __LINE__), lhs, expr)

#define VERSO_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                \
  if (!tmp.ok()) return tmp.status();               \
  lhs = std::move(tmp).value()

#define VERSO_RESULT_CONCAT_INNER(a, b) a##b
#define VERSO_RESULT_CONCAT(a, b) VERSO_RESULT_CONCAT_INNER(a, b)

}  // namespace verso

#endif  // VERSO_UTIL_RESULT_H_
