#include "util/crc32.h"

namespace verso {

namespace {

struct Crc32Table {
  uint32_t entries[256];
  Crc32Table() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
      }
      entries[i] = c;
    }
  }
};

const Crc32Table& Table() {
  static const Crc32Table table;
  return table;
}

}  // namespace

uint32_t Crc32Extend(uint32_t crc, const void* data, size_t length) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  uint32_t c = crc ^ 0xffffffffu;
  const Crc32Table& table = Table();
  for (size_t i = 0; i < length; ++i) {
    c = table.entries[(c ^ bytes[i]) & 0xffu] ^ (c >> 8);
  }
  return c ^ 0xffffffffu;
}

uint32_t Crc32(const void* data, size_t length) {
  return Crc32Extend(0, data, length);
}

}  // namespace verso
