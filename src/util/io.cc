#include "util/io.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <system_error>

namespace verso {

namespace fs = std::filesystem;

Status Env::WriteFileAtomic(const std::string& path,
                            std::string_view contents) {
  std::string tmp = path + ".tmp";
  VERSO_RETURN_IF_ERROR(WriteFile(tmp, contents));
  Status renamed = RenameFile(tmp, path);
  if (!renamed.ok()) {
    // Best-effort cleanup; the rename error is what the caller acts on.
    RemoveFile(tmp);
  }
  return renamed;
}

Env* Env::Default() {
  static PosixEnv* env = new PosixEnv();
  return env;
}

Result<std::string> PosixEnv::ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open '" + path + "' for reading");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) return Status::IoError("read failure on '" + path + "'");
  return buffer.str();
}

Status PosixEnv::WriteFile(const std::string& path, std::string_view contents) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IoError("cannot open '" + path + "' for writing");
  out.write(contents.data(), static_cast<std::streamsize>(contents.size()));
  out.flush();
  if (!out) return Status::IoError("write failure on '" + path + "'");
  return Status::Ok();
}

Status PosixEnv::AppendFile(const std::string& path,
                            std::string_view contents) {
  std::ofstream out(path, std::ios::binary | std::ios::app);
  if (!out) return Status::IoError("cannot open '" + path + "' for append");
  out.write(contents.data(), static_cast<std::streamsize>(contents.size()));
  out.flush();
  if (!out) return Status::IoError("append failure on '" + path + "'");
  return Status::Ok();
}

Status PosixEnv::RenameFile(const std::string& from, const std::string& to) {
  std::error_code ec;
  fs::rename(from, to, ec);
  if (ec) {
    return Status::IoError("rename '" + from + "' -> '" + to +
                           "': " + ec.message());
  }
  return Status::Ok();
}

bool PosixEnv::FileExists(const std::string& path) {
  std::error_code ec;
  return fs::exists(path, ec);
}

Result<size_t> PosixEnv::FileSize(const std::string& path) {
  std::error_code ec;
  uintmax_t size = fs::file_size(path, ec);
  if (ec) return Status::IoError("size of '" + path + "': " + ec.message());
  return static_cast<size_t>(size);
}

Status PosixEnv::RemoveFile(const std::string& path) {
  std::error_code ec;
  fs::remove(path, ec);
  if (ec) return Status::IoError("remove '" + path + "': " + ec.message());
  return Status::Ok();
}

Status PosixEnv::TruncateFile(const std::string& path, size_t size) {
  std::error_code ec;
  fs::resize_file(path, size, ec);
  if (ec) return Status::IoError("truncate '" + path + "': " + ec.message());
  return Status::Ok();
}

Status PosixEnv::EnsureDirectory(const std::string& path) {
  std::error_code ec;
  fs::create_directories(path, ec);
  if (ec) return Status::IoError("mkdir '" + path + "': " + ec.message());
  return Status::Ok();
}

Result<std::string> ReadFile(const std::string& path) {
  return Env::Default()->ReadFile(path);
}

Status WriteFile(const std::string& path, std::string_view contents) {
  return Env::Default()->WriteFile(path, contents);
}

Status WriteFileAtomic(const std::string& path, std::string_view contents) {
  return Env::Default()->WriteFileAtomic(path, contents);
}

Status AppendFile(const std::string& path, std::string_view contents) {
  return Env::Default()->AppendFile(path, contents);
}

bool FileExists(const std::string& path) {
  return Env::Default()->FileExists(path);
}

Result<size_t> FileSize(const std::string& path) {
  return Env::Default()->FileSize(path);
}

Status RemoveFile(const std::string& path) {
  return Env::Default()->RemoveFile(path);
}

Status TruncateFile(const std::string& path, size_t size) {
  return Env::Default()->TruncateFile(path, size);
}

Status EnsureDirectory(const std::string& path) {
  return Env::Default()->EnsureDirectory(path);
}

}  // namespace verso
