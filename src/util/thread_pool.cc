#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <chrono>

namespace verso {

namespace {

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

int DefaultWorkerCap() {
  unsigned hw = std::thread::hardware_concurrency();
  if (hw <= 1) return 1;
  return static_cast<int>(hw - 1);
}

}  // namespace

ThreadPool& ThreadPool::Shared() {
  static ThreadPool pool;
  return pool;
}

ThreadPool::ThreadPool(int max_workers, size_t queue_capacity)
    : max_workers_(max_workers > 0 ? max_workers : DefaultWorkerCap()),
      queue_capacity_(queue_capacity) {}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  queue_nonempty_.notify_all();
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
}

size_t ThreadPool::worker_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return workers_.size();
}

void ThreadPool::EnsureWorkers(int wanted) {
  // Caller holds mu_.
  int target = std::min(wanted, max_workers_);
  while (static_cast<int>(workers_.size()) < target) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      queue_nonempty_.wait(lock, [&] { return shutdown_ || !queue_.empty(); });
      if (shutdown_ && queue_.empty()) return;
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    queue_nonfull_.notify_one();
    job.fn();
  }
}

void ThreadPool::Run(int lanes, const std::function<void(int)>& body,
                     std::vector<uint64_t>* queue_wait_us) {
  if (lanes <= 1) {
    body(0);
    return;
  }
  const int dispatched = std::min(lanes - 1, max_workers_);

  struct Shared {
    std::mutex mu;
    std::condition_variable done_cv;
    int pending = 0;
    std::vector<uint64_t> waits_us;
  };
  Shared shared;
  shared.pending = dispatched;
  shared.waits_us.reserve(static_cast<size_t>(dispatched));

  {
    std::unique_lock<std::mutex> lock(mu_);
    EnsureWorkers(dispatched);
    for (int lane = 1; lane <= dispatched; ++lane) {
      queue_nonfull_.wait(lock,
                          [&] { return queue_.size() < queue_capacity_; });
      Job job;
      job.enqueued_ns = NowNs();
      const uint64_t enqueued_ns = job.enqueued_ns;
      job.fn = [&shared, &body, lane, enqueued_ns] {
        const uint64_t wait_us = (NowNs() - enqueued_ns) / 1000;
        body(lane);
        std::lock_guard<std::mutex> done_lock(shared.mu);
        shared.waits_us.push_back(wait_us);
        if (--shared.pending == 0) shared.done_cv.notify_one();
      };
      queue_.push_back(std::move(job));
      queue_nonempty_.notify_one();
    }
  }

  // Extra lanes beyond the worker cap collapse onto the caller: lane ids
  // [dispatched + 1, lanes) run here sequentially after lane 0, so every
  // lane id is still executed exactly once.
  body(0);
  for (int lane = dispatched + 1; lane < lanes; ++lane) body(lane);

  std::unique_lock<std::mutex> lock(shared.mu);
  shared.done_cv.wait(lock, [&] { return shared.pending == 0; });
  if (queue_wait_us != nullptr) {
    queue_wait_us->insert(queue_wait_us->end(), shared.waits_us.begin(),
                          shared.waits_us.end());
  }
}

}  // namespace verso
