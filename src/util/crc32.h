#ifndef VERSO_UTIL_CRC32_H_
#define VERSO_UTIL_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace verso {

/// CRC-32 (IEEE 802.3 polynomial, reflected). Used to protect WAL records
/// and snapshot blocks against torn writes and bit rot.
uint32_t Crc32(const void* data, size_t length);

/// Incremental variant: feed `crc` from a previous call (start with 0).
uint32_t Crc32Extend(uint32_t crc, const void* data, size_t length);

}  // namespace verso

#endif  // VERSO_UTIL_CRC32_H_
