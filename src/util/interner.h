#ifndef VERSO_UTIL_INTERNER_H_
#define VERSO_UTIL_INTERNER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace verso {

/// Maps strings to dense uint32 ids and back. Ids are stable for the
/// lifetime of the interner and allocated in insertion order starting at 0.
class StringInterner {
 public:
  StringInterner() = default;
  StringInterner(const StringInterner&) = delete;
  StringInterner& operator=(const StringInterner&) = delete;
  StringInterner(StringInterner&&) = default;
  StringInterner& operator=(StringInterner&&) = default;

  /// Returns the id for `text`, interning it on first sight.
  uint32_t Intern(std::string_view text);

  /// Returns the id for `text` or UINT32_MAX if it was never interned.
  uint32_t Find(std::string_view text) const;

  /// The string for a previously returned id.
  std::string_view Get(uint32_t id) const { return strings_[id]; }

  size_t size() const { return strings_.size(); }

  static constexpr uint32_t kNotFound = UINT32_MAX;

 private:
  std::vector<std::string> strings_;
  std::unordered_map<std::string, uint32_t> index_;
};

}  // namespace verso

#endif  // VERSO_UTIL_INTERNER_H_
