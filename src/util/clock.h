#ifndef VERSO_UTIL_CLOCK_H_
#define VERSO_UTIL_CLOCK_H_

#include <cstdint>
#include <vector>

namespace verso {

/// Virtual monotonic time seam. Everything in the library that reads a
/// wall clock or sleeps — metrics histogram timers (src/obs) and the WAL
/// transient-retry backoff (storage/database.cc) — goes through a Clock,
/// so tests substitute a FakeClock and stop depending on real time.
/// SteadyClock is the production backend; Clock::Default() returns a
/// process-wide SteadyClock.
class Clock {
 public:
  virtual ~Clock() = default;

  /// Monotonic nanoseconds since an arbitrary fixed origin.
  virtual uint64_t NowNanos() = 0;

  /// Blocks the calling thread for `micros` microseconds.
  virtual void SleepMicros(uint64_t micros) = 0;

  uint64_t NowMicros() { return NowNanos() / 1000; }

  /// The process-wide real (steady) clock.
  static Clock* Default();
};

/// std::chrono::steady_clock + std::this_thread::sleep_for.
class SteadyClock : public Clock {
 public:
  uint64_t NowNanos() override;
  void SleepMicros(uint64_t micros) override;
};

/// Deterministic clock for tests: time advances only via Advance* and
/// SleepMicros (a fake sleep returns immediately but moves the clock
/// forward by the requested amount, so backoff schedules stay observable
/// without wall-clock delay). Not thread-safe — the usual one-thread
/// embedded contract.
class FakeClock : public Clock {
 public:
  explicit FakeClock(uint64_t start_nanos = 0) : now_nanos_(start_nanos) {}

  uint64_t NowNanos() override { return now_nanos_; }
  void SleepMicros(uint64_t micros) override {
    sleeps_.push_back(micros);
    now_nanos_ += micros * 1000;
  }

  void AdvanceNanos(uint64_t nanos) { now_nanos_ += nanos; }
  void AdvanceMicros(uint64_t micros) { now_nanos_ += micros * 1000; }

  /// Every SleepMicros request, in call order.
  const std::vector<uint64_t>& sleeps() const { return sleeps_; }
  uint64_t slept_micros_total() const {
    uint64_t total = 0;
    for (uint64_t s : sleeps_) total += s;
    return total;
  }

 private:
  uint64_t now_nanos_;
  std::vector<uint64_t> sleeps_;
};

}  // namespace verso

#endif  // VERSO_UTIL_CLOCK_H_
