#ifndef VERSO_UTIL_IO_H_
#define VERSO_UTIL_IO_H_

#include <string>
#include <string_view>

#include "util/result.h"
#include "util/status.h"

namespace verso {

/// Virtual filesystem seam. Every byte the storage layer persists goes
/// through an Env, so tests can substitute a deterministic fault-injecting
/// backend (util/fault_env.h) and prove crash-recovery properties without
/// a real disk. PosixEnv is the production backend; Env::Default() returns
/// a process-wide PosixEnv.
///
/// Durability granularity: operations are atomic units of persistence as
/// far as callers can tell — AppendFile/WriteFile flush before returning,
/// so "unsynced data" exists only *within* an in-flight operation. A
/// simulated crash therefore lands either between operations or mid-
/// operation (short write); both are exercised by the torture harness.
class Env {
 public:
  virtual ~Env() = default;

  /// Reads a whole file into a string.
  virtual Result<std::string> ReadFile(const std::string& path) = 0;

  /// Writes `contents` to `path`, truncating. Not atomic; see
  /// WriteFileAtomic for durability-sensitive call sites.
  virtual Status WriteFile(const std::string& path,
                           std::string_view contents) = 0;

  /// Appends `contents` to `path` and flushes. Creates the file if missing.
  virtual Status AppendFile(const std::string& path,
                            std::string_view contents) = 0;

  /// Atomically replaces `to` with `from` (POSIX rename semantics).
  virtual Status RenameFile(const std::string& from, const std::string& to) = 0;

  /// True if the file exists.
  virtual bool FileExists(const std::string& path) = 0;

  /// Size of the file in bytes.
  virtual Result<size_t> FileSize(const std::string& path) = 0;

  /// Removes the file if it exists; missing files are not an error.
  virtual Status RemoveFile(const std::string& path) = 0;

  /// Shrinks the file to `size` bytes (recovery chops torn log tails so
  /// later appends land after valid data, not after garbage).
  virtual Status TruncateFile(const std::string& path, size_t size) = 0;

  /// Creates the directory (and parents) if missing.
  virtual Status EnsureDirectory(const std::string& path) = 0;

  /// Writes to a temp sibling then renames over `path`, so readers observe
  /// either the old or the new contents, never a torn file. Built on the
  /// primitives above, so fault injection sees both steps separately.
  Status WriteFileAtomic(const std::string& path, std::string_view contents);

  /// The process-wide real-filesystem backend.
  static Env* Default();
};

/// The real filesystem.
class PosixEnv : public Env {
 public:
  Result<std::string> ReadFile(const std::string& path) override;
  Status WriteFile(const std::string& path, std::string_view contents) override;
  Status AppendFile(const std::string& path,
                    std::string_view contents) override;
  Status RenameFile(const std::string& from, const std::string& to) override;
  bool FileExists(const std::string& path) override;
  Result<size_t> FileSize(const std::string& path) override;
  Status RemoveFile(const std::string& path) override;
  Status TruncateFile(const std::string& path, size_t size) override;
  Status EnsureDirectory(const std::string& path) override;
};

// Convenience wrappers over Env::Default() for call sites that do not
// need the seam (tools, tests, one-shot loads).
Result<std::string> ReadFile(const std::string& path);
Status WriteFile(const std::string& path, std::string_view contents);
Status WriteFileAtomic(const std::string& path, std::string_view contents);
Status AppendFile(const std::string& path, std::string_view contents);
bool FileExists(const std::string& path);
Result<size_t> FileSize(const std::string& path);
Status RemoveFile(const std::string& path);
Status TruncateFile(const std::string& path, size_t size);
Status EnsureDirectory(const std::string& path);

}  // namespace verso

#endif  // VERSO_UTIL_IO_H_
