#ifndef VERSO_UTIL_IO_H_
#define VERSO_UTIL_IO_H_

#include <string>
#include <string_view>

#include "util/result.h"
#include "util/status.h"

namespace verso {

/// Reads a whole file into a string.
Result<std::string> ReadFile(const std::string& path);

/// Writes `contents` to `path`, truncating. Not atomic; see
/// WriteFileAtomic for durability-sensitive call sites.
Status WriteFile(const std::string& path, std::string_view contents);

/// Writes to a temp sibling then renames over `path`, so readers observe
/// either the old or the new contents, never a torn file.
Status WriteFileAtomic(const std::string& path, std::string_view contents);

/// Appends `contents` to `path` and flushes. Creates the file if missing.
Status AppendFile(const std::string& path, std::string_view contents);

/// True if the file exists.
bool FileExists(const std::string& path);

/// Size of the file in bytes.
Result<size_t> FileSize(const std::string& path);

/// Removes the file if it exists; missing files are not an error.
Status RemoveFile(const std::string& path);

/// Shrinks the file to `size` bytes (recovery chops torn log tails so
/// later appends land after valid data, not after garbage).
Status TruncateFile(const std::string& path, size_t size);

/// Creates the directory (and parents) if missing.
Status EnsureDirectory(const std::string& path);

}  // namespace verso

#endif  // VERSO_UTIL_IO_H_
