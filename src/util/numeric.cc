#include "util/numeric.h"

#include <cctype>
#include <cstdlib>
#include <numeric>

namespace verso {

namespace {

using int128 = __int128;

constexpr int64_t kInt64Max = INT64_MAX;
constexpr int64_t kInt64Min = INT64_MIN;

bool FitsInt64(int128 v) { return v >= kInt64Min && v <= kInt64Max; }

int128 Gcd128(int128 a, int128 b) {
  if (a < 0) a = -a;
  if (b < 0) b = -b;
  while (b != 0) {
    int128 t = a % b;
    a = b;
    b = t;
  }
  return a;
}

/// Normalizes num/den (den != 0) into a Numeric, failing on overflow.
Result<Numeric> Normalize(int128 num, int128 den) {
  if (den == 0) {
    return Status::InvalidArgument("numeric: division by zero");
  }
  if (den < 0) {
    num = -num;
    den = -den;
  }
  if (num == 0) return Numeric::FromInt(0);
  int128 g = Gcd128(num, den);
  num /= g;
  den /= g;
  if (!FitsInt64(num) || !FitsInt64(den)) {
    return Status::InvalidArgument("numeric: overflow in rational result");
  }
  // Reuses FromRatio's validation path; inputs are already normalized so
  // this cannot fail.
  return Numeric::FromRatio(static_cast<int64_t>(num),
                            static_cast<int64_t>(den));
}

}  // namespace

Result<Numeric> Numeric::FromRatio(int64_t num, int64_t den) {
  if (den == 0) {
    return Status::InvalidArgument("numeric: zero denominator");
  }
  int128 n = num;
  int128 d = den;
  if (d < 0) {
    n = -n;
    d = -d;
  }
  int128 g = Gcd128(n, d);
  if (g > 1) {
    n /= g;
    d /= g;
  }
  if (!FitsInt64(n) || !FitsInt64(d)) {
    return Status::InvalidArgument("numeric: overflow normalizing ratio");
  }
  return Numeric(static_cast<int64_t>(n), static_cast<int64_t>(d));
}

Result<Numeric> Numeric::Parse(std::string_view text) {
  if (text.empty()) return Status::ParseError("numeric: empty literal");
  size_t pos = 0;
  bool negative = false;
  if (text[pos] == '+' || text[pos] == '-') {
    negative = text[pos] == '-';
    ++pos;
  }
  int128 int_part = 0;
  int128 frac_part = 0;
  int128 frac_scale = 1;
  bool saw_digit = false;
  while (pos < text.size() && std::isdigit(static_cast<unsigned char>(text[pos]))) {
    int_part = int_part * 10 + (text[pos] - '0');
    if (int_part > static_cast<int128>(kInt64Max)) {
      return Status::ParseError("numeric: integer part overflows int64");
    }
    saw_digit = true;
    ++pos;
  }
  if (pos < text.size() && text[pos] == '.') {
    ++pos;
    while (pos < text.size() &&
           std::isdigit(static_cast<unsigned char>(text[pos]))) {
      frac_part = frac_part * 10 + (text[pos] - '0');
      frac_scale *= 10;
      if (frac_scale > static_cast<int128>(kInt64Max)) {
        return Status::ParseError("numeric: too many fractional digits");
      }
      saw_digit = true;
      ++pos;
    }
  }
  if (!saw_digit || pos != text.size()) {
    return Status::ParseError("numeric: malformed literal '" +
                              std::string(text) + "'");
  }
  int128 num = int_part * frac_scale + frac_part;
  if (negative) num = -num;
  return Normalize(num, frac_scale);
}

Result<Numeric> Numeric::Add(const Numeric& a, const Numeric& b) {
  int128 num = static_cast<int128>(a.num_) * b.den_ +
               static_cast<int128>(b.num_) * a.den_;
  int128 den = static_cast<int128>(a.den_) * b.den_;
  return Normalize(num, den);
}

Result<Numeric> Numeric::Sub(const Numeric& a, const Numeric& b) {
  int128 num = static_cast<int128>(a.num_) * b.den_ -
               static_cast<int128>(b.num_) * a.den_;
  int128 den = static_cast<int128>(a.den_) * b.den_;
  return Normalize(num, den);
}

Result<Numeric> Numeric::Mul(const Numeric& a, const Numeric& b) {
  int128 num = static_cast<int128>(a.num_) * b.num_;
  int128 den = static_cast<int128>(a.den_) * b.den_;
  return Normalize(num, den);
}

Result<Numeric> Numeric::Div(const Numeric& a, const Numeric& b) {
  if (b.is_zero()) {
    return Status::InvalidArgument("numeric: division by zero");
  }
  int128 num = static_cast<int128>(a.num_) * b.den_;
  int128 den = static_cast<int128>(a.den_) * b.num_;
  return Normalize(num, den);
}

Result<Numeric> Numeric::Neg(const Numeric& a) {
  return Normalize(-static_cast<int128>(a.num_), a.den_);
}

int Numeric::Compare(const Numeric& a, const Numeric& b) {
  int128 lhs = static_cast<int128>(a.num_) * b.den_;
  int128 rhs = static_cast<int128>(b.num_) * a.den_;
  if (lhs < rhs) return -1;
  if (lhs > rhs) return 1;
  return 0;
}

std::string Numeric::ToString() const {
  if (den_ == 1) return std::to_string(num_);
  // Try to express den_ as a divisor of a power of ten so the value prints
  // as a finite decimal (the common case for the paper's salary math).
  int64_t den = den_;
  int twos = 0;
  int fives = 0;
  while (den % 2 == 0) {
    den /= 2;
    ++twos;
  }
  while (den % 5 == 0) {
    den /= 5;
    ++fives;
  }
  if (den == 1) {
    int digits = twos > fives ? twos : fives;
    if (digits <= 18) {
      int128 scale = 1;
      for (int i = 0; i < digits; ++i) scale *= 10;
      int128 scaled = static_cast<int128>(num_) * (scale / den_);
      bool negative = scaled < 0;
      if (negative) scaled = -scaled;
      int128 whole = scaled / scale;
      int128 frac = scaled % scale;
      std::string frac_str(static_cast<size_t>(digits), '0');
      for (int i = digits - 1; i >= 0; --i) {
        frac_str[static_cast<size_t>(i)] = static_cast<char>('0' + static_cast<int>(frac % 10));
        frac /= 10;
      }
      // Trim trailing zeros but keep at least one fractional digit.
      size_t last = frac_str.find_last_not_of('0');
      frac_str.resize(last == std::string::npos ? 1 : last + 1);
      std::string out;
      if (negative) out += '-';
      out += std::to_string(static_cast<int64_t>(whole));
      out += '.';
      out += frac_str;
      return out;
    }
  }
  return std::to_string(num_) + "/" + std::to_string(den_);
}

size_t Numeric::Hash() const {
  size_t h = std::hash<int64_t>()(num_);
  size_t h2 = std::hash<int64_t>()(den_);
  return h ^ (h2 + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2));
}

}  // namespace verso
