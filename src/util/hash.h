#ifndef VERSO_UTIL_HASH_H_
#define VERSO_UTIL_HASH_H_

#include <cstddef>
#include <cstdint>
#include <functional>

namespace verso {

/// Boost-style hash mixing: folds `v`'s hash into `seed`.
inline void HashCombine(size_t& seed, size_t v) {
  seed ^= v + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2);
}

template <typename T>
void HashCombineValue(size_t& seed, const T& value) {
  HashCombine(seed, std::hash<T>()(value));
}

}  // namespace verso

#endif  // VERSO_UTIL_HASH_H_
