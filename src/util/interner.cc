#include "util/interner.h"

namespace verso {

uint32_t StringInterner::Intern(std::string_view text) {
  auto it = index_.find(std::string(text));
  if (it != index_.end()) return it->second;
  uint32_t id = static_cast<uint32_t>(strings_.size());
  strings_.emplace_back(text);
  index_.emplace(strings_.back(), id);
  return id;
}

uint32_t StringInterner::Find(std::string_view text) const {
  auto it = index_.find(std::string(text));
  return it == index_.end() ? kNotFound : it->second;
}

}  // namespace verso
