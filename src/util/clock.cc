#include "util/clock.h"

#include <chrono>
#include <thread>

namespace verso {

uint64_t SteadyClock::NowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void SteadyClock::SleepMicros(uint64_t micros) {
  if (micros == 0) return;
  std::this_thread::sleep_for(std::chrono::microseconds(micros));
}

Clock* Clock::Default() {
  static SteadyClock clock;
  return &clock;
}

}  // namespace verso
