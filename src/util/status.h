#ifndef VERSO_UTIL_STATUS_H_
#define VERSO_UTIL_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace verso {

/// Error categories used across the library. Mirrors the RocksDB/Arrow
/// convention: no exceptions cross API boundaries; fallible operations
/// return Status (or Result<T>, see result.h).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   // malformed input handed to an API
  kParseError,        // syntax error in a program / object-base text
  kUnsafeRule,        // rule violates the safety requirement (Section 2.1)
  kNotStratifiable,   // no stratification satisfies conditions (a)-(d)
  kNotVersionLinear,  // run-time linearity check failed (Section 5)
  kDivergence,        // fixpoint iteration exceeded its bound
  kIoError,           // filesystem / serialization failure (permanent)
  kIoTransient,       // I/O failure worth retrying (e.g. injected flaky
                      // writes); the storage layer retries these with
                      // backoff before degrading to read-only
  kReadOnly,          // the database entered degraded (read-only) mode
                      // after a durability failure; reads still serve,
                      // writes are refused until reopen
  kCorruption,        // checksum or format mismatch in stored data
  kNotFound,          // lookup miss reported as an error
  kObserverFailed,    // a commit was durable and installed, but a commit
                      // observer (e.g. view maintenance) failed — do NOT
                      // retry the transaction
  kInternal,          // invariant breach inside the library (a bug)
};

/// Human-readable name of a status code (e.g. "NotStratifiable").
std::string_view StatusCodeName(StatusCode code);

/// Cheap value type carrying success or an (code, message) error.
/// The OK status carries no allocation.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status UnsafeRule(std::string msg) {
    return Status(StatusCode::kUnsafeRule, std::move(msg));
  }
  static Status NotStratifiable(std::string msg) {
    return Status(StatusCode::kNotStratifiable, std::move(msg));
  }
  static Status NotVersionLinear(std::string msg) {
    return Status(StatusCode::kNotVersionLinear, std::move(msg));
  }
  static Status Divergence(std::string msg) {
    return Status(StatusCode::kDivergence, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status IoTransient(std::string msg) {
    return Status(StatusCode::kIoTransient, std::move(msg));
  }
  static Status ReadOnly(std::string msg) {
    return Status(StatusCode::kReadOnly, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status ObserverFailed(std::string msg) {
    return Status(StatusCode::kObserverFailed, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Propagate a non-OK Status to the caller.
#define VERSO_RETURN_IF_ERROR(expr)                  \
  do {                                               \
    ::verso::Status _verso_status = (expr);          \
    if (!_verso_status.ok()) return _verso_status;   \
  } while (false)

}  // namespace verso

#endif  // VERSO_UTIL_STATUS_H_
