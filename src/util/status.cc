#include "util/status.h"

namespace verso {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kUnsafeRule:
      return "UnsafeRule";
    case StatusCode::kNotStratifiable:
      return "NotStratifiable";
    case StatusCode::kNotVersionLinear:
      return "NotVersionLinear";
    case StatusCode::kDivergence:
      return "Divergence";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kIoTransient:
      return "IoTransient";
    case StatusCode::kReadOnly:
      return "ReadOnly";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kObserverFailed:
      return "ObserverFailed";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeName(code_));
  out += ": ";
  out += message_;
  return out;
}

}  // namespace verso
