#include "core/engine.h"

namespace verso {

void Engine::AddFact(ObjectBase& base, std::string_view object,
                     std::string_view method, std::initializer_list<Oid> args,
                     Oid result) {
  Vid vid = versions_.OfOid(symbols_.Symbol(object));
  GroundApp app;
  app.args.assign(args.begin(), args.end());
  app.result = result;
  base.Insert(vid, symbols_.Method(method), std::move(app));
}

void Engine::AddFact(ObjectBase& base, std::string_view object,
                     std::string_view method, Oid result) {
  AddFact(base, object, method, {}, result);
}

void Engine::AddFact(ObjectBase& base, std::string_view object,
                     std::string_view method, std::string_view result) {
  AddFact(base, object, method, {}, symbols_.Symbol(result));
}

void Engine::AddFact(ObjectBase& base, std::string_view object,
                     std::string_view method, int64_t result) {
  AddFact(base, object, method, {}, symbols_.Int(result));
}

Result<RunOutcome> Engine::Run(Program& program, const ObjectBase& input,
                               const EvalOptions& options, TraceSink* trace) {
  VERSO_RETURN_IF_ERROR(program.Analyze(symbols_));
  VERSO_ASSIGN_OR_RETURN(Stratification stratification, Stratify(program));

  ObjectBase working = input;
  working.SealExistence();

  Evaluator evaluator(symbols_, versions_, options, trace);
  VERSO_ASSIGN_OR_RETURN(EvalStats stats,
                         evaluator.Run(program, stratification, working));

  VERSO_ASSIGN_OR_RETURN(ObjectBase fresh,
                         BuildNewObjectBase(working, symbols_, versions_));

  RunOutcome outcome{std::move(working), std::move(fresh),
                     std::move(stratification), std::move(stats),
                     DeltaLog()};
  return outcome;
}

}  // namespace verso
