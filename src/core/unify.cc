#include "core/unify.h"

namespace verso {

bool UnifyVidTerms(const VidTerm& a, const VidTerm& b) {
  if (a.ops != b.ops) return false;
  if (a.base.is_var || b.base.is_var) return true;
  return a.base.oid == b.base.oid;
}

std::vector<VidTerm> VidSubterms(const VidTerm& t) {
  std::vector<VidTerm> out;
  out.reserve(t.ops.size() + 1);
  VidTerm cur = t;
  out.push_back(cur);
  while (!cur.ops.empty()) {
    cur = cur.Inner();
    out.push_back(cur);
  }
  return out;
}

}  // namespace verso
