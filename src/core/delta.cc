#include "core/delta.h"

#include "core/rule.h"
#include "core/version_table.h"

namespace verso {

bool SeedBindingsFromDelta(const Rule& rule, uint32_t literal_index,
                           const DeltaFact& fact, VersionTable& versions,
                           Bindings& bindings) {
  const Literal& lit = rule.body[literal_index];
  if (lit.negated) return false;
  const VidTerm* vterm = nullptr;
  const AppPattern* app = nullptr;
  switch (lit.kind) {
    case Literal::Kind::kVersion:
      vterm = &lit.version.version;
      app = &lit.version.app;
      break;
    case Literal::Kind::kUpdate:
      // Body truth of ins[V].m->r is exactly membership in ins(V); del and
      // mod body literals involve v* and are not plain membership tests.
      if (lit.update.kind != UpdateKind::kInsert) return false;
      vterm = &lit.update.version;
      app = &lit.update.app;
      break;
    case Literal::Kind::kBuiltin:
      return false;
  }
  if (app->method != fact.method) return false;

  bindings.assign(rule.var_count(), Oid());
  // The fact's VID must have exactly the literal's shape (variables range
  // over OIDs, never over versioned terms). For an ins-update literal the
  // fact lives in the target version ins(V), one functor deeper.
  std::vector<UpdateKind> ops;
  if (lit.kind == Literal::Kind::kUpdate) {
    ops.reserve(vterm->ops.size() + 1);
    ops.push_back(UpdateKind::kInsert);
    ops.insert(ops.end(), vterm->ops.begin(), vterm->ops.end());
  } else {
    ops = vterm->ops;
  }
  if (versions.shape(fact.vid) != versions.InternShape(ops)) return false;
  if (vterm->base.is_var) {
    bindings[vterm->base.var.value] = versions.root(fact.vid);
  } else if (vterm->base.oid != versions.root(fact.vid)) {
    return false;
  }

  if (app->args.size() != fact.app.args.size()) return false;
  auto bind = [&](const ObjTerm& term, Oid value) {
    if (!term.is_var) return term.oid == value;
    Oid& slot = bindings[term.var.value];
    if (slot.valid()) return slot == value;
    slot = value;
    return true;
  };
  for (size_t i = 0; i < app->args.size(); ++i) {
    if (!bind(app->args[i], fact.app.args[i])) return false;
  }
  return bind(app->result, fact.app.result);
}

}  // namespace verso
