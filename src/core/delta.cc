#include "core/delta.h"

#include "core/rule.h"
#include "core/version_table.h"

namespace verso {

namespace {

/// Selects the membership pattern of a body literal: version-terms and
/// ins-update-terms test membership; del/mod update-terms involve v* and
/// built-ins have no pattern at all. `wrap_insert` is set when the fact
/// lives one functor deeper than the literal's version-term (ins[V]).
bool LiteralPattern(const Literal& lit, const VidTerm** vterm,
                    const AppPattern** app, bool* wrap_insert) {
  *wrap_insert = false;
  switch (lit.kind) {
    case Literal::Kind::kVersion:
      *vterm = &lit.version.version;
      *app = &lit.version.app;
      return true;
    case Literal::Kind::kUpdate:
      // Body truth of ins[V].m->r is exactly membership in ins(V); del and
      // mod body literals involve v* and are not plain membership tests.
      if (lit.update.kind != UpdateKind::kInsert) return false;
      *vterm = &lit.update.version;
      *app = &lit.update.app;
      *wrap_insert = true;
      return true;
    case Literal::Kind::kBuiltin:
      return false;
  }
  return false;
}

/// The interned shape a fact must have to unify with the pattern.
VidShape PatternShape(const VidTerm& vterm, bool wrap_insert,
                      VersionTable& versions) {
  if (!wrap_insert) return versions.InternShape(vterm.ops);
  std::vector<UpdateKind> ops;
  ops.reserve(vterm.ops.size() + 1);
  ops.push_back(UpdateKind::kInsert);
  ops.insert(ops.end(), vterm.ops.begin(), vterm.ops.end());
  return versions.InternShape(ops);
}

/// Unifies `fact` against (vterm, app), filling `bindings` (reset first).
bool UnifyPattern(const Rule& rule, const VidTerm& vterm,
                  const AppPattern& app, bool wrap_insert,
                  const DeltaFact& fact, VersionTable& versions,
                  Bindings& bindings) {
  if (app.method != fact.method) return false;

  bindings.assign(rule.var_count(), Oid());
  // The fact's VID must have exactly the pattern's shape (variables range
  // over OIDs, never over versioned terms).
  if (versions.shape(fact.vid) != PatternShape(vterm, wrap_insert, versions)) {
    return false;
  }
  if (vterm.base.is_var) {
    bindings[vterm.base.var.value] = versions.root(fact.vid);
  } else if (vterm.base.oid != versions.root(fact.vid)) {
    return false;
  }

  if (app.args.size() != fact.app.args.size()) return false;
  auto bind = [&](const ObjTerm& term, Oid value) {
    if (!term.is_var) return term.oid == value;
    Oid& slot = bindings[term.var.value];
    if (slot.valid()) return slot == value;
    slot = value;
    return true;
  };
  for (size_t i = 0; i < app.args.size(); ++i) {
    if (!bind(app.args[i], fact.app.args[i])) return false;
  }
  return bind(app.result, fact.app.result);
}

}  // namespace

bool SeedBindingsFromDelta(const Rule& rule, uint32_t literal_index,
                           const DeltaFact& fact, VersionTable& versions,
                           Bindings& bindings) {
  if (rule.body[literal_index].negated) return false;
  return UnifyLiteralPattern(rule, literal_index, fact, versions, bindings);
}

bool UnifyLiteralPattern(const Rule& rule, uint32_t literal_index,
                         const DeltaFact& fact, VersionTable& versions,
                         Bindings& bindings) {
  const Literal& lit = rule.body[literal_index];
  const VidTerm* vterm = nullptr;
  const AppPattern* app = nullptr;
  bool wrap_insert = false;
  if (!LiteralPattern(lit, &vterm, &app, &wrap_insert)) return false;
  return UnifyPattern(rule, *vterm, *app, wrap_insert, fact, versions,
                      bindings);
}

bool SeedKeyForLiteral(const Rule& rule, uint32_t literal_index,
                       VersionTable& versions, MethodId* method,
                       VidShape* shape) {
  const Literal& lit = rule.body[literal_index];
  const VidTerm* vterm = nullptr;
  const AppPattern* app = nullptr;
  bool wrap_insert = false;
  if (!LiteralPattern(lit, &vterm, &app, &wrap_insert)) return false;
  *method = app->method;
  *shape = PatternShape(*vterm, wrap_insert, versions);
  return true;
}

bool SeedBindingsFromHead(const Rule& rule, const DeltaFact& fact,
                          VersionTable& versions, Bindings& bindings) {
  // Derived-rule heads are carried as ins-updates whose version-term names
  // the fact's version directly (the query layer inserts at the resolved
  // head version, no ins(...) wrapper).
  return UnifyPattern(rule, rule.head.version, rule.head.app,
                      /*wrap_insert=*/false, fact, versions, bindings);
}

void DeltaIndex::Build(const DeltaLog& delta, const VersionTable& versions) {
  added_.clear();
  for (const DeltaFact& fact : delta) {
    if (!fact.added) continue;
    added_[Key(fact.method, versions.shape(fact.vid))].push_back(&fact);
  }
}

}  // namespace verso
