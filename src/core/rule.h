#ifndef VERSO_CORE_RULE_H_
#define VERSO_CORE_RULE_H_

#include <string>
#include <vector>

#include "core/atom.h"
#include "core/symbol_table.h"
#include "util/status.h"

namespace verso {

/// An update-rule `H <- B1 ^ ... ^ Bk` (k >= 0; k == 0 is an update-fact).
/// Variables are rule-local, quantified over the set O of OIDs.
struct Rule {
  UpdateAtom head;
  std::vector<Literal> body;
  ExprPool exprs;                      // expression nodes for built-ins
  std::vector<std::string> var_names;  // VarId -> surface name
  std::string label;                   // e.g. "rule1"; used in diagnostics
  int source_line = 0;                 // 0 when constructed programmatically

  /// Filled in by AnalyzeRule: the order in which body literals are
  /// matched (safety analysis doubles as a greedy join-order planner).
  std::vector<uint32_t> execution_order;

  uint32_t var_count() const {
    return static_cast<uint32_t>(var_names.size());
  }

  /// A short name for diagnostics: the label if set, else "rule@line".
  std::string DisplayName() const;
};

/// Checks the paper's well-formedness requirements for one rule and plans
/// its body execution order:
///   * safety: every variable is bound by some positive version-/update-
///     term (or by `X = expr` over bound variables) before it is used in a
///     negated literal, comparison, or the head;
///   * the system method `exists` does not occur in the head;
///   * `del[V].*` heads carry kind kDelete; `mod` heads have a new-result.
/// On success rule.execution_order is a complete permutation of the body.
Status AnalyzeRule(Rule& rule, const SymbolTable& symbols);

}  // namespace verso

#endif  // VERSO_CORE_RULE_H_
