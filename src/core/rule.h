#ifndef VERSO_CORE_RULE_H_
#define VERSO_CORE_RULE_H_

#include <string>
#include <vector>

#include "core/atom.h"
#include "core/symbol_table.h"
#include "util/status.h"

namespace verso {

/// An update-rule `H <- B1 ^ ... ^ Bk` (k >= 0; k == 0 is an update-fact).
/// Variables are rule-local, quantified over the set O of OIDs.
struct Rule {
  UpdateAtom head;
  std::vector<Literal> body;
  ExprPool exprs;                      // expression nodes for built-ins
  std::vector<std::string> var_names;  // VarId -> surface name
  std::string label;                   // e.g. "rule1"; used in diagnostics
  int source_line = 0;                 // 0 when constructed programmatically

  /// Filled in by AnalyzeRule: the order in which body literals are
  /// matched (safety analysis doubles as a greedy join-order planner).
  std::vector<uint32_t> execution_order;

  // ---- Semi-naive evaluation plan (also filled in by AnalyzeRule) ----
  //
  // Within one stratum the evaluator re-derives rule matches round by
  // round; the plan below tells it which rules can be driven from the
  // per-round fact delta instead of a full body re-match.

  /// Body literal indices that are plain membership tests (positive
  /// version-terms and positive ins-update-terms): an added delta fact
  /// matching one of them can seed ForEachBodyMatchFrom.
  std::vector<uint32_t> seed_literals;

  /// True iff delta-seeding through `seed_literals` finds every match the
  /// rule can newly produce in a round: the head is a plain insert (head
  /// truth never depends on the evolving base) and every body literal is
  /// either a seed literal or a built-in. Rules where this is false are
  /// re-matched in full ("residual" rules) whenever the round's delta
  /// touches one of `relevant_methods`.
  bool fully_seedable = false;

  /// True for `del[V].*` heads, which expand over every method of v* and
  /// therefore react to any fact change at all.
  bool rerun_on_any_delta = false;

  /// Sorted, deduplicated methods whose fact changes can affect this
  /// rule's matches or head truth. Includes `exists` when the rule reads
  /// v* (del/mod literals or a del/mod head), since materializations move
  /// the latest existing stage.
  std::vector<MethodId> relevant_methods;

  uint32_t var_count() const {
    return static_cast<uint32_t>(var_names.size());
  }

  /// A short name for diagnostics: the label if set, else "rule@line".
  std::string DisplayName() const;
};

/// Checks the paper's well-formedness requirements for one rule and plans
/// its body execution order:
///   * safety: every variable is bound by some positive version-/update-
///     term (or by `X = expr` over bound variables) before it is used in a
///     negated literal, comparison, or the head;
///   * the system method `exists` does not occur in the head;
///   * `del[V].*` heads carry kind kDelete; `mod` heads have a new-result.
/// On success rule.execution_order is a complete permutation of the body.
Status AnalyzeRule(Rule& rule, const SymbolTable& symbols);

}  // namespace verso

#endif  // VERSO_CORE_RULE_H_
