#include "core/commit.h"

#include <unordered_map>
#include <vector>

namespace verso {

Result<ObjectBase> BuildNewObjectBase(const ObjectBase& result,
                                      const SymbolTable& symbols,
                                      VersionTable& versions) {
  // Group the materialized versions of each object and find the deepest.
  std::unordered_map<Oid, std::vector<Vid>> by_object;
  for (const auto& [vid, state] : result.versions()) {
    by_object[versions.root(vid)].push_back(vid);
  }

  ObjectBase fresh(result.exists_method(), result.version_table());
  for (const auto& [root, vids] : by_object) {
    Vid final_version = vids.front();
    for (Vid vid : vids) {
      if (versions.depth(vid) > versions.depth(final_version)) {
        final_version = vid;
      }
    }
    // Linearity: every version must be a stage on the way to the final
    // one. The evaluator normally guarantees this; re-checking here keeps
    // BuildNewObjectBase safe for object bases assembled by hand.
    for (Vid vid : vids) {
      if (!versions.IsSubterm(vid, final_version)) {
        return Status::NotVersionLinear(
            "object '" + symbols.OidToString(root) +
            "' has incomparable versions " +
            versions.ToString(vid, symbols) + " and " +
            versions.ToString(final_version, symbols));
      }
    }
    const VersionState* state = result.StateOf(final_version);
    if (state == nullptr || state->OnlyExists(result.exists_method())) {
      // All information about the object was deleted: it does not appear
      // in the new object base.
      continue;
    }
    Vid plain = versions.OfOid(root);
    for (const auto& [method, apps] : state->methods()) {
      for (const GroundApp& app : apps) {
        fresh.Insert(plain, method, app);
      }
    }
  }
  return fresh;
}

}  // namespace verso
