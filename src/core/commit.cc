#include "core/commit.h"

#include <unordered_map>
#include <vector>

namespace verso {

Result<ObjectBase> BuildNewObjectBase(const ObjectBase& result,
                                      const SymbolTable& symbols,
                                      VersionTable& versions) {
  // Group the materialized versions of each object and find the deepest.
  std::unordered_map<Oid, std::vector<Vid>> by_object;
  for (const auto& [vid, state] : result.versions()) {
    by_object[versions.root(vid)].push_back(vid);
  }

  ObjectBase fresh(result.exists_method(), result.version_table());
  for (const auto& [root, vids] : by_object) {
    Vid final_version = vids.front();
    for (Vid vid : vids) {
      if (versions.depth(vid) > versions.depth(final_version)) {
        final_version = vid;
      }
    }
    // Linearity: every version must be a stage on the way to the final
    // one. The evaluator normally guarantees this; re-checking here keeps
    // BuildNewObjectBase safe for object bases assembled by hand.
    for (Vid vid : vids) {
      if (!versions.IsSubterm(vid, final_version)) {
        return Status::NotVersionLinear(
            "object '" + symbols.OidToString(root) +
            "' has incomparable versions " +
            versions.ToString(vid, symbols) + " and " +
            versions.ToString(final_version, symbols));
      }
    }
    std::shared_ptr<const VersionState> state =
        result.SharedStateOf(final_version);
    if (state == nullptr || state->OnlyExists(result.exists_method())) {
      // All information about the object was deleted: it does not appear
      // in the new object base.
      continue;
    }
    // The facts of a state never mention its VID (the VID is the map
    // key), so the final version's state can be rebound onto the plain
    // OID by sharing the refcounted handle — no fact is copied; ob' and
    // result(P) share storage until one of them is written.
    Vid plain = versions.OfOid(root);
    fresh.AdoptVersion(plain, std::move(state));
  }
  return fresh;
}

}  // namespace verso
