#ifndef VERSO_CORE_COMMIT_H_
#define VERSO_CORE_COMMIT_H_

#include "core/object_base.h"
#include "util/result.h"

namespace verso {

/// Builds the updated object base ob' from result(P) (paper Section 5):
/// verifies version-linearity per object, selects each object's final
/// version (the VID containing all others as subterms), and copies its
/// method-applications back onto the plain OID. Objects whose final
/// version carries nothing but `exists` vanish from ob'.
///
/// `symbols` is only used for diagnostics; `versions` is consulted (and
/// not extended) for roots/depths.
Result<ObjectBase> BuildNewObjectBase(const ObjectBase& result,
                                      const SymbolTable& symbols,
                                      VersionTable& versions);

}  // namespace verso

#endif  // VERSO_CORE_COMMIT_H_
