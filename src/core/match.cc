#include "core/match.h"

#include <vector>

namespace verso {

Vid ResolveVid(const VidTerm& term, const Bindings& bindings,
               VersionTable& versions) {
  Oid base;
  if (term.base.is_var) {
    base = bindings[term.base.var.value];
    if (!base.valid()) return Vid();
  } else {
    base = term.base.oid;
  }
  Vid vid = versions.OfOid(base);
  // ops is outermost-first; build the chain from the innermost functor.
  for (auto it = term.ops.rbegin(); it != term.ops.rend(); ++it) {
    vid = versions.Child(vid, *it);
  }
  return vid;
}

GroundApp ResolveApp(const AppPattern& app, const Bindings& bindings) {
  GroundApp ground;
  ground.args.reserve(app.args.size());
  for (const ObjTerm& arg : app.args) {
    ground.args.push_back(arg.is_var ? bindings[arg.var.value] : arg.oid);
  }
  ground.result = app.result.is_var ? bindings[app.result.var.value]
                                    : app.result.oid;
  return ground;
}

Result<bool> GroundLiteralTruth(const Rule& rule, const Literal& literal,
                                const Bindings& bindings, MatchContext& ctx) {
  bool raw = false;
  switch (literal.kind) {
    case Literal::Kind::kVersion: {
      Vid vid = ResolveVid(literal.version.version, bindings, ctx.versions);
      if (!vid.valid()) {
        return Status::Internal("unbound version in ground literal");
      }
      GroundApp app = ResolveApp(literal.version.app, bindings);
      raw = ctx.base.ContainsApp(vid, literal.version.app.method, app);
      break;
    }
    case Literal::Kind::kUpdate: {
      const UpdateAtom& u = literal.update;
      Vid v = ResolveVid(u.version, bindings, ctx.versions);
      if (!v.valid()) {
        return Status::Internal("unbound version in ground update literal");
      }
      Vid target = ctx.versions.Child(v, u.kind);
      GroundApp app = ResolveApp(u.app, bindings);
      switch (u.kind) {
        case UpdateKind::kInsert:
          raw = ctx.base.ContainsApp(target, u.app.method, app);
          break;
        case UpdateKind::kDelete: {
          Vid vstar = ctx.base.LatestExistingStage(v);
          raw = vstar.valid() &&
                ctx.base.ContainsApp(vstar, u.app.method, app) &&
                ctx.base.VersionExists(target) &&
                !ctx.base.ContainsApp(target, u.app.method, app);
          break;
        }
        case UpdateKind::kModify: {
          Oid new_result = u.new_result.is_var
                               ? bindings[u.new_result.var.value]
                               : u.new_result.oid;
          Vid vstar = ctx.base.LatestExistingStage(v);
          if (!vstar.valid() ||
              !ctx.base.ContainsApp(vstar, u.app.method, app)) {
            raw = false;
            break;
          }
          GroundApp new_app = app;
          new_app.result = new_result;
          if (new_result == app.result) {
            raw = ctx.base.ContainsApp(target, u.app.method, new_app);
          } else {
            raw = !ctx.base.ContainsApp(target, u.app.method, app) &&
                  ctx.base.ContainsApp(target, u.app.method, new_app);
          }
          break;
        }
      }
      break;
    }
    case Literal::Kind::kBuiltin: {
      VERSO_ASSIGN_OR_RETURN(
          Oid lhs,
          EvalExpr(rule.exprs, literal.builtin.lhs, bindings, ctx.symbols));
      VERSO_ASSIGN_OR_RETURN(
          Oid rhs,
          EvalExpr(rule.exprs, literal.builtin.rhs, bindings, ctx.symbols));
      raw = EvalCmp(literal.builtin.op, lhs, rhs, ctx.symbols);
      break;
    }
  }
  return literal.negated ? !raw : raw;
}

}  // namespace verso
