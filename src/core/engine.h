#ifndef VERSO_CORE_ENGINE_H_
#define VERSO_CORE_ENGINE_H_

#include <optional>

#include "core/commit.h"
#include "core/evaluator.h"
#include "core/object_base.h"
#include "core/program.h"
#include "core/stratify.h"
#include "core/symbol_table.h"
#include "core/trace.h"
#include "core/version_table.h"
#include "util/result.h"

namespace verso {

/// Everything a run of an update-program produces.
struct RunOutcome {
  /// result(P): the fixpoint with all intermediate versions, queryable
  /// for hypothetical reasoning (Section 2.3, Example 2).
  ObjectBase result;
  /// ob': the new object base built from the final versions (Section 5).
  ObjectBase new_base;
  Stratification stratification;
  EvalStats stats;
  /// The fact-level delta the transaction committed, removals first then
  /// additions (ApplyDelta order). Filled by Database::Execute /
  /// Database::ExecuteBatch after the commit is durable; empty for a bare
  /// Engine::Run (nothing was committed) and for a no-op transaction.
  DeltaLog committed_delta;
  /// The database's commit epoch after this transaction committed (its
  /// own epoch tag within a batch; a no-op transaction keeps the
  /// previous epoch). 0 for a bare Engine::Run.
  uint64_t committed_epoch = 0;
};

/// Facade tying the pipeline together:
///   validate + analyze -> stratify -> seal exists -> evaluate -> commit.
/// An Engine owns the OID/VID universe; every object base it manipulates
/// must have been created through MakeBase() (or the parser bound to the
/// same engine).
class Engine {
 public:
  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  SymbolTable& symbols() { return symbols_; }
  const SymbolTable& symbols() const { return symbols_; }
  VersionTable& versions() { return versions_; }
  const VersionTable& versions() const { return versions_; }

  /// An empty object base bound to this engine's universe.
  ObjectBase MakeBase() const {
    return ObjectBase(symbols_.exists_method(), &versions_);
  }

  /// Convenience for assembling object bases in code and tests:
  /// adds `object.method@args -> result` (all symbols interned).
  void AddFact(ObjectBase& base, std::string_view object,
               std::string_view method, std::initializer_list<Oid> args,
               Oid result);
  void AddFact(ObjectBase& base, std::string_view object,
               std::string_view method, Oid result);
  /// Result given as a symbol name.
  void AddFact(ObjectBase& base, std::string_view object,
               std::string_view method, std::string_view result);
  /// Result given as an integer value.
  void AddFact(ObjectBase& base, std::string_view object,
               std::string_view method, int64_t result);

  /// Runs `program` against `input` (untouched; the engine works on a
  /// copy sealed with exists-facts). Analyze() is applied to the program
  /// if it has not been already (execution orders are recomputed).
  ///
  /// NOTE: this is an internal entry point — nothing is committed or made
  /// durable. Client code should execute programs through the
  /// `verso::Connection` / `verso::Session` facade (src/api/api.h).
  Result<RunOutcome> Run(Program& program, const ObjectBase& input,
                         const EvalOptions& options = EvalOptions(),
                         TraceSink* trace = nullptr);

 private:
  SymbolTable symbols_;
  mutable VersionTable versions_;
};

}  // namespace verso

#endif  // VERSO_CORE_ENGINE_H_
