#ifndef VERSO_CORE_EVALUATOR_H_
#define VERSO_CORE_EVALUATOR_H_

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "core/object_base.h"
#include "core/program.h"
#include "core/stratify.h"
#include "core/tp_operator.h"
#include "core/trace.h"
#include "util/result.h"

namespace verso {

struct EvalOptions {
  /// Hard bound on T_P applications per stratum; safe rules always
  /// converge, so hitting this indicates a bug or an adversarial program.
  uint32_t max_rounds_per_stratum = 1u << 20;

  /// Run the incremental version-linearity check of Section 5 while
  /// evaluating (the paper recommends a run-time check; turning it off is
  /// exercised by the linearity ablation benchmark).
  bool check_version_linearity = true;

  /// Drive rounds >= 1 of each stratum's fixpoint from the previous
  /// round's fact delta (semi-naive evaluation) instead of re-matching
  /// every rule body in full. Both modes compute identical results and
  /// identical cumulative T¹ sets; naive mode is kept for differential
  /// testing and the ablation benchmarks.
  bool semi_naive = true;

  /// Evaluation lanes for admitted strata: the calling thread plus
  /// num_threads - 1 workers of the shared pool. 0 or 1 evaluates
  /// serially. Parallel derivation is bit-identical to serial by
  /// construction (results, statistics, delta stream, and trace events),
  /// so this is purely a performance knob.
  int num_threads = 0;

  /// Admission policy for parallel derivation, consulted once per
  /// stratum. Unset admits nothing: only strata a static analysis has
  /// certified should fan out (analysis::MakeParallelAdmission supplies
  /// the standard policy — strata free of update conflicts). Strata the
  /// policy rejects evaluate serially regardless of num_threads.
  std::function<bool(const Program&, const std::vector<uint32_t>&)>
      admit_parallel;
};

struct StratumStats {
  uint32_t rounds = 0;
  /// Distinct ground updates derived over the stratum's fixpoint (the
  /// cumulative |T¹|; identical between naive and semi-naive modes).
  size_t t1_updates = 0;
  size_t states_replaced = 0;
  size_t copied_facts = 0;

  // Delta-evaluation counters (semi-naive mode; in naive mode
  // body_matches and delta_facts still fill in, the seed/residual
  // counters stay 0).
  size_t body_matches = 0;    // satisfying body bindings enumerated
  size_t delta_facts = 0;     // fact-level changes installed
  size_t seed_probes = 0;     // delta-seeded partial matches launched
  size_t seed_pairs_skipped = 0;  // pairs pruned by the frontier index
  size_t residual_rule_runs = 0;  // full re-matches in delta rounds

  // Result-index counters (bound-result literals matched through
  // ForEachAppWithResult instead of a full per-method scan).
  size_t index_probes = 0;    // bound-result lookups launched
  size_t index_hits = 0;      // probes that enumerated >= 1 fact
  size_t indexed_scan_avoided_facts = 0;  // facts a scan would have
                                          // visited but the index skipped
};

struct EvalStats {
  std::vector<StratumStats> strata;
  size_t versions_materialized = 0;

  uint32_t total_rounds() const {
    uint32_t n = 0;
    for (const StratumStats& s : strata) n += s.rounds;
    return n;
  }
  size_t total_t1_updates() const {
    size_t n = 0;
    for (const StratumStats& s : strata) n += s.t1_updates;
    return n;
  }
  size_t total_body_matches() const {
    size_t n = 0;
    for (const StratumStats& s : strata) n += s.body_matches;
    return n;
  }
  size_t total_index_probes() const {
    size_t n = 0;
    for (const StratumStats& s : strata) n += s.index_probes;
    return n;
  }
  size_t total_index_hits() const {
    size_t n = 0;
    for (const StratumStats& s : strata) n += s.index_hits;
    return n;
  }
  size_t total_indexed_scan_avoided_facts() const {
    size_t n = 0;
    for (const StratumStats& s : strata) n += s.indexed_scan_avoided_facts;
    return n;
  }
};

/// Bottom-up evaluation of an update-program (Section 4): iterate T_P
/// stratum by stratum until each stratum reaches its fixpoint, evolving
/// `base` into result(P). Round 0 of a stratum matches every rule in
/// full; installing a round's fresh updates produces a fact-level delta,
/// and subsequent rounds (in semi-naive mode) derive only from that
/// delta — seeding fully seedable rules through ForEachBodyMatchFrom and
/// re-matching residual rules only when the delta touches a method they
/// depend on.
class Evaluator {
 public:
  Evaluator(SymbolTable& symbols, VersionTable& versions,
            EvalOptions options = EvalOptions(), TraceSink* trace = nullptr)
      : symbols_(symbols),
        versions_(versions),
        options_(options),
        trace_(trace) {}

  /// Evolves `base` (the object base ob, exists-sealed) into result(P).
  Result<EvalStats> Run(const Program& program,
                        const Stratification& stratification,
                        ObjectBase& base);

 private:
  SymbolTable& symbols_;
  VersionTable& versions_;
  EvalOptions options_;
  TraceSink* trace_;

  /// Incremental linearity check: deepest materialized VID per object.
  Status NoteMaterialized(Vid vid,
                          std::unordered_map<Oid, Vid>& deepest) const;
};

}  // namespace verso

#endif  // VERSO_CORE_EVALUATOR_H_
