#include "core/object_base.h"

#include <algorithm>
#include <cassert>

namespace verso {

VersionState::MethodList::iterator VersionState::LowerBound(MethodId method) {
  return std::lower_bound(
      methods_.begin(), methods_.end(), method,
      [](const MethodEntry& e, MethodId m) { return e.first < m; });
}

VersionState::MethodList::const_iterator VersionState::LowerBound(
    MethodId method) const {
  return std::lower_bound(
      methods_.begin(), methods_.end(), method,
      [](const MethodEntry& e, MethodId m) { return e.first < m; });
}

bool VersionState::Insert(MethodId method, GroundApp app) {
  auto mit = LowerBound(method);
  if (mit == methods_.end() || mit->first != method) {
    mit = methods_.emplace(mit, method, std::vector<GroundApp>());
  }
  std::vector<GroundApp>& apps = mit->second;
  auto it = std::lower_bound(apps.begin(), apps.end(), app);
  if (it != apps.end() && *it == app) return false;
  apps.insert(it, std::move(app));
  ++fact_count_;
  return true;
}

bool VersionState::Erase(MethodId method, const GroundApp& app) {
  auto mit = LowerBound(method);
  if (mit == methods_.end() || mit->first != method) return false;
  std::vector<GroundApp>& apps = mit->second;
  auto it = std::lower_bound(apps.begin(), apps.end(), app);
  if (it == apps.end() || !(*it == app)) return false;
  apps.erase(it);
  --fact_count_;
  if (apps.empty()) methods_.erase(mit);
  return true;
}

bool VersionState::Contains(MethodId method, const GroundApp& app) const {
  const std::vector<GroundApp>* apps = Find(method);
  if (apps == nullptr) return false;
  auto it = std::lower_bound(apps->begin(), apps->end(), app);
  return it != apps->end() && *it == app;
}

const std::vector<GroundApp>* VersionState::Find(MethodId method) const {
  auto mit = LowerBound(method);
  return mit == methods_.end() || mit->first != method ? nullptr
                                                       : &mit->second;
}

bool VersionState::OnlyExists(MethodId exists_method) const {
  if (methods_.empty()) return true;
  return methods_.size() == 1 && methods_.front().first == exists_method;
}

bool ObjectBase::Insert(Vid version, MethodId method, GroundApp app) {
  VersionState& state = states_[version];
  if (!state.Insert(method, std::move(app))) {
    if (state.empty()) states_.erase(version);
    return false;
  }
  ++fact_count_;
  IndexAdd(version, method, 1);
  return true;
}

bool ObjectBase::Erase(Vid version, MethodId method, const GroundApp& app) {
  auto it = states_.find(version);
  if (it == states_.end()) return false;
  if (!it->second.Erase(method, app)) return false;
  --fact_count_;
  IndexRemove(version, method, 1);
  if (it->second.empty()) states_.erase(it);
  return true;
}

bool ObjectBase::Contains(Vid version, MethodId method,
                          const GroundApp& app) const {
  auto it = states_.find(version);
  return it != states_.end() && it->second.Contains(method, app);
}

const VersionState* ObjectBase::StateOf(Vid version) const {
  auto it = states_.find(version);
  return it == states_.end() ? nullptr : &it->second;
}

bool ObjectBase::ReplaceVersion(Vid version, VersionState state,
                                DeltaLog* diff) {
  auto it = states_.find(version);
  if (it == states_.end()) {
    if (state.empty()) return false;
    // New version: index all methods; every fact is an addition.
    for (const auto& [method, apps] : state.methods()) {
      IndexAdd(version, method, static_cast<uint32_t>(apps.size()));
      if (diff != nullptr) {
        for (const GroundApp& app : apps) {
          diff->push_back({version, method, app, /*added=*/true});
        }
      }
    }
    fact_count_ += state.fact_count();
    states_.emplace(version, std::move(state));
    return true;
  }

  // Merge-walk the two sorted method lists, diffing each method's sorted
  // application vector. This finds the fact-level changes in one pass (no
  // deep == pre-check) and keeps the method index adjusted incrementally.
  bool changed = false;
  const VersionState::MethodList& old_methods = it->second.methods();
  const VersionState::MethodList& new_methods = state.methods();
  size_t oi = 0;
  size_t ni = 0;
  auto removed = [&](MethodId method, const GroundApp& app) {
    changed = true;
    if (diff != nullptr) diff->push_back({version, method, app, false});
  };
  auto added = [&](MethodId method, const GroundApp& app) {
    changed = true;
    if (diff != nullptr) diff->push_back({version, method, app, true});
  };
  while (oi < old_methods.size() || ni < new_methods.size()) {
    if (ni == new_methods.size() ||
        (oi < old_methods.size() &&
         old_methods[oi].first < new_methods[ni].first)) {
      const auto& [method, apps] = old_methods[oi++];
      for (const GroundApp& app : apps) removed(method, app);
      IndexRemove(version, method, static_cast<uint32_t>(apps.size()));
      continue;
    }
    if (oi == old_methods.size() ||
        new_methods[ni].first < old_methods[oi].first) {
      const auto& [method, apps] = new_methods[ni++];
      for (const GroundApp& app : apps) added(method, app);
      IndexAdd(version, method, static_cast<uint32_t>(apps.size()));
      continue;
    }
    // Same method on both sides: diff the sorted application vectors.
    const MethodId method = old_methods[oi].first;
    const std::vector<GroundApp>& old_apps = old_methods[oi++].second;
    const std::vector<GroundApp>& new_apps = new_methods[ni++].second;
    size_t oa = 0;
    size_t na = 0;
    uint32_t removed_count = 0;
    uint32_t added_count = 0;
    while (oa < old_apps.size() || na < new_apps.size()) {
      if (na == new_apps.size() ||
          (oa < old_apps.size() && old_apps[oa] < new_apps[na])) {
        removed(method, old_apps[oa++]);
        ++removed_count;
      } else if (oa == old_apps.size() || new_apps[na] < old_apps[oa]) {
        added(method, new_apps[na++]);
        ++added_count;
      } else {
        ++oa;
        ++na;
      }
    }
    if (removed_count != 0) IndexRemove(version, method, removed_count);
    if (added_count != 0) IndexAdd(version, method, added_count);
  }
  if (!changed) return false;

  fact_count_ -= it->second.fact_count();
  if (state.empty()) {
    states_.erase(it);
    return true;
  }
  fact_count_ += state.fact_count();
  it->second = std::move(state);
  return true;
}

bool ObjectBase::VersionExists(Vid version) const {
  GroundApp app;
  app.result = versions_->root(version);
  return Contains(version, exists_method_, app);
}

Vid ObjectBase::LatestExistingStage(Vid v) const {
  Vid cur = v;
  while (true) {
    if (VersionExists(cur)) return cur;
    if (versions_->depth(cur) == 0) return Vid();
    cur = versions_->parent(cur);
  }
}

void ObjectBase::SealExistence() {
  std::vector<Vid> roots;
  roots.reserve(states_.size());
  for (const auto& [vid, state] : states_) {
    if (versions_->depth(vid) == 0) roots.push_back(vid);
  }
  for (Vid vid : roots) {
    GroundApp app;
    app.result = versions_->root(vid);
    Insert(vid, exists_method_, std::move(app));
  }
}

const std::unordered_map<Vid, uint32_t>* ObjectBase::VidsWithMethod(
    MethodId method) const {
  auto it = method_index_.find(method);
  return it == method_index_.end() ? nullptr : &it->second;
}

void ObjectBase::IndexAdd(Vid version, MethodId method, uint32_t count) {
  method_index_[method][version] += count;
}

void ObjectBase::IndexRemove(Vid version, MethodId method, uint32_t count) {
  auto mit = method_index_.find(method);
  assert(mit != method_index_.end());
  auto vit = mit->second.find(version);
  assert(vit != mit->second.end());
  assert(vit->second >= count);
  vit->second -= count;
  if (vit->second == 0) mit->second.erase(vit);
  if (mit->second.empty()) method_index_.erase(mit);
}

}  // namespace verso
