#include "core/object_base.h"

#include <algorithm>
#include <cassert>
#include <mutex>

namespace verso {

bool SharedApps::result_index_enabled_ = true;

void IndexedApps::BuildIndex() const {
  // Nodes are immutable while shared across evaluation lanes, but the
  // lazy build itself is a const-path mutation: serialize concurrent
  // first probes of the same node. One process-wide mutex (not one per
  // node) — builds are rare, nodes are many.
  static std::mutex build_mu;
  std::lock_guard<std::mutex> lock(build_mu);
  if (index_built_.load(std::memory_order_relaxed)) return;
  ResultIndex built;
  built.reserve(apps_.size());
  for (uint32_t i = 0; i < apps_.size(); ++i) {
    built.emplace_back(apps_[i].result, i);
  }
  // Lexicographic: results ascending, offsets ascending per result —
  // lookups are one binary search, enumeration stays in scan order.
  std::sort(built.begin(), built.end());
  by_result_ = std::move(built);
  index_built_.store(true, std::memory_order_release);
}

VersionState::MethodList::iterator VersionState::LowerBound(MethodId method) {
  return std::lower_bound(
      methods_.begin(), methods_.end(), method,
      [](const MethodEntry& e, MethodId m) { return e.first < m; });
}

VersionState::MethodList::const_iterator VersionState::LowerBound(
    MethodId method) const {
  return std::lower_bound(
      methods_.begin(), methods_.end(), method,
      [](const MethodEntry& e, MethodId m) { return e.first < m; });
}

bool VersionState::Insert(MethodId method, GroundApp app) {
  auto mit = LowerBound(method);
  if (mit == methods_.end() || mit->first != method) {
    mit = methods_.emplace(mit, method, SharedApps());
  }
  // Membership check on the const view first: a duplicate insert must not
  // detach shared storage.
  const std::vector<GroundApp>& current = mit->second.get();
  auto it = std::lower_bound(current.begin(), current.end(), app);
  if (it != current.end() && *it == app) return false;
  const size_t pos = static_cast<size_t>(it - current.begin());
  std::vector<GroundApp>& apps = mit->second.Mutable();
  apps.insert(apps.begin() + pos, std::move(app));
  ++fact_count_;
  return true;
}

bool VersionState::Erase(MethodId method, const GroundApp& app) {
  auto mit = LowerBound(method);
  if (mit == methods_.end() || mit->first != method) return false;
  const std::vector<GroundApp>& current = mit->second.get();
  auto it = std::lower_bound(current.begin(), current.end(), app);
  if (it == current.end() || !(*it == app)) return false;
  const size_t pos = static_cast<size_t>(it - current.begin());
  std::vector<GroundApp>& apps = mit->second.Mutable();
  apps.erase(apps.begin() + pos);
  --fact_count_;
  if (apps.empty()) methods_.erase(mit);
  return true;
}

bool VersionState::Contains(MethodId method, const GroundApp& app) const {
  const std::vector<GroundApp>* apps = Find(method);
  if (apps == nullptr) return false;
  auto it = std::lower_bound(apps->begin(), apps->end(), app);
  return it != apps->end() && *it == app;
}

const std::vector<GroundApp>* VersionState::Find(MethodId method) const {
  const SharedApps* apps = FindShared(method);
  return apps == nullptr ? nullptr : &apps->get();
}

const SharedApps* VersionState::FindShared(MethodId method) const {
  auto mit = LowerBound(method);
  return mit == methods_.end() || mit->first != method ? nullptr
                                                       : &mit->second;
}

bool VersionState::OnlyExists(MethodId exists_method) const {
  if (methods_.empty()) return true;
  return methods_.size() == 1 && methods_.front().first == exists_method;
}

ObjectBase::MethodIndex& ObjectBase::MutableIndex() {
  if (method_index_.use_count() > 1) {
    method_index_ = std::make_shared<MethodIndex>(*method_index_);
  }
  return *method_index_;
}

bool ObjectBase::Insert(Vid version, MethodId method, GroundApp app) {
  StatePtr& slot = states_[version];
  if (slot == nullptr) {
    slot = std::make_shared<VersionState>();
  } else if (slot.use_count() > 1) {
    // Shared state: check membership before detaching so a duplicate
    // insert never clones. The unique-owner path skips this pre-check —
    // VersionState::Insert does its own duplicate test in one search.
    if (slot->Contains(method, app)) return false;
    slot = std::make_shared<VersionState>(*slot);
  }
  if (!slot->Insert(method, std::move(app))) return false;
  ++fact_count_;
  IndexAdd(version, method, 1);
  return true;
}

bool ObjectBase::Erase(Vid version, MethodId method, const GroundApp& app) {
  auto it = states_.find(version);
  if (it == states_.end()) return false;
  StatePtr& slot = it->second;
  if (slot.use_count() > 1) {
    if (!slot->Contains(method, app)) return false;  // miss: keep sharing
    slot = std::make_shared<VersionState>(*slot);
  }
  if (!slot->Erase(method, app)) return false;
  --fact_count_;
  IndexRemove(version, method, 1);
  if (slot->empty()) states_.erase(it);
  return true;
}

bool ObjectBase::Contains(Vid version, MethodId method,
                          const GroundApp& app) const {
  auto it = states_.find(version);
  return it != states_.end() && it->second->Contains(method, app);
}

const VersionState* ObjectBase::StateOf(Vid version) const {
  auto it = states_.find(version);
  return it == states_.end() ? nullptr : it->second.get();
}

std::shared_ptr<const VersionState> ObjectBase::SharedStateOf(
    Vid version) const {
  auto it = states_.find(version);
  return it == states_.end() ? nullptr : it->second;
}

bool ObjectBase::ReplaceVersion(Vid version, VersionState state,
                                DeltaLog* diff) {
  return InstallVersion(
      version, std::make_shared<VersionState>(std::move(state)), diff);
}

bool ObjectBase::AdoptVersion(Vid version,
                              std::shared_ptr<const VersionState> state,
                              DeltaLog* diff) {
  if (state == nullptr) state = std::make_shared<VersionState>();
  // Dropping const is safe under the COW discipline: every mutator
  // detaches while the handle is shared, and once this base is the sole
  // owner the state is genuinely its to write.
  return InstallVersion(
      version, std::const_pointer_cast<VersionState>(std::move(state)), diff);
}

bool ObjectBase::InstallVersion(Vid version, StatePtr incoming,
                                DeltaLog* diff) {
  auto it = states_.find(version);
  if (it == states_.end()) {
    if (incoming->empty()) return false;
    // New version: index all methods; every fact is an addition.
    for (const auto& [method, apps] : incoming->methods()) {
      IndexAdd(version, method, static_cast<uint32_t>(apps.size()));
      if (diff != nullptr) {
        for (const GroundApp& app : apps) {
          diff->push_back({version, method, app, /*added=*/true});
        }
      }
    }
    fact_count_ += incoming->fact_count();
    states_.emplace(version, std::move(incoming));
    return true;
  }

  if (it->second == incoming) return false;  // same handle: nothing to do

  // Merge-walk the two sorted method lists, diffing each method's sorted
  // application vector. This finds the fact-level changes in one pass (no
  // deep == pre-check) and keeps the method index adjusted incrementally.
  // Methods whose storage both states share are skipped outright — under
  // T_P step-2 sharing, only the methods the updates touched cost work.
  bool changed = false;
  const VersionState::MethodList& old_methods = it->second->methods();
  const VersionState::MethodList& new_methods = incoming->methods();
  size_t oi = 0;
  size_t ni = 0;
  auto removed = [&](MethodId method, const GroundApp& app) {
    changed = true;
    if (diff != nullptr) diff->push_back({version, method, app, false});
  };
  auto added = [&](MethodId method, const GroundApp& app) {
    changed = true;
    if (diff != nullptr) diff->push_back({version, method, app, true});
  };
  while (oi < old_methods.size() || ni < new_methods.size()) {
    if (ni == new_methods.size() ||
        (oi < old_methods.size() &&
         old_methods[oi].first < new_methods[ni].first)) {
      const auto& [method, apps] = old_methods[oi++];
      for (const GroundApp& app : apps) removed(method, app);
      IndexRemove(version, method, static_cast<uint32_t>(apps.size()));
      continue;
    }
    if (oi == old_methods.size() ||
        new_methods[ni].first < old_methods[oi].first) {
      const auto& [method, apps] = new_methods[ni++];
      for (const GroundApp& app : apps) added(method, app);
      IndexAdd(version, method, static_cast<uint32_t>(apps.size()));
      continue;
    }
    // Same method on both sides: shared storage means no change.
    if (SharesStorage(old_methods[oi].second, new_methods[ni].second)) {
      ++oi;
      ++ni;
      continue;
    }
    // Diff the sorted application vectors.
    const MethodId method = old_methods[oi].first;
    const std::vector<GroundApp>& old_apps = old_methods[oi++].second.get();
    const std::vector<GroundApp>& new_apps = new_methods[ni++].second.get();
    size_t oa = 0;
    size_t na = 0;
    uint32_t removed_count = 0;
    uint32_t added_count = 0;
    while (oa < old_apps.size() || na < new_apps.size()) {
      if (na == new_apps.size() ||
          (oa < old_apps.size() && old_apps[oa] < new_apps[na])) {
        removed(method, old_apps[oa++]);
        ++removed_count;
      } else if (oa == old_apps.size() || new_apps[na] < old_apps[oa]) {
        added(method, new_apps[na++]);
        ++added_count;
      } else {
        ++oa;
        ++na;
      }
    }
    if (removed_count != 0) IndexRemove(version, method, removed_count);
    if (added_count != 0) IndexAdd(version, method, added_count);
  }
  if (!changed) return false;

  fact_count_ -= it->second->fact_count();
  if (incoming->empty()) {
    states_.erase(it);
    return true;
  }
  fact_count_ += incoming->fact_count();
  it->second = std::move(incoming);
  return true;
}

bool ObjectBase::VersionExists(Vid version) const {
  GroundApp app;
  app.result = versions_->root(version);
  return Contains(version, exists_method_, app);
}

Vid ObjectBase::LatestExistingStage(Vid v) const {
  Vid cur = v;
  while (true) {
    if (VersionExists(cur)) return cur;
    if (versions_->depth(cur) == 0) return Vid();
    cur = versions_->parent(cur);
  }
}

void ObjectBase::SealExistence() {
  std::vector<Vid> roots;
  roots.reserve(states_.size());
  for (const auto& [vid, state] : states_) {
    if (versions_->depth(vid) == 0) roots.push_back(vid);
  }
  for (Vid vid : roots) {
    GroundApp app;
    app.result = versions_->root(vid);
    Insert(vid, exists_method_, std::move(app));
  }
}

const std::unordered_map<Vid, uint32_t>* ObjectBase::VidsWithMethod(
    MethodId method) const {
  auto it = method_index_->find(method);
  return it == method_index_->end() ? nullptr : &it->second;
}

void ObjectBase::IndexAdd(Vid version, MethodId method, uint32_t count) {
  MutableIndex()[method][version] += count;
}

void ObjectBase::IndexRemove(Vid version, MethodId method, uint32_t count) {
  MethodIndex& index = MutableIndex();
  auto mit = index.find(method);
  assert(mit != index.end());
  auto vit = mit->second.find(version);
  assert(vit != mit->second.end());
  assert(vit->second >= count);
  vit->second -= count;
  if (vit->second == 0) mit->second.erase(vit);
  if (mit->second.empty()) index.erase(mit);
}

}  // namespace verso
