#include "core/object_base.h"

#include <algorithm>
#include <cassert>

namespace verso {

bool VersionState::Insert(MethodId method, GroundApp app) {
  std::vector<GroundApp>& apps = methods_[method];
  auto it = std::lower_bound(apps.begin(), apps.end(), app);
  if (it != apps.end() && *it == app) return false;
  apps.insert(it, std::move(app));
  ++fact_count_;
  return true;
}

bool VersionState::Erase(MethodId method, const GroundApp& app) {
  auto mit = methods_.find(method);
  if (mit == methods_.end()) return false;
  std::vector<GroundApp>& apps = mit->second;
  auto it = std::lower_bound(apps.begin(), apps.end(), app);
  if (it == apps.end() || !(*it == app)) return false;
  apps.erase(it);
  --fact_count_;
  if (apps.empty()) methods_.erase(mit);
  return true;
}

bool VersionState::Contains(MethodId method, const GroundApp& app) const {
  auto mit = methods_.find(method);
  if (mit == methods_.end()) return false;
  const std::vector<GroundApp>& apps = mit->second;
  auto it = std::lower_bound(apps.begin(), apps.end(), app);
  return it != apps.end() && *it == app;
}

const std::vector<GroundApp>* VersionState::Find(MethodId method) const {
  auto mit = methods_.find(method);
  return mit == methods_.end() ? nullptr : &mit->second;
}

bool VersionState::OnlyExists(MethodId exists_method) const {
  if (methods_.empty()) return true;
  return methods_.size() == 1 && methods_.begin()->first == exists_method;
}

bool ObjectBase::Insert(Vid version, MethodId method, GroundApp app) {
  VersionState& state = states_[version];
  if (!state.Insert(method, std::move(app))) {
    if (state.empty()) states_.erase(version);
    return false;
  }
  ++fact_count_;
  IndexAdd(version, method, 1);
  return true;
}

bool ObjectBase::Erase(Vid version, MethodId method, const GroundApp& app) {
  auto it = states_.find(version);
  if (it == states_.end()) return false;
  if (!it->second.Erase(method, app)) return false;
  --fact_count_;
  IndexRemove(version, method, 1);
  if (it->second.empty()) states_.erase(it);
  return true;
}

bool ObjectBase::Contains(Vid version, MethodId method,
                          const GroundApp& app) const {
  auto it = states_.find(version);
  return it != states_.end() && it->second.Contains(method, app);
}

const VersionState* ObjectBase::StateOf(Vid version) const {
  auto it = states_.find(version);
  return it == states_.end() ? nullptr : &it->second;
}

bool ObjectBase::ReplaceVersion(Vid version, VersionState state) {
  auto it = states_.find(version);
  if (it == states_.end()) {
    if (state.empty()) return false;
    // New version: index all methods.
    for (const auto& [method, apps] : state.methods()) {
      IndexAdd(version, method, static_cast<uint32_t>(apps.size()));
    }
    fact_count_ += state.fact_count();
    states_.emplace(version, std::move(state));
    return true;
  }
  if (it->second == state) return false;
  // Drop the old index contributions, install the new state.
  for (const auto& [method, apps] : it->second.methods()) {
    IndexRemove(version, method, static_cast<uint32_t>(apps.size()));
  }
  fact_count_ -= it->second.fact_count();
  if (state.empty()) {
    states_.erase(it);
    return true;
  }
  for (const auto& [method, apps] : state.methods()) {
    IndexAdd(version, method, static_cast<uint32_t>(apps.size()));
  }
  fact_count_ += state.fact_count();
  it->second = std::move(state);
  return true;
}

bool ObjectBase::VersionExists(Vid version) const {
  GroundApp app;
  app.result = versions_->root(version);
  return Contains(version, exists_method_, app);
}

Vid ObjectBase::LatestExistingStage(Vid v) const {
  Vid cur = v;
  while (true) {
    if (VersionExists(cur)) return cur;
    if (versions_->depth(cur) == 0) return Vid();
    cur = versions_->parent(cur);
  }
}

void ObjectBase::SealExistence() {
  std::vector<Vid> roots;
  roots.reserve(states_.size());
  for (const auto& [vid, state] : states_) {
    if (versions_->depth(vid) == 0) roots.push_back(vid);
  }
  for (Vid vid : roots) {
    GroundApp app;
    app.result = versions_->root(vid);
    Insert(vid, exists_method_, std::move(app));
  }
}

const std::unordered_map<Vid, uint32_t>* ObjectBase::VidsWithMethod(
    MethodId method) const {
  auto it = method_index_.find(method);
  return it == method_index_.end() ? nullptr : &it->second;
}

void ObjectBase::IndexAdd(Vid version, MethodId method, uint32_t count) {
  method_index_[method][version] += count;
}

void ObjectBase::IndexRemove(Vid version, MethodId method, uint32_t count) {
  auto mit = method_index_.find(method);
  assert(mit != method_index_.end());
  auto vit = mit->second.find(version);
  assert(vit != mit->second.end());
  assert(vit->second >= count);
  vit->second -= count;
  if (vit->second == 0) mit->second.erase(vit);
  if (mit->second.empty()) method_index_.erase(mit);
}

}  // namespace verso
