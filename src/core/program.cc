#include "core/program.h"

namespace verso {

Status Program::Analyze(const SymbolTable& symbols) {
  for (Rule& rule : rules) {
    VERSO_RETURN_IF_ERROR(AnalyzeRule(rule, symbols));
  }
  return Status::Ok();
}

}  // namespace verso
