#ifndef VERSO_CORE_UPDATE_H_
#define VERSO_CORE_UPDATE_H_

#include <functional>

#include "core/ids.h"
#include "core/term.h"
#include "util/hash.h"

namespace verso {

/// One ground update derived in step 1 of T_P: an element of T¹_P(I).
/// `version` is the pre-transition version v of the update-term α[v];
/// the update targets version α(v).
struct GroundUpdate {
  UpdateKind kind = UpdateKind::kInsert;
  Vid version;          // v
  MethodId method;
  GroundApp app;        // args + (old) result
  Oid new_result;       // modify only: r'

  friend bool operator==(const GroundUpdate& a, const GroundUpdate& b) {
    return a.kind == b.kind && a.version == b.version &&
           a.method == b.method && a.app == b.app &&
           a.new_result == b.new_result;
  }
};

struct GroundUpdateHash {
  size_t operator()(const GroundUpdate& u) const {
    size_t seed = static_cast<size_t>(u.kind);
    HashCombine(seed, u.version.value);
    HashCombine(seed, u.method.value);
    for (Oid arg : u.app.args) HashCombine(seed, arg.value);
    HashCombine(seed, u.app.result.value);
    HashCombine(seed, u.new_result.value);
    return seed;
  }
};

}  // namespace verso

#endif  // VERSO_CORE_UPDATE_H_
