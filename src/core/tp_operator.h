#ifndef VERSO_CORE_TP_OPERATOR_H_
#define VERSO_CORE_TP_OPERATOR_H_

#include <map>
#include <vector>

#include "core/match.h"
#include "core/object_base.h"
#include "core/program.h"
#include "core/trace.h"
#include "core/update.h"
#include "util/result.h"

namespace verso {

/// The outcome of one application of T_P: the new states of exactly the
/// relevant VIDs (every fact of T_P(I) concerns a relevant version), plus
/// step-level statistics for the benchmarks.
struct TpResult {
  /// target version (α(v)) -> its freshly computed state. std::map keeps
  /// application deterministic.
  std::map<Vid, VersionState> new_states;

  // Statistics per step of the operator.
  size_t t1_updates = 0;     // |T¹_P(I)|
  size_t t2_copied_facts = 0;  // facts copied preparing version states
  size_t t2_copies_from_self = 0;   // active VIDs (copied from themselves)
  size_t t2_copies_from_prior = 0;  // relevant-not-active (copied from v*)
  size_t fresh_objects = 0;  // targets with no existing stage at all
};

/// Implements the immediate consequence operator of Section 3:
///   step 1 — derive T¹: ground updates from rules whose body *and head*
///            are true w.r.t. I (inserts are always head-true; deletes and
///            modifies require `v*.m->r` in I);
///   step 2 — prepare a state for every relevant VID α(v): copy α(v)'s own
///            state if active, else copy v*'s state;
///   step 3 — apply T¹ to the copies (two-phase: all removals from deletes
///            and modify-old-values first, then all insert/modify-new
///            additions — simultaneous updates must not shadow each other).
class TpOperator {
 public:
  TpOperator(SymbolTable& symbols, VersionTable& versions)
      : symbols_(symbols), versions_(versions) {}

  /// One application of T_P restricted to `rule_indices` (a stratum) on
  /// `base`. Does not mutate `base`; the evaluator installs the returned
  /// states.
  Result<TpResult> Apply(const Program& program,
                         const std::vector<uint32_t>& rule_indices,
                         const ObjectBase& base, TraceSink* trace);

 private:
  SymbolTable& symbols_;
  VersionTable& versions_;
};

}  // namespace verso

#endif  // VERSO_CORE_TP_OPERATOR_H_
