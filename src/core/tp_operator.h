#ifndef VERSO_CORE_TP_OPERATOR_H_
#define VERSO_CORE_TP_OPERATOR_H_

#include <map>
#include <unordered_set>
#include <vector>

#include "core/delta.h"
#include "core/match.h"
#include "core/object_base.h"
#include "core/parallel_eval.h"
#include "core/program.h"
#include "core/trace.h"
#include "core/update.h"
#include "util/result.h"

namespace verso {

/// The outcome of one stand-alone application of T_P: the new states of
/// exactly the relevant VIDs (every fact of T_P(I) concerns a relevant
/// version), plus step-level statistics for the benchmarks.
struct TpResult {
  /// target version (α(v)) -> its freshly computed state. std::map keeps
  /// application deterministic.
  std::map<Vid, VersionState> new_states;

  // Statistics per step of the operator.
  size_t t1_updates = 0;     // |T¹_P(I)|
  size_t t2_copied_facts = 0;  // facts copied preparing version states
  size_t t2_copies_from_self = 0;   // active VIDs (copied from themselves)
  size_t t2_copies_from_prior = 0;  // relevant-not-active (copied from v*)
  size_t fresh_objects = 0;  // targets with no existing stage at all
};

/// Derivation/application counters for one fixpoint round; the evaluator
/// folds them into its per-stratum statistics.
struct TpRoundStats {
  size_t body_matches = 0;    // satisfying body bindings enumerated
  size_t fresh_updates = 0;   // updates first derived this round
  size_t seed_probes = 0;     // delta-seeded partial matches launched
  size_t seed_pairs_skipped = 0;  // (literal, fact) pairs pruned by the
                                  // frontier's (method, shape) index
  size_t residual_rules = 0;  // rules re-matched in full in a delta round
  size_t states_changed = 0;  // targets whose state effectively changed
  size_t copied_facts = 0;    // facts SHARED into new targets (step-2
                              // states are COW; only written methods
                              // physically copy)
  IndexStats index;           // bound-result probes answered by the
                              // result index (full matching, seeded
                              // probes, and residual re-matching alike)
};

/// Persistent per-stratum evaluation state for the delta-driven fixpoint
/// (Section 4): the cumulative T¹ set, its grouping by target version
/// α(v), and the boundary between updates already applied to the base and
/// updates freshly derived this round. Update storage lives in the
/// node-based set, so the grouped pointers stay valid as T¹ grows.
struct TpStratumState {
  std::unordered_set<GroundUpdate, GroundUpdateHash> t1;

  struct TargetUpdates {
    std::vector<const GroundUpdate*> updates;  // derivation order
    size_t applied = 0;  // prefix already applied in earlier rounds
  };
  std::map<Vid, TargetUpdates> by_target;

  /// Targets holding updates beyond their applied prefix, in first-dirtied
  /// order (ApplyRound processes them in Vid order for determinism).
  std::vector<Vid> dirty;
};

/// What ApplyRound materialized, for the evaluator's linearity check.
struct TpApplyResult {
  std::vector<Vid> materialized;
};

/// Implements the immediate consequence operator of Section 3:
///   step 1 — derive T¹: ground updates from rules whose body *and head*
///            are true w.r.t. I (inserts are always head-true; deletes and
///            modifies require `v*.m->r` in I);
///   step 2 — prepare a state for every relevant VID α(v): copy α(v)'s own
///            state if active, else copy v*'s state;
///   step 3 — apply T¹ to the copies (two-phase: all removals from deletes
///            and modify-old-values first, then all insert/modify-new
///            additions — simultaneous updates must not shadow each other).
///
/// The fixpoint entry points split the operator so iterated application is
/// incremental: Derive* merge step 1 into a persistent TpStratumState and
/// ApplyRound installs only the round's fresh updates as fact-level diffs
/// (an active target's own state doubles as the step-2 self-copy, so it is
/// edited in place instead of being copied and swapped every round).
class TpOperator {
 public:
  TpOperator(SymbolTable& symbols, VersionTable& versions)
      : symbols_(symbols), versions_(versions) {}

  /// Round 0 (and every naive-mode round): derive T¹ contributions of all
  /// `rule_indices` by full body matching, merging fresh updates into
  /// `state`.
  Status DeriveFull(const Program& program,
                    const std::vector<uint32_t>& rule_indices,
                    const ObjectBase& base, TpStratumState& state,
                    TpRoundStats& stats, TraceSink* trace);

  /// Semi-naive rounds: derive only contributions reachable from `delta`,
  /// the previous round's fact-level changes. Fully seedable rules are
  /// driven through ForEachBodyMatchFrom from added delta facts; residual
  /// rules are re-matched in full, but only when the delta touches one of
  /// their relevant methods.
  Status DeriveSeeded(const Program& program,
                      const std::vector<uint32_t>& rule_indices,
                      const ObjectBase& base, const DeltaLog& delta,
                      TpStratumState& state, TpRoundStats& stats,
                      TraceSink* trace);

  /// Parallel step-1 variants: partition the round's derivation work into
  /// tasks (one per rule for full matching; per-bucket chunks of seeded
  /// probes plus one task per residual rule for delta rounds) and fan
  /// them across up to `lanes` evaluation lanes over the frozen base.
  /// Lanes record candidate updates against private overlay tables; a
  /// serial merge in task order then replays each lane's intern log and
  /// feeds the remapped candidates through exactly the serial derivation
  /// bookkeeping — `state`, `stats`, and the OnUpdateDerived stream come
  /// out bit-identical to DeriveFull/DeriveSeeded. A lane that throws
  /// discards the whole fan-out and reruns the round serially
  /// (telemetry.fallback_rounds).
  Status DeriveFullParallel(const Program& program,
                            const std::vector<uint32_t>& rule_indices,
                            const ObjectBase& base, int lanes,
                            TpStratumState& state, TpRoundStats& stats,
                            TraceSink* trace, ParallelTelemetry& telemetry);
  Status DeriveSeededParallel(const Program& program,
                              const std::vector<uint32_t>& rule_indices,
                              const ObjectBase& base, const DeltaLog& delta,
                              int lanes, TpStratumState& state,
                              TpRoundStats& stats, TraceSink* trace,
                              ParallelTelemetry& telemetry);

  /// Steps 2 and 3 for the round's fresh updates, installed as diffs into
  /// `base`: active targets are edited in place (fact-level changes
  /// appended to `delta_out`), first-touch targets copy v* (or start from
  /// a fresh exists-fact) exactly once. Older updates whose additions a
  /// fresh removal just erased are re-applied, which reproduces exactly
  /// the states the naive per-round rebuild computes.
  Result<TpApplyResult> ApplyRound(TpStratumState& state, ObjectBase& base,
                                   DeltaLog& delta_out, TpRoundStats& stats,
                                   TraceSink* trace);

  /// Stand-alone application restricted to `rule_indices` on `base`:
  /// derives T¹ from scratch and returns whole new states without
  /// mutating `base` (unit tests and single-step benchmarks).
  Result<TpResult> Apply(const Program& program,
                         const std::vector<uint32_t>& rule_indices,
                         const ObjectBase& base, TraceSink* trace);

 private:
  /// Step-1 sink shared by both derivation modes: resolves the head,
  /// checks head truth, and merges the ground update(s) into `state`.
  Status DeriveFromBindings(const Rule& rule, const Bindings& bindings,
                            const ObjectBase& base, TpStratumState& state,
                            TpRoundStats& stats, TraceSink* trace);

  SymbolTable& symbols_;
  VersionTable& versions_;
};

}  // namespace verso

#endif  // VERSO_CORE_TP_OPERATOR_H_
