#ifndef VERSO_CORE_PARALLEL_EVAL_H_
#define VERSO_CORE_PARALLEL_EVAL_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/delta.h"
#include "core/object_base.h"
#include "core/symbol_table.h"
#include "core/update.h"
#include "core/version_table.h"
#include "util/thread_pool.h"

namespace verso {

/// One parallel evaluation lane's scratch universe: overlay symbol and
/// version tables layered over the real (frozen) ones, plus a copy of the
/// frozen object base rebound to the overlay version table (so v*/exists
/// walks can resolve overlay-fresh VIDs). A lane matches and derives
/// against this universe with zero writes to shared state; after the
/// lanes join, the serial merge replays each lane's overlay intern log
/// into the real tables in deterministic task order and remaps the ids in
/// the lane's recorded outputs — reproducing exactly the interning order,
/// dedup decisions, and trace stream of a serial run.
class EvalLane {
 public:
  EvalLane(const SymbolTable& real_symbols, const VersionTable& real_versions,
           const ObjectBase& frozen_base)
      : symbols(SymbolTable::OverlayTag{}, real_symbols),
        versions(VersionTable::OverlayTag{}, real_versions),
        base(frozen_base) {
    base.set_version_table(&versions);
  }

  /// Overlay log cursor. A task's segment is (previous mark, its end
  /// mark]; a lane's tasks have increasing task indices, so replaying
  /// lanes' segments in global task order replays each lane's log in
  /// order.
  struct Mark {
    uint32_t oids = 0;
    uint32_t methods = 0;
    uint32_t vids = 0;
  };
  Mark mark() const {
    return {symbols.fresh_oids(), symbols.fresh_methods(),
            versions.fresh_vids()};
  }

  /// Replays the overlay log up to `upto` into the real tables, extending
  /// the id maps. Value-keyed re-interning: entries another lane (or the
  /// serial merge itself) already created are hits, genuinely fresh ones
  /// extend the real tables in exactly serial order.
  void ReplayTo(const Mark& upto, SymbolTable& real_symbols,
                VersionTable& real_versions) {
    for (uint32_t i = replayed_.oids; i < upto.oids; ++i) {
      oid_map_.push_back(symbols.ReplayOid(i, real_symbols));
    }
    for (uint32_t i = replayed_.methods; i < upto.methods; ++i) {
      method_map_.push_back(symbols.ReplayMethod(i, real_symbols));
    }
    for (uint32_t i = replayed_.vids; i < upto.vids; ++i) {
      vid_map_.push_back(versions.ReplayVid(
          i, real_versions, [&](Oid o) { return MapOid(o); },
          [&](Vid v) { return MapVid(v); }));
    }
    replayed_ = upto;
  }

  /// Id translation overlay -> real; identity for ids below the overlay's
  /// base counts (and for invalid ids).
  Oid MapOid(Oid o) const {
    if (!o.valid() || o.value < symbols.base_oids()) return o;
    return oid_map_[o.value - symbols.base_oids()];
  }
  MethodId MapMethod(MethodId m) const {
    if (!m.valid() || m.value < symbols.base_methods()) return m;
    return method_map_[m.value - symbols.base_methods()];
  }
  Vid MapVid(Vid v) const {
    if (!v.valid() || v.value < versions.base_vids()) return v;
    return vid_map_[v.value - versions.base_vids()];
  }
  GroundUpdate MapUpdate(GroundUpdate u) const {
    u.version = MapVid(u.version);
    u.method = MapMethod(u.method);
    for (Oid& arg : u.app.args) arg = MapOid(arg);
    u.app.result = MapOid(u.app.result);
    u.new_result = MapOid(u.new_result);
    return u;
  }
  DeltaFact MapFact(DeltaFact f) const {
    f.vid = MapVid(f.vid);
    f.method = MapMethod(f.method);
    for (Oid& arg : f.app.args) arg = MapOid(arg);
    f.app.result = MapOid(f.app.result);
    return f;
  }

  SymbolTable symbols;
  VersionTable versions;
  ObjectBase base;

 private:
  Mark replayed_;
  std::vector<Oid> oid_map_;
  std::vector<MethodId> method_map_;
  std::vector<Vid> vid_map_;
};

/// Telemetry of parallel fan-outs, folded per stratum (or per maintenance
/// run) and reported through TraceSink::OnParallelEval.
struct ParallelTelemetry {
  size_t parallel_rounds = 0;  // rounds that actually fanned out
  size_t tasks = 0;            // work items dispatched across all rounds
  size_t fallback_rounds = 0;  // rounds rerun serially after a lane threw
  std::vector<uint64_t> queue_wait_us;  // per dispatched pool job

  void Fold(const ParallelTelemetry& other) {
    parallel_rounds += other.parallel_rounds;
    tasks += other.tasks;
    fallback_rounds += other.fallback_rounds;
    queue_wait_us.insert(queue_wait_us.end(), other.queue_wait_us.begin(),
                         other.queue_wait_us.end());
  }
  bool used() const { return parallel_rounds + fallback_rounds != 0; }
};

/// Runs `task_count` tasks across up to `lanes` lanes of the shared pool
/// (lane 0 is the caller). Tasks are claimed from one atomic counter, so
/// each lane executes a subsequence of tasks in increasing index order —
/// the property EvalLane's segment replay relies on. `fn(lane, task)`
/// must not throw (wrap and record instead). Queue-wait samples of the
/// dispatched pool jobs and the task count are appended to `telemetry`;
/// the caller records whether the round merged (parallel_rounds) or was
/// rerun serially (fallback_rounds).
inline void RunTasksOnLanes(int lanes, size_t task_count,
                            const std::function<void(int, size_t)>& fn,
                            ParallelTelemetry& telemetry) {
  std::atomic<size_t> next{0};
  ThreadPool::Shared().Run(
      lanes,
      [&](int lane) {
        for (;;) {
          size_t task = next.fetch_add(1, std::memory_order_relaxed);
          if (task >= task_count) return;
          fn(lane, task);
        }
      },
      &telemetry.queue_wait_us);
  telemetry.tasks += task_count;
}

}  // namespace verso

#endif  // VERSO_CORE_PARALLEL_EVAL_H_
