#ifndef VERSO_CORE_STRATIFY_H_
#define VERSO_CORE_STRATIFY_H_

#include <cstdint>
#include <vector>

#include "core/program.h"
#include "util/result.h"

namespace verso {

/// A stratification of an update-program per Section 4 of the paper:
/// strata are evaluated in order; within one stratum T_P is iterated to a
/// fixpoint.
struct Stratification {
  /// rule index -> stratum number (0-based, dense).
  std::vector<uint32_t> stratum_of_rule;
  /// stratum number -> rule indices in program order.
  std::vector<std::vector<uint32_t>> strata;

  size_t stratum_count() const { return strata.size(); }
};

/// Computes a stratification satisfying the paper's conditions:
///   (a) rules whose head version-id-term unifies with a subterm of V are
///       strictly below any rule with head (V) — a copied state is never
///       written again after being copied;
///   (b) writers of a version are at most as high as its positive readers;
///   (c) writers of a version are strictly below its negated readers;
///   (d) rules performing del (resp. mod) on a version are strictly below
///       rules reading the corresponding del(.) (resp. mod(.)) version.
/// Conditions are evaluated with `[V]` replaced by `(V)` and unification
/// restricted to the OID sort (see unify.h).
///
/// Internally: strict/weak edges between rules, SCC condensation, and a
/// longest-path layering; a strict edge inside a cycle makes the program
/// non-stratifiable and yields a diagnostic naming the offending rules.
Result<Stratification> Stratify(const Program& program);

}  // namespace verso

#endif  // VERSO_CORE_STRATIFY_H_
