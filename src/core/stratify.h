#ifndef VERSO_CORE_STRATIFY_H_
#define VERSO_CORE_STRATIFY_H_

#include <cstdint>
#include <vector>

#include "core/program.h"
#include "util/result.h"

namespace verso {

/// A stratification of an update-program per Section 4 of the paper:
/// strata are evaluated in order; within one stratum T_P is iterated to a
/// fixpoint.
struct Stratification {
  /// rule index -> stratum number (0-based, dense).
  std::vector<uint32_t> stratum_of_rule;
  /// stratum number -> rule indices in program order.
  std::vector<std::vector<uint32_t>> strata;

  size_t stratum_count() const { return strata.size(); }
};

/// The rule-dependency graph the stratifier layers, exposed so the static
/// analyzer (src/analysis) can report on the same edges the evaluator
/// orders by. An edge (from, to) constrains stratum(from) + w <=
/// stratum(to): strict edges (w = 1) come from conditions (a), (c), (d);
/// weak edges (w = 0) from condition (b). A strict edge between the same
/// rules supersedes the weak one.
struct RuleGraph {
  size_t rule_count = 0;
  /// Sorted, deduplicated (from, to) pairs; disjoint from weak_edges.
  std::vector<std::pair<uint32_t, uint32_t>> strict_edges;
  std::vector<std::pair<uint32_t, uint32_t>> weak_edges;
  /// Tarjan SCC id per rule (ids in reverse topological order).
  std::vector<int> component;
  int component_count = 0;

  bool SameComponent(uint32_t a, uint32_t b) const {
    return component[a] == component[b];
  }
};

/// Builds the dependency graph of conditions (a)-(d) and its SCC
/// condensation. Pure function of the program's head/body terms.
RuleGraph BuildRuleGraph(const Program& program);

/// A cycle witnessing that the edge (from, to) lies inside one SCC:
/// rule indices `from, to, ..., from` (first == last), following graph
/// edges, the shortest such path back from `to`. Empty when the edge does
/// not close a cycle. Used to render "r1 -> r2 -> r1" diagnostics.
std::vector<uint32_t> FindRuleCycle(const RuleGraph& graph, uint32_t from,
                                    uint32_t to);

/// Computes a stratification satisfying the paper's conditions:
///   (a) rules whose head version-id-term unifies with a subterm of V are
///       strictly below any rule with head (V) — a copied state is never
///       written again after being copied;
///   (b) writers of a version are at most as high as its positive readers;
///   (c) writers of a version are strictly below its negated readers;
///   (d) rules performing del (resp. mod) on a version are strictly below
///       rules reading the corresponding del(.) (resp. mod(.)) version.
/// Conditions are evaluated with `[V]` replaced by `(V)` and unification
/// restricted to the OID sort (see unify.h).
///
/// Internally: strict/weak edges between rules, SCC condensation, and a
/// longest-path layering; a strict edge inside a cycle makes the program
/// non-stratifiable and yields a diagnostic naming the offending rules.
Result<Stratification> Stratify(const Program& program);

}  // namespace verso

#endif  // VERSO_CORE_STRATIFY_H_
