#include "core/version_table.h"

#include <cassert>

namespace verso {

VersionTable::VersionTable() {
  // Shape 0 is the empty chain: plain OIDs.
  shape_ops_.emplace_back();
  shape_index_.emplace(std::vector<UpdateKind>{}, VidShape(0));
  vids_by_shape_.emplace_back();
}

Vid VersionTable::OfOid(Oid o) {
  auto it = oid_to_vid_.find(o);
  if (it != oid_to_vid_.end()) return it->second;
  Vid v(static_cast<uint32_t>(entries_.size()));
  entries_.push_back({o, Vid(), UpdateKind::kInsert, 0, VidShape(0)});
  oid_to_vid_.emplace(o, v);
  vids_by_shape_[0].push_back(v);
  return v;
}

Vid VersionTable::Child(Vid parent, UpdateKind kind) {
  uint64_t key = (static_cast<uint64_t>(parent.value) << 2) |
                 static_cast<uint64_t>(kind);
  auto it = child_index_.find(key);
  if (it != child_index_.end()) return it->second;

  const Entry& p = entries_[parent.value];
  std::vector<UpdateKind> ops;
  ops.reserve(p.depth + 1);
  ops.push_back(kind);
  const std::vector<UpdateKind>& parent_ops = shape_ops_[p.shape.value];
  ops.insert(ops.end(), parent_ops.begin(), parent_ops.end());
  VidShape shape = InternShape(ops);

  Vid v(static_cast<uint32_t>(entries_.size()));
  entries_.push_back({p.root, parent, kind, p.depth + 1, shape});
  child_index_.emplace(key, v);
  vids_by_shape_[shape.value].push_back(v);
  return v;
}

bool VersionTable::IsSubterm(Vid a, Vid b) const {
  const Entry& ea = entries_[a.value];
  const Entry& eb = entries_[b.value];
  if (ea.root != eb.root) return false;
  if (ea.depth > eb.depth) return false;
  Vid cur = b;
  for (uint32_t d = eb.depth; d > ea.depth; --d) cur = entries_[cur.value].parent;
  return cur == a;
}

VidShape VersionTable::InternShape(const std::vector<UpdateKind>& ops) {
  auto it = shape_index_.find(ops);
  if (it != shape_index_.end()) return it->second;
  VidShape shape(static_cast<uint32_t>(shape_ops_.size()));
  shape_ops_.push_back(ops);
  shape_index_.emplace(ops, shape);
  vids_by_shape_.emplace_back();
  return shape;
}

const std::vector<Vid>& VersionTable::VidsWithShape(VidShape shape) const {
  static const std::vector<Vid> kEmpty;
  if (shape.value >= vids_by_shape_.size()) return kEmpty;
  return vids_by_shape_[shape.value];
}

std::string VersionTable::ToString(Vid v, const SymbolTable& symbols) const {
  const Entry& e = entries_[v.value];
  if (e.depth == 0) return symbols.OidToString(e.root);
  std::string out(UpdateKindName(e.kind));
  out += '(';
  out += ToString(e.parent, symbols);
  out += ')';
  return out;
}

}  // namespace verso
