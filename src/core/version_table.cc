#include "core/version_table.h"

#include <cassert>

namespace verso {

VersionTable::VersionTable() {
  // Shape 0 is the empty chain: plain OIDs.
  shape_ops_.emplace_back();
  shape_index_.emplace(std::vector<UpdateKind>{}, VidShape(0));
  vids_by_shape_.emplace_back();
}

VersionTable::VersionTable(OverlayTag, const VersionTable& base)
    : base_(&base),
      base_vids_(static_cast<uint32_t>(base.size())),
      base_shapes_(static_cast<uint32_t>(base.shape_ops_.size())) {
  assert(base.base_ == nullptr && "overlays do not stack");
}

Vid VersionTable::FindOfOid(Oid o) const {
  auto it = oid_to_vid_.find(o);
  return it == oid_to_vid_.end() ? Vid() : it->second;
}

Vid VersionTable::FindChild(Vid parent, UpdateKind kind) const {
  uint64_t key = (static_cast<uint64_t>(parent.value) << 2) |
                 static_cast<uint64_t>(kind);
  auto it = child_index_.find(key);
  return it == child_index_.end() ? Vid() : it->second;
}

VidShape VersionTable::FindShape(const std::vector<UpdateKind>& ops) const {
  auto it = shape_index_.find(ops);
  return it == shape_index_.end() ? VidShape(UINT32_MAX) : it->second;
}

std::vector<Vid>& VersionTable::LocalVidsOfShape(VidShape shape) {
  // Overlay mode: vids_by_shape_ is indexed by the absolute shape id and
  // holds only the overlay's own VIDs. Base mode: indexed as before, one
  // slot per interned shape.
  if (vids_by_shape_.size() <= shape.value) {
    vids_by_shape_.resize(shape.value + 1);
  }
  return vids_by_shape_[shape.value];
}

Vid VersionTable::OfOid(Oid o) {
  if (base_ != nullptr) {
    Vid found = base_->FindOfOid(o);
    if (found.valid()) return found;
  }
  auto it = oid_to_vid_.find(o);
  if (it != oid_to_vid_.end()) return it->second;
  Vid v(base_vids_ + static_cast<uint32_t>(entries_.size()));
  entries_.push_back({o, Vid(), UpdateKind::kInsert, 0, VidShape(0)});
  oid_to_vid_.emplace(o, v);
  LocalVidsOfShape(VidShape(0)).push_back(v);
  return v;
}

Vid VersionTable::Child(Vid parent, UpdateKind kind) {
  if (base_ != nullptr && parent.value < base_vids_) {
    Vid found = base_->FindChild(parent, kind);
    if (found.valid()) return found;
  }
  uint64_t key = (static_cast<uint64_t>(parent.value) << 2) |
                 static_cast<uint64_t>(kind);
  auto it = child_index_.find(key);
  if (it != child_index_.end()) return it->second;

  const Entry& p = entry(parent);
  std::vector<UpdateKind> ops;
  ops.reserve(p.depth + 1);
  ops.push_back(kind);
  const std::vector<UpdateKind>& parent_ops = ShapeOps(p.shape);
  ops.insert(ops.end(), parent_ops.begin(), parent_ops.end());
  VidShape shape = InternShape(ops);

  Vid v(base_vids_ + static_cast<uint32_t>(entries_.size()));
  entries_.push_back({p.root, parent, kind, p.depth + 1, shape});
  child_index_.emplace(key, v);
  LocalVidsOfShape(shape).push_back(v);
  return v;
}

bool VersionTable::IsSubterm(Vid a, Vid b) const {
  const Entry& ea = entry(a);
  const Entry& eb = entry(b);
  if (ea.root != eb.root) return false;
  if (ea.depth > eb.depth) return false;
  Vid cur = b;
  for (uint32_t d = eb.depth; d > ea.depth; --d) cur = entry(cur).parent;
  return cur == a;
}

VidShape VersionTable::InternShape(const std::vector<UpdateKind>& ops) {
  if (base_ != nullptr) {
    VidShape found = base_->FindShape(ops);
    if (found.value != UINT32_MAX) return found;
  }
  auto it = shape_index_.find(ops);
  if (it != shape_index_.end()) return it->second;
  VidShape shape(base_shapes_ + static_cast<uint32_t>(shape_ops_.size()));
  shape_ops_.push_back(ops);
  shape_index_.emplace(ops, shape);
  return shape;
}

const std::vector<Vid>& VersionTable::VidsWithShape(VidShape shape) const {
  static const std::vector<Vid> kEmpty;
  if (base_ == nullptr) {
    if (shape.value >= vids_by_shape_.size()) return kEmpty;
    return vids_by_shape_[shape.value];
  }
  const std::vector<Vid>* local =
      shape.value < vids_by_shape_.size() ? &vids_by_shape_[shape.value]
                                          : nullptr;
  if (local == nullptr || local->empty()) {
    return shape.value < base_shapes_ ? base_->VidsWithShape(shape) : kEmpty;
  }
  MergedShape& merged = merged_cache_[shape.value];
  if (merged.overlay_count != local->size()) {
    merged.vids.clear();
    if (shape.value < base_shapes_) {
      const std::vector<Vid>& from_base = base_->VidsWithShape(shape);
      merged.vids.assign(from_base.begin(), from_base.end());
    }
    merged.vids.insert(merged.vids.end(), local->begin(), local->end());
    merged.overlay_count = local->size();
  }
  return merged.vids;
}

std::string VersionTable::ToString(Vid v, const SymbolTable& symbols) const {
  const Entry& e = entry(v);
  if (e.depth == 0) return symbols.OidToString(e.root);
  std::string out(UpdateKindName(e.kind));
  out += '(';
  out += ToString(e.parent, symbols);
  out += ')';
  return out;
}

}  // namespace verso
