#include "core/symbol_table.h"

#include <cassert>

namespace verso {

SymbolTable::SymbolTable() {
  exists_method_ = Method("exists");
}

SymbolTable::SymbolTable(OverlayTag, const SymbolTable& base)
    : base_(&base),
      base_oids_(static_cast<uint32_t>(base.oid_count())),
      base_methods_(static_cast<uint32_t>(base.method_count())),
      exists_method_(base.exists_method()) {
  assert(base.base_ == nullptr && "overlays do not stack");
}

Oid SymbolTable::Symbol(std::string_view name) {
  if (base_ != nullptr) {
    Oid found = base_->FindSymbol(name);
    if (found.valid()) return found;
  }
  uint32_t sym = symbol_names_.Intern(name);
  auto it = symbol_to_oid_.find(sym);
  if (it != symbol_to_oid_.end()) return it->second;
  Oid id(base_oids_ + static_cast<uint32_t>(entries_.size()));
  entries_.push_back({OidKind::kSymbol, sym});
  symbol_to_oid_.emplace(sym, id);
  return id;
}

Oid SymbolTable::Number(const Numeric& value) {
  if (base_ != nullptr) {
    Oid found = base_->FindNumber(value);
    if (found.valid()) return found;
  }
  auto it = number_to_oid_.find(value);
  if (it != number_to_oid_.end()) return it->second;
  Oid id(base_oids_ + static_cast<uint32_t>(entries_.size()));
  entries_.push_back(
      {OidKind::kNumber, static_cast<uint32_t>(numbers_.size())});
  numbers_.push_back(value);
  number_to_oid_.emplace(value, id);
  return id;
}

Oid SymbolTable::Int(int64_t value) { return Number(Numeric::FromInt(value)); }

Oid SymbolTable::String(std::string_view text) {
  if (base_ != nullptr) {
    Oid found = base_->FindString(text);
    if (found.valid()) return found;
  }
  uint32_t sid = string_values_.Intern(text);
  auto it = string_to_oid_.find(sid);
  if (it != string_to_oid_.end()) return it->second;
  Oid id(base_oids_ + static_cast<uint32_t>(entries_.size()));
  entries_.push_back({OidKind::kString, sid});
  string_to_oid_.emplace(sid, id);
  return id;
}

Oid SymbolTable::FindSymbol(std::string_view name) const {
  if (base_ != nullptr) {
    Oid found = base_->FindSymbol(name);
    if (found.valid()) return found;
  }
  uint32_t sym = symbol_names_.Find(name);
  if (sym == StringInterner::kNotFound) return Oid();
  auto it = symbol_to_oid_.find(sym);
  return it == symbol_to_oid_.end() ? Oid() : it->second;
}

Oid SymbolTable::FindNumber(const Numeric& value) const {
  if (base_ != nullptr) {
    Oid found = base_->FindNumber(value);
    if (found.valid()) return found;
  }
  auto it = number_to_oid_.find(value);
  return it == number_to_oid_.end() ? Oid() : it->second;
}

Oid SymbolTable::FindString(std::string_view text) const {
  if (base_ != nullptr) {
    Oid found = base_->FindString(text);
    if (found.valid()) return found;
  }
  uint32_t sid = string_values_.Find(text);
  if (sid == StringInterner::kNotFound) return Oid();
  auto it = string_to_oid_.find(sid);
  return it == string_to_oid_.end() ? Oid() : it->second;
}

std::string_view SymbolTable::SymbolName(Oid id) const {
  assert(kind(id) == OidKind::kSymbol);
  if (id.value < base_oids_) return base_->SymbolName(id);
  return symbol_names_.Get(entries_[id.value - base_oids_].payload);
}

const Numeric& SymbolTable::NumberValue(Oid id) const {
  assert(kind(id) == OidKind::kNumber);
  if (id.value < base_oids_) return base_->NumberValue(id);
  return numbers_[entries_[id.value - base_oids_].payload];
}

std::string_view SymbolTable::StringValue(Oid id) const {
  assert(kind(id) == OidKind::kString);
  if (id.value < base_oids_) return base_->StringValue(id);
  return string_values_.Get(entries_[id.value - base_oids_].payload);
}

MethodId SymbolTable::Method(std::string_view name) {
  if (base_ != nullptr) {
    MethodId found = base_->FindMethod(name);
    if (found.valid()) return found;
    return MethodId(base_methods_ + method_names_.Intern(name));
  }
  return MethodId(method_names_.Intern(name));
}

MethodId SymbolTable::FindMethod(std::string_view name) const {
  if (base_ != nullptr) {
    MethodId found = base_->FindMethod(name);
    if (found.valid()) return found;
  }
  uint32_t id = method_names_.Find(name);
  return id == StringInterner::kNotFound ? MethodId()
                                         : MethodId(base_methods_ + id);
}

std::string_view SymbolTable::MethodName(MethodId id) const {
  if (id.value < base_methods_) return base_->MethodName(id);
  return method_names_.Get(id.value - base_methods_);
}

Oid SymbolTable::ReplayOid(uint32_t local_index, SymbolTable& target) const {
  const Entry& e = entries_[local_index];
  switch (e.kind) {
    case OidKind::kSymbol:
      return target.Symbol(symbol_names_.Get(e.payload));
    case OidKind::kNumber:
      return target.Number(numbers_[e.payload]);
    case OidKind::kString:
      return target.String(string_values_.Get(e.payload));
  }
  return Oid();
}

MethodId SymbolTable::ReplayMethod(uint32_t local_index,
                                   SymbolTable& target) const {
  return target.Method(method_names_.Get(local_index));
}

std::string SymbolTable::OidToString(Oid id) const {
  switch (kind(id)) {
    case OidKind::kSymbol:
      return std::string(SymbolName(id));
    case OidKind::kNumber:
      return NumberValue(id).ToString();
    case OidKind::kString: {
      std::string out = "\"";
      out += StringValue(id);
      out += '"';
      return out;
    }
  }
  return "?";
}

int SymbolTable::Compare(Oid a, Oid b) const {
  if (a == b) return 0;
  OidKind ka = kind(a);
  OidKind kb = kind(b);
  if (ka != kb) return kIncomparable;
  switch (ka) {
    case OidKind::kNumber:
      return Numeric::Compare(NumberValue(a), NumberValue(b));
    case OidKind::kSymbol: {
      std::string_view sa = SymbolName(a);
      std::string_view sb = SymbolName(b);
      return sa < sb ? -1 : (sa == sb ? 0 : 1);
    }
    case OidKind::kString: {
      std::string_view sa = StringValue(a);
      std::string_view sb = StringValue(b);
      return sa < sb ? -1 : (sa == sb ? 0 : 1);
    }
  }
  return kIncomparable;
}

}  // namespace verso
