#include "core/evaluator.h"

namespace verso {

Status Evaluator::NoteMaterialized(
    Vid vid, std::unordered_map<Oid, Vid>& deepest) const {
  Oid root = versions_.root(vid);
  auto it = deepest.find(root);
  if (it == deepest.end()) {
    deepest.emplace(root, vid);
    return Status::Ok();
  }
  if (versions_.IsSubterm(it->second, vid)) {
    it->second = vid;
    return Status::Ok();
  }
  if (versions_.IsSubterm(vid, it->second)) return Status::Ok();
  return Status::NotVersionLinear(
      "object '" + symbols_.OidToString(root) + "' has incomparable versions " +
      versions_.ToString(it->second, symbols_) + " and " +
      versions_.ToString(vid, symbols_) +
      " (neither is a subterm of the other; Section 5 requires a linear "
      "version order)");
}

Result<EvalStats> Evaluator::Run(const Program& program,
                                 const Stratification& stratification,
                                 ObjectBase& base) {
  EvalStats stats;
  stats.strata.resize(stratification.stratum_count());

  std::unordered_map<Oid, Vid> deepest;
  if (options_.check_version_linearity) {
    for (const auto& [vid, state] : base.versions()) {
      VERSO_RETURN_IF_ERROR(NoteMaterialized(vid, deepest));
    }
  }

  TpOperator tp(symbols_, versions_);
  for (uint32_t stratum = 0; stratum < stratification.stratum_count();
       ++stratum) {
    const std::vector<uint32_t>& rules = stratification.strata[stratum];
    if (trace_ != nullptr) trace_->OnStratumBegin(stratum, rules.size());
    StratumStats& sstats = stats.strata[stratum];

    for (uint32_t round = 0;; ++round) {
      if (round >= options_.max_rounds_per_stratum) {
        return Status::Divergence(
            "stratum " + std::to_string(stratum) + " did not reach a "
            "fixpoint within " +
            std::to_string(options_.max_rounds_per_stratum) + " rounds");
      }
      if (trace_ != nullptr) trace_->OnRoundBegin(stratum, round);
      VERSO_ASSIGN_OR_RETURN(TpResult tp_result,
                             tp.Apply(program, rules, base, trace_));
      sstats.t1_updates += tp_result.t1_updates;
      sstats.copied_facts += tp_result.t2_copied_facts;

      bool changed = false;
      for (auto& [target, state] : tp_result.new_states) {
        bool was_materialized = base.StateOf(target) != nullptr;
        bool replaced = base.ReplaceVersion(target, std::move(state));
        if (replaced) {
          changed = true;
          ++sstats.states_replaced;
        }
        if (!was_materialized && base.StateOf(target) != nullptr) {
          ++stats.versions_materialized;
          if (options_.check_version_linearity) {
            VERSO_RETURN_IF_ERROR(NoteMaterialized(target, deepest));
          }
        }
      }
      sstats.rounds = round + 1;
      if (!changed) break;
    }
    if (trace_ != nullptr) {
      trace_->OnStratumFixpoint(stratum, sstats.rounds);
    }
  }
  return stats;
}

}  // namespace verso
