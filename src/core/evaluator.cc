#include "core/evaluator.h"

namespace verso {

namespace {

/// Minimum work before a round fans out: tiny rounds are dominated by
/// lane setup, and thresholds on serial-deterministic quantities (rule
/// and delta counts, never timing) keep the parallel/serial decision
/// itself reproducible run to run.
constexpr size_t kMinParallelRules = 2;
constexpr size_t kMinParallelDeltaFacts = 16;

}  // namespace

Status Evaluator::NoteMaterialized(
    Vid vid, std::unordered_map<Oid, Vid>& deepest) const {
  Oid root = versions_.root(vid);
  auto it = deepest.find(root);
  if (it == deepest.end()) {
    deepest.emplace(root, vid);
    return Status::Ok();
  }
  if (versions_.IsSubterm(it->second, vid)) {
    it->second = vid;
    return Status::Ok();
  }
  if (versions_.IsSubterm(vid, it->second)) return Status::Ok();
  return Status::NotVersionLinear(
      "object '" + symbols_.OidToString(root) + "' has incomparable versions " +
      versions_.ToString(it->second, symbols_) + " and " +
      versions_.ToString(vid, symbols_) +
      " (neither is a subterm of the other; Section 5 requires a linear "
      "version order)");
}

Result<EvalStats> Evaluator::Run(const Program& program,
                                 const Stratification& stratification,
                                 ObjectBase& base) {
  EvalStats stats;
  stats.strata.resize(stratification.stratum_count());

  std::unordered_map<Oid, Vid> deepest;
  if (options_.check_version_linearity) {
    for (const auto& [vid, state] : base.versions()) {
      VERSO_RETURN_IF_ERROR(NoteMaterialized(vid, deepest));
    }
  }

  TpOperator tp(symbols_, versions_);
  for (uint32_t stratum = 0; stratum < stratification.stratum_count();
       ++stratum) {
    const std::vector<uint32_t>& rules = stratification.strata[stratum];
    if (trace_ != nullptr) trace_->OnStratumBegin(stratum, rules.size());
    StratumStats& sstats = stats.strata[stratum];

    const bool admitted = options_.num_threads > 1 &&
                          options_.admit_parallel != nullptr &&
                          options_.admit_parallel(program, rules);
    ParallelTelemetry ptel;

    TpStratumState sstate;
    DeltaLog delta;
    DeltaLog next_delta;
    for (uint32_t round = 0;; ++round) {
      if (round >= options_.max_rounds_per_stratum) {
        return Status::Divergence(
            "stratum " + std::to_string(stratum) + " did not reach a "
            "fixpoint within " +
            std::to_string(options_.max_rounds_per_stratum) + " rounds");
      }
      if (trace_ != nullptr) trace_->OnRoundBegin(stratum, round);

      TpRoundStats rstats;
      if (round == 0 || !options_.semi_naive) {
        if (admitted && rules.size() >= kMinParallelRules) {
          VERSO_RETURN_IF_ERROR(
              tp.DeriveFullParallel(program, rules, base,
                                    options_.num_threads, sstate, rstats,
                                    trace_, ptel));
        } else {
          VERSO_RETURN_IF_ERROR(
              tp.DeriveFull(program, rules, base, sstate, rstats, trace_));
        }
      } else if (admitted && delta.size() >= kMinParallelDeltaFacts) {
        VERSO_RETURN_IF_ERROR(
            tp.DeriveSeededParallel(program, rules, base, delta,
                                    options_.num_threads, sstate, rstats,
                                    trace_, ptel));
      } else {
        VERSO_RETURN_IF_ERROR(tp.DeriveSeeded(program, rules, base, delta,
                                              sstate, rstats, trace_));
      }

      next_delta.clear();
      VERSO_ASSIGN_OR_RETURN(
          TpApplyResult applied,
          tp.ApplyRound(sstate, base, next_delta, rstats, trace_));
      for (Vid vid : applied.materialized) {
        ++stats.versions_materialized;
        if (options_.check_version_linearity) {
          VERSO_RETURN_IF_ERROR(NoteMaterialized(vid, deepest));
        }
      }

      sstats.rounds = round + 1;
      sstats.t1_updates += rstats.fresh_updates;
      sstats.states_replaced += rstats.states_changed;
      sstats.copied_facts += rstats.copied_facts;
      sstats.body_matches += rstats.body_matches;
      sstats.delta_facts += next_delta.size();
      sstats.seed_probes += rstats.seed_probes;
      sstats.seed_pairs_skipped += rstats.seed_pairs_skipped;
      sstats.residual_rule_runs += rstats.residual_rules;
      sstats.index_probes += rstats.index.index_probes;
      sstats.index_hits += rstats.index.index_hits;
      sstats.indexed_scan_avoided_facts +=
          rstats.index.indexed_scan_avoided_facts;
      // Every consumed round notifies, in naive mode too (naive rounds
      // report 0 seed probes and their full re-matches as residual
      // runs), so sinks — the metrics bridge in particular — hear the
      // same per-commit event stream regardless of evaluation mode or of
      // whether the commit arrived through Execute or as an ExecuteBatch
      // member.
      if (trace_ != nullptr && round > 0) {
        trace_->OnDeltaRound(stratum, round, delta.size(), rstats.seed_probes,
                             rstats.residual_rules);
      }

      delta.swap(next_delta);
      if (delta.empty()) break;
    }
    if (trace_ != nullptr) {
      // Unconditional (zero probes included): whether a sink hears the
      // index summary must not depend on the commit's shape — a batch of
      // probe-free members would otherwise be invisible to sinks that
      // account per-commit index behavior.
      trace_->OnIndexUse(stratum, sstats.index_probes, sstats.index_hits,
                         sstats.indexed_scan_avoided_facts);
      trace_->OnStratumFixpoint(stratum, sstats.rounds);
      if (ptel.used()) {
        trace_->OnParallelEval(stratum, ptel.parallel_rounds, ptel.tasks,
                               ptel.fallback_rounds, ptel.queue_wait_us);
      }
    }
  }
  return stats;
}

}  // namespace verso
