#include "core/trace.h"

#include <ostream>

#include "core/pretty.h"

namespace verso {

void RecordingTrace::OnStratumBegin(uint32_t stratum, size_t rule_count) {
  lines_.push_back("stratum " + std::to_string(stratum) + " (" +
                   std::to_string(rule_count) + " rules)");
}

void RecordingTrace::OnRoundBegin(uint32_t stratum, uint32_t round) {
  lines_.push_back("  round " + std::to_string(stratum) + "." +
                   std::to_string(round));
}

void RecordingTrace::OnDeltaRound(uint32_t stratum, uint32_t round,
                                  size_t delta_facts, size_t seed_probes,
                                  size_t residual_rules) {
  lines_.push_back("  delta " + std::to_string(stratum) + "." +
                   std::to_string(round) + ": " +
                   std::to_string(delta_facts) + " fact(s), " +
                   std::to_string(seed_probes) + " seed probe(s), " +
                   std::to_string(residual_rules) + " residual rule(s)");
}

void RecordingTrace::OnUpdateDerived(const Rule& rule,
                                     const GroundUpdate& update) {
  lines_.push_back("    " + rule.DisplayName() + " derives " +
                   GroundUpdateToString(update, symbols_, versions_));
}

void RecordingTrace::OnVersionMaterialized(Vid version, Vid copied_from,
                                           size_t copied_facts) {
  std::string from = copied_from.valid()
                         ? versions_.ToString(copied_from, symbols_)
                         : std::string("<fresh>");
  lines_.push_back("    materialize " + versions_.ToString(version, symbols_) +
                   " from " + from + " (" + std::to_string(copied_facts) +
                   " facts)");
}

void RecordingTrace::OnIndexUse(uint32_t stratum, size_t probes, size_t hits,
                                size_t avoided_facts) {
  lines_.push_back("stratum " + std::to_string(stratum) + " index: " +
                   std::to_string(probes) + " probe(s), " +
                   std::to_string(hits) + " hit(s), " +
                   std::to_string(avoided_facts) + " scan fact(s) avoided");
}

void RecordingTrace::OnStratumFixpoint(uint32_t stratum, uint32_t rounds) {
  lines_.push_back("stratum " + std::to_string(stratum) + " fixpoint after " +
                   std::to_string(rounds) + " round(s)");
}

void RecordingTrace::OnViewMaintenance(std::string_view view,
                                       size_t delta_facts, size_t added,
                                       size_t removed, size_t overdeleted,
                                       size_t rederived) {
  lines_.push_back("view " + std::string(view) + ": " +
                   std::to_string(delta_facts) + " delta fact(s) -> +" +
                   std::to_string(added) + "/-" + std::to_string(removed) +
                   " (overdeleted " + std::to_string(overdeleted) +
                   ", rederived " + std::to_string(rederived) + ")");
}

void RecordingTrace::OnStorageFault(std::string_view op, const Status& status,
                                    uint32_t attempt, bool degraded) {
  lines_.push_back("storage fault on " + std::string(op) + " (attempt " +
                   std::to_string(attempt) + "): " + status.ToString() +
                   (degraded ? " -> DEGRADED (read-only)" : ""));
}

std::string RecordingTrace::ToString() const {
  std::string out;
  for (const std::string& line : lines_) {
    out += line;
    out += '\n';
  }
  return out;
}

void StreamTrace::OnStratumBegin(uint32_t stratum, size_t rule_count) {
  out_ << "stratum " << stratum << " (" << rule_count << " rules)\n";
}

void StreamTrace::OnRoundBegin(uint32_t stratum, uint32_t round) {
  out_ << "  round " << stratum << "." << round << "\n";
}

void StreamTrace::OnDeltaRound(uint32_t stratum, uint32_t round,
                               size_t delta_facts, size_t seed_probes,
                               size_t residual_rules) {
  out_ << "  delta " << stratum << "." << round << ": " << delta_facts
       << " fact(s), " << seed_probes << " seed probe(s), " << residual_rules
       << " residual rule(s)\n";
}

void StreamTrace::OnUpdateDerived(const Rule& rule,
                                  const GroundUpdate& update) {
  out_ << "    " << rule.DisplayName() << " derives "
       << GroundUpdateToString(update, symbols_, versions_) << "\n";
}

void StreamTrace::OnVersionMaterialized(Vid version, Vid copied_from,
                                        size_t copied_facts) {
  out_ << "    materialize " << versions_.ToString(version, symbols_)
       << " from "
       << (copied_from.valid() ? versions_.ToString(copied_from, symbols_)
                               : std::string("<fresh>"))
       << " (" << copied_facts << " facts)\n";
}

void StreamTrace::OnIndexUse(uint32_t stratum, size_t probes, size_t hits,
                             size_t avoided_facts) {
  out_ << "stratum " << stratum << " index: " << probes << " probe(s), "
       << hits << " hit(s), " << avoided_facts << " scan fact(s) avoided\n";
}

void StreamTrace::OnStratumFixpoint(uint32_t stratum, uint32_t rounds) {
  out_ << "stratum " << stratum << " fixpoint after " << rounds
       << " round(s)\n";
}

void StreamTrace::OnViewMaintenance(std::string_view view, size_t delta_facts,
                                    size_t added, size_t removed,
                                    size_t overdeleted, size_t rederived) {
  out_ << "view " << view << ": " << delta_facts << " delta fact(s) -> +"
       << added << "/-" << removed << " (overdeleted " << overdeleted
       << ", rederived " << rederived << ")\n";
}

void StreamTrace::OnStorageFault(std::string_view op, const Status& status,
                                 uint32_t attempt, bool degraded) {
  out_ << "storage fault on " << op << " (attempt " << attempt
       << "): " << status.ToString()
       << (degraded ? " -> DEGRADED (read-only)" : "") << "\n";
}

}  // namespace verso
