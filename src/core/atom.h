#ifndef VERSO_CORE_ATOM_H_
#define VERSO_CORE_ATOM_H_

#include <vector>

#include "core/expr.h"
#include "core/ids.h"
#include "core/term.h"

namespace verso {

/// Pattern form of a method application: `m@A1,...,Ak -> R` with
/// object-id-terms in argument and result positions.
struct AppPattern {
  MethodId method;
  std::vector<ObjTerm> args;
  ObjTerm result;
};

/// A version-term: `V.m@A1..Ak -> R` — refers to a version asking for a
/// property (paper Section 2.1). Performs no update.
struct VersionAtom {
  VidTerm version;
  AppPattern app;
};

/// An update-term: `ins[V].m->R`, `del[V].m->R`, or `mod[V].m->(R,R')`.
/// In a rule head it initiates a state transition from V to kind(V);
/// in a rule body it asks whether that transition has occurred
/// (truth definitions in Section 3 of the paper).
struct UpdateAtom {
  UpdateKind kind = UpdateKind::kInsert;
  VidTerm version;  // V: the version being updated
  /// `del[V].*` — delete every method-application of the version (heads
  /// only; the paper writes this as `del[...]:`). `app`/`new_result`
  /// are ignored when set.
  bool delete_all = false;
  AppPattern app;
  ObjTerm new_result;  // R' — modify only

  /// The version-id-term denoting the update's target version kind(V):
  /// the `[V] -> (V)` replacement used by stratification and matching.
  VidTerm TargetTerm() const { return VidTerm::Wrap(kind, version); }
};

/// A built-in comparison between two arithmetic expressions.
struct BuiltinAtom {
  CmpOp op = CmpOp::kEq;
  ExprId lhs;
  ExprId rhs;
};

/// A body literal: possibly negated version-term, update-term, or built-in.
struct Literal {
  enum class Kind : uint8_t { kVersion, kUpdate, kBuiltin };

  Kind kind = Kind::kVersion;
  bool negated = false;
  // Exactly one of the following is meaningful, selected by `kind`.
  // (A tagged union would save bytes; rules are small and long-lived, so
  // we keep the representation simple and copyable.)
  VersionAtom version;
  UpdateAtom update;
  BuiltinAtom builtin;

  static Literal Version(VersionAtom atom, bool negated = false) {
    Literal l;
    l.kind = Kind::kVersion;
    l.negated = negated;
    l.version = std::move(atom);
    return l;
  }
  static Literal Update(UpdateAtom atom, bool negated = false) {
    Literal l;
    l.kind = Kind::kUpdate;
    l.negated = negated;
    l.update = std::move(atom);
    return l;
  }
  static Literal Builtin(BuiltinAtom atom, bool negated = false) {
    Literal l;
    l.kind = Kind::kBuiltin;
    l.negated = negated;
    l.builtin = atom;
    return l;
  }
};

}  // namespace verso

#endif  // VERSO_CORE_ATOM_H_
