#include "core/rule.h"

#include <algorithm>

namespace verso {

namespace {

/// Appends the variables occurring in an ObjTerm.
void CollectObjVars(const ObjTerm& term, std::vector<VarId>* out) {
  if (term.is_var) out->push_back(term.var);
}

void CollectAppVars(const AppPattern& app, std::vector<VarId>* out) {
  for (const ObjTerm& arg : app.args) CollectObjVars(arg, out);
  CollectObjVars(app.result, out);
}

/// All variables of a literal (for groundness checks of negated literals).
std::vector<VarId> LiteralVars(const Rule& rule, const Literal& lit) {
  std::vector<VarId> vars;
  switch (lit.kind) {
    case Literal::Kind::kVersion:
      CollectObjVars(lit.version.version.base, &vars);
      CollectAppVars(lit.version.app, &vars);
      break;
    case Literal::Kind::kUpdate:
      CollectObjVars(lit.update.version.base, &vars);
      if (!lit.update.delete_all) {
        CollectAppVars(lit.update.app, &vars);
        if (lit.update.kind == UpdateKind::kModify) {
          CollectObjVars(lit.update.new_result, &vars);
        }
      }
      break;
    case Literal::Kind::kBuiltin:
      rule.exprs.CollectVars(lit.builtin.lhs, &vars);
      rule.exprs.CollectVars(lit.builtin.rhs, &vars);
      break;
  }
  return vars;
}

bool AllBound(const std::vector<VarId>& vars, const std::vector<bool>& bound) {
  return std::all_of(vars.begin(), vars.end(),
                     [&](VarId v) { return bound[v.value]; });
}

int CountBound(const std::vector<VarId>& vars, const std::vector<bool>& bound) {
  int n = 0;
  for (VarId v : vars) {
    if (bound[v.value]) ++n;
  }
  return n;
}

}  // namespace

std::string Rule::DisplayName() const {
  if (!label.empty()) return label;
  return "rule@" + std::to_string(source_line);
}

Status AnalyzeRule(Rule& rule, const SymbolTable& symbols) {
  const MethodId exists = symbols.exists_method();

  // Head shape checks.
  if (rule.head.delete_all) {
    if (rule.head.kind != UpdateKind::kDelete) {
      return Status::InvalidArgument(rule.DisplayName() +
                                     ": '.*' head requires del[...]");
    }
  } else {
    if (rule.head.app.method == exists) {
      return Status::InvalidArgument(
          rule.DisplayName() +
          ": the system method 'exists' must not occur in a rule head");
    }
  }

  const uint32_t nvars = rule.var_count();
  std::vector<bool> bound(nvars, false);
  std::vector<bool> done(rule.body.size(), false);
  rule.execution_order.clear();
  rule.execution_order.reserve(rule.body.size());

  auto bind_literal = [&](const Literal& lit) {
    for (VarId v : LiteralVars(rule, lit)) bound[v.value] = true;
  };

  // Greedy planning loop: repeatedly pick the "best" literal that can run
  // given the current bound set. Positive version-/update-terms can always
  // run (they enumerate), but we prefer more-bound ones; `X = expr` runs
  // once expr's variables are bound; everything else needs groundness.
  for (size_t step = 0; step < rule.body.size(); ++step) {
    int best = -1;
    int best_score = -1;
    for (size_t i = 0; i < rule.body.size(); ++i) {
      if (done[i]) continue;
      const Literal& lit = rule.body[i];
      std::vector<VarId> vars = LiteralVars(rule, lit);
      int score = -1;
      if (lit.kind == Literal::Kind::kBuiltin) {
        if (AllBound(vars, bound)) {
          score = 1000;  // run filters as early as possible
        } else if (!lit.negated && lit.builtin.op == CmpOp::kEq) {
          // Binding form: one side is an unbound variable, the other side
          // is fully bound.
          VarId var;
          std::vector<VarId> rhs_vars;
          if (rule.exprs.IsVarRef(lit.builtin.lhs, &var) &&
              !bound[var.value]) {
            rule.exprs.CollectVars(lit.builtin.rhs, &rhs_vars);
            if (AllBound(rhs_vars, bound)) score = 900;
          }
          if (score < 0 && rule.exprs.IsVarRef(lit.builtin.rhs, &var) &&
              !bound[var.value]) {
            std::vector<VarId> lhs_vars;
            rule.exprs.CollectVars(lit.builtin.lhs, &lhs_vars);
            if (AllBound(lhs_vars, bound)) score = 900;
          }
        }
      } else if (lit.negated) {
        // Negated version-/update-terms must be ground when evaluated.
        if (AllBound(vars, bound)) score = 800;
      } else {
        // Positive version-/update-term: always runnable; prefer literals
        // with more bound variables (cheaper enumeration), and a bound
        // version base above all.
        score = CountBound(vars, bound);
        std::vector<VarId> base_vars;
        const VidTerm& vt = lit.kind == Literal::Kind::kVersion
                                ? lit.version.version
                                : lit.update.version;
        CollectObjVars(vt.base, &base_vars);
        if (base_vars.empty() || AllBound(base_vars, bound)) score += 100;
      }
      if (score > best_score) {
        best_score = score;
        best = static_cast<int>(i);
      }
    }
    if (best < 0 || best_score < 0) {
      // No literal can make progress: some negated literal or built-in can
      // never become ground.
      for (size_t i = 0; i < rule.body.size(); ++i) {
        if (done[i]) continue;
        const Literal& lit = rule.body[i];
        if (lit.kind != Literal::Kind::kBuiltin && !lit.negated) continue;
        for (VarId v : LiteralVars(rule, lit)) {
          if (!bound[v.value]) {
            return Status::UnsafeRule(
                rule.DisplayName() + ": variable '" +
                rule.var_names[v.value] +
                "' in a negated literal or built-in is never bound by a "
                "positive version- or update-term");
          }
        }
      }
      return Status::UnsafeRule(rule.DisplayName() +
                                ": body cannot be ordered safely");
    }
    done[static_cast<size_t>(best)] = true;
    rule.execution_order.push_back(static_cast<uint32_t>(best));
    bind_literal(rule.body[static_cast<size_t>(best)]);
  }

  // ---- Semi-naive plan: seed literals, seedability, relevant methods.
  rule.seed_literals.clear();
  rule.relevant_methods.clear();
  rule.rerun_on_any_delta = rule.head.delete_all;
  bool all_body_seedable = true;
  for (size_t i = 0; i < rule.body.size(); ++i) {
    const Literal& lit = rule.body[i];
    switch (lit.kind) {
      case Literal::Kind::kVersion:
        rule.relevant_methods.push_back(lit.version.app.method);
        if (!lit.negated) {
          rule.seed_literals.push_back(static_cast<uint32_t>(i));
        } else {
          all_body_seedable = false;
        }
        break;
      case Literal::Kind::kUpdate:
        rule.relevant_methods.push_back(lit.update.app.method);
        if (!lit.negated && lit.update.kind == UpdateKind::kInsert) {
          rule.seed_literals.push_back(static_cast<uint32_t>(i));
        } else {
          // del/mod body literals read v*, whose identity shifts when a
          // deeper stage materializes (an exists-fact addition); negated
          // literals react to removals. Either way: full re-match.
          all_body_seedable = false;
          if (lit.update.kind != UpdateKind::kInsert) {
            rule.relevant_methods.push_back(exists);
          }
        }
        break;
      case Literal::Kind::kBuiltin:
        break;  // depends on bindings only
    }
  }
  if (!rule.head.delete_all && rule.head.kind != UpdateKind::kInsert) {
    // Head truth of del/mod requires the old application in v*'s state.
    rule.relevant_methods.push_back(rule.head.app.method);
    rule.relevant_methods.push_back(exists);
  }
  rule.fully_seedable = all_body_seedable && !rule.head.delete_all &&
                        rule.head.kind == UpdateKind::kInsert;
  std::sort(rule.relevant_methods.begin(), rule.relevant_methods.end());
  rule.relevant_methods.erase(
      std::unique(rule.relevant_methods.begin(), rule.relevant_methods.end()),
      rule.relevant_methods.end());

  // All head variables must now be bound.
  std::vector<VarId> head_vars;
  CollectObjVars(rule.head.version.base, &head_vars);
  if (!rule.head.delete_all) {
    CollectAppVars(rule.head.app, &head_vars);
    if (rule.head.kind == UpdateKind::kModify) {
      CollectObjVars(rule.head.new_result, &head_vars);
    }
  }
  for (VarId v : head_vars) {
    if (!bound[v.value]) {
      return Status::UnsafeRule(rule.DisplayName() + ": head variable '" +
                                rule.var_names[v.value] +
                                "' does not occur in a positive body literal");
    }
  }
  return Status::Ok();
}

}  // namespace verso
