#include "core/expr.h"

namespace verso {

ExprId ExprPool::Const(Oid value) {
  ExprId id(static_cast<uint32_t>(nodes_.size()));
  Expr node{};
  node.kind = Expr::Kind::kConst;
  node.constant = value;
  nodes_.push_back(node);
  return id;
}

ExprId ExprPool::Var(VarId var) {
  ExprId id(static_cast<uint32_t>(nodes_.size()));
  Expr node{};
  node.kind = Expr::Kind::kVar;
  node.var = var;
  nodes_.push_back(node);
  return id;
}

ExprId ExprPool::Binary(Expr::Kind kind, ExprId lhs, ExprId rhs) {
  ExprId id(static_cast<uint32_t>(nodes_.size()));
  Expr node{};
  node.kind = kind;
  node.lhs = lhs;
  node.rhs = rhs;
  nodes_.push_back(node);
  return id;
}

ExprId ExprPool::Neg(ExprId operand) {
  ExprId id(static_cast<uint32_t>(nodes_.size()));
  Expr node{};
  node.kind = Expr::Kind::kNeg;
  node.lhs = operand;
  nodes_.push_back(node);
  return id;
}

void ExprPool::CollectVars(ExprId id, std::vector<VarId>* out) const {
  const Expr& node = at(id);
  switch (node.kind) {
    case Expr::Kind::kConst:
      return;
    case Expr::Kind::kVar:
      out->push_back(node.var);
      return;
    case Expr::Kind::kNeg:
      CollectVars(node.lhs, out);
      return;
    case Expr::Kind::kAdd:
    case Expr::Kind::kSub:
    case Expr::Kind::kMul:
    case Expr::Kind::kDiv:
      CollectVars(node.lhs, out);
      CollectVars(node.rhs, out);
      return;
  }
}

bool ExprPool::IsVarRef(ExprId id, VarId* var) const {
  const Expr& node = at(id);
  if (node.kind != Expr::Kind::kVar) return false;
  *var = node.var;
  return true;
}

Result<Oid> EvalExpr(const ExprPool& pool, ExprId id, const Bindings& bindings,
                     SymbolTable& symbols) {
  const Expr& node = pool.at(id);
  switch (node.kind) {
    case Expr::Kind::kConst:
      return node.constant;
    case Expr::Kind::kVar: {
      Oid bound = bindings[node.var.value];
      if (!bound.valid()) {
        return Status::Internal("expression references unbound variable");
      }
      return bound;
    }
    case Expr::Kind::kNeg: {
      VERSO_ASSIGN_OR_RETURN(Oid operand,
                             EvalExpr(pool, node.lhs, bindings, symbols));
      if (!symbols.IsNumber(operand)) {
        return Status::InvalidArgument("negation of a non-number");
      }
      VERSO_ASSIGN_OR_RETURN(Numeric value,
                             Numeric::Neg(symbols.NumberValue(operand)));
      return symbols.Number(value);
    }
    case Expr::Kind::kAdd:
    case Expr::Kind::kSub:
    case Expr::Kind::kMul:
    case Expr::Kind::kDiv: {
      VERSO_ASSIGN_OR_RETURN(Oid lhs,
                             EvalExpr(pool, node.lhs, bindings, symbols));
      VERSO_ASSIGN_OR_RETURN(Oid rhs,
                             EvalExpr(pool, node.rhs, bindings, symbols));
      if (!symbols.IsNumber(lhs) || !symbols.IsNumber(rhs)) {
        return Status::InvalidArgument(
            "arithmetic on non-numeric operands: " + symbols.OidToString(lhs) +
            ", " + symbols.OidToString(rhs));
      }
      const Numeric& a = symbols.NumberValue(lhs);
      const Numeric& b = symbols.NumberValue(rhs);
      Result<Numeric> value = [&]() {
        switch (node.kind) {
          case Expr::Kind::kAdd:
            return Numeric::Add(a, b);
          case Expr::Kind::kSub:
            return Numeric::Sub(a, b);
          case Expr::Kind::kMul:
            return Numeric::Mul(a, b);
          default:
            return Numeric::Div(a, b);
        }
      }();
      if (!value.ok()) return value.status();
      return symbols.Number(*value);
    }
  }
  return Status::Internal("corrupt expression node");
}

const char* CmpOpName(CmpOp op) {
  switch (op) {
    case CmpOp::kEq:
      return "=";
    case CmpOp::kNe:
      return "!=";
    case CmpOp::kLt:
      return "<";
    case CmpOp::kLe:
      return "<=";
    case CmpOp::kGt:
      return ">";
    case CmpOp::kGe:
      return ">=";
  }
  return "?";
}

bool EvalCmp(CmpOp op, Oid lhs, Oid rhs, const SymbolTable& symbols) {
  if (op == CmpOp::kEq) return lhs == rhs;
  if (op == CmpOp::kNe) return lhs != rhs;
  int cmp = symbols.Compare(lhs, rhs);
  if (cmp == SymbolTable::kIncomparable) return false;
  switch (op) {
    case CmpOp::kLt:
      return cmp < 0;
    case CmpOp::kLe:
      return cmp <= 0;
    case CmpOp::kGt:
      return cmp > 0;
    case CmpOp::kGe:
      return cmp >= 0;
    default:
      return false;
  }
}

}  // namespace verso
