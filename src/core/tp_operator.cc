#include "core/tp_operator.h"

#include <algorithm>

namespace verso {

namespace {

/// The fact a derived update adds to its target state, or nullopt for
/// deletes (which only remove). Modifies add the old application with the
/// new result.
bool UpdateAddition(const GroundUpdate& update, GroundApp* out) {
  switch (update.kind) {
    case UpdateKind::kInsert:
      *out = update.app;
      return true;
    case UpdateKind::kModify:
      *out = update.app;
      out->result = update.new_result;
      return true;
    case UpdateKind::kDelete:
      return false;
  }
  return false;
}

/// Step 2 for an inactive target: the state to start from — a copy of
/// v*'s state when some stage of the object exists, else the fresh-object
/// state carrying only its exists-fact (documented extension; only
/// inserts can reach the fresh branch, since head truth of del/mod
/// requires a materialized stage). Emits the materialization trace event.
///
/// The "copy" is structural: VersionState shares its per-method
/// application vectors copy-on-write, so materializing the target costs
/// O(#methods) pointer bumps here, and applying the updates below clones
/// only the vectors of the methods actually written — everything else
/// stays shared with v*'s state in the base.
VersionState PrepareInactiveState(Vid target, const ObjectBase& base,
                                  const VersionTable& versions,
                                  TraceSink* trace, bool* copied_from_prior) {
  VersionState state;
  Vid v = versions.parent(target);
  Vid vstar = base.LatestExistingStage(v);
  *copied_from_prior = vstar.valid();
  if (vstar.valid()) {
    state = *base.StateOf(vstar);
    if (trace != nullptr) {
      trace->OnVersionMaterialized(target, vstar, state.fact_count());
    }
  } else {
    GroundApp exists_app;
    exists_app.result = versions.root(target);
    state.Insert(base.exists_method(), std::move(exists_app));
    if (trace != nullptr) trace->OnVersionMaterialized(target, Vid(), 0);
  }
  return state;
}

/// Step 3 on a detached state: all removals (deletes and modify-old-
/// values) before any addition, so simultaneous updates like mod(a->b) +
/// mod(b->c) yield {b,c} and not {c}.
void ApplyUpdatesToState(VersionState& state,
                         const std::vector<const GroundUpdate*>& updates,
                         size_t first, size_t last) {
  for (size_t i = first; i < last; ++i) {
    const GroundUpdate* u = updates[i];
    if (u->kind == UpdateKind::kDelete || u->kind == UpdateKind::kModify) {
      state.Erase(u->method, u->app);
    }
  }
  GroundApp addition;
  for (size_t i = first; i < last; ++i) {
    const GroundUpdate* u = updates[i];
    if (UpdateAddition(*u, &addition)) state.Insert(u->method, addition);
  }
}

}  // namespace

Status TpOperator::DeriveFromBindings(const Rule& rule,
                                      const Bindings& bindings,
                                      const ObjectBase& base,
                                      TpStratumState& state,
                                      TpRoundStats& stats, TraceSink* trace) {
  ++stats.body_matches;
  Vid v = ResolveVid(rule.head.version, bindings, versions_);
  if (!v.valid()) {
    return Status::Internal(rule.DisplayName() +
                            ": unbound head version after matching");
  }
  auto derive = [&](GroundUpdate&& update) {
    auto [it, fresh] = state.t1.insert(std::move(update));
    if (!fresh) return;
    ++stats.fresh_updates;
    const GroundUpdate* u = &*it;
    Vid target = versions_.Child(u->version, u->kind);
    TpStratumState::TargetUpdates& tu = state.by_target[target];
    if (tu.updates.size() == tu.applied) state.dirty.push_back(target);
    tu.updates.push_back(u);
    if (trace != nullptr) trace->OnUpdateDerived(rule, *u);
  };

  if (rule.head.delete_all) {
    // del[V].* expands to one delete per method-application of v*
    // (the system method `exists` is never deletable).
    Vid vstar = base.LatestExistingStage(v);
    if (!vstar.valid()) return Status::Ok();
    const VersionState* vstate = base.StateOf(vstar);
    if (vstate == nullptr) return Status::Ok();
    for (const auto& [method, apps] : vstate->methods()) {
      if (method == base.exists_method()) continue;
      for (const GroundApp& app : apps) {
        GroundUpdate update;
        update.kind = UpdateKind::kDelete;
        update.version = v;
        update.method = method;
        update.app = app;
        derive(std::move(update));
      }
    }
    return Status::Ok();
  }

  GroundUpdate update;
  update.kind = rule.head.kind;
  update.version = v;
  update.method = rule.head.app.method;
  update.app = ResolveApp(rule.head.app, bindings);
  if (rule.head.kind == UpdateKind::kModify) {
    update.new_result = rule.head.new_result.is_var
                            ? bindings[rule.head.new_result.var.value]
                            : rule.head.new_result.oid;
  }

  // Head truth (Section 3): an insert is always true; a delete or
  // modify requires the old application to hold in v*'s state.
  if (rule.head.kind != UpdateKind::kInsert) {
    Vid vstar = base.LatestExistingStage(v);
    if (!vstar.valid() || !base.ContainsApp(vstar, update.method, update.app)) {
      return Status::Ok();
    }
  }
  derive(std::move(update));
  return Status::Ok();
}

Status TpOperator::DeriveFull(const Program& program,
                              const std::vector<uint32_t>& rule_indices,
                              const ObjectBase& base, TpStratumState& state,
                              TpRoundStats& stats, TraceSink* trace) {
  MatchContext ctx{symbols_, versions_, base, &stats.index};
  for (uint32_t rule_index : rule_indices) {
    const Rule& rule = program.rules[rule_index];
    Status status = ForEachBodyMatch(
        rule, ctx, [&](const Bindings& bindings) -> Status {
          return DeriveFromBindings(rule, bindings, base, state, stats, trace);
        });
    VERSO_RETURN_IF_ERROR(status);
  }
  return Status::Ok();
}

Status TpOperator::DeriveSeeded(const Program& program,
                                const std::vector<uint32_t>& rule_indices,
                                const ObjectBase& base, const DeltaLog& delta,
                                TpStratumState& state, TpRoundStats& stats,
                                TraceSink* trace) {
  MatchContext ctx{symbols_, versions_, base, &stats.index};
  std::unordered_set<uint32_t> touched_methods;
  size_t added_total = 0;
  for (const DeltaFact& fact : delta) {
    touched_methods.insert(fact.method.value);
    if (fact.added) ++added_total;
  }
  // Frontier index: probing per (seed literal, delta fact) pair is
  // quadratic in wide deltas; grouping the added facts by (method, shape)
  // jumps straight to the facts a literal can possibly unify with.
  DeltaIndex index;
  index.Build(delta, versions_);

  Bindings seed;
  for (uint32_t rule_index : rule_indices) {
    const Rule& rule = program.rules[rule_index];
    auto sink = [&](const Bindings& bindings) -> Status {
      return DeriveFromBindings(rule, bindings, base, state, stats, trace);
    };
    if (rule.fully_seedable) {
      // Every way this rule can newly match goes through an added fact at
      // one of its membership literals.
      for (uint32_t li : rule.seed_literals) {
        MethodId method;
        VidShape shape;
        if (!SeedKeyForLiteral(rule, li, versions_, &method, &shape)) {
          continue;
        }
        const std::vector<const DeltaFact*>* bucket =
            index.Added(method, shape);
        if (bucket == nullptr) {
          stats.seed_pairs_skipped += added_total;
          continue;
        }
        stats.seed_pairs_skipped += added_total - bucket->size();
        for (const DeltaFact* fact : *bucket) {
          if (!SeedBindingsFromDelta(rule, li, *fact, versions_, seed)) {
            continue;
          }
          ++stats.seed_probes;
          VERSO_RETURN_IF_ERROR(ForEachBodyMatchFrom(
              rule, ctx, seed, static_cast<int>(li), sink));
        }
      }
      continue;
    }
    // Residual rule: full re-match, but only when the delta could affect
    // it (a changed fact of a relevant method; delete-all heads react to
    // everything).
    bool relevant = rule.rerun_on_any_delta;
    for (size_t i = 0; !relevant && i < rule.relevant_methods.size(); ++i) {
      relevant = touched_methods.count(rule.relevant_methods[i].value) != 0;
    }
    if (!relevant) continue;
    ++stats.residual_rules;
    VERSO_RETURN_IF_ERROR(ForEachBodyMatch(rule, ctx, sink));
  }
  return Status::Ok();
}

Result<TpApplyResult> TpOperator::ApplyRound(TpStratumState& state,
                                             ObjectBase& base,
                                             DeltaLog& delta_out,
                                             TpRoundStats& stats,
                                             TraceSink* trace) {
  TpApplyResult result;
  std::sort(state.dirty.begin(), state.dirty.end());
  for (Vid target : state.dirty) {
    TpStratumState::TargetUpdates& tu = state.by_target[target];
    const size_t first_fresh = tu.applied;
    tu.applied = tu.updates.size();

    if (base.VersionExists(target)) {
      // Active target: its own state is the step-2 self-copy; edit it in
      // place. Phase 1: removals of the fresh deletes/modify-old-values.
      const size_t before = delta_out.size();
      const size_t first_erased = delta_out.size();
      for (size_t i = first_fresh; i < tu.updates.size(); ++i) {
        const GroundUpdate* u = tu.updates[i];
        if (u->kind == UpdateKind::kDelete || u->kind == UpdateKind::kModify) {
          if (base.Erase(target, u->method, u->app)) {
            delta_out.push_back({target, u->method, u->app, /*added=*/false});
          }
        }
      }
      const size_t last_erased = delta_out.size();
      // Shield: an older update's addition that a fresh removal just
      // erased must be re-added, because the per-round rebuild would
      // re-derive the older update and re-apply it (e.g. mod(a->b) in
      // round r, mod(b->c) in round r+1 yields {b,c}, not {c}). Older
      // updates stay derivable within a stratum: condition (a) of the
      // Section-4 stratification puts every writer of a subterm of a head
      // version strictly below, so the v* read by del/mod head truth is
      // fixed for the whole stratum.
      if (last_erased > first_erased && first_fresh > 0) {
        GroundApp addition;
        for (size_t i = 0; i < first_fresh; ++i) {
          const GroundUpdate* u = tu.updates[i];
          if (!UpdateAddition(*u, &addition)) continue;
          bool erased = false;
          for (size_t e = first_erased; !erased && e < last_erased; ++e) {
            erased = delta_out[e].method == u->method &&
                     delta_out[e].app == addition;
          }
          if (erased && base.Insert(target, u->method, addition)) {
            delta_out.push_back({target, u->method, addition, true});
          }
        }
      }
      // Phase 2: additions of the fresh inserts/modify-new-values.
      GroundApp addition;
      for (size_t i = first_fresh; i < tu.updates.size(); ++i) {
        const GroundUpdate* u = tu.updates[i];
        if (!UpdateAddition(*u, &addition)) continue;
        if (base.Insert(target, u->method, addition)) {
          delta_out.push_back({target, u->method, addition, true});
        }
      }
      if (delta_out.size() > before) ++stats.states_changed;
      continue;
    }

    // Inactive target: steps 2 and 3 on a detached copy.
    bool copied_from_prior = false;
    VersionState vstate = PrepareInactiveState(target, base, versions_, trace,
                                               &copied_from_prior);
    stats.copied_facts += vstate.fact_count();
    ApplyUpdatesToState(vstate, tu.updates, first_fresh, tu.updates.size());

    const bool was_state = base.StateOf(target) != nullptr;
    if (base.ReplaceVersion(target, std::move(vstate), &delta_out)) {
      ++stats.states_changed;
    }
    if (!was_state && base.StateOf(target) != nullptr) {
      result.materialized.push_back(target);
    }
  }
  state.dirty.clear();
  return result;
}

Result<TpResult> TpOperator::Apply(const Program& program,
                                   const std::vector<uint32_t>& rule_indices,
                                   const ObjectBase& base, TraceSink* trace) {
  TpResult result;
  TpStratumState state;
  TpRoundStats rstats;
  VERSO_RETURN_IF_ERROR(
      DeriveFull(program, rule_indices, base, state, rstats, trace));
  result.t1_updates = state.t1.size();

  // ---- Steps 2 and 3 per relevant target.
  for (auto& [target, tu] : state.by_target) {
    VersionState vstate;
    if (base.VersionExists(target)) {
      // Active: copy the target's own current state.
      vstate = *base.StateOf(target);
      ++result.t2_copies_from_self;
    } else {
      bool copied_from_prior = false;
      vstate = PrepareInactiveState(target, base, versions_, trace,
                                    &copied_from_prior);
      if (copied_from_prior) {
        ++result.t2_copies_from_prior;
      } else {
        ++result.fresh_objects;
      }
    }
    result.t2_copied_facts += vstate.fact_count();
    ApplyUpdatesToState(vstate, tu.updates, 0, tu.updates.size());
    result.new_states.emplace(target, std::move(vstate));
  }
  return result;
}

}  // namespace verso
