#include "core/tp_operator.h"

#include <algorithm>
#include <memory>
#include <unordered_set>

namespace verso {

namespace {

/// The fact a derived update adds to its target state, or nullopt for
/// deletes (which only remove). Modifies add the old application with the
/// new result.
bool UpdateAddition(const GroundUpdate& update, GroundApp* out) {
  switch (update.kind) {
    case UpdateKind::kInsert:
      *out = update.app;
      return true;
    case UpdateKind::kModify:
      *out = update.app;
      out->result = update.new_result;
      return true;
    case UpdateKind::kDelete:
      return false;
  }
  return false;
}

/// Step 2 for an inactive target: the state to start from — a copy of
/// v*'s state when some stage of the object exists, else the fresh-object
/// state carrying only its exists-fact (documented extension; only
/// inserts can reach the fresh branch, since head truth of del/mod
/// requires a materialized stage). Emits the materialization trace event.
///
/// The "copy" is structural: VersionState shares its per-method
/// application vectors copy-on-write, so materializing the target costs
/// O(#methods) pointer bumps here, and applying the updates below clones
/// only the vectors of the methods actually written — everything else
/// stays shared with v*'s state in the base.
VersionState PrepareInactiveState(Vid target, const ObjectBase& base,
                                  const VersionTable& versions,
                                  TraceSink* trace, bool* copied_from_prior) {
  VersionState state;
  Vid v = versions.parent(target);
  Vid vstar = base.LatestExistingStage(v);
  *copied_from_prior = vstar.valid();
  if (vstar.valid()) {
    state = *base.StateOf(vstar);
    if (trace != nullptr) {
      trace->OnVersionMaterialized(target, vstar, state.fact_count());
    }
  } else {
    GroundApp exists_app;
    exists_app.result = versions.root(target);
    state.Insert(base.exists_method(), std::move(exists_app));
    if (trace != nullptr) trace->OnVersionMaterialized(target, Vid(), 0);
  }
  return state;
}

/// Step 3 on a detached state: all removals (deletes and modify-old-
/// values) before any addition, so simultaneous updates like mod(a->b) +
/// mod(b->c) yield {b,c} and not {c}.
void ApplyUpdatesToState(VersionState& state,
                         const std::vector<const GroundUpdate*>& updates,
                         size_t first, size_t last) {
  for (size_t i = first; i < last; ++i) {
    const GroundUpdate* u = updates[i];
    if (u->kind == UpdateKind::kDelete || u->kind == UpdateKind::kModify) {
      state.Erase(u->method, u->app);
    }
  }
  GroundApp addition;
  for (size_t i = first; i < last; ++i) {
    const GroundUpdate* u = updates[i];
    if (UpdateAddition(*u, &addition)) state.Insert(u->method, addition);
  }
}

/// What one parallel task recorded: candidate updates (with lane-local
/// ids), its lane's overlay log position at task end, and the counters
/// the task accumulated. Folded into the shared state by the serial
/// merge, in task order.
struct LaneTaskOutput {
  int lane = -1;
  EvalLane::Mark end;
  std::vector<GroundUpdate> updates;
  size_t body_matches = 0;
  size_t seed_probes = 0;
  IndexStats index;
  Status status = Status::Ok();
  bool threw = false;
};

/// Worker-side mirror of TpOperator::DeriveFromBindings: identical
/// control flow and intern sequence against the lane's overlay universe,
/// recording candidates instead of merging into shared state.
Status WorkerDeriveFromBindings(const Rule& rule, const Bindings& bindings,
                                EvalLane& lane, const TpStratumState& state,
                                LaneTaskOutput& out) {
  ++out.body_matches;
  Vid v = ResolveVid(rule.head.version, bindings, lane.versions);
  if (!v.valid()) {
    return Status::Internal(rule.DisplayName() +
                            ": unbound head version after matching");
  }
  auto derive = [&](GroundUpdate&& update) {
    // Pre-drop: an update already in the frozen T¹ would be a !fresh
    // no-op at the merge. T¹ entries only hold ids below the lane's base
    // counts, so the membership probe is exact even for candidates
    // carrying lane-fresh ids (those can never be members). Dropping it
    // here also skips the target intern below, exactly as the serial
    // derive skips Child for a non-fresh update.
    if (state.t1.count(update) != 0) return;
    // Target intern, mirroring the serial derive's Child call on a fresh
    // insert so the overlay log replays to the serial id sequence. When
    // the candidate turns out to be a cross-lane duplicate at the merge,
    // the earlier task replays first and this entry re-interns as a
    // value-keyed hit — no out-of-order fresh id.
    lane.versions.Child(update.version, update.kind);
    out.updates.push_back(std::move(update));
  };

  if (rule.head.delete_all) {
    Vid vstar = lane.base.LatestExistingStage(v);
    if (!vstar.valid()) return Status::Ok();
    const VersionState* vstate = lane.base.StateOf(vstar);
    if (vstate == nullptr) return Status::Ok();
    for (const auto& [method, apps] : vstate->methods()) {
      if (method == lane.base.exists_method()) continue;
      for (const GroundApp& app : apps) {
        GroundUpdate update;
        update.kind = UpdateKind::kDelete;
        update.version = v;
        update.method = method;
        update.app = app;
        derive(std::move(update));
      }
    }
    return Status::Ok();
  }

  GroundUpdate update;
  update.kind = rule.head.kind;
  update.version = v;
  update.method = rule.head.app.method;
  update.app = ResolveApp(rule.head.app, bindings);
  if (rule.head.kind == UpdateKind::kModify) {
    update.new_result = rule.head.new_result.is_var
                            ? bindings[rule.head.new_result.var.value]
                            : rule.head.new_result.oid;
  }
  if (rule.head.kind != UpdateKind::kInsert) {
    Vid vstar = lane.base.LatestExistingStage(v);
    if (!vstar.valid() ||
        !lane.base.ContainsApp(vstar, update.method, update.app)) {
      return Status::Ok();
    }
  }
  derive(std::move(update));
  return Status::Ok();
}

/// One merge step in the serial task order: bookkeeping the serial
/// derivation would have done between the previous task and this one,
/// plus the task's recorded output.
struct MergeSource {
  LaneTaskOutput* out = nullptr;
  const Rule* rule = nullptr;
  size_t pre_skipped = 0;  // seed_pairs_skipped owed before this task
  bool residual = false;
};

/// Replays the lanes' overlay logs and recorded candidates through the
/// serial derivation bookkeeping, in task order. Returns the first task
/// error in serial position (updates recorded before the error are
/// merged, later tasks' are not — matching serial's stop-on-error
/// prefix).
Status MergeLaneOutputs(const std::vector<MergeSource>& sources,
                        const std::vector<std::unique_ptr<EvalLane>>& lanes,
                        SymbolTable& symbols, VersionTable& versions,
                        TpStratumState& state, TpRoundStats& stats,
                        TraceSink* trace) {
  for (const MergeSource& src : sources) {
    stats.seed_pairs_skipped += src.pre_skipped;
    if (src.residual) ++stats.residual_rules;
    EvalLane& lane = *lanes[src.out->lane];
    lane.ReplayTo(src.out->end, symbols, versions);
    for (GroundUpdate& rec : src.out->updates) {
      GroundUpdate update = lane.MapUpdate(std::move(rec));
      auto [it, fresh] = state.t1.insert(std::move(update));
      if (fresh) {
        ++stats.fresh_updates;
        const GroundUpdate* u = &*it;
        Vid target = versions.Child(u->version, u->kind);
        TpStratumState::TargetUpdates& tu = state.by_target[target];
        if (tu.updates.size() == tu.applied) state.dirty.push_back(target);
        tu.updates.push_back(u);
        if (trace != nullptr) trace->OnUpdateDerived(*src.rule, *u);
      }
    }
    stats.body_matches += src.out->body_matches;
    stats.seed_probes += src.out->seed_probes;
    stats.index.index_probes += src.out->index.index_probes;
    stats.index.index_hits += src.out->index.index_hits;
    stats.index.indexed_scan_avoided_facts +=
        src.out->index.indexed_scan_avoided_facts;
    VERSO_RETURN_IF_ERROR(src.out->status);
  }
  return Status::Ok();
}

std::vector<std::unique_ptr<EvalLane>> MakeLanes(int count,
                                                 const SymbolTable& symbols,
                                                 const VersionTable& versions,
                                                 const ObjectBase& base) {
  std::vector<std::unique_ptr<EvalLane>> lanes;
  lanes.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    lanes.push_back(std::make_unique<EvalLane>(symbols, versions, base));
  }
  return lanes;
}

}  // namespace

Status TpOperator::DeriveFromBindings(const Rule& rule,
                                      const Bindings& bindings,
                                      const ObjectBase& base,
                                      TpStratumState& state,
                                      TpRoundStats& stats, TraceSink* trace) {
  ++stats.body_matches;
  Vid v = ResolveVid(rule.head.version, bindings, versions_);
  if (!v.valid()) {
    return Status::Internal(rule.DisplayName() +
                            ": unbound head version after matching");
  }
  auto derive = [&](GroundUpdate&& update) {
    auto [it, fresh] = state.t1.insert(std::move(update));
    if (!fresh) return;
    ++stats.fresh_updates;
    const GroundUpdate* u = &*it;
    Vid target = versions_.Child(u->version, u->kind);
    TpStratumState::TargetUpdates& tu = state.by_target[target];
    if (tu.updates.size() == tu.applied) state.dirty.push_back(target);
    tu.updates.push_back(u);
    if (trace != nullptr) trace->OnUpdateDerived(rule, *u);
  };

  if (rule.head.delete_all) {
    // del[V].* expands to one delete per method-application of v*
    // (the system method `exists` is never deletable).
    Vid vstar = base.LatestExistingStage(v);
    if (!vstar.valid()) return Status::Ok();
    const VersionState* vstate = base.StateOf(vstar);
    if (vstate == nullptr) return Status::Ok();
    for (const auto& [method, apps] : vstate->methods()) {
      if (method == base.exists_method()) continue;
      for (const GroundApp& app : apps) {
        GroundUpdate update;
        update.kind = UpdateKind::kDelete;
        update.version = v;
        update.method = method;
        update.app = app;
        derive(std::move(update));
      }
    }
    return Status::Ok();
  }

  GroundUpdate update;
  update.kind = rule.head.kind;
  update.version = v;
  update.method = rule.head.app.method;
  update.app = ResolveApp(rule.head.app, bindings);
  if (rule.head.kind == UpdateKind::kModify) {
    update.new_result = rule.head.new_result.is_var
                            ? bindings[rule.head.new_result.var.value]
                            : rule.head.new_result.oid;
  }

  // Head truth (Section 3): an insert is always true; a delete or
  // modify requires the old application to hold in v*'s state.
  if (rule.head.kind != UpdateKind::kInsert) {
    Vid vstar = base.LatestExistingStage(v);
    if (!vstar.valid() || !base.ContainsApp(vstar, update.method, update.app)) {
      return Status::Ok();
    }
  }
  derive(std::move(update));
  return Status::Ok();
}

Status TpOperator::DeriveFull(const Program& program,
                              const std::vector<uint32_t>& rule_indices,
                              const ObjectBase& base, TpStratumState& state,
                              TpRoundStats& stats, TraceSink* trace) {
  MatchContext ctx{symbols_, versions_, base, &stats.index};
  for (uint32_t rule_index : rule_indices) {
    const Rule& rule = program.rules[rule_index];
    Status status = ForEachBodyMatch(
        rule, ctx, [&](const Bindings& bindings) -> Status {
          return DeriveFromBindings(rule, bindings, base, state, stats, trace);
        });
    VERSO_RETURN_IF_ERROR(status);
  }
  return Status::Ok();
}

Status TpOperator::DeriveSeeded(const Program& program,
                                const std::vector<uint32_t>& rule_indices,
                                const ObjectBase& base, const DeltaLog& delta,
                                TpStratumState& state, TpRoundStats& stats,
                                TraceSink* trace) {
  MatchContext ctx{symbols_, versions_, base, &stats.index};
  std::unordered_set<uint32_t> touched_methods;
  size_t added_total = 0;
  for (const DeltaFact& fact : delta) {
    touched_methods.insert(fact.method.value);
    if (fact.added) ++added_total;
  }
  // Frontier index: probing per (seed literal, delta fact) pair is
  // quadratic in wide deltas; grouping the added facts by (method, shape)
  // jumps straight to the facts a literal can possibly unify with.
  DeltaIndex index;
  index.Build(delta, versions_);

  Bindings seed;
  for (uint32_t rule_index : rule_indices) {
    const Rule& rule = program.rules[rule_index];
    auto sink = [&](const Bindings& bindings) -> Status {
      return DeriveFromBindings(rule, bindings, base, state, stats, trace);
    };
    if (rule.fully_seedable) {
      // Every way this rule can newly match goes through an added fact at
      // one of its membership literals.
      for (uint32_t li : rule.seed_literals) {
        MethodId method;
        VidShape shape;
        if (!SeedKeyForLiteral(rule, li, versions_, &method, &shape)) {
          continue;
        }
        const std::vector<const DeltaFact*>* bucket =
            index.Added(method, shape);
        if (bucket == nullptr) {
          stats.seed_pairs_skipped += added_total;
          continue;
        }
        stats.seed_pairs_skipped += added_total - bucket->size();
        for (const DeltaFact* fact : *bucket) {
          if (!SeedBindingsFromDelta(rule, li, *fact, versions_, seed)) {
            continue;
          }
          ++stats.seed_probes;
          VERSO_RETURN_IF_ERROR(ForEachBodyMatchFrom(
              rule, ctx, seed, static_cast<int>(li), sink));
        }
      }
      continue;
    }
    // Residual rule: full re-match, but only when the delta could affect
    // it (a changed fact of a relevant method; delete-all heads react to
    // everything).
    bool relevant = rule.rerun_on_any_delta;
    for (size_t i = 0; !relevant && i < rule.relevant_methods.size(); ++i) {
      relevant = touched_methods.count(rule.relevant_methods[i].value) != 0;
    }
    if (!relevant) continue;
    ++stats.residual_rules;
    VERSO_RETURN_IF_ERROR(ForEachBodyMatch(rule, ctx, sink));
  }
  return Status::Ok();
}

Status TpOperator::DeriveFullParallel(const Program& program,
                                      const std::vector<uint32_t>& rule_indices,
                                      const ObjectBase& base, int lanes,
                                      TpStratumState& state,
                                      TpRoundStats& stats, TraceSink* trace,
                                      ParallelTelemetry& telemetry) {
  const size_t task_count = rule_indices.size();
  if (task_count == 0) return Status::Ok();
  const int lane_count =
      static_cast<int>(std::min<size_t>(static_cast<size_t>(lanes),
                                        task_count));
  std::vector<std::unique_ptr<EvalLane>> eval_lanes =
      MakeLanes(lane_count, symbols_, versions_, base);
  std::vector<LaneTaskOutput> outputs(task_count);

  RunTasksOnLanes(
      lane_count, task_count,
      [&](int lane_index, size_t task) {
        LaneTaskOutput& out = outputs[task];
        out.lane = lane_index;
        EvalLane& lane = *eval_lanes[lane_index];
        try {
          const Rule& rule = program.rules[rule_indices[task]];
          MatchContext ctx{lane.symbols, lane.versions, lane.base,
                           &out.index};
          out.status = ForEachBodyMatch(
              rule, ctx, [&](const Bindings& bindings) -> Status {
                return WorkerDeriveFromBindings(rule, bindings, lane, state,
                                                out);
              });
        } catch (...) {
          out.threw = true;
        }
        out.end = lane.mark();
      },
      telemetry);

  for (const LaneTaskOutput& out : outputs) {
    if (out.threw) {
      // No lane touched shared state: discard everything and rerun the
      // round serially from the same inputs.
      ++telemetry.fallback_rounds;
      return DeriveFull(program, rule_indices, base, state, stats, trace);
    }
  }
  ++telemetry.parallel_rounds;

  std::vector<MergeSource> sources(task_count);
  for (size_t i = 0; i < task_count; ++i) {
    sources[i].out = &outputs[i];
    sources[i].rule = &program.rules[rule_indices[i]];
  }
  return MergeLaneOutputs(sources, eval_lanes, symbols_, versions_, state,
                          stats, trace);
}

Status TpOperator::DeriveSeededParallel(
    const Program& program, const std::vector<uint32_t>& rule_indices,
    const ObjectBase& base, const DeltaLog& delta, int lanes,
    TpStratumState& state, TpRoundStats& stats, TraceSink* trace,
    ParallelTelemetry& telemetry) {
  // Caller-side bookkeeping, identical to DeriveSeeded's preamble.
  std::unordered_set<uint32_t> touched_methods;
  size_t added_total = 0;
  for (const DeltaFact& fact : delta) {
    touched_methods.insert(fact.method.value);
    if (fact.added) ++added_total;
  }
  DeltaIndex index;
  index.Build(delta, versions_);

  // Partition the serial iteration into tasks: chunks of each seed
  // bucket, and whole residual rules. seed_pairs_skipped increments that
  // serial interleaves between probes attach to the next task so the
  // stats stay exact even on error prefixes.
  struct TaskSpec {
    const Rule* rule = nullptr;
    uint32_t literal = 0;
    const std::vector<const DeltaFact*>* bucket = nullptr;
    size_t begin = 0;
    size_t end = 0;
    size_t pre_skipped = 0;
    bool residual = false;
  };
  std::vector<TaskSpec> specs;
  size_t pending_skipped = 0;
  for (uint32_t rule_index : rule_indices) {
    const Rule& rule = program.rules[rule_index];
    if (rule.fully_seedable) {
      for (uint32_t li : rule.seed_literals) {
        MethodId method;
        VidShape shape;
        if (!SeedKeyForLiteral(rule, li, versions_, &method, &shape)) {
          continue;
        }
        const std::vector<const DeltaFact*>* bucket =
            index.Added(method, shape);
        if (bucket == nullptr) {
          pending_skipped += added_total;
          continue;
        }
        pending_skipped += added_total - bucket->size();
        const size_t chunk = std::max<size_t>(
            1, bucket->size() / (static_cast<size_t>(lanes) * 4));
        for (size_t b = 0; b < bucket->size(); b += chunk) {
          TaskSpec spec;
          spec.rule = &rule;
          spec.literal = li;
          spec.bucket = bucket;
          spec.begin = b;
          spec.end = std::min(bucket->size(), b + chunk);
          spec.pre_skipped = pending_skipped;
          pending_skipped = 0;
          specs.push_back(spec);
        }
      }
      continue;
    }
    bool relevant = rule.rerun_on_any_delta;
    for (size_t i = 0; !relevant && i < rule.relevant_methods.size(); ++i) {
      relevant = touched_methods.count(rule.relevant_methods[i].value) != 0;
    }
    if (!relevant) continue;
    TaskSpec spec;
    spec.rule = &rule;
    spec.residual = true;
    spec.pre_skipped = pending_skipped;
    pending_skipped = 0;
    specs.push_back(spec);
  }
  if (specs.empty()) {
    stats.seed_pairs_skipped += pending_skipped;
    return Status::Ok();
  }

  const int lane_count = static_cast<int>(
      std::min<size_t>(static_cast<size_t>(lanes), specs.size()));
  std::vector<std::unique_ptr<EvalLane>> eval_lanes =
      MakeLanes(lane_count, symbols_, versions_, base);
  std::vector<LaneTaskOutput> outputs(specs.size());

  RunTasksOnLanes(
      lane_count, specs.size(),
      [&](int lane_index, size_t task) {
        const TaskSpec& spec = specs[task];
        LaneTaskOutput& out = outputs[task];
        out.lane = lane_index;
        EvalLane& lane = *eval_lanes[lane_index];
        try {
          const Rule& rule = *spec.rule;
          MatchContext ctx{lane.symbols, lane.versions, lane.base,
                           &out.index};
          auto sink = [&](const Bindings& bindings) -> Status {
            return WorkerDeriveFromBindings(rule, bindings, lane, state, out);
          };
          if (spec.residual) {
            out.status = ForEachBodyMatch(rule, ctx, sink);
          } else {
            Bindings seed;
            for (size_t i = spec.begin; i < spec.end; ++i) {
              const DeltaFact* fact = (*spec.bucket)[i];
              if (!SeedBindingsFromDelta(rule, spec.literal, *fact,
                                         lane.versions, seed)) {
                continue;
              }
              ++out.seed_probes;
              out.status = ForEachBodyMatchFrom(
                  rule, ctx, seed, static_cast<int>(spec.literal), sink);
              if (!out.status.ok()) break;
            }
          }
        } catch (...) {
          out.threw = true;
        }
        out.end = lane.mark();
      },
      telemetry);

  for (const LaneTaskOutput& out : outputs) {
    if (out.threw) {
      ++telemetry.fallback_rounds;
      return DeriveSeeded(program, rule_indices, base, delta, state, stats,
                          trace);
    }
  }
  ++telemetry.parallel_rounds;

  std::vector<MergeSource> sources(specs.size());
  for (size_t i = 0; i < specs.size(); ++i) {
    sources[i].out = &outputs[i];
    sources[i].rule = specs[i].rule;
    sources[i].pre_skipped = specs[i].pre_skipped;
    sources[i].residual = specs[i].residual;
  }
  Status merged = MergeLaneOutputs(sources, eval_lanes, symbols_, versions_,
                                   state, stats, trace);
  VERSO_RETURN_IF_ERROR(merged);
  // Skips owed after the last task (rules the delta never reached).
  stats.seed_pairs_skipped += pending_skipped;
  return Status::Ok();
}

Result<TpApplyResult> TpOperator::ApplyRound(TpStratumState& state,
                                             ObjectBase& base,
                                             DeltaLog& delta_out,
                                             TpRoundStats& stats,
                                             TraceSink* trace) {
  TpApplyResult result;
  std::sort(state.dirty.begin(), state.dirty.end());
  for (Vid target : state.dirty) {
    TpStratumState::TargetUpdates& tu = state.by_target[target];
    const size_t first_fresh = tu.applied;
    tu.applied = tu.updates.size();

    if (base.VersionExists(target)) {
      // Active target: its own state is the step-2 self-copy; edit it in
      // place. Phase 1: removals of the fresh deletes/modify-old-values.
      const size_t before = delta_out.size();
      const size_t first_erased = delta_out.size();
      for (size_t i = first_fresh; i < tu.updates.size(); ++i) {
        const GroundUpdate* u = tu.updates[i];
        if (u->kind == UpdateKind::kDelete || u->kind == UpdateKind::kModify) {
          if (base.Erase(target, u->method, u->app)) {
            delta_out.push_back({target, u->method, u->app, /*added=*/false});
          }
        }
      }
      const size_t last_erased = delta_out.size();
      // Shield: an older update's addition that a fresh removal just
      // erased must be re-added, because the per-round rebuild would
      // re-derive the older update and re-apply it (e.g. mod(a->b) in
      // round r, mod(b->c) in round r+1 yields {b,c}, not {c}). Older
      // updates stay derivable within a stratum: condition (a) of the
      // Section-4 stratification puts every writer of a subterm of a head
      // version strictly below, so the v* read by del/mod head truth is
      // fixed for the whole stratum.
      if (last_erased > first_erased && first_fresh > 0) {
        GroundApp addition;
        for (size_t i = 0; i < first_fresh; ++i) {
          const GroundUpdate* u = tu.updates[i];
          if (!UpdateAddition(*u, &addition)) continue;
          bool erased = false;
          for (size_t e = first_erased; !erased && e < last_erased; ++e) {
            erased = delta_out[e].method == u->method &&
                     delta_out[e].app == addition;
          }
          if (erased && base.Insert(target, u->method, addition)) {
            delta_out.push_back({target, u->method, addition, true});
          }
        }
      }
      // Phase 2: additions of the fresh inserts/modify-new-values.
      GroundApp addition;
      for (size_t i = first_fresh; i < tu.updates.size(); ++i) {
        const GroundUpdate* u = tu.updates[i];
        if (!UpdateAddition(*u, &addition)) continue;
        if (base.Insert(target, u->method, addition)) {
          delta_out.push_back({target, u->method, addition, true});
        }
      }
      if (delta_out.size() > before) ++stats.states_changed;
      continue;
    }

    // Inactive target: steps 2 and 3 on a detached copy.
    bool copied_from_prior = false;
    VersionState vstate = PrepareInactiveState(target, base, versions_, trace,
                                               &copied_from_prior);
    stats.copied_facts += vstate.fact_count();
    ApplyUpdatesToState(vstate, tu.updates, first_fresh, tu.updates.size());

    const bool was_state = base.StateOf(target) != nullptr;
    if (base.ReplaceVersion(target, std::move(vstate), &delta_out)) {
      ++stats.states_changed;
    }
    if (!was_state && base.StateOf(target) != nullptr) {
      result.materialized.push_back(target);
    }
  }
  state.dirty.clear();
  return result;
}

Result<TpResult> TpOperator::Apply(const Program& program,
                                   const std::vector<uint32_t>& rule_indices,
                                   const ObjectBase& base, TraceSink* trace) {
  TpResult result;
  TpStratumState state;
  TpRoundStats rstats;
  VERSO_RETURN_IF_ERROR(
      DeriveFull(program, rule_indices, base, state, rstats, trace));
  result.t1_updates = state.t1.size();

  // ---- Steps 2 and 3 per relevant target.
  for (auto& [target, tu] : state.by_target) {
    VersionState vstate;
    if (base.VersionExists(target)) {
      // Active: copy the target's own current state.
      vstate = *base.StateOf(target);
      ++result.t2_copies_from_self;
    } else {
      bool copied_from_prior = false;
      vstate = PrepareInactiveState(target, base, versions_, trace,
                                    &copied_from_prior);
      if (copied_from_prior) {
        ++result.t2_copies_from_prior;
      } else {
        ++result.fresh_objects;
      }
    }
    result.t2_copied_facts += vstate.fact_count();
    ApplyUpdatesToState(vstate, tu.updates, 0, tu.updates.size());
    result.new_states.emplace(target, std::move(vstate));
  }
  return result;
}

}  // namespace verso
