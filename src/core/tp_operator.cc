#include "core/tp_operator.h"

#include <unordered_set>

namespace verso {

Result<TpResult> TpOperator::Apply(const Program& program,
                                   const std::vector<uint32_t>& rule_indices,
                                   const ObjectBase& base, TraceSink* trace) {
  TpResult result;
  MatchContext ctx{symbols_, versions_, base};

  // ---- Step 1: T¹_P(I) — the set of ground updates to perform.
  std::unordered_set<GroundUpdate, GroundUpdateHash> t1;
  // Deterministic application order: collect per target below via std::map.
  for (uint32_t rule_index : rule_indices) {
    const Rule& rule = program.rules[rule_index];
    Status status = ForEachBodyMatch(
        rule, ctx, [&](const Bindings& bindings) -> Status {
          Vid v = ResolveVid(rule.head.version, bindings, versions_);
          if (!v.valid()) {
            return Status::Internal(rule.DisplayName() +
                                    ": unbound head version after matching");
          }
          if (rule.head.delete_all) {
            // del[V].* expands to one delete per method-application of v*
            // (the system method `exists` is never deletable).
            Vid vstar = base.LatestExistingStage(v);
            if (!vstar.valid()) return Status::Ok();
            const VersionState* state = base.StateOf(vstar);
            if (state == nullptr) return Status::Ok();
            for (const auto& [method, apps] : state->methods()) {
              if (method == base.exists_method()) continue;
              for (const GroundApp& app : apps) {
                GroundUpdate update;
                update.kind = UpdateKind::kDelete;
                update.version = v;
                update.method = method;
                update.app = app;
                if (t1.insert(update).second && trace != nullptr) {
                  trace->OnUpdateDerived(rule, update);
                }
              }
            }
            return Status::Ok();
          }

          GroundUpdate update;
          update.kind = rule.head.kind;
          update.version = v;
          update.method = rule.head.app.method;
          update.app = ResolveApp(rule.head.app, bindings);
          if (rule.head.kind == UpdateKind::kModify) {
            update.new_result = rule.head.new_result.is_var
                                    ? bindings[rule.head.new_result.var.value]
                                    : rule.head.new_result.oid;
          }

          // Head truth (Section 3): an insert is always true; a delete or
          // modify requires the old application to hold in v*'s state.
          if (rule.head.kind != UpdateKind::kInsert) {
            Vid vstar = base.LatestExistingStage(v);
            if (!vstar.valid() ||
                !base.Contains(vstar, update.method, update.app)) {
              return Status::Ok();
            }
          }
          if (t1.insert(update).second && trace != nullptr) {
            trace->OnUpdateDerived(rule, update);
          }
          return Status::Ok();
        });
    VERSO_RETURN_IF_ERROR(status);
  }
  result.t1_updates = t1.size();

  // Group T¹ by target version α(v). A target receives updates of exactly
  // one kind (its outermost functor).
  std::map<Vid, std::vector<const GroundUpdate*>> by_target;
  for (const GroundUpdate& update : t1) {
    Vid target = versions_.Child(update.version, update.kind);
    by_target[target].push_back(&update);
  }

  // ---- Steps 2 and 3 per relevant target.
  for (auto& [target, updates] : by_target) {
    VersionState state;
    if (base.VersionExists(target)) {
      // Active: copy the target's own current state.
      state = *base.StateOf(target);
      ++result.t2_copies_from_self;
    } else {
      Vid v = versions_.parent(target);
      Vid vstar = base.LatestExistingStage(v);
      if (vstar.valid()) {
        state = *base.StateOf(vstar);
        ++result.t2_copies_from_prior;
        if (trace != nullptr) {
          trace->OnVersionMaterialized(target, vstar, state.fact_count());
        }
      } else {
        // Fresh object (OID absent from ob): start from the empty state
        // and materialize it with its exists-fact. Documented extension;
        // only inserts can reach this branch (head truth of del/mod
        // requires a materialized stage).
        GroundApp exists_app;
        exists_app.result = versions_.root(target);
        state.Insert(base.exists_method(), std::move(exists_app));
        ++result.fresh_objects;
        if (trace != nullptr) {
          trace->OnVersionMaterialized(target, Vid(), 0);
        }
      }
    }
    result.t2_copied_facts += state.fact_count();

    // Step 3, phase 1: removals (deleted applications and the old values
    // of modifies) — all of them before any addition, so simultaneous
    // updates like mod(a->b) + mod(b->c) yield {b,c} and not {c}.
    for (const GroundUpdate* update : updates) {
      if (update->kind == UpdateKind::kDelete ||
          update->kind == UpdateKind::kModify) {
        state.Erase(update->method, update->app);
      }
    }
    // Step 3, phase 2: additions (inserts and the new values of modifies).
    for (const GroundUpdate* update : updates) {
      if (update->kind == UpdateKind::kInsert) {
        state.Insert(update->method, update->app);
      } else if (update->kind == UpdateKind::kModify) {
        GroundApp new_app = update->app;
        new_app.result = update->new_result;
        state.Insert(update->method, std::move(new_app));
      }
    }
    result.new_states.emplace(target, std::move(state));
  }
  return result;
}

}  // namespace verso
