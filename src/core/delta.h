#ifndef VERSO_CORE_DELTA_H_
#define VERSO_CORE_DELTA_H_

#include <vector>

#include "core/expr.h"
#include "core/ids.h"
#include "core/term.h"

namespace verso {

struct Rule;
class VersionTable;

/// One element of a semi-naive delta: a fact-level change to the object
/// base observed while installing one round of T_P (or one round of the
/// query layer's derived-method fixpoint). `added` distinguishes
/// insertions from erasures; both matter for deciding which rules a delta
/// can affect, but only added facts can seed new body matches of positive
/// literals.
struct DeltaFact {
  Vid vid;
  MethodId method;
  GroundApp app;
  bool added = true;
};

/// The fact-level changes of one fixpoint round, in application order.
using DeltaLog = std::vector<DeltaFact>;

/// Tries to bind the rule body literal at `literal_index` — a positive
/// version-term or a positive body ins-update-term, both of which are
/// plain membership tests — against an added delta fact, producing the
/// seed `bindings` for ForEachBodyMatchFrom. Returns false when the
/// literal is not seedable or the fact's method, VID shape, or constants
/// do not match the literal's pattern. On success every variable the
/// literal would bind is bound in `bindings` (all other slots invalid).
bool SeedBindingsFromDelta(const Rule& rule, uint32_t literal_index,
                           const DeltaFact& fact, VersionTable& versions,
                           Bindings& bindings);

}  // namespace verso

#endif  // VERSO_CORE_DELTA_H_
