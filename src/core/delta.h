#ifndef VERSO_CORE_DELTA_H_
#define VERSO_CORE_DELTA_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/expr.h"
#include "core/ids.h"
#include "core/term.h"
#include "core/version_table.h"

namespace verso {

struct Rule;

/// One element of a semi-naive delta: a fact-level change to the object
/// base observed while installing one round of T_P (or one round of the
/// query layer's derived-method fixpoint). `added` distinguishes
/// insertions from erasures; both matter for deciding which rules a delta
/// can affect, but only added facts can seed new body matches of positive
/// literals.
struct DeltaFact {
  Vid vid;
  MethodId method;
  GroundApp app;
  bool added = true;
};

/// The fact-level changes of one fixpoint round, in application order.
using DeltaLog = std::vector<DeltaFact>;

/// Tries to bind the rule body literal at `literal_index` — a positive
/// version-term or a positive body ins-update-term, both of which are
/// plain membership tests — against an added delta fact, producing the
/// seed `bindings` for ForEachBodyMatchFrom. Returns false when the
/// literal is not seedable or the fact's method, VID shape, or constants
/// do not match the literal's pattern. On success every variable the
/// literal would bind is bound in `bindings` (all other slots invalid).
bool SeedBindingsFromDelta(const Rule& rule, uint32_t literal_index,
                           const DeltaFact& fact, VersionTable& versions,
                           Bindings& bindings);

/// Computes the (method, shape) a delta fact must carry to unify with the
/// membership pattern of body literal `literal_index` — a version-term or
/// an ins-update-term. The literal's negation flag is ignored: positive
/// literals are seeded by added facts, while the view maintainer also
/// seeds *negated* version-literals (a removal can create matches through
/// negation, an insertion can destroy them). Returns false for built-ins
/// and del/mod update literals, which have no membership pattern; the
/// shape is interned into `versions`.
bool SeedKeyForLiteral(const Rule& rule, uint32_t literal_index,
                       VersionTable& versions, MethodId* method,
                       VidShape* shape);

/// Pattern half of SeedBindingsFromDelta with the negation check lifted:
/// unifies `fact` with the membership pattern of the literal regardless of
/// its negation flag. Used by the views subsystem to seed maintenance
/// through negated body literals.
bool UnifyLiteralPattern(const Rule& rule, uint32_t literal_index,
                         const DeltaFact& fact, VersionTable& versions,
                         Bindings& bindings);

/// Unifies a ground fact with the rule's *head* (version-term and
/// application pattern), producing initial bindings for a goal-directed
/// body match (ForEachBodyMatchFrom with no literal skipped). This is the
/// rederivation probe of DRed view maintenance: "does `fact` still have a
/// derivation through this rule?". Returns false when the fact cannot be
/// this rule's head instance.
bool SeedBindingsFromHead(const Rule& rule, const DeltaFact& fact,
                          VersionTable& versions, Bindings& bindings);

/// Index of one round's delta by (method, VID shape): DeriveSeeded and the
/// query fixpoint probe only the added facts that can possibly unify with
/// a given seed literal, skipping the quadratic (seed literal, delta fact)
/// sweep entirely for non-matching pairs. Holds pointers into the indexed
/// DeltaLog, which must outlive the index.
class DeltaIndex {
 public:
  /// Rebuilds the index over the added facts of `delta`.
  void Build(const DeltaLog& delta, const VersionTable& versions);

  /// Added facts carrying exactly (method, shape), or nullptr.
  const std::vector<const DeltaFact*>* Added(MethodId method,
                                             VidShape shape) const {
    auto it = added_.find(Key(method, shape));
    return it == added_.end() ? nullptr : &it->second;
  }

  bool empty() const { return added_.empty(); }

 private:
  static uint64_t Key(MethodId method, VidShape shape) {
    return (static_cast<uint64_t>(method.value) << 32) | shape.value;
  }

  std::unordered_map<uint64_t, std::vector<const DeltaFact*>> added_;
};

}  // namespace verso

#endif  // VERSO_CORE_DELTA_H_
