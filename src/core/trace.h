#ifndef VERSO_CORE_TRACE_H_
#define VERSO_CORE_TRACE_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "core/rule.h"
#include "core/symbol_table.h"
#include "core/update.h"
#include "core/version_table.h"
#include "util/status.h"

namespace verso {

/// Observer interface over the update-process. The evaluator invokes the
/// hooks during bottom-up evaluation; sinks are used for Figure-2 style
/// process traces, statistics, and tests asserting process properties.
/// All hooks default to no-ops.
class TraceSink {
 public:
  virtual ~TraceSink() = default;

  virtual void OnStratumBegin(uint32_t stratum, size_t rule_count) {
    (void)stratum;
    (void)rule_count;
  }
  virtual void OnRoundBegin(uint32_t stratum, uint32_t round) {
    (void)stratum;
    (void)round;
  }
  /// A delta round (any round >= 1 of a stratum's fixpoint, in naive
  /// mode too) finished: `delta_facts` fact-level changes were consumed,
  /// `seed_probes` delta-seeded partial matches were launched, and
  /// `residual_rules` rules needed a full re-match (in naive mode every
  /// rule is a residual run and seed_probes is 0). Emitted identically
  /// for single Execute commits and for each ExecuteBatch member.
  virtual void OnDeltaRound(uint32_t stratum, uint32_t round,
                            size_t delta_facts, size_t seed_probes,
                            size_t residual_rules) {
    (void)stratum;
    (void)round;
    (void)delta_facts;
    (void)seed_probes;
    (void)residual_rules;
  }
  /// A rule instance contributed `update` to T¹ in the current round.
  virtual void OnUpdateDerived(const Rule& rule, const GroundUpdate& update) {
    (void)rule;
    (void)update;
  }
  /// A version was materialized for the first time; `copied_from` is the
  /// stage whose state seeded it (invalid Vid for fresh objects).
  virtual void OnVersionMaterialized(Vid version, Vid copied_from,
                                     size_t copied_facts) {
    (void)version;
    (void)copied_from;
    (void)copied_facts;
  }
  /// A stratum reached its fixpoint having answered `probes` bound-result
  /// lookups through the (method, result) index: `hits` enumerated at
  /// least one fact and `avoided_facts` full-scan fact visits were
  /// skipped. Emitted before OnStratumFixpoint for every stratum —
  /// probes may be 0 — so per-commit coverage does not depend on the
  /// commit's shape (and is identical for ExecuteBatch members).
  virtual void OnIndexUse(uint32_t stratum, size_t probes, size_t hits,
                          size_t avoided_facts) {
    (void)stratum;
    (void)probes;
    (void)hits;
    (void)avoided_facts;
  }
  virtual void OnStratumFixpoint(uint32_t stratum, uint32_t rounds) {
    (void)stratum;
    (void)rounds;
  }
  /// A materialized view absorbed one committed delta: `delta_facts`
  /// base-level changes were consumed, `added`/`removed` view facts were
  /// installed/retracted, and DRed overdeleted/rederived that many facts
  /// in recursive strata (both 0 for purely counting-maintained views).
  virtual void OnViewMaintenance(std::string_view view, size_t delta_facts,
                                 size_t added, size_t removed,
                                 size_t overdeleted, size_t rederived) {
    (void)view;
    (void)delta_facts;
    (void)added;
    (void)removed;
    (void)overdeleted;
    (void)rederived;
  }
  /// A stratum's fixpoint used the parallel derivation path:
  /// `parallel_rounds` rounds fanned out and merged, dispatching
  /// `worker_tasks` work items in total; `fallback_rounds` rounds were
  /// rerun serially after a lane threw. `queue_wait_us` holds one sample
  /// per dispatched pool job (time from enqueue to execution start).
  /// Emitted after OnStratumFixpoint, and only for strata where at least
  /// one round actually took the parallel path — serial evaluation emits
  /// nothing, keeping all other event streams bit-identical between
  /// serial and parallel runs. Deliberately not recorded by
  /// RecordingTrace/StreamTrace (their output must not depend on
  /// num_threads); the metrics bridge is the intended consumer.
  virtual void OnParallelEval(uint32_t stratum, size_t parallel_rounds,
                              size_t worker_tasks, size_t fallback_rounds,
                              const std::vector<uint64_t>& queue_wait_us) {
    (void)stratum;
    (void)parallel_rounds;
    (void)worker_tasks;
    (void)fallback_rounds;
    (void)queue_wait_us;
  }
  /// The storage layer hit an I/O fault on operation `op` ("wal-append",
  /// "checkpoint-snapshot", "checkpoint-truncate", ...). `attempt` counts
  /// retries already spent on the operation (0 = first try); `degraded`
  /// is true when this fault tipped the database into read-only degraded
  /// mode. Benches and workloads report fault behavior through this hook
  /// the same way they report index hits.
  virtual void OnStorageFault(std::string_view op, const Status& status,
                              uint32_t attempt, bool degraded) {
    (void)op;
    (void)status;
    (void)attempt;
    (void)degraded;
  }
};

/// Records a readable line per event; handy in tests and examples.
class RecordingTrace : public TraceSink {
 public:
  RecordingTrace(const SymbolTable& symbols, const VersionTable& versions)
      : symbols_(symbols), versions_(versions) {}

  void OnStratumBegin(uint32_t stratum, size_t rule_count) override;
  void OnRoundBegin(uint32_t stratum, uint32_t round) override;
  void OnDeltaRound(uint32_t stratum, uint32_t round, size_t delta_facts,
                    size_t seed_probes, size_t residual_rules) override;
  void OnUpdateDerived(const Rule& rule, const GroundUpdate& update) override;
  void OnVersionMaterialized(Vid version, Vid copied_from,
                             size_t copied_facts) override;
  void OnIndexUse(uint32_t stratum, size_t probes, size_t hits,
                  size_t avoided_facts) override;
  void OnStratumFixpoint(uint32_t stratum, uint32_t rounds) override;
  void OnViewMaintenance(std::string_view view, size_t delta_facts,
                         size_t added, size_t removed, size_t overdeleted,
                         size_t rederived) override;
  void OnStorageFault(std::string_view op, const Status& status,
                      uint32_t attempt, bool degraded) override;

  const std::vector<std::string>& lines() const { return lines_; }
  /// All lines joined with newlines.
  std::string ToString() const;

 private:
  const SymbolTable& symbols_;
  const VersionTable& versions_;
  std::vector<std::string> lines_;
};

/// Streams events to an ostream as they happen (used by the CLI's
/// --trace flag and the example binaries).
class StreamTrace : public TraceSink {
 public:
  StreamTrace(std::ostream& out, const SymbolTable& symbols,
              const VersionTable& versions)
      : out_(out), symbols_(symbols), versions_(versions) {}

  void OnStratumBegin(uint32_t stratum, size_t rule_count) override;
  void OnRoundBegin(uint32_t stratum, uint32_t round) override;
  void OnDeltaRound(uint32_t stratum, uint32_t round, size_t delta_facts,
                    size_t seed_probes, size_t residual_rules) override;
  void OnUpdateDerived(const Rule& rule, const GroundUpdate& update) override;
  void OnVersionMaterialized(Vid version, Vid copied_from,
                             size_t copied_facts) override;
  void OnIndexUse(uint32_t stratum, size_t probes, size_t hits,
                  size_t avoided_facts) override;
  void OnStratumFixpoint(uint32_t stratum, uint32_t rounds) override;
  void OnViewMaintenance(std::string_view view, size_t delta_facts,
                         size_t added, size_t removed, size_t overdeleted,
                         size_t rederived) override;
  void OnStorageFault(std::string_view op, const Status& status,
                      uint32_t attempt, bool degraded) override;

 private:
  std::ostream& out_;
  const SymbolTable& symbols_;
  const VersionTable& versions_;
};

}  // namespace verso

#endif  // VERSO_CORE_TRACE_H_
