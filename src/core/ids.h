#ifndef VERSO_CORE_IDS_H_
#define VERSO_CORE_IDS_H_

#include <cstdint>
#include <functional>
#include <string_view>

#include "util/hash.h"

namespace verso {

/// Object identity (paper: elements of O). Values — numbers, strings — are
/// specific OIDs, exactly as in Section 2.1. Dense handle into SymbolTable.
struct Oid {
  uint32_t value = UINT32_MAX;

  constexpr Oid() = default;
  constexpr explicit Oid(uint32_t v) : value(v) {}
  constexpr bool valid() const { return value != UINT32_MAX; }
  friend constexpr bool operator==(Oid a, Oid b) { return a.value == b.value; }
  friend constexpr bool operator!=(Oid a, Oid b) { return a.value != b.value; }
  friend constexpr bool operator<(Oid a, Oid b) { return a.value < b.value; }
};

/// Method name handle (paper: elements of M).
struct MethodId {
  uint32_t value = UINT32_MAX;

  constexpr MethodId() = default;
  constexpr explicit MethodId(uint32_t v) : value(v) {}
  constexpr bool valid() const { return value != UINT32_MAX; }
  friend constexpr bool operator==(MethodId a, MethodId b) {
    return a.value == b.value;
  }
  friend constexpr bool operator!=(MethodId a, MethodId b) {
    return a.value != b.value;
  }
  friend constexpr bool operator<(MethodId a, MethodId b) {
    return a.value < b.value;
  }
};

/// Version identity (paper: elements of O_V). Dense handle into
/// VersionTable; depth-0 VIDs coincide with OIDs (O is a subset of O_V).
struct Vid {
  uint32_t value = UINT32_MAX;

  constexpr Vid() = default;
  constexpr explicit Vid(uint32_t v) : value(v) {}
  constexpr bool valid() const { return value != UINT32_MAX; }
  friend constexpr bool operator==(Vid a, Vid b) { return a.value == b.value; }
  friend constexpr bool operator!=(Vid a, Vid b) { return a.value != b.value; }
  friend constexpr bool operator<(Vid a, Vid b) { return a.value < b.value; }
};

/// Rule-local variable handle (paper: elements of V, quantified over O).
struct VarId {
  uint32_t value = UINT32_MAX;

  constexpr VarId() = default;
  constexpr explicit VarId(uint32_t v) : value(v) {}
  constexpr bool valid() const { return value != UINT32_MAX; }
  friend constexpr bool operator==(VarId a, VarId b) {
    return a.value == b.value;
  }
  friend constexpr bool operator!=(VarId a, VarId b) {
    return a.value != b.value;
  }
};

/// The function symbols F = {ins, del, mod} denoting update types.
enum class UpdateKind : uint8_t {
  kInsert = 0,
  kDelete = 1,
  kModify = 2,
};

/// "ins" / "del" / "mod" — exactly the paper's functor spelling.
constexpr std::string_view UpdateKindName(UpdateKind kind) {
  switch (kind) {
    case UpdateKind::kInsert:
      return "ins";
    case UpdateKind::kDelete:
      return "del";
    case UpdateKind::kModify:
      return "mod";
  }
  return "?";
}

}  // namespace verso

template <>
struct std::hash<verso::Oid> {
  size_t operator()(verso::Oid id) const {
    return std::hash<uint32_t>()(id.value);
  }
};
template <>
struct std::hash<verso::MethodId> {
  size_t operator()(verso::MethodId id) const {
    return std::hash<uint32_t>()(id.value);
  }
};
template <>
struct std::hash<verso::Vid> {
  size_t operator()(verso::Vid id) const {
    return std::hash<uint32_t>()(id.value);
  }
};

#endif  // VERSO_CORE_IDS_H_
