#ifndef VERSO_CORE_MATCH_H_
#define VERSO_CORE_MATCH_H_

#include <type_traits>
#include <vector>

#include "core/object_base.h"
#include "core/rule.h"
#include "core/symbol_table.h"
#include "core/version_table.h"
#include "util/result.h"

namespace verso {

/// Shared mutable context for matching: the symbol table interns numbers
/// produced by arithmetic, the version table interns VIDs resolved from
/// version-id-terms. The object base is read-only during matching.
/// `istats`, when set, accumulates the bound-result index probe counters
/// (ForEachAppWithResult) the enumeration performs.
struct MatchContext {
  SymbolTable& symbols;
  VersionTable& versions;
  const ObjectBase& base;
  IndexStats* istats = nullptr;
};

/// Resolves a version-id-term whose base is a constant or a bound
/// variable to a concrete (interned) VID. Returns an invalid Vid when the
/// base variable is unbound.
Vid ResolveVid(const VidTerm& term, const Bindings& bindings,
               VersionTable& versions);

/// Resolves a fully bound AppPattern to a ground application.
/// Precondition (guaranteed by safety analysis): every variable bound.
GroundApp ResolveApp(const AppPattern& app, const Bindings& bindings);

/// Evaluates the paper's truth definition (Section 3) for a ground
/// literal: version-terms by membership; body update-terms by the
/// ins/del/mod transition conditions; built-ins by evaluation. The
/// literal's negation flag is applied.
Result<bool> GroundLiteralTruth(const Rule& rule, const Literal& literal,
                                const Bindings& bindings, MatchContext& ctx);

namespace match_internal {

/// Recursive backtracking matcher for one rule body. Bindings use a trail
/// per choice point; trails are drawn from a per-depth scratch pool so
/// enumeration performs no per-candidate-fact allocation. The sink is a
/// template parameter so the per-match call inlines (no std::function
/// indirection on the hot path).
template <typename Sink>
class Matcher {
 public:
  Matcher(const Rule& rule, MatchContext& ctx, Sink& sink)
      : rule_(rule), ctx_(ctx), sink_(sink), scratch_(rule.body.size()) {
    bindings_.assign(rule.var_count(), Oid());
  }

  Status Run() { return Step(0); }

  /// Semi-naive entry: seed bindings and skip one already-matched literal.
  Status RunFrom(const Bindings& initial, int skip_literal) {
    bindings_ = initial;
    bindings_.resize(rule_.var_count(), Oid());
    skip_literal_ = skip_literal;
    return Step(0);
  }

 private:
  using Trail = std::vector<VarId>;

  /// Trails live per recursion depth: `version` backs the version-variable
  /// binding of the literal at this depth, `fact`/`extra` back the (up to
  /// two) application bindings tried per candidate fact. Reusing them
  /// across candidates at the same depth is safe because candidates are
  /// tried sequentially and deeper steps only touch deeper scratch slots.
  struct DepthScratch {
    Trail version;
    Trail fact;
    Trail extra;
  };

  const Rule& rule_;
  MatchContext& ctx_;
  Sink& sink_;
  Bindings bindings_;
  std::vector<DepthScratch> scratch_;
  int skip_literal_ = -1;

  /// Unifies an object-id-term with a ground OID, recording fresh bindings
  /// on the trail. Returns false on mismatch (trail untouched for the
  /// failed term itself; caller unwinds the whole trail).
  bool BindObj(const ObjTerm& term, Oid value, Trail* trail) {
    if (!term.is_var) return term.oid == value;
    Oid& slot = bindings_[term.var.value];
    if (slot.valid()) return slot == value;
    slot = value;
    trail->push_back(term.var);
    return true;
  }

  void Unwind(const Trail& trail) {
    for (VarId v : trail) bindings_[v.value] = Oid();
  }

  bool TryBindApp(const AppPattern& pattern, const GroundApp& fact,
                  Trail* trail) {
    if (pattern.args.size() != fact.args.size()) return false;
    for (size_t i = 0; i < pattern.args.size(); ++i) {
      if (!BindObj(pattern.args[i], fact.args[i], trail)) return false;
    }
    return BindObj(pattern.result, fact.result, trail);
  }

  /// True iff `term` denotes a ground OID at this point of the match —
  /// a constant, or a variable bound by an earlier literal. Ground
  /// result terms select the indexed enumeration path.
  bool GroundValue(const ObjTerm& term, Oid* out) const {
    if (!term.is_var) {
      *out = term.oid;
      return true;
    }
    Oid value = bindings_[term.var.value];
    if (!value.valid()) return false;
    *out = value;
    return true;
  }

  /// The one candidate-fact enumeration of the matcher: when
  /// `result_term` is ground at this point of the match, only the facts
  /// carrying that result are visited (ForEachAppWithResult, result
  /// index); otherwise the full sorted vector is (ForEachApp).
  template <typename Fn>
  Status ProbeApps(const VersionState& state, MethodId method,
                   const ObjTerm& result_term, Fn&& fn) {
    Oid result;
    if (GroundValue(result_term, &result)) {
      return state.ForEachAppWithResult(method, result, ctx_.istats,
                                        std::forward<Fn>(fn));
    }
    return state.ForEachApp(method, std::forward<Fn>(fn));
  }

  Status Step(size_t pos) {
    if (pos == rule_.execution_order.size()) return sink_(bindings_);
    if (static_cast<int>(rule_.execution_order[pos]) == skip_literal_) {
      return Step(pos + 1);
    }
    const Literal& lit = rule_.body[rule_.execution_order[pos]];
    switch (lit.kind) {
      case Literal::Kind::kBuiltin:
        return StepBuiltin(lit, pos);
      case Literal::Kind::kVersion:
        if (lit.negated) return StepGroundCheck(lit, pos);
        return MatchVersionPattern(lit.version.version,
                                   lit.version.app, pos);
      case Literal::Kind::kUpdate:
        if (lit.negated) return StepGroundCheck(lit, pos);
        switch (lit.update.kind) {
          case UpdateKind::kInsert:
            // Body truth of ins[V].m->r is exactly ins(V).m->r in I.
            return MatchVersionPattern(lit.update.TargetTerm(),
                                       lit.update.app, pos);
          case UpdateKind::kDelete:
            return MatchDelete(lit.update, pos);
          case UpdateKind::kModify:
            return MatchModify(lit.update, pos);
        }
    }
    return Status::Internal("corrupt literal");
  }

  /// Negated (or otherwise ground) literal: evaluate the paper's truth
  /// definition and continue on success.
  Status StepGroundCheck(const Literal& lit, size_t pos) {
    VERSO_ASSIGN_OR_RETURN(
        bool truth, GroundLiteralTruth(rule_, lit, bindings_, ctx_));
    if (!truth) return Status::Ok();
    return Step(pos + 1);
  }

  Status StepBuiltin(const Literal& lit, size_t pos) {
    const BuiltinAtom& b = lit.builtin;
    if (!lit.negated && b.op == CmpOp::kEq) {
      // Binding form `X = expr` / `expr = X`: bind the unbound side.
      VarId var;
      if (rule_.exprs.IsVarRef(b.lhs, &var) && !bindings_[var.value].valid()) {
        return BindEq(var, b.rhs, pos);
      }
      if (rule_.exprs.IsVarRef(b.rhs, &var) && !bindings_[var.value].valid()) {
        return BindEq(var, b.lhs, pos);
      }
    }
    VERSO_ASSIGN_OR_RETURN(
        Oid lhs, EvalExpr(rule_.exprs, b.lhs, bindings_, ctx_.symbols));
    VERSO_ASSIGN_OR_RETURN(
        Oid rhs, EvalExpr(rule_.exprs, b.rhs, bindings_, ctx_.symbols));
    bool truth = EvalCmp(b.op, lhs, rhs, ctx_.symbols);
    if (lit.negated) truth = !truth;
    if (!truth) return Status::Ok();
    return Step(pos + 1);
  }

  Status BindEq(VarId var, ExprId expr, size_t pos) {
    VERSO_ASSIGN_OR_RETURN(
        Oid value, EvalExpr(rule_.exprs, expr, bindings_, ctx_.symbols));
    bindings_[var.value] = value;
    Status status = Step(pos + 1);
    bindings_[var.value] = Oid();
    return status;
  }

  /// Enumerates facts `vid.m@args -> r` matching the pattern, where the
  /// version is given by `vterm`. Handles both the bound-base case (direct
  /// state lookup) and the unbound-base case (method index + shape filter).
  Status MatchVersionPattern(const VidTerm& vterm, const AppPattern& app,
                             size_t pos) {
    if (!vterm.base.is_var || bindings_[vterm.base.var.value].valid()) {
      Vid vid = ResolveVid(vterm, bindings_, ctx_.versions);
      return EnumerateApps(vid, app, pos);
    }
    const auto* candidates = ctx_.base.VidsWithMethod(app.method);
    if (candidates == nullptr) return Status::Ok();
    VidShape shape = ctx_.versions.InternShape(vterm.ops);
    Trail& trail = scratch_[pos].version;
    for (const auto& [vid, count] : *candidates) {
      (void)count;
      if (ctx_.versions.shape(vid) != shape) continue;
      trail.clear();
      if (BindObj(vterm.base, ctx_.versions.root(vid), &trail)) {
        Status status = EnumerateApps(vid, app, pos);
        if (!status.ok()) return status;
      }
      Unwind(trail);
    }
    return Status::Ok();
  }

  /// Enumerates candidate facts of (vid, app.method) through the access
  /// API: when the pattern's result term is ground at this point of the
  /// match, only the facts carrying that result are visited (result
  /// index); otherwise the full sorted vector is.
  Status EnumerateApps(Vid vid, const AppPattern& app, size_t pos) {
    const VersionState* state = ctx_.base.StateOf(vid);
    if (state == nullptr) return Status::Ok();
    Trail& trail = scratch_[pos].fact;
    auto try_fact = [&](const GroundApp& fact) -> Status {
      trail.clear();
      if (TryBindApp(app, fact, &trail)) {
        Status status = Step(pos + 1);
        if (!status.ok()) return status;
      }
      Unwind(trail);
      return Status::Ok();
    };
    return ProbeApps(*state, app.method, app.result, try_fact);
  }

  /// Positive body del[V].m->R: true for facts of v* that are absent from
  /// the materialized version del(V) (paper Section 3). Enumeration of
  /// v*'s facts goes through the access API, so a ground result term
  /// probes the result index instead of scanning the method.
  Status MatchDelete(const UpdateAtom& update, size_t pos) {
    return ForEachTargetVersion(
        update, UpdateKind::kDelete, pos, [&](Vid v, Vid target, size_t p) {
          if (!ctx_.base.VersionExists(target)) return Status::Ok();
          Vid vstar = ctx_.base.LatestExistingStage(v);
          if (!vstar.valid()) return Status::Ok();
          const VersionState* state = ctx_.base.StateOf(vstar);
          if (state == nullptr) return Status::Ok();
          Trail& trail = scratch_[p].fact;
          auto try_fact = [&](const GroundApp& fact) -> Status {
            trail.clear();
            if (TryBindApp(update.app, fact, &trail) &&
                !ctx_.base.ContainsApp(target, update.app.method, fact)) {
              Status status = Step(p + 1);
              if (!status.ok()) return status;
            }
            Unwind(trail);
            return Status::Ok();
          };
          return ProbeApps(*state, update.app.method, update.app.result,
                           try_fact);
        });
  }

  /// Positive body mod[V].m->(R,R'): pairs an old result from v* with a
  /// new result held by mod(V), per the paper's two truth cases (r == r'
  /// means "unchanged and still present", r != r' means "changed away").
  /// Both enumerations go through the access API: a ground old-result
  /// term indexes into v*'s facts, and a new-result term that is ground
  /// once the old fact is bound (constant, bound earlier, or the R == R'
  /// repeated-variable form) indexes into mod(V)'s.
  Status MatchModify(const UpdateAtom& update, size_t pos) {
    return ForEachTargetVersion(
        update, UpdateKind::kModify, pos, [&](Vid v, Vid target, size_t p) {
          Vid vstar = ctx_.base.LatestExistingStage(v);
          if (!vstar.valid()) return Status::Ok();
          const VersionState* old_state = ctx_.base.StateOf(vstar);
          const VersionState* new_state = ctx_.base.StateOf(target);
          if (old_state == nullptr || new_state == nullptr) return Status::Ok();
          Trail& trail = scratch_[p].fact;
          Trail& trail2 = scratch_[p].extra;
          auto try_old = [&](const GroundApp& old_fact) -> Status {
            trail.clear();
            if (!TryBindApp(update.app, old_fact, &trail)) {
              Unwind(trail);
              return Status::Ok();
            }
            auto try_new = [&](const GroundApp& new_fact) -> Status {
              if (new_fact.args != old_fact.args) return Status::Ok();
              if (new_fact.result != old_fact.result &&
                  ctx_.base.ContainsApp(target, update.app.method, old_fact)) {
                // r != r' requires mod(v).m->r to be gone.
                return Status::Ok();
              }
              trail2.clear();
              if (BindObj(update.new_result, new_fact.result, &trail2)) {
                Status status = Step(p + 1);
                if (!status.ok()) return status;
              }
              Unwind(trail2);
              return Status::Ok();
            };
            Status status = ProbeApps(*new_state, update.app.method,
                                      update.new_result, try_new);
            Unwind(trail);
            return status;
          };
          return ProbeApps(*old_state, update.app.method, update.app.result,
                           try_old);
        });
  }

  /// Shared enumeration of the update's pre-version `v` and target version
  /// `kind(v)`: direct when the base is bound; otherwise iterate interned
  /// VIDs of the target's shape (copied first — the recursion may intern
  /// further VIDs and grow the table).
  template <typename Fn>
  Status ForEachTargetVersion(const UpdateAtom& update, UpdateKind kind,
                              size_t pos, Fn&& fn) {
    const VidTerm& vterm = update.version;
    if (!vterm.base.is_var || bindings_[vterm.base.var.value].valid()) {
      Vid v = ResolveVid(vterm, bindings_, ctx_.versions);
      Vid target = ctx_.versions.Child(v, kind);
      return fn(v, target, pos);
    }
    VidTerm target_term = VidTerm::Wrap(kind, vterm);
    VidShape shape = ctx_.versions.InternShape(target_term.ops);
    std::vector<Vid> candidates = ctx_.versions.VidsWithShape(shape);
    Trail& trail = scratch_[pos].version;
    for (Vid target : candidates) {
      const VersionState* state = ctx_.base.StateOf(target);
      if (state == nullptr) continue;
      Vid v = ctx_.versions.parent(target);
      trail.clear();
      if (BindObj(vterm.base, ctx_.versions.root(target), &trail)) {
        Status status = fn(v, target, pos);
        if (!status.ok()) return status;
      }
      Unwind(trail);
    }
    return Status::Ok();
  }
};

}  // namespace match_internal

/// Enumerates every binding of the rule's variables that satisfies the
/// body (in the order planned by AnalyzeRule), invoking `sink` once per
/// satisfying binding. `sink` may return an error to abort enumeration.
template <typename Sink>
Status ForEachBodyMatch(const Rule& rule, MatchContext& ctx, Sink&& sink) {
  match_internal::Matcher<std::remove_reference_t<Sink>> matcher(rule, ctx,
                                                                 sink);
  return matcher.Run();
}

/// Variant for semi-naive evaluation: starts from `initial` bindings and
/// skips the body literal at index `skip_literal` (which the caller has
/// already matched against a delta fact). `initial` must bind every
/// variable the skipped literal would have bound.
template <typename Sink>
Status ForEachBodyMatchFrom(const Rule& rule, MatchContext& ctx,
                            const Bindings& initial, int skip_literal,
                            Sink&& sink) {
  match_internal::Matcher<std::remove_reference_t<Sink>> matcher(rule, ctx,
                                                                 sink);
  return matcher.RunFrom(initial, skip_literal);
}

}  // namespace verso

#endif  // VERSO_CORE_MATCH_H_
