#ifndef VERSO_CORE_MATCH_H_
#define VERSO_CORE_MATCH_H_

#include <functional>

#include "core/object_base.h"
#include "core/rule.h"
#include "core/symbol_table.h"
#include "core/version_table.h"
#include "util/result.h"

namespace verso {

/// Shared mutable context for matching: the symbol table interns numbers
/// produced by arithmetic, the version table interns VIDs resolved from
/// version-id-terms. The object base is read-only during matching.
struct MatchContext {
  SymbolTable& symbols;
  VersionTable& versions;
  const ObjectBase& base;
};

/// Resolves a version-id-term whose base is a constant or a bound
/// variable to a concrete (interned) VID. Returns an invalid Vid when the
/// base variable is unbound.
Vid ResolveVid(const VidTerm& term, const Bindings& bindings,
               VersionTable& versions);

/// Resolves a fully bound AppPattern to a ground application.
/// Precondition (guaranteed by safety analysis): every variable bound.
GroundApp ResolveApp(const AppPattern& app, const Bindings& bindings);

/// Evaluates the paper's truth definition (Section 3) for a ground
/// literal: version-terms by membership; body update-terms by the
/// ins/del/mod transition conditions; built-ins by evaluation. The
/// literal's negation flag is applied.
Result<bool> GroundLiteralTruth(const Rule& rule, const Literal& literal,
                                const Bindings& bindings, MatchContext& ctx);

/// Enumerates every binding of the rule's variables that satisfies the
/// body (in the order planned by AnalyzeRule), invoking `sink` once per
/// satisfying binding. `sink` may return an error to abort enumeration.
Status ForEachBodyMatch(const Rule& rule, MatchContext& ctx,
                        const std::function<Status(const Bindings&)>& sink);

/// Variant for semi-naive evaluation: starts from `initial` bindings and
/// skips the body literal at index `skip_literal` (which the caller has
/// already matched against a delta fact). `initial` must bind every
/// variable the skipped literal would have bound.
Status ForEachBodyMatchFrom(const Rule& rule, MatchContext& ctx,
                            const Bindings& initial, int skip_literal,
                            const std::function<Status(const Bindings&)>& sink);

}  // namespace verso

#endif  // VERSO_CORE_MATCH_H_
