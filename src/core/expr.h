#ifndef VERSO_CORE_EXPR_H_
#define VERSO_CORE_EXPR_H_

#include <cstdint>
#include <vector>

#include "core/ids.h"
#include "core/symbol_table.h"
#include "util/result.h"

namespace verso {

/// Handle to a node in an ExprPool.
struct ExprId {
  uint32_t value = UINT32_MAX;

  constexpr ExprId() = default;
  constexpr explicit ExprId(uint32_t v) : value(v) {}
  constexpr bool valid() const { return value != UINT32_MAX; }
};

/// Arithmetic expression node. Rules own a pool of these for their
/// built-in atoms (e.g. `S2 = S * 1.1 + 200`).
struct Expr {
  enum class Kind : uint8_t { kConst, kVar, kAdd, kSub, kMul, kDiv, kNeg };

  Kind kind;
  Oid constant;  // kConst
  VarId var;     // kVar
  ExprId lhs;    // binary ops, kNeg
  ExprId rhs;    // binary ops
};

/// Arena of expression nodes for one rule.
class ExprPool {
 public:
  ExprId Const(Oid value);
  ExprId Var(VarId var);
  ExprId Binary(Expr::Kind kind, ExprId lhs, ExprId rhs);
  ExprId Neg(ExprId operand);

  const Expr& at(ExprId id) const { return nodes_[id.value]; }
  size_t size() const { return nodes_.size(); }

  /// Appends every variable occurring under `id` to `out`.
  void CollectVars(ExprId id, std::vector<VarId>* out) const;

  /// True iff the node is exactly a variable reference (used by the
  /// safety analysis to recognize binding occurrences of `X = expr`).
  bool IsVarRef(ExprId id, VarId* var) const;

 private:
  std::vector<Expr> nodes_;
};

/// Environment mapping rule variables to OIDs; invalid Oid = unbound.
using Bindings = std::vector<Oid>;

/// Evaluates an expression under `bindings`. Constants and bound
/// variables evaluate to themselves; arithmetic requires numeric operands
/// (the paper folds values into O; we type-check at evaluation time).
/// New numeric OIDs are interned into `symbols`.
Result<Oid> EvalExpr(const ExprPool& pool, ExprId id, const Bindings& bindings,
                     SymbolTable& symbols);

/// Comparison operators available in built-in atoms.
enum class CmpOp : uint8_t { kEq, kNe, kLt, kLe, kGt, kGe };

const char* CmpOpName(CmpOp op);

/// Applies a comparison to two OIDs. Equality/disequality are identity on
/// interned OIDs (numbers are canonical, so identity is numeric equality);
/// ordering comparisons between different payload kinds are false.
bool EvalCmp(CmpOp op, Oid lhs, Oid rhs, const SymbolTable& symbols);

}  // namespace verso

#endif  // VERSO_CORE_EXPR_H_
