#ifndef VERSO_CORE_VERSION_TABLE_H_
#define VERSO_CORE_VERSION_TABLE_H_

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/ids.h"
#include "core/symbol_table.h"

namespace verso {

/// Interned functor chain of a VID, outermost functor first; depth-0 VIDs
/// have the empty shape. Patterns such as `mod(E).sal->S` match exactly the
/// VIDs whose shape is [mod], so shapes are the index key for version
/// patterns with an unbound object variable.
struct VidShape {
  uint32_t value = 0;  // 0 is the empty shape (plain OIDs)

  constexpr VidShape() = default;
  constexpr explicit VidShape(uint32_t v) : value(v) {}
  friend constexpr bool operator==(VidShape a, VidShape b) {
    return a.value == b.value;
  }
  friend constexpr bool operator!=(VidShape a, VidShape b) {
    return a.value != b.value;
  }
};

/// Interns version identities: ground terms ins(...), del(...), mod(...)
/// over an OID root (paper Section 2.1). A VID is stored as
/// (parent VID, outermost functor), so
///   * subterm tests are parent-chain walks,
///   * the temporal order of an object's versions is the subterm order,
///   * `v*` (Section 3) is a walk looking for the deepest `exists` stage.
///
/// Depth-0 VIDs coincide with OIDs and are created lazily by OfOid().
class VersionTable {
 public:
  VersionTable();
  VersionTable(const VersionTable&) = delete;
  VersionTable& operator=(const VersionTable&) = delete;

  /// The VID denoting the object `o` itself (depth 0).
  Vid OfOid(Oid o);

  /// The VID `kind(parent)`, e.g. Child(v, kDelete) == del(v).
  Vid Child(Vid parent, UpdateKind kind);

  /// Functor of the outermost update; only valid for depth > 0.
  UpdateKind kind(Vid v) const { return entries_[v.value].kind; }
  /// The VID with the outermost functor stripped; invalid for depth 0.
  Vid parent(Vid v) const { return entries_[v.value].parent; }
  uint32_t depth(Vid v) const { return entries_[v.value].depth; }
  /// The object this VID is a version of.
  Oid root(Vid v) const { return entries_[v.value].root; }
  VidShape shape(Vid v) const { return entries_[v.value].shape; }

  /// True iff `a` is a (not necessarily proper) subterm of `b`; only VIDs
  /// of the same object can be subterms of one another.
  bool IsSubterm(Vid a, Vid b) const;

  /// Interns a functor chain (outermost first).
  VidShape InternShape(const std::vector<UpdateKind>& ops);
  const std::vector<UpdateKind>& ShapeOps(VidShape shape) const {
    return shape_ops_[shape.value];
  }

  /// All interned VIDs with the given shape. Stable order of creation.
  const std::vector<Vid>& VidsWithShape(VidShape shape) const;

  size_t size() const { return entries_.size(); }

  /// Surface syntax, e.g. "ins(del(mod(henry)))".
  std::string ToString(Vid v, const SymbolTable& symbols) const;

 private:
  struct Entry {
    Oid root;
    Vid parent;       // invalid when depth == 0
    UpdateKind kind;  // meaningful when depth > 0
    uint32_t depth;
    VidShape shape;
  };

  std::vector<Entry> entries_;
  std::unordered_map<Oid, Vid> oid_to_vid_;
  // (parent, kind) -> child
  std::unordered_map<uint64_t, Vid> child_index_;

  std::vector<std::vector<UpdateKind>> shape_ops_;
  std::map<std::vector<UpdateKind>, VidShape> shape_index_;
  std::vector<std::vector<Vid>> vids_by_shape_;
};

}  // namespace verso

template <>
struct std::hash<verso::VidShape> {
  size_t operator()(verso::VidShape s) const {
    return std::hash<uint32_t>()(s.value);
  }
};

#endif  // VERSO_CORE_VERSION_TABLE_H_
