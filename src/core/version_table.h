#ifndef VERSO_CORE_VERSION_TABLE_H_
#define VERSO_CORE_VERSION_TABLE_H_

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/ids.h"
#include "core/symbol_table.h"

namespace verso {

/// Interned functor chain of a VID, outermost functor first; depth-0 VIDs
/// have the empty shape. Patterns such as `mod(E).sal->S` match exactly the
/// VIDs whose shape is [mod], so shapes are the index key for version
/// patterns with an unbound object variable.
struct VidShape {
  uint32_t value = 0;  // 0 is the empty shape (plain OIDs)

  constexpr VidShape() = default;
  constexpr explicit VidShape(uint32_t v) : value(v) {}
  friend constexpr bool operator==(VidShape a, VidShape b) {
    return a.value == b.value;
  }
  friend constexpr bool operator!=(VidShape a, VidShape b) {
    return a.value != b.value;
  }
};

/// Interns version identities: ground terms ins(...), del(...), mod(...)
/// over an OID root (paper Section 2.1). A VID is stored as
/// (parent VID, outermost functor), so
///   * subterm tests are parent-chain walks,
///   * the temporal order of an object's versions is the subterm order,
///   * `v*` (Section 3) is a walk looking for the deepest `exists` stage.
///
/// Depth-0 VIDs coincide with OIDs and are created lazily by OfOid().
///
/// Overlay mode mirrors SymbolTable's: an overlay layers fresh VIDs and
/// shapes over a frozen base table (value-keyed lookups consult the base
/// first; fresh entries get ids from the base's counts upward and form an
/// ordered intern log). Parallel evaluation lanes intern into their own
/// overlays during matching; after the join, ReplayVid re-interns each
/// lane's log into the real table deterministically. An overlay must not
/// outlive a mutation of its base.
class VersionTable {
 public:
  struct OverlayTag {};

  VersionTable();
  /// An overlay over `base` (see class comment). Read-only on `base`.
  VersionTable(OverlayTag, const VersionTable& base);
  VersionTable(const VersionTable&) = delete;
  VersionTable& operator=(const VersionTable&) = delete;

  /// The VID denoting the object `o` itself (depth 0).
  Vid OfOid(Oid o);

  /// The VID `kind(parent)`, e.g. Child(v, kDelete) == del(v).
  Vid Child(Vid parent, UpdateKind kind);

  /// Functor of the outermost update; only valid for depth > 0.
  UpdateKind kind(Vid v) const { return entry(v).kind; }
  /// The VID with the outermost functor stripped; invalid for depth 0.
  Vid parent(Vid v) const { return entry(v).parent; }
  uint32_t depth(Vid v) const { return entry(v).depth; }
  /// The object this VID is a version of.
  Oid root(Vid v) const { return entry(v).root; }
  VidShape shape(Vid v) const { return entry(v).shape; }

  /// True iff `a` is a (not necessarily proper) subterm of `b`; only VIDs
  /// of the same object can be subterms of one another.
  bool IsSubterm(Vid a, Vid b) const;

  /// Interns a functor chain (outermost first).
  VidShape InternShape(const std::vector<UpdateKind>& ops);
  const std::vector<UpdateKind>& ShapeOps(VidShape shape) const {
    if (shape.value < base_shapes_) return base_->ShapeOps(shape);
    return shape_ops_[shape.value - base_shapes_];
  }

  /// All interned VIDs with the given shape. Stable order of creation.
  /// In overlay mode the returned vector merges the base's VIDs with the
  /// overlay's (base first — creation order), cached until the overlay
  /// grows the shape again.
  const std::vector<Vid>& VidsWithShape(VidShape shape) const;

  size_t size() const { return base_vids_ + entries_.size(); }

  /// Overlay introspection and replay (mirrors SymbolTable): local index i
  /// is the vid base_vids() + i. ReplayVid re-interns one logged entry
  /// into `target`, translating the entry's root/parent references through
  /// the caller's maps (identity for ids below the overlay's base counts).
  uint32_t base_vids() const { return base_vids_; }
  uint32_t fresh_vids() const { return static_cast<uint32_t>(entries_.size()); }
  template <typename MapOid, typename MapVid>
  Vid ReplayVid(uint32_t local_index, VersionTable& target, MapOid&& map_oid,
                MapVid&& map_vid) const {
    const Entry& e = entries_[local_index];
    if (e.depth == 0) return target.OfOid(map_oid(e.root));
    return target.Child(map_vid(e.parent), e.kind);
  }

  /// Surface syntax, e.g. "ins(del(mod(henry)))".
  std::string ToString(Vid v, const SymbolTable& symbols) const;

 private:
  struct Entry {
    Oid root;
    Vid parent;       // invalid when depth == 0
    UpdateKind kind;  // meaningful when depth > 0
    uint32_t depth;
    VidShape shape;
  };

  const Entry& entry(Vid v) const {
    return v.value < base_vids_ ? base_->entries_[v.value]
                                : entries_[v.value - base_vids_];
  }

  Vid FindOfOid(Oid o) const;
  Vid FindChild(Vid parent, UpdateKind kind) const;
  VidShape FindShape(const std::vector<UpdateKind>& ops) const;
  std::vector<Vid>& LocalVidsOfShape(VidShape shape);

  /// Overlay mode only: the frozen base and its counts at layering time.
  const VersionTable* base_ = nullptr;
  uint32_t base_vids_ = 0;
  uint32_t base_shapes_ = 0;

  std::vector<Entry> entries_;
  std::unordered_map<Oid, Vid> oid_to_vid_;
  // (parent, kind) -> child
  std::unordered_map<uint64_t, Vid> child_index_;

  // Indexed by shape.value - base_shapes_ for overlay-fresh shapes; in
  // overlay mode vids_by_shape_ holds only the overlay's VIDs and is
  // indexed by shape.value directly (sized on demand), with merged_cache_
  // memoizing base + overlay concatenations per shape.
  std::vector<std::vector<UpdateKind>> shape_ops_;
  std::map<std::vector<UpdateKind>, VidShape> shape_index_;
  std::vector<std::vector<Vid>> vids_by_shape_;
  struct MergedShape {
    size_t overlay_count = 0;  // staleness stamp
    std::vector<Vid> vids;
  };
  mutable std::unordered_map<uint32_t, MergedShape> merged_cache_;
};

}  // namespace verso

template <>
struct std::hash<verso::VidShape> {
  size_t operator()(verso::VidShape s) const {
    return std::hash<uint32_t>()(s.value);
  }
};

#endif  // VERSO_CORE_VERSION_TABLE_H_
