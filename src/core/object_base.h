#ifndef VERSO_CORE_OBJECT_BASE_H_
#define VERSO_CORE_OBJECT_BASE_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/delta.h"
#include "core/ids.h"
#include "core/term.h"
#include "core/version_table.h"
#include "util/result.h"

namespace verso {

/// Counters for bound-result lookups answered through the result-keyed
/// index (ForEachAppWithResult). Threaded from the matcher's MatchContext
/// into TpRoundStats / EvalStats, QueryStats, and ViewStats, so every
/// layer that probes with a ground result reports how much scanning the
/// index saved it.
struct IndexStats {
  /// Bound-result lookups launched (indexed or ablation-scan mode).
  size_t index_probes = 0;
  /// Probes that enumerated at least one matching fact.
  size_t index_hits = 0;
  /// Facts a full per-method scan would have visited but the index
  /// skipped (sum over probes of method-fact-count minus facts
  /// enumerated); stays 0 when the index is disabled for ablation.
  size_t indexed_scan_avoided_facts = 0;
};

/// The shared storage node of one method's applications: the sorted
/// application vector plus a lazily built result-keyed index
/// (result constant -> ascending offsets into the vector). The paper's
/// hottest literal form is `X.m -> c` with the result already bound;
/// the index answers it without scanning the full vector.
///
/// The index is NOT part of the node's value: it is derived state,
/// rebuilt on demand after any mutation, built through a const handle
/// (a lazy build must never count as a write, or it would detach COW
/// sharing), and ignored by equality. Between commits a node is
/// immutable, so a built index could safely be shared across threads —
/// the groundwork for parallel stratum evaluation; today the refcount
/// discipline (like everything below the Connection facade) is
/// single-threaded, and lazy builds rely on that.
class IndexedApps {
 public:
  /// Flat (result, offset) pairs sorted lexicographically: a lookup is
  /// one binary search over contiguous memory (no per-result bucket
  /// allocations, no hash chasing), and offsets per result come out
  /// ascending — indexed enumeration visits facts in scan order. The
  /// application vector is sorted by (args, result), so equal results
  /// are scattered through it and the index genuinely reorders.
  using ResultIndex = std::vector<std::pair<Oid, uint32_t>>;

  IndexedApps() = default;
  /// Detach copy: clones the applications only. The copy rebuilds its
  /// own index on first demand — the source's (possibly built) index is
  /// derived state, not value.
  IndexedApps(const IndexedApps& other) : apps_(other.apps_) {}
  IndexedApps& operator=(const IndexedApps&) = delete;

  const std::vector<GroundApp>& apps() const { return apps_; }

  /// Write access to the vector; invalidates the index (the caller is
  /// the sole owner by the SharedApps detach discipline).
  std::vector<GroundApp>& MutableApps() {
    InvalidateIndex();
    return apps_;
  }

  /// The result index, built on first use. Safe to race from read-only
  /// evaluation lanes: the build publishes under a mutex with an
  /// acquire/release flag, so concurrent first probes of a shared node
  /// see either "not built" (and take the build lock) or the fully built
  /// index. Mutation paths (InvalidateIndex) remain single-threaded by
  /// the COW detach discipline.
  const ResultIndex& result_index() const {
    if (!index_built_.load(std::memory_order_acquire)) BuildIndex();
    return by_result_;
  }

  /// True iff the lazy index has been materialized (tests/benches).
  bool index_built() const {
    return index_built_.load(std::memory_order_acquire);
  }

 private:
  void BuildIndex() const;
  void InvalidateIndex() {
    index_built_.store(false, std::memory_order_relaxed);
    by_result_.clear();
  }

  std::vector<GroundApp> apps_;
  mutable ResultIndex by_result_;
  mutable std::atomic<bool> index_built_{false};
};

/// Refcounted copy-on-write handle to one method's IndexedApps node.
/// Copying a SharedApps shares the node (a pointer bump); Mutable()
/// detaches — clones the application vector — the first time a shared
/// handle is written through. All reads go through the const view, so
/// two VersionStates produced by a T_P step-2 copy keep sharing every
/// method the updates never touch; a lazily built result index rides
/// along with the shared node for free.
///
/// The refcount discipline is single-threaded (like everything below the
/// Connection facade): use_count() == 1 means "sole owner, mutate in
/// place".
class SharedApps {
 public:
  SharedApps() : node_(std::make_shared<IndexedApps>()) {}

  const std::vector<GroundApp>& get() const { return node_->apps(); }
  std::vector<GroundApp>::const_iterator begin() const {
    return get().begin();
  }
  std::vector<GroundApp>::const_iterator end() const { return get().end(); }
  size_t size() const { return get().size(); }
  bool empty() const { return get().empty(); }

  /// Detach-before-write: clones the node iff it is shared, and
  /// invalidates its lazily built index either way.
  std::vector<GroundApp>& Mutable() {
    if (node_.use_count() > 1) {
      node_ = std::make_shared<IndexedApps>(*node_);
    }
    return node_->MutableApps();
  }

  /// Vectors below this size answer bound-result probes by a direct
  /// scan instead of building an index node: a one-compare scan beats
  /// any index, and the hottest invalidation churn (DRed maintenance
  /// mutating singleton edge vectors between probes) never pays a
  /// rebuild.
  static constexpr size_t kResultIndexMinFacts = 2;

  /// Enumerates the applications whose result is exactly `result`, in
  /// scan order, invoking `fn(const GroundApp&)` per fact; `fn` may
  /// return an error to abort. Uses the node's result index (building
  /// it on first probe — not a write); tiny vectors, and all vectors
  /// with the index disabled for ablation, fall back to the full scan
  /// the pre-index code did. `stats`, when given, records the probe.
  template <typename Fn>
  Status ForEachWithResult(Oid result, IndexStats* stats, Fn&& fn) const {
    if (stats != nullptr) ++stats->index_probes;
    size_t visited = 0;
    if (result_index_enabled_ &&
        node_->apps().size() >= kResultIndexMinFacts) {
      const IndexedApps::ResultIndex& index = node_->result_index();
      auto it = std::lower_bound(
          index.begin(), index.end(), result,
          [](const std::pair<Oid, uint32_t>& entry, Oid r) {
            return entry.first < r;
          });
      for (; it != index.end() && it->first == result; ++it) {
        ++visited;
        VERSO_RETURN_IF_ERROR(fn(node_->apps()[it->second]));
      }
      if (stats != nullptr) {
        if (visited != 0) ++stats->index_hits;
        stats->indexed_scan_avoided_facts += node_->apps().size() - visited;
      }
      return Status::Ok();
    }
    for (const GroundApp& app : node_->apps()) {
      if (!(app.result == result)) continue;
      ++visited;
      VERSO_RETURN_IF_ERROR(fn(app));
    }
    if (stats != nullptr && visited != 0) ++stats->index_hits;
    return Status::Ok();
  }

  /// The shared node (tests/benches inspect index_built()).
  const IndexedApps& node() const { return *node_; }

  /// Ablation switch: with the result index disabled,
  /// ForEachAppWithResult degrades to the pre-index full scan (counters
  /// still count probes, but nothing is avoided). Benchmarks and the
  /// index-consistency property test flip this; production code never
  /// should.
  static void EnableResultIndex(bool enabled) {
    result_index_enabled_ = enabled;
  }
  static bool result_index_enabled() { return result_index_enabled_; }

  /// True iff both handles point at the same node — equal for free.
  friend bool SharesStorage(const SharedApps& a, const SharedApps& b) {
    return a.node_ == b.node_;
  }

  /// Equality is application-vector equality only: a state whose lazy
  /// index was materialized still compares equal to (and keeps sharing
  /// storage with) its pre-index copy.
  friend bool operator==(const SharedApps& a, const SharedApps& b) {
    return a.node_ == b.node_ || a.node_->apps() == b.node_->apps();
  }

 private:
  std::shared_ptr<IndexedApps> node_;

  static bool result_index_enabled_;
};

/// The state of one version: all ground method-applications that hold for
/// it. Methods are kept in a flat vector sorted by MethodId (versions
/// carry a handful of methods, so binary search over contiguous storage
/// beats ordered-map node hops); per method the applications are kept
/// sorted, so membership is a binary search and states compare with ==.
///
/// Application vectors are copy-on-write (SharedApps over IndexedApps):
/// copying a VersionState — the paper's T_P step-2 "copy v*'s state" —
/// is O(#methods) pointer bumps, and applying updates to the copy clones
/// only the vectors of the methods actually written.
///
/// Access API (shared by the matcher, T_P seeding/residual re-matching,
/// DRed maintenance, and the query fixpoint):
///   * ForEachApp(method, fn)            — enumerate one method's facts;
///   * ForEachAppWithResult(m, r, s, fn) — only facts with result r,
///                                         answered by the result index;
///   * ContainsApp(method, app)          — membership, binary search.
class VersionState {
 public:
  using MethodEntry = std::pair<MethodId, SharedApps>;
  using MethodList = std::vector<MethodEntry>;

  /// Returns true if the application was new.
  bool Insert(MethodId method, GroundApp app);
  /// Returns true if the application was present.
  bool Erase(MethodId method, const GroundApp& app);
  bool Contains(MethodId method, const GroundApp& app) const;
  /// Canonical membership name of the access API (same as Contains).
  bool ContainsApp(MethodId method, const GroundApp& app) const {
    return Contains(method, app);
  }

  /// Enumerates every application of `method` in sorted order, invoking
  /// `fn(const GroundApp&)`; `fn` may return an error to abort.
  template <typename Fn>
  Status ForEachApp(MethodId method, Fn&& fn) const {
    const SharedApps* apps = FindShared(method);
    if (apps == nullptr) return Status::Ok();
    for (const GroundApp& app : apps->get()) {
      VERSO_RETURN_IF_ERROR(fn(app));
    }
    return Status::Ok();
  }

  /// Enumerates only the applications of `method` whose result is
  /// `result` (the bound-result hot path), through the lazily built
  /// result index. Probe counters accumulate into `stats` when given.
  template <typename Fn>
  Status ForEachAppWithResult(MethodId method, Oid result, IndexStats* stats,
                              Fn&& fn) const {
    const SharedApps* apps = FindShared(method);
    if (apps == nullptr) return Status::Ok();
    return apps->ForEachWithResult(result, stats, std::forward<Fn>(fn));
  }

  /// All applications of one method, or nullptr.
  const std::vector<GroundApp>* Find(MethodId method) const;
  /// The COW handle of one method's applications, or nullptr — lets
  /// diff-style consumers skip methods whose storage two states share.
  const SharedApps* FindShared(MethodId method) const;

  size_t fact_count() const { return fact_count_; }
  bool empty() const { return fact_count_ == 0; }

  /// Entries sorted by MethodId (iteration order matches the previous
  /// std::map-based layout).
  const MethodList& methods() const { return methods_; }

  /// True iff the state carries no information beyond `exists` — such a
  /// version contributes no object to the new object base (Section 5).
  bool OnlyExists(MethodId exists_method) const;

  friend bool operator==(const VersionState& a, const VersionState& b) {
    // SharedApps::operator== short-circuits on shared storage and
    // ignores lazily built index state.
    return a.methods_ == b.methods_;
  }

 private:
  MethodList::iterator LowerBound(MethodId method);
  MethodList::const_iterator LowerBound(MethodId method) const;

  MethodList methods_;
  size_t fact_count_ = 0;
};

/// An object base: a set of ground version-terms `v.m@args -> r`
/// (paper Section 2.1), indexed
///   * per version: its full VersionState (the copy unit of T_P step 2),
///   * per method: which versions carry it (drives matching of patterns
///     whose version variable is unbound, filtered by VID shape),
///   * per (method, result): lazily, inside each method's IndexedApps
///     node (drives matching of bound-result literals).
///
/// Per-version states are refcounted immutable handles: copying an
/// ObjectBase is O(#versions) pointer bumps plus one shared-index bump —
/// no fact is copied. Mutators detach the touched version's state (and,
/// once per copy, the method index) before writing, so snapshot-isolated
/// readers (Connection::Pin), the evaluator's working copy, and T_P
/// step-2 copies all share every version that never changes.
///
/// The ObjectBase does not own the symbol/version tables; it references
/// the VersionTable to answer shape/`v*` queries.
class ObjectBase {
 public:
  using StatePtr = std::shared_ptr<VersionState>;
  using StateMap = std::unordered_map<Vid, StatePtr>;
  using MethodIndex =
      std::unordered_map<MethodId, std::unordered_map<Vid, uint32_t>>;

  ObjectBase(MethodId exists_method, const VersionTable* versions)
      : exists_method_(exists_method),
        versions_(versions),
        method_index_(std::make_shared<MethodIndex>()) {}

  /// Copyable by design — and cheap: the copy shares every version state
  /// and the method index with the source until one side writes.
  ObjectBase(const ObjectBase&) = default;
  ObjectBase& operator=(const ObjectBase&) = default;
  ObjectBase(ObjectBase&&) = default;
  ObjectBase& operator=(ObjectBase&&) = default;

  bool Insert(Vid version, MethodId method, GroundApp app);
  bool Erase(Vid version, MethodId method, const GroundApp& app);
  bool Contains(Vid version, MethodId method, const GroundApp& app) const;
  /// Canonical membership name of the access API (same as Contains).
  bool ContainsApp(Vid version, MethodId method, const GroundApp& app) const {
    return Contains(version, method, app);
  }

  /// Enumerates every `version.method@args -> r` fact, in sorted order.
  template <typename Fn>
  Status ForEachApp(Vid version, MethodId method, Fn&& fn) const {
    const VersionState* state = StateOf(version);
    if (state == nullptr) return Status::Ok();
    return state->ForEachApp(method, std::forward<Fn>(fn));
  }

  /// Enumerates only the facts of (version, method) whose result is
  /// `result`, through the state's result index.
  template <typename Fn>
  Status ForEachAppWithResult(Vid version, MethodId method, Oid result,
                              IndexStats* stats, Fn&& fn) const {
    const VersionState* state = StateOf(version);
    if (state == nullptr) return Status::Ok();
    return state->ForEachAppWithResult(method, result, stats,
                                       std::forward<Fn>(fn));
  }

  /// The state of a version, or nullptr if it has no facts.
  const VersionState* StateOf(Vid version) const;

  /// The refcounted handle of a version's state (nullptr if the version
  /// has no facts). Lets callers share the state into another base
  /// (AdoptVersion) or skip diff work when two bases share storage.
  std::shared_ptr<const VersionState> SharedStateOf(Vid version) const;

  /// Swaps in a whole new state for `version` (the evaluator's application
  /// of T_P replaces the states of all relevant VIDs). An empty state
  /// removes the version. Returns true iff anything changed; when `diff`
  /// is given, the fact-level changes (merge of the old and new sorted
  /// states) are appended to it instead of being detected by a deep
  /// equality check, and the method index is adjusted incrementally.
  /// Methods whose application storage the old and new state share are
  /// skipped without comparing contents.
  bool ReplaceVersion(Vid version, VersionState state,
                      DeltaLog* diff = nullptr);

  /// ReplaceVersion without the copy: installs `state` as a shared
  /// handle, so this base and the handle's other owners keep sharing the
  /// storage (each side detaches on its first write). Used by
  /// BuildNewObjectBase to move an object's final-version state onto its
  /// plain OID with zero fact copies.
  bool AdoptVersion(Vid version, std::shared_ptr<const VersionState> state,
                    DeltaLog* diff = nullptr);

  /// True iff `version.exists -> root(version)` is in the base — the
  /// paper's notion of the version being materialized/"active".
  bool VersionExists(Vid version) const;

  /// `v*`: the largest subterm of `v` whose exists-fact is in the base
  /// (Section 3). Returns an invalid Vid when no stage of the object is
  /// materialized (a fresh object).
  Vid LatestExistingStage(Vid v) const;

  /// Ensures every depth-0 version in the base carries its exists-fact
  /// (the paper assumes `o.exists -> o` for every object of ob).
  void SealExistence();

  /// Versions carrying at least one fact for `method` (with multiplicity
  /// count), or nullptr. Iteration order is unspecified.
  const std::unordered_map<Vid, uint32_t>* VidsWithMethod(
      MethodId method) const;

  const StateMap& versions() const { return states_; }

  size_t fact_count() const { return fact_count_; }
  size_t version_count() const { return states_.size(); }

  MethodId exists_method() const { return exists_method_; }
  const VersionTable* version_table() const { return versions_; }
  /// Rebinds the referenced version table. Parallel evaluation lanes copy
  /// the frozen base and point the copy at their own overlay VersionTable,
  /// so v*/exists walks resolve overlay-fresh VIDs instead of indexing the
  /// real table out of range.
  void set_version_table(const VersionTable* versions) { versions_ = versions; }

  friend bool operator==(const ObjectBase& a, const ObjectBase& b) {
    if (a.states_.size() != b.states_.size()) return false;
    for (const auto& [vid, state] : a.states_) {
      auto it = b.states_.find(vid);
      if (it == b.states_.end()) return false;
      if (state == it->second) continue;  // shared storage: equal for free
      if (!(*state == *it->second)) return false;
    }
    return true;
  }

 private:
  MethodId exists_method_;
  const VersionTable* versions_;

  StateMap states_;
  std::shared_ptr<MethodIndex> method_index_;
  size_t fact_count_ = 0;

  /// Detach-before-write for the shared method index.
  MethodIndex& MutableIndex();

  /// Shared tail of ReplaceVersion/AdoptVersion: diffs the existing state
  /// against *incoming and installs the handle itself on change.
  bool InstallVersion(Vid version, StatePtr incoming, DeltaLog* diff);

  void IndexAdd(Vid version, MethodId method, uint32_t count);
  void IndexRemove(Vid version, MethodId method, uint32_t count);
};

}  // namespace verso

#endif  // VERSO_CORE_OBJECT_BASE_H_
