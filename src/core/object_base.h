#ifndef VERSO_CORE_OBJECT_BASE_H_
#define VERSO_CORE_OBJECT_BASE_H_

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/delta.h"
#include "core/ids.h"
#include "core/term.h"
#include "core/version_table.h"

namespace verso {

/// The state of one version: all ground method-applications that hold for
/// it. Methods are kept in a flat vector sorted by MethodId (versions
/// carry a handful of methods, so binary search over contiguous storage
/// beats ordered-map node hops); per method the applications are kept
/// sorted, so membership is a binary search and states compare with ==.
class VersionState {
 public:
  using MethodEntry = std::pair<MethodId, std::vector<GroundApp>>;
  using MethodList = std::vector<MethodEntry>;

  /// Returns true if the application was new.
  bool Insert(MethodId method, GroundApp app);
  /// Returns true if the application was present.
  bool Erase(MethodId method, const GroundApp& app);
  bool Contains(MethodId method, const GroundApp& app) const;

  /// All applications of one method, or nullptr.
  const std::vector<GroundApp>* Find(MethodId method) const;

  size_t fact_count() const { return fact_count_; }
  bool empty() const { return fact_count_ == 0; }

  /// Entries sorted by MethodId (iteration order matches the previous
  /// std::map-based layout).
  const MethodList& methods() const { return methods_; }

  /// True iff the state carries no information beyond `exists` — such a
  /// version contributes no object to the new object base (Section 5).
  bool OnlyExists(MethodId exists_method) const;

  friend bool operator==(const VersionState& a, const VersionState& b) {
    return a.methods_ == b.methods_;
  }

 private:
  MethodList::iterator LowerBound(MethodId method);
  MethodList::const_iterator LowerBound(MethodId method) const;

  MethodList methods_;
  size_t fact_count_ = 0;
};

/// An object base: a set of ground version-terms `v.m@args -> r`
/// (paper Section 2.1), indexed
///   * per version: its full VersionState (the copy unit of T_P step 2),
///   * per method: which versions carry it (drives matching of patterns
///     whose version variable is unbound, filtered by VID shape).
///
/// The ObjectBase does not own the symbol/version tables; it references
/// the VersionTable to answer shape/`v*` queries.
class ObjectBase {
 public:
  ObjectBase(MethodId exists_method, const VersionTable* versions)
      : exists_method_(exists_method), versions_(versions) {}

  /// Copyable by design: the evaluator works on a copy of the input base.
  ObjectBase(const ObjectBase&) = default;
  ObjectBase& operator=(const ObjectBase&) = default;
  ObjectBase(ObjectBase&&) = default;
  ObjectBase& operator=(ObjectBase&&) = default;

  bool Insert(Vid version, MethodId method, GroundApp app);
  bool Erase(Vid version, MethodId method, const GroundApp& app);
  bool Contains(Vid version, MethodId method, const GroundApp& app) const;

  /// The state of a version, or nullptr if it has no facts.
  const VersionState* StateOf(Vid version) const;

  /// Swaps in a whole new state for `version` (the evaluator's application
  /// of T_P replaces the states of all relevant VIDs). An empty state
  /// removes the version. Returns true iff anything changed; when `diff`
  /// is given, the fact-level changes (merge of the old and new sorted
  /// states) are appended to it instead of being detected by a deep
  /// equality check, and the method index is adjusted incrementally.
  bool ReplaceVersion(Vid version, VersionState state,
                      DeltaLog* diff = nullptr);

  /// True iff `version.exists -> root(version)` is in the base — the
  /// paper's notion of the version being materialized/"active".
  bool VersionExists(Vid version) const;

  /// `v*`: the largest subterm of `v` whose exists-fact is in the base
  /// (Section 3). Returns an invalid Vid when no stage of the object is
  /// materialized (a fresh object).
  Vid LatestExistingStage(Vid v) const;

  /// Ensures every depth-0 version in the base carries its exists-fact
  /// (the paper assumes `o.exists -> o` for every object of ob).
  void SealExistence();

  /// Versions carrying at least one fact for `method` (with multiplicity
  /// count), or nullptr. Iteration order is unspecified.
  const std::unordered_map<Vid, uint32_t>* VidsWithMethod(
      MethodId method) const;

  const std::unordered_map<Vid, VersionState>& versions() const {
    return states_;
  }

  size_t fact_count() const { return fact_count_; }
  size_t version_count() const { return states_.size(); }

  MethodId exists_method() const { return exists_method_; }
  const VersionTable* version_table() const { return versions_; }

  friend bool operator==(const ObjectBase& a, const ObjectBase& b) {
    return a.states_ == b.states_;
  }

 private:
  MethodId exists_method_;
  const VersionTable* versions_;

  std::unordered_map<Vid, VersionState> states_;
  std::unordered_map<MethodId, std::unordered_map<Vid, uint32_t>>
      method_index_;
  size_t fact_count_ = 0;

  void IndexAdd(Vid version, MethodId method, uint32_t count);
  void IndexRemove(Vid version, MethodId method, uint32_t count);
};

}  // namespace verso

#endif  // VERSO_CORE_OBJECT_BASE_H_
