#ifndef VERSO_CORE_OBJECT_BASE_H_
#define VERSO_CORE_OBJECT_BASE_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/delta.h"
#include "core/ids.h"
#include "core/term.h"
#include "core/version_table.h"

namespace verso {

/// Refcounted copy-on-write handle to one method's sorted application
/// vector. Copying a SharedApps shares the underlying vector (a pointer
/// bump); Mutable() detaches — clones the vector — the first time a
/// shared handle is written through. All reads go through the const view,
/// so two VersionStates produced by a T_P step-2 copy keep sharing every
/// method the updates never touch.
///
/// The refcount discipline is single-threaded (like everything below the
/// Connection facade): use_count() == 1 means "sole owner, mutate in
/// place".
class SharedApps {
 public:
  SharedApps() : apps_(std::make_shared<std::vector<GroundApp>>()) {}

  const std::vector<GroundApp>& get() const { return *apps_; }
  std::vector<GroundApp>::const_iterator begin() const {
    return apps_->begin();
  }
  std::vector<GroundApp>::const_iterator end() const { return apps_->end(); }
  size_t size() const { return apps_->size(); }
  bool empty() const { return apps_->empty(); }

  /// Detach-before-write: clones the vector iff it is shared.
  std::vector<GroundApp>& Mutable() {
    if (apps_.use_count() > 1) {
      apps_ = std::make_shared<std::vector<GroundApp>>(*apps_);
    }
    return *apps_;
  }

  /// True iff both handles point at the same vector — equal for free.
  friend bool SharesStorage(const SharedApps& a, const SharedApps& b) {
    return a.apps_ == b.apps_;
  }

  friend bool operator==(const SharedApps& a, const SharedApps& b) {
    return a.apps_ == b.apps_ || *a.apps_ == *b.apps_;
  }

 private:
  std::shared_ptr<std::vector<GroundApp>> apps_;
};

/// The state of one version: all ground method-applications that hold for
/// it. Methods are kept in a flat vector sorted by MethodId (versions
/// carry a handful of methods, so binary search over contiguous storage
/// beats ordered-map node hops); per method the applications are kept
/// sorted, so membership is a binary search and states compare with ==.
///
/// Application vectors are copy-on-write (SharedApps): copying a
/// VersionState — the paper's T_P step-2 "copy v*'s state" — is
/// O(#methods) pointer bumps, and applying updates to the copy clones
/// only the vectors of the methods actually written.
class VersionState {
 public:
  using MethodEntry = std::pair<MethodId, SharedApps>;
  using MethodList = std::vector<MethodEntry>;

  /// Returns true if the application was new.
  bool Insert(MethodId method, GroundApp app);
  /// Returns true if the application was present.
  bool Erase(MethodId method, const GroundApp& app);
  bool Contains(MethodId method, const GroundApp& app) const;

  /// All applications of one method, or nullptr.
  const std::vector<GroundApp>* Find(MethodId method) const;
  /// The COW handle of one method's applications, or nullptr — lets
  /// diff-style consumers skip methods whose storage two states share.
  const SharedApps* FindShared(MethodId method) const;

  size_t fact_count() const { return fact_count_; }
  bool empty() const { return fact_count_ == 0; }

  /// Entries sorted by MethodId (iteration order matches the previous
  /// std::map-based layout).
  const MethodList& methods() const { return methods_; }

  /// True iff the state carries no information beyond `exists` — such a
  /// version contributes no object to the new object base (Section 5).
  bool OnlyExists(MethodId exists_method) const;

  friend bool operator==(const VersionState& a, const VersionState& b) {
    // SharedApps::operator== short-circuits on shared storage.
    return a.methods_ == b.methods_;
  }

 private:
  MethodList::iterator LowerBound(MethodId method);
  MethodList::const_iterator LowerBound(MethodId method) const;

  MethodList methods_;
  size_t fact_count_ = 0;
};

/// An object base: a set of ground version-terms `v.m@args -> r`
/// (paper Section 2.1), indexed
///   * per version: its full VersionState (the copy unit of T_P step 2),
///   * per method: which versions carry it (drives matching of patterns
///     whose version variable is unbound, filtered by VID shape).
///
/// Per-version states are refcounted immutable handles: copying an
/// ObjectBase is O(#versions) pointer bumps plus one shared-index bump —
/// no fact is copied. Mutators detach the touched version's state (and,
/// once per copy, the method index) before writing, so snapshot-isolated
/// readers (Connection::Pin), the evaluator's working copy, and T_P
/// step-2 copies all share every version that never changes.
///
/// The ObjectBase does not own the symbol/version tables; it references
/// the VersionTable to answer shape/`v*` queries.
class ObjectBase {
 public:
  using StatePtr = std::shared_ptr<VersionState>;
  using StateMap = std::unordered_map<Vid, StatePtr>;
  using MethodIndex =
      std::unordered_map<MethodId, std::unordered_map<Vid, uint32_t>>;

  ObjectBase(MethodId exists_method, const VersionTable* versions)
      : exists_method_(exists_method),
        versions_(versions),
        method_index_(std::make_shared<MethodIndex>()) {}

  /// Copyable by design — and cheap: the copy shares every version state
  /// and the method index with the source until one side writes.
  ObjectBase(const ObjectBase&) = default;
  ObjectBase& operator=(const ObjectBase&) = default;
  ObjectBase(ObjectBase&&) = default;
  ObjectBase& operator=(ObjectBase&&) = default;

  bool Insert(Vid version, MethodId method, GroundApp app);
  bool Erase(Vid version, MethodId method, const GroundApp& app);
  bool Contains(Vid version, MethodId method, const GroundApp& app) const;

  /// The state of a version, or nullptr if it has no facts.
  const VersionState* StateOf(Vid version) const;

  /// The refcounted handle of a version's state (nullptr if the version
  /// has no facts). Lets callers share the state into another base
  /// (AdoptVersion) or skip diff work when two bases share storage.
  std::shared_ptr<const VersionState> SharedStateOf(Vid version) const;

  /// Swaps in a whole new state for `version` (the evaluator's application
  /// of T_P replaces the states of all relevant VIDs). An empty state
  /// removes the version. Returns true iff anything changed; when `diff`
  /// is given, the fact-level changes (merge of the old and new sorted
  /// states) are appended to it instead of being detected by a deep
  /// equality check, and the method index is adjusted incrementally.
  /// Methods whose application storage the old and new state share are
  /// skipped without comparing contents.
  bool ReplaceVersion(Vid version, VersionState state,
                      DeltaLog* diff = nullptr);

  /// ReplaceVersion without the copy: installs `state` as a shared
  /// handle, so this base and the handle's other owners keep sharing the
  /// storage (each side detaches on its first write). Used by
  /// BuildNewObjectBase to move an object's final-version state onto its
  /// plain OID with zero fact copies.
  bool AdoptVersion(Vid version, std::shared_ptr<const VersionState> state,
                    DeltaLog* diff = nullptr);

  /// True iff `version.exists -> root(version)` is in the base — the
  /// paper's notion of the version being materialized/"active".
  bool VersionExists(Vid version) const;

  /// `v*`: the largest subterm of `v` whose exists-fact is in the base
  /// (Section 3). Returns an invalid Vid when no stage of the object is
  /// materialized (a fresh object).
  Vid LatestExistingStage(Vid v) const;

  /// Ensures every depth-0 version in the base carries its exists-fact
  /// (the paper assumes `o.exists -> o` for every object of ob).
  void SealExistence();

  /// Versions carrying at least one fact for `method` (with multiplicity
  /// count), or nullptr. Iteration order is unspecified.
  const std::unordered_map<Vid, uint32_t>* VidsWithMethod(
      MethodId method) const;

  const StateMap& versions() const { return states_; }

  size_t fact_count() const { return fact_count_; }
  size_t version_count() const { return states_.size(); }

  MethodId exists_method() const { return exists_method_; }
  const VersionTable* version_table() const { return versions_; }

  friend bool operator==(const ObjectBase& a, const ObjectBase& b) {
    if (a.states_.size() != b.states_.size()) return false;
    for (const auto& [vid, state] : a.states_) {
      auto it = b.states_.find(vid);
      if (it == b.states_.end()) return false;
      if (state == it->second) continue;  // shared storage: equal for free
      if (!(*state == *it->second)) return false;
    }
    return true;
  }

 private:
  MethodId exists_method_;
  const VersionTable* versions_;

  StateMap states_;
  std::shared_ptr<MethodIndex> method_index_;
  size_t fact_count_ = 0;

  /// Detach-before-write for the shared method index.
  MethodIndex& MutableIndex();

  /// Shared tail of ReplaceVersion/AdoptVersion: diffs the existing state
  /// against *incoming and installs the handle itself on change.
  bool InstallVersion(Vid version, StatePtr incoming, DeltaLog* diff);

  void IndexAdd(Vid version, MethodId method, uint32_t count);
  void IndexRemove(Vid version, MethodId method, uint32_t count);
};

}  // namespace verso

#endif  // VERSO_CORE_OBJECT_BASE_H_
