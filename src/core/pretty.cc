#include "core/pretty.h"

#include <algorithm>

namespace verso {

namespace {

std::string ExprToString(const ExprPool& pool, ExprId id, const Rule& rule,
                         const SymbolTable& symbols, int parent_prec) {
  const Expr& node = pool.at(id);
  switch (node.kind) {
    case Expr::Kind::kConst:
      return symbols.OidToString(node.constant);
    case Expr::Kind::kVar:
      return rule.var_names[node.var.value];
    case Expr::Kind::kNeg: {
      std::string out = "-" + ExprToString(pool, node.lhs, rule, symbols, 3);
      return parent_prec > 2 ? "(" + out + ")" : out;
    }
    default: {
      int prec =
          (node.kind == Expr::Kind::kAdd || node.kind == Expr::Kind::kSub)
              ? 1
              : 2;
      const char* op = node.kind == Expr::Kind::kAdd   ? " + "
                       : node.kind == Expr::Kind::kSub ? " - "
                       : node.kind == Expr::Kind::kMul ? " * "
                                                       : " / ";
      std::string out = ExprToString(pool, node.lhs, rule, symbols, prec) +
                        op +
                        ExprToString(pool, node.rhs, rule, symbols, prec + 1);
      return prec < parent_prec ? "(" + out + ")" : out;
    }
  }
}

std::string AppPatternToString(const AppPattern& app, const Rule& rule,
                               const SymbolTable& symbols) {
  std::string out(symbols.MethodName(app.method));
  if (!app.args.empty()) {
    out += '@';
    for (size_t i = 0; i < app.args.size(); ++i) {
      if (i > 0) out += ',';
      out += ObjTermToString(app.args[i], rule, symbols);
    }
  }
  out += " -> ";
  out += ObjTermToString(app.result, rule, symbols);
  return out;
}

}  // namespace

std::string ObjTermToString(const ObjTerm& term, const Rule& rule,
                            const SymbolTable& symbols) {
  if (term.is_var) return rule.var_names[term.var.value];
  return symbols.OidToString(term.oid);
}

std::string VidTermToString(const VidTerm& term, const Rule& rule,
                            const SymbolTable& symbols) {
  std::string out;
  for (UpdateKind op : term.ops) {
    out += UpdateKindName(op);
    out += '(';
  }
  out += ObjTermToString(term.base, rule, symbols);
  out.append(term.ops.size(), ')');
  return out;
}

std::string LiteralToString(const Literal& literal, const Rule& rule,
                            const SymbolTable& symbols) {
  std::string out;
  if (literal.negated) out += "not ";
  switch (literal.kind) {
    case Literal::Kind::kVersion:
      out += VidTermToString(literal.version.version, rule, symbols);
      out += '.';
      out += AppPatternToString(literal.version.app, rule, symbols);
      break;
    case Literal::Kind::kUpdate: {
      const UpdateAtom& u = literal.update;
      out += UpdateKindName(u.kind);
      out += '[';
      out += VidTermToString(u.version, rule, symbols);
      out += "].";
      if (u.delete_all) {
        out += '*';
        break;
      }
      if (u.kind == UpdateKind::kModify) {
        out += std::string(symbols.MethodName(u.app.method));
        if (!u.app.args.empty()) {
          out += '@';
          for (size_t i = 0; i < u.app.args.size(); ++i) {
            if (i > 0) out += ',';
            out += ObjTermToString(u.app.args[i], rule, symbols);
          }
        }
        out += " -> (";
        out += ObjTermToString(u.app.result, rule, symbols);
        out += ", ";
        out += ObjTermToString(u.new_result, rule, symbols);
        out += ')';
      } else {
        out += AppPatternToString(u.app, rule, symbols);
      }
      break;
    }
    case Literal::Kind::kBuiltin:
      out += ExprToString(rule.exprs, literal.builtin.lhs, rule, symbols, 0);
      out += ' ';
      out += CmpOpName(literal.builtin.op);
      out += ' ';
      out += ExprToString(rule.exprs, literal.builtin.rhs, rule, symbols, 0);
      break;
  }
  return out;
}

std::string RuleToString(const Rule& rule, const SymbolTable& symbols) {
  Literal head_literal = Literal::Update(rule.head);
  std::string out;
  if (!rule.label.empty()) {
    out += rule.label;
    out += ": ";
  }
  out += LiteralToString(head_literal, rule, symbols);
  if (!rule.body.empty()) {
    out += " <- ";
    for (size_t i = 0; i < rule.body.size(); ++i) {
      if (i > 0) out += ", ";
      out += LiteralToString(rule.body[i], rule, symbols);
    }
  }
  out += '.';
  return out;
}

std::string ProgramToString(const Program& program,
                            const SymbolTable& symbols) {
  std::string out;
  for (const Rule& rule : program.rules) {
    out += RuleToString(rule, symbols);
    out += '\n';
  }
  return out;
}

std::string FactToString(Vid version, MethodId method, const GroundApp& app,
                         const SymbolTable& symbols,
                         const VersionTable& versions) {
  std::string out = versions.ToString(version, symbols);
  out += '.';
  out += symbols.MethodName(method);
  if (!app.args.empty()) {
    out += '@';
    for (size_t i = 0; i < app.args.size(); ++i) {
      if (i > 0) out += ',';
      out += symbols.OidToString(app.args[i]);
    }
  }
  out += " -> ";
  out += symbols.OidToString(app.result);
  out += '.';
  return out;
}

std::string GroundUpdateToString(const GroundUpdate& update,
                                 const SymbolTable& symbols,
                                 const VersionTable& versions) {
  std::string out(UpdateKindName(update.kind));
  out += '[';
  out += versions.ToString(update.version, symbols);
  out += "].";
  out += symbols.MethodName(update.method);
  if (!update.app.args.empty()) {
    out += '@';
    for (size_t i = 0; i < update.app.args.size(); ++i) {
      if (i > 0) out += ',';
      out += symbols.OidToString(update.app.args[i]);
    }
  }
  out += " -> ";
  if (update.kind == UpdateKind::kModify) {
    out += '(';
    out += symbols.OidToString(update.app.result);
    out += ", ";
    out += symbols.OidToString(update.new_result);
    out += ')';
  } else {
    out += symbols.OidToString(update.app.result);
  }
  return out;
}

std::string ObjectBaseToString(const ObjectBase& base,
                               const SymbolTable& symbols,
                               const VersionTable& versions) {
  std::vector<std::string> lines;
  lines.reserve(base.fact_count());
  for (const auto& [vid, state] : base.versions()) {
    for (const auto& [method, apps] : state->methods()) {
      for (const GroundApp& app : apps) {
        lines.push_back(FactToString(vid, method, app, symbols, versions));
      }
    }
  }
  std::sort(lines.begin(), lines.end());
  std::string out;
  for (const std::string& line : lines) {
    out += line;
    out += '\n';
  }
  return out;
}

std::string StratificationToString(const Stratification& strat,
                                   const Program& program) {
  std::string out;
  for (size_t s = 0; s < strat.strata.size(); ++s) {
    out += "stratum " + std::to_string(s) + ":";
    for (uint32_t rule_index : strat.strata[s]) {
      out += ' ';
      out += program.rules[rule_index].DisplayName();
    }
    out += '\n';
  }
  return out;
}

}  // namespace verso
