#ifndef VERSO_CORE_UNIFY_H_
#define VERSO_CORE_UNIFY_H_

#include <vector>

#include "core/term.h"

namespace verso {

/// Unification of version-id-terms under the paper's sort discipline:
/// variables are quantified over O, so a variable unifies with a variable
/// or an OID but never with a term containing an update functor. Two
/// VidTerms therefore unify iff their functor chains are identical and
/// their base object-id-terms unify. Terms are assumed standardized apart
/// (each rule is 8-quantified), and since a VidTerm has exactly one base
/// position there are no occurs- or consistency-constraints to track.
bool UnifyVidTerms(const VidTerm& a, const VidTerm& b);

/// The subterms of a version-id-term that are themselves version-id-terms:
/// the term itself and every functor-stripped suffix down to the base
/// (e.g. ins(mod(E)) -> [ins(mod(E)), mod(E), E]). Used by stratification
/// conditions (a)-(c), which speak of "a subterm of V".
std::vector<VidTerm> VidSubterms(const VidTerm& t);

}  // namespace verso

#endif  // VERSO_CORE_UNIFY_H_
