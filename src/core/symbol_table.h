#ifndef VERSO_CORE_SYMBOL_TABLE_H_
#define VERSO_CORE_SYMBOL_TABLE_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/ids.h"
#include "util/interner.h"
#include "util/numeric.h"

namespace verso {

/// What an OID denotes. The paper folds values into the OID space
/// ("we consider values as specific OIDs in O"); we distinguish the payload
/// kinds so built-ins can type-check their operands.
enum class OidKind : uint8_t {
  kSymbol,  // named object or atom: henry, empl, mgr, yes
  kNumber,  // exact rational: 250, 1.1, 4600
  kString,  // quoted string value
};

/// The universe of OIDs and method names for one engine instance.
/// Interns symbols, numbers, strings, and method names; OIDs are dense and
/// stable. Not thread-safe; one SymbolTable per evaluation universe.
class SymbolTable {
 public:
  SymbolTable();
  SymbolTable(const SymbolTable&) = delete;
  SymbolTable& operator=(const SymbolTable&) = delete;

  /// Interns a named object / atom, e.g. "henry".
  Oid Symbol(std::string_view name);
  /// Interns an exact numeric value.
  Oid Number(const Numeric& value);
  /// Convenience: interns an integer value.
  Oid Int(int64_t value);
  /// Interns a quoted string value.
  Oid String(std::string_view text);

  /// Lookup without interning; returns an invalid Oid when absent.
  Oid FindSymbol(std::string_view name) const;

  OidKind kind(Oid id) const { return entries_[id.value].kind; }
  bool IsNumber(Oid id) const { return kind(id) == OidKind::kNumber; }

  /// Payload accessors; caller must check the kind first.
  std::string_view SymbolName(Oid id) const;
  const Numeric& NumberValue(Oid id) const;
  std::string_view StringValue(Oid id) const;

  /// Interns a method name, e.g. "sal". The distinguished method "exists"
  /// (paper Section 3) is pre-interned; see exists_method().
  MethodId Method(std::string_view name);
  MethodId FindMethod(std::string_view name) const;
  std::string_view MethodName(MethodId id) const;

  /// The system method `exists`: `o.exists -> o` for every object; never
  /// allowed in rule heads.
  MethodId exists_method() const { return exists_method_; }

  size_t oid_count() const { return entries_.size(); }
  size_t method_count() const { return method_names_.size(); }

  /// Renders an OID in surface syntax: symbol name, numeric literal, or a
  /// double-quoted string.
  std::string OidToString(Oid id) const;

  /// Total order on OIDs for built-in comparisons: numbers compare
  /// numerically among themselves; symbols/strings lexicographically among
  /// themselves; comparing across kinds is reported by Compare's nullopt.
  /// Returns -1/0/1, or kIncomparable when the kinds differ.
  static constexpr int kIncomparable = 2;
  int Compare(Oid a, Oid b) const;

 private:
  struct Entry {
    OidKind kind;
    uint32_t payload;  // index into the kind-specific pool
  };

  std::vector<Entry> entries_;

  StringInterner symbol_names_;
  std::unordered_map<uint32_t, Oid> symbol_to_oid_;

  std::vector<Numeric> numbers_;
  std::unordered_map<Numeric, Oid> number_to_oid_;

  StringInterner string_values_;
  std::unordered_map<uint32_t, Oid> string_to_oid_;

  StringInterner method_names_;
  MethodId exists_method_;
};

}  // namespace verso

#endif  // VERSO_CORE_SYMBOL_TABLE_H_
