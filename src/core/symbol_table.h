#ifndef VERSO_CORE_SYMBOL_TABLE_H_
#define VERSO_CORE_SYMBOL_TABLE_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/ids.h"
#include "util/interner.h"
#include "util/numeric.h"

namespace verso {

/// What an OID denotes. The paper folds values into the OID space
/// ("we consider values as specific OIDs in O"); we distinguish the payload
/// kinds so built-ins can type-check their operands.
enum class OidKind : uint8_t {
  kSymbol,  // named object or atom: henry, empl, mgr, yes
  kNumber,  // exact rational: 250, 1.1, 4600
  kString,  // quoted string value
};

/// The universe of OIDs and method names for one engine instance.
/// Interns symbols, numbers, strings, and method names; OIDs are dense and
/// stable. Not thread-safe; one SymbolTable per evaluation universe.
///
/// Overlay mode (the parallel-evaluation scratch): an overlay table layers
/// fresh interning on top of a frozen base table it never mutates. Lookups
/// consult the base first, so values present there keep their ids; fresh
/// values get ids from the base's counts upward, and the overlay's local
/// entries double as an ordered intern log. A worker lane matches against
/// its own overlay while other lanes share the same immutable base; after
/// the lanes join, ReplayOid/ReplayMethod re-interns each lane's log into
/// the real table in a deterministic order, yielding the id remapping that
/// makes parallel results bit-identical to serial ones. An overlay must
/// not outlive a mutation of its base.
class SymbolTable {
 public:
  struct OverlayTag {};

  SymbolTable();
  /// An overlay over `base` (see class comment). Read-only on `base`.
  SymbolTable(OverlayTag, const SymbolTable& base);
  SymbolTable(const SymbolTable&) = delete;
  SymbolTable& operator=(const SymbolTable&) = delete;

  /// Interns a named object / atom, e.g. "henry".
  Oid Symbol(std::string_view name);
  /// Interns an exact numeric value.
  Oid Number(const Numeric& value);
  /// Convenience: interns an integer value.
  Oid Int(int64_t value);
  /// Interns a quoted string value.
  Oid String(std::string_view text);

  /// Lookup without interning; returns an invalid Oid when absent.
  Oid FindSymbol(std::string_view name) const;
  Oid FindNumber(const Numeric& value) const;
  Oid FindString(std::string_view text) const;

  OidKind kind(Oid id) const {
    return id.value < base_oids_ ? base_->kind(id)
                                 : entries_[id.value - base_oids_].kind;
  }
  bool IsNumber(Oid id) const { return kind(id) == OidKind::kNumber; }

  /// Payload accessors; caller must check the kind first.
  std::string_view SymbolName(Oid id) const;
  const Numeric& NumberValue(Oid id) const;
  std::string_view StringValue(Oid id) const;

  /// Interns a method name, e.g. "sal". The distinguished method "exists"
  /// (paper Section 3) is pre-interned; see exists_method().
  MethodId Method(std::string_view name);
  MethodId FindMethod(std::string_view name) const;
  std::string_view MethodName(MethodId id) const;

  /// The system method `exists`: `o.exists -> o` for every object; never
  /// allowed in rule heads.
  MethodId exists_method() const { return exists_method_; }

  size_t oid_count() const { return base_oids_ + entries_.size(); }
  size_t method_count() const { return base_methods_ + method_names_.size(); }

  /// Overlay introspection and replay. The overlay's fresh entries form an
  /// ordered intern log: local index i is the oid base_oids() + i (method
  /// base_methods() + i). Replay re-interns one logged entry into `target`
  /// (normally the overlay's own base, after the parallel lanes joined),
  /// returning the id it has there — existing values hit, genuinely fresh
  /// ones extend `target` in exactly the order serial evaluation would
  /// have.
  uint32_t base_oids() const { return base_oids_; }
  uint32_t base_methods() const { return base_methods_; }
  uint32_t fresh_oids() const { return static_cast<uint32_t>(entries_.size()); }
  uint32_t fresh_methods() const {
    return static_cast<uint32_t>(method_names_.size());
  }
  Oid ReplayOid(uint32_t local_index, SymbolTable& target) const;
  MethodId ReplayMethod(uint32_t local_index, SymbolTable& target) const;

  /// Renders an OID in surface syntax: symbol name, numeric literal, or a
  /// double-quoted string.
  std::string OidToString(Oid id) const;

  /// Total order on OIDs for built-in comparisons: numbers compare
  /// numerically among themselves; symbols/strings lexicographically among
  /// themselves; comparing across kinds is reported by Compare's nullopt.
  /// Returns -1/0/1, or kIncomparable when the kinds differ.
  static constexpr int kIncomparable = 2;
  int Compare(Oid a, Oid b) const;

 private:
  struct Entry {
    OidKind kind;
    uint32_t payload;  // index into the kind-specific pool
  };

  /// Overlay mode only: the frozen base and its counts at layering time.
  const SymbolTable* base_ = nullptr;
  uint32_t base_oids_ = 0;
  uint32_t base_methods_ = 0;

  std::vector<Entry> entries_;

  StringInterner symbol_names_;
  std::unordered_map<uint32_t, Oid> symbol_to_oid_;

  std::vector<Numeric> numbers_;
  std::unordered_map<Numeric, Oid> number_to_oid_;

  StringInterner string_values_;
  std::unordered_map<uint32_t, Oid> string_to_oid_;

  StringInterner method_names_;
  MethodId exists_method_;
};

}  // namespace verso

#endif  // VERSO_CORE_SYMBOL_TABLE_H_
