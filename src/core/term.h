#ifndef VERSO_CORE_TERM_H_
#define VERSO_CORE_TERM_H_

#include <vector>

#include "core/ids.h"

namespace verso {

/// An object-id-term (paper Section 2.1): a variable or an OID. These are
/// the only terms allowed in method argument and result positions —
/// versions never appear there ("a relationship is a more stable concept
/// than the concept of versions").
struct ObjTerm {
  bool is_var = false;
  VarId var;
  Oid oid;

  static ObjTerm Var(VarId v) {
    ObjTerm t;
    t.is_var = true;
    t.var = v;
    return t;
  }
  static ObjTerm Const(Oid o) {
    ObjTerm t;
    t.is_var = false;
    t.oid = o;
    return t;
  }

  friend bool operator==(const ObjTerm& a, const ObjTerm& b) {
    if (a.is_var != b.is_var) return false;
    return a.is_var ? a.var == b.var : a.oid == b.oid;
  }
};

/// A version-id-term (paper Section 2.1): a chain of update functors
/// applied to an object-id-term, e.g. ins(del(mod(E))) has
/// ops = [ins, del, mod] (outermost first) and base E.
/// Variables are quantified over OIDs only, so a VidTerm's variable can
/// never stand for another versioned term — this restriction is what makes
/// the paper's stratification conditions come out right.
struct VidTerm {
  std::vector<UpdateKind> ops;  // outermost functor first; may be empty
  ObjTerm base;

  static VidTerm OfObj(ObjTerm base) {
    VidTerm t;
    t.base = base;
    return t;
  }

  /// Wraps this term in one more functor: Wrap(mod, V) == mod(V).
  static VidTerm Wrap(UpdateKind kind, const VidTerm& inner) {
    VidTerm t;
    t.ops.reserve(inner.ops.size() + 1);
    t.ops.push_back(kind);
    t.ops.insert(t.ops.end(), inner.ops.begin(), inner.ops.end());
    t.base = inner.base;
    return t;
  }

  uint32_t depth() const { return static_cast<uint32_t>(ops.size()); }
  bool is_plain() const { return ops.empty(); }

  /// The term with the outermost functor stripped; requires depth() > 0.
  VidTerm Inner() const {
    VidTerm t;
    t.ops.assign(ops.begin() + 1, ops.end());
    t.base = base;
    return t;
  }

  friend bool operator==(const VidTerm& a, const VidTerm& b) {
    return a.ops == b.ops && a.base == b.base;
  }
};

/// Ground method application: the `m@a1,...,ak -> r` part of a fact.
struct GroundApp {
  std::vector<Oid> args;
  Oid result;

  friend bool operator==(const GroundApp& a, const GroundApp& b) {
    return a.result == b.result && a.args == b.args;
  }
  friend bool operator<(const GroundApp& a, const GroundApp& b) {
    if (a.args != b.args) return a.args < b.args;
    return a.result < b.result;
  }
};

}  // namespace verso

#endif  // VERSO_CORE_TERM_H_
