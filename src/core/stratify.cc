#include "core/stratify.h"

#include <algorithm>
#include <deque>
#include <map>
#include <set>

#include "core/unify.h"

namespace verso {

namespace {

/// One version-id-term occurring in a rule body, with its polarity.
struct BodyTerm {
  VidTerm term;
  bool negated;
};

std::vector<BodyTerm> BodyTermsOf(const Rule& rule) {
  std::vector<BodyTerm> out;
  for (const Literal& lit : rule.body) {
    switch (lit.kind) {
      case Literal::Kind::kVersion:
        out.push_back({lit.version.version, lit.negated});
        break;
      case Literal::Kind::kUpdate:
        out.push_back({lit.update.TargetTerm(), lit.negated});
        break;
      case Literal::Kind::kBuiltin:
        break;
    }
  }
  return out;
}

/// True iff rule r'’s head version-id-term unifies with some subterm of t.
bool HeadUnifiesSubterm(const VidTerm& head_target, const VidTerm& t) {
  for (const VidTerm& sub : VidSubterms(t)) {
    if (UnifyVidTerms(head_target, sub)) return true;
  }
  return false;
}

/// Union adjacency (strict + weak) of the graph.
std::vector<std::vector<uint32_t>> Adjacency(const RuleGraph& graph) {
  std::vector<std::vector<uint32_t>> adj(graph.rule_count);
  for (const auto& [from, to] : graph.strict_edges) adj[from].push_back(to);
  for (const auto& [from, to] : graph.weak_edges) adj[from].push_back(to);
  return adj;
}

}  // namespace

RuleGraph BuildRuleGraph(const Program& program) {
  const size_t n = program.rules.size();

  std::vector<VidTerm> head_target(n);
  std::vector<VidTerm> head_version(n);  // V in head α[V]
  std::vector<std::vector<BodyTerm>> body_terms(n);
  for (size_t r = 0; r < n; ++r) {
    head_target[r] = program.rules[r].head.TargetTerm();
    head_version[r] = program.rules[r].head.version;
    body_terms[r] = BodyTermsOf(program.rules[r]);
  }

  // Edge (from, to): stratum(from) + weight <= stratum(to);
  // weight 1 = strict (lower stratum), weight 0 = weak (at most as high).
  std::set<std::pair<uint32_t, uint32_t>> strict_edges;
  std::set<std::pair<uint32_t, uint32_t>> weak_edges;
  auto add_edge = [&](size_t from, size_t to, bool strict) {
    auto edge = std::make_pair(static_cast<uint32_t>(from),
                               static_cast<uint32_t>(to));
    if (strict) {
      strict_edges.insert(edge);
    } else if (strict_edges.count(edge) == 0) {
      weak_edges.insert(edge);
    }
  };

  for (size_t r = 0; r < n; ++r) {
    // Condition (a): writers of any subterm of the head's version V are
    // strictly below this rule (once copied, a state is final).
    for (size_t rp = 0; rp < n; ++rp) {
      if (HeadUnifiesSubterm(head_target[rp], head_version[r])) {
        add_edge(rp, r, /*strict=*/true);
      }
    }
    for (const BodyTerm& bt : body_terms[r]) {
      // Conditions (b) and (c): writers of (subterms of) a version read in
      // the body are at most as high (positive) / strictly below (negated).
      for (size_t rp = 0; rp < n; ++rp) {
        if (HeadUnifiesSubterm(head_target[rp], bt.term)) {
          add_edge(rp, r, /*strict=*/bt.negated);
        }
      }
      // Condition (d): reading a del(V)/mod(V) version puts the rules that
      // perform the corresponding delete/modify strictly below, so that a
      // shrinking state is never used before it is final.
      if (!bt.term.ops.empty() && (bt.term.ops[0] == UpdateKind::kDelete ||
                                   bt.term.ops[0] == UpdateKind::kModify)) {
        const UpdateKind kind = bt.term.ops[0];
        const VidTerm inner = bt.term.Inner();
        for (size_t rp = 0; rp < n; ++rp) {
          if (program.rules[rp].head.kind != kind) continue;
          if (UnifyVidTerms(inner, head_version[rp])) {
            add_edge(rp, r, /*strict=*/true);
          }
        }
      }
    }
  }

  // Promote: a strict edge supersedes a weak edge between the same rules.
  for (const auto& e : strict_edges) weak_edges.erase(e);

  RuleGraph graph;
  graph.rule_count = n;
  graph.strict_edges.assign(strict_edges.begin(), strict_edges.end());
  graph.weak_edges.assign(weak_edges.begin(), weak_edges.end());

  // Tarjan SCC over the union graph.
  std::vector<std::vector<uint32_t>> adj = Adjacency(graph);

  std::vector<int> index(n, -1);
  std::vector<int> lowlink(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<uint32_t> stack;
  graph.component.assign(n, -1);
  int next_index = 0;
  int component_count = 0;

  // Iterative Tarjan to avoid recursion limits on large generated programs.
  struct Frame {
    uint32_t node;
    size_t child;
  };
  for (uint32_t start = 0; start < n; ++start) {
    if (index[start] != -1) continue;
    std::vector<Frame> frames{{start, 0}};
    index[start] = lowlink[start] = next_index++;
    stack.push_back(start);
    on_stack[start] = true;
    while (!frames.empty()) {
      Frame& frame = frames.back();
      if (frame.child < adj[frame.node].size()) {
        uint32_t next = adj[frame.node][frame.child++];
        if (index[next] == -1) {
          index[next] = lowlink[next] = next_index++;
          stack.push_back(next);
          on_stack[next] = true;
          frames.push_back({next, 0});
        } else if (on_stack[next]) {
          lowlink[frame.node] = std::min(lowlink[frame.node], index[next]);
        }
      } else {
        if (lowlink[frame.node] == index[frame.node]) {
          while (true) {
            uint32_t w = stack.back();
            stack.pop_back();
            on_stack[w] = false;
            graph.component[w] = component_count;
            if (w == frame.node) break;
          }
          ++component_count;
        }
        uint32_t done = frame.node;
        frames.pop_back();
        if (!frames.empty()) {
          lowlink[frames.back().node] =
              std::min(lowlink[frames.back().node], lowlink[done]);
        }
      }
    }
  }
  graph.component_count = component_count;
  return graph;
}

std::vector<uint32_t> FindRuleCycle(const RuleGraph& graph, uint32_t from,
                                    uint32_t to) {
  if (!graph.SameComponent(from, to)) return {};
  if (from == to) return {from, from};
  // BFS from `to` back to `from` inside the SCC; predecessor chain gives
  // the shortest completing path, so the rendered cycle is minimal.
  std::vector<std::vector<uint32_t>> adj = Adjacency(graph);
  std::vector<int> pred(graph.rule_count, -1);
  std::deque<uint32_t> queue{to};
  pred[to] = static_cast<int>(to);
  bool found = false;
  while (!queue.empty() && !found) {
    uint32_t node = queue.front();
    queue.pop_front();
    for (uint32_t next : adj[node]) {
      if (!graph.SameComponent(next, from) || pred[next] != -1) continue;
      pred[next] = static_cast<int>(node);
      if (next == from) {
        found = true;
        break;
      }
      queue.push_back(next);
    }
  }
  if (!found) return {};
  std::vector<uint32_t> back;  // from, pred(from), ..., to
  for (uint32_t at = from;; at = static_cast<uint32_t>(pred[at])) {
    back.push_back(at);
    if (at == to) break;
  }
  std::vector<uint32_t> cycle{from};  // from -> to -> ... -> from
  cycle.insert(cycle.end(), back.rbegin(), back.rend());
  return cycle;
}

Result<Stratification> Stratify(const Program& program) {
  const size_t n = program.rules.size();
  RuleGraph graph = BuildRuleGraph(program);

  // A strict edge inside one SCC makes the program non-stratifiable; name
  // the whole offending cycle, not just the edge's endpoints.
  for (const auto& [from, to] : graph.strict_edges) {
    if (graph.SameComponent(from, to)) {
      std::string path;
      for (uint32_t r : FindRuleCycle(graph, from, to)) {
        if (!path.empty()) path += " -> ";
        path += program.rules[r].DisplayName();
      }
      return Status::NotStratifiable(
          "rules '" + program.rules[from].DisplayName() + "' and '" +
          program.rules[to].DisplayName() +
          "' are mutually recursive through a constraint that requires '" +
          program.rules[from].DisplayName() +
          "' to be in a strictly lower stratum (conditions (a)-(d) of "
          "Section 4); dependency cycle: " +
          path);
    }
  }

  // Longest-path layering over the condensation: repeated relaxation (the
  // graph is a DAG after the check above; n is the number of rules, which
  // is small, so Bellman-Ford-style passes are fine).
  std::vector<uint32_t> comp_level(
      static_cast<size_t>(graph.component_count), 0);
  auto relax = [&](uint32_t from, uint32_t to, uint32_t weight) {
    int cf = graph.component[from];
    int ct = graph.component[to];
    if (cf == ct) return;
    comp_level[ct] = std::max(comp_level[ct], comp_level[cf] + weight);
  };
  for (int pass = 0; pass < graph.component_count; ++pass) {
    bool changed = false;
    for (const auto& [from, to] : graph.strict_edges) {
      uint32_t before = comp_level[graph.component[to]];
      relax(from, to, 1);
      changed |= comp_level[graph.component[to]] != before;
    }
    for (const auto& [from, to] : graph.weak_edges) {
      uint32_t before = comp_level[graph.component[to]];
      relax(from, to, 0);
      changed |= comp_level[graph.component[to]] != before;
    }
    if (!changed) break;
  }

  // Compact the stratum numbers to a dense range.
  std::vector<uint32_t> levels;
  levels.reserve(n);
  for (size_t r = 0; r < n; ++r) {
    levels.push_back(comp_level[graph.component[r]]);
  }
  std::vector<uint32_t> sorted = levels;
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());

  Stratification out;
  out.stratum_of_rule.resize(n);
  out.strata.resize(sorted.size());
  for (size_t r = 0; r < n; ++r) {
    uint32_t dense = static_cast<uint32_t>(
        std::lower_bound(sorted.begin(), sorted.end(), levels[r]) -
        sorted.begin());
    out.stratum_of_rule[r] = dense;
    out.strata[dense].push_back(static_cast<uint32_t>(r));
  }
  return out;
}

}  // namespace verso
