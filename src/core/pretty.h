#ifndef VERSO_CORE_PRETTY_H_
#define VERSO_CORE_PRETTY_H_

#include <string>

#include "core/object_base.h"
#include "core/program.h"
#include "core/stratify.h"
#include "core/symbol_table.h"
#include "core/update.h"
#include "core/version_table.h"

namespace verso {

/// Printers render the surface syntax accepted by the parser, so printed
/// programs and object bases round-trip (tested in parser/roundtrip_test).

std::string ObjTermToString(const ObjTerm& term, const Rule& rule,
                            const SymbolTable& symbols);
std::string VidTermToString(const VidTerm& term, const Rule& rule,
                            const SymbolTable& symbols);
std::string LiteralToString(const Literal& literal, const Rule& rule,
                            const SymbolTable& symbols);
std::string RuleToString(const Rule& rule, const SymbolTable& symbols);
std::string ProgramToString(const Program& program,
                            const SymbolTable& symbols);

/// "vid.m@a1,..,ak -> r."
std::string FactToString(Vid version, MethodId method, const GroundApp& app,
                         const SymbolTable& symbols,
                         const VersionTable& versions);

/// "ins[v].m -> r" / "del[v].m -> r" / "mod[v].m -> (r, r')".
std::string GroundUpdateToString(const GroundUpdate& update,
                                 const SymbolTable& symbols,
                                 const VersionTable& versions);

/// Canonical (sorted) textual form of an object base; one fact per line.
/// Stable across runs, used to diff evaluation results in tests.
std::string ObjectBaseToString(const ObjectBase& base,
                               const SymbolTable& symbols,
                               const VersionTable& versions);

/// "stratum 0: rule1, rule2\nstratum 1: rule3\n..."
std::string StratificationToString(const Stratification& strat,
                                   const Program& program);

}  // namespace verso

#endif  // VERSO_CORE_PRETTY_H_
