#ifndef VERSO_CORE_PROGRAM_H_
#define VERSO_CORE_PROGRAM_H_

#include <string>
#include <vector>

#include "core/rule.h"
#include "util/status.h"

namespace verso {

/// An update-program: a set of update-rules evaluated bottom-up against an
/// object base (paper Section 2.1). Analyze() must succeed before the
/// program is handed to the stratifier/evaluator.
struct Program {
  std::vector<Rule> rules;

  /// Runs AnalyzeRule on every rule (safety + head checks + join order).
  Status Analyze(const SymbolTable& symbols);

  /// Convenience: add a rule and return its index.
  size_t Add(Rule rule) {
    rules.push_back(std::move(rule));
    return rules.size() - 1;
  }
};

}  // namespace verso

#endif  // VERSO_CORE_PROGRAM_H_
