#include "store/mem_store.h"

#include <utility>

#include "storage/wal.h"

namespace verso {

using store_internal::DataMap;
using store_internal::MetaMap;

Result<std::unique_ptr<MemStore>> MemStore::Open(const std::string& dir,
                                                 Env* env) {
  std::string path = dir.empty() ? std::string() : dir + "/store.img";
  std::unique_ptr<MemStore> store(new MemStore(std::move(path), env));
  if (!store->path_.empty() && env->FileExists(store->path_)) {
    // The image is exactly one v2 frame; WriteFileAtomic installed it, so
    // anything else — a torn frame, trailing bytes, several frames — is
    // damage, not a crash artifact, and must fail the open.
    VERSO_ASSIGN_OR_RETURN(WalReadResult image,
                           ReadWal(store->path_, env));
    if (image.truncated_tail || image.records.size() != 1) {
      return Status::Corruption("mem store image '" + store->path_ +
                                "' is damaged");
    }
    VERSO_RETURN_IF_ERROR(store_internal::ApplyRecord(
        image.records[0].payload, store->data_, store->meta_));
    VERSO_RETURN_IF_ERROR(store_internal::CheckFormat(store->meta_, "mem"));
  }
  return store;
}

Result<std::string> MemStore::Get(const ReadTransaction& txn,
                                  std::string_view key) const {
  VERSO_RETURN_IF_ERROR(CheckRead(txn));
  store_internal::Metrics::Get().gets.Add();
  auto it = data_.find(key);
  if (it == data_.end()) {
    return Status::NotFound("no store entry for key");
  }
  return it->second;
}

bool MemStore::Contains(const ReadTransaction& txn,
                        std::string_view key) const {
  if (!CheckRead(txn).ok()) return false;
  return data_.find(key) != data_.end();
}

Status MemStore::Scan(const ReadTransaction& txn, std::string_view prefix,
                      const ScanFn& fn) const {
  VERSO_RETURN_IF_ERROR(CheckRead(txn));
  store_internal::Metrics::Get().scans.Add();
  for (auto it = data_.lower_bound(prefix); it != data_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    VERSO_RETURN_IF_ERROR(fn(it->first, it->second));
  }
  return Status::Ok();
}

Result<uint64_t> MemStore::GetMeta(const ReadTransaction& txn,
                                   std::string_view name) const {
  VERSO_RETURN_IF_ERROR(CheckRead(txn));
  auto it = meta_.find(name);
  if (it == meta_.end()) {
    return Status::NotFound("no store meta entry for name");
  }
  return it->second;
}

Status MemStore::ApplyCommit(const WriteTransaction& txn) {
  // Durability first, on a scratch copy: the new image hits disk before
  // memory moves, and a failed write leaves the live maps (and the old
  // image, untouched by WriteFileAtomic) exactly as they were.
  DataMap data = data_;
  MetaMap meta = meta_;
  for (const WriteTransaction::Op& op : txn.ops()) {
    switch (op.kind) {
      case WriteTransaction::Op::Kind::kPut:
        data[op.key] = op.value;
        break;
      case WriteTransaction::Op::Kind::kDelete:
        data.erase(op.key);
        break;
      case WriteTransaction::Op::Kind::kPutMeta:
        meta[op.key] = op.meta;
        break;
    }
  }
  if (!path_.empty()) {
    VERSO_ASSIGN_OR_RETURN(
        std::string frame,
        EncodeWalFrame(WalRecordKind::kBatch,
                       store_internal::EncodeImage(data, meta)));
    VERSO_RETURN_IF_ERROR(env_->WriteFileAtomic(path_, frame));
  }
  data_ = std::move(data);
  meta_ = std::move(meta);
  return Status::Ok();
}

}  // namespace verso
