#include "store/store.h"

#include "obs/metrics.h"
#include "storage/codec.h"
#include "store/internal.h"
#include "store/mem_store.h"
#include "store/page_log_store.h"

namespace verso {

namespace store_internal {

std::string EncodeOps(const std::vector<WriteTransaction::Op>& ops) {
  BufferWriter writer;
  writer.Varint(ops.size());
  for (const WriteTransaction::Op& op : ops) {
    writer.Byte(static_cast<uint8_t>(op.kind));
    writer.Str(op.key);
    switch (op.kind) {
      case WriteTransaction::Op::Kind::kPut:
        writer.Str(op.value);
        break;
      case WriteTransaction::Op::Kind::kDelete:
        break;
      case WriteTransaction::Op::Kind::kPutMeta:
        writer.Varint(op.meta);
        break;
    }
  }
  return writer.Take();
}

std::string EncodeImage(const DataMap& data, const MetaMap& meta) {
  BufferWriter writer;
  writer.Varint(data.size() + meta.size());
  for (const auto& [key, value] : data) {
    writer.Byte(static_cast<uint8_t>(WriteTransaction::Op::Kind::kPut));
    writer.Str(key);
    writer.Str(value);
  }
  for (const auto& [name, value] : meta) {
    writer.Byte(static_cast<uint8_t>(WriteTransaction::Op::Kind::kPutMeta));
    writer.Str(name);
    writer.Varint(value);
  }
  return writer.Take();
}

Status ApplyRecord(std::string_view payload, DataMap& data, MetaMap& meta) {
  BufferReader reader(payload);
  VERSO_ASSIGN_OR_RETURN(uint64_t count, reader.Varint());
  for (uint64_t i = 0; i < count; ++i) {
    VERSO_ASSIGN_OR_RETURN(uint8_t kind, reader.Byte());
    VERSO_ASSIGN_OR_RETURN(std::string key, reader.Str());
    switch (static_cast<WriteTransaction::Op::Kind>(kind)) {
      case WriteTransaction::Op::Kind::kPut: {
        VERSO_ASSIGN_OR_RETURN(std::string value, reader.Str());
        data[std::move(key)] = std::move(value);
        break;
      }
      case WriteTransaction::Op::Kind::kDelete:
        data.erase(key);
        break;
      case WriteTransaction::Op::Kind::kPutMeta: {
        VERSO_ASSIGN_OR_RETURN(uint64_t value, reader.Varint());
        meta[std::move(key)] = value;
        break;
      }
      default:
        return Status::Corruption("store: unknown op kind " +
                                  std::to_string(kind));
    }
  }
  if (!reader.AtEnd()) {
    return Status::Corruption("store: record has trailing bytes");
  }
  return Status::Ok();
}

Status CheckFormat(const MetaMap& meta, const char* backend) {
  auto it = meta.find(kFormatMetaKey);
  if (it == meta.end()) {
    // Legal only for an empty store; a populated store always carries
    // the stamp (Commit adds it), so its absence means a damaged or
    // hand-edited meta table.
    if (meta.empty()) return Status::Ok();
    return Status::Corruption(std::string(backend) +
                              " store has meta entries but no format stamp");
  }
  if (it->second > kFormatVersion) {
    return Status::InvalidArgument(
        std::string(backend) + " store has format version " +
        std::to_string(it->second) + ", newer than this build's " +
        std::to_string(kFormatVersion));
  }
  return Status::Ok();
}

Metrics& Metrics::Get() {
  static Metrics* metrics =
      new Metrics(MetricsRegistry::Global());  // never dies
  return *metrics;
}

Metrics::Metrics(MetricsRegistry& registry)
    : puts(registry.GetCounter("store.puts")),
      deletes(registry.GetCounter("store.deletes")),
      gets(registry.GetCounter("store.gets")),
      scans(registry.GetCounter("store.scans")),
      commits(registry.GetCounter("store.commits")),
      compactions(registry.GetCounter("store.compactions")),
      commit_us(registry.GetHistogram("store.commit_us")) {}

}  // namespace store_internal

const char* StoreBackendName(StoreBackend backend) {
  switch (backend) {
    case StoreBackend::kMem:
      return "mem";
    case StoreBackend::kPageLog:
      return "pagelog";
  }
  return "unknown";
}

Result<StoreBackend> ParseStoreBackend(std::string_view name) {
  if (name == "mem") return StoreBackend::kMem;
  if (name == "pagelog") return StoreBackend::kPageLog;
  return Status::InvalidArgument("unknown store backend '" +
                                 std::string(name) +
                                 "' (expected mem or pagelog)");
}

void WriteTransaction::Put(std::string key, std::string value) {
  ops_.push_back({Op::Kind::kPut, std::move(key), std::move(value), 0});
}

void WriteTransaction::Delete(std::string key) {
  ops_.push_back({Op::Kind::kDelete, std::move(key), std::string(), 0});
}

void WriteTransaction::PutMeta(std::string name, uint64_t value) {
  ops_.push_back({Op::Kind::kPutMeta, std::move(name), std::string(), value});
}

Status WriteTransaction::Commit() {
  if (committed_) {
    return Status::InvalidArgument("write transaction already committed");
  }
  // Every committed batch carries the format stamp, so any non-empty
  // store names the format that wrote it.
  bool stamped = false;
  for (const Op& op : ops_) {
    if (op.kind == Op::Kind::kPutMeta &&
        op.key == store_internal::kFormatMetaKey) {
      stamped = true;
      break;
    }
  }
  if (!stamped) {
    PutMeta(store_internal::kFormatMetaKey, store_internal::kFormatVersion);
  }
  store_internal::Metrics& metrics = store_internal::Metrics::Get();
  ScopedTimer timer(MetricsRegistry::Global(), metrics.commit_us);
  VERSO_RETURN_IF_ERROR(store_->ApplyCommit(*this));
  committed_ = true;
  metrics.commits.Add();
  for (const Op& op : ops_) {
    switch (op.kind) {
      case Op::Kind::kPut:
        metrics.puts.Add();
        break;
      case Op::Kind::kDelete:
        metrics.deletes.Add();
        break;
      case Op::Kind::kPutMeta:
        break;
    }
  }
  return Status::Ok();
}

Result<std::unique_ptr<Store>> OpenStore(StoreBackend backend,
                                         const std::string& dir, Env* env) {
  if (env == nullptr) env = Env::Default();
  if (!dir.empty()) {
    VERSO_RETURN_IF_ERROR(env->EnsureDirectory(dir));
  }
  switch (backend) {
    case StoreBackend::kMem: {
      VERSO_ASSIGN_OR_RETURN(std::unique_ptr<MemStore> store,
                             MemStore::Open(dir, env));
      return std::unique_ptr<Store>(std::move(store));
    }
    case StoreBackend::kPageLog: {
      if (dir.empty()) {
        // An ephemeral page log has nothing to append to; volatile
        // callers get the volatile backend.
        VERSO_ASSIGN_OR_RETURN(std::unique_ptr<MemStore> store,
                               MemStore::Open(dir, env));
        return std::unique_ptr<Store>(std::move(store));
      }
      VERSO_ASSIGN_OR_RETURN(std::unique_ptr<PageLogStore> store,
                             PageLogStore::Open(dir, env));
      return std::unique_ptr<Store>(std::move(store));
    }
  }
  return Status::InvalidArgument("unknown store backend");
}

}  // namespace verso
