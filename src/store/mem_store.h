#ifndef VERSO_STORE_MEM_STORE_H_
#define VERSO_STORE_MEM_STORE_H_

#include <memory>
#include <string>

#include "store/internal.h"
#include "store/store.h"
#include "util/io.h"
#include "util/result.h"

namespace verso {

/// In-memory ordered-map backend (StoreBackend::kMem). With a directory,
/// every commit rewrites `<dir>/store.img` — one CRC'd v2 WAL frame
/// holding the whole image — installed by Env::WriteFileAtomic, so the
/// rename is the only commit point and a crash anywhere leaves either the
/// old image or the new one, never a blend. With no directory the store
/// is volatile (ephemeral databases).
class MemStore : public Store {
 public:
  /// `dir` empty = volatile. An existing image that fails its CRC or
  /// decode refuses to open: the image is the checkpoint of record, so
  /// damage must surface instead of silently reading as an empty store.
  static Result<std::unique_ptr<MemStore>> Open(const std::string& dir,
                                                Env* env);

  const char* name() const override { return "mem"; }
  Result<std::string> Get(const ReadTransaction& txn,
                          std::string_view key) const override;
  bool Contains(const ReadTransaction& txn,
                std::string_view key) const override;
  Status Scan(const ReadTransaction& txn, std::string_view prefix,
              const ScanFn& fn) const override;
  Result<uint64_t> GetMeta(const ReadTransaction& txn,
                           std::string_view name) const override;
  size_t key_count() const override { return data_.size(); }

  const std::string& image_path() const { return path_; }

 protected:
  Status ApplyCommit(const WriteTransaction& txn) override;

 private:
  MemStore(std::string path, Env* env)
      : path_(std::move(path)), env_(env) {}

  std::string path_;  // empty = volatile
  Env* env_;
  store_internal::DataMap data_;
  store_internal::MetaMap meta_;
};

}  // namespace verso

#endif  // VERSO_STORE_MEM_STORE_H_
