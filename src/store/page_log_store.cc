#include "store/page_log_store.h"

#include <utility>

namespace verso {

using store_internal::DataMap;
using store_internal::MetaMap;

Result<std::unique_ptr<PageLogStore>> PageLogStore::Open(
    const std::string& dir, Env* env) {
  std::unique_ptr<PageLogStore> store(
      new PageLogStore(dir + "/store.plog", env));
  VERSO_ASSIGN_OR_RETURN(WalReadResult log, ReadWal(store->path_, env));
  for (const WalRecord& record : log.records) {
    VERSO_RETURN_IF_ERROR(store_internal::ApplyRecord(
        record.payload, store->data_, store->meta_));
  }
  store->recovered_torn_ = log.truncated_tail;
  if (log.truncated_tail) {
    // Crashed mid-append: chop the torn frame so the next append extends
    // the valid prefix instead of burying commits behind garbage. The
    // checkpoint that was writing it never acknowledged — the database's
    // WAL still holds its commits — so nothing is lost.
    VERSO_RETURN_IF_ERROR(
        env->TruncateFile(store->path_, log.valid_bytes));
  }
  store->bytes_ = log.valid_bytes;
  VERSO_RETURN_IF_ERROR(store_internal::CheckFormat(store->meta_, "pagelog"));
  return store;
}

Result<std::string> PageLogStore::Get(const ReadTransaction& txn,
                                      std::string_view key) const {
  VERSO_RETURN_IF_ERROR(CheckRead(txn));
  store_internal::Metrics::Get().gets.Add();
  auto it = data_.find(key);
  if (it == data_.end()) {
    return Status::NotFound("no store entry for key");
  }
  return it->second;
}

bool PageLogStore::Contains(const ReadTransaction& txn,
                            std::string_view key) const {
  if (!CheckRead(txn).ok()) return false;
  return data_.find(key) != data_.end();
}

Status PageLogStore::Scan(const ReadTransaction& txn, std::string_view prefix,
                          const ScanFn& fn) const {
  VERSO_RETURN_IF_ERROR(CheckRead(txn));
  store_internal::Metrics::Get().scans.Add();
  for (auto it = data_.lower_bound(prefix); it != data_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    VERSO_RETURN_IF_ERROR(fn(it->first, it->second));
  }
  return Status::Ok();
}

Result<uint64_t> PageLogStore::GetMeta(const ReadTransaction& txn,
                                       std::string_view name) const {
  VERSO_RETURN_IF_ERROR(CheckRead(txn));
  auto it = meta_.find(name);
  if (it == meta_.end()) {
    return Status::NotFound("no store meta entry for name");
  }
  return it->second;
}

Status PageLogStore::ApplyCommit(const WriteTransaction& txn) {
  if (!tail_valid_) {
    return Status::IoError(
        "page log tail is unknown after a failed append; reopen the store");
  }
  std::string payload = store_internal::EncodeOps(txn.ops());
  Status appended = writer_.Append(WalRecordKind::kBatch, payload);
  if (!appended.ok()) {
    // A failed append may have landed a partial frame; roll the file back
    // to the pre-append tail so a later commit extends valid data. If the
    // rollback itself fails the tail is unknown — refuse further writes
    // (reads keep serving; reopen re-derives the tail from the CRCs).
    Status rolled = env_->FileExists(path_)
                        ? env_->TruncateFile(path_, bytes_)
                        : Status::Ok();
    if (!rolled.ok()) tail_valid_ = false;
    return appended;
  }
  bytes_ += payload.size() + 12;  // v2 frame: 12-byte header + payload
  for (const WriteTransaction::Op& op : txn.ops()) {
    switch (op.kind) {
      case WriteTransaction::Op::Kind::kPut:
        data_[op.key] = op.value;
        break;
      case WriteTransaction::Op::Kind::kDelete:
        data_.erase(op.key);
        break;
      case WriteTransaction::Op::Kind::kPutMeta:
        meta_[op.key] = op.meta;
        break;
    }
  }
  MaybeCompact();
  return Status::Ok();
}

size_t PageLogStore::live_payload_bytes() const {
  size_t bytes = 0;
  for (const auto& [key, value] : data_) {
    bytes += key.size() + value.size() + 4;  // + op framing overhead
  }
  for (const auto& [name, value] : meta_) {
    (void)value;
    bytes += name.size() + 12;
  }
  return bytes;
}

void PageLogStore::MaybeCompact() {
  if (bytes_ < kCompactMinBytes) return;
  size_t live = live_payload_bytes();
  if (bytes_ <= kCompactDeadFactor * live) return;
  // Rewrite the live image as one frame and install it over the log by
  // atomic rename: a crash at any point leaves either the old log or the
  // compacted one, both replaying to the identical index. Best-effort —
  // on failure the un-compacted log still holds everything, so the error
  // is swallowed and the next commit retries the size check.
  Result<std::string> frame = EncodeWalFrame(
      WalRecordKind::kBatch, store_internal::EncodeImage(data_, meta_));
  if (!frame.ok()) return;
  if (!env_->WriteFileAtomic(path_, *frame).ok()) return;
  bytes_ = frame->size();
  store_internal::Metrics::Get().compactions.Add();
}

}  // namespace verso
