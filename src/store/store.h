#ifndef VERSO_STORE_STORE_H_
#define VERSO_STORE_STORE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/io.h"
#include "util/result.h"

namespace verso {

class Store;

/// Which Store implementation backs a database directory.
enum class StoreBackend : uint8_t {
  /// In-memory ordered map; when the store has a directory, every commit
  /// rewrites `<dir>/store.img` — one CRC'd v2 frame holding the whole
  /// image — installed by atomic rename. O(base) per commit, simplest
  /// crash story (the rename is the only commit point): the right trade
  /// for small bases, and the codec path the pre-store snapshot
  /// checkpoint used.
  kMem = 0,
  /// Append-only page log `<dir>/store.plog`: each commit appends one
  /// CRC'd v2 frame of put/delete ops; an in-memory key index is rebuilt
  /// by replay on open, and the log compacts itself once dead bytes
  /// dominate. O(delta) per commit — the backend shape for bases that
  /// outgrow whole-image rewrites.
  kPageLog = 1,
};

/// "mem" / "pagelog" — stable names used by env knobs and test output.
const char* StoreBackendName(StoreBackend backend);
/// Inverse of StoreBackendName; kInvalidArgument for unknown names.
Result<StoreBackend> ParseStoreBackend(std::string_view name);

/// Token for a consistent read view. The embedded contract is
/// single-threaded (one writer, no concurrent readers mid-commit), so the
/// token carries no snapshot state — it exists so every read names the
/// transaction it belongs to and a future MVCC backend can widen it
/// without touching call sites.
class ReadTransaction {
 public:
  const Store* store() const { return store_; }

 private:
  friend class Store;
  explicit ReadTransaction(const Store* store) : store_(store) {}
  const Store* store_;
};

/// A staged batch of writes, atomic at Commit(): either every data op and
/// meta write is durable and visible, or none is. Destroying an
/// uncommitted transaction discards the staging buffer (abort).
class WriteTransaction {
 public:
  struct Op {
    enum class Kind : uint8_t { kPut = 0, kDelete = 1, kPutMeta = 2 };
    Kind kind;
    std::string key;
    std::string value;  // kPut payload
    uint64_t meta = 0;  // kPutMeta payload
  };

  WriteTransaction(WriteTransaction&&) = default;
  WriteTransaction& operator=(WriteTransaction&&) = delete;

  void Put(std::string key, std::string value);
  void Delete(std::string key);
  /// Writes one named u64 in the store's meta table (format version,
  /// checkpoint generation) atomically with the data ops.
  void PutMeta(std::string name, uint64_t value);

  /// Makes the staged ops durable and visible, in staging order, through
  /// the owning backend. At most once per transaction; a failed commit
  /// leaves the store unchanged (both backends commit atomically) and the
  /// transaction may not be retried — stage a fresh one.
  Status Commit();

  bool committed() const { return committed_; }
  const std::vector<Op>& ops() const { return ops_; }

 private:
  friend class Store;
  explicit WriteTransaction(Store* store) : store_(store) {}

  Store* store_;
  bool committed_ = false;
  std::vector<Op> ops_;
};

/// Scan callback: invoked once per (key, value) in ascending key order;
/// returning an error stops the scan and propagates out of Scan.
using ScanFn =
    std::function<Status(std::string_view key, std::string_view value)>;

/// The storage component the database checkpoints into: ordered key/value
/// state plus a small named-u64 meta table, read and written under
/// explicit transactions (nano-node's `nano/store/` component shape). The
/// database keys encoded object-version records under it ("b/" + version
/// key) and tracks its checkpoint generation in the meta table; the
/// evaluator never sees the store — larger-than-RAM bases and bounded
/// restarts are backend properties, not evaluator rewrites.
///
/// Not thread-safe; one writer per directory (the embedded contract the
/// Database layer already imposes).
class Store {
 public:
  virtual ~Store() = default;

  /// StoreBackendName of this backend.
  virtual const char* name() const = 0;

  ReadTransaction BeginRead() const { return ReadTransaction(this); }
  WriteTransaction BeginWrite() { return WriteTransaction(this); }

  /// The value under `key`, or kNotFound.
  virtual Result<std::string> Get(const ReadTransaction& txn,
                                  std::string_view key) const = 0;
  virtual bool Contains(const ReadTransaction& txn,
                        std::string_view key) const = 0;
  /// Range scan: every entry whose key starts with `prefix` (all entries
  /// for an empty prefix), ascending by key.
  virtual Status Scan(const ReadTransaction& txn, std::string_view prefix,
                      const ScanFn& fn) const = 0;
  /// The named meta-table entry, or kNotFound.
  virtual Result<uint64_t> GetMeta(const ReadTransaction& txn,
                                   std::string_view name) const = 0;

  /// Live data keys (meta entries not counted).
  virtual size_t key_count() const = 0;
  bool empty() const { return key_count() == 0; }

 protected:
  friend class WriteTransaction;
  /// Applies one staged batch atomically: durable first, visible after.
  virtual Status ApplyCommit(const WriteTransaction& txn) = 0;

  /// Backends validate that a read belongs to this store before honoring
  /// it — catching the one misuse the lightweight token permits.
  Status CheckRead(const ReadTransaction& txn) const {
    if (txn.store() != this) {
      return Status::InvalidArgument(
          "read transaction belongs to a different store");
    }
    return Status::Ok();
  }
};

/// Opens the chosen backend rooted in `dir` (created if needed; every
/// byte through `env`, nullptr = Env::Default()). An empty `dir` yields a
/// volatile in-memory store (ephemeral databases). Refuses a store whose
/// on-disk format version is newer than this build understands.
Result<std::unique_ptr<Store>> OpenStore(StoreBackend backend,
                                         const std::string& dir,
                                         Env* env = nullptr);

}  // namespace verso

#endif  // VERSO_STORE_STORE_H_
