#ifndef VERSO_STORE_PAGE_LOG_STORE_H_
#define VERSO_STORE_PAGE_LOG_STORE_H_

#include <cstddef>
#include <memory>
#include <string>

#include "storage/wal.h"
#include "store/internal.h"
#include "store/store.h"
#include "util/io.h"
#include "util/result.h"

namespace verso {

/// Append-only page-log backend (StoreBackend::kPageLog). The data file
/// `<dir>/store.plog` is a sequence of CRC'd v2 WAL frames, one per
/// committed transaction, each carrying that commit's put/delete/meta ops;
/// the in-memory key index is rebuilt on open by replaying the log in
/// order. A torn final frame (crashed writer) is chopped on open — the
/// standard crashed-writer contract the WAL itself uses. Commits are
/// O(delta); once dead bytes dominate (overwrites and deletes), the log
/// compacts itself by atomically replacing the file with one frame
/// holding the live image.
class PageLogStore : public Store {
 public:
  static Result<std::unique_ptr<PageLogStore>> Open(const std::string& dir,
                                                    Env* env);

  const char* name() const override { return "pagelog"; }
  Result<std::string> Get(const ReadTransaction& txn,
                          std::string_view key) const override;
  bool Contains(const ReadTransaction& txn,
                std::string_view key) const override;
  Status Scan(const ReadTransaction& txn, std::string_view prefix,
              const ScanFn& fn) const override;
  Result<uint64_t> GetMeta(const ReadTransaction& txn,
                           std::string_view name) const override;
  size_t key_count() const override { return data_.size(); }

  const std::string& log_path() const { return path_; }
  /// True if open found (and chopped) a torn final frame.
  bool recovered_torn_tail() const { return recovered_torn_; }
  /// Current byte length of the log file.
  size_t log_bytes() const { return bytes_; }

  /// Compaction triggers when the log passes kCompactMinBytes AND holds
  /// more than kCompactDeadFactor bytes per live payload byte.
  static constexpr size_t kCompactMinBytes = 64u << 10;  // 64 KiB
  static constexpr size_t kCompactDeadFactor = 3;

 protected:
  Status ApplyCommit(const WriteTransaction& txn) override;

 private:
  PageLogStore(std::string path, Env* env)
      : path_(std::move(path)), writer_(path_, env), env_(env) {}

  /// An approximation of one frame's worth of the live image, to decide
  /// when compaction pays. Exact accounting isn't needed — the factor is
  /// a heuristic — but it must never overestimate so badly that
  /// compaction loops.
  size_t live_payload_bytes() const;
  void MaybeCompact();

  std::string path_;
  WalWriter writer_;
  Env* env_;
  store_internal::DataMap data_;
  store_internal::MetaMap meta_;
  size_t bytes_ = 0;
  bool recovered_torn_ = false;
  /// False after a failed append whose rollback also failed: the tail may
  /// hold a partial frame that a further append would bury, so the store
  /// refuses writes until reopened.
  bool tail_valid_ = true;
};

}  // namespace verso

#endif  // VERSO_STORE_PAGE_LOG_STORE_H_
