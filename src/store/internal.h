#ifndef VERSO_STORE_INTERNAL_H_
#define VERSO_STORE_INTERNAL_H_

// Shared between the store backends (not part of the public store API):
// the record codec both backends frame their bytes with, and the store.*
// metric handles.

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.h"
#include "store/store.h"
#include "util/result.h"

namespace verso {
namespace store_internal {

/// On-disk format version. Every commit stamps it into the meta table
/// (WriteTransaction::Commit adds the entry if the caller didn't), so any
/// non-empty store names the format it was written by and a newer-format
/// store is refused at open instead of misread.
constexpr uint64_t kFormatVersion = 1;
constexpr char kFormatMetaKey[] = "format";

/// Heterogeneous-lookup ordered maps: Scan is an in-order walk, prefix
/// seeks use lower_bound on string_views without allocating.
using DataMap = std::map<std::string, std::string, std::less<>>;
using MetaMap = std::map<std::string, uint64_t, std::less<>>;

/// Record payload: varint op count, then per op a kind byte
/// (WriteTransaction::Op::Kind), the key, and the value (length-prefixed
/// string for puts, varint for meta). One format serializes both a
/// commit's staged ops (page-log appends) and a whole live image (mem
/// images, page-log compaction) — an image is just one big commit of
/// every live entry.
std::string EncodeOps(const std::vector<WriteTransaction::Op>& ops);
std::string EncodeImage(const DataMap& data, const MetaMap& meta);
/// Applies one record to the maps in op order (deletes erase; absent-key
/// deletes are no-ops, so replay is idempotent).
Status ApplyRecord(std::string_view payload, DataMap& data, MetaMap& meta);

/// Rejects stores written by a newer build.
Status CheckFormat(const MetaMap& meta, const char* backend);

/// store.* handles into the global registry, bound once (registration
/// takes a mutex; store ops must not).
struct Metrics {
  Counter& puts;
  Counter& deletes;
  Counter& gets;
  Counter& scans;
  Counter& commits;
  Counter& compactions;
  Histogram& commit_us;

  static Metrics& Get();
  explicit Metrics(MetricsRegistry& registry);
};

}  // namespace store_internal
}  // namespace verso

#endif  // VERSO_STORE_INTERNAL_H_
