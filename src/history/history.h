#ifndef VERSO_HISTORY_HISTORY_H_
#define VERSO_HISTORY_HISTORY_H_

#include <string>
#include <vector>

#include "core/object_base.h"
#include "core/symbol_table.h"
#include "core/version_table.h"
#include "util/result.h"

namespace verso {

/// Temporal view over result(P) — the Section 6 observation that "VIDs
/// have temporal characteristics, denoting different versions of an
/// object during its update-process", made queryable: each object's
/// materialized versions form a time line (version-linearity gives the
/// order), and consecutive stages are diffed into added / removed /
/// modified method-applications — the update history the VID spells out
/// syntactically, reconstructed from states.

/// A method-application whose result changed between two stages.
struct ModifiedApp {
  MethodId method;
  std::vector<Oid> args;
  Oid old_result;
  Oid new_result;
};

/// One stage of an object's update process.
struct HistoryStage {
  Vid vid;
  /// Functor that created this stage; meaningless for stage 0 (the
  /// object as found in ob).
  UpdateKind kind = UpdateKind::kInsert;
  size_t fact_count = 0;

  /// Diff against the previous stage. Pairs (lost r / gained r' on the
  /// same method and arguments) are reported as `modified`; everything
  /// else as added/removed.
  std::vector<std::pair<MethodId, GroundApp>> added;
  std::vector<std::pair<MethodId, GroundApp>> removed;
  std::vector<ModifiedApp> modified;
};

/// The full (linear) update history of one object.
struct ObjectHistory {
  Oid object;
  std::vector<HistoryStage> stages;  // oldest first; stage 0 is plain o

  const HistoryStage& final_stage() const { return stages.back(); }
  size_t update_group_count() const { return stages.size() - 1; }
};

/// Extracts the history of `object` from result(P). Fails with
/// NotVersionLinear if the object's materialized versions do not form a
/// chain, and NotFound if the object has no versions at all.
Result<ObjectHistory> HistoryOf(const ObjectBase& result, Oid object,
                                const SymbolTable& symbols,
                                const VersionTable& versions);

/// Histories of every object in result(P), ordered by object OID.
Result<std::vector<ObjectHistory>> AllHistories(const ObjectBase& result,
                                                const SymbolTable& symbols,
                                                const VersionTable& versions);

/// Renders a Figure-1-style line per stage:
///     o                        4 facts
///     -mod-> mod(o)            sal: 4000 -> 4600
///     -del-> del(mod(o))       -isa -> empl, -sal -> 4600 ...
std::string HistoryToString(const ObjectHistory& history,
                            const SymbolTable& symbols,
                            const VersionTable& versions);

}  // namespace verso

#endif  // VERSO_HISTORY_HISTORY_H_
