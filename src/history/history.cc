#include "history/history.h"

#include <algorithm>
#include <map>

namespace verso {

namespace {

/// Diffs two stage states into the added/removed/modified buckets.
void DiffStates(const VersionState* before, const VersionState& after,
                HistoryStage& stage) {
  // Collect removals first; pair them up with additions on the same
  // (method, args) to classify modifies.
  std::vector<std::pair<MethodId, GroundApp>> raw_added;
  std::vector<std::pair<MethodId, GroundApp>> raw_removed;
  for (const auto& [method, apps] : after.methods()) {
    for (const GroundApp& app : apps) {
      if (before == nullptr || !before->ContainsApp(method, app)) {
        raw_added.emplace_back(method, app);
      }
    }
  }
  if (before != nullptr) {
    for (const auto& [method, apps] : before->methods()) {
      for (const GroundApp& app : apps) {
        if (!after.ContainsApp(method, app)) {
          raw_removed.emplace_back(method, app);
        }
      }
    }
  }
  // Pair one removed with one added per (method, args): a modify.
  std::vector<bool> added_used(raw_added.size(), false);
  for (const auto& [method, removed_app] : raw_removed) {
    bool paired = false;
    for (size_t i = 0; i < raw_added.size(); ++i) {
      if (added_used[i]) continue;
      if (raw_added[i].first != method) continue;
      if (raw_added[i].second.args != removed_app.args) continue;
      ModifiedApp mod;
      mod.method = method;
      mod.args = removed_app.args;
      mod.old_result = removed_app.result;
      mod.new_result = raw_added[i].second.result;
      stage.modified.push_back(std::move(mod));
      added_used[i] = true;
      paired = true;
      break;
    }
    if (!paired) stage.removed.emplace_back(method, removed_app);
  }
  for (size_t i = 0; i < raw_added.size(); ++i) {
    if (!added_used[i]) stage.added.push_back(raw_added[i]);
  }
}

}  // namespace

Result<ObjectHistory> HistoryOf(const ObjectBase& result, Oid object,
                                const SymbolTable& symbols,
                                const VersionTable& versions) {
  std::vector<Vid> vids;
  for (const auto& [vid, state] : result.versions()) {
    if (versions.root(vid) == object) vids.push_back(vid);
  }
  if (vids.empty()) {
    return Status::NotFound("object '" + symbols.OidToString(object) +
                            "' has no versions in this object base");
  }
  std::sort(vids.begin(), vids.end(), [&](Vid a, Vid b) {
    return versions.depth(a) < versions.depth(b);
  });
  // Linearity: each vid must be a subterm of the deepest one.
  Vid deepest = vids.back();
  for (Vid vid : vids) {
    if (!versions.IsSubterm(vid, deepest)) {
      return Status::NotVersionLinear(
          "object '" + symbols.OidToString(object) +
          "' has incomparable versions " + versions.ToString(vid, symbols) +
          " and " + versions.ToString(deepest, symbols));
    }
  }

  ObjectHistory history;
  history.object = object;
  const VersionState* previous = nullptr;
  for (Vid vid : vids) {
    HistoryStage stage;
    stage.vid = vid;
    if (versions.depth(vid) > 0) stage.kind = versions.kind(vid);
    const VersionState* state = result.StateOf(vid);
    stage.fact_count = state->fact_count();
    DiffStates(previous, *state, stage);
    history.stages.push_back(std::move(stage));
    previous = state;
  }
  return history;
}

Result<std::vector<ObjectHistory>> AllHistories(const ObjectBase& result,
                                                const SymbolTable& symbols,
                                                const VersionTable& versions) {
  std::map<Oid, bool> objects;
  for (const auto& [vid, state] : result.versions()) {
    objects[versions.root(vid)] = true;
  }
  std::vector<ObjectHistory> histories;
  histories.reserve(objects.size());
  for (const auto& [object, unused] : objects) {
    VERSO_ASSIGN_OR_RETURN(ObjectHistory history,
                           HistoryOf(result, object, symbols, versions));
    histories.push_back(std::move(history));
  }
  return histories;
}

std::string HistoryToString(const ObjectHistory& history,
                            const SymbolTable& symbols,
                            const VersionTable& versions) {
  std::string out;
  auto app_str = [&](MethodId method, const GroundApp& app) {
    std::string s(symbols.MethodName(method));
    if (!app.args.empty()) {
      s += '@';
      for (size_t i = 0; i < app.args.size(); ++i) {
        if (i > 0) s += ',';
        s += symbols.OidToString(app.args[i]);
      }
    }
    s += " -> ";
    s += symbols.OidToString(app.result);
    return s;
  };
  for (size_t i = 0; i < history.stages.size(); ++i) {
    const HistoryStage& stage = history.stages[i];
    if (i == 0) {
      out += versions.ToString(stage.vid, symbols);
    } else {
      out += "  -";
      out += UpdateKindName(stage.kind);
      out += "-> ";
      out += versions.ToString(stage.vid, symbols);
    }
    out += "  (";
    out += std::to_string(stage.fact_count);
    out += " facts)";
    std::string details;
    for (const ModifiedApp& mod : stage.modified) {
      if (!details.empty()) details += ", ";
      details += std::string(symbols.MethodName(mod.method)) + ": " +
                 symbols.OidToString(mod.old_result) + " -> " +
                 symbols.OidToString(mod.new_result);
    }
    for (const auto& [method, app] : stage.added) {
      if (i == 0) break;  // stage 0's "additions" are just the base state
      if (!details.empty()) details += ", ";
      details += "+" + app_str(method, app);
    }
    for (const auto& [method, app] : stage.removed) {
      if (!details.empty()) details += ", ";
      details += "-" + app_str(method, app);
    }
    if (!details.empty()) {
      out += "  ";
      out += details;
    }
    out += '\n';
  }
  return out;
}

}  // namespace verso
