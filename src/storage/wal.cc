#include "storage/wal.h"

#include "util/crc32.h"
#include "util/io.h"

namespace verso {

namespace {

void AppendU32(std::string& out, uint32_t v) {
  char bytes[4];
  bytes[0] = static_cast<char>(v & 0xff);
  bytes[1] = static_cast<char>((v >> 8) & 0xff);
  bytes[2] = static_cast<char>((v >> 16) & 0xff);
  bytes[3] = static_cast<char>((v >> 24) & 0xff);
  out.append(bytes, 4);
}

uint32_t ReadU32(const char* p) {
  return static_cast<uint32_t>(static_cast<unsigned char>(p[0])) |
         static_cast<uint32_t>(static_cast<unsigned char>(p[1])) << 8 |
         static_cast<uint32_t>(static_cast<unsigned char>(p[2])) << 16 |
         static_cast<uint32_t>(static_cast<unsigned char>(p[3])) << 24;
}

}  // namespace

namespace {
constexpr uint32_t kBatchBit = 0x80000000u;
}

Status WalWriter::Append(WalRecordKind kind, std::string_view payload) {
  uint32_t length_word = static_cast<uint32_t>(payload.size());
  if (length_word & kBatchBit) {
    return Status::InvalidArgument("WAL payload exceeds 2 GiB frame limit");
  }
  if (kind == WalRecordKind::kBatch) length_word |= kBatchBit;
  std::string record;
  record.reserve(payload.size() + 8);
  AppendU32(record, length_word);
  AppendU32(record, Crc32(payload.data(), payload.size()));
  record.append(payload.data(), payload.size());
  return AppendFile(path_, record);
}

Result<WalReadResult> ReadWal(const std::string& path) {
  WalReadResult result;
  if (!FileExists(path)) return result;
  VERSO_ASSIGN_OR_RETURN(std::string file, ReadFile(path));
  size_t pos = 0;
  while (pos + 8 <= file.size()) {
    uint32_t length_word = ReadU32(file.data() + pos);
    uint32_t crc = ReadU32(file.data() + pos + 4);
    WalRecordKind kind = (length_word & kBatchBit) ? WalRecordKind::kBatch
                                                   : WalRecordKind::kDelta;
    uint32_t length = length_word & ~kBatchBit;
    if (pos + 8 + length > file.size()) {
      result.truncated_tail = true;  // torn final record: crashed writer
      break;
    }
    const char* payload = file.data() + pos + 8;
    if (Crc32(payload, length) != crc) {
      result.truncated_tail = true;
      break;
    }
    result.records.push_back({kind, std::string(payload, length)});
    pos += 8 + length;
  }
  if (pos != file.size() && !result.truncated_tail) {
    result.truncated_tail = true;  // trailing garbage shorter than a header
  }
  result.valid_bytes = pos;
  return result;
}

}  // namespace verso
