#include "storage/wal.h"

#include "util/crc32.h"

namespace verso {

namespace {

void AppendU32(std::string& out, uint32_t v) {
  char bytes[4];
  bytes[0] = static_cast<char>(v & 0xff);
  bytes[1] = static_cast<char>((v >> 8) & 0xff);
  bytes[2] = static_cast<char>((v >> 16) & 0xff);
  bytes[3] = static_cast<char>((v >> 24) & 0xff);
  out.append(bytes, 4);
}

uint32_t ReadU32(const char* p) {
  return static_cast<uint32_t>(static_cast<unsigned char>(p[0])) |
         static_cast<uint32_t>(static_cast<unsigned char>(p[1])) << 8 |
         static_cast<uint32_t>(static_cast<unsigned char>(p[2])) << 16 |
         static_cast<uint32_t>(static_cast<unsigned char>(p[3])) << 24;
}

constexpr uint32_t kBatchBit = 0x80000000u;
// v2 frames carry a CRC over the length word itself; legacy v1 frames
// (bit clear) are still read, so old logs replay byte-for-byte.
constexpr uint32_t kHeaderCrcBit = 0x40000000u;
constexpr uint32_t kFlagBits = kBatchBit | kHeaderCrcBit;

}  // namespace

Result<std::string> EncodeWalFrame(WalRecordKind kind,
                                   std::string_view payload) {
  if (payload.size() >= (1ull << 30)) {
    return Status::InvalidArgument("WAL payload exceeds 1 GiB frame limit");
  }
  uint32_t length_word =
      static_cast<uint32_t>(payload.size()) | kHeaderCrcBit;
  if (kind == WalRecordKind::kBatch) length_word |= kBatchBit;
  std::string record;
  record.reserve(payload.size() + 12);
  AppendU32(record, length_word);
  // Header CRC over the encoded length word: a bit-flip in the length is
  // caught deterministically instead of mis-framing everything after it.
  AppendU32(record, Crc32(record.data(), 4));
  AppendU32(record, Crc32(payload.data(), payload.size()));
  record.append(payload.data(), payload.size());
  return record;
}

Status WalWriter::Append(WalRecordKind kind, std::string_view payload) {
  VERSO_ASSIGN_OR_RETURN(std::string record, EncodeWalFrame(kind, payload));
  return env_->AppendFile(path_, record);
}

Result<WalReadResult> ReadWal(const std::string& path, Env* env) {
  if (env == nullptr) env = Env::Default();
  WalReadResult result;
  if (!env->FileExists(path)) return result;
  VERSO_ASSIGN_OR_RETURN(std::string file, env->ReadFile(path));
  size_t pos = 0;
  while (pos + 8 <= file.size()) {
    uint32_t length_word = ReadU32(file.data() + pos);
    size_t header = 8;
    uint32_t crc;
    if (length_word & kHeaderCrcBit) {
      // v2 frame: length word | header CRC | payload CRC | payload.
      header = 12;
      if (pos + header > file.size()) {
        result.truncated_tail = true;  // torn mid-header
        break;
      }
      if (Crc32(file.data() + pos, 4) != ReadU32(file.data() + pos + 4)) {
        result.truncated_tail = true;  // length word is damaged
        break;
      }
      crc = ReadU32(file.data() + pos + 8);
    } else {
      crc = ReadU32(file.data() + pos + 4);
    }
    WalRecordKind kind = (length_word & kBatchBit) ? WalRecordKind::kBatch
                                                   : WalRecordKind::kDelta;
    uint32_t length = length_word & ~kFlagBits;
    if (pos + header + length > file.size()) {
      result.truncated_tail = true;  // torn final record: crashed writer
      break;
    }
    const char* payload = file.data() + pos + header;
    if (Crc32(payload, length) != crc) {
      result.truncated_tail = true;
      break;
    }
    result.records.push_back(
        {kind, std::string(payload, length), pos, pos + header + length});
    pos += header + length;
  }
  if (pos != file.size() && !result.truncated_tail) {
    result.truncated_tail = true;  // trailing garbage shorter than a header
  }
  result.valid_bytes = pos;
  return result;
}

}  // namespace verso
