#include "storage/codec.h"

#include "util/numeric.h"

namespace verso {

namespace {

// Value tags.
constexpr uint8_t kTagSymbol = 0;
constexpr uint8_t kTagNumber = 1;
constexpr uint8_t kTagString = 2;

void EncodeOid(BufferWriter& writer, Oid oid, const SymbolTable& symbols) {
  switch (symbols.kind(oid)) {
    case OidKind::kSymbol:
      writer.Byte(kTagSymbol);
      writer.Str(symbols.SymbolName(oid));
      break;
    case OidKind::kNumber: {
      writer.Byte(kTagNumber);
      const Numeric& n = symbols.NumberValue(oid);
      writer.ZigZag(n.numerator());
      writer.Varint(static_cast<uint64_t>(n.denominator()));
      break;
    }
    case OidKind::kString:
      writer.Byte(kTagString);
      writer.Str(symbols.StringValue(oid));
      break;
  }
}

Result<Oid> DecodeOid(BufferReader& reader, SymbolTable& symbols) {
  VERSO_ASSIGN_OR_RETURN(uint8_t tag, reader.Byte());
  switch (tag) {
    case kTagSymbol: {
      VERSO_ASSIGN_OR_RETURN(std::string name, reader.Str());
      return symbols.Symbol(name);
    }
    case kTagNumber: {
      VERSO_ASSIGN_OR_RETURN(int64_t num, reader.ZigZag());
      VERSO_ASSIGN_OR_RETURN(uint64_t den, reader.Varint());
      if (den == 0 || den > static_cast<uint64_t>(INT64_MAX)) {
        return Status::Corruption("codec: invalid denominator");
      }
      VERSO_ASSIGN_OR_RETURN(
          Numeric value,
          Numeric::FromRatio(num, static_cast<int64_t>(den)));
      return symbols.Number(value);
    }
    case kTagString: {
      VERSO_ASSIGN_OR_RETURN(std::string text, reader.Str());
      return symbols.String(text);
    }
    default:
      return Status::Corruption("codec: unknown value tag " +
                                std::to_string(tag));
  }
}

}  // namespace

void BufferWriter::Varint(uint64_t v) {
  while (v >= 0x80) {
    Byte(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  Byte(static_cast<uint8_t>(v));
}

void BufferWriter::ZigZag(int64_t v) {
  Varint((static_cast<uint64_t>(v) << 1) ^
         static_cast<uint64_t>(v >> 63));
}

void BufferWriter::Str(std::string_view s) {
  Varint(s.size());
  out_.append(s.data(), s.size());
}

Result<uint8_t> BufferReader::Byte() {
  if (pos_ >= data_.size()) {
    return Status::Corruption("codec: truncated buffer");
  }
  return static_cast<uint8_t>(data_[pos_++]);
}

Result<uint64_t> BufferReader::Varint() {
  uint64_t value = 0;
  int shift = 0;
  while (true) {
    VERSO_ASSIGN_OR_RETURN(uint8_t byte, Byte());
    value |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) return value;
    shift += 7;
    if (shift >= 64) return Status::Corruption("codec: varint too long");
  }
}

Result<int64_t> BufferReader::ZigZag() {
  VERSO_ASSIGN_OR_RETURN(uint64_t raw, Varint());
  return static_cast<int64_t>((raw >> 1) ^ (~(raw & 1) + 1));
}

Result<std::string> BufferReader::Str() {
  VERSO_ASSIGN_OR_RETURN(uint64_t length, Varint());
  if (length > remaining()) {
    return Status::Corruption("codec: string overruns buffer");
  }
  std::string out(data_.substr(pos_, length));
  pos_ += length;
  return out;
}

void EncodeFact(BufferWriter& writer, Vid vid, MethodId method,
                const GroundApp& app, const SymbolTable& symbols,
                const VersionTable& versions) {
  // Version: functor chain depth, ops outermost-first, then the root OID.
  writer.Varint(versions.depth(vid));
  const std::vector<UpdateKind>& ops = versions.ShapeOps(versions.shape(vid));
  for (UpdateKind op : ops) writer.Byte(static_cast<uint8_t>(op));
  EncodeOid(writer, versions.root(vid), symbols);
  writer.Str(symbols.MethodName(method));
  writer.Varint(app.args.size());
  for (Oid arg : app.args) EncodeOid(writer, arg, symbols);
  EncodeOid(writer, app.result, symbols);
}

Result<DecodedFact> DecodeFact(BufferReader& reader, SymbolTable& symbols,
                               VersionTable& versions) {
  VERSO_ASSIGN_OR_RETURN(uint64_t depth, reader.Varint());
  if (depth > 1024) {
    return Status::Corruption("codec: implausible version depth");
  }
  std::vector<UpdateKind> ops;
  ops.reserve(depth);
  for (uint64_t i = 0; i < depth; ++i) {
    VERSO_ASSIGN_OR_RETURN(uint8_t op, reader.Byte());
    if (op > 2) return Status::Corruption("codec: bad update functor");
    ops.push_back(static_cast<UpdateKind>(op));
  }
  VERSO_ASSIGN_OR_RETURN(Oid root, DecodeOid(reader, symbols));
  Vid vid = versions.OfOid(root);
  for (auto it = ops.rbegin(); it != ops.rend(); ++it) {
    vid = versions.Child(vid, *it);
  }
  VERSO_ASSIGN_OR_RETURN(std::string method_name, reader.Str());
  DecodedFact fact;
  fact.vid = vid;
  fact.method = symbols.Method(method_name);
  VERSO_ASSIGN_OR_RETURN(uint64_t argc, reader.Varint());
  if (argc > reader.remaining()) {
    return Status::Corruption("codec: implausible arg count");
  }
  fact.app.args.reserve(argc);
  for (uint64_t i = 0; i < argc; ++i) {
    VERSO_ASSIGN_OR_RETURN(Oid arg, DecodeOid(reader, symbols));
    fact.app.args.push_back(arg);
  }
  VERSO_ASSIGN_OR_RETURN(fact.app.result, DecodeOid(reader, symbols));
  return fact;
}

std::string EncodeObjectBase(const ObjectBase& base,
                             const SymbolTable& symbols,
                             const VersionTable& versions) {
  BufferWriter writer;
  writer.Varint(base.fact_count());
  for (const auto& [vid, state] : base.versions()) {
    for (const auto& [method, apps] : state->methods()) {
      for (const GroundApp& app : apps) {
        EncodeFact(writer, vid, method, app, symbols, versions);
      }
    }
  }
  return writer.Take();
}

Status DecodeObjectBaseInto(std::string_view data, SymbolTable& symbols,
                            VersionTable& versions, ObjectBase& base) {
  BufferReader reader(data);
  VERSO_ASSIGN_OR_RETURN(uint64_t count, reader.Varint());
  for (uint64_t i = 0; i < count; ++i) {
    VERSO_ASSIGN_OR_RETURN(DecodedFact fact,
                           DecodeFact(reader, symbols, versions));
    base.Insert(fact.vid, fact.method, std::move(fact.app));
  }
  if (!reader.AtEnd()) {
    return Status::Corruption("object base payload has trailing bytes");
  }
  return Status::Ok();
}

std::string EncodeVersionKey(Vid vid, const SymbolTable& symbols,
                             const VersionTable& versions) {
  BufferWriter writer;
  writer.Varint(versions.depth(vid));
  const std::vector<UpdateKind>& ops = versions.ShapeOps(versions.shape(vid));
  for (UpdateKind op : ops) writer.Byte(static_cast<uint8_t>(op));
  EncodeOid(writer, versions.root(vid), symbols);
  return writer.Take();
}

std::string EncodeVersionRecord(Vid vid, const VersionState& state,
                                const SymbolTable& symbols,
                                const VersionTable& versions) {
  BufferWriter writer;
  writer.Varint(state.fact_count());
  for (const auto& [method, apps] : state.methods()) {
    for (const GroundApp& app : apps) {
      EncodeFact(writer, vid, method, app, symbols, versions);
    }
  }
  return writer.Take();
}

Status DecodeVersionRecordInto(std::string_view data, SymbolTable& symbols,
                               VersionTable& versions, ObjectBase& base) {
  BufferReader reader(data);
  VERSO_ASSIGN_OR_RETURN(uint64_t count, reader.Varint());
  for (uint64_t i = 0; i < count; ++i) {
    VERSO_ASSIGN_OR_RETURN(DecodedFact fact,
                           DecodeFact(reader, symbols, versions));
    base.Insert(fact.vid, fact.method, std::move(fact.app));
  }
  if (!reader.AtEnd()) {
    return Status::Corruption("version record has trailing bytes");
  }
  return Status::Ok();
}

FactDelta ComputeDelta(const ObjectBase& before, const ObjectBase& after) {
  // Structural sharing makes this O(changed state): a version whose state
  // handle both bases share — and, below that, a method whose application
  // storage both states share — cannot contribute a delta fact, so whole
  // subtrees of the comparison are skipped by pointer equality. Bases
  // that share nothing degrade to the original per-fact membership scan.
  FactDelta delta;
  for (const auto& [vid, state] : after.versions()) {
    const VersionState* other = before.StateOf(vid);
    if (other == state.get()) continue;  // shared state: unchanged
    for (const auto& [method, apps] : state->methods()) {
      if (other != nullptr) {
        const SharedApps* shared = other->FindShared(method);
        if (shared != nullptr && SharesStorage(*shared, apps)) continue;
      }
      for (const GroundApp& app : apps) {
        if (other == nullptr || !other->ContainsApp(method, app)) {
          delta.added.push_back({vid, method, app});
        }
      }
    }
  }
  for (const auto& [vid, state] : before.versions()) {
    const VersionState* other = after.StateOf(vid);
    if (other == state.get()) continue;
    for (const auto& [method, apps] : state->methods()) {
      if (other != nullptr) {
        const SharedApps* shared = other->FindShared(method);
        if (shared != nullptr && SharesStorage(*shared, apps)) continue;
      }
      for (const GroundApp& app : apps) {
        if (other == nullptr || !other->ContainsApp(method, app)) {
          delta.removed.push_back({vid, method, app});
        }
      }
    }
  }
  return delta;
}

void ApplyDelta(const FactDelta& delta, ObjectBase& base) {
  for (const DecodedFact& fact : delta.removed) {
    base.Erase(fact.vid, fact.method, fact.app);
  }
  for (const DecodedFact& fact : delta.added) {
    base.Insert(fact.vid, fact.method, fact.app);
  }
}

namespace {

void EncodeDeltaInto(BufferWriter& writer, const FactDelta& delta,
                     const SymbolTable& symbols,
                     const VersionTable& versions) {
  writer.Varint(delta.added.size());
  for (const DecodedFact& fact : delta.added) {
    EncodeFact(writer, fact.vid, fact.method, fact.app, symbols, versions);
  }
  writer.Varint(delta.removed.size());
  for (const DecodedFact& fact : delta.removed) {
    EncodeFact(writer, fact.vid, fact.method, fact.app, symbols, versions);
  }
}

Result<FactDelta> DecodeDeltaFrom(BufferReader& reader, SymbolTable& symbols,
                                  VersionTable& versions) {
  FactDelta delta;
  VERSO_ASSIGN_OR_RETURN(uint64_t added, reader.Varint());
  for (uint64_t i = 0; i < added; ++i) {
    VERSO_ASSIGN_OR_RETURN(DecodedFact fact,
                           DecodeFact(reader, symbols, versions));
    delta.added.push_back(std::move(fact));
  }
  VERSO_ASSIGN_OR_RETURN(uint64_t removed, reader.Varint());
  for (uint64_t i = 0; i < removed; ++i) {
    VERSO_ASSIGN_OR_RETURN(DecodedFact fact,
                           DecodeFact(reader, symbols, versions));
    delta.removed.push_back(std::move(fact));
  }
  return delta;
}

}  // namespace

std::string EncodeDelta(const FactDelta& delta, const SymbolTable& symbols,
                        const VersionTable& versions) {
  BufferWriter writer;
  EncodeDeltaInto(writer, delta, symbols, versions);
  return writer.Take();
}

Result<FactDelta> DecodeDelta(std::string_view data, SymbolTable& symbols,
                              VersionTable& versions) {
  BufferReader reader(data);
  VERSO_ASSIGN_OR_RETURN(FactDelta delta,
                         DecodeDeltaFrom(reader, symbols, versions));
  if (!reader.AtEnd()) {
    return Status::Corruption("delta payload has trailing bytes");
  }
  return delta;
}

std::string EncodeDeltaBatch(const std::vector<FactDelta>& deltas,
                             const SymbolTable& symbols,
                             const VersionTable& versions) {
  BufferWriter writer;
  writer.Varint(deltas.size());
  for (const FactDelta& delta : deltas) {
    EncodeDeltaInto(writer, delta, symbols, versions);
  }
  return writer.Take();
}

std::string EncodeDeltaBatch(const FactDelta& delta,
                             const SymbolTable& symbols,
                             const VersionTable& versions) {
  BufferWriter writer;
  writer.Varint(1);
  EncodeDeltaInto(writer, delta, symbols, versions);
  return writer.Take();
}

Result<std::vector<FactDelta>> DecodeDeltaBatch(std::string_view data,
                                                SymbolTable& symbols,
                                                VersionTable& versions) {
  BufferReader reader(data);
  VERSO_ASSIGN_OR_RETURN(uint64_t count, reader.Varint());
  if (count > data.size()) {
    return Status::Corruption("codec: implausible batch transaction count");
  }
  std::vector<FactDelta> deltas;
  deltas.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    VERSO_ASSIGN_OR_RETURN(FactDelta delta,
                           DecodeDeltaFrom(reader, symbols, versions));
    deltas.push_back(std::move(delta));
  }
  if (!reader.AtEnd()) {
    return Status::Corruption("batch payload has trailing bytes");
  }
  return deltas;
}

DeltaLog ToDeltaLog(const FactDelta& delta) {
  DeltaLog log;
  log.reserve(delta.added.size() + delta.removed.size());
  for (const DecodedFact& fact : delta.removed) {
    log.push_back({fact.vid, fact.method, fact.app, /*added=*/false});
  }
  for (const DecodedFact& fact : delta.added) {
    log.push_back({fact.vid, fact.method, fact.app, /*added=*/true});
  }
  return log;
}

}  // namespace verso
