#include "storage/snapshot.h"

#include <cstring>

#include "storage/codec.h"
#include "util/crc32.h"
#include "util/io.h"

namespace verso {

namespace {

constexpr char kMagic[] = "VSNP1";
constexpr size_t kMagicLen = 5;

void AppendU32(std::string& out, uint32_t v) {
  char bytes[4];
  bytes[0] = static_cast<char>(v & 0xff);
  bytes[1] = static_cast<char>((v >> 8) & 0xff);
  bytes[2] = static_cast<char>((v >> 16) & 0xff);
  bytes[3] = static_cast<char>((v >> 24) & 0xff);
  out.append(bytes, 4);
}

uint32_t ReadU32(const char* p) {
  return static_cast<uint32_t>(static_cast<unsigned char>(p[0])) |
         static_cast<uint32_t>(static_cast<unsigned char>(p[1])) << 8 |
         static_cast<uint32_t>(static_cast<unsigned char>(p[2])) << 16 |
         static_cast<uint32_t>(static_cast<unsigned char>(p[3])) << 24;
}

}  // namespace

Status WriteSnapshot(const std::string& path, const ObjectBase& base,
                     const SymbolTable& symbols, const VersionTable& versions,
                     Env* env) {
  if (env == nullptr) env = Env::Default();
  std::string payload = EncodeObjectBase(base, symbols, versions);
  std::string file;
  file.reserve(payload.size() + 16);
  file.append(kMagic, kMagicLen);
  AppendU32(file, static_cast<uint32_t>(payload.size()));
  file += payload;
  AppendU32(file, Crc32(payload.data(), payload.size()));
  return env->WriteFileAtomic(path, file);
}

Status ReadSnapshotInto(const std::string& path, SymbolTable& symbols,
                        VersionTable& versions, ObjectBase& base, Env* env) {
  if (env == nullptr) env = Env::Default();
  VERSO_ASSIGN_OR_RETURN(std::string file, env->ReadFile(path));
  if (file.size() < kMagicLen + 8 ||
      std::memcmp(file.data(), kMagic, kMagicLen) != 0) {
    return Status::Corruption("snapshot '" + path + "': bad magic or size");
  }
  uint32_t length = ReadU32(file.data() + kMagicLen);
  if (file.size() != kMagicLen + 4 + length + 4) {
    return Status::Corruption("snapshot '" + path + "': length mismatch");
  }
  const char* payload = file.data() + kMagicLen + 4;
  uint32_t stored_crc = ReadU32(payload + length);
  if (Crc32(payload, length) != stored_crc) {
    return Status::Corruption("snapshot '" + path + "': checksum mismatch");
  }
  return DecodeObjectBaseInto(std::string_view(payload, length), symbols,
                              versions, base);
}

}  // namespace verso
