#ifndef VERSO_STORAGE_DATABASE_H_
#define VERSO_STORAGE_DATABASE_H_

#include <memory>
#include <string>
#include <vector>

#include "core/delta.h"
#include "core/engine.h"
#include "storage/wal.h"
#include "util/result.h"

namespace verso {

/// Observer of committed transactions: the database invokes OnCommit once
/// per transaction, after the delta is durable in the WAL and installed in
/// the in-memory base. This is the delta stream incremental materialized
/// views are maintained from (src/views). An observer error surfaces to
/// the caller of Execute/ImportBase as kObserverFailed, but the commit
/// itself stands — the delta is already durable; do not retry.
class CommitObserver {
 public:
  virtual ~CommitObserver() = default;

  /// `delta` lists the transaction's fact-level changes, removals first
  /// then additions (the order ApplyDelta installs them). `committed` is
  /// the database's current base; within an ExecuteBatch group it already
  /// includes LATER transactions of the same batch, so observers tracking
  /// exact per-transaction states must fold the deltas themselves.
  virtual Status OnCommit(const DeltaLog& delta,
                          const ObjectBase& committed) = 0;

  /// The observed database is being destroyed; drop any pointer to it.
  /// Called from ~Database for observers still registered at that point.
  virtual void OnDatabaseClosed() {}
};

/// A persistent object base: update-programs execute as transactions.
///
/// Directory layout:
///     <dir>/snapshot.vsnp   point-in-time image (atomic rename)
///     <dir>/wal.log         fact deltas committed since the snapshot
///
/// Open() recovers by loading the snapshot (if any) and replaying valid
/// WAL records; a torn tail (crashed writer) is ignored. Execute() runs a
/// program through the engine, logs the resulting delta to the WAL
/// *before* installing it in memory, and Checkpoint() folds the WAL into
/// a fresh snapshot.
///
/// Commits are batched at the WAL level: every append is one record
/// carrying the whole delta of one transaction (or, via ExecuteBatch, of a
/// whole group of transactions — one durability write for the group).
/// Recovery replays both the batched format and the legacy
/// one-delta-per-record format, so pre-batch logs stay loadable.
///
/// Not thread-safe; one writer per directory (the usual embedded-store
/// contract).
class Database {
 public:
  /// Opens (creating if needed) the database in `dir`, recovering state.
  static Result<std::unique_ptr<Database>> Open(const std::string& dir,
                                                Engine& engine);

  ~Database();

  /// The committed object base.
  const ObjectBase& current() const { return current_; }

  Engine& engine() { return engine_; }

  /// Registers a commit observer (not owned). Observers see only commits
  /// after registration — recovery replay is not observed. An observer
  /// still registered when the database is destroyed receives
  /// OnDatabaseClosed.
  void AddObserver(CommitObserver* observer);
  void RemoveObserver(CommitObserver* observer);

  /// Replaces the committed base wholesale (initial load). Logged.
  Status ImportBase(const ObjectBase& base);

  /// Runs an update-program transactionally: evaluate, WAL-append the
  /// delta, install the new base. On failure the committed base is
  /// untouched.
  Result<RunOutcome> Execute(Program& program,
                             const EvalOptions& options = EvalOptions());

  /// Group commit: evaluates each program against the evolving base and
  /// writes the whole batch's deltas as ONE WAL record — one durability
  /// write for N transactions. All-or-nothing: if any program fails to
  /// evaluate, nothing is logged or installed. Observers still see one
  /// OnCommit per transaction, in order.
  Result<std::vector<RunOutcome>> ExecuteBatch(
      const std::vector<Program*>& programs,
      const EvalOptions& options = EvalOptions());

  /// Writes a fresh snapshot and truncates the WAL.
  Status Checkpoint();

  size_t wal_records_since_checkpoint() const { return wal_records_; }
  bool recovered_from_torn_wal() const { return recovered_torn_; }

 private:
  Database(std::string dir, Engine& engine)
      : dir_(std::move(dir)),
        engine_(engine),
        current_(engine.MakeBase()),
        wal_(dir_ + "/wal.log") {}

  std::string snapshot_path() const { return dir_ + "/snapshot.vsnp"; }

  Status CommitDelta(const ObjectBase& next);
  Status NotifyObservers(const DeltaLog& delta);

  std::string dir_;
  Engine& engine_;
  ObjectBase current_;
  WalWriter wal_;
  std::vector<CommitObserver*> observers_;
  size_t wal_records_ = 0;
  bool recovered_torn_ = false;
};

}  // namespace verso

#endif  // VERSO_STORAGE_DATABASE_H_
