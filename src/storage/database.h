#ifndef VERSO_STORAGE_DATABASE_H_
#define VERSO_STORAGE_DATABASE_H_

#include <memory>
#include <string>
#include <vector>

#include "core/delta.h"
#include "core/engine.h"
#include "storage/wal.h"
#include "store/store.h"
#include "util/clock.h"
#include "util/io.h"
#include "util/result.h"

namespace verso {

/// Observer of committed transactions: the database invokes OnCommit once
/// per transaction, after the delta is durable in the WAL and installed in
/// the in-memory base. This is the delta stream incremental materialized
/// views are maintained from (src/views). An observer error surfaces to
/// the caller of Execute/ImportBase as kObserverFailed, but the commit
/// itself stands — the delta is already durable; do not retry.
class CommitObserver {
 public:
  virtual ~CommitObserver() = default;

  /// `delta` lists the transaction's fact-level changes, removals first
  /// then additions (the order ApplyDelta installs them). `committed` is
  /// the database's current base; within an ExecuteBatch group it already
  /// includes LATER transactions of the same batch, so observers tracking
  /// exact per-transaction states must fold the deltas themselves.
  /// `epoch` is the commit epoch of THIS transaction — within a batch it
  /// identifies the triggering member, so downstream consumers (view
  /// subscriptions) must stamp their events with it rather than reading
  /// Database::commit_epoch() at delivery time.
  virtual Status OnCommit(const DeltaLog& delta, const ObjectBase& committed,
                          uint64_t epoch) = 0;

  /// The observed database is being destroyed; drop any pointer to it.
  /// Called from ~Database for observers still registered at that point.
  virtual void OnDatabaseClosed() {}
};

/// Knobs fixed when a database opens.
struct DatabaseOptions {
  /// Filesystem backend every persisted byte goes through; nullptr means
  /// the real filesystem (Env::Default()). Tests substitute a
  /// FaultInjectingEnv to prove crash-recovery properties.
  Env* env = nullptr;
  /// Extra attempts for a WAL append that fails with kIoTransient before
  /// the database degrades to read-only. Permanent errors (kIoError,
  /// kCorruption) never retry.
  uint32_t wal_retry_limit = 3;
  /// Base backoff between transient-append retries; attempt k sleeps
  /// `retry_backoff_us << k`. 0 disables sleeping (tests).
  uint32_t retry_backoff_us = 100;
  /// Monotonic clock the retry backoff sleeps through; nullptr means
  /// Clock::Default(). Tests substitute a FakeClock to assert the
  /// backoff schedule without waiting out real time.
  Clock* clock = nullptr;
  /// Storage-fault events (OnStorageFault) go here (not owned). The
  /// per-call TraceSink of Execute/ExecuteBatch traces evaluation only.
  TraceSink* trace = nullptr;
  /// Checkpoint/recovery store backend (src/store): kMem rewrites one
  /// whole-base image per checkpoint, kPageLog appends O(delta) records
  /// and compacts itself. Fixed at open; reopen a directory with the
  /// backend that checkpointed it (recovery reads the backend's own
  /// file, it does not migrate between formats).
  StoreBackend store_backend = StoreBackend::kMem;
  /// When > 0, a successful commit that leaves the WAL at or past this
  /// many bytes triggers an automatic Checkpoint(), bounding recovery
  /// replay to O(base + threshold) regardless of commit count.
  /// Best-effort: an auto-checkpoint failure is traced and counted but
  /// never fails the commit that triggered it (which is already
  /// durable). 0 disables.
  size_t checkpoint_wal_bytes = 0;
};

/// Storage-fault counters, exposed so benches and workloads report fault
/// behavior like they report index hits.
struct StorageStats {
  /// Failed storage operations observed (each retry that fails counts).
  uint64_t io_failures = 0;
  /// Transient-append retries attempted.
  uint64_t retries = 0;
  /// Times the database entered degraded (read-only) mode; 0 or 1 per
  /// handle — degraded mode is sticky until reopen.
  uint64_t degraded_entered = 0;
};

/// A persistent object base: update-programs execute as transactions.
///
/// Directory layout:
///     <dir>/store.img | store.plog   checkpoint store (src/store; which
///                                    file exists depends on the backend)
///     <dir>/wal.log                  fact deltas committed since the
///                                    last checkpoint
///     <dir>/snapshot.vsnp            legacy pre-store checkpoint image;
///                                    still recovered from, superseded
///                                    (and removed) by the next
///                                    Checkpoint()
///
/// Open() recovers from the latest store generation — the base is stored
/// one version per key under "b/", rebuilt by a single range scan — then
/// replays only the WAL suffix behind it; a torn tail (crashed writer) is
/// ignored. Recovery is O(base + tail), not O(history). Execute() runs a
/// program through the engine, logs the resulting delta to the WAL
/// *before* installing it in memory, and Checkpoint() folds the WAL into
/// the store.
///
/// NOTE: this is an internal layer. Client code should use the
/// `verso::Connection` / `verso::Session` facade (src/api/api.h), which
/// adds snapshot-isolated reads, prepared statements, named views, and
/// view subscriptions on top of the raw database.
///
/// Commits are batched at the WAL level: every append is one record
/// carrying the whole delta of one transaction (or, via ExecuteBatch, of a
/// whole group of transactions — one durability write for the group).
/// Recovery replays both the batched format and the legacy
/// one-delta-per-record format, so pre-batch logs stay loadable.
///
/// Failure model: commits are all-or-nothing. A WAL append that fails
/// with kIoTransient is retried (rolled back to the pre-append tail, then
/// re-issued, with bounded backoff — DatabaseOptions::wal_retry_limit);
/// when retries are exhausted, or on any permanent error, the database
/// enters DEGRADED MODE: the failing commit is not installed (no torn
/// in-memory state), health() reports the cause, and every further write
/// returns kReadOnly. Reads — current(), pinned snapshots, view results,
/// subscriptions — keep serving the last committed state. Degraded mode
/// is sticky for the handle's lifetime; reopen to recover.
///
/// Not thread-safe; one writer per directory (the usual embedded-store
/// contract).
class Database {
 public:
  /// Opens (creating if needed) the database in `dir`, recovering state.
  static Result<std::unique_ptr<Database>> Open(
      const std::string& dir, Engine& engine,
      DatabaseOptions options = DatabaseOptions());

  /// An ephemeral database: the same transactional commit pipeline
  /// (observers, epochs, batching) with no directory, no WAL, and no
  /// snapshot. Checkpoint() is a no-op. Used by in-memory connections.
  static Result<std::unique_ptr<Database>> OpenInMemory(Engine& engine);

  ~Database();

  /// The committed object base.
  const ObjectBase& current() const { return current_; }

  Engine& engine() { return engine_; }

  /// Number of transactions committed since this handle was opened — the
  /// epoch tag snapshot-isolated readers pin. Recovery replay does not
  /// count; a no-op transaction (empty delta) does not advance the epoch.
  /// The epoch is incremented after a transaction's delta is durable and
  /// installed, *before* its observers run, so an observer always reads
  /// the epoch of the commit it is being notified about.
  uint64_t commit_epoch() const { return commit_epoch_; }

  /// Registers a commit observer (not owned). Observers see only commits
  /// after registration — recovery replay is not observed. Registering an
  /// already-registered observer is a no-op (it will still be notified
  /// exactly once per commit). An observer still registered when the
  /// database is destroyed receives OnDatabaseClosed.
  void AddObserver(CommitObserver* observer);
  void RemoveObserver(CommitObserver* observer);

  /// Replaces the committed base wholesale (initial load). Logged.
  Status ImportBase(const ObjectBase& base);

  /// Runs an update-program transactionally: evaluate, WAL-append the
  /// delta, install the new base. On failure the committed base is
  /// untouched — except kObserverFailed, which means the commit IS
  /// durable and installed but a commit observer errored (do not retry;
  /// see CommitObserver). On success the outcome's `committed_delta`
  /// carries the fact-level changes the transaction committed.
  Result<RunOutcome> Execute(Program& program,
                             const EvalOptions& options = EvalOptions(),
                             TraceSink* trace = nullptr);

  /// Group commit: evaluates each program against the evolving base and
  /// writes the whole batch's deltas as ONE WAL record — one durability
  /// write for N transactions. All-or-nothing: if any program fails to
  /// evaluate, nothing is logged or installed. Observers still see one
  /// OnCommit per transaction, in order.
  Result<std::vector<RunOutcome>> ExecuteBatch(
      const std::vector<Program*>& programs,
      const EvalOptions& options = EvalOptions(),
      TraceSink* trace = nullptr);

  /// Folds the committed base into the checkpoint store — one atomic
  /// store transaction carrying every live version record, the deletes
  /// of versions gone since the last checkpoint, and the bumped
  /// generation — then truncates the WAL behind it. Crash-safe: both
  /// backends commit atomically, and the WAL is removed only after; a
  /// crash between the two steps leaves store + stale WAL, which
  /// recovery replays idempotently (fact-level deltas have set
  /// semantics), losing nothing. A failed checkpoint leaves the database
  /// healthy — the WAL still holds every commit.
  Status Checkpoint();

  /// Ok while the database accepts writes; after a durability failure on
  /// the commit path, the Status that caused degraded (read-only) mode.
  const Status& health() const { return degraded_; }

  /// Storage-fault counters (see StorageStats).
  const StorageStats& stats() const { return stats_; }

  /// Rewires the storage-fault trace sink (not owned; nullptr unwires).
  void set_trace(TraceSink* trace) { opts_.trace = trace; }

  size_t wal_records_since_checkpoint() const { return wal_records_; }
  /// Byte length of the WAL since the last checkpoint — what the
  /// checkpoint_wal_bytes auto-checkpoint threshold compares against.
  size_t wal_bytes_since_checkpoint() const { return wal_bytes_; }
  /// Checkpoint generation recovered from (then bumped by) the store;
  /// 0 until the first checkpoint.
  uint64_t checkpoint_generation() const { return checkpoint_generation_; }
  /// The checkpoint store, for inspection; nullptr for ephemeral
  /// databases.
  const Store* store() const { return store_.get(); }
  bool recovered_from_torn_wal() const { return recovered_torn_; }

  /// Ok unless recovery found a torn WAL tail but could not preserve the
  /// dropped bytes in `wal.log.corrupt` (write failure, or the side file
  /// reached kCorruptPreserveCap). Recovery itself still succeeded — the
  /// valid prefix was replayed and the tail truncated; this only records
  /// that the forensic copy of the dropped bytes is incomplete.
  const Status& corrupt_tail_preservation() const {
    return corrupt_tail_preservation_;
  }

  /// Growth cap for `wal.log.corrupt` across repeated recoveries: once
  /// the side file holds this many bytes, further torn tails are dropped
  /// without being preserved (and corrupt_tail_preservation() says so).
  static constexpr size_t kCorruptPreserveCap = 4u << 20;  // 4 MiB

 private:
  Database(std::string dir, Engine& engine, DatabaseOptions opts)
      : dir_(std::move(dir)),
        engine_(engine),
        opts_(opts),
        env_(opts.env != nullptr ? opts.env : Env::Default()),
        clock_(opts.clock != nullptr ? opts.clock : Clock::Default()),
        current_(engine.MakeBase()),
        wal_(dir_.empty() ? std::string() : dir_ + "/wal.log", env_) {}

  std::string snapshot_path() const { return dir_ + "/snapshot.vsnp"; }

  /// Refuses writes while degraded.
  Status CheckWritable() const;
  /// Appends one record durably: transient failures roll the tail back
  /// and retry with bounded backoff; exhaustion or a permanent error
  /// degrades the database. The in-memory base is untouched on failure.
  Status AppendWalDurable(WalRecordKind kind, std::string_view payload);
  /// Chops any partial frame a failed append left behind, so the retry
  /// starts from the last good tail.
  Status RollbackWalTail(size_t pre_size);
  void EnterDegraded(const Status& cause);
  void TraceFault(std::string_view op, const Status& status, uint32_t attempt,
                  bool degraded);

  Status CommitDelta(const ObjectBase& next, DeltaLog* committed = nullptr);
  Status NotifyObservers(const DeltaLog& delta, uint64_t epoch);
  /// Runs Checkpoint() when the auto-checkpoint threshold is armed and
  /// the WAL has grown past it. Called after a commit is durable and
  /// installed; failures are traced inside Checkpoint, never propagated.
  void MaybeAutoCheckpoint();

  std::string dir_;
  Engine& engine_;
  DatabaseOptions opts_;
  Env* env_;
  Clock* clock_;
  ObjectBase current_;
  WalWriter wal_;
  std::unique_ptr<Store> store_;
  std::vector<CommitObserver*> observers_;
  size_t wal_records_ = 0;
  size_t wal_bytes_ = 0;
  uint64_t checkpoint_generation_ = 0;
  uint64_t commit_epoch_ = 0;
  bool recovered_torn_ = false;
  bool ephemeral_ = false;
  Status degraded_ = Status::Ok();
  StorageStats stats_;
  Status corrupt_tail_preservation_ = Status::Ok();
};

}  // namespace verso

#endif  // VERSO_STORAGE_DATABASE_H_
