#ifndef VERSO_STORAGE_DATABASE_H_
#define VERSO_STORAGE_DATABASE_H_

#include <memory>
#include <string>

#include "core/engine.h"
#include "storage/wal.h"
#include "util/result.h"

namespace verso {

/// A persistent object base: update-programs execute as transactions.
///
/// Directory layout:
///     <dir>/snapshot.vsnp   point-in-time image (atomic rename)
///     <dir>/wal.log         fact deltas committed since the snapshot
///
/// Open() recovers by loading the snapshot (if any) and replaying valid
/// WAL records; a torn tail (crashed writer) is ignored. Execute() runs a
/// program through the engine, logs the resulting delta to the WAL
/// *before* installing it in memory, and Checkpoint() folds the WAL into
/// a fresh snapshot.
///
/// Not thread-safe; one writer per directory (the usual embedded-store
/// contract).
class Database {
 public:
  /// Opens (creating if needed) the database in `dir`, recovering state.
  static Result<std::unique_ptr<Database>> Open(const std::string& dir,
                                                Engine& engine);

  /// The committed object base.
  const ObjectBase& current() const { return current_; }

  /// Replaces the committed base wholesale (initial load). Logged.
  Status ImportBase(const ObjectBase& base);

  /// Runs an update-program transactionally: evaluate, WAL-append the
  /// delta, install the new base. On failure the committed base is
  /// untouched.
  Result<RunOutcome> Execute(Program& program,
                             const EvalOptions& options = EvalOptions());

  /// Writes a fresh snapshot and truncates the WAL.
  Status Checkpoint();

  size_t wal_records_since_checkpoint() const { return wal_records_; }
  bool recovered_from_torn_wal() const { return recovered_torn_; }

 private:
  Database(std::string dir, Engine& engine)
      : dir_(std::move(dir)),
        engine_(engine),
        current_(engine.MakeBase()),
        wal_(dir_ + "/wal.log") {}

  std::string snapshot_path() const { return dir_ + "/snapshot.vsnp"; }

  Status CommitDelta(const ObjectBase& next);

  std::string dir_;
  Engine& engine_;
  ObjectBase current_;
  WalWriter wal_;
  size_t wal_records_ = 0;
  bool recovered_torn_ = false;
};

}  // namespace verso

#endif  // VERSO_STORAGE_DATABASE_H_
