#ifndef VERSO_STORAGE_DATABASE_H_
#define VERSO_STORAGE_DATABASE_H_

#include <memory>
#include <string>
#include <vector>

#include "core/delta.h"
#include "core/engine.h"
#include "storage/wal.h"
#include "util/result.h"

namespace verso {

/// Observer of committed transactions: the database invokes OnCommit once
/// per transaction, after the delta is durable in the WAL and installed in
/// the in-memory base. This is the delta stream incremental materialized
/// views are maintained from (src/views). An observer error surfaces to
/// the caller of Execute/ImportBase as kObserverFailed, but the commit
/// itself stands — the delta is already durable; do not retry.
class CommitObserver {
 public:
  virtual ~CommitObserver() = default;

  /// `delta` lists the transaction's fact-level changes, removals first
  /// then additions (the order ApplyDelta installs them). `committed` is
  /// the database's current base; within an ExecuteBatch group it already
  /// includes LATER transactions of the same batch, so observers tracking
  /// exact per-transaction states must fold the deltas themselves.
  /// `epoch` is the commit epoch of THIS transaction — within a batch it
  /// identifies the triggering member, so downstream consumers (view
  /// subscriptions) must stamp their events with it rather than reading
  /// Database::commit_epoch() at delivery time.
  virtual Status OnCommit(const DeltaLog& delta, const ObjectBase& committed,
                          uint64_t epoch) = 0;

  /// The observed database is being destroyed; drop any pointer to it.
  /// Called from ~Database for observers still registered at that point.
  virtual void OnDatabaseClosed() {}
};

/// A persistent object base: update-programs execute as transactions.
///
/// Directory layout:
///     <dir>/snapshot.vsnp   point-in-time image (atomic rename)
///     <dir>/wal.log         fact deltas committed since the snapshot
///
/// Open() recovers by loading the snapshot (if any) and replaying valid
/// WAL records; a torn tail (crashed writer) is ignored. Execute() runs a
/// program through the engine, logs the resulting delta to the WAL
/// *before* installing it in memory, and Checkpoint() folds the WAL into
/// a fresh snapshot.
///
/// NOTE: this is an internal layer. Client code should use the
/// `verso::Connection` / `verso::Session` facade (src/api/api.h), which
/// adds snapshot-isolated reads, prepared statements, named views, and
/// view subscriptions on top of the raw database.
///
/// Commits are batched at the WAL level: every append is one record
/// carrying the whole delta of one transaction (or, via ExecuteBatch, of a
/// whole group of transactions — one durability write for the group).
/// Recovery replays both the batched format and the legacy
/// one-delta-per-record format, so pre-batch logs stay loadable.
///
/// Not thread-safe; one writer per directory (the usual embedded-store
/// contract).
class Database {
 public:
  /// Opens (creating if needed) the database in `dir`, recovering state.
  static Result<std::unique_ptr<Database>> Open(const std::string& dir,
                                                Engine& engine);

  /// An ephemeral database: the same transactional commit pipeline
  /// (observers, epochs, batching) with no directory, no WAL, and no
  /// snapshot. Checkpoint() is a no-op. Used by in-memory connections.
  static Result<std::unique_ptr<Database>> OpenInMemory(Engine& engine);

  ~Database();

  /// The committed object base.
  const ObjectBase& current() const { return current_; }

  Engine& engine() { return engine_; }

  /// Number of transactions committed since this handle was opened — the
  /// epoch tag snapshot-isolated readers pin. Recovery replay does not
  /// count; a no-op transaction (empty delta) does not advance the epoch.
  /// The epoch is incremented after a transaction's delta is durable and
  /// installed, *before* its observers run, so an observer always reads
  /// the epoch of the commit it is being notified about.
  uint64_t commit_epoch() const { return commit_epoch_; }

  /// Registers a commit observer (not owned). Observers see only commits
  /// after registration — recovery replay is not observed. Registering an
  /// already-registered observer is a no-op (it will still be notified
  /// exactly once per commit). An observer still registered when the
  /// database is destroyed receives OnDatabaseClosed.
  void AddObserver(CommitObserver* observer);
  void RemoveObserver(CommitObserver* observer);

  /// Replaces the committed base wholesale (initial load). Logged.
  Status ImportBase(const ObjectBase& base);

  /// Runs an update-program transactionally: evaluate, WAL-append the
  /// delta, install the new base. On failure the committed base is
  /// untouched — except kObserverFailed, which means the commit IS
  /// durable and installed but a commit observer errored (do not retry;
  /// see CommitObserver). On success the outcome's `committed_delta`
  /// carries the fact-level changes the transaction committed.
  Result<RunOutcome> Execute(Program& program,
                             const EvalOptions& options = EvalOptions(),
                             TraceSink* trace = nullptr);

  /// Group commit: evaluates each program against the evolving base and
  /// writes the whole batch's deltas as ONE WAL record — one durability
  /// write for N transactions. All-or-nothing: if any program fails to
  /// evaluate, nothing is logged or installed. Observers still see one
  /// OnCommit per transaction, in order.
  Result<std::vector<RunOutcome>> ExecuteBatch(
      const std::vector<Program*>& programs,
      const EvalOptions& options = EvalOptions(),
      TraceSink* trace = nullptr);

  /// Writes a fresh snapshot and truncates the WAL.
  Status Checkpoint();

  size_t wal_records_since_checkpoint() const { return wal_records_; }
  bool recovered_from_torn_wal() const { return recovered_torn_; }

  /// Ok unless recovery found a torn WAL tail but could not preserve the
  /// dropped bytes in `wal.log.corrupt` (write failure, or the side file
  /// reached kCorruptPreserveCap). Recovery itself still succeeded — the
  /// valid prefix was replayed and the tail truncated; this only records
  /// that the forensic copy of the dropped bytes is incomplete.
  const Status& corrupt_tail_preservation() const {
    return corrupt_tail_preservation_;
  }

  /// Growth cap for `wal.log.corrupt` across repeated recoveries: once
  /// the side file holds this many bytes, further torn tails are dropped
  /// without being preserved (and corrupt_tail_preservation() says so).
  static constexpr size_t kCorruptPreserveCap = 4u << 20;  // 4 MiB

 private:
  Database(std::string dir, Engine& engine)
      : dir_(std::move(dir)),
        engine_(engine),
        current_(engine.MakeBase()),
        wal_(dir_.empty() ? std::string() : dir_ + "/wal.log") {}

  std::string snapshot_path() const { return dir_ + "/snapshot.vsnp"; }

  Status CommitDelta(const ObjectBase& next, DeltaLog* committed = nullptr);
  Status NotifyObservers(const DeltaLog& delta, uint64_t epoch);

  std::string dir_;
  Engine& engine_;
  ObjectBase current_;
  WalWriter wal_;
  std::vector<CommitObserver*> observers_;
  size_t wal_records_ = 0;
  uint64_t commit_epoch_ = 0;
  bool recovered_torn_ = false;
  bool ephemeral_ = false;
  Status corrupt_tail_preservation_ = Status::Ok();
};

}  // namespace verso

#endif  // VERSO_STORAGE_DATABASE_H_
