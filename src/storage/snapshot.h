#ifndef VERSO_STORAGE_SNAPSHOT_H_
#define VERSO_STORAGE_SNAPSHOT_H_

#include <string>

#include "core/object_base.h"
#include "util/io.h"
#include "util/result.h"

namespace verso {

/// Point-in-time image of an object base on disk.
/// File layout: magic "VSNP1" | u32 payload length | payload | u32 CRC32.
/// Written atomically (temp file + rename); a torn or bit-rotted snapshot
/// is detected by magic/length/CRC and reported as Corruption.
Status WriteSnapshot(const std::string& path, const ObjectBase& base,
                     const SymbolTable& symbols, const VersionTable& versions,
                     Env* env = nullptr);

/// Loads a snapshot into `base` (which should be empty), interning names
/// into the given tables.
Status ReadSnapshotInto(const std::string& path, SymbolTable& symbols,
                        VersionTable& versions, ObjectBase& base,
                        Env* env = nullptr);

}  // namespace verso

#endif  // VERSO_STORAGE_SNAPSHOT_H_
