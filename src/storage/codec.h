#ifndef VERSO_STORAGE_CODEC_H_
#define VERSO_STORAGE_CODEC_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/object_base.h"
#include "core/symbol_table.h"
#include "core/version_table.h"
#include "util/result.h"

namespace verso {

/// Binary encoding of facts, object bases, and fact deltas. OID/VID
/// handles are engine-local, so everything is serialized *symbolically*
/// (names and exact numerics) and re-interned on decode; a stored base can
/// be loaded into any engine.
///
/// Primitives: unsigned LEB128 varints, zigzag for signed, length-prefixed
/// strings. Integrity (CRC, framing) is layered on top by snapshot/WAL.

class BufferWriter {
 public:
  void Byte(uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void Varint(uint64_t v);
  void ZigZag(int64_t v);
  void Str(std::string_view s);

  const std::string& buffer() const { return out_; }
  std::string Take() { return std::move(out_); }

 private:
  std::string out_;
};

class BufferReader {
 public:
  explicit BufferReader(std::string_view data) : data_(data) {}

  Result<uint8_t> Byte();
  Result<uint64_t> Varint();
  Result<int64_t> ZigZag();
  Result<std::string> Str();

  bool AtEnd() const { return pos_ == data_.size(); }
  size_t remaining() const { return data_.size() - pos_; }

 private:
  std::string_view data_;
  size_t pos_ = 0;
};

/// A fact decoded into engine handles.
struct DecodedFact {
  Vid vid;
  MethodId method;
  GroundApp app;
};

void EncodeFact(BufferWriter& writer, Vid vid, MethodId method,
                const GroundApp& app, const SymbolTable& symbols,
                const VersionTable& versions);
Result<DecodedFact> DecodeFact(BufferReader& reader, SymbolTable& symbols,
                               VersionTable& versions);

/// Whole object base: varint fact count, then facts.
std::string EncodeObjectBase(const ObjectBase& base,
                             const SymbolTable& symbols,
                             const VersionTable& versions);
Status DecodeObjectBaseInto(std::string_view data, SymbolTable& symbols,
                            VersionTable& versions, ObjectBase& base);

/// Per-version images for the checkpoint store (src/store): the base is
/// stored one version per key so recovery is a single range scan and a
/// checkpoint can delete exactly the versions that disappeared.
///
/// The key is the symbolic version image EncodeFact leads with — varint
/// functor-chain depth, update ops outermost-first, then the root OID —
/// so keys are deterministic across engines and equal keys mean the same
/// version identity the WAL codec uses.
std::string EncodeVersionKey(Vid vid, const SymbolTable& symbols,
                             const VersionTable& versions);
/// One version's whole state as a store value: varint fact count, then
/// that version's facts as EncodeFact images.
std::string EncodeVersionRecord(Vid vid, const VersionState& state,
                                const SymbolTable& symbols,
                                const VersionTable& versions);
/// Decodes one EncodeVersionRecord image, inserting its facts into `base`.
Status DecodeVersionRecordInto(std::string_view data, SymbolTable& symbols,
                               VersionTable& versions, ObjectBase& base);

/// Difference between two object bases; the WAL logs one delta per
/// committed update-program.
struct FactDelta {
  std::vector<DecodedFact> added;
  std::vector<DecodedFact> removed;

  bool empty() const { return added.empty() && removed.empty(); }
};

FactDelta ComputeDelta(const ObjectBase& before, const ObjectBase& after);
void ApplyDelta(const FactDelta& delta, ObjectBase& base);

std::string EncodeDelta(const FactDelta& delta, const SymbolTable& symbols,
                        const VersionTable& versions);
Result<FactDelta> DecodeDelta(std::string_view data, SymbolTable& symbols,
                              VersionTable& versions);

/// Group-commit payload: the deltas of a whole batch of transactions, in
/// commit order, framed as one WAL record (WalRecordKind::kBatch).
/// Format: varint transaction count, then each transaction's delta image.
std::string EncodeDeltaBatch(const std::vector<FactDelta>& deltas,
                             const SymbolTable& symbols,
                             const VersionTable& versions);
/// Single-transaction batch (the common Execute path), copy-free.
std::string EncodeDeltaBatch(const FactDelta& delta,
                             const SymbolTable& symbols,
                             const VersionTable& versions);
Result<std::vector<FactDelta>> DecodeDeltaBatch(std::string_view data,
                                                SymbolTable& symbols,
                                                VersionTable& versions);

/// The commit-stream view of a delta: removals first, then additions —
/// exactly the order ApplyDelta installs them, so observers replaying the
/// log fact-by-fact reconstruct the same intermediate states.
DeltaLog ToDeltaLog(const FactDelta& delta);

}  // namespace verso

#endif  // VERSO_STORAGE_CODEC_H_
