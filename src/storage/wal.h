#ifndef VERSO_STORAGE_WAL_H_
#define VERSO_STORAGE_WAL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/io.h"
#include "util/result.h"

namespace verso {

/// Payload framing of a WAL record, distinguished at the frame level so
/// recovery can replay logs written by any version of the database layer.
enum class WalRecordKind : uint8_t {
  /// Legacy framing: the payload is one EncodeDelta image — one committed
  /// transaction per record.
  kDelta = 0,
  /// Batched framing: the payload is one EncodeDeltaBatch image — a whole
  /// group-committed sequence of transaction deltas in one record (one
  /// durability write for the batch).
  kBatch = 1,
};

/// Append-only write-ahead log of opaque records (the database layers
/// fact-delta payloads on top). Frame format v2 (what Append writes):
///     u32 length_word | u32 CRC32(length_word) | u32 CRC32(payload) | payload
/// The length word spends two high bits on flags (payloads are far below
/// 1 GiB, so they are free): bit 31 marks batched records, bit 30 marks
/// the v2 header. The header CRC covers the length word, so a bit-flip in
/// the length no longer mis-frames the rest of the log — v1 frames relied
/// on the payload CRC landing wrong, which is only probabilistic.
/// Legacy v1 frames (bit 30 clear) omit the header CRC:
///     u32 length_word | u32 CRC32(payload) | payload
/// and stay readable byte-for-byte; ReadWal accepts both in one log.
/// Recovery reads records until EOF or the first torn/corrupt record;
/// everything before the tear is returned, the tail is ignored — the
/// standard RocksDB-style contract for crashed writers.
class WalWriter {
 public:
  explicit WalWriter(std::string path, Env* env = nullptr)
      : path_(std::move(path)), env_(env != nullptr ? env : Env::Default()) {}

  Status Append(std::string_view payload) {
    return Append(WalRecordKind::kDelta, payload);
  }
  Status Append(WalRecordKind kind, std::string_view payload);

  const std::string& path() const { return path_; }

 private:
  std::string path_;
  Env* env_;
};

struct WalRecord {
  WalRecordKind kind = WalRecordKind::kDelta;
  std::string payload;
  /// Byte offset of this record's frame in the log file, and of the first
  /// byte after it. Checkpoint recovery uses these to skip records the
  /// installed snapshot already folds.
  size_t offset = 0;
  size_t end_offset = 0;
};

struct WalReadResult {
  std::vector<WalRecord> records;
  /// True if a torn/corrupt tail was skipped (informational). NOTE: a
  /// corrupt record in the MIDDLE of the log is indistinguishable from a
  /// torn tail at that point, so every record after it — even bit-perfect
  /// ones — is intentionally dropped too: replaying deltas with a gap
  /// would fabricate a state no committed prefix ever had.
  bool truncated_tail = false;
  /// Byte length of the valid record prefix. When `truncated_tail` is
  /// set, recovery truncates the log to this length so later appends
  /// land after valid data instead of after the garbage tail (which
  /// would make them unreachable for every future recovery).
  size_t valid_bytes = 0;
};

/// Reads all valid records; a missing file yields zero records.
Result<WalReadResult> ReadWal(const std::string& path, Env* env = nullptr);

/// Encodes one v2 frame — the exact byte image WalWriter::Append writes.
/// Exposed so other persistence layers (src/store) frame their records
/// identically and recover them with ReadWal: the page-log backend appends
/// these frames, and the mem backend's image file is one such frame
/// installed by atomic rename. Fails for payloads at or past the 1 GiB
/// frame limit (the two high length bits are flags).
Result<std::string> EncodeWalFrame(WalRecordKind kind,
                                   std::string_view payload);

}  // namespace verso

#endif  // VERSO_STORAGE_WAL_H_
