#ifndef VERSO_STORAGE_WAL_H_
#define VERSO_STORAGE_WAL_H_

#include <string>
#include <vector>

#include "util/result.h"

namespace verso {

/// Append-only write-ahead log of opaque records (the database layers
/// fact-delta payloads on top). Record framing:
///     u32 length | u32 CRC32(payload) | payload
/// Recovery reads records until EOF or the first torn/corrupt record;
/// everything before the tear is returned, the tail is ignored — the
/// standard RocksDB-style contract for crashed writers.
class WalWriter {
 public:
  explicit WalWriter(std::string path) : path_(std::move(path)) {}

  Status Append(std::string_view payload);

  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

struct WalReadResult {
  std::vector<std::string> records;
  /// True if a torn/corrupt tail was skipped (informational).
  bool truncated_tail = false;
};

/// Reads all valid records; a missing file yields zero records.
Result<WalReadResult> ReadWal(const std::string& path);

}  // namespace verso

#endif  // VERSO_STORAGE_WAL_H_
