#ifndef VERSO_STORAGE_WAL_H_
#define VERSO_STORAGE_WAL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/result.h"

namespace verso {

/// Payload framing of a WAL record, distinguished at the frame level so
/// recovery can replay logs written by any version of the database layer.
enum class WalRecordKind : uint8_t {
  /// Legacy framing: the payload is one EncodeDelta image — one committed
  /// transaction per record.
  kDelta = 0,
  /// Batched framing: the payload is one EncodeDeltaBatch image — a whole
  /// group-committed sequence of transaction deltas in one record (one
  /// durability write for the batch).
  kBatch = 1,
};

/// Append-only write-ahead log of opaque records (the database layers
/// fact-delta payloads on top). Record framing:
///     u32 length | u32 CRC32(payload) | payload
/// Batched records set the high bit of the length word (payloads are far
/// below 2 GiB, so the bit is free); legacy records leave it clear, which
/// keeps old logs readable byte-for-byte.
/// Recovery reads records until EOF or the first torn/corrupt record;
/// everything before the tear is returned, the tail is ignored — the
/// standard RocksDB-style contract for crashed writers.
class WalWriter {
 public:
  explicit WalWriter(std::string path) : path_(std::move(path)) {}

  Status Append(std::string_view payload) {
    return Append(WalRecordKind::kDelta, payload);
  }
  Status Append(WalRecordKind kind, std::string_view payload);

  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

struct WalRecord {
  WalRecordKind kind = WalRecordKind::kDelta;
  std::string payload;
};

struct WalReadResult {
  std::vector<WalRecord> records;
  /// True if a torn/corrupt tail was skipped (informational).
  bool truncated_tail = false;
  /// Byte length of the valid record prefix. When `truncated_tail` is
  /// set, recovery truncates the log to this length so later appends
  /// land after valid data instead of after the garbage tail (which
  /// would make them unreachable for every future recovery).
  size_t valid_bytes = 0;
};

/// Reads all valid records; a missing file yields zero records.
Result<WalReadResult> ReadWal(const std::string& path);

}  // namespace verso

#endif  // VERSO_STORAGE_WAL_H_
