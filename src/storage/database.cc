#include "storage/database.h"

#include <algorithm>
#include <set>

#include "obs/metrics.h"
#include "storage/codec.h"
#include "storage/snapshot.h"
#include "store/store.h"
#include "util/io.h"

namespace verso {

namespace {

/// Commit-path handles into the global registry, bound once (registration
/// takes a mutex; the commit path must not). The five histograms are the
/// per-commit phase spans: evaluate, WAL append (durability, retries and
/// backoff included), in-memory install, observer/view fan-out, and the
/// whole transaction end to end.
struct CommitMetrics {
  Counter& commits;
  Counter& batches;
  Counter& noops;
  Counter& rejected_readonly;
  Counter& delta_facts;
  Histogram& evaluate_us;
  Histogram& wal_append_us;
  Histogram& install_us;
  Histogram& fanout_us;
  Histogram& total_us;

  static CommitMetrics& Get() {
    static CommitMetrics* metrics =
        new CommitMetrics(MetricsRegistry::Global());  // never dies
    return *metrics;
  }

  explicit CommitMetrics(MetricsRegistry& registry)
      : commits(registry.GetCounter("commit.count")),
        batches(registry.GetCounter("commit.batches")),
        noops(registry.GetCounter("commit.noops")),
        rejected_readonly(registry.GetCounter("commit.rejected_readonly")),
        delta_facts(registry.GetCounter("commit.delta_facts")),
        evaluate_us(registry.GetHistogram("commit.evaluate_us")),
        wal_append_us(registry.GetHistogram("commit.wal_append_us")),
        install_us(registry.GetHistogram("commit.install_us")),
        fanout_us(registry.GetHistogram("commit.fanout_us")),
        total_us(registry.GetHistogram("commit.total_us")) {}
};

/// Checkpoint/recovery handles. The recovery pair makes bounded recovery
/// observable: replayed_frames is the suffix length the last checkpoint
/// left behind, recovery_us the total microseconds spent replaying.
/// Counters rather than histograms — opens are rare, and dashboards
/// watch the totals alongside the checkpoint cadence.
struct StorageMetrics {
  Counter& checkpoints;
  Counter& auto_checkpoints;
  Counter& recovery_replayed_frames;
  Counter& recovery_us;
  Counter& recovery_store_keys;
  Histogram& checkpoint_us;

  static StorageMetrics& Get() {
    static StorageMetrics* metrics =
        new StorageMetrics(MetricsRegistry::Global());  // never dies
    return *metrics;
  }

  explicit StorageMetrics(MetricsRegistry& registry)
      : checkpoints(registry.GetCounter("storage.checkpoints")),
        auto_checkpoints(registry.GetCounter("storage.auto_checkpoints")),
        recovery_replayed_frames(
            registry.GetCounter("storage.recovery_replayed_frames")),
        recovery_us(registry.GetCounter("storage.recovery_us")),
        recovery_store_keys(
            registry.GetCounter("storage.recovery_store_keys")),
        checkpoint_us(registry.GetHistogram("storage.checkpoint_us")) {}
};

/// Store keys of base state: "b/" + EncodeVersionKey. The prefix leaves
/// room for future record families (views, catalogs) in the same store.
constexpr char kBasePrefix[] = "b/";

}  // namespace

Result<std::unique_ptr<Database>> Database::Open(const std::string& dir,
                                                 Engine& engine,
                                                 DatabaseOptions options) {
  if (dir.empty()) {
    return Status::InvalidArgument(
        "database directory must not be empty (use OpenInMemory for an "
        "ephemeral database)");
  }
  std::unique_ptr<Database> db(new Database(dir, engine, options));
  StorageMetrics& smetrics = StorageMetrics::Get();
  Env* env = db->env_;
  VERSO_RETURN_IF_ERROR(env->EnsureDirectory(dir));
  const uint64_t recover_start = db->clock_->NowNanos();
  VERSO_ASSIGN_OR_RETURN(db->store_,
                         OpenStore(options.store_backend, dir, env));
  ReadTransaction base_read = db->store_->BeginRead();
  Result<uint64_t> generation = db->store_->GetMeta(base_read, "generation");
  if (generation.ok()) {
    // The store holds the latest checkpoint generation: rebuild the base
    // from its per-version records in one range scan, then replay only
    // the WAL suffix behind it below — O(base + tail), not O(history).
    db->checkpoint_generation_ = *generation;
    size_t keys = 0;
    VERSO_RETURN_IF_ERROR(db->store_->Scan(
        base_read, kBasePrefix,
        [&](std::string_view, std::string_view value) {
          ++keys;
          return DecodeVersionRecordInto(value, engine.symbols(),
                                         engine.versions(), db->current_);
        }));
    smetrics.recovery_store_keys.Add(keys);
  } else if (generation.status().code() != StatusCode::kNotFound) {
    return generation.status();
  } else if (env->FileExists(db->snapshot_path())) {
    // Pre-store directory: the legacy snapshot stays the checkpoint of
    // record until the first store checkpoint supersedes (and removes)
    // it.
    VERSO_RETURN_IF_ERROR(ReadSnapshotInto(db->snapshot_path(),
                                           engine.symbols(), engine.versions(),
                                           db->current_, env));
  }
  VERSO_ASSIGN_OR_RETURN(WalReadResult wal, ReadWal(db->wal_.path(), env));
  db->recovered_torn_ = wal.truncated_tail;
  if (wal.truncated_tail) {
    // Chop the torn tail now: the next Append must extend the valid
    // prefix, or everything committed after the tear would sit behind
    // garbage and be lost to every future recovery. The chopped bytes
    // are preserved in a side file first — a CRC failure MID-log (bit
    // rot ahead of valid acknowledged records) is indistinguishable
    // from a torn tail here, and destroying the evidence would make
    // that data loss unrecoverable even by hand.
    //
    // Preservation is best-effort: a failure to write the side file (or
    // the side file having reached its growth cap across repeated
    // recoveries) must not abort recovery — the database is recoverable,
    // only the forensic copy is incomplete. The failure is recorded on
    // the database (corrupt_tail_preservation()) instead of being
    // swallowed. Truncation, by contrast, stays fatal: without it every
    // later commit appends behind garbage and is lost.
    VERSO_ASSIGN_OR_RETURN(std::string raw, env->ReadFile(db->wal_.path()));
    if (raw.size() > wal.valid_bytes) {
      const std::string corrupt_path = db->wal_.path() + ".corrupt";
      std::string_view tail = std::string_view(raw).substr(wal.valid_bytes);
      size_t existing = 0;
      bool size_known = true;
      if (env->FileExists(corrupt_path)) {
        Result<size_t> size = env->FileSize(corrupt_path);
        if (size.ok()) {
          existing = *size;
        } else {
          // Unknown side-file size: appending could overshoot the cap,
          // so skip preservation and record why — defaulting to "empty"
          // here would both bust the cap and report Ok.
          size_known = false;
          db->corrupt_tail_preservation_ = size.status();
        }
      }
      if (!size_known) {
        // recorded above; nothing appended
      } else if (existing >= kCorruptPreserveCap) {
        db->corrupt_tail_preservation_ = Status::IoError(
            "wal.log.corrupt is at its growth cap (" +
            std::to_string(existing) + " bytes); dropped " +
            std::to_string(tail.size()) + " torn-tail bytes unpreserved");
      } else {
        if (existing + tail.size() > kCorruptPreserveCap) {
          tail = tail.substr(0, kCorruptPreserveCap - existing);
        }
        Status preserved = env->AppendFile(corrupt_path, tail);
        if (!preserved.ok()) {
          db->corrupt_tail_preservation_ = preserved;
        } else if (tail.size() < raw.size() - wal.valid_bytes) {
          db->corrupt_tail_preservation_ = Status::IoError(
              "wal.log.corrupt reached its growth cap; preserved only " +
              std::to_string(tail.size()) + " of " +
              std::to_string(raw.size() - wal.valid_bytes) +
              " torn-tail bytes");
        }
      }
    }
    VERSO_RETURN_IF_ERROR(
        env->TruncateFile(db->wal_.path(), wal.valid_bytes));
  }
  for (const WalRecord& record : wal.records) {
    // Replay is idempotent: fact-level deltas have set semantics
    // (duplicate inserts and absent-fact erases are no-ops), so records
    // whose effects an installed snapshot already folds — the
    // checkpoint crash window — replay to the identical state.
    switch (record.kind) {
      case WalRecordKind::kDelta: {
        VERSO_ASSIGN_OR_RETURN(
            FactDelta delta,
            DecodeDelta(record.payload, engine.symbols(), engine.versions()));
        ApplyDelta(delta, db->current_);
        break;
      }
      case WalRecordKind::kBatch: {
        VERSO_ASSIGN_OR_RETURN(
            std::vector<FactDelta> deltas,
            DecodeDeltaBatch(record.payload, engine.symbols(),
                             engine.versions()));
        for (const FactDelta& delta : deltas) {
          ApplyDelta(delta, db->current_);
        }
        break;
      }
    }
    ++db->wal_records_;
  }
  db->wal_bytes_ = wal.valid_bytes;
  smetrics.recovery_replayed_frames.Add(wal.records.size());
  smetrics.recovery_us.Add((db->clock_->NowNanos() - recover_start) / 1000);
  return db;
}

Result<std::unique_ptr<Database>> Database::OpenInMemory(Engine& engine) {
  // Preregister the checkpoint/recovery metrics so the observability
  // surface is stable: a dashboard sees storage.* at zero from an
  // ephemeral database rather than the keys appearing on first reopen.
  StorageMetrics::Get();
  std::unique_ptr<Database> db(
      new Database(std::string(), engine, DatabaseOptions()));
  db->ephemeral_ = true;
  return db;
}

Database::~Database() {
  for (CommitObserver* observer : observers_) observer->OnDatabaseClosed();
}

void Database::AddObserver(CommitObserver* observer) {
  // Idempotent: a doubly-registered observer would see every commit twice
  // (double view maintenance, double stats).
  if (std::find(observers_.begin(), observers_.end(), observer) !=
      observers_.end()) {
    return;
  }
  observers_.push_back(observer);
}

void Database::RemoveObserver(CommitObserver* observer) {
  observers_.erase(std::remove(observers_.begin(), observers_.end(), observer),
                   observers_.end());
}

Status Database::NotifyObservers(const DeltaLog& delta, uint64_t epoch) {
  // Every observer sees every committed delta even if one errors —
  // aborting delivery would silently desynchronize the healthy observers
  // from current(). The first error is reported as kObserverFailed so the
  // caller can tell "committed, but an observer broke" (never retry) from
  // an evaluation failure (base untouched, retry is safe).
  Status first_error;
  for (CommitObserver* observer : observers_) {
    Status status = observer->OnCommit(delta, current_, epoch);
    if (!status.ok() && first_error.ok()) first_error = status;
  }
  if (!first_error.ok()) {
    return Status::ObserverFailed("commit is durable but an observer "
                                  "failed: " +
                                  first_error.ToString());
  }
  return Status::Ok();
}

Status Database::CheckWritable() const {
  if (degraded_.ok()) return Status::Ok();
  CommitMetrics::Get().rejected_readonly.Add();
  return Status::ReadOnly("database is in degraded (read-only) mode: " +
                          degraded_.ToString());
}

void Database::TraceFault(std::string_view op, const Status& status,
                          uint32_t attempt, bool degraded) {
  if (opts_.trace != nullptr) {
    opts_.trace->OnStorageFault(op, status, attempt, degraded);
  }
}

void Database::EnterDegraded(const Status& cause) {
  if (!degraded_.ok()) return;  // sticky: first cause wins
  degraded_ = cause;
  ++stats_.degraded_entered;
}

Status Database::RollbackWalTail(size_t pre_size) {
  if (!env_->FileExists(wal_.path())) {
    return pre_size == 0
               ? Status::Ok()
               : Status::IoError("WAL vanished beneath the committed tail");
  }
  VERSO_ASSIGN_OR_RETURN(size_t now, env_->FileSize(wal_.path()));
  if (now == pre_size) return Status::Ok();
  if (now < pre_size) {
    return Status::IoError("WAL shrank beneath the committed tail");
  }
  return env_->TruncateFile(wal_.path(), pre_size);
}

Status Database::AppendWalDurable(WalRecordKind kind,
                                  std::string_view payload) {
  // The tail position before the append: a failed attempt may have
  // landed a partial frame, and a retry must not stack a fresh frame
  // behind that garbage — recovery would stop at the tear and lose the
  // retried commit and every later one.
  size_t pre_size = 0;
  bool know_tail = true;
  if (env_->FileExists(wal_.path())) {
    Result<size_t> size = env_->FileSize(wal_.path());
    if (size.ok()) {
      pre_size = *size;
    } else {
      know_tail = false;  // cannot roll back safely: no retries
    }
  }
  uint32_t attempt = 0;
  Status status;
  for (;;) {
    status = wal_.Append(kind, payload);
    if (status.ok()) return Status::Ok();
    ++stats_.io_failures;
    bool retryable = status.code() == StatusCode::kIoTransient &&
                     attempt < opts_.wal_retry_limit && know_tail;
    TraceFault("wal-append", status, attempt, !retryable);
    if (!retryable) break;
    Status rolled = RollbackWalTail(pre_size);
    if (!rolled.ok()) {
      TraceFault("wal-rollback", rolled, attempt, true);
      status = rolled;
      break;
    }
    ++stats_.retries;
    ++attempt;
    if (opts_.retry_backoff_us > 0) {
      clock_->SleepMicros(static_cast<uint64_t>(opts_.retry_backoff_us)
                          << attempt);
    }
  }
  EnterDegraded(status);
  return status;
}

Status Database::CommitDelta(const ObjectBase& next, DeltaLog* committed) {
  VERSO_RETURN_IF_ERROR(CheckWritable());
  MetricsRegistry& registry = MetricsRegistry::Global();
  CommitMetrics& metrics = CommitMetrics::Get();
  FactDelta delta = ComputeDelta(current_, next);
  if (delta.empty()) {
    metrics.noops.Add();
    return Status::Ok();
  }
  if (!ephemeral_) {
    std::string payload =
        EncodeDeltaBatch(delta, engine_.symbols(), engine_.versions());
    // Durability first: the record hits the log before memory moves. A
    // failed append leaves the base untouched and degrades the database.
    // The span records on failure too (timer destructor), so degraded
    // commits still show up in commit.wal_append_us.
    ScopedTimer wal_timer(registry, metrics.wal_append_us);
    VERSO_RETURN_IF_ERROR(AppendWalDurable(WalRecordKind::kBatch, payload));
    wal_timer.Stop();
    ++wal_records_;
    wal_bytes_ += payload.size() + 12;  // v2 frame: 12-byte header
  }
  {
    ScopedTimer install_timer(registry, metrics.install_us);
    ApplyDelta(delta, current_);
  }
  ++commit_epoch_;
  DeltaLog log = ToDeltaLog(delta);
  metrics.commits.Add();
  metrics.delta_facts.Add(log.size());
  ScopedTimer fanout_timer(registry, metrics.fanout_us);
  Status notify = NotifyObservers(log, commit_epoch_);
  fanout_timer.Stop();
  if (committed != nullptr) *committed = std::move(log);
  // After fan-out: the commit (and its observer deliveries) are complete
  // whether or not the WAL gets folded now.
  MaybeAutoCheckpoint();
  return notify;
}

Status Database::ImportBase(const ObjectBase& base) {
  return CommitDelta(base);
}

Result<RunOutcome> Database::Execute(Program& program,
                                     const EvalOptions& options,
                                     TraceSink* trace) {
  // Refuse before evaluating: a degraded database cannot commit, so the
  // evaluation work (and any observer side effects) would be wasted.
  VERSO_RETURN_IF_ERROR(CheckWritable());
  MetricsRegistry& registry = MetricsRegistry::Global();
  CommitMetrics& metrics = CommitMetrics::Get();
  ScopedTimer total_timer(registry, metrics.total_us);
  ScopedTimer eval_timer(registry, metrics.evaluate_us);
  VERSO_ASSIGN_OR_RETURN(RunOutcome outcome,
                         engine_.Run(program, current_, options, trace));
  eval_timer.Stop();
  Status committed = CommitDelta(outcome.new_base, &outcome.committed_delta);
  outcome.committed_epoch = commit_epoch_;
  VERSO_RETURN_IF_ERROR(committed);
  return outcome;
}

Result<std::vector<RunOutcome>> Database::ExecuteBatch(
    const std::vector<Program*>& programs, const EvalOptions& options,
    TraceSink* trace) {
  VERSO_RETURN_IF_ERROR(CheckWritable());
  MetricsRegistry& registry = MetricsRegistry::Global();
  CommitMetrics& metrics = CommitMetrics::Get();
  ScopedTimer total_timer(registry, metrics.total_us);
  metrics.batches.Add();
  std::vector<RunOutcome> outcomes;
  std::vector<FactDelta> deltas;
  outcomes.reserve(programs.size());
  deltas.reserve(programs.size());

  // Evaluate the whole batch against the evolving (uncommitted) base; a
  // failing transaction aborts the batch before anything touches the log.
  // The outcomes vector keeps every new_base alive, so the evolving base
  // is tracked by pointer instead of copying it per transaction.
  // One evaluate span covers the whole group — the batch's unit of work
  // is the group, matching its one durability write below.
  ScopedTimer eval_timer(registry, metrics.evaluate_us);
  const ObjectBase* working = &current_;
  for (Program* program : programs) {
    VERSO_ASSIGN_OR_RETURN(RunOutcome outcome,
                           engine_.Run(*program, *working, options, trace));
    deltas.push_back(ComputeDelta(*working, outcome.new_base));
    outcomes.push_back(std::move(outcome));
    working = &outcomes.back().new_base;
  }
  eval_timer.Stop();

  bool any_change = false;
  for (const FactDelta& delta : deltas) any_change |= !delta.empty();
  if (!any_change) {
    metrics.noops.Add(deltas.size());
    for (RunOutcome& outcome : outcomes) {
      outcome.committed_epoch = commit_epoch_;
    }
    return outcomes;
  }

  // One WAL record — one durability write — for the whole group. Every
  // delta is installed in memory before observers run: the batch is
  // durable, so an observer error must not leave current() behind the log.
  if (!ephemeral_) {
    std::string payload =
        EncodeDeltaBatch(deltas, engine_.symbols(), engine_.versions());
    ScopedTimer wal_timer(registry, metrics.wal_append_us);
    VERSO_RETURN_IF_ERROR(AppendWalDurable(WalRecordKind::kBatch, payload));
    wal_timer.Stop();
    ++wal_records_;
    wal_bytes_ += payload.size() + 12;  // v2 frame: 12-byte header
  }
  {
    ScopedTimer install_timer(registry, metrics.install_us);
    for (const FactDelta& delta : deltas) {
      ApplyDelta(delta, current_);
    }
  }
  // Deliver every delta even if an observer errors on one of them: all of
  // them are durable and installed, so later deltas must reach the
  // observers that are still healthy. The epoch advances once per
  // transaction of the group, right before that transaction's observers
  // run; a no-op member neither advances it nor notifies (matching the
  // single-Execute path, where an empty delta commits nothing).
  Status first_error;
  ScopedTimer fanout_timer(registry, metrics.fanout_us);
  for (size_t i = 0; i < deltas.size(); ++i) {
    if (deltas[i].empty()) {
      metrics.noops.Add();
      outcomes[i].committed_epoch = commit_epoch_;
      continue;
    }
    DeltaLog log = ToDeltaLog(deltas[i]);
    metrics.commits.Add();
    metrics.delta_facts.Add(log.size());
    ++commit_epoch_;
    // Observers for member i are stamped with member i's OWN epoch — a
    // subscription delta delivered mid-batch must not carry a later
    // member's epoch (the regression this guards is epoch-tagged view
    // replay across ExecuteBatch).
    Status status = NotifyObservers(log, commit_epoch_);
    outcomes[i].committed_delta = std::move(log);
    outcomes[i].committed_epoch = commit_epoch_;
    if (!status.ok() && first_error.ok()) first_error = status;
  }
  MaybeAutoCheckpoint();
  VERSO_RETURN_IF_ERROR(first_error);
  return outcomes;
}

Status Database::Checkpoint() {
  if (ephemeral_) return Status::Ok();  // nothing to fold
  VERSO_RETURN_IF_ERROR(CheckWritable());
  StorageMetrics& metrics = StorageMetrics::Get();
  ScopedTimer timer(MetricsRegistry::Global(), metrics.checkpoint_us);
  // Stage the whole base, one record per version, keyed so recovery
  // rebuilds it with a single "b/" range scan; keys present in the store
  // but absent from the staged set are versions deleted since the last
  // checkpoint, removed in the same atomic commit as the bumped
  // generation.
  WriteTransaction txn = store_->BeginWrite();
  std::set<std::string, std::less<>> live;
  for (const auto& [vid, state] : current_.versions()) {
    std::string key = std::string(kBasePrefix) +
                      EncodeVersionKey(vid, engine_.symbols(),
                                       engine_.versions());
    txn.Put(key, EncodeVersionRecord(vid, *state, engine_.symbols(),
                                     engine_.versions()));
    live.insert(std::move(key));
  }
  ReadTransaction stale_scan = store_->BeginRead();
  VERSO_RETURN_IF_ERROR(store_->Scan(
      stale_scan, kBasePrefix,
      [&](std::string_view key, std::string_view) {
        if (live.find(key) == live.end()) txn.Delete(std::string(key));
        return Status::Ok();
      }));
  txn.PutMeta("generation", checkpoint_generation_ + 1);
  Status committed = txn.Commit();
  if (!committed.ok()) {
    // Nothing lost: the WAL still holds every commit and the store (at
    // the old generation) is untouched — both backends commit
    // atomically. Stay healthy.
    ++stats_.io_failures;
    TraceFault("checkpoint-store", committed, 0, false);
    return committed;
  }
  ++checkpoint_generation_;
  // The store commit is durable; only now may the WAL shrink. A crash
  // (or failure) between the two steps leaves store + stale WAL, and
  // recovery replays the already-folded records idempotently — the
  // torture harness crashes at every I/O point of this sequence.
  Status truncated = env_->RemoveFile(wal_.path());
  if (!truncated.ok()) {
    ++stats_.io_failures;
    TraceFault("checkpoint-truncate", truncated, 0, false);
    return truncated;
  }
  wal_records_ = 0;
  wal_bytes_ = 0;
  metrics.checkpoints.Add();
  // A legacy snapshot.vsnp is now strictly older than the store
  // generation recovery prefers; removing it is cleanup, so a failure
  // is traced, not returned.
  if (env_->FileExists(snapshot_path())) {
    Status removed = env_->RemoveFile(snapshot_path());
    if (!removed.ok()) {
      ++stats_.io_failures;
      TraceFault("checkpoint-clean-snapshot", removed, 0, false);
    }
  }
  return Status::Ok();
}

void Database::MaybeAutoCheckpoint() {
  if (ephemeral_ || opts_.checkpoint_wal_bytes == 0) return;
  if (wal_bytes_ < opts_.checkpoint_wal_bytes) return;
  if (!degraded_.ok()) return;  // Checkpoint would refuse; don't double-count
  if (Checkpoint().ok()) {
    StorageMetrics::Get().auto_checkpoints.Add();
  }
}

}  // namespace verso
