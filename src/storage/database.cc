#include "storage/database.h"

#include <algorithm>

#include "storage/codec.h"
#include "storage/snapshot.h"
#include "util/io.h"

namespace verso {

Result<std::unique_ptr<Database>> Database::Open(const std::string& dir,
                                                 Engine& engine) {
  VERSO_RETURN_IF_ERROR(EnsureDirectory(dir));
  std::unique_ptr<Database> db(new Database(dir, engine));
  if (FileExists(db->snapshot_path())) {
    VERSO_RETURN_IF_ERROR(ReadSnapshotInto(db->snapshot_path(),
                                           engine.symbols(),
                                           engine.versions(), db->current_));
  }
  VERSO_ASSIGN_OR_RETURN(WalReadResult wal, ReadWal(db->wal_.path()));
  db->recovered_torn_ = wal.truncated_tail;
  for (const WalRecord& record : wal.records) {
    switch (record.kind) {
      case WalRecordKind::kDelta: {
        VERSO_ASSIGN_OR_RETURN(
            FactDelta delta,
            DecodeDelta(record.payload, engine.symbols(), engine.versions()));
        ApplyDelta(delta, db->current_);
        break;
      }
      case WalRecordKind::kBatch: {
        VERSO_ASSIGN_OR_RETURN(
            std::vector<FactDelta> deltas,
            DecodeDeltaBatch(record.payload, engine.symbols(),
                             engine.versions()));
        for (const FactDelta& delta : deltas) {
          ApplyDelta(delta, db->current_);
        }
        break;
      }
    }
    ++db->wal_records_;
  }
  return db;
}

Database::~Database() {
  for (CommitObserver* observer : observers_) observer->OnDatabaseClosed();
}

void Database::AddObserver(CommitObserver* observer) {
  observers_.push_back(observer);
}

void Database::RemoveObserver(CommitObserver* observer) {
  observers_.erase(std::remove(observers_.begin(), observers_.end(), observer),
                   observers_.end());
}

Status Database::NotifyObservers(const DeltaLog& delta) {
  // Every observer sees every committed delta even if one errors —
  // aborting delivery would silently desynchronize the healthy observers
  // from current(). The first error is reported as kObserverFailed so the
  // caller can tell "committed, but an observer broke" (never retry) from
  // an evaluation failure (base untouched, retry is safe).
  Status first_error;
  for (CommitObserver* observer : observers_) {
    Status status = observer->OnCommit(delta, current_);
    if (!status.ok() && first_error.ok()) first_error = status;
  }
  if (!first_error.ok()) {
    return Status::ObserverFailed("commit is durable but an observer "
                                  "failed: " +
                                  first_error.ToString());
  }
  return Status::Ok();
}

Status Database::CommitDelta(const ObjectBase& next) {
  FactDelta delta = ComputeDelta(current_, next);
  if (delta.empty()) return Status::Ok();
  std::string payload =
      EncodeDeltaBatch(delta, engine_.symbols(), engine_.versions());
  // Durability first: the record hits the log before memory moves.
  VERSO_RETURN_IF_ERROR(wal_.Append(WalRecordKind::kBatch, payload));
  ApplyDelta(delta, current_);
  ++wal_records_;
  return NotifyObservers(ToDeltaLog(delta));
}

Status Database::ImportBase(const ObjectBase& base) {
  return CommitDelta(base);
}

Result<RunOutcome> Database::Execute(Program& program,
                                     const EvalOptions& options) {
  VERSO_ASSIGN_OR_RETURN(RunOutcome outcome,
                         engine_.Run(program, current_, options));
  VERSO_RETURN_IF_ERROR(CommitDelta(outcome.new_base));
  return outcome;
}

Result<std::vector<RunOutcome>> Database::ExecuteBatch(
    const std::vector<Program*>& programs, const EvalOptions& options) {
  std::vector<RunOutcome> outcomes;
  std::vector<FactDelta> deltas;
  outcomes.reserve(programs.size());
  deltas.reserve(programs.size());

  // Evaluate the whole batch against the evolving (uncommitted) base; a
  // failing transaction aborts the batch before anything touches the log.
  // The outcomes vector keeps every new_base alive, so the evolving base
  // is tracked by pointer instead of copying it per transaction.
  const ObjectBase* working = &current_;
  for (Program* program : programs) {
    VERSO_ASSIGN_OR_RETURN(RunOutcome outcome,
                           engine_.Run(*program, *working, options));
    deltas.push_back(ComputeDelta(*working, outcome.new_base));
    outcomes.push_back(std::move(outcome));
    working = &outcomes.back().new_base;
  }

  bool any_change = false;
  for (const FactDelta& delta : deltas) any_change |= !delta.empty();
  if (!any_change) return outcomes;

  // One WAL record — one durability write — for the whole group. Every
  // delta is installed in memory before observers run: the batch is
  // durable, so an observer error must not leave current() behind the log.
  std::string payload =
      EncodeDeltaBatch(deltas, engine_.symbols(), engine_.versions());
  VERSO_RETURN_IF_ERROR(wal_.Append(WalRecordKind::kBatch, payload));
  ++wal_records_;
  for (const FactDelta& delta : deltas) {
    ApplyDelta(delta, current_);
  }
  // Deliver every delta even if an observer errors on one of them: all of
  // them are durable and installed, so later deltas must reach the
  // observers that are still healthy.
  Status first_error;
  for (const FactDelta& delta : deltas) {
    Status status = NotifyObservers(ToDeltaLog(delta));
    if (!status.ok() && first_error.ok()) first_error = status;
  }
  VERSO_RETURN_IF_ERROR(first_error);
  return outcomes;
}

Status Database::Checkpoint() {
  VERSO_RETURN_IF_ERROR(WriteSnapshot(snapshot_path(), current_,
                                      engine_.symbols(), engine_.versions()));
  VERSO_RETURN_IF_ERROR(RemoveFile(wal_.path()));
  wal_records_ = 0;
  return Status::Ok();
}

}  // namespace verso
