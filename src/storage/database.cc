#include "storage/database.h"

#include "storage/codec.h"
#include "storage/snapshot.h"
#include "util/io.h"

namespace verso {

Result<std::unique_ptr<Database>> Database::Open(const std::string& dir,
                                                 Engine& engine) {
  VERSO_RETURN_IF_ERROR(EnsureDirectory(dir));
  std::unique_ptr<Database> db(new Database(dir, engine));
  if (FileExists(db->snapshot_path())) {
    VERSO_RETURN_IF_ERROR(ReadSnapshotInto(db->snapshot_path(),
                                           engine.symbols(),
                                           engine.versions(), db->current_));
  }
  VERSO_ASSIGN_OR_RETURN(WalReadResult wal, ReadWal(db->wal_.path()));
  db->recovered_torn_ = wal.truncated_tail;
  for (const std::string& record : wal.records) {
    VERSO_ASSIGN_OR_RETURN(
        FactDelta delta,
        DecodeDelta(record, engine.symbols(), engine.versions()));
    ApplyDelta(delta, db->current_);
    ++db->wal_records_;
  }
  return db;
}

Status Database::CommitDelta(const ObjectBase& next) {
  FactDelta delta = ComputeDelta(current_, next);
  if (delta.empty()) return Status::Ok();
  std::string payload =
      EncodeDelta(delta, engine_.symbols(), engine_.versions());
  VERSO_RETURN_IF_ERROR(wal_.Append(payload));  // durability first
  ApplyDelta(delta, current_);
  ++wal_records_;
  return Status::Ok();
}

Status Database::ImportBase(const ObjectBase& base) {
  return CommitDelta(base);
}

Result<RunOutcome> Database::Execute(Program& program,
                                     const EvalOptions& options) {
  VERSO_ASSIGN_OR_RETURN(RunOutcome outcome,
                         engine_.Run(program, current_, options));
  VERSO_RETURN_IF_ERROR(CommitDelta(outcome.new_base));
  return outcome;
}

Status Database::Checkpoint() {
  VERSO_RETURN_IF_ERROR(WriteSnapshot(snapshot_path(), current_,
                                      engine_.symbols(), engine_.versions()));
  VERSO_RETURN_IF_ERROR(RemoveFile(wal_.path()));
  wal_records_ = 0;
  return Status::Ok();
}

}  // namespace verso
