#include "api/api.h"

#include <algorithm>

#include "core/pretty.h"

namespace verso {

namespace internal {

void SortRows(DeltaLog& rows) {
  std::sort(rows.begin(), rows.end(),
            [](const DeltaFact& a, const DeltaFact& b) {
              if (a.vid.value != b.vid.value) return a.vid.value < b.vid.value;
              if (a.method.value != b.method.value) {
                return a.method.value < b.method.value;
              }
              if (!(a.app == b.app)) return a.app < b.app;
              return a.added < b.added;
            });
}

DeltaLog CollectFacts(const ObjectBase& base,
                      const std::vector<MethodId>& methods) {
  DeltaLog rows;
  for (MethodId method : methods) {
    const std::unordered_map<Vid, uint32_t>* vids =
        base.VidsWithMethod(method);
    if (vids == nullptr) continue;
    for (const auto& [vid, count] : *vids) {
      (void)count;
      Status status = base.ForEachApp(vid, method, [&](const GroundApp& app) {
        rows.push_back(DeltaFact{vid, method, app, /*added=*/true});
        return Status::Ok();
      });
      (void)status;  // the sink never fails
    }
  }
  SortRows(rows);
  return rows;
}

}  // namespace internal

bool ResultSet::Next() {
  if (kind_ == Kind::kMetrics) {
    if (next_ >= metrics_.size()) {
      current_metric_ = nullptr;
      return false;
    }
    current_metric_ = &metrics_[next_++];
    return true;
  }
  if (kind_ == Kind::kAnalysis) {
    if (next_ >= analysis_->diagnostics.size()) return false;
    ++next_;
    return true;
  }
  if (next_ >= rows_.size()) {
    current_ = nullptr;
    return false;
  }
  current_ = &rows_[next_++];
  return true;
}

void ResultSet::Rewind() {
  next_ = 0;
  current_ = nullptr;
  current_metric_ = nullptr;
}

std::string ResultSet::object() const {
  return versions_->ToString(row().vid, *symbols_);
}

std::string ResultSet::method() const {
  return std::string(symbols_->MethodName(row().method));
}

std::string ResultSet::arg_text(size_t i) const {
  return symbols_->OidToString(row().app.args[i]);
}

bool ResultSet::result_is_number() const {
  return symbols_->IsNumber(row().app.result);
}

const Numeric& ResultSet::result_number() const {
  return symbols_->NumberValue(row().app.result);
}

std::string ResultSet::result_text() const {
  return symbols_->OidToString(row().app.result);
}

std::string ResultSet::RowToString() const {
  if (kind_ == Kind::kMetrics) {
    return current_metric_->name + " = " +
           std::to_string(current_metric_->value);
  }
  if (kind_ == Kind::kAnalysis) return diagnostic().ToString();
  return FactToString(row().vid, row().method, row().app, *symbols_,
                      *versions_);
}

const EvalStats* ResultSet::eval_stats() const {
  return outcome_ ? &outcome_->stats : nullptr;
}

const Stratification* ResultSet::stratification() const {
  return outcome_ ? &outcome_->stratification : nullptr;
}

const ObjectBase* ResultSet::update_result() const {
  return outcome_ ? &outcome_->result : nullptr;
}

const QueryStats* ResultSet::query_stats() const { return qstats_.get(); }

}  // namespace verso
