#include "api/api.h"

namespace verso {

Session::Session(Connection* conn) : conn_(conn), snap_(conn->Pin()) {}

Session::~Session() { conn_->RemoveSessionSubscriptions(this); }

const internal::Snapshot& Session::snap() const {
  if (snap_ == nullptr) snap_ = conn_->Pin();
  return *snap_;
}

uint64_t Session::epoch() const { return snap().epoch; }

void Session::Refresh() { snap_ = conn_->Pin(); }

Result<ResultSet> Session::Execute(std::string_view text) {
  VERSO_ASSIGN_OR_RETURN(Statement stmt, Prepare(text));
  return stmt.Execute();
}

Result<std::vector<ResultSet>> Session::ExecuteBatch(
    const std::vector<Statement*>& statements) {
  std::vector<Program*> programs;
  std::vector<std::function<bool(const Program&, const std::vector<uint32_t>&)>>
      admits;
  programs.reserve(statements.size());
  admits.reserve(statements.size());
  for (Statement* stmt : statements) {
    if (stmt == nullptr || stmt->kind() != Statement::Kind::kUpdate) {
      return Status::InvalidArgument(
          "ExecuteBatch takes update-program statements only");
    }
    programs.push_back(&stmt->program_);
    admits.push_back(stmt->admit_parallel_);
  }
  return conn_->ExecuteWriteBatch(*this, programs, admits);
}

const ObjectBase& Session::base() const { return snap().base; }

Result<const ObjectBase*> Session::ViewSnapshot(std::string_view view) const {
  const internal::Snapshot& snap = this->snap();
  auto it = snap.views.find(view);
  if (it == snap.views.end()) {
    return Status::NotFound("view '" + std::string(view) +
                            "' is not in this session's snapshot");
  }
  return &it->second.result;
}

Result<uint64_t> Session::Subscribe(std::string_view view,
                                    ViewCallback callback) {
  if (conn_->catalog().Find(view) == nullptr) {
    return Status::NotFound("view '" + std::string(view) +
                            "' is not registered");
  }
  if (!callback) {
    return Status::InvalidArgument("subscription callback must be callable");
  }
  return conn_->AddSubscription(std::string(view), this, std::move(callback));
}

Status Session::Unsubscribe(uint64_t subscription) {
  return conn_->RemoveSubscription(this, subscription);
}

}  // namespace verso
