#include <algorithm>
#include <cctype>

#include "api/api.h"
#include "parser/parser.h"

namespace verso {

namespace {

/// Keyword scanner for the statement-level grammar. Only the leading
/// command words are recognized here; rule syntax is handed verbatim to
/// the update-program / derived-method parsers.
class TextScanner {
 public:
  explicit TextScanner(std::string_view text) : text_(text) {}

  /// Next identifier-like word ([A-Za-z0-9_]+), lowercased; empty when
  /// the next character is not a word character.
  std::string Word() {
    SkipWs();
    std::string word;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (std::isalnum(static_cast<unsigned char>(c)) || c == '_') {
        word.push_back(
            static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
        ++pos_;
      } else {
        break;
      }
    }
    return word;
  }

  /// Like Word() but preserving case (view names are case-sensitive).
  std::string Identifier() {
    SkipWs();
    std::string word;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (std::isalnum(static_cast<unsigned char>(c)) || c == '_') {
        word.push_back(c);
        ++pos_;
      } else {
        break;
      }
    }
    return word;
  }

  char Peek() {
    SkipWs();
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  void Consume() { ++pos_; }
  size_t pos() const { return pos_; }

  bool AtEnd() {
    SkipWs();
    return pos_ >= text_.size();
  }

 private:
  void SkipWs() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == '%') {
        while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
      } else if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
      } else {
        break;
      }
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
};

bool IsIdentifier(const std::string& word) {
  if (word.empty()) return false;
  char c = word[0];
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

/// Case-insensitive match against a reserved all-lowercase word.
bool IsKeyword(const std::string& identifier, std::string_view word) {
  if (identifier.size() != word.size()) return false;
  for (size_t i = 0; i < identifier.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(identifier[i])) != word[i]) {
      return false;
    }
  }
  return true;
}

/// Statement-layer handles into the global registry, bound once.
/// `QUERY METRICS` execution deliberately bumps NONE of these (its
/// prepare does, before the snapshot is taken): reading the metrics must
/// not change them, so a QUERY METRICS result and a DumpMetrics call
/// with no events in between compare byte-equal.
struct StmtMetrics {
  Counter& prepared;
  Histogram& parse_us;
  Counter& queries;
  Histogram& query_eval_us;
  Counter& view_reads;

  static StmtMetrics& Get() {
    static StmtMetrics* metrics =
        new StmtMetrics(MetricsRegistry::Global());  // never dies
    return *metrics;
  }

  explicit StmtMetrics(MetricsRegistry& registry)
      : prepared(registry.GetCounter("statement.prepared")),
        parse_us(registry.GetHistogram("statement.parse_us")),
        queries(registry.GetCounter("query.count")),
        query_eval_us(registry.GetHistogram("query.eval_us")),
        view_reads(registry.GetCounter("query.view_reads")) {}
};

/// True iff the text's first clause is a derived-method rule: an optional
/// `label:` prefix followed by the `derive` keyword.
bool StartsWithDerive(std::string_view text) {
  TextScanner scan(text);
  std::string word = scan.Word();
  if (scan.Peek() == ':') {
    scan.Consume();
    word = scan.Word();
  }
  return word == "derive";
}

}  // namespace

Result<Statement> Session::Prepare(std::string_view text) {
  // Counts every Prepare call (parse failures included); the span times
  // the whole parse, whichever grammar branch it takes.
  StmtMetrics& metrics = StmtMetrics::Get();
  metrics.prepared.Add();
  ScopedTimer parse_timer(MetricsRegistry::Global(), metrics.parse_us);
  SymbolTable& symbols = conn_->engine().symbols();
  TextScanner scan(text);
  TextScanner probe(text);
  std::string first = probe.Word();
  // A leading `word:` is a rule label, never a command keyword.
  bool labeled = probe.Peek() == ':';

  if (!labeled && first == "create") {
    scan.Word();  // "create"
    if (scan.Word() != "view") {
      return Status::ParseError("expected VIEW after CREATE");
    }
    std::string name = scan.Identifier();
    if (!IsIdentifier(name)) {
      return Status::ParseError("CREATE VIEW expects a view name");
    }
    if (scan.Word() != "as") {
      return Status::ParseError("expected AS after CREATE VIEW " + name);
    }
    Statement stmt(this, Statement::Kind::kCreateView, std::string(text));
    stmt.view_name_ = std::move(name);
    VERSO_ASSIGN_OR_RETURN(
        stmt.query_, ParseQueryProgram(text.substr(scan.pos()), symbols));
    // Prepare-time analysis runs pure-static (no base schema): Prepare
    // results must not depend on committed data. Errors block here with
    // rule-level positions; Execute applies the same policy again over
    // the then-current catalog.
    if (conn_->options_.analysis.enabled) {
      auto report = std::make_shared<AnalysisReport>(
          AnalyzeDerivedProgram(stmt.query_, symbols));
      VERSO_RETURN_IF_ERROR(report->FirstBlocking(conn_->options_.analysis));
      stmt.analysis_ = std::move(report);
    }
    return stmt;
  }

  if (!labeled && first == "drop") {
    scan.Word();  // "drop"
    if (scan.Word() != "view") {
      return Status::ParseError("expected VIEW after DROP");
    }
    std::string name = scan.Identifier();
    if (!IsIdentifier(name)) {
      return Status::ParseError("DROP VIEW expects a view name");
    }
    if (scan.Peek() == '.') scan.Consume();
    if (!scan.AtEnd()) {
      return Status::ParseError("unexpected text after DROP VIEW " + name);
    }
    Statement stmt(this, Statement::Kind::kDropView, std::string(text));
    stmt.view_name_ = std::move(name);
    return stmt;
  }

  if (!labeled && first == "query") {
    scan.Word();  // "query"
    std::string name = scan.Identifier();
    if (!IsIdentifier(name)) {
      return Status::ParseError(
          "QUERY expects a view name, METRICS, or ANALYZE <program>");
    }
    // ANALYZE is reserved: the rest of the text is the program to
    // analyze, handed verbatim to the analyzer at Execute time (it is
    // parsed there — against the connection's live symbols — so the
    // report reflects the schema at execution, not at prepare).
    if (IsKeyword(name, "analyze")) {
      Statement stmt(this, Statement::Kind::kAnalyze, std::string(text));
      stmt.body_text_ = std::string(text.substr(scan.pos()));
      if (TextScanner(stmt.body_text_).AtEnd()) {
        return Status::ParseError("QUERY ANALYZE expects a program");
      }
      return stmt;
    }
    if (scan.Peek() == '.') scan.Consume();
    if (!scan.AtEnd()) {
      return Status::ParseError("unexpected text after QUERY " + name);
    }
    // METRICS is reserved: QUERY METRICS (any case) reads the metrics
    // registry, never a view of that name.
    if (IsKeyword(name, "metrics")) {
      return Statement(this, Statement::Kind::kMetrics, std::string(text));
    }
    Statement stmt(this, Statement::Kind::kQueryView, std::string(text));
    stmt.view_name_ = std::move(name);
    return stmt;
  }

  if (StartsWithDerive(text)) {
    Statement stmt(this, Statement::Kind::kQuery, std::string(text));
    VERSO_ASSIGN_OR_RETURN(stmt.query_, ParseQueryProgram(text, symbols));
    if (conn_->options_.analysis.enabled) {
      auto report = std::make_shared<AnalysisReport>(
          AnalyzeDerivedProgram(stmt.query_, symbols));
      VERSO_RETURN_IF_ERROR(report->FirstBlocking(conn_->options_.analysis));
      stmt.analysis_ = std::move(report);
    }
    return stmt;
  }

  Statement stmt(this, Statement::Kind::kUpdate, std::string(text));
  VERSO_ASSIGN_OR_RETURN(stmt.program_, ParseProgram(text, symbols));
  if (conn_->options_.analysis.enabled) {
    auto report = std::make_shared<AnalysisReport>(
        AnalyzeUpdateProgram(stmt.program_, symbols));
    VERSO_RETURN_IF_ERROR(report->FirstBlocking(conn_->options_.analysis));
    stmt.analysis_ = std::move(report);
    // Cache the parallel-admission verdict now: repeated Execute calls
    // reuse the prepare-time conflict analysis.
    stmt.admit_parallel_ = MakeParallelAdmission(stmt.analysis_);
  }
  return stmt;
}

Result<ResultSet> Statement::Execute() {
  Connection* conn = session_->conn_;
  switch (kind_) {
    case Kind::kUpdate:
      return conn->ExecuteWrite(*session_, program_, admit_parallel_);

    case Kind::kQuery: {
      const internal::Snapshot& snap = session_->snap();
      StmtMetrics& metrics = StmtMetrics::Get();
      metrics.queries.Add();
      auto qstats = std::make_shared<QueryStats>();
      ScopedTimer eval_timer(MetricsRegistry::Global(),
                             metrics.query_eval_us);
      Result<ObjectBase> full = EvaluateQueries(
          query_, snap.base, conn->engine().symbols(),
          conn->engine().versions(), qstats.get(), conn->options_.query);
      eval_timer.Stop();
      if (!full.ok()) return full.status();
      std::vector<MethodId> methods = query_.derived_methods;
      std::sort(methods.begin(), methods.end());
      ResultSet rs(ResultSet::Kind::kQuery, snap.epoch,
                   internal::CollectFacts(*full, methods), &conn->symbols(),
                   &conn->versions());
      rs.qstats_ = std::move(qstats);
      return rs;
    }

    case Kind::kCreateView:
      return conn->CreateView(*session_, view_name_, query_);

    case Kind::kDropView:
      return conn->DropView(*session_, view_name_);

    case Kind::kQueryView: {
      const internal::Snapshot& snap = session_->snap();
      auto it = snap.views.find(view_name_);
      if (it == snap.views.end()) {
        return Status::NotFound(
            "view '" + view_name_ + "' is not in this session's snapshot "
            "(not registered, or poisoned, at pin time; Refresh() re-pins)");
      }
      StmtMetrics::Get().view_reads.Add();
      return ResultSet(ResultSet::Kind::kView, snap.epoch,
                       internal::CollectFacts(it->second.result,
                                              it->second.methods),
                       &conn->symbols(), &conn->versions());
    }

    case Kind::kMetrics:
      // Deliberately counter-silent (no bumps, no pin — the epoch read
      // touches nothing): the snapshot this returns is byte-for-byte the
      // one a DumpMetrics call right after would serialize.
      return ResultSet(conn->epoch(), MetricsRegistry::Global().Snapshot(),
                       &conn->symbols(), &conn->versions());

    case Kind::kAnalyze:
      return conn->AnalyzeProgram(body_text_);
  }
  return Status::Internal("unknown statement kind");
}

Result<ResultSet> Connection::AnalyzeProgram(std::string_view program_text) {
  SymbolTable& symbols = engine_->symbols();
  // Schema context: the methods carried by the current committed base,
  // so the dead-rule check can also flag reads nothing can satisfy.
  AnalysisContext context = ContextFromBase(db_->current());
  std::shared_ptr<const AnalysisReport> report;
  if (StartsWithDerive(program_text)) {
    VERSO_ASSIGN_OR_RETURN(QueryProgram program,
                           ParseQueryProgram(program_text, symbols));
    report = std::make_shared<AnalysisReport>(
        AnalyzeDerivedProgram(program, symbols, context));
  } else {
    VERSO_ASSIGN_OR_RETURN(Program program,
                           ParseProgram(program_text, symbols));
    report = std::make_shared<AnalysisReport>(
        AnalyzeUpdateProgram(program, symbols, context));
  }
  return ResultSet(db_->commit_epoch(), std::move(report),
                   &engine_->symbols(), &engine_->versions());
}

}  // namespace verso
